// EXP-C8c-daemon — the history-driven reconfiguration daemon (paper §4.2:
// "The runtime scheduler/daemon will read periodically the system status
// and the History file in order to decide at runtime what functions should
// be loaded on the reconfiguration block.").
//
// Workload: a phased call stream over six kernels whose popularity shifts
// every phase. Without the daemon, a kernel's first call after its phase
// begins stalls on the ICAP; with it, the daemon's periodic tick prefetches
// the trending kernels, converting cold starts into hits.
#include <iostream>
#include <map>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "hls/dse.h"
#include "runtime/daemon.h"

namespace ecoscale {
namespace {

struct StreamOutcome {
  std::uint64_t calls = 0;
  std::uint64_t stalls = 0;       // calls that waited on reconfiguration
  SimDuration stall_time = 0;
  std::uint64_t prefetches = 0;
};

StreamOutcome run(bool with_daemon, std::uint64_t seed) {
  ReconfigConfig fc;
  fc.fabric_width = 6;   // room for ~2 modules: pressure is real
  fc.fabric_height = 8;
  ReconfigManager fabric("f", fc);
  ReconfigDaemon daemon(fabric);
  std::vector<AcceleratorModule> modules;
  for (const auto& k :
       {make_stencil5_kernel(), make_matmul_tile_kernel(),
        make_montecarlo_kernel(), make_cart_split_kernel(),
        make_sha_like_kernel(), make_spmv_kernel()}) {
    auto m = emit_variants(k, 1).front();
    m.shape = ModuleShape{3, 8};  // two fit at a time
    modules.push_back(m);
    daemon.register_module(modules.back());
  }
  Rng rng(seed);
  StreamOutcome out;
  SimTime now = 0;
  SimTime next_tick = microseconds(500);
  auto maybe_tick = [&] {
    if (!with_daemon) return;
    while (next_tick <= now) {
      daemon.tick(next_tick);
      next_tick += microseconds(500);
    }
  };
  auto call = [&](std::size_t which, bool count_stall) {
    const auto& m = modules[which];
    daemon.record_call(m.kernel);
    ++out.calls;
    const auto load = fabric.ensure_loaded(m, now);
    if (!load) return;
    if (load->reconfigured && count_stall) {
      ++out.stalls;
      out.stall_time += load->ready - now;
    }
    const SimTime done = std::max(now, load->ready) + microseconds(20);
    fabric.set_busy_until(load->region, done);
  };
  // Scan-resistance workload: a steady hot pair (K0, K1) dominates, but
  // every round a short storm of one-off kernels (K2..K5) sweeps through
  // and — under pure LRU-on-demand — evicts the steady pair. A gap
  // follows each storm (the batch job's synchronisation phase); the
  // daemon's frequency-based scores identify K0/K1 as worth restoring and
  // prefetch them in the gap, off the critical path.
  for (int round = 0; round < 20; ++round) {
    // Steady phase: 40 calls, 50/50 over the hot pair.
    for (int c = 0; c < 40; ++c) {
      now += microseconds(50);
      maybe_tick();
      call(rng.chance(0.5) ? 0 : 1, /*count_stall=*/true);
    }
    // Storm: each one-off kernel called once.
    for (std::size_t k = 2; k < modules.size(); ++k) {
      now += microseconds(50);
      maybe_tick();
      call(k, /*count_stall=*/true);
    }
    // Post-storm idle gap.
    now += milliseconds(2);
    maybe_tick();
  }
  out.prefetches = daemon.prefetches();
  return out;
}

}  // namespace
}  // namespace ecoscale

int main() {
  using namespace ecoscale;
  bench::print_header("EXP-C8c-daemon",
                      "history-driven prefetching of hot kernels "
                      "(claim C8, Figure 5 daemon)");

  Table t({"policy", "calls", "reconfig stalls", "stall rate",
           "total stall time", "prefetch loads"});
  for (const bool daemon : {false, true}) {
    const auto out = run(daemon, 99);
    t.add_row({daemon ? "daemon prefetch" : "on-demand only",
               fmt_u64(out.calls), fmt_u64(out.stalls),
               fmt_pct(static_cast<double>(out.stalls) /
                       static_cast<double>(out.calls)),
               fmt_time_ps(static_cast<double>(out.stall_time)),
               fmt_u64(out.prefetches)});
  }
  bench::print_table(
      t,
      "Steady hot pair + periodic one-off kernel storms on a fabric that\n"
      "fits two modules (the LRU scan problem). The daemon's History-file\n"
      "frequency scores restore the hot pair during post-storm gaps, so\n"
      "steady calls stop stalling on the ICAP:");
  return 0;
}
