// EXP-APP-holistic — the whole stack on one application (paper abstract:
// "ECOSCALE tackles these challenges by proposing a scalable programming
// environment and architecture, aiming to substantially reduce energy
// consumption as well as data traffic and latency" — a *holistic* claim,
// so this harness measures the cumulative effect of every mechanism).
//
// Application: an iterative solver on 4 Compute Nodes x 4 Workers. Each
// iteration runs a burst of mixed kernels per worker (Zipf-skewed load),
// then a halo exchange and an allreduce. The feature ladder switches on
// one ECOSCALE mechanism at a time, cumulatively:
//   L0 baseline   : software-only, no balancing, pure-MPI communication,
//                   full-region uncompressed bitstreams
//   L1 +offload   : learned-model HW/SW placement
//   L2 +UNILOGIC  : fabric sharing across the node
//   L3 +lazy      : lazy local-queue work distribution
//   L4 +PR opt    : bounding-box + LZ-compressed bitstreams
//   L5 +hybrid    : intra-node halo traffic over UNIMEM instead of MPI
//
// A second section runs the same style of application on the sharded
// parallel engine (runtime/sharded.h): 8 Compute Nodes, each a private
// shard, exchanging forwarded tasks through the conservative-window
// mailboxes. It is run at --sim-threads 1 and at the requested
// --sim-threads; the combined result hashes must match (deterministic
// merge) while the wall-clock column shows the engine's scaling.
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "hls/dse.h"
#include "mpi/mpi.h"
#include "runtime/scheduler.h"
#include "runtime/sharded.h"

namespace ecoscale {
namespace {

constexpr std::size_t kNodes = 4;
constexpr std::size_t kWorkersPerNode = 4;
constexpr std::size_t kWorkers = kNodes * kWorkersPerNode;
constexpr int kIterations = 10;
constexpr Bytes kHalo = kibibytes(32);

struct AppConfig {
  std::string name;
  PlacementPolicy placement = PlacementPolicy::kAlwaysSoftware;
  bool share_fabric = false;
  DistributionPolicy distribution = DistributionPolicy::kHomeOnly;
  BitstreamMode bitstream = BitstreamMode::kFullRegion;
  CompressionMode compression = CompressionMode::kNone;
  bool hybrid_comm = false;
};

struct AppOutcome {
  double makespan_ms = 0.0;
  double energy_mj = 0.0;
  double hw_frac = 0.0;
};

AppOutcome run_app(const AppConfig& app) {
  MachineConfig mc;
  mc.nodes = kNodes;
  mc.workers_per_node = kWorkersPerNode;
  mc.worker.fabric.bitstream_mode = app.bitstream;
  mc.worker.fabric.compression = app.compression;
  Machine machine(mc);
  Simulator sim;
  RuntimeConfig rc;
  rc.placement = app.placement;
  rc.share_fabric = app.share_fabric;
  rc.distribution = app.distribution;
  RuntimeSystem runtime(machine, sim, rc);
  const std::vector<KernelIR> kernels = {
      make_stencil5_kernel(), make_montecarlo_kernel(),
      make_spmv_kernel()};
  for (const auto& k : kernels) {
    runtime.register_kernel(k, emit_variants(k, 2));
  }

  Rng rng(0xA99);
  SimTime epoch = 0;
  TaskId next_id = 1;
  Picojoules comm_energy = 0.0;
  // Per-worker halo buffers for the hybrid communication path.
  std::vector<GlobalAddress> halo_bufs;
  if (app.hybrid_comm) {
    for (std::size_t b = 0; b < kWorkers; ++b) {
      halo_bufs.push_back(machine.pgas().alloc(
          static_cast<NodeId>(b / kWorkersPerNode),
          static_cast<WorkerId>(b % kWorkersPerNode), mebibytes(1)));
    }
  }
  for (int iter = 0; iter < kIterations; ++iter) {
    // --- compute phase: 3 tasks per worker, Zipf-skewed across workers.
    for (std::size_t i = 0; i < 3 * kWorkers; ++i) {
      Task t;
      t.id = next_id++;
      const auto& k = kernels[rng.uniform_u64(kernels.size())];
      t.kernel = k.id;
      t.items = 30000 + rng.uniform_u64(120000);
      t.features.items = static_cast<double>(t.items);
      t.features.bytes =
          static_cast<double>(t.items * (k.bytes_in + k.bytes_out));
      const std::size_t w = rng.zipf(kWorkers, 0.8);
      t.home = WorkerCoord{static_cast<NodeId>(w / kWorkersPerNode),
                           static_cast<WorkerId>(w % kWorkersPerNode)};
      t.release = epoch;
      runtime.submit(t);
    }
    runtime.run();
    SimTime compute_done = epoch;
    for (const auto& r : runtime.results()) {
      compute_done = std::max(compute_done, r.finished);
    }

    // --- halo exchange over the 4x4 worker grid.
    SimTime halo_done = compute_done;
    CartTopology grid({4, 4}, false);
    auto node_of = [](std::size_t rank) {
      return static_cast<NodeId>(rank / kWorkersPerNode);
    };
    for (std::size_t r = 0; r < grid.size(); ++r) {
      for (const std::size_t peer : grid.neighbors(r)) {
        if (app.hybrid_comm && node_of(r) == node_of(peer)) {
          // UNIMEM store into the neighbour's halo buffer.
          const auto m = machine.pgas().dma(
              {node_of(r), static_cast<WorkerId>(r % kWorkersPerNode)},
              halo_bufs[peer], kHalo, /*write=*/true, compute_done);
          halo_done = std::max(halo_done, m.finish);
        } else {
          const auto m = machine.mpi().send(node_of(r), node_of(peer),
                                            kHalo, compute_done);
          halo_done = std::max(halo_done, m.delivered);
        }
      }
    }

    // --- residual allreduce between nodes.
    std::vector<SimTime> arrivals(kNodes, halo_done);
    const auto red = machine.mpi().allreduce(64, arrivals);
    comm_energy += red.energy;
    epoch = std::max(red.finish, sim.now());
    sim.run_until(epoch);
    // All of next iteration's work is released at `epoch`, so the calendar
    // resources can retire everything before it (keeps reserve() cheap over
    // long runs).
    machine.release(epoch);
  }

  AppOutcome out;
  out.makespan_ms = to_milliseconds(epoch);
  out.energy_mj = to_millijoules(machine.total_energy() + comm_energy);
  const auto s = runtime.stats();
  out.hw_frac = static_cast<double>(s.hw_tasks) /
                static_cast<double>(s.hw_tasks + s.sw_tasks);
  return out;
}

// --- sharded multi-node run ------------------------------------------------

/// FNV-1a over the observable outcome of a sharded run (task results,
/// machine energy, engine counters) — the determinism witness.
struct OutcomeHash {
  std::uint64_t h = 1469598103934665603ull;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  void mix_double(double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    mix(bits);
  }
};

/// Per-node epoch generator: UNIMEM traffic + local tasks + one forwarded
/// task per epoch, the same mixed workload shape as the ctest determinism
/// case but sized for a perf measurement.
struct NodeGenerator {
  ShardedRuntime* rt = nullptr;
  std::size_t node = 0;
  std::size_t nodes = 0;
  std::size_t workers = 0;
  int epochs_left = 0;
  TaskId next_id = 0;
  Rng rng{0};
  GlobalAddress buf{};
  OutcomeHash* hash = nullptr;
  const std::vector<KernelIR>* kernels = nullptr;

  Task make_task(SimTime release) {
    Task t;
    t.id = next_id++;
    const KernelIR& k = (*kernels)[rng.uniform_u64(kernels->size())];
    t.kernel = k.id;
    t.items = 2000 + rng.uniform_u64(8000);
    t.features.items = static_cast<double>(t.items);
    t.features.bytes =
        static_cast<double>(t.items * (k.bytes_in + k.bytes_out));
    t.home = WorkerCoord{0, static_cast<WorkerId>(rng.uniform_u64(workers))};
    t.release = release;
    return t;
  }

  void fire() {
    Simulator& sim = rt->shard(node);
    PgasSystem& pgas = rt->machine(node).pgas();
    const auto who =
        WorkerCoord{0, static_cast<WorkerId>(rng.uniform_u64(workers))};
    const auto ld = pgas.load(who, buf, 256, sim.now());
    const auto st = pgas.store(who, buf, 128, ld.finish);
    hash->mix(ld.finish);
    hash->mix(st.finish);
    for (int i = 0; i < 2; ++i) rt->submit(node, make_task(sim.now()));
    if (nodes > 1) {
      const std::size_t to = (node + 1 + rng.uniform_u64(nodes - 1)) % nodes;
      rt->post_task(node, to, make_task(0));
    }
    if (--epochs_left > 0) {
      sim.schedule_after(microseconds(30), [this] { fire(); });
    }
  }
};

struct ShardedOutcome {
  double makespan_ms = 0.0;
  double energy_mj = 0.0;
  std::uint64_t tasks = 0;
  std::uint64_t cross_posts = 0;
  std::uint64_t windows = 0;
  std::uint64_t events = 0;
  std::uint64_t hash = 0;
  std::size_t threads = 0;
  double wall_s = 0.0;
};

ShardedOutcome run_sharded(std::size_t threads, int epochs) {
  ShardedRuntimeConfig cfg;
  cfg.nodes = 8;
  cfg.workers_per_node = 2;
  cfg.threads = threads;
  cfg.runtime.placement = PlacementPolicy::kModelBased;
  cfg.runtime.share_fabric = true;
  cfg.runtime.distribution = DistributionPolicy::kLazyLocal;
  ShardedRuntime rt(cfg);
  const std::vector<KernelIR> kernels = {make_stencil5_kernel(),
                                         make_spmv_kernel()};
  for (const auto& k : kernels) rt.register_kernel(k, emit_variants(k, 2));

  std::vector<OutcomeHash> hashes(cfg.nodes);
  std::vector<std::unique_ptr<NodeGenerator>> gens;
  for (std::size_t node = 0; node < cfg.nodes; ++node) {
    gens.push_back(std::make_unique<NodeGenerator>());
    NodeGenerator& g = *gens.back();
    g.rt = &rt;
    g.node = node;
    g.nodes = cfg.nodes;
    g.workers = cfg.workers_per_node;
    g.epochs_left = epochs;
    g.next_id = 1 + node * 1000000;
    g.rng = Rng(0x5EED + node);
    g.buf = rt.machine(node).pgas().alloc(0, 0, kibibytes(64));
    g.hash = &hashes[node];
    g.kernels = &kernels;
    rt.shard(node).schedule_at(static_cast<SimTime>(1 + node),
                               [&g] { g.fire(); });
  }
  const auto t0 = std::chrono::steady_clock::now();
  rt.run();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  OutcomeHash combined;
  for (std::size_t node = 0; node < cfg.nodes; ++node) {
    combined.mix(hashes[node].h);
    for (const TaskResult& r : rt.runtime(node).results()) {
      combined.mix(r.id);
      combined.mix(r.started);
      combined.mix(r.finished);
      combined.mix(static_cast<std::uint64_t>(r.device));
      combined.mix(r.executed_on);
      combined.mix_double(r.energy);
    }
    combined.mix_double(rt.machine(node).total_energy());
  }
  const ShardedRuntime::Stats s = rt.stats();
  combined.mix(s.makespan);
  combined.mix(s.events);
  combined.mix(s.windows);
  combined.mix(s.cross_posts);

  ShardedOutcome out;
  out.makespan_ms = to_milliseconds(s.makespan);
  out.energy_mj = to_millijoules(s.energy);
  out.tasks = s.tasks;
  out.cross_posts = s.cross_posts;
  out.windows = s.windows;
  out.events = s.events;
  out.hash = combined.h;
  out.threads = rt.engine().threads_used();
  out.wall_s = wall;
  return out;
}

}  // namespace
}  // namespace ecoscale

int main(int argc, char** argv) {
  using namespace ecoscale;
  bench::init(argc, argv);
  bench::print_header("EXP-APP-holistic",
                      "cumulative effect of every ECOSCALE mechanism on "
                      "one application (abstract's holistic claim)");

  std::vector<AppConfig> ladder(6);
  ladder[0].name = "L0 baseline (SW, flat)";
  ladder[1] = ladder[0];
  ladder[1].name = "L1 +model offload";
  ladder[1].placement = PlacementPolicy::kModelBased;
  ladder[2] = ladder[1];
  ladder[2].name = "L2 +UNILOGIC sharing";
  ladder[2].share_fabric = true;
  ladder[3] = ladder[2];
  ladder[3].name = "L3 +lazy distribution";
  ladder[3].distribution = DistributionPolicy::kLazyLocal;
  ladder[4] = ladder[3];
  ladder[4].name = "L4 +PR bbox+LZ";
  ladder[4].bitstream = BitstreamMode::kBoundingBox;
  ladder[4].compression = CompressionMode::kLz;
  ladder[5] = ladder[4];
  ladder[5].name = "L5 +hybrid MPI/PGAS";
  ladder[5].hybrid_comm = true;

  Table t({"configuration", "makespan", "energy", "HW fraction",
           "vs baseline (time)", "vs baseline (energy)"});
  // Each ladder rung owns its own Machine + Simulator, so the rungs run on
  // the sweep pool; the baseline comparison happens after the barrier.
  const auto outcomes = bench::parallel_sweep(
      ladder.size(), [&](std::size_t i) { return run_app(ladder[i]); });
  const AppOutcome& base = outcomes[0];
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    const auto& out = outcomes[i];
    t.add_row({ladder[i].name, fmt_fixed(out.makespan_ms, 2) + " ms",
               fmt_fixed(out.energy_mj, 2) + " mJ", fmt_pct(out.hw_frac),
               fmt_ratio(base.makespan_ms / out.makespan_ms),
               fmt_ratio(base.energy_mj / out.energy_mj)});
  }
  bench::print_table(
      t,
      "10-iteration solver on 4 nodes x 4 workers: mixed kernels + halo\n"
      "exchange + allreduce per iteration. Each rung switches on one more\n"
      "ECOSCALE mechanism, cumulatively:");

  // --- sharded multi-node run ---------------------------------------------
  constexpr int kEpochs = 60;
  run_sharded(1, kEpochs / 6);  // warm-up
  const auto seq = run_sharded(1, kEpochs);
  const auto par = run_sharded(bench::sim_threads(), kEpochs);
  const bool hashes_match = seq.hash == par.hash;
  // stdout stays fully deterministic (the byte-identical-output check in
  // CI/verification): only simulated quantities and hashes in the table;
  // wall-clock scaling goes to stderr.
  // Static row labels keep stdout independent of the --sim-threads value
  // too; the thread count used is on stderr.
  Table sh({"run", "tasks", "cross posts", "windows", "events", "makespan",
            "hash"});
  sh.add_row({"sequential", fmt_u64(seq.tasks), fmt_u64(seq.cross_posts),
              fmt_u64(seq.windows), fmt_u64(seq.events),
              fmt_fixed(seq.makespan_ms, 3) + " ms", fmt_u64(seq.hash)});
  sh.add_row({"parallel", fmt_u64(par.tasks), fmt_u64(par.cross_posts),
              fmt_u64(par.windows), fmt_u64(par.events),
              fmt_fixed(par.makespan_ms, 3) + " ms", fmt_u64(par.hash)});
  bench::print_table(
      sh,
      "same application on the sharded parallel engine: 8 Compute Nodes\n"
      "(one shard each, 2 workers), UNIMEM + UNILOGIC work per node plus\n"
      "one forwarded task per node per epoch. --sim-threads must never\n"
      "change the hash:");
  if (!hashes_match) {
    std::cerr << "FATAL: sharded runtime hash mismatch across thread "
                 "counts\n";
    return 1;
  }
  std::cerr << "sharded wall: " << fmt_fixed(seq.wall_s * 1e3, 1)
            << " ms at 1 thread, " << fmt_fixed(par.wall_s * 1e3, 1)
            << " ms at " << par.threads << " ("
            << fmt_ratio(seq.wall_s / par.wall_s) << ")\n"
            << "HOLISTIC_JSON {"
            << "\"sharded_wall_s_1t\": " << seq.wall_s
            << ", \"sharded_wall_s_nt\": " << par.wall_s
            << ", \"sharded_threads\": " << par.threads
            << ", \"sharded_tasks\": " << par.tasks
            << ", \"sharded_hash_match\": " << (hashes_match ? 1 : 0)
            << "}\n";
  return 0;
}
