// EXP-APP-holistic — the whole stack on one application (paper abstract:
// "ECOSCALE tackles these challenges by proposing a scalable programming
// environment and architecture, aiming to substantially reduce energy
// consumption as well as data traffic and latency" — a *holistic* claim,
// so this harness measures the cumulative effect of every mechanism).
//
// Application: an iterative solver on 4 Compute Nodes x 4 Workers. Each
// iteration runs a burst of mixed kernels per worker (Zipf-skewed load),
// then a halo exchange and an allreduce. The feature ladder switches on
// one ECOSCALE mechanism at a time, cumulatively:
//   L0 baseline   : software-only, no balancing, pure-MPI communication,
//                   full-region uncompressed bitstreams
//   L1 +offload   : learned-model HW/SW placement
//   L2 +UNILOGIC  : fabric sharing across the node
//   L3 +lazy      : lazy local-queue work distribution
//   L4 +PR opt    : bounding-box + LZ-compressed bitstreams
//   L5 +hybrid    : intra-node halo traffic over UNIMEM instead of MPI
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "hls/dse.h"
#include "mpi/mpi.h"
#include "runtime/scheduler.h"

namespace ecoscale {
namespace {

constexpr std::size_t kNodes = 4;
constexpr std::size_t kWorkersPerNode = 4;
constexpr std::size_t kWorkers = kNodes * kWorkersPerNode;
constexpr int kIterations = 10;
constexpr Bytes kHalo = kibibytes(32);

struct AppConfig {
  std::string name;
  PlacementPolicy placement = PlacementPolicy::kAlwaysSoftware;
  bool share_fabric = false;
  DistributionPolicy distribution = DistributionPolicy::kHomeOnly;
  BitstreamMode bitstream = BitstreamMode::kFullRegion;
  CompressionMode compression = CompressionMode::kNone;
  bool hybrid_comm = false;
};

struct AppOutcome {
  double makespan_ms = 0.0;
  double energy_mj = 0.0;
  double hw_frac = 0.0;
};

AppOutcome run_app(const AppConfig& app) {
  MachineConfig mc;
  mc.nodes = kNodes;
  mc.workers_per_node = kWorkersPerNode;
  mc.worker.fabric.bitstream_mode = app.bitstream;
  mc.worker.fabric.compression = app.compression;
  Machine machine(mc);
  Simulator sim;
  RuntimeConfig rc;
  rc.placement = app.placement;
  rc.share_fabric = app.share_fabric;
  rc.distribution = app.distribution;
  RuntimeSystem runtime(machine, sim, rc);
  const std::vector<KernelIR> kernels = {
      make_stencil5_kernel(), make_montecarlo_kernel(),
      make_spmv_kernel()};
  for (const auto& k : kernels) {
    runtime.register_kernel(k, emit_variants(k, 2));
  }

  Rng rng(0xA99);
  SimTime epoch = 0;
  TaskId next_id = 1;
  Picojoules comm_energy = 0.0;
  // Per-worker halo buffers for the hybrid communication path.
  std::vector<GlobalAddress> halo_bufs;
  if (app.hybrid_comm) {
    for (std::size_t b = 0; b < kWorkers; ++b) {
      halo_bufs.push_back(machine.pgas().alloc(
          static_cast<NodeId>(b / kWorkersPerNode),
          static_cast<WorkerId>(b % kWorkersPerNode), mebibytes(1)));
    }
  }
  for (int iter = 0; iter < kIterations; ++iter) {
    // --- compute phase: 3 tasks per worker, Zipf-skewed across workers.
    for (std::size_t i = 0; i < 3 * kWorkers; ++i) {
      Task t;
      t.id = next_id++;
      const auto& k = kernels[rng.uniform_u64(kernels.size())];
      t.kernel = k.id;
      t.items = 30000 + rng.uniform_u64(120000);
      t.features.items = static_cast<double>(t.items);
      t.features.bytes =
          static_cast<double>(t.items * (k.bytes_in + k.bytes_out));
      const std::size_t w = rng.zipf(kWorkers, 0.8);
      t.home = WorkerCoord{static_cast<NodeId>(w / kWorkersPerNode),
                           static_cast<WorkerId>(w % kWorkersPerNode)};
      t.release = epoch;
      runtime.submit(t);
    }
    runtime.run();
    SimTime compute_done = epoch;
    for (const auto& r : runtime.results()) {
      compute_done = std::max(compute_done, r.finished);
    }

    // --- halo exchange over the 4x4 worker grid.
    SimTime halo_done = compute_done;
    CartTopology grid({4, 4}, false);
    auto node_of = [](std::size_t rank) {
      return static_cast<NodeId>(rank / kWorkersPerNode);
    };
    for (std::size_t r = 0; r < grid.size(); ++r) {
      for (const std::size_t peer : grid.neighbors(r)) {
        if (app.hybrid_comm && node_of(r) == node_of(peer)) {
          // UNIMEM store into the neighbour's halo buffer.
          const auto m = machine.pgas().dma(
              {node_of(r), static_cast<WorkerId>(r % kWorkersPerNode)},
              halo_bufs[peer], kHalo, /*write=*/true, compute_done);
          halo_done = std::max(halo_done, m.finish);
        } else {
          const auto m = machine.mpi().send(node_of(r), node_of(peer),
                                            kHalo, compute_done);
          halo_done = std::max(halo_done, m.delivered);
        }
      }
    }

    // --- residual allreduce between nodes.
    std::vector<SimTime> arrivals(kNodes, halo_done);
    const auto red = machine.mpi().allreduce(64, arrivals);
    comm_energy += red.energy;
    epoch = std::max(red.finish, sim.now());
    sim.run_until(epoch);
    // All of next iteration's work is released at `epoch`, so the calendar
    // resources can retire everything before it (keeps reserve() cheap over
    // long runs).
    machine.release(epoch);
  }

  AppOutcome out;
  out.makespan_ms = to_milliseconds(epoch);
  out.energy_mj = to_millijoules(machine.total_energy() + comm_energy);
  const auto s = runtime.stats();
  out.hw_frac = static_cast<double>(s.hw_tasks) /
                static_cast<double>(s.hw_tasks + s.sw_tasks);
  return out;
}

}  // namespace
}  // namespace ecoscale

int main(int argc, char** argv) {
  using namespace ecoscale;
  bench::init(argc, argv);
  bench::print_header("EXP-APP-holistic",
                      "cumulative effect of every ECOSCALE mechanism on "
                      "one application (abstract's holistic claim)");

  std::vector<AppConfig> ladder(6);
  ladder[0].name = "L0 baseline (SW, flat)";
  ladder[1] = ladder[0];
  ladder[1].name = "L1 +model offload";
  ladder[1].placement = PlacementPolicy::kModelBased;
  ladder[2] = ladder[1];
  ladder[2].name = "L2 +UNILOGIC sharing";
  ladder[2].share_fabric = true;
  ladder[3] = ladder[2];
  ladder[3].name = "L3 +lazy distribution";
  ladder[3].distribution = DistributionPolicy::kLazyLocal;
  ladder[4] = ladder[3];
  ladder[4].name = "L4 +PR bbox+LZ";
  ladder[4].bitstream = BitstreamMode::kBoundingBox;
  ladder[4].compression = CompressionMode::kLz;
  ladder[5] = ladder[4];
  ladder[5].name = "L5 +hybrid MPI/PGAS";
  ladder[5].hybrid_comm = true;

  Table t({"configuration", "makespan", "energy", "HW fraction",
           "vs baseline (time)", "vs baseline (energy)"});
  // Each ladder rung owns its own Machine + Simulator, so the rungs run on
  // the sweep pool; the baseline comparison happens after the barrier.
  const auto outcomes = bench::parallel_sweep(
      ladder.size(), [&](std::size_t i) { return run_app(ladder[i]); });
  const AppOutcome& base = outcomes[0];
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    const auto& out = outcomes[i];
    t.add_row({ladder[i].name, fmt_fixed(out.makespan_ms, 2) + " ms",
               fmt_fixed(out.energy_mj, 2) + " mJ", fmt_pct(out.hw_frac),
               fmt_ratio(base.makespan_ms / out.makespan_ms),
               fmt_ratio(base.energy_mj / out.energy_mj)});
  }
  bench::print_table(
      t,
      "10-iteration solver on 4 nodes x 4 workers: mixed kernels + halo\n"
      "exchange + allreduce per iteration. Each rung switches on one more\n"
      "ECOSCALE mechanism, cumulatively:");
  return 0;
}
