// EXP-F1-hops — hierarchical vs. flat interconnect (paper §2, Figure 1).
//
// Claim C1: tree-like hierarchical partitioning bounds the maximum
// communication distance (one extra hop per level) and keeps
// nearest-neighbour traffic on cheap local links, while flat organisations
// either melt down under contention (bus) or pay global distance for every
// exchange. Also reproduces the "Petascale = 5 hops, Exascale = 6–7 hops"
// observation by scaling worker count.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "interconnect/network.h"
#include "unimem/pgas.h"
#include "unimem/sync.h"

namespace ecoscale {
namespace {

NetworkConfig hier_params() {
  NetworkConfig cfg;
  LinkParams l0;
  l0.hop_latency = nanoseconds(20);
  l0.bandwidth = Bandwidth::from_gib_per_s(16.0);
  l0.pj_per_byte = 1.0;
  LinkParams l1 = l0;
  l1.hop_latency = nanoseconds(80);
  l1.bandwidth = Bandwidth::from_gib_per_s(10.0);
  l1.pj_per_byte = 3.0;
  LinkParams l2 = l1;
  l2.hop_latency = nanoseconds(200);
  l2.bandwidth = Bandwidth::from_gib_per_s(8.0);
  l2.pj_per_byte = 8.0;
  LinkParams l3 = l2;
  l3.hop_latency = nanoseconds(500);
  l3.pj_per_byte = 20.0;
  cfg.level_params = {{0, l0}, {1, l1}, {2, l2}, {3, l3}};
  return cfg;
}

/// One nearest-neighbour halo-exchange round: worker i sends `bytes` to
/// i±1 (1-D ring over the locality-preserving endpoint order).
struct ExchangeResult {
  double mean_hops = 0.0;
  SimTime finish = 0;
  double energy_uj = 0.0;
  std::uint64_t byte_hops = 0;
};

ExchangeResult neighbour_exchange(Network& net, Bytes bytes) {
  ExchangeResult r;
  const std::size_t n = net.endpoint_count();
  std::uint64_t hops = 0;
  Picojoules energy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::size_t peer : {(i + 1) % n, (i + n - 1) % n}) {
      Packet p{PacketType::kDma, {}, {}, bytes};
      const auto t = net.send(i, peer, p, 0);
      hops += static_cast<std::uint64_t>(t.hops);
      energy += t.energy;
      r.finish = std::max(r.finish, t.arrival);
    }
  }
  r.mean_hops = static_cast<double>(hops) / static_cast<double>(2 * n);
  r.energy_uj = to_microjoules(energy);
  r.byte_hops = net.byte_hops();
  return r;
}

}  // namespace
}  // namespace ecoscale

int main(int argc, char** argv) {
  using namespace ecoscale;
  bench::init(argc, argv);
  bench::print_header(
      "EXP-F1-hops",
      "hierarchical tree keeps neighbour exchanges local (claim C1)");

  const Bytes halo = kibibytes(32);

  // One sweep point per machine size; each point builds its own topologies
  // and Networks, so points are independent and the parallel run is
  // byte-identical to the sequential one.
  const std::vector<std::size_t> machine_sizes{64, 512, 4096};
  Table scale({"workers", "topology", "diameter", "mean hops", "exchange time",
               "energy", "byte-hops"});
  for (auto& rows :
       bench::parallel_sweep(machine_sizes.size(), [&](std::size_t idx) {
         const std::size_t workers = machine_sizes[idx];
         struct Entry {
           std::string name;
           Topology topo;
           bool shared_medium = false;
         };
         std::vector<Entry> topologies;
         // Tree of radix 8 per level (the ECOSCALE multi-layer hierarchy).
         std::vector<std::size_t> radices;
         for (std::size_t n = workers; n > 1; n /= 8) radices.push_back(8);
         topologies.push_back({"tree(radix 8)", make_tree(radices), false});
         // Flat baselines that actually exist at scale: a 2-D mesh and (for
         // the small size) a shared bus. A single-stage N-port crossbar is
         // not implementable for these N.
         const auto side = static_cast<std::size_t>(std::sqrt(workers));
         topologies.push_back({"2-D mesh", make_mesh2d(side, side), false});
         if (workers == 64) {
           topologies.push_back({"shared bus", make_bus(workers), true});
           topologies.push_back({"dragonfly", make_dragonfly(4, 4, 4), false});
         } else if (workers == 512) {
           topologies.push_back({"dragonfly", make_dragonfly(8, 8, 8), false});
         } else {
           topologies.push_back(
               {"dragonfly", make_dragonfly(16, 16, 16), false});
         }
         std::vector<std::vector<std::string>> rows;
         for (auto& e : topologies) {
           auto cfg = hier_params();
           cfg.shared_medium = e.shared_medium;
           Network net(std::move(e.topo), cfg);
           const auto r = neighbour_exchange(net, halo);
           rows.push_back({fmt_u64(workers), e.name, fmt_u64(net.diameter()),
                           fmt_fixed(r.mean_hops, 2),
                           fmt_time_ps(static_cast<double>(r.finish)),
                           fmt_fixed(r.energy_uj, 1) + " uJ",
                           fmt_bytes(static_cast<double>(r.byte_hops))});
         }
         return rows;
       })) {
    for (auto& row : rows) scale.add_row(std::move(row));
  }
  bench::print_table(
      scale,
      "Nearest-neighbour halo exchange (32 KiB per neighbour), one round.\n"
      "The tree matches flat meshes on neighbour traffic while keeping the\n"
      "global diameter logarithmic; the shared bus melts down:");

  // Hop-distance growth: one level per factor-of-8 in machine size
  // (paper: petascale ~5 hops, exascale pushes to 6-7).
  Table depth({"workers", "tree levels", "max hops (diameter)"});
  for (const std::size_t workers :
       {8u, 64u, 512u, 4096u, 32768u}) {
    std::vector<std::size_t> radices;
    for (std::size_t n = workers; n > 1; n /= 8) radices.push_back(8);
    Network net(make_tree(radices), hier_params());
    // Diameter of a balanced tree is 2×levels; computing analytically for
    // the largest sizes (BFS over 32k endpoints is wasteful).
    depth.add_row({fmt_u64(workers), fmt_u64(radices.size()),
                   fmt_u64(2 * radices.size())});
  }
  bench::print_table(depth, "Maximum communication distance vs. scale:");

  // Barrier synchronisation: hierarchical combine vs. flat hub, including
  // a three-level (chassis) machine at the largest size.
  const std::vector<std::size_t> barrier_sizes{8, 32, 128, 512};
  Table barrier({"workers", "tree barrier", "flat barrier", "speedup"});
  for (auto& row :
       bench::parallel_sweep(barrier_sizes.size(), [&](std::size_t idx) {
         const std::size_t total = barrier_sizes[idx];
         PgasConfig cfg;
         cfg.workers_per_node = 8;
         cfg.nodes = total / 8;
         if (cfg.nodes == 0) {
           cfg.nodes = 1;
           cfg.workers_per_node = total;
         }
         if (cfg.nodes >= 16) cfg.chassis = cfg.nodes / 8;  // 8 nodes/chassis
         std::vector<WorkerCoord> workers;
         std::vector<SimTime> arrivals;
         PgasSystem tree_sys(cfg);
         PgasSystem flat_sys(cfg);
         for (std::size_t i = 0; i < total; ++i) {
           workers.push_back(tree_sys.coord(i));
           arrivals.push_back(0);
         }
         const auto tree = tree_barrier(tree_sys, workers, arrivals);
         const auto flat = flat_barrier(flat_sys, workers, arrivals);
         return std::vector<std::string>{
             fmt_u64(total), fmt_time_ps(static_cast<double>(tree.finish)),
             fmt_time_ps(static_cast<double>(flat.finish)),
             fmt_ratio(static_cast<double>(flat.finish) /
                       static_cast<double>(tree.finish))};
       })) {
    barrier.add_row(std::move(row));
  }
  bench::print_table(barrier, "Barrier latency, hierarchical vs. flat hub:");
  return 0;
}
