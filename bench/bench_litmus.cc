// bench_litmus — litmus smoke over the UNIMEM memory model (DESIGN.md
// §7.10): the standard suite through both executors.
//
//  * exhaustive: every interleaving of each program against the real
//    PgasSystem; every outcome must be oracle-allowed;
//  * randomized: seed-fixed perturbation rounds on the sharded engine at
//    --sim-threads 1, re-run at --sim-threads N — outcome sets AND
//    fingerprints (outcome + per-page serialization logs + protocol
//    counters) must be byte-identical, or the binary exits non-zero.
//
// Any outcome outside the partition-consistency spec is FATAL: this is a
// correctness gate dressed as a bench, mirroring how bench_serve gates
// its determinism contract.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/table.h"
#include "litmus/executor.h"
#include "litmus/oracle.h"
#include "litmus/program.h"
#include "litmus/sharded.h"

namespace ecoscale {
namespace {

constexpr std::uint64_t kSeed = 2026;
constexpr std::size_t kRounds = 48;  // fixed randomized-schedule budget

}  // namespace
}  // namespace ecoscale

int main(int argc, char** argv) {
  using namespace ecoscale;
  using namespace ecoscale::litmus;
  bench::init(argc, argv);
  std::size_t par_threads = bench::options().sim_threads;
  if (par_threads == 0) par_threads = 4;

  Table table({"program", "interleavings", "exh outcomes", "allowed",
               "rand outcomes", "events", "nacks", "failovers",
               "migrations", "det"});
  bool all_within_model = true;
  bool all_deterministic = true;
  std::uint64_t total_events = 0;
  std::uint64_t total_failovers = 0;
  std::uint64_t total_migrations = 0;

  for (const LitmusProgram& program : standard_suite()) {
    const Oracle oracle(program);

    ExhaustiveResult exh;
    RandomizedConfig cfg;
    cfg.seed = kSeed;
    cfg.rounds = kRounds;
    cfg.sim_threads = 1;
    RandomizedResult seq;
    try {
      exh = check_exhaustive(program, oracle);
      seq = check_randomized(program, oracle, cfg);
    } catch (const CheckError& e) {
      std::cerr << "FATAL: " << e.what() << "\n";
      all_within_model = false;
      continue;
    }
    cfg.sim_threads = par_threads;
    const RandomizedResult par = run_randomized(program, cfg);
    const bool det = par.fingerprint == seq.fingerprint &&
                     par.outcomes == seq.outcomes && par.events == seq.events;
    all_deterministic = all_deterministic && det;

    table.add_row({program.name, fmt_u64(exh.interleavings),
                   fmt_u64(exh.outcomes.size()),
                   fmt_u64(oracle.allowed().size()),
                   fmt_u64(seq.outcomes.size()), fmt_u64(seq.events),
                   fmt_u64(seq.nacks), fmt_u64(seq.failovers),
                   fmt_u64(seq.migrations), det ? "ok" : "MISMATCH"});
    total_events += seq.events;
    total_failovers += seq.failovers;
    total_migrations += seq.migrations;
  }

  bench::print_table(
      table,
      "litmus suite: exhaustive interleavings vs the partition-consistency\n"
      "oracle, then " +
          std::to_string(kRounds) +
          " perturbation rounds on the sharded engine; 'det' compares the\n"
          "run fingerprint at --sim-threads 1 vs " +
          std::to_string(par_threads) + ":");

  std::cout << "LITMUS_JSON {"
            << "\"programs\": " << standard_suite().size()
            << ", \"rounds\": " << kRounds
            << ", \"events\": " << total_events
            << ", \"failovers\": " << total_failovers
            << ", \"migrations\": " << total_migrations
            << ", \"within_model\": " << (all_within_model ? 1 : 0)
            << ", \"det_match\": " << (all_deterministic ? 1 : 0) << "}\n";

  if (!all_within_model) {
    std::cerr << "FATAL: observed outcome outside the memory model\n";
    return 1;
  }
  if (!all_deterministic) {
    std::cerr << "FATAL: litmus runs are not byte-identical across "
                 "--sim-threads\n";
    return 1;
  }
  return 0;
}
