// EXP-C8-models — learned input-dependent models drive the HW/SW decision
// (paper §4.2, Figure 5: "new algorithms for choosing on the fly the most
// appropriate device to execute each function … input-dependent models of
// execution time and energy to select the best device").
//
// Workload: a mixed stream of kernels with wildly varying input sizes —
// exactly the regime where one static answer is wrong: small calls belong
// on the CPU (reconfiguration + pipeline fill dominate), large calls on
// the fabric. The model-based policy must learn the crossover per kernel.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "hls/dse.h"
#include "runtime/scheduler.h"

namespace ecoscale {
namespace {

struct PolicyOutcome {
  double makespan_ms = 0.0;
  double energy_mj = 0.0;
  double hw_frac = 0.0;
  double mean_turnaround_us = 0.0;
};

std::vector<Task> make_stream(const std::vector<KernelIR>& kernels,
                              std::size_t workers, int count,
                              std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Task> tasks;
  SimTime t = 0;
  for (int i = 0; i < count; ++i) {
    t += static_cast<SimTime>(rng.exponential(
        static_cast<double>(microseconds(150))));
    Task task;
    task.id = static_cast<TaskId>(i);
    const auto& k = kernels[rng.uniform_u64(kernels.size())];
    task.kernel = k.id;
    // Log-uniform sizes: 100 … 1M items.
    const double log_items = rng.uniform(2.0, 6.0);
    task.items = static_cast<std::uint64_t>(std::pow(10.0, log_items));
    task.features.items = static_cast<double>(task.items);
    task.features.bytes =
        static_cast<double>(task.items * (k.bytes_in + k.bytes_out));
    const std::size_t w = rng.uniform_u64(workers);
    task.home = WorkerCoord{static_cast<NodeId>(w / 4),
                            static_cast<WorkerId>(w % 4)};
    task.release = t;
    tasks.push_back(task);
  }
  return tasks;
}

PolicyOutcome run(PlacementPolicy placement, Objective objective,
                  const std::vector<KernelIR>& kernels,
                  const std::vector<Task>& stream) {
  MachineConfig mc;
  mc.nodes = 2;
  mc.workers_per_node = 4;
  Machine machine(mc);
  Simulator sim;
  RuntimeConfig rc;
  rc.placement = placement;
  rc.objective = objective;
  rc.size_threshold = 20000;
  RuntimeSystem runtime(machine, sim, rc);
  for (const auto& k : kernels) {
    runtime.register_kernel(k, emit_variants(k, 2));
  }
  for (const auto& t : stream) runtime.submit(t);
  runtime.run();
  const auto s = runtime.stats();
  PolicyOutcome out;
  out.makespan_ms = to_milliseconds(s.makespan);
  out.energy_mj = to_millijoules(s.energy);
  out.hw_frac = static_cast<double>(s.hw_tasks) /
                static_cast<double>(s.hw_tasks + s.sw_tasks);
  out.mean_turnaround_us = s.turnaround_ns.mean() / 1000.0;
  return out;
}

}  // namespace
}  // namespace ecoscale

int main() {
  using namespace ecoscale;
  bench::print_header(
      "EXP-C8-models",
      "learned time/energy models pick the right device per call (claim C8)");

  const std::vector<KernelIR> kernels = {
      make_stencil5_kernel(), make_montecarlo_kernel(),
      make_cart_split_kernel(), make_spmv_kernel()};
  const auto stream = make_stream(kernels, 8, 400, 0xDEC0DE);

  Table t({"placement policy", "makespan", "energy", "HW fraction",
           "mean turnaround"});
  const auto rows = {
      std::pair{"always software", PlacementPolicy::kAlwaysSoftware},
      std::pair{"always hardware", PlacementPolicy::kAlwaysHardware},
      std::pair{"size threshold (20k)", PlacementPolicy::kSizeThreshold},
      std::pair{"model-based (learned)", PlacementPolicy::kModelBased},
  };
  for (const auto& [name, policy] : rows) {
    const auto out = run(policy, Objective::kTime, kernels, stream);
    t.add_row({name, fmt_fixed(out.makespan_ms, 2) + " ms",
               fmt_fixed(out.energy_mj, 2) + " mJ", fmt_pct(out.hw_frac),
               fmt_fixed(out.mean_turnaround_us, 0) + " us"});
  }
  bench::print_table(
      t,
      "400 mixed-kernel calls, log-uniform sizes 1e2..1e6 items, 8 workers\n"
      "(time objective). The learned policy should approach the better of\n"
      "the static extremes on makespan without their energy pathologies:");

  Table obj({"objective", "makespan", "energy", "HW fraction"});
  for (const auto& [name, o] :
       {std::pair{"minimise time", Objective::kTime},
        std::pair{"minimise energy", Objective::kEnergy},
        std::pair{"minimise energy-delay", Objective::kEnergyDelay}}) {
    const auto out =
        run(PlacementPolicy::kModelBased, o, kernels, stream);
    obj.add_row({name, fmt_fixed(out.makespan_ms, 2) + " ms",
                 fmt_fixed(out.energy_mj, 2) + " mJ",
                 fmt_pct(out.hw_frac)});
  }
  bench::print_table(obj,
                     "Model-based policy under different objectives "
                     "(§4.2's scheduler knobs):");

  // Learning curve: prediction quality by stream position.
  {
    MachineConfig mc;
    mc.nodes = 2;
    mc.workers_per_node = 4;
    Machine machine(mc);
    Simulator sim;
    RuntimeConfig rc;
    rc.placement = PlacementPolicy::kModelBased;
    RuntimeSystem runtime(machine, sim, rc);
    for (const auto& k : kernels) {
      runtime.register_kernel(k, emit_variants(k, 2));
    }
    for (const auto& task : stream) runtime.submit(task);
    runtime.run();
    Table learn({"stream segment", "HW fraction"});
    const auto& results = runtime.results();
    const std::size_t seg = results.size() / 4;
    for (int q = 0; q < 4; ++q) {
      std::size_t hw = 0;
      for (std::size_t i = q * seg; i < (q + 1) * seg; ++i) {
        if (results[i].device != DeviceClass::kCpu) ++hw;
      }
      learn.add_row({"Q" + std::to_string(q + 1),
                     fmt_pct(static_cast<double>(hw) /
                             static_cast<double>(seg))});
    }
    bench::print_table(learn,
                       "Offload rate over time (training part -> actuation "
                       "part, Figure 5):");
  }
  return 0;
}
