// EXP-C9-lazy — lazy scheduling with per-worker local queues
// (paper §4.2: "To curb the overhead of monitoring remote status, we will
// implement local work queues per worker and infer (approximately) the
// status of remote workers via the status of the local queue, using
// techniques inspired by Lazy Scheduling [9].").
//
// Task storm over 16 workers with a skewed arrival distribution. Policies:
//   home-only     — no balancing (the no-scheduler baseline)
//   lazy-local    — spill to a node neighbour only when the local queue is
//                   deep; zero status polling
//   centralized   — global dispatcher with perfect queue knowledge
//   poll-everyone — per-task polling of all workers (perfect info, O(N)
//                   messages per task)
// Metrics: makespan, p95 queue wait, and the monitoring-message overhead
// the lazy design exists to avoid.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "hls/dse.h"
#include "runtime/scheduler.h"

namespace ecoscale {
namespace {

std::vector<Task> make_storm(std::size_t workers, int count,
                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Task> tasks;
  SimTime t = 0;
  for (int i = 0; i < count; ++i) {
    t += static_cast<SimTime>(
        rng.exponential(static_cast<double>(microseconds(40))));
    Task task;
    task.id = static_cast<TaskId>(i);
    task.kernel = make_cart_split_kernel().id;
    task.items = 20000 + rng.uniform_u64(60000);
    task.features.items = static_cast<double>(task.items);
    task.features.bytes = task.features.items * 16.0;
    // Zipf-skewed homes: a few workers take most of the arrivals.
    const std::size_t w = rng.zipf(workers, 1.0);
    task.home = WorkerCoord{static_cast<NodeId>(w / 4),
                            static_cast<WorkerId>(w % 4)};
    task.release = t;
    tasks.push_back(task);
  }
  return tasks;
}

struct DistOutcome {
  double makespan_ms = 0.0;
  double p95_wait_us = 0.0;
  std::uint64_t monitor_msgs = 0;
  std::uint64_t forwarded = 0;
};

DistOutcome run(DistributionPolicy policy, const std::vector<Task>& storm) {
  MachineConfig mc;
  mc.nodes = 4;
  mc.workers_per_node = 4;
  Machine machine(mc);
  Simulator sim;
  RuntimeConfig rc;
  rc.distribution = policy;
  rc.placement = PlacementPolicy::kAlwaysSoftware;  // isolate distribution
  rc.spill_depth = 3;
  RuntimeSystem runtime(machine, sim, rc);
  const auto kernel = make_cart_split_kernel();
  runtime.register_kernel(kernel, emit_variants(kernel, 1));
  for (const auto& t : storm) runtime.submit(t);
  runtime.run();
  auto s = runtime.stats();
  DistOutcome out;
  out.makespan_ms = to_milliseconds(s.makespan);
  out.p95_wait_us = s.queue_wait_ns.percentile(95) / 1000.0;
  out.monitor_msgs = s.monitor_messages;
  out.forwarded = s.forwarded_tasks;
  return out;
}

}  // namespace
}  // namespace ecoscale

int main() {
  using namespace ecoscale;
  bench::print_header(
      "EXP-C9-lazy",
      "local-queue lazy scheduling approximates perfect balancing without "
      "monitoring traffic (claim C9)");

  const auto storm = make_storm(16, 600, 0x1A2B);

  Table t({"distribution policy", "makespan", "p95 queue wait",
           "monitor msgs", "forwarded tasks"});
  for (const auto& [name, policy] :
       {std::pair{"home-only (no balancing)", DistributionPolicy::kHomeOnly},
        std::pair{"lazy local-queue", DistributionPolicy::kLazyLocal},
        std::pair{"centralized dispatcher", DistributionPolicy::kCentralized},
        std::pair{"poll-everyone oracle",
                  DistributionPolicy::kPollLeastLoaded}}) {
    const auto out = run(policy, storm);
    t.add_row({name, fmt_fixed(out.makespan_ms, 2) + " ms",
               fmt_fixed(out.p95_wait_us, 0) + " us",
               fmt_u64(out.monitor_msgs), fmt_u64(out.forwarded)});
  }
  bench::print_table(
      t,
      "600 tasks, Zipf-skewed over 16 workers (4 nodes x 4).\n"
      "Lazy should recover most of the oracle's makespan with orders of\n"
      "magnitude fewer monitoring messages:");

  // Spill-depth sensitivity for the lazy policy.
  Table depth({"spill depth", "makespan", "forwarded", "monitor msgs"});
  for (const std::size_t d : {1u, 2u, 4u, 8u, 16u}) {
    MachineConfig mc;
    mc.nodes = 4;
    mc.workers_per_node = 4;
    Machine machine(mc);
    Simulator sim;
    RuntimeConfig rc;
    rc.distribution = DistributionPolicy::kLazyLocal;
    rc.placement = PlacementPolicy::kAlwaysSoftware;
    rc.spill_depth = d;
    RuntimeSystem runtime(machine, sim, rc);
    const auto kernel = make_cart_split_kernel();
    runtime.register_kernel(kernel, emit_variants(kernel, 1));
    for (const auto& task : storm) runtime.submit(task);
    runtime.run();
    const auto s = runtime.stats();
    depth.add_row({fmt_u64(d), fmt_fixed(to_milliseconds(s.makespan), 2) +
                                   " ms",
                   fmt_u64(s.forwarded_tasks),
                   fmt_u64(s.monitor_messages)});
  }
  bench::print_table(depth,
                     "Lazy policy sensitivity to the local-queue spill "
                     "threshold:");
  return 0;
}
