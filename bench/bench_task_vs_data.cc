// EXP-C3-taskmove — move the task to the data, not the data to the task
// (paper §2, §4.1: "The UNIMEM architecture allows moving tasks and
// processes close to data instead of moving data around [7] and thus it
// reduces significantly the data traffic and the associated energy
// consumption and communication latency.").
//
// Workload: a reduction over a remote partition of `size` bytes.
//   move-data:  DMA the partition to the caller, reduce locally.
//   move-task:  ship a 256 B task closure to the owner, reduce there at
//               local DRAM bandwidth, return an 8 B result.
// The crossover where shipping data stops being acceptable is the series
// the paper's argument predicts.
#include <iostream>

#include "bench_util.h"
#include "unimem/pgas.h"
#include "worker/cpu.h"

namespace ecoscale {
namespace {

struct Outcome {
  SimTime finish = 0;
  Picojoules energy = 0.0;
  Bytes moved = 0;
};

constexpr double kReduceCyclesPerByte = 0.25;  // 4 B/cycle streaming reduce

Outcome move_data(Bytes size) {
  PgasConfig cfg;
  cfg.nodes = 2;
  cfg.workers_per_node = 4;
  PgasSystem pgas(cfg);
  CpuCluster cpu("caller", CpuConfig{});
  const auto remote = pgas.alloc(1, 0, size);
  // Pull the data, then reduce locally.
  const auto dma = pgas.dma({0, 0}, remote, size, /*write=*/false, 0);
  const auto exec = cpu.execute(
      dma.finish, kReduceCyclesPerByte * static_cast<double>(size), 1);
  return Outcome{exec.finish, dma.energy + exec.energy, size};
}

Outcome move_task(Bytes size) {
  PgasConfig cfg;
  cfg.nodes = 2;
  cfg.workers_per_node = 4;
  PgasSystem pgas(cfg);
  CpuCluster owner_cpu("owner", CpuConfig{});
  // The partition lives at node 1 (allocation registers its pages; the
  // owner-side reduction streams it straight from the local DRAM channel).
  (void)pgas.alloc(1, 0, size);
  // Ship the closure to the owner.
  const auto mig = pgas.migrate_task({0, 0}, {1, 0}, 0);
  // Owner reduces out of its local DRAM (streamed access).
  const auto rd = pgas.dram({1, 0}).access(mig.finish, size);
  const auto exec = owner_cpu.execute(
      rd.finish, kReduceCyclesPerByte * static_cast<double>(size), 1);
  // 8-byte result travels back.
  const auto result = pgas.store({1, 0}, pgas.alloc(0, 0, 64), 8, exec.finish);
  return Outcome{result.finish,
                 mig.energy + rd.energy + exec.energy + result.energy,
                 mig.bytes_moved + 8};
}

}  // namespace
}  // namespace ecoscale

int main() {
  using namespace ecoscale;
  bench::print_header("EXP-C3-taskmove",
                      "task migration beats data movement (claim C3)");

  Table t({"data size", "move-data time", "move-task time", "time ratio",
           "move-data energy", "move-task energy", "energy ratio",
           "bytes moved (data)", "bytes moved (task)"});
  for (const Bytes size :
       {kibibytes(4), kibibytes(64), mebibytes(1), mebibytes(8),
        mebibytes(64)}) {
    const auto data = move_data(size);
    const auto task = move_task(size);
    t.add_row({fmt_bytes(static_cast<double>(size)),
               fmt_time_ps(static_cast<double>(data.finish)),
               fmt_time_ps(static_cast<double>(task.finish)),
               fmt_ratio(static_cast<double>(data.finish) /
                         static_cast<double>(task.finish)),
               fmt_energy_pj(data.energy), fmt_energy_pj(task.energy),
               fmt_ratio(data.energy / task.energy),
               fmt_bytes(static_cast<double>(data.moved)),
               fmt_bytes(static_cast<double>(task.moved))});
  }
  bench::print_table(
      t,
      "Reduction over a remote 2nd-node partition. move-task ships a 256 B\n"
      "closure and an 8 B result; move-data ships the whole partition:");
  return 0;
}
