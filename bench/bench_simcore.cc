// EXP-SIMCORE — simulation-kernel microbenchmark.
//
// Every ECOSCALE experiment is bounded by how many simulated events per
// wall-clock second the discrete-event core retires, so this harness tracks
// the kernel's own perf trajectory: schedule/step throughput of the event
// queue (InlineAction slab + 4-ary heap + sorted-run backlog drain) and
// reserve() throughput of the two reservation resources, including the
// oversubscribed long-run pattern that used to send CalendarTimeline
// quadratic before interval coalescing + watermark pruning.
//
// Two schedule/step workloads:
//  - ring: 64 self-rescheduling actors with 40-byte captures, one event in
//    flight each — steady-state pop/push with a shallow heap. The 40-byte
//    capture matters: it exceeds std::function's 16-byte SBO, so the
//    pre-InlineAction kernel paid one malloc/free per event here.
//  - backlog: schedule a deep batch (random times), then drain it — the
//    pattern that triggers the sorted-run conversion.
//
// Emits the usual tables plus, always, one machine-readable JSON summary
// line (`SIMCORE_JSON {...}`) so CI and scripts can scrape the trajectory
// without parsing tables; `--json <path>` additionally dumps the tables.
#include <chrono>
#include <cstdint>
#include <iostream>
#include <type_traits>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "sim/inline_action.h"
#include "sim/parallel.h"
#include "sim/simulator.h"
#include "sim/timeline.h"

namespace ecoscale {
namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct ScheduleStepResult {
  double events_per_sec = 0.0;
  std::uint64_t events = 0;
  std::uint64_t pool_spills = 0;  // heap trips taken by the spill pool
};

/// 40 bytes of captured state per event (with the actor pointer), matching
/// the message-descriptor captures the subsystem models schedule.
struct Payload {
  std::uint64_t w[4];
};

/// Self-rescheduling actor ring: steady-state schedule/step with one event
/// in flight per actor.
ScheduleStepResult ring_throughput(std::uint64_t total_events) {
  const auto before = detail::ActionBlockPool::stats();
  Simulator sim;
  sim.reserve_events(128);
  std::uint64_t budget = total_events;
  struct Actor {
    Simulator* sim;
    std::uint64_t* budget;
    SimDuration period;
    void fire() {
      if (*budget == 0) return;
      --*budget;
      Actor* self = this;
      Payload p{};
      p.w[0] = *budget;
      sim->schedule_after(period, [self, p] {
        (void)p;
        self->fire();
      });
    }
  };
  std::vector<Actor> actors;
  actors.reserve(64);
  for (std::uint64_t i = 0; i < 64; ++i) {
    actors.push_back(Actor{&sim, &budget, 10 + i});
  }
  for (auto& a : actors) a.fire();
  sim.run();
  const auto after = detail::ActionBlockPool::stats();
  ScheduleStepResult r;
  r.events = sim.events_processed();
  r.events_per_sec = sim.events_per_second();
  r.pool_spills = after.pool_misses - before.pool_misses;
  return r;
}

/// Deep-backlog drain: schedule `total_events` at random times, then run.
ScheduleStepResult backlog_throughput(std::uint64_t total_events) {
  const auto before = detail::ActionBlockPool::stats();
  Simulator sim;
  sim.reserve_events(total_events);
  Rng rng(42);
  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < total_events; ++i) {
    Payload p{};
    p.w[0] = i;
    sim.schedule_at(rng.uniform_u64(std::uint64_t{1} << 30),
                    [p, &sink] { sink += p.w[0]; });
  }
  sim.run();
  const double wall = seconds_since(t0);
  const auto after = detail::ActionBlockPool::stats();
  ScheduleStepResult r;
  r.events = sim.events_processed();
  r.events_per_sec = static_cast<double>(r.events) / wall;
  r.pool_spills = after.pool_misses - before.pool_misses;
  return r;
}

// --- sharded parallel engine --------------------------------------------

/// Per-shard FNV-1a accumulator (same recipe as the determinism tests).
/// Each shard's actions only ever touch their own shard's slot, and posted
/// actions run on the destination shard, so the array needs no locks.
struct ShardHash {
  std::uint64_t h = 1469598103934665603ull;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 1099511628211ull;
    }
  }
};

struct ShardedMeshResult {
  std::uint64_t events = 0;
  std::uint64_t windows = 0;
  std::uint64_t messages = 0;
  std::uint64_t hash = 0;     // combined per-shard hashes + engine counters
  std::size_t threads = 0;    // threads the window loop actually used
  double wall_s = 0.0;
  std::uint64_t shard_windows = 0;  // per-shard executions across rounds
  std::uint64_t stalled = 0;        // skipped shard-windows (barrier stall)
  std::uint64_t steals = 0;         // cross-thread claims (wall-clock-side)
};

/// Cross-posting actor mesh on the ShardedSimulator: per-shard
/// self-rescheduling actors where one fire in four also posts an event to
/// another shard at now + lookahead + jitter. Exercises window turnover,
/// the canonical mailbox merge and the post() latency contract — the
/// engine-level analogue of the multi-node runtime workloads.
ShardedMeshResult sharded_mesh(std::size_t shards, std::size_t threads,
                               std::size_t actors_per_shard,
                               std::uint64_t fires_per_actor) {
  ShardedConfig sc;
  sc.shards = shards;
  sc.lookahead = 200;
  sc.threads = threads;
  sc.mailbox_capacity = 256;
  // Legacy regression lock: this table's committed baseline hash encodes
  // the PR-5 fixed-window schedule (window count included), so it pins
  // kFixedWindow forever. The adaptive engine is gated by the imbalanced
  // scenario below.
  sc.window_mode = WindowMode::kFixedWindow;
  ShardedSimulator engine(sc);
  std::vector<ShardHash> hashes(shards);

  struct Actor {
    ShardedSimulator* engine;
    ShardHash* hashes;
    std::size_t shard;
    std::size_t shards;
    std::uint64_t id;
    std::uint64_t left;
    SimDuration period;
    void fire() {
      hashes[shard].mix(engine->shard(shard).now() ^ (id * 0x9e3779b9u));
      if (left == 0) return;
      --left;
      const std::uint64_t token = (id << 32) ^ left;
      if (shards > 1 && token % 4 == 0) {
        const std::size_t dst =
            (shard + 1 + token % (shards - 1)) % shards;
        const SimTime at = engine->shard(shard).now() +
                           engine->lookahead() + token % 64;
        ShardHash* hs = hashes;
        engine->post(shard, dst, at, [hs, dst, token] {
          hs[dst].mix(token);
        });
      }
      Actor* self = this;
      engine->shard(shard).schedule_after(period, [self] { self->fire(); });
    }
  };

  std::vector<Actor> actors;
  actors.reserve(shards * actors_per_shard);
  for (std::size_t s = 0; s < shards; ++s) {
    for (std::size_t a = 0; a < actors_per_shard; ++a) {
      actors.push_back(Actor{&engine, hashes.data(), s, shards,
                             s * actors_per_shard + a, fires_per_actor,
                             static_cast<SimDuration>(11 + 7 * a)});
    }
  }
  for (auto& a : actors) {
    Actor* self = &a;
    engine.shard(a.shard).schedule_at(1 + a.id % 8, [self] { self->fire(); });
  }

  const auto t0 = std::chrono::steady_clock::now();
  engine.run();
  ShardedMeshResult r;
  r.wall_s = seconds_since(t0);
  r.events = engine.events_processed();
  r.windows = engine.windows();
  r.messages = engine.messages();
  r.threads = engine.threads_used();
  r.shard_windows = engine.shard_windows();
  r.stalled = engine.stalled_shard_windows();
  r.steals = engine.steals();
  ShardHash combined;
  for (const auto& h : hashes) combined.mix(h.h);
  combined.mix(r.events);
  combined.mix(r.windows);
  combined.mix(r.messages);
  r.hash = combined.h;
  return r;
}

// --- imbalanced topology: hot shard + periodic cold bursts ----------------

struct ImbalancedMeshResult {
  std::uint64_t events = 0;
  std::uint64_t rounds = 0;          // engine synchronization rounds
  std::uint64_t shard_windows = 0;   // per-shard window executions
  std::uint64_t stalled = 0;         // shard-windows skipped (no work)
  std::uint64_t steals = 0;          // wall-clock-side, not hashed
  std::uint64_t messages = 0;
  std::uint64_t hash = 0;
  std::size_t threads = 0;
  double wall_s = 0.0;
  double stall_frac() const {
    const std::uint64_t total = shard_windows + stalled;
    return total == 0 ? 0.0
                      : static_cast<double>(stalled) / static_cast<double>(total);
  }
};

/// The fixed-window engine's worst case (DESIGN.md §7.8): shard 0 fires
/// continuously and holds the global floor, shards 1..63 wake in short
/// synchronized bursts once per 20 us period and sleep in between. Fixed
/// windows march every shard forward one lookahead (200 ns) at a time —
/// 100 all-stall barrier rounds per quiet gap — while adaptive horizons
/// let the hot shard cross each gap in a single fat window and the cold
/// burst rounds spread over the worker threads via the steal queues.
ImbalancedMeshResult imbalanced_mesh(WindowMode mode, std::size_t threads) {
  constexpr std::size_t kShards = 64;
  constexpr SimTime kPeriod = 20000;
  constexpr int kEpochs = 60;
  constexpr std::uint64_t kBurst = 16;
  ShardedConfig sc;
  sc.shards = kShards;
  sc.lookahead = 200;
  sc.threads = threads;
  sc.mailbox_capacity = 1024;
  sc.window_mode = mode;
  ShardedSimulator engine(sc);
  std::vector<ShardHash> hashes(kShards);

  struct Hot {
    ShardedSimulator* eng;
    ShardHash* hashes;
    SimTime stop_at;
    Rng rng;
    std::uint64_t fired = 0;
    void fire() {
      Simulator& sim = eng->shard(0);
      hashes[0].mix(sim.now());
      if (sim.now() >= stop_at) return;
      if (++fired % 1024 == 0) {  // rare mid-gap wakeup of a cold shard
        const std::size_t to = 1 + rng.uniform_u64(63);
        ShardHash* hs = hashes;
        ShardedSimulator* e = eng;
        eng->post(0, to, sim.now() + 200 + rng.uniform_u64(100),
                  [e, hs, to] { hs[to].mix(e->shard(to).now()); });
      }
      sim.schedule_after(1 + rng.uniform_u64(11), [this] { fire(); });
    }
  };
  struct Cold {
    ShardedSimulator* eng;
    ShardHash* hashes;
    std::size_t shard;
    SimTime next_burst;
    std::uint64_t burst_left = kBurst;
    int epochs_left = kEpochs;
    Rng rng;
    void fire() {
      Simulator& sim = eng->shard(shard);
      hashes[shard].mix(sim.now());
      if (burst_left > 0) {
        --burst_left;
        sim.schedule_after(1 + rng.uniform_u64(5), [this] { fire(); });
        return;
      }
      // Burst done: one message to the next cold shard, then sleep until
      // the next period boundary.
      const std::size_t to = 1 + (shard % 63);
      ShardHash* hs = hashes;
      ShardedSimulator* e = eng;
      eng->post(shard, to, sim.now() + 200 + rng.uniform_u64(50),
                [e, hs, to] { hs[to].mix(e->shard(to).now()); });
      if (--epochs_left <= 0) return;
      next_burst += kPeriod;
      burst_left = kBurst;
      sim.schedule_at(next_burst, [this] { fire(); });
    }
  };

  Hot hot{&engine, hashes.data(), kPeriod * kEpochs, Rng(0x4077)};
  engine.shard(0).schedule_at(1, [&hot] { hot.fire(); });
  std::vector<Cold> colds;
  colds.reserve(kShards - 1);
  for (std::size_t s = 1; s < kShards; ++s) {
    colds.push_back(Cold{&engine, hashes.data(), s,
                         static_cast<SimTime>(100 + s * 3), kBurst, kEpochs,
                         Rng(0xC01D + s)});
  }
  for (auto& c : colds) {
    Cold* self = &c;
    engine.shard(c.shard).schedule_at(c.next_burst, [self] { self->fire(); });
  }

  const auto t0 = std::chrono::steady_clock::now();
  engine.run();
  ImbalancedMeshResult r;
  r.wall_s = seconds_since(t0);
  r.events = engine.events_processed();
  r.rounds = engine.windows();
  r.shard_windows = engine.shard_windows();
  r.stalled = engine.stalled_shard_windows();
  r.steals = engine.steals();
  r.messages = engine.messages();
  r.threads = engine.threads_used();
  ShardHash combined;
  for (const auto& h : hashes) combined.mix(h.h);
  combined.mix(r.events);
  combined.mix(r.rounds);
  combined.mix(r.shard_windows);
  combined.mix(r.stalled);  // deterministic: derived from published state
  combined.mix(r.messages);
  r.hash = combined.h;
  return r;
}

/// reserve() throughput for a timeline type under a given load pattern.
template <typename TimelineT>
double reserve_throughput(std::uint64_t reserves, std::uint64_t base_step,
                          std::uint64_t jitter, SimDuration max_service,
                          std::uint64_t release_every, TimelineT& tl) {
  Rng rng(7);
  SimTime base = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < reserves; ++i) {
    base += rng.uniform_u64(base_step);
    tl.reserve(base + rng.uniform_u64(jitter), 1 + rng.uniform_u64(max_service));
    if constexpr (std::is_same_v<TimelineT, CalendarTimeline>) {
      if (release_every != 0 && i % release_every == 0) tl.release(base);
    }
  }
  return static_cast<double>(reserves) / seconds_since(t0);
}

}  // namespace
}  // namespace ecoscale

int main(int argc, char** argv) {
  using namespace ecoscale;
  bench::init(argc, argv);
  bench::print_header("EXP-SIMCORE",
                      "discrete-event kernel throughput trajectory");

  // --- schedule/step ------------------------------------------------------
  constexpr std::uint64_t kEvents = 2000000;
  // Warm up allocator/pool state, then measure.
  ring_throughput(kEvents / 10);
  const auto ring = ring_throughput(kEvents);
  backlog_throughput(kEvents / 10);
  const auto backlog = backlog_throughput(kEvents);

  Table kernel({"workload", "events", "events/sec", "pool heap spills"});
  kernel.add_row({"ring (64 actors)", fmt_u64(ring.events),
                  fmt_sci(ring.events_per_sec, 3), fmt_u64(ring.pool_spills)});
  kernel.add_row({"backlog drain", fmt_u64(backlog.events),
                  fmt_sci(backlog.events_per_sec, 3),
                  fmt_u64(backlog.pool_spills)});
  bench::print_table(
      kernel,
      "schedule/step throughput, 40-byte captures (inline fast path;\n"
      "zero heap allocations per event in steady state):");

  // --- reserve throughput -------------------------------------------------
  // In-order pattern: ready times trend forward with modest jitter; the
  // resource keeps up with offered load (gaps exist).
  constexpr std::uint64_t kReserves = 2000000;
  Table res({"resource", "pattern", "reserves/sec", "live intervals",
             "peak live"});
  {
    Timeline fifo("fifo");
    const double rps = reserve_throughput(kReserves, 40, 200, 20, 0, fifo);
    res.add_row({"Timeline", "in-order", fmt_sci(rps, 3), "1", "1"});
  }
  {
    CalendarTimeline cal("cal");
    const double rps = reserve_throughput(kReserves, 40, 200, 20, 0, cal);
    res.add_row({"CalendarTimeline", "in-order", fmt_sci(rps, 3),
                 fmt_u64(cal.live_intervals()),
                 fmt_u64(cal.peak_live_intervals())});
  }
  // Oversubscribed long-run pattern: offered load exceeds capacity, so
  // reservations pile up at the frontier. Pre-coalescing this accumulated
  // one interval per reservation and each reserve() walked the whole tail.
  {
    CalendarTimeline cal("cal");
    const double rps = reserve_throughput(kReserves, 20, 500, 30, 0, cal);
    res.add_row({"CalendarTimeline", "oversubscribed", fmt_sci(rps, 3),
                 fmt_u64(cal.live_intervals()),
                 fmt_u64(cal.peak_live_intervals())});
  }
  // Same pattern with a periodic release watermark (the epoch-boundary
  // call sites in Machine/PgasSystem).
  CalendarTimeline cal_rel("cal");
  const double rel_rps =
      reserve_throughput(kReserves, 20, 500, 30, 4096, cal_rel);
  res.add_row({"CalendarTimeline", "oversubscribed+release",
               fmt_sci(rel_rps, 3), fmt_u64(cal_rel.live_intervals()),
               fmt_u64(cal_rel.peak_live_intervals())});
  bench::print_table(
      res,
      "reserve() throughput, 2M reservations per pattern. Coalescing keeps\n"
      "the calendar's live-interval set bounded; release() additionally\n"
      "prunes the retired past:");

  // --- sharded parallel engine scaling ------------------------------------
  // 8 shards of cross-posting actors, run sequentially and at the
  // requested --sim-threads; identical combined hashes demonstrate the
  // deterministic merge, the events/sec column the window-loop scaling.
  constexpr std::size_t kShards = 8;
  constexpr std::size_t kActorsPerShard = 16;
  constexpr std::uint64_t kFires = 1500;
  sharded_mesh(kShards, 1, kActorsPerShard, kFires / 8);  // warm-up
  const auto seq = sharded_mesh(kShards, 1, kActorsPerShard, kFires);
  const auto par =
      sharded_mesh(kShards, bench::sim_threads(), kActorsPerShard, kFires);
  const double seq_eps = static_cast<double>(seq.events) / seq.wall_s;
  const double par_eps = static_cast<double>(par.events) / par.wall_s;
  const bool hashes_match = seq.hash == par.hash;
  Table sharded({"sim threads", "events", "windows", "messages",
                 "events/sec", "speedup", "hash"});
  sharded.add_row({"1", fmt_u64(seq.events), fmt_u64(seq.windows),
                   fmt_u64(seq.messages), fmt_sci(seq_eps, 3), "1.00x",
                   fmt_u64(seq.hash)});
  sharded.add_row({fmt_u64(par.threads), fmt_u64(par.events),
                   fmt_u64(par.windows), fmt_u64(par.messages),
                   fmt_sci(par_eps, 3), fmt_ratio(par_eps / seq_eps),
                   fmt_u64(par.hash)});
  bench::print_table(
      sharded,
      "sharded engine, 8 shards x 16 cross-posting actors (--sim-threads\n"
      "selects the parallel row; hashes must match — the merge order is\n"
      "canonical, so thread count never changes results):");
  if (!hashes_match) {
    std::cerr << "FATAL: sharded engine hash mismatch across thread counts\n";
    return 1;
  }

  // --- imbalanced topology: adaptive lookahead vs fixed windows -----------
  // 1 hot shard + 63 periodic-burst cold shards, both window modes, run
  // sequentially and at --sim-threads. Deterministic columns (events,
  // rounds, shard windows, messages, hash) are identical across thread
  // counts — enforced in-binary below — and the rounds / stall-% contrast
  // is the adaptive engine's acceptance metric: fixed windows burn ~100
  // all-stall barrier rounds per quiet gap, adaptive crosses each gap in
  // one window, so the parallel run stops being barrier-bound.
  imbalanced_mesh(WindowMode::kAdaptive, 1);  // warm-up
  const auto fix_seq = imbalanced_mesh(WindowMode::kFixedWindow, 1);
  const auto fix_par =
      imbalanced_mesh(WindowMode::kFixedWindow, bench::sim_threads());
  const auto ada_seq = imbalanced_mesh(WindowMode::kAdaptive, 1);
  const auto ada_par =
      imbalanced_mesh(WindowMode::kAdaptive, bench::sim_threads());
  const bool imb_hashes_match =
      fix_seq.hash == fix_par.hash && ada_seq.hash == ada_par.hash;
  const double fix_speedup = fix_seq.wall_s / fix_par.wall_s;
  const double ada_speedup = ada_seq.wall_s / ada_par.wall_s;
  const double improvement = ada_speedup / fix_speedup;
  Table imb({"mode", "threads", "events", "rounds", "shard windows",
             "stall %", "messages", "events/sec", "hash"});
  const auto imb_row = [&imb](const char* name,
                              const ImbalancedMeshResult& r) {
    imb.add_row({name, fmt_u64(r.threads) + "t", fmt_u64(r.events),
                 fmt_u64(r.rounds), fmt_u64(r.shard_windows),
                 fmt_pct(r.stall_frac()), fmt_u64(r.messages),
                 fmt_sci(static_cast<double>(r.events) / r.wall_s, 3),
                 fmt_u64(r.hash)});
  };
  imb_row("fixed/seq", fix_seq);
  imb_row("fixed/par", fix_par);
  imb_row("adaptive/seq", ada_seq);
  imb_row("adaptive/par", ada_par);
  bench::print_table(
      imb,
      "imbalanced mesh, 1 hot + 63 burst-idle shards (adaptive horizons\n"
      "cross the quiet gaps in one round; hashes must match within each\n"
      "mode across thread counts):");
  std::cout << "imbalanced speedup: fixed " << fmt_ratio(fix_speedup)
            << ", adaptive " << fmt_ratio(ada_speedup) << " ("
            << fmt_ratio(improvement) << " better; stall "
            << fmt_pct(fix_seq.stall_frac()) << " -> "
            << fmt_pct(ada_seq.stall_frac()) << ", steals "
            << fmt_u64(ada_par.steals) << ")\n\n";
  if (!imb_hashes_match) {
    std::cerr << "FATAL: imbalanced-mesh hash mismatch across thread "
                 "counts (fixed " << fix_seq.hash << " vs " << fix_par.hash
              << ", adaptive " << ada_seq.hash << " vs " << ada_par.hash
              << ")\n";
    return 1;
  }
  if (ada_seq.rounds * 4 >= fix_seq.rounds) {
    std::cerr << "FATAL: adaptive horizons stopped collapsing quiet gaps ("
              << ada_seq.rounds << " rounds vs fixed " << fix_seq.rounds
              << ")\n";
    return 1;
  }

  // --- machine-readable summary ------------------------------------------
  std::cout << "SIMCORE_JSON {"
            << "\"ring_events_per_sec\": " << ring.events_per_sec
            << ", \"backlog_events_per_sec\": " << backlog.events_per_sec
            << ", \"events\": " << ring.events
            << ", \"pool_heap_spills\": "
            << ring.pool_spills + backlog.pool_spills
            << ", \"calendar_oversubscribed_release_reserves_per_sec\": "
            << rel_rps
            << ", \"calendar_peak_live_intervals\": "
            << cal_rel.peak_live_intervals()
            << ", \"sharded_events_per_sec_1t\": " << seq_eps
            << ", \"sharded_events_per_sec_nt\": " << par_eps
            << ", \"sharded_threads\": " << par.threads
            << ", \"sharded_hash_match\": " << (hashes_match ? 1 : 0)
            << ", \"sharded_windows_executed\": " << par.shard_windows
            << ", \"sharded_barrier_stall_pct\": "
            << 100.0 * static_cast<double>(par.stalled) /
                   static_cast<double>(par.shard_windows + par.stalled)
            << ", \"sharded_steals\": " << par.steals
            << ", \"imb_fixed_speedup\": " << fix_speedup
            << ", \"imb_adaptive_speedup\": " << ada_speedup
            << ", \"imb_speedup_improvement\": " << improvement
            << ", \"imb_fixed_stall_pct\": " << 100.0 * fix_seq.stall_frac()
            << ", \"imb_adaptive_stall_pct\": "
            << 100.0 * ada_seq.stall_frac()
            << ", \"imb_rounds_fixed\": " << fix_seq.rounds
            << ", \"imb_rounds_adaptive\": " << ada_seq.rounds
            << ", \"imb_steals\": " << ada_par.steals
            << ", \"imb_hash_match\": " << (imb_hashes_match ? 1 : 0)
            << "}\n";
  return 0;
}
