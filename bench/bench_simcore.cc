// EXP-SIMCORE — simulation-kernel microbenchmark.
//
// Every ECOSCALE experiment is bounded by how many simulated events per
// wall-clock second the discrete-event core retires, so this harness tracks
// the kernel's own perf trajectory: schedule/step throughput of the event
// queue (InlineAction slab + 4-ary heap + sorted-run backlog drain) and
// reserve() throughput of the two reservation resources, including the
// oversubscribed long-run pattern that used to send CalendarTimeline
// quadratic before interval coalescing + watermark pruning.
//
// Two schedule/step workloads:
//  - ring: 64 self-rescheduling actors with 40-byte captures, one event in
//    flight each — steady-state pop/push with a shallow heap. The 40-byte
//    capture matters: it exceeds std::function's 16-byte SBO, so the
//    pre-InlineAction kernel paid one malloc/free per event here.
//  - backlog: schedule a deep batch (random times), then drain it — the
//    pattern that triggers the sorted-run conversion.
//
// Emits the usual tables plus, always, one machine-readable JSON summary
// line (`SIMCORE_JSON {...}`) so CI and scripts can scrape the trajectory
// without parsing tables; `--json <path>` additionally dumps the tables.
#include <chrono>
#include <cstdint>
#include <iostream>
#include <type_traits>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "sim/inline_action.h"
#include "sim/simulator.h"
#include "sim/timeline.h"

namespace ecoscale {
namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct ScheduleStepResult {
  double events_per_sec = 0.0;
  std::uint64_t events = 0;
  std::uint64_t pool_spills = 0;  // heap trips taken by the spill pool
};

/// 40 bytes of captured state per event (with the actor pointer), matching
/// the message-descriptor captures the subsystem models schedule.
struct Payload {
  std::uint64_t w[4];
};

/// Self-rescheduling actor ring: steady-state schedule/step with one event
/// in flight per actor.
ScheduleStepResult ring_throughput(std::uint64_t total_events) {
  const auto before = detail::ActionBlockPool::stats();
  Simulator sim;
  sim.reserve_events(128);
  std::uint64_t budget = total_events;
  struct Actor {
    Simulator* sim;
    std::uint64_t* budget;
    SimDuration period;
    void fire() {
      if (*budget == 0) return;
      --*budget;
      Actor* self = this;
      Payload p{};
      p.w[0] = *budget;
      sim->schedule_after(period, [self, p] {
        (void)p;
        self->fire();
      });
    }
  };
  std::vector<Actor> actors;
  actors.reserve(64);
  for (std::uint64_t i = 0; i < 64; ++i) {
    actors.push_back(Actor{&sim, &budget, 10 + i});
  }
  for (auto& a : actors) a.fire();
  sim.run();
  const auto after = detail::ActionBlockPool::stats();
  ScheduleStepResult r;
  r.events = sim.events_processed();
  r.events_per_sec = sim.events_per_second();
  r.pool_spills = after.pool_misses - before.pool_misses;
  return r;
}

/// Deep-backlog drain: schedule `total_events` at random times, then run.
ScheduleStepResult backlog_throughput(std::uint64_t total_events) {
  const auto before = detail::ActionBlockPool::stats();
  Simulator sim;
  sim.reserve_events(total_events);
  Rng rng(42);
  std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < total_events; ++i) {
    Payload p{};
    p.w[0] = i;
    sim.schedule_at(rng.uniform_u64(std::uint64_t{1} << 30),
                    [p, &sink] { sink += p.w[0]; });
  }
  sim.run();
  const double wall = seconds_since(t0);
  const auto after = detail::ActionBlockPool::stats();
  ScheduleStepResult r;
  r.events = sim.events_processed();
  r.events_per_sec = static_cast<double>(r.events) / wall;
  r.pool_spills = after.pool_misses - before.pool_misses;
  return r;
}

/// reserve() throughput for a timeline type under a given load pattern.
template <typename TimelineT>
double reserve_throughput(std::uint64_t reserves, std::uint64_t base_step,
                          std::uint64_t jitter, SimDuration max_service,
                          std::uint64_t release_every, TimelineT& tl) {
  Rng rng(7);
  SimTime base = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < reserves; ++i) {
    base += rng.uniform_u64(base_step);
    tl.reserve(base + rng.uniform_u64(jitter), 1 + rng.uniform_u64(max_service));
    if constexpr (std::is_same_v<TimelineT, CalendarTimeline>) {
      if (release_every != 0 && i % release_every == 0) tl.release(base);
    }
  }
  return static_cast<double>(reserves) / seconds_since(t0);
}

}  // namespace
}  // namespace ecoscale

int main(int argc, char** argv) {
  using namespace ecoscale;
  bench::init(argc, argv);
  bench::print_header("EXP-SIMCORE",
                      "discrete-event kernel throughput trajectory");

  // --- schedule/step ------------------------------------------------------
  constexpr std::uint64_t kEvents = 2000000;
  // Warm up allocator/pool state, then measure.
  ring_throughput(kEvents / 10);
  const auto ring = ring_throughput(kEvents);
  backlog_throughput(kEvents / 10);
  const auto backlog = backlog_throughput(kEvents);

  Table kernel({"workload", "events", "events/sec", "pool heap spills"});
  kernel.add_row({"ring (64 actors)", fmt_u64(ring.events),
                  fmt_sci(ring.events_per_sec, 3), fmt_u64(ring.pool_spills)});
  kernel.add_row({"backlog drain", fmt_u64(backlog.events),
                  fmt_sci(backlog.events_per_sec, 3),
                  fmt_u64(backlog.pool_spills)});
  bench::print_table(
      kernel,
      "schedule/step throughput, 40-byte captures (inline fast path;\n"
      "zero heap allocations per event in steady state):");

  // --- reserve throughput -------------------------------------------------
  // In-order pattern: ready times trend forward with modest jitter; the
  // resource keeps up with offered load (gaps exist).
  constexpr std::uint64_t kReserves = 2000000;
  Table res({"resource", "pattern", "reserves/sec", "live intervals",
             "peak live"});
  {
    Timeline fifo("fifo");
    const double rps = reserve_throughput(kReserves, 40, 200, 20, 0, fifo);
    res.add_row({"Timeline", "in-order", fmt_sci(rps, 3), "1", "1"});
  }
  {
    CalendarTimeline cal("cal");
    const double rps = reserve_throughput(kReserves, 40, 200, 20, 0, cal);
    res.add_row({"CalendarTimeline", "in-order", fmt_sci(rps, 3),
                 fmt_u64(cal.live_intervals()),
                 fmt_u64(cal.peak_live_intervals())});
  }
  // Oversubscribed long-run pattern: offered load exceeds capacity, so
  // reservations pile up at the frontier. Pre-coalescing this accumulated
  // one interval per reservation and each reserve() walked the whole tail.
  {
    CalendarTimeline cal("cal");
    const double rps = reserve_throughput(kReserves, 20, 500, 30, 0, cal);
    res.add_row({"CalendarTimeline", "oversubscribed", fmt_sci(rps, 3),
                 fmt_u64(cal.live_intervals()),
                 fmt_u64(cal.peak_live_intervals())});
  }
  // Same pattern with a periodic release watermark (the epoch-boundary
  // call sites in Machine/PgasSystem).
  CalendarTimeline cal_rel("cal");
  const double rel_rps =
      reserve_throughput(kReserves, 20, 500, 30, 4096, cal_rel);
  res.add_row({"CalendarTimeline", "oversubscribed+release",
               fmt_sci(rel_rps, 3), fmt_u64(cal_rel.live_intervals()),
               fmt_u64(cal_rel.peak_live_intervals())});
  bench::print_table(
      res,
      "reserve() throughput, 2M reservations per pattern. Coalescing keeps\n"
      "the calendar's live-interval set bounded; release() additionally\n"
      "prunes the retired past:");

  // --- machine-readable summary ------------------------------------------
  std::cout << "SIMCORE_JSON {"
            << "\"ring_events_per_sec\": " << ring.events_per_sec
            << ", \"backlog_events_per_sec\": " << backlog.events_per_sec
            << ", \"events\": " << ring.events
            << ", \"pool_heap_spills\": "
            << ring.pool_spills + backlog.pool_spills
            << ", \"calendar_oversubscribed_release_reserves_per_sec\": "
            << rel_rps
            << ", \"calendar_peak_live_intervals\": "
            << cal_rel.peak_live_intervals() << "}\n";
  return 0;
}
