// EXP-RES — resilience (paper abstract: "To further increase energy
// efficiency, as well as to provide resilience, the Workers employ
// reconfigurable accelerators…").
//
// Two mechanisms: task re-execution after worker failures, and periodic
// configuration scrubbing against fabric SEUs.
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "hls/dse.h"
#include "runtime/resilience.h"
#include "runtime/scheduler.h"

namespace ecoscale {
namespace {

std::vector<ResilientTask> batch(std::size_t n, SimDuration d) {
  std::vector<ResilientTask> tasks(n);
  for (std::size_t i = 0; i < n; ++i) {
    tasks[i].id = i;
    tasks[i].duration = d;
  }
  return tasks;
}

}  // namespace
}  // namespace ecoscale

int main() {
  using namespace ecoscale;
  bench::print_header("EXP-RES",
                      "task re-execution and fabric scrubbing (abstract's "
                      "resilience claim)");

  const auto tasks = batch(128, microseconds(300));
  Table t({"failure rate (1/s)", "policy", "completed", "makespan",
           "wasted energy", "overhead vs clean"});
  ResilienceConfig clean;
  clean.failures_per_second = 0.0;
  const auto baseline = run_with_failures(tasks, clean);
  for (const double rate : {200.0, 1000.0, 4000.0}) {
    for (const bool reexec : {true, false}) {
      ResilienceConfig cfg;
      cfg.failures_per_second = rate;
      cfg.reexecute = reexec;
      const auto out = run_with_failures(tasks, cfg);
      t.add_row(
          {fmt_fixed(rate, 0), reexec ? "re-execute" : "none (lossy)",
           fmt_u64(out.completed) + "/" + fmt_u64(tasks.size()),
           fmt_time_ps(static_cast<double>(out.makespan)),
           fmt_energy_pj(out.wasted_energy),
           fmt_ratio(static_cast<double>(out.makespan) /
                     static_cast<double>(baseline.makespan))});
    }
  }
  bench::print_table(
      t,
      "128 tasks x 300 us over 8 workers under Poisson worker crashes\n"
      "(rates scaled to ms-long runs). Re-execution completes every task\n"
      "at bounded makespan overhead; without it work is silently lost:");

  Table s({"scrub period", "corrupted calls", "corrupted frac",
           "scrub overhead"});
  const SimTime horizon = milliseconds(100);
  for (const SimDuration period :
       {SimDuration{0}, milliseconds(20), milliseconds(5), milliseconds(1),
        microseconds(200)}) {
    const auto out = scrubbing_policy(period, /*seu_per_second=*/100.0,
                                      4000, horizon, microseconds(160), 7);
    s.add_row({period == 0 ? "none"
                           : fmt_time_ps(static_cast<double>(period)),
               fmt_u64(out.corrupted_calls),
               fmt_pct(out.corrupted_fraction),
               fmt_time_ps(static_cast<double>(out.overhead))});
  }
  bench::print_table(
      s,
      "Silent configuration upsets (100 SEU/s) against 4000 accelerator\n"
      "calls over 100 ms. Scrubbing bounds the corruption window; the\n"
      "period sets the protection/overhead trade:");

  // Failure injection inside the full event-driven runtime (not the
  // standalone model): the scheduler re-queues crashed tasks after repair,
  // the learned placement and lazy distribution keep running.
  Table rt({"failure rate (1/s)", "completed", "failures", "makespan",
            "vs clean"});
  double clean_makespan = 0.0;
  for (const double rate : {0.0, 500.0, 2000.0}) {
    MachineConfig mc;
    mc.nodes = 2;
    mc.workers_per_node = 4;
    Machine machine(mc);
    Simulator sim;
    RuntimeConfig rc;
    rc.placement = PlacementPolicy::kModelBased;
    rc.distribution = DistributionPolicy::kLazyLocal;
    rc.failures_per_second = rate;
    RuntimeSystem runtime(machine, sim, rc);
    const auto kernel = make_montecarlo_kernel();
    runtime.register_kernel(kernel, emit_variants(kernel, 2));
    Rng rng(5);
    constexpr int kTasks = 100;
    for (TaskId i = 0; i < kTasks; ++i) {
      Task t;
      t.id = i;
      t.kernel = kernel.id;
      t.items = 50000 + rng.uniform_u64(100000);
      t.features.items = static_cast<double>(t.items);
      t.home = WorkerCoord{static_cast<NodeId>(rng.uniform_u64(2)),
                           static_cast<WorkerId>(rng.uniform_u64(4))};
      t.release = rng.uniform_u64(milliseconds(3));
      runtime.submit(t);
    }
    runtime.run();
    const auto stats = runtime.stats();
    const double makespan_ms = to_milliseconds(stats.makespan);
    if (rate == 0.0) clean_makespan = makespan_ms;
    rt.add_row({fmt_fixed(rate, 0),
                fmt_u64(runtime.results().size()) + "/" +
                    std::to_string(kTasks),
                fmt_u64(stats.worker_failures),
                fmt_fixed(makespan_ms, 2) + " ms",
                fmt_ratio(makespan_ms / clean_makespan)});
  }
  bench::print_table(
      rt,
      "Crash injection inside the event-driven runtime (100 mixed tasks,\n"
      "8 workers, model-based placement + lazy distribution). Every task\n"
      "completes; the overhead is re-executed work plus repair windows:");
  return 0;
}
