// EXP-RES — resilience (paper abstract: "To further increase energy
// efficiency, as well as to provide resilience, the Workers employ
// reconfigurable accelerators…").
//
// Unlike the earlier analytic tables, every number here comes from the
// *live* runtime: a FaultInjector drives worker crashes, a permanent node
// loss, a link-degradation window and fabric SEUs through the simulator
// while the full scheduler (model-based placement, lazy distribution,
// UNIMEM, UNILOGIC) keeps running. Recovery is heartbeat detection +
// re-execution on survivors; UNIMEM pages owned by a dead node fail over
// after bounded retries. Run with --trace to export fault / detect /
// retry / failover events for scripts/trace_summary.py.
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "hls/dse.h"
#include "runtime/scheduler.h"

namespace ecoscale {
namespace {

constexpr TaskId kTasks = 128;

struct LiveRun {
  RuntimeStats stats;
  std::size_t completed = 0;
  std::uint64_t crashes = 0;
  std::uint64_t node_losses = 0;
  std::uint64_t seu_hits = 0;
  std::uint64_t link_faults = 0;
  std::uint64_t pgas_retries = 0;
  std::uint64_t pgas_failovers = 0;
  std::uint64_t pool_dead_remotes = 0;
  std::uint64_t pool_fallbacks = 0;
};

/// One deterministic 128-task workload (2 nodes x 4 workers) under the
/// given fault script. When `orphan_pgas_page` is set, a page homed on
/// node 1 is touched from node 0 *after* the run — against a lost node 1
/// this exercises the UNIMEM retry + ownership-failover path.
LiveRun run_live(const FaultConfig& faults, bool orphan_pgas_page = false) {
  MachineConfig mc;
  mc.nodes = 2;
  mc.workers_per_node = 4;
  Machine machine(mc);
  Simulator sim;
  RuntimeConfig rc;
  rc.placement = PlacementPolicy::kModelBased;
  rc.distribution = DistributionPolicy::kLazyLocal;
  rc.faults = faults;
  RuntimeSystem runtime(machine, sim, rc);
  const auto kernel = make_montecarlo_kernel();
  runtime.register_kernel(kernel, emit_variants(kernel, 2));
  const GlobalAddress remote_page =
      machine.pgas().alloc(/*node=*/1, /*worker=*/0, 4096);

  Rng rng(5);
  for (TaskId i = 0; i < kTasks; ++i) {
    Task t;
    t.id = i;
    t.kernel = kernel.id;
    t.items = 50000 + rng.uniform_u64(100000);
    t.features.items = static_cast<double>(t.items);
    t.home = WorkerCoord{static_cast<NodeId>(rng.uniform_u64(2)),
                         static_cast<WorkerId>(rng.uniform_u64(4))};
    t.release = rng.uniform_u64(milliseconds(3));
    runtime.submit(t);
  }
  runtime.run();

  LiveRun out;
  out.completed = runtime.results().size();
  ECO_CHECK_MSG(out.completed == kTasks,
                "live fault run lost tasks: recovery must complete all work");
  if (orphan_pgas_page) {
    // The page's owning node is gone: the first access retries, times out,
    // and re-homes the page to a survivor; later accesses are local again.
    const WorkerCoord reader{0, 0};
    SimTime now = sim.now();
    for (int i = 0; i < 4; ++i) {
      now = machine.pgas().load(reader, remote_page, 64, now).finish;
    }
  }
  out.stats = runtime.stats();
  if (const FaultInjector* inj = runtime.faults()) {
    out.crashes = inj->crashes();
    out.node_losses = inj->node_losses();
    out.seu_hits = inj->seu_hits();
    out.link_faults = inj->link_faults();
  }
  out.pgas_retries = machine.pgas().remote_retries();
  out.pgas_failovers = machine.pgas().page_failovers();
  for (NodeId n = 0; n < machine.node_count(); ++n) {
    out.pool_dead_remotes += machine.pool(n).failed_remote_attempts();
    out.pool_fallbacks += machine.pool(n).local_fallbacks();
  }
  return out;
}

}  // namespace
}  // namespace ecoscale

int main(int argc, char** argv) {
  using namespace ecoscale;
  bench::init(argc, argv);
  bench::print_header("EXP-RES",
                      "end-to-end fault injection & recovery in the live "
                      "runtime (abstract's resilience claim)");

  // --- crash-rate sweep ------------------------------------------------
  Table t({"crash rate (1/s)", "completed", "crashes", "detections",
           "re-exec", "wasted energy", "makespan", "vs clean"});
  double clean_makespan = 0.0;
  for (const double rate : {0.0, 500.0, 2000.0}) {
    FaultConfig fc;
    fc.enabled = rate > 0.0;
    fc.worker_crash_per_second = rate;
    const auto out = run_live(fc);
    const double makespan_ms = to_milliseconds(out.stats.makespan);
    if (rate == 0.0) clean_makespan = makespan_ms;
    t.add_row({fmt_fixed(rate, 0),
               fmt_u64(out.completed) + "/" + fmt_u64(kTasks),
               fmt_u64(out.crashes), fmt_u64(out.stats.detections),
               fmt_u64(out.stats.reexecutions),
               fmt_energy_pj(out.stats.wasted_energy),
               fmt_fixed(makespan_ms, 2) + " ms",
               fmt_ratio(makespan_ms / clean_makespan)});
  }
  bench::print_table(
      t,
      "128 mixed tasks over 2 nodes x 4 workers under per-worker Poisson\n"
      "crashes injected through the simulator. The heartbeat monitor\n"
      "detects each crash detect_timeout later and re-executes the lost\n"
      "attempt on a survivor; every task completes, and the energy the\n"
      "destroyed attempts burnt is itemised as wasted:");

  // --- combined-fault (chaos) run ---------------------------------------
  FaultConfig chaos;
  chaos.enabled = true;
  chaos.worker_crash_per_second = 500.0;
  chaos.seu_per_second = 2000.0;
  chaos.node_losses.push_back({/*node=*/1, /*at=*/milliseconds(1)});
  chaos.link_degrades.push_back(
      {/*level=*/1, /*at=*/microseconds(500), /*duration=*/milliseconds(2),
       /*factor=*/8.0});
  const auto out = run_live(chaos, /*orphan_pgas_page=*/true);

  Table c({"fault domain", "injected", "recovery response"});
  c.add_row({"worker crash", fmt_u64(out.crashes),
             fmt_u64(out.stats.detections) + " detected, " +
                 fmt_u64(out.stats.reexecutions) + " re-executed"});
  c.add_row({"node loss", fmt_u64(out.node_losses) + " node",
             fmt_u64(out.stats.task_failovers) + " task failovers"});
  c.add_row({"link degrade", fmt_u64(out.link_faults) + " window",
             "absorbed (bandwidth-scaled serialization)"});
  c.add_row({"fabric SEU", fmt_u64(out.seu_hits) + " hits",
             "scrubbed by next-call reconfiguration"});
  c.add_row({"dead UNIMEM owner", fmt_u64(out.pgas_retries) + " retries",
             fmt_u64(out.pgas_failovers) + " page failovers"});
  c.add_row({"dead UNILOGIC target",
             fmt_u64(out.pool_dead_remotes) + " failed remotes",
             fmt_u64(out.pool_fallbacks) + " local fallbacks"});
  bench::print_table(
      c,
      "Chaos run: Poisson crashes + permanent loss of node 1 at 1 ms +\n"
      "8x link degradation window + fabric SEUs, same 128-task workload.\n"
      "All tasks still complete (" +
          std::to_string(out.completed) + "/" + std::to_string(kTasks) +
          "); a page orphaned on the lost node is re-homed to a survivor\n"
          "after bounded retries:");

  Table e({"metric", "value"});
  e.add_row({"makespan",
             fmt_fixed(to_milliseconds(out.stats.makespan), 2) + " ms"});
  e.add_row({"useful + overhead energy", fmt_energy_pj(out.stats.energy)});
  e.add_row({"wasted (destroyed attempts)",
             fmt_energy_pj(out.stats.wasted_energy)});
  bench::print_table(
      e,
      "Energy under chaos. Crashes destroy partial progress, which is\n"
      "charged as wasted energy rather than silently dropped:");
  ECO_CHECK_MSG(out.stats.wasted_energy > 0.0,
                "chaos run must destroy some in-flight progress");
  ECO_CHECK_MSG(out.pgas_failovers > 0,
                "orphaned page must fail over to a survivor");
  return 0;
}
