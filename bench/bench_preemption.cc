// EXP-C7b-preempt — pre-emptive hardware execution and accelerator
// migration (paper §4.3: the middleware's "virtualization features, such
// as defragmenting the reconfigurable resources, accelerator migration,
// and pre-emptive hardware execution").
#include <iostream>

#include "bench_util.h"
#include "hls/dse.h"
#include "worker/preemption.h"

namespace ecoscale {
namespace {

WorkerConfig fabric8x8() {
  WorkerConfig cfg;
  cfg.fabric.fabric_width = 8;
  cfg.fabric.fabric_height = 8;
  return cfg;
}

}  // namespace
}  // namespace ecoscale

int main() {
  using namespace ecoscale;
  bench::print_header("EXP-C7b-preempt",
                      "pre-emptive hardware execution and accelerator "
                      "migration (claim C7, middleware roles)");

  const auto low = emit_variants(make_sha_like_kernel(), 1).front();
  const auto high = emit_variants(make_montecarlo_kernel(), 1).front();
  constexpr std::uint64_t kLowItems = 2'000'000;
  constexpr std::uint64_t kHighItems = 20'000;

  Table t({"high arrives at", "policy", "high response", "low finish",
           "overhead energy"});
  for (const SimTime arrival :
       {microseconds(100), microseconds(1000), microseconds(4000)}) {
    {
      Worker w({0, 0}, fabric8x8());
      const auto r =
          run_preemptive(w, low, kLowItems, high, kHighItems, arrival);
      t.add_row({fmt_time_ps(static_cast<double>(arrival)), "preemptive",
                 fmt_time_ps(static_cast<double>(r.high_finish - arrival)),
                 fmt_time_ps(static_cast<double>(r.low_finish)),
                 fmt_energy_pj(r.overhead_energy)});
    }
    {
      Worker w({0, 1}, fabric8x8());
      const auto r =
          run_to_completion(w, low, kLowItems, high, kHighItems, arrival);
      t.add_row({fmt_time_ps(static_cast<double>(arrival)),
                 "run-to-completion",
                 fmt_time_ps(static_cast<double>(r.high_finish - arrival)),
                 fmt_time_ps(static_cast<double>(r.low_finish)), "0"});
    }
  }
  bench::print_table(
      t,
      "A latency-critical job (20k items) arrives while a 2M-item batch\n"
      "job holds the fabric. Pre-emption trades batch completion time for\n"
      "interactive response:");

  // Context-size sensitivity: the save/restore cost that bounds how
  // fine-grained pre-emption can be.
  Table ctx({"context size", "checkpoint time", "round-trip overhead"});
  for (const Bytes bytes :
       {kibibytes(2), kibibytes(8), kibibytes(32), kibibytes(128)}) {
    PreemptionConfig cfg;
    cfg.context_bytes = bytes;
    Worker w({0, 0}, fabric8x8());
    (void)w.run_hardware(low, 1000, 0);
    const auto ck = checkpoint_accelerator(w.fabric(), low, 0, cfg);
    const SimDuration roundtrip =
        2 * (ck.done - 0) + cfg.resume_latency;
    ctx.add_row({fmt_bytes(static_cast<double>(bytes)),
                 fmt_time_ps(static_cast<double>(ck.done)),
                 fmt_time_ps(static_cast<double>(roundtrip))});
  }
  bench::print_table(ctx,
                     "Checkpoint cost vs. architectural-context size "
                     "(ICAP readback at 400 MB/s):");

  // Migration vs. restart-from-scratch for a long-running accelerator job
  // (total 4M items) that must vacate its worker (thermal/defrag
  // pressure) part-way through. Migration resumes from the checkpointed
  // context; restarting loses the completed progress.
  Table mig({"progress when displaced", "migrate (resume)",
             "restart (redo all)", "migration wins by"});
  constexpr std::uint64_t kTotal = 4'000'000;
  for (const double progress : {0.25, 0.5, 0.75}) {
    const auto remaining =
        static_cast<std::uint64_t>(kTotal * (1.0 - progress));
    Worker src({0, 0}, fabric8x8());
    Worker dst({0, 1}, fabric8x8());
    (void)src.run_hardware(high, 1000, 0);
    const auto m =
        migrate_accelerator(src, dst, high, remaining, microseconds(100));
    Worker dst2({0, 2}, fabric8x8());
    const auto r = dst2.run_hardware(high, kTotal, microseconds(100));
    mig.add_row({fmt_pct(progress),
                 fmt_time_ps(static_cast<double>(m.finish)),
                 fmt_time_ps(static_cast<double>(r->finish)),
                 fmt_ratio(static_cast<double>(r->finish) /
                           static_cast<double>(m.finish))});
  }
  bench::print_table(
      mig,
      "Moving a live accelerator (with its 8 KiB context) vs. reconfiguring\n"
      "elsewhere and redoing the lost work. The win is the preserved\n"
      "progress; the cost is checkpoint + context transfer:");
  return 0;
}
