// Shared helpers for the experiment harnesses.
//
// Besides header/table printing this provides:
//  * bench::init(argc, argv) — common flag parsing. `--json <path>` makes
//    every print_table() call also append its series to a machine-readable
//    JSON file (rewritten after each table, so a killed bench still leaves
//    a valid dump), so any bench can feed trajectory tracking.
//    `--threads <n>` (or ECOSCALE_BENCH_THREADS) sizes the sweep pool; 1
//    forces a fully sequential run.
//  * bench::parallel_sweep(count, fn) — a simple thread pool over sweep
//    points. Each point must own its own deterministic state (Simulator,
//    Rng, PgasSystem, ...), so points are independent and the sweep output
//    is byte-identical to a sequential run: results come back in
//    submission order regardless of completion order.
#pragma once

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/table.h"
#include "obs/trace.h"

namespace ecoscale::bench {

struct Options {
  std::string json_path;         // empty: no JSON dump
  std::size_t threads = 0;       // 0: pick from env / hardware
  std::size_t sim_threads = 1;   // sharded-engine threads (0: hardware)
  std::string trace_path;        // empty: tracing off
  std::string trace_categories;  // empty/"all": every category
  double offered_load = 0.0;     // serve benches; 0: bench default sweep
  double zipf = -1.0;            // serve key skew; negative: bench default
};

inline Options& options() {
  static Options opts;
  return opts;
}

// --- JSON series dump -------------------------------------------------------

namespace detail {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Tables recorded for the --json dump, flushed once at process exit.
class JsonSink {
 public:
  static JsonSink& instance() {
    static JsonSink sink;
    return sink;
  }

  void record(const Table& table, const std::string& caption) {
    std::ostringstream os;
    os << "    {\n      \"caption\": \"" << json_escape(caption)
       << "\",\n      \"headers\": [";
    for (std::size_t c = 0; c < table.headers().size(); ++c) {
      os << (c ? ", " : "") << '"' << json_escape(table.headers()[c]) << '"';
    }
    os << "],\n      \"rows\": [\n";
    for (std::size_t r = 0; r < table.rows().size(); ++r) {
      os << "        [";
      const auto& row = table.rows()[r];
      for (std::size_t c = 0; c < row.size(); ++c) {
        os << (c ? ", " : "") << '"' << json_escape(row[c]) << '"';
      }
      os << (r + 1 < table.rows().size() ? "],\n" : "]\n");
    }
    os << "      ]\n    }";
    std::lock_guard<std::mutex> lock(mu_);
    tables_.push_back(os.str());
  }

  void flush(const std::string& path) {
    std::lock_guard<std::mutex> lock(mu_);
    std::ofstream out(path);
    if (!out) {
      std::cerr << "bench: cannot write JSON to " << path << "\n";
      return;
    }
    out << "{\n  \"tables\": [\n";
    for (std::size_t i = 0; i < tables_.size(); ++i) {
      out << tables_[i] << (i + 1 < tables_.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
  }

 private:
  std::mutex mu_;
  std::vector<std::string> tables_;
};

}  // namespace detail

namespace detail {

/// atexit hook for --trace: stop the session, write the Chrome JSON, and
/// print the span summary. Safe at exit because TraceSession (and the
/// CounterRegistry it reads names from) are leaked singletons, unlike the
/// JsonSink above which must flush eagerly.
inline void flush_trace_at_exit() {
  auto& session = obs::TraceSession::instance();
  if (!session.active()) return;
  session.stop();
  session.export_file();
  std::cout << session.summary();
  std::cout << "trace: wrote " << session.options().path << "\n";
}

}  // namespace detail

/// Parse one non-negative floating-point flag value. Returns true and
/// stores into `out` on success; on a malformed or negative value it
/// warns on stderr, leaves `out` untouched and returns false — the
/// bench keeps its default instead of silently sweeping garbage.
inline bool parse_load_flag(const char* flag, const char* text, double& out) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno != 0 || !std::isfinite(v) ||
      v < 0.0) {
    std::cerr << "bench: malformed " << flag << " \"" << text
              << "\" (want a non-negative number); keeping default\n";
    return false;
  }
  out = v;
  return true;
}

/// Parse common bench flags. Unknown flags are ignored so individual
/// benches can layer their own parsing on top. `--trace <file>` records a
/// Chrome trace of the whole run (filtered by `--trace-categories a,b,c`)
/// and writes it at exit. `--offered-load <req/s>` and `--zipf <skew>`
/// pin the serve benches' sweep to a single operating point.
inline void init(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" && i + 1 < argc) {
      options().json_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      options().threads =
          static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--sim-threads" && i + 1 < argc) {
      options().sim_threads =
          static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--trace" && i + 1 < argc) {
      options().trace_path = argv[++i];
    } else if (arg == "--trace-categories" && i + 1 < argc) {
      options().trace_categories = argv[++i];
    } else if (arg == "--offered-load" && i + 1 < argc) {
      parse_load_flag("--offered-load", argv[++i], options().offered_load);
    } else if (arg == "--zipf" && i + 1 < argc) {
      parse_load_flag("--zipf", argv[++i], options().zipf);
    }
  }
  if (!options().trace_path.empty()) {
    obs::TraceOptions topts;
    topts.path = options().trace_path;
    topts.categories = obs::cat_mask_from_list(options().trace_categories);
    obs::TraceSession::instance().start(topts);
    std::atexit(detail::flush_trace_at_exit);
  }
}

inline void print_header(const std::string& exp_id,
                         const std::string& claim) {
  std::cout << "\n=== " << exp_id << " — " << claim << " ===\n\n";
}

inline void print_table(const Table& table, const std::string& caption = "") {
  if (!caption.empty()) std::cout << caption << "\n";
  table.print(std::cout);
  std::cout << "\n";
  if (!options().json_path.empty()) {
    // Record and rewrite the dump immediately: benches are long-running
    // and may be killed mid-run, and an atexit flush would race static
    // destruction of the sink itself.
    detail::JsonSink::instance().record(table, caption);
    detail::JsonSink::instance().flush(options().json_path);
  }
}

// --- parallel sweep runner --------------------------------------------------

/// Thread count for the sharded parallel simulation engine
/// (ShardedSimulator / ShardedRuntime): ECOSCALE_SIM_THREADS, else the
/// --sim-threads flag, else 1 (0 means hardware concurrency). Unlike
/// sweep_threads() this defaults to sequential — the engine's results are
/// thread-count-invariant, so perf runs opt in explicitly.
/// A malformed env value ("four", "4x", "", out of range) used to parse as
/// 0 and silently fall back to the flag — a perf run believing itself
/// parallel would quietly measure the serial engine. Now it warns on
/// stderr and pins 1 thread so the mistake is visible and the measurement
/// is at least honestly labelled serial.
inline std::size_t sim_threads() {
  if (const char* env = std::getenv("ECOSCALE_SIM_THREADS")) {
    bool digits = *env != '\0';
    for (const char* p = env; *p != '\0'; ++p) {
      if (*p < '0' || *p > '9') {
        digits = false;
        break;
      }
    }
    if (digits) {
      errno = 0;
      const unsigned long n = std::strtoul(env, nullptr, 10);
      if (errno == 0) return static_cast<std::size_t>(n);
    }
    std::cerr << "bench: malformed ECOSCALE_SIM_THREADS=\"" << env
              << "\" (want a non-negative thread count; 0 = hardware); "
                 "falling back to 1 sim thread\n";
    return 1;
  }
  return options().sim_threads;
}

/// Worker count for parallel_sweep: --threads flag, else
/// ECOSCALE_BENCH_THREADS, else the hardware concurrency.
inline std::size_t sweep_threads() {
  if (options().threads > 0) return options().threads;
  if (const char* env = std::getenv("ECOSCALE_BENCH_THREADS")) {
    const auto n = std::strtoul(env, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// Run `fn(0) .. fn(count - 1)` on a pool of sweep_threads() threads and
/// return the results indexed by sweep point (submission order, independent
/// of completion order). Each sweep point must be self-contained — it owns
/// its own Simulator/Rng/machine — which is what makes the parallel run
/// deterministic and byte-identical to `--threads 1`. The first exception
/// thrown by any point (in submission order) is rethrown to the caller.
template <typename Fn>
auto parallel_sweep(std::size_t count, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using Result = std::invoke_result_t<Fn&, std::size_t>;
  static_assert(!std::is_void_v<Result>,
                "sweep points must return their result");
  std::vector<Result> results(count);
  if (count == 0) return results;
  std::vector<std::exception_ptr> errors(count);
  const std::size_t threads = std::min(count, sweep_threads());
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) results[i] = fn(i);
    return results;
  }
  std::atomic<std::size_t> next{0};
  auto work = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        results[i] = fn(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(work);
  for (auto& t : pool) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return results;
}

}  // namespace ecoscale::bench
