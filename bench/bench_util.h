// Shared helpers for the experiment harnesses.
#pragma once

#include <iostream>
#include <string>

#include "common/table.h"

namespace ecoscale::bench {

inline void print_header(const std::string& exp_id,
                         const std::string& claim) {
  std::cout << "\n=== " << exp_id << " — " << claim << " ===\n\n";
}

inline void print_table(const Table& table, const std::string& caption = "") {
  if (!caption.empty()) std::cout << caption << "\n";
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace ecoscale::bench
