// EXP-C5-smmu — user-level accelerator access through the dual-stage SMMU
// (paper §4.1: "Using an I/O MMU the proposed architecture will allow
// 'user-level access' to the reconfigurable accelerators" instead of
// unavoidable OS/hypervisor intervention).
//
// Per-invocation latency of the two paths:
//   OS path:        trap + kernel driver setup + return (no SMMU needed).
//   user-level:     doorbell store; the accelerator translates its pointer
//                   accesses through the SMMU (TLB hit or nested walk).
// Swept over working-set size (pages touched per invocation) around the
// TLB capacity, and over dual-stage vs. single-stage table depth.
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "address/smmu.h"

namespace ecoscale {
namespace {

struct PathResult {
  double ns_per_invocation = 0.0;
  double tlb_hit_rate = 0.0;
};

/// One invocation touches `pages_per_call` distinct pages (pointer-chased
/// buffers); the working set cycles over `working_set_pages`.
PathResult user_level_path(std::size_t working_set_pages,
                           std::size_t pages_per_call, int invocations,
                           SmmuConfig cfg) {
  Smmu smmu(cfg);
  InvocationPathCosts costs;
  // Pre-map the working set for context 1.
  for (std::size_t p = 0; p < working_set_pages; ++p) {
    smmu.stage1(1).map(p, p + 1000);
    smmu.stage2().map(p + 1000, p + 2000);
  }
  Rng rng(7);
  SimDuration total = 0;
  for (int i = 0; i < invocations; ++i) {
    total += costs.doorbell_write;
    for (std::size_t k = 0; k < pages_per_call; ++k) {
      const PageId page = rng.uniform_u64(working_set_pages);
      const auto tr = smmu.translate(1, page);
      total += tr->latency;
    }
  }
  PathResult r;
  r.ns_per_invocation =
      to_nanoseconds(total) / static_cast<double>(invocations);
  r.tlb_hit_rate = smmu.hit_rate();
  return r;
}

double os_path_ns(std::size_t pages_per_call) {
  InvocationPathCosts costs;
  // The kernel driver pins and translates the buffers itself (one pass
  // over the pages at software page-table-walk speed), plus trap overhead.
  const SimDuration per_page = nanoseconds(120);
  return to_nanoseconds(costs.os_trap + costs.driver_setup +
                        costs.os_return +
                        per_page * static_cast<SimDuration>(pages_per_call));
}

}  // namespace
}  // namespace ecoscale

int main() {
  using namespace ecoscale;
  bench::print_header(
      "EXP-C5-smmu",
      "dual-stage SMMU enables OS-bypass accelerator invocation (claim C5)");

  constexpr int kInvocations = 5000;
  constexpr std::size_t kPagesPerCall = 4;

  Table t({"working set (pages)", "TLB hit rate", "user-level ns/call",
           "OS-path ns/call", "speedup"});
  for (const std::size_t ws : {16u, 64u, 128u, 256u, 1024u}) {
    SmmuConfig cfg;  // 64-entry TLB
    const auto user =
        user_level_path(ws, kPagesPerCall, kInvocations, cfg);
    const double os_ns = os_path_ns(kPagesPerCall);
    t.add_row({fmt_u64(ws), fmt_pct(user.tlb_hit_rate),
               fmt_fixed(user.ns_per_invocation, 1), fmt_fixed(os_ns, 1),
               fmt_ratio(os_ns / user.ns_per_invocation)});
  }
  bench::print_table(
      t,
      "Invocation latency, 4 pages touched per call, 64-entry TLB.\n"
      "User-level access wins by >10x while the working set fits the TLB\n"
      "and still wins when it does not (hardware walk < trap):");

  Table stages({"configuration", "walk accesses", "miss ns/call"});
  for (const auto& [name, s1, s2] :
       {std::tuple{"single-stage (2-level)", 2, 0},
        std::tuple{"single-stage (4-level)", 4, 0},
        std::tuple{"dual-stage 4+3 (ECOSCALE)", 4, 3}}) {
    SmmuConfig cfg;
    cfg.stage1_levels = s1;
    cfg.stage2_levels = s2 == 0 ? 1 : s2;
    cfg.tlb_entries = 1;  // force misses
    Smmu smmu(cfg);
    smmu.stage1(1).map(1, 2);
    smmu.stage2().map(2, 3);
    smmu.stage1(1).map(5, 6);
    smmu.stage2().map(6, 7);
    // Alternate two pages so every lookup misses the 1-entry TLB.
    SimDuration total = 0;
    for (int i = 0; i < 100; ++i) {
      total += smmu.translate(1, i % 2 ? 1 : 5)->latency;
    }
    stages.add_row({name, fmt_u64(smmu.walk_accesses() / 100),
                    fmt_fixed(to_nanoseconds(total) / 100.0, 1)});
  }
  bench::print_table(
      stages,
      "Cost of the nested (dual-stage) walk vs. single-stage — the price\n"
      "paid for virtualisation-safe user-level access on a TLB miss:");
  return 0;
}
