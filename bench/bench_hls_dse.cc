// EXP-C10-hls — automatic HLS design-space exploration under area and
// performance constraints (paper §4.3: "providing a way to specify
// performance and area constraints, and then automatically exploring
// high-performance hardware implementation techniques, such as pipelining,
// loop unrolling, as well as data storage and data-path partitioning and
// duplication, starting from a non-hardware specific OpenCL model").
#include <iostream>

#include "bench_util.h"
#include "hls/dse.h"

namespace ecoscale {
namespace {

void print_front(const KernelIR& kernel) {
  const auto front = pareto_front(enumerate_designs(kernel));
  Table t({"design (U/pipe/P/D)", "II", "depth", "slots", "items/cycle",
           "Gitems/s @0.25GHz", "pJ/item"});
  for (const auto& p : front) {
    const auto& d = p.design;
    t.add_row({"U" + std::to_string(d.unroll) +
                   (d.pipeline ? "/pipe" : "/seq") + "/P" +
                   std::to_string(d.array_partition) + "/D" +
                   std::to_string(d.dram_ports),
               fmt_u64(p.ii), fmt_u64(p.depth), fmt_u64(p.slots),
               fmt_fixed(p.items_per_cycle, 3),
               fmt_fixed(p.throughput_gitems_s(0.25), 3),
               fmt_fixed(p.pj_per_item, 1)});
  }
  bench::print_table(t, "Pareto front for kernel '" + kernel.name + "' (" +
                            std::to_string(
                                enumerate_designs(kernel).size()) +
                            " points explored):");
}

}  // namespace
}  // namespace ecoscale

int main() {
  using namespace ecoscale;
  bench::print_header("EXP-C10-hls",
                      "constraint-driven HLS exploration without designer "
                      "intervention (claim C10)");

  for (const auto& kernel :
       {make_stencil5_kernel(), make_matmul_tile_kernel(),
        make_montecarlo_kernel(), make_cart_split_kernel()}) {
    print_front(kernel);
  }

  // Constraint-driven selection, the user-facing entry point.
  Table sel({"kernel", "area budget (slots)", "selected design", "items/cycle"});
  for (const auto& kernel :
       {make_stencil5_kernel(), make_montecarlo_kernel(),
        make_matmul_tile_kernel()}) {
    for (const std::size_t budget : {4u, 16u, 64u, 256u}) {
      DseConstraints c;
      c.max_slots = budget;
      const auto pick = select_design(kernel, c);
      if (!pick) {
        sel.add_row({kernel.name, fmt_u64(budget), "(none fits)", "-"});
        continue;
      }
      sel.add_row({kernel.name, fmt_u64(budget),
                   "U" + std::to_string(pick->design.unroll) + "/P" +
                       std::to_string(pick->design.array_partition) + "/D" +
                       std::to_string(pick->design.dram_ports) + " (" +
                       std::to_string(pick->slots) + " slots)",
                   fmt_fixed(pick->items_per_cycle, 3)});
    }
  }
  bench::print_table(sel,
                     "select_design() under tightening area budgets — the\n"
                     "runtime's module-variant generator:");
  return 0;
}
