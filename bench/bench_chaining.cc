// EXP-C11-chain — accelerator module chaining (paper §4.3: "…chaining
// together different accelerator modules for building longer complex
// processing pipelines … will substantially increase the amount of
// processing that is carried out per unit of transferred data and will
// consequently result in substantial energy savings.").
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "hls/dse.h"
#include "runtime/chain.h"

namespace ecoscale {
namespace {

struct ChainSpec {
  std::vector<KernelIR> kernels;
  std::vector<AcceleratorModule> stages;
};

ChainSpec make_chain(std::size_t length) {
  const KernelIR pool[] = {make_stencil5_kernel(), make_sha_like_kernel(),
                           make_spmv_kernel(), make_cart_split_kernel(),
                           make_montecarlo_kernel(),
                           make_matmul_tile_kernel()};
  ChainSpec spec;
  for (std::size_t i = 0; i < length; ++i) {
    KernelIR k = pool[i % std::size(pool)];
    // Distinct kernel ids so every stage gets its own fabric region.
    k.id = static_cast<KernelId>(1000 + i);
    spec.kernels.push_back(k);
    auto m = emit_variants(k, 1).front();
    m.kernel = k.id;
    spec.stages.push_back(m);
  }
  return spec;
}

}  // namespace
}  // namespace ecoscale

int main() {
  using namespace ecoscale;
  bench::print_header(
      "EXP-C11-chain",
      "on-fabric chaining raises processing per transferred byte "
      "(claim C11)");

  constexpr std::uint64_t kItems = 100000;
  Table t({"chain length", "mode", "time", "DRAM traffic", "energy",
           "ops per DRAM byte"});
  for (const std::size_t len : {1u, 2u, 3u, 4u, 6u}) {
    WorkerConfig wc;
    wc.fabric.fabric_width = 24;  // room for six modules
    wc.fabric.fabric_height = 8;
    const auto spec = make_chain(len);
    {
      Worker w({0, 0}, wc);
      const auto r = run_chained(w, spec.stages, spec.kernels, kItems,
                                 /*now=*/0);
      t.add_row({fmt_u64(len), "chained (on-fabric FIFOs)",
                 fmt_time_ps(static_cast<double>(r.finish - r.start)),
                 fmt_bytes(static_cast<double>(r.dram_bytes)),
                 fmt_energy_pj(r.energy), fmt_fixed(r.ops_per_dram_byte, 2)});
    }
    {
      Worker w({0, 1}, wc);
      const auto r = run_staged(w, spec.stages, spec.kernels, kItems,
                                /*now=*/0);
      t.add_row({fmt_u64(len), "staged (DRAM round trips)",
                 fmt_time_ps(static_cast<double>(r.finish - r.start)),
                 fmt_bytes(static_cast<double>(r.dram_bytes)),
                 fmt_energy_pj(r.energy), fmt_fixed(r.ops_per_dram_byte, 2)});
    }
  }
  bench::print_table(
      t,
      "100k items through 1-6 chained modules. Chained DRAM traffic stays\n"
      "flat (first input + last output); staged traffic and energy grow\n"
      "linearly with chain length:");
  return 0;
}
