// EXP-C12-hybrid — hybrid MPI+PGAS beats pure MPI (paper §2: "It is widely
// believed that a hybrid flexible MPI+PGAS programming model is an
// efficient choice for many scientific computing problems and for
// achieving exascale computing [5]", and Figure 1's two-level
// decomposition: PGAS inside a Compute Node, MPI between Compute Nodes).
//
// Workloads:
//  1. Distributed histogram sort (ref [5]): key redistribution.
//     pure-MPI: 32 ranks, every pair exchanges over the inter-node fabric.
//     hybrid:   4 node-level MPI ranks exchange aggregated buckets;
//               intra-node scatter uses UNIMEM loads/stores.
//  2. Halo exchange on an 8x4 worker grid.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "apps/sort.h"
#include "apps/stencil.h"
#include "mpi/mpi.h"
#include "unimem/pgas.h"

namespace ecoscale {
namespace {

constexpr std::size_t kNodes = 4;
constexpr std::size_t kWorkersPerNode = 8;
constexpr std::size_t kTotalWorkers = kNodes * kWorkersPerNode;

struct ExchangeOutcome {
  SimTime finish = 0;
  std::uint64_t internode_messages = 0;
  Bytes internode_bytes = 0;
  Picojoules energy = 0.0;
};

/// Pure MPI: one rank per worker; the key redistribution is a 32-rank
/// alltoall over the inter-node fabric (intra-node pairs also pay the MPI
/// software stack, as in a flat MPI job). Eight ranks share each physical
/// node uplink, so the per-rank link gets 1/8 of the node bandwidth.
ExchangeOutcome sort_pure_mpi(Bytes bytes_per_pair) {
  MpiConfig cfg;
  cfg.link.bandwidth = Bandwidth::from_gib_per_s(
      5.0 / static_cast<double>(kWorkersPerNode));
  MpiWorld world(kTotalWorkers, cfg);
  std::vector<SimTime> arrivals(kTotalWorkers, 0);
  const auto r = world.alltoall(bytes_per_pair, arrivals);
  ExchangeOutcome out;
  out.finish = r.finish;
  out.internode_messages = r.messages;
  out.internode_bytes = r.bytes_on_wire;
  out.energy = r.energy;
  return out;
}

/// Hybrid: workers deposit their remote-destined buckets directly into the
/// node's shared send buffer via PGAS stores during partitioning (ref [5]'s
/// design — no extra gather copy), the 4 node routers run an aggregated
/// alltoall, and intra-node key exchange is plain UNIMEM worker-to-worker
/// DMA on the L0 interconnect.
ExchangeOutcome sort_hybrid(Bytes bytes_per_pair) {
  MpiWorld world(kNodes);
  PgasConfig pc;
  pc.nodes = kNodes;
  pc.workers_per_node = kWorkersPerNode;
  PgasSystem pgas(pc);
  ExchangeOutcome out;
  // 1. Intra-node exchange: each worker sends its 7 same-node peers their
  //    buckets over UNIMEM (disjoint L0 links, fully parallel).
  SimTime intra_done = 0;
  std::vector<GlobalAddress> bufs(kTotalWorkers);
  for (std::size_t w = 0; w < kTotalWorkers; ++w) {
    bufs[w] = pgas.alloc(static_cast<NodeId>(w / kWorkersPerNode),
                         static_cast<WorkerId>(w % kWorkersPerNode),
                         mebibytes(32));
  }
  for (std::size_t w = 0; w < kTotalWorkers; ++w) {
    const WorkerCoord src{static_cast<NodeId>(w / kWorkersPerNode),
                          static_cast<WorkerId>(w % kWorkersPerNode)};
    for (std::size_t p = 1; p < kWorkersPerNode; ++p) {
      const std::size_t peer =
          (w / kWorkersPerNode) * kWorkersPerNode +
          (w % kWorkersPerNode + p) % kWorkersPerNode;
      const auto r =
          pgas.dma(src, bufs[peer], bytes_per_pair, /*write=*/true, 0);
      intra_done = std::max(intra_done, r.finish);
      out.energy += r.energy;
    }
  }
  // 2. Node-level alltoall with aggregated buckets: all keys destined for
  //    the 8 workers of each remote node travel as one buffer.
  const Bytes per_node_pair =
      bytes_per_pair * kWorkersPerNode * kWorkersPerNode;
  std::vector<SimTime> node_ready(kNodes, 0);  // deposit overlaps intra
  const auto coll = world.alltoall(per_node_pair, node_ready);
  out.internode_messages = coll.messages;
  out.internode_bytes = coll.bytes_on_wire;
  out.energy += coll.energy;
  out.finish = std::max(intra_done, coll.finish);
  return out;
}

/// Halo exchange: pure MPI treats all 31 neighbour links as MPI messages;
/// hybrid uses UNIMEM stores inside a node and MPI only across the node
/// boundary of the 8x4 grid.
ExchangeOutcome halo_pure_mpi(Bytes halo) {
  MpiConfig cfg;
  cfg.link.bandwidth = Bandwidth::from_gib_per_s(
      5.0 / static_cast<double>(kWorkersPerNode));
  MpiWorld world(kTotalWorkers, cfg);
  CartTopology cart({8, 4}, false);
  ExchangeOutcome out;
  std::vector<SimTime> done(kTotalWorkers, 0);
  for (std::size_t r = 0; r < cart.size(); ++r) {
    for (const std::size_t peer : cart.neighbors(r)) {
      const auto m = world.send(r, peer, halo, 0);
      done[peer] = std::max(done[peer], m.delivered);
      ++out.internode_messages;
      out.internode_bytes += halo;
      out.energy += m.energy;
    }
  }
  for (const auto t : done) out.finish = std::max(out.finish, t);
  return out;
}

ExchangeOutcome halo_hybrid(Bytes halo) {
  // Workers laid out 8 columns × 4 rows; each column pair (2×4 block) is a
  // Compute Node => node = x / 2 owns an 8-worker block.
  MpiWorld world(kNodes);
  PgasConfig pc;
  pc.nodes = kNodes;
  pc.workers_per_node = kWorkersPerNode;
  PgasSystem pgas(pc);
  CartTopology cart({8, 4}, false);
  auto node_of = [](std::size_t rank) {
    return static_cast<NodeId>((rank / 4) / 2);
  };
  auto worker_of = [](std::size_t rank) {
    return static_cast<WorkerId>(((rank / 4) % 2) * 4 + rank % 4);
  };
  ExchangeOutcome out;
  SimTime finish = 0;
  std::vector<GlobalAddress> bufs;
  for (std::size_t r = 0; r < cart.size(); ++r) {
    bufs.push_back(pgas.alloc(node_of(r), worker_of(r), mebibytes(1)));
  }
  for (std::size_t r = 0; r < cart.size(); ++r) {
    for (const std::size_t peer : cart.neighbors(r)) {
      if (node_of(r) == node_of(peer)) {
        // UNIMEM store straight into the neighbour's halo buffer.
        const auto m = pgas.dma({node_of(r), worker_of(r)}, bufs[peer],
                                halo, /*write=*/true, 0);
        finish = std::max(finish, m.finish);
        out.energy += m.energy;
      } else {
        const auto m = world.send(node_of(r), node_of(peer), halo, 0);
        finish = std::max(finish, m.delivered);
        ++out.internode_messages;
        out.internode_bytes += halo;
        out.energy += m.energy;
      }
    }
  }
  out.finish = finish;
  return out;
}

}  // namespace
}  // namespace ecoscale

int main() {
  using namespace ecoscale;
  bench::print_header("EXP-C12-hybrid",
                      "MPI between Compute Nodes + PGAS within them beats "
                      "flat MPI (claim C12)");

  Table sort_t({"keys/worker-pair", "model", "time", "inter-node msgs",
                "inter-node bytes", "energy"});
  for (const Bytes per_pair : {kibibytes(8), kibibytes(64), kibibytes(256)}) {
    const auto pure = sort_pure_mpi(per_pair);
    const auto hybrid = sort_hybrid(per_pair);
    sort_t.add_row({fmt_bytes(static_cast<double>(per_pair)), "pure MPI (32 ranks)",
                    fmt_time_ps(static_cast<double>(pure.finish)),
                    fmt_u64(pure.internode_messages),
                    fmt_bytes(static_cast<double>(pure.internode_bytes)),
                    fmt_energy_pj(pure.energy)});
    sort_t.add_row({fmt_bytes(static_cast<double>(per_pair)),
                    "hybrid MPI+PGAS (4 ranks)",
                    fmt_time_ps(static_cast<double>(hybrid.finish)),
                    fmt_u64(hybrid.internode_messages),
                    fmt_bytes(static_cast<double>(hybrid.internode_bytes)),
                    fmt_energy_pj(hybrid.energy)});
  }
  bench::print_table(
      sort_t,
      "Histogram-sort key redistribution, 4 nodes x 8 workers (ref [5]).\n"
      "Hybrid aggregates node-level messages: 32x31 small messages become\n"
      "4x3 large ones; intra-node movement rides UNIMEM:");

  Table halo_t({"halo size", "model", "time", "inter-node msgs", "energy"});
  for (const Bytes halo : {kibibytes(4), kibibytes(32), kibibytes(128)}) {
    const auto pure = halo_pure_mpi(halo);
    const auto hybrid = halo_hybrid(halo);
    halo_t.add_row({fmt_bytes(static_cast<double>(halo)), "pure MPI",
                    fmt_time_ps(static_cast<double>(pure.finish)),
                    fmt_u64(pure.internode_messages),
                    fmt_energy_pj(pure.energy)});
    halo_t.add_row({fmt_bytes(static_cast<double>(halo)), "hybrid MPI+PGAS",
                    fmt_time_ps(static_cast<double>(hybrid.finish)),
                    fmt_u64(hybrid.internode_messages),
                    fmt_energy_pj(hybrid.energy)});
  }
  bench::print_table(
      halo_t,
      "Nearest-neighbour halo exchange on an 8x4 worker grid: only the\n"
      "node-boundary edges pay the MPI stack under the hybrid model:");

  // Functional validation: the distributed sort is actually correct.
  {
    const auto keys = apps::make_keys(100000, 2026);
    const auto trace = apps::sample_sort(keys, kTotalWorkers);
    const bool sorted =
        std::is_sorted(trace.sorted.begin(), trace.sorted.end());
    std::cout << "functional check: sample_sort over " << kTotalWorkers
              << " ranks -> " << (sorted ? "sorted OK" : "FAILED") << ", "
              << trace.alltoall_bytes / 1024 << " KiB redistributed\n";
  }
  return 0;
}
