// EXP-PWR-dvfs — energy-optimal operating points (the paper's
// energy-efficiency theme: §1's power wall, §4.2's energy models).
//
// For a fixed task (1e9 cycles) with a deadline, sweep the DVFS ladder
// under three static-power regimes. Race-to-idle wins when idle power is
// near zero (power gating); just-in-time wins when the platform leaks.
// The runtime's learned energy models are what let it pick per-task.
#include <iostream>

#include "bench_util.h"
#include "worker/power.h"

int main() {
  using namespace ecoscale;
  bench::print_header("EXP-PWR-dvfs",
                      "race-to-idle vs. just-in-time under different "
                      "leakage regimes");

  constexpr double kCycles = 1e9;
  const SimDuration deadline = milliseconds(1500);

  Table t({"regime (static/idle W)", "frequency", "busy time", "energy",
           "note"});
  struct Regime {
    const char* name;
    double static_w;
    double idle_w;
  };
  for (const Regime regime : {Regime{"gated idle (0.8 / 0.05)", 0.8, 0.05},
                              Regime{"moderate leak (0.8 / 0.4)", 0.8, 0.4},
                              Regime{"leaky (1.5 / 1.5)", 1.5, 1.5}}) {
    const auto best = best_dvfs_point(kCycles, regime.static_w,
                                      regime.idle_w, deadline);
    for (const auto& p : default_dvfs_ladder()) {
      const auto e = energy_with_deadline(kCycles, p, regime.static_w,
                                          regime.idle_w, deadline);
      const auto busy = run_at(kCycles, p, regime.static_w);
      std::string note;
      if (!e) {
        note = "misses deadline";
      } else if (best && best->clock_ghz == p.clock_ghz) {
        note = "<== optimal";
      }
      t.add_row({regime.name, fmt_fixed(p.clock_ghz, 1) + " GHz",
                 fmt_time_ps(static_cast<double>(busy.time)),
                 e ? fmt_energy_pj(*e) : "-", note});
    }
  }
  bench::print_table(
      t,
      "1e9-cycle task, 1.5 ms deadline. The optimum slides from the\n"
      "slowest deadline-feasible point (leaky platform) toward mid-ladder\n"
      "(gated idle) — no single static policy is right, hence the\n"
      "runtime's per-task energy models:");
  return 0;
}
