// EXP-C6-virt — fine-grain pipelined sharing of one hardware function
// (paper §4.1: "a function implemented in hardware can be 'called' by
// different tasks or threads of an HPC application in parallel, through the
// Virtualization block … execute multiple function calls (from different
// virtual machines) in a fully pipelined fashion").
//
// N concurrent callers each issue a call of fixed size against one
// accelerator. Exclusive locking serialises whole calls; the Virtualization
// block interleaves them at item granularity.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "hls/dse.h"
#include "worker/virtualization.h"

namespace ecoscale {
namespace {

struct ShareOutcome {
  double throughput_mitems_s = 0.0;
  double p95_latency_us = 0.0;
  double mean_latency_us = 0.0;
};

ShareOutcome run(SharingMode mode, std::size_t callers,
                 std::uint64_t items_per_call) {
  auto module = emit_variants(make_montecarlo_kernel(), 1).front();
  // Fine-grain regime: short calls against a deep pipeline — the case the
  // Virtualization block exists for (many threads, small work quanta).
  module.pipeline_depth = 128;
  VirtualizationBlock vb("vb", module, mode);
  Samples latency_us;
  SimTime last = 0;
  // All callers arrive together (worst-case burst).
  for (std::size_t c = 0; c < callers; ++c) {
    const auto call = vb.call(static_cast<std::uint32_t>(c),
                              items_per_call, 0);
    latency_us.add(to_microseconds(call.finish));
    last = std::max(last, call.finish);
  }
  ShareOutcome out;
  const double total_items =
      static_cast<double>(callers * items_per_call);
  out.throughput_mitems_s = total_items / to_seconds(last) / 1e6;
  out.p95_latency_us = latency_us.percentile(95);
  out.mean_latency_us = latency_us.mean();
  return out;
}

}  // namespace
}  // namespace ecoscale

int main() {
  using namespace ecoscale;
  bench::print_header(
      "EXP-C6-virt",
      "fully pipelined multi-caller execution via the Virtualization block "
      "(claim C6)");

  constexpr std::uint64_t kItems = 64;
  Table t({"callers", "exclusive Mitems/s", "pipelined Mitems/s",
           "exclusive p95", "pipelined p95", "p95 gain"});
  for (const std::size_t callers : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    const auto ex = run(SharingMode::kExclusive, callers, kItems);
    const auto pl = run(SharingMode::kPipelined, callers, kItems);
    t.add_row({fmt_u64(callers), fmt_fixed(ex.throughput_mitems_s, 1),
               fmt_fixed(pl.throughput_mitems_s, 1),
               fmt_fixed(ex.p95_latency_us, 1) + " us",
               fmt_fixed(pl.p95_latency_us, 1) + " us",
               fmt_ratio(ex.p95_latency_us / pl.p95_latency_us)});
  }
  bench::print_table(
      t,
      "One shared HW function (depth-128 pipeline), burst of N calls of\n"
      "64 items each.\n"
      "Pipelined sharing holds throughput flat and cuts tail latency by\n"
      "eliminating whole-call serialisation (the gain is the drained\n"
      "pipeline-depth bubble per call):");

  // Sensitivity: deeper pipelines make exclusive sharing worse.
  Table depth({"pipeline depth", "exclusive p95 (us)", "pipelined p95 (us)"});
  for (const std::uint32_t d : {8u, 32u, 128u, 512u}) {
    auto module = emit_variants(make_montecarlo_kernel(), 1).front();
    module.pipeline_depth = d;
    VirtualizationBlock ex("e", module, SharingMode::kExclusive);
    VirtualizationBlock pl("p", module, SharingMode::kPipelined);
    Samples e_lat, p_lat;
    for (std::size_t c = 0; c < 16; ++c) {
      e_lat.add(to_microseconds(
          ex.call(static_cast<std::uint32_t>(c), 512, 0).finish));
      p_lat.add(to_microseconds(
          pl.call(static_cast<std::uint32_t>(c), 512, 0).finish));
    }
    depth.add_row({fmt_u64(d), fmt_fixed(e_lat.percentile(95), 1),
                   fmt_fixed(p_lat.percentile(95), 1)});
  }
  bench::print_table(depth,
                     "Tail latency vs. pipeline depth (16 callers × 512 "
                     "items):");
  return 0;
}
