// EXP-C7-reconfig — partial reconfiguration cost: bounding-box floorplans
// and bitstream compression (paper §4.3: "By minimizing module bounding
// boxes and by using configuration data compression [11], we will reduce
// memory requirements, configuration latency and configuration power
// consumption at the same time.") plus middleware defragmentation.
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "fabric/reconfig.h"
#include "hls/dse.h"

namespace ecoscale {
namespace {

std::vector<AcceleratorModule> module_library() {
  std::vector<AcceleratorModule> lib;
  for (const auto& k :
       {make_stencil5_kernel(), make_matmul_tile_kernel(),
        make_montecarlo_kernel(), make_cart_split_kernel(),
        make_sha_like_kernel(), make_spmv_kernel()}) {
    lib.push_back(emit_variants(k, 1).front());
  }
  return lib;
}

struct ModeOutcome {
  Bytes total_bytes = 0;
  SimDuration total_config_time = 0;
  Picojoules energy = 0.0;
};

ModeOutcome load_library(BitstreamMode mode, CompressionMode comp) {
  ReconfigConfig cfg;
  cfg.fabric_width = 16;
  cfg.fabric_height = 8;
  cfg.bitstream_mode = mode;
  cfg.compression = comp;
  ReconfigManager mgr("f", cfg);
  SimTime now = 0;
  ModeOutcome out;
  for (const auto& m : module_library()) {
    const auto r = mgr.ensure_loaded(m, now);
    if (!r) continue;  // oversized module under this island scheme
    now = r->ready;
    out.total_bytes += r->config_bytes;
  }
  out.total_config_time = mgr.config_time();
  out.energy = mgr.energy().total();
  return out;
}

}  // namespace
}  // namespace ecoscale

int main() {
  using namespace ecoscale;
  bench::print_header("EXP-C7-reconfig",
                      "bounding boxes + compression cut configuration cost "
                      "(claim C7)");

  Table t({"floorplan", "compression", "bitstream bytes", "config time",
           "config energy", "vs. baseline"});
  const auto baseline =
      load_library(BitstreamMode::kFullRegion, CompressionMode::kNone);
  for (const auto& [fp_name, fp] :
       {std::pair{"full-region island", BitstreamMode::kFullRegion},
        std::pair{"bounding-box (GoAhead)", BitstreamMode::kBoundingBox}}) {
    for (const auto& [c_name, comp] :
         {std::pair{"none", CompressionMode::kNone},
          std::pair{"zero-RLE", CompressionMode::kRle},
          std::pair{"LZ dictionary", CompressionMode::kLz}}) {
      const auto out = load_library(fp, comp);
      t.add_row({fp_name, c_name,
                 fmt_bytes(static_cast<double>(out.total_bytes)),
                 fmt_time_ps(static_cast<double>(out.total_config_time)),
                 fmt_energy_pj(out.energy),
                 fmt_ratio(static_cast<double>(baseline.total_bytes) /
                           static_cast<double>(out.total_bytes))});
    }
  }
  bench::print_table(
      t, "Loading the 6-kernel accelerator module library once (ICAP at "
         "400 MB/s):");

  // Defragmentation ablation: module churn on a small fabric.
  Table defrag({"defrag", "placement failures", "defrag runs",
                "final fragmentation"});
  for (const bool allow : {false, true}) {
    ReconfigConfig cfg;
    cfg.fabric_width = 8;
    cfg.fabric_height = 8;
    cfg.allow_defrag = allow;
    ReconfigManager mgr("f", cfg);
    const auto lib = module_library();
    Rng rng(31);
    SimTime now = 0;
    int failures = 0;
    for (int step = 0; step < 400; ++step) {
      const auto& m = lib[rng.uniform_u64(lib.size())];
      now += microseconds(200);
      const auto r = mgr.ensure_loaded(m, now);
      if (!r) {
        ++failures;
        continue;
      }
      now = std::max(now, r->ready);
      // Occasionally retire a random loaded module to create holes.
      if (rng.chance(0.3)) {
        const auto& victim = lib[rng.uniform_u64(lib.size())];
        if (mgr.is_loaded(victim.kernel)) mgr.unload(victim.kernel);
      }
    }
    defrag.add_row({allow ? "on" : "off", fmt_u64(failures),
                    fmt_u64(mgr.defrag_runs()),
                    fmt_pct(mgr.floorplan().fragmentation())});
  }
  bench::print_table(
      defrag,
      "400-step module churn on an 8x8 fabric, with and without the\n"
      "middleware's defragmentation (module relocation):");
  return 0;
}
