// EXP-NUMA — implicit data migration and replication (paper §4.4:
// "topology-aware global memory allocators … for implicit data allocation,
// migration and replication between workers").
//
// Three access patterns over a 4-node machine, three policies each:
//   producer-consumer : node 1 works on data allocated at node 0
//   read-mostly table : all nodes read a lookup table homed at node 0
//   ping-pong         : two nodes alternately write the same page
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "runtime/numa_policy.h"

namespace ecoscale {
namespace {

struct Outcome {
  SimTime finish = 0;
  Picojoules energy = 0.0;
  NumaStats stats;
};

PgasConfig machine() {
  PgasConfig cfg;
  cfg.nodes = 4;
  cfg.workers_per_node = 2;
  return cfg;
}

Outcome producer_consumer(NumaPolicy policy) {
  PgasSystem pgas(machine());
  NumaConfig nc;
  nc.policy = policy;
  NumaManager numa(pgas, nc);
  const auto data = pgas.alloc(0, 0, 4 * kPageSize);
  Rng rng(1);
  SimTime t = 0;
  Picojoules e = 0;
  // Node 1 reads and updates the data 2000 times.
  for (int i = 0; i < 2000; ++i) {
    const auto addr = data + rng.uniform_u64(4 * kPageSize - 8);
    const auto r = rng.chance(0.3) ? numa.store({1, 0}, addr, 8, t)
                                   : numa.load({1, 0}, addr, 8, t);
    t = r.finish;
    e += r.energy;
  }
  return Outcome{t, e + numa.stats().policy_energy, numa.stats()};
}

Outcome read_mostly(NumaPolicy policy) {
  PgasSystem pgas(machine());
  NumaConfig nc;
  nc.policy = policy;
  NumaManager numa(pgas, nc);
  const auto table = pgas.alloc(0, 0, kPageSize);
  Rng rng(2);
  std::vector<SimTime> clocks(4, 0);
  Picojoules e = 0;
  // All 4 nodes read the table; node 0 occasionally updates it (1%).
  for (int i = 0; i < 1500; ++i) {
    for (NodeId n = 0; n < 4; ++n) {
      const auto addr = table + rng.uniform_u64(kPageSize - 8);
      MemAccess r;
      if (n == 0 && rng.chance(0.01)) {
        r = numa.store({0, 0}, addr, 8, clocks[n]);
      } else {
        r = numa.load({n, 0}, addr, 8, clocks[n]);
      }
      clocks[n] = r.finish;
      e += r.energy;
    }
  }
  Outcome out;
  for (const auto c : clocks) out.finish = std::max(out.finish, c);
  out.energy = e + numa.stats().policy_energy;
  out.stats = numa.stats();
  return out;
}

Outcome ping_pong(NumaPolicy policy) {
  PgasSystem pgas(machine());
  NumaConfig nc;
  nc.policy = policy;
  NumaManager numa(pgas, nc);
  const auto flag = pgas.alloc(0, 0, kPageSize);
  SimTime t = 0;
  Picojoules e = 0;
  for (int i = 0; i < 800; ++i) {
    const WorkerCoord who{static_cast<NodeId>(i % 2), 0};
    const auto r = numa.store(who, flag, 8, t);
    t = r.finish;
    e += r.energy;
  }
  return Outcome{t, e + numa.stats().policy_energy, numa.stats()};
}

void row(Table& t, const char* pattern, const char* policy,
         const Outcome& o) {
  t.add_row({pattern, policy, fmt_time_ps(static_cast<double>(o.finish)),
             fmt_energy_pj(o.energy), fmt_u64(o.stats.migrations),
             fmt_u64(o.stats.replicas_created),
             fmt_u64(o.stats.replica_hits)});
}

}  // namespace
}  // namespace ecoscale

int main() {
  using namespace ecoscale;
  bench::print_header("EXP-NUMA",
                      "implicit page migration and read replication "
                      "(claim §4.4)");

  Table t({"pattern", "policy", "time", "energy", "migrations", "replicas",
           "replica hits"});
  const auto policies = {
      std::pair{"static home", NumaPolicy::kStaticHome},
      std::pair{"migrate-on-hot", NumaPolicy::kMigrateOnHot},
      std::pair{"replicate-read-mostly", NumaPolicy::kReplicateReadMostly}};
  for (const auto& [name, p] : policies) {
    row(t, "producer-consumer", name, producer_consumer(p));
  }
  for (const auto& [name, p] : policies) {
    row(t, "read-mostly table", name, read_mostly(p));
  }
  for (const auto& [name, p] : policies) {
    row(t, "write ping-pong", name, ping_pong(p));
  }
  bench::print_table(
      t,
      "Each policy shines on one pattern and must not wreck the others:\n"
      "migration fixes producer-consumer, replication fixes read-mostly\n"
      "sharing, and ping-pong punishes over-eager migration:");
  return 0;
}
