// EXP-C4-unilogic — shared partitioned reconfigurable resources
// (paper §4.1: "Sharing of the limited reconfigurable resources between
// Workers is very important. Thus, within a Compute Node, any Worker can
// access any Reconfigurable block (even remote blocks that belong to other
// Workers) through the multi-layer interconnect.").
//
// Workload: bursty kernel-call arrivals, skewed across the 8 Workers of a
// Compute Node (Zipf over callers). Private accelerators queue bursts
// locally while neighbours idle; UNILOGIC sharing spills to the
// least-loaded fabric, paying the uncached remote data path.
#include <algorithm>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "hls/dse.h"
#include "unilogic/pool.h"

namespace ecoscale {
namespace {

constexpr std::size_t kWorkers = 8;

struct Arrival {
  SimTime when;
  std::size_t caller;
};

std::vector<Arrival> make_arrivals(double load, std::uint64_t seed,
                                   int count, SimDuration service_hint) {
  // Poisson arrivals at aggregate rate = load × (workers / service_hint),
  // callers Zipf-skewed (bursty hot workers).
  Rng rng(seed);
  std::vector<Arrival> arrivals;
  double t = 0;
  const double mean_gap =
      static_cast<double>(service_hint) / (load * kWorkers);
  for (int i = 0; i < count; ++i) {
    t += rng.exponential(mean_gap);
    arrivals.push_back(
        Arrival{static_cast<SimTime>(t), rng.zipf(kWorkers, 1.1)});
  }
  return arrivals;
}

struct PoolOutcome {
  double p50_us = 0.0;
  double p95_us = 0.0;
  double remote_frac = 0.0;
  double mean_fabric_util = 0.0;
};

PoolOutcome run(DispatchPolicy policy, double load) {
  WorkerConfig wc;
  wc.fabric.fabric_width = 8;
  wc.fabric.fabric_height = 8;
  std::vector<std::unique_ptr<Worker>> workers;
  std::vector<Worker*> ptrs;
  for (std::size_t i = 0; i < kWorkers; ++i) {
    workers.push_back(std::make_unique<Worker>(
        WorkerCoord{0, static_cast<WorkerId>(i)}, wc));
    ptrs.push_back(workers.back().get());
  }
  NetworkConfig net_cfg;
  LinkParams l0;
  l0.hop_latency = nanoseconds(20);
  l0.bandwidth = Bandwidth::from_gib_per_s(16.0);
  net_cfg.level_params = {{0, l0}};
  Network net(make_crossbar(kWorkers), net_cfg);
  UnilogicPool pool(ptrs, net);

  auto module = emit_variants(make_montecarlo_kernel(), 1).front();
  // Compute-bound calls (the sharing-friendly regime, cf. unit tests).
  module.initiation_interval = 2;
  module.bytes_in_per_item = 4;
  module.bytes_out_per_item = 4;
  constexpr std::uint64_t kItems = 50000;
  const SimDuration service = module.compute_time(kItems);

  const auto arrivals = make_arrivals(load, 0xBEEF, 300, service);
  Samples latency_us;
  SimTime horizon = 0;
  for (const auto& a : arrivals) {
    const auto r = pool.invoke(a.caller, module, kItems, a.when, policy);
    if (!r) continue;
    latency_us.add(to_microseconds(r->finish - a.when));
    horizon = std::max(horizon, r->finish);
  }
  PoolOutcome out;
  out.p50_us = latency_us.median();
  out.p95_us = latency_us.percentile(95);
  out.remote_frac =
      static_cast<double>(pool.remote_invocations()) /
      static_cast<double>(pool.remote_invocations() +
                          pool.local_invocations());
  double util = 0.0;
  for (auto& w : workers) {
    if (auto* block = w->find_block(module.kernel)) {
      util += block->issue_timeline().utilization(horizon);
    }
  }
  out.mean_fabric_util = util / kWorkers;
  return out;
}

}  // namespace
}  // namespace ecoscale

int main() {
  using namespace ecoscale;
  bench::print_header(
      "EXP-C4-unilogic",
      "sharing remote reconfigurable blocks raises utilisation and cuts "
      "latency under skewed load (claim C4)");

  Table t({"offered load", "policy", "p50 latency", "p95 latency",
           "remote calls", "mean fabric util"});
  for (const double load : {0.3, 0.6, 0.9}) {
    for (const auto& [name, policy] :
         {std::pair{"private (local only)", DispatchPolicy::kLocalOnly},
          std::pair{"UNILOGIC shared", DispatchPolicy::kLeastLoaded}}) {
      const auto out = run(policy, load);
      t.add_row({fmt_fixed(load, 1), name,
                 fmt_fixed(out.p50_us, 0) + " us",
                 fmt_fixed(out.p95_us, 0) + " us",
                 fmt_pct(out.remote_frac), fmt_pct(out.mean_fabric_util)});
    }
  }
  bench::print_table(
      t,
      "300 Zipf-skewed kernel calls (50k items each) over 8 Workers.\n"
      "Sharing wins hardest at high load, where hot workers' bursts spill\n"
      "to idle neighbours' fabrics:");
  return 0;
}
