// bench_serve — serving workloads on the sharded runtime (DESIGN.md
// §7.9): a partitioned PGAS key-value store under open-loop Zipfian
// load, plus the graph-analytics suite over the global address space.
//
//  * throughput vs offered load: goodput and p50/p99/p999 across a sweep
//    of offered loads — the saturation knee where queueing takes over,
//  * determinism: the knee point re-run at --sim-threads 1 vs N must
//    produce byte-identical fingerprints (latency histograms + apply
//    logs + shed counts, reduction-tree folded),
//  * admission control at 10x overload: bounded p999 and counted sheds
//    with a queue-depth limit vs unbounded queueing without,
//  * key skew: the same offered load from uniform to strongly Zipfian,
//  * request batching: doorbell amortization (batch_size) against
//    per-task dispatch overhead,
//  * graph suite: BFS / PageRank / CC over a skewed CSR graph in UNIMEM,
//    validated against the functional references every run.
//
// `--offered-load R` pins the sweep to one operating point; `--zipf S`
// overrides the default 0.99 key skew (bench_util.h shared parsing).
// Deterministic columns (hashes, counts, sim-time latencies) are
// committed in bench/baselines/bench_serve.json; latency percentiles are
// gated with x-ceilings there (scripts/update_baselines.py).
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/table.h"
#include "serve/graph.h"
#include "serve/kvstore.h"
#include "serve/latency.h"
#include "serve/loadgen.h"

namespace ecoscale {
namespace {

using serve::LoadGen;
using serve::LoadGenConfig;

constexpr std::size_t kNodes = 8;
constexpr std::size_t kWorkersPerNode = 4;
constexpr std::size_t kRequestsPerNode = 600;

struct KvRunConfig {
  double offered_load = 2e6;
  double zipf = 0.99;
  std::size_t admission_limit = 64;
  std::size_t batch_size = 1;
  SimDuration dispatch_overhead = 0;
  std::size_t sim_threads = 1;
  std::size_t requests_per_node = kRequestsPerNode;
};

struct KvRunResult {
  LoadGen::Report report;
  serve::TailSummary tail;
  double goodput = 0.0;
  std::uint64_t byte_hops = 0;
  std::uint64_t shed = 0;
  double hottest_pct = 0.0;  // busiest node's share of applied requests
  /// Payload bytes of requests applied away from their origin node —
  /// traffic that crossed the inter-node interconnect.
  std::uint64_t remote_bytes = 0;
};

KvRunResult run_kv(const KvRunConfig& cfg) {
  ShardedRuntimeConfig rc;
  rc.nodes = kNodes;
  rc.workers_per_node = kWorkersPerNode;
  rc.threads = cfg.sim_threads;
  rc.runtime.placement = PlacementPolicy::kAlwaysSoftware;
  rc.runtime.distribution = DistributionPolicy::kHomeOnly;
  rc.runtime.admission_limit = cfg.admission_limit;
  rc.runtime.batch_size = cfg.batch_size;
  rc.runtime.dispatch_overhead = cfg.dispatch_overhead;
  ShardedRuntime rt(rc);

  serve::KvConfig kv_cfg;
  kv_cfg.key_space = 1ull << 14;
  kv_cfg.value_bytes = 64;
  kv_cfg.service_items = 2000;  // CPU-bound service, ~µs per request
  serve::KvStore kv(rt, kv_cfg);

  LoadGenConfig lg;
  lg.mode = LoadGenConfig::Mode::kOpenLoop;
  lg.offered_load = cfg.offered_load;
  lg.requests_per_node = cfg.requests_per_node;
  lg.zipf_skew = cfg.zipf;
  LoadGen gen(rt, kv, lg);
  gen.start();
  rt.run();

  KvRunResult out;
  out.report = gen.report();
  out.tail = serve::summarize(out.report.latency);
  out.goodput =
      serve::goodput_per_sec(out.report.completed, out.report.last_completion);
  out.shed = out.report.shed;
  std::uint64_t applied = 0;
  std::uint64_t hottest = 0;
  for (std::size_t n = 0; n < rt.node_count(); ++n) {
    out.byte_hops += rt.machine(n).pgas().network().byte_hops();
    const std::uint64_t count = kv.apply_log(n).size();
    applied += count;
    hottest = std::max(hottest, count);
    for (const serve::KvApplyRecord& rec : kv.apply_log(n)) {
      // LoadGen request ids stride by node count: origin = (id-1) % nodes.
      const std::size_t origin =
          static_cast<std::size_t>((rec.request - 1) % rt.node_count());
      if (origin != n) out.remote_bytes += kv_cfg.value_bytes;
    }
  }
  if (applied > 0) {
    out.hottest_pct =
        100.0 * static_cast<double>(hottest) / static_cast<double>(applied);
  }
  ECO_CHECK_MSG(out.report.issued ==
                    out.report.completed + out.report.shed,
                "every issued request must complete or shed");
  return out;
}

std::uint64_t fnv_words(const std::uint64_t* words, std::size_t count) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t v = words[i];
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xFF;
      h *= 1099511628211ull;
    }
  }
  return h;
}

}  // namespace
}  // namespace ecoscale

int main(int argc, char** argv) {
  using namespace ecoscale;
  bench::init(argc, argv);
  bench::print_header(
      "bench_serve",
      "PGAS key-value serving + graph analytics: tail latency, admission "
      "control, deterministic under --sim-threads N");

  const std::size_t sim_threads = bench::sim_threads();
  const double zipf =
      bench::options().zipf >= 0.0 ? bench::options().zipf : 0.99;

  // --- throughput vs offered load (saturation knee) -----------------------
  std::vector<double> loads;
  if (bench::options().offered_load > 0.0) {
    loads.push_back(bench::options().offered_load);
  } else {
    loads = {2.5e5, 5e5, 1e6, 2e6, 4e6, 8e6, 1.6e7};
  }
  Table knee_table({"offered/s", "issued", "completed", "shed",
                    "goodput/sec", "p50 ns", "p99 ns", "p999 ns", "hash"});
  std::vector<KvRunResult> sweep;
  for (const double load : loads) {
    KvRunConfig cfg;
    cfg.offered_load = load;
    cfg.zipf = zipf;
    cfg.sim_threads = sim_threads;
    sweep.push_back(run_kv(cfg));
    const KvRunResult& r = sweep.back();
    knee_table.add_row(
        {fmt_sci(load, 2), fmt_u64(r.report.issued),
         fmt_u64(r.report.completed), fmt_u64(r.shed),
         fmt_sci(r.goodput, 3), fmt_fixed(r.tail.p50_ns, 1),
         fmt_fixed(r.tail.p99_ns, 1), fmt_fixed(r.tail.p999_ns, 1),
         fmt_u64(r.report.fingerprint)});
  }
  bench::print_table(
      knee_table,
      "open-loop Zipfian load on the partitioned KV store (8 nodes x 4\n"
      "workers, admission limit 64): goodput tracks offered load until\n"
      "the knee, then tails grow and admission control sheds:");
  // The knee: the first sweep point where goodput falls visibly short of
  // the offered load — queueing has taken over (deepest point otherwise).
  std::size_t knee = sweep.size() - 1;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    if (sweep[i].goodput < 0.7 * loads[i]) {
      knee = i;
      break;
    }
  }
  const double knee_load = loads[knee];

  // --- determinism gate: --sim-threads 1 vs N -----------------------------
  KvRunConfig det_cfg;
  det_cfg.offered_load = knee_load;
  det_cfg.zipf = zipf;
  det_cfg.sim_threads = 1;
  const KvRunResult det_seq = run_kv(det_cfg);
  det_cfg.sim_threads = sim_threads;
  const KvRunResult det_par = run_kv(det_cfg);
  Table det_table({"sim threads", "completed", "shed", "hash"});
  det_table.add_row({"1", fmt_u64(det_seq.report.completed),
                     fmt_u64(det_seq.shed),
                     fmt_u64(det_seq.report.fingerprint)});
  det_table.add_row({fmt_u64(sim_threads), fmt_u64(det_par.report.completed),
                     fmt_u64(det_par.shed),
                     fmt_u64(det_par.report.fingerprint)});
  bench::print_table(det_table,
                     "knee-point run at 1 vs N simulation threads (latency\n"
                     "histograms + apply logs + shed counts must fold to\n"
                     "the same fingerprint):");
  if (det_seq.report.fingerprint != det_par.report.fingerprint) {
    std::cerr << "FATAL: serve fingerprint differs across sim threads\n";
    return 1;
  }

  // --- admission control at 10x overload ----------------------------------
  const double overload = 10.0 * sweep[knee].goodput;
  KvRunConfig over_on;
  over_on.offered_load = overload;
  over_on.zipf = zipf;
  over_on.admission_limit = 48;
  over_on.sim_threads = sim_threads;
  KvRunConfig over_off = over_on;
  over_off.admission_limit = 0;
  const KvRunResult on = run_kv(over_on);
  const KvRunResult off = run_kv(over_off);
  Table over_table({"admission", "completed", "shed", "p99 ns", "p999 ns",
                    "max ns"});
  over_table.add_row({"limit 48", fmt_u64(on.report.completed),
                      fmt_u64(on.shed), fmt_fixed(on.tail.p99_ns, 1),
                      fmt_fixed(on.tail.p999_ns, 1),
                      fmt_fixed(on.tail.max_ns, 1)});
  over_table.add_row({"unbounded", fmt_u64(off.report.completed),
                      fmt_u64(off.shed), fmt_fixed(off.tail.p99_ns, 1),
                      fmt_fixed(off.tail.p999_ns, 1),
                      fmt_fixed(off.tail.max_ns, 1)});
  bench::print_table(
      over_table,
      "10x overload: with a queue-depth limit the p999 of *answered*\n"
      "requests stays bounded and the excess is shed; without one every\n"
      "request queues and the tail absorbs the whole backlog:");
  if (on.shed == 0) {
    std::cerr << "FATAL: 10x overload shed nothing through admission "
                 "control\n";
    return 1;
  }
  if (on.tail.p999_ns * 2.0 > off.tail.p999_ns) {
    std::cerr << "FATAL: admission control did not bound p999 under "
                 "overload (on "
              << on.tail.p999_ns << " ns vs off " << off.tail.p999_ns
              << " ns)\n";
    return 1;
  }

  // --- key skew ------------------------------------------------------------
  Table skew_table({"zipf", "goodput/sec", "p99 ns", "shed", "hottest %"});
  double skew_p99_uniform = 0.0;
  double skew_p99_hot = 0.0;
  for (const double s : {0.0, 0.6, 0.99, 1.2}) {
    KvRunConfig cfg;
    cfg.offered_load = knee_load;
    cfg.zipf = s;
    cfg.sim_threads = sim_threads;
    const KvRunResult r = run_kv(cfg);
    if (s == 0.0) skew_p99_uniform = r.tail.p99_ns;
    if (s == 1.2) skew_p99_hot = r.tail.p99_ns;
    skew_table.add_row({fmt_fixed(s, 2), fmt_sci(r.goodput, 3),
                        fmt_fixed(r.tail.p99_ns, 1), fmt_u64(r.shed),
                        fmt_fixed(r.hottest_pct, 1)});
  }
  bench::print_table(
      skew_table,
      "key-popularity skew at the knee load: hot keys concentrate on\n"
      "their owning workers, queueing raises the tail even though the\n"
      "aggregate offered load is unchanged:");

  // --- request batching ----------------------------------------------------
  Table batch_table({"batch", "goodput/sec", "p50 ns", "p99 ns", "hash"});
  for (const std::size_t batch : {std::size_t{1}, std::size_t{16}}) {
    KvRunConfig cfg;
    cfg.offered_load = knee_load;
    cfg.zipf = zipf;
    cfg.batch_size = batch;
    cfg.dispatch_overhead = nanoseconds(500);
    cfg.sim_threads = sim_threads;
    const KvRunResult r = run_kv(cfg);
    batch_table.add_row({fmt_u64(batch), fmt_sci(r.goodput, 3),
                         fmt_fixed(r.tail.p50_ns, 1),
                         fmt_fixed(r.tail.p99_ns, 1),
                         fmt_u64(r.report.fingerprint)});
  }
  bench::print_table(
      batch_table,
      "500 ns dispatch overhead per batch window: batching amortizes the\n"
      "doorbell across up to batch_size queued requests:");

  // --- graph analytics suite ----------------------------------------------
  MachineConfig mc;
  mc.nodes = kNodes;
  mc.workers_per_node = kWorkersPerNode;
  Machine machine(mc);
  const serve::CsrGraph graph =
      serve::make_skewed_graph(2048, 6.0, 0.8, 0xEC05);
  serve::GraphEngine eng(machine, graph);

  const serve::BfsResult bfs = eng.bfs(0);
  const auto ref_bfs = serve::reference_bfs(graph, 0);
  const serve::PagerankResult pr = eng.pagerank(8);
  const auto ref_pr = serve::reference_pagerank(graph, 8);
  const serve::CcResult cc = eng.connected_components();
  const auto ref_cc = serve::reference_cc(graph);

  bool graph_ok = bfs.dist.size() == ref_bfs.size() &&
                  std::equal(bfs.dist.begin(), bfs.dist.end(),
                             ref_bfs.begin());
  graph_ok = graph_ok && pr.rank.size() == ref_pr.size() &&
             std::equal(pr.rank.begin(), pr.rank.end(), ref_pr.begin());
  graph_ok = graph_ok && cc.label.size() == ref_cc.size() &&
             std::equal(cc.label.begin(), cc.label.end(), ref_cc.begin());
  if (!graph_ok) {
    std::cerr << "FATAL: graph engine diverged from the functional "
                 "references\n";
    return 1;
  }

  std::vector<std::uint64_t> bfs_words(bfs.dist.begin(), bfs.dist.end());
  std::vector<std::uint64_t> cc_words(cc.label.begin(), cc.label.end());
  Table graph_table({"algorithm", "iterations", "sim ms", "edge reads",
                     "remote %", "byte hops", "hash"});
  graph_table.add_row(
      {"bfs", fmt_u64(bfs.stats.iterations),
       fmt_fixed(static_cast<double>(bfs.stats.time) / 1e9, 3),
       fmt_u64(bfs.stats.edge_reads),
       fmt_fixed(100.0 * bfs.stats.remote_fraction(), 1),
       fmt_u64(bfs.stats.byte_hops),
       fmt_u64(fnv_words(bfs_words.data(), bfs_words.size()))});
  graph_table.add_row(
      {"pagerank", fmt_u64(pr.stats.iterations),
       fmt_fixed(static_cast<double>(pr.stats.time) / 1e9, 3),
       fmt_u64(pr.stats.edge_reads),
       fmt_fixed(100.0 * pr.stats.remote_fraction(), 1),
       fmt_u64(pr.stats.byte_hops),
       fmt_u64(fnv_words(
           reinterpret_cast<const std::uint64_t*>(pr.rank.data()),
           pr.rank.size()))});
  graph_table.add_row(
      {"cc", fmt_u64(cc.stats.iterations),
       fmt_fixed(static_cast<double>(cc.stats.time) / 1e9, 3),
       fmt_u64(cc.stats.edge_reads),
       fmt_fixed(100.0 * cc.stats.remote_fraction(), 1),
       fmt_u64(cc.stats.byte_hops),
       fmt_u64(fnv_words(cc_words.data(), cc_words.size()))});
  bench::print_table(
      graph_table,
      "graph analytics over the global address space (2048 vertices,\n"
      "skewed degrees, 32 workers): every run is checked against the\n"
      "single-threaded functional references:");

  // --- machine-readable summary -------------------------------------------
  const KvRunResult& kr = sweep[knee];
  std::cout << "SERVE_JSON {"
            << "\"knee_offered_per_sec\": " << knee_load
            << ", \"knee_goodput_per_sec\": " << kr.goodput
            << ", \"knee_p50_ns\": " << kr.tail.p50_ns
            << ", \"knee_p99_ns\": " << kr.tail.p99_ns
            << ", \"knee_p999_ns\": " << kr.tail.p999_ns
            << ", \"kv_remote_bytes\": " << kr.remote_bytes
            << ", \"graph_byte_hops\": " << bfs.stats.byte_hops
            << ", \"overload_shed\": " << on.shed
            << ", \"overload_p999_on_ns\": " << on.tail.p999_ns
            << ", \"overload_p999_off_ns\": " << off.tail.p999_ns
            << ", \"skew_p99_uniform_ns\": " << skew_p99_uniform
            << ", \"skew_p99_hot_ns\": " << skew_p99_hot
            << ", \"det_match\": "
            << (det_seq.report.fingerprint == det_par.report.fingerprint ? 1
                                                                         : 0)
            << ", \"bfs_remote_fraction\": " << bfs.stats.remote_fraction()
            << ", \"graph_ok\": " << (graph_ok ? 1 : 0) << "}\n";
  return 0;
}
