// EXP-C2-coherence — UNIMEM vs. global cache coherence (paper §2, §4.1).
//
// Claim C2: "a memory page can be cacheable at the local coherent node or
// at a remote coherent node, but not at both … eliminates global-scope
// cache coherence protocols providing a scalable solution", and "other
// existing architectures either require a global cache coherent mechanism,
// which simply cannot scale…".
//
// Workload: every worker repeatedly updates its own partition (node-local
// in UNIMEM) and occasionally reads/writes a set of globally shared pages.
// Baselines keep ALL caches in one coherence domain (snoop broadcast or
// directory); UNIMEM keeps one small domain per node and routes remote
// accesses to the owner uncached. The metric that decides scalability is
// coherence messages per memory access.
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "memory/coherence.h"
#include "unimem/pgas.h"

namespace ecoscale {
namespace {

constexpr std::size_t kWorkersPerNode = 4;
constexpr int kAccessesPerWorker = 2000;
constexpr double kSharedFraction = 0.10;  // 10% of accesses touch shared data

struct AccessPattern {
  std::size_t worker;
  bool shared;
  bool write;
  std::uint64_t offset;  // within the worker's private or the shared region
};

std::vector<AccessPattern> make_pattern(std::size_t workers,
                                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<AccessPattern> out;
  out.reserve(workers * kAccessesPerWorker);
  for (int a = 0; a < kAccessesPerWorker; ++a) {
    for (std::size_t w = 0; w < workers; ++w) {
      AccessPattern p;
      p.worker = w;
      p.shared = rng.chance(kSharedFraction);
      p.write = rng.chance(0.3);
      p.offset = rng.uniform_u64(16 * kKiB);
      out.push_back(p);
    }
  }
  return out;
}

/// Global-coherence baseline: one domain over all caches.
double global_msgs_per_access(std::size_t workers, CoherenceMode mode,
                              const std::vector<AccessPattern>& pattern) {
  std::vector<std::unique_ptr<Cache>> caches;
  std::vector<Cache*> ptrs;
  for (std::size_t w = 0; w < workers; ++w) {
    caches.push_back(std::make_unique<Cache>("c", CacheConfig{}));
    ptrs.push_back(caches.back().get());
  }
  CoherenceDomain domain(ptrs, mode);
  for (const auto& p : pattern) {
    // Private regions are disjoint per worker; shared region is common.
    const std::uint64_t addr =
        p.shared ? (1ull << 40) + p.offset
                 : (static_cast<std::uint64_t>(p.worker) << 30) + p.offset;
    if (p.write) {
      domain.write(p.worker, addr);
    } else {
      domain.read(p.worker, addr);
    }
  }
  const auto& s = domain.stats();
  return static_cast<double>(s.snoop_messages) /
         static_cast<double>(s.reads + s.writes);
}

/// UNIMEM: per-node domains + remote (uncached) accesses to the shared
/// region's owner node. Coherence messages = local-domain probes; remote
/// accesses are plain network round trips, counted separately.
struct UnimemResult {
  double coherence_msgs_per_access = 0.0;
  double remote_fraction = 0.0;
};

UnimemResult unimem_run(std::size_t workers,
                        const std::vector<AccessPattern>& pattern) {
  PgasConfig cfg;
  cfg.workers_per_node = kWorkersPerNode;
  cfg.nodes = workers / kWorkersPerNode;
  PgasSystem pgas(cfg);
  // Private allocations per worker + one shared region owned by node 0.
  std::vector<GlobalAddress> priv;
  for (std::size_t w = 0; w < workers; ++w) {
    const auto c = pgas.coord(w);
    priv.push_back(pgas.alloc(c.node, c.worker, 32 * kKiB));
  }
  const auto shared = pgas.alloc(0, 0, 32 * kKiB);
  SimTime now = 0;
  for (const auto& p : pattern) {
    const auto who = pgas.coord(p.worker);
    const GlobalAddress addr =
        p.shared ? shared + p.offset : priv[p.worker] + p.offset;
    const auto r = p.write ? pgas.store(who, addr, 8, now)
                           : pgas.load(who, addr, 8, now);
    now = std::max(now, r.finish);
  }
  std::uint64_t probes = 0;
  for (std::size_t n = 0; n < cfg.nodes; ++n) {
    probes += pgas.node_domain(static_cast<NodeId>(n)).stats().snoop_messages;
  }
  UnimemResult r;
  const double total = static_cast<double>(pattern.size());
  r.coherence_msgs_per_access = static_cast<double>(probes) / total;
  r.remote_fraction =
      static_cast<double>(pgas.remote_accesses()) / total;
  return r;
}

/// Timed comparison: total completion time of the access stream under
/// UNIMEM vs. a machine-wide snoop domain (each probe pays wire latency).
struct TimedResult {
  SimTime finish = 0;
  Picojoules energy = 0.0;
};

TimedResult timed_run(std::size_t workers, CoherenceScope scope,
                      const std::vector<AccessPattern>& pattern) {
  PgasConfig cfg;
  cfg.workers_per_node = kWorkersPerNode;
  cfg.nodes = workers / kWorkersPerNode;
  cfg.scope = scope;
  PgasSystem pgas(cfg);
  std::vector<GlobalAddress> priv;
  for (std::size_t w = 0; w < workers; ++w) {
    const auto c = pgas.coord(w);
    priv.push_back(pgas.alloc(c.node, c.worker, 32 * kKiB));
  }
  // Shared region partitioned across the nodes (PGAS-style layout, the
  // discipline the paper's §2 data-partitioning assumes) — no single home
  // hotspot.
  std::vector<GlobalAddress> shared_chunks;
  for (std::size_t n = 0; n < cfg.nodes; ++n) {
    shared_chunks.push_back(
        pgas.alloc(static_cast<NodeId>(n),
                   static_cast<WorkerId>(n % kWorkersPerNode), 32 * kKiB));
  }
  auto shared_addr = [&](std::uint64_t offset) {
    const std::size_t chunk = (offset / 512) % shared_chunks.size();
    return shared_chunks[chunk] + offset % (32 * kKiB);
  };
  // Per-worker logical clocks: each worker issues its stream serially and
  // the streams interleave in global time order (so shared-resource
  // reservations happen chronologically).
  std::vector<std::vector<const AccessPattern*>> streams(workers);
  for (const auto& p : pattern) streams[p.worker].push_back(&p);
  std::vector<std::size_t> next(workers, 0);
  std::vector<SimTime> clock(workers, 0);
  for (;;) {
    std::size_t w = workers;
    for (std::size_t i = 0; i < workers; ++i) {
      if (next[i] < streams[i].size() && (w == workers || clock[i] < clock[w])) {
        w = i;
      }
    }
    if (w == workers) break;
    const AccessPattern& p = *streams[w][next[w]++];
    const auto who = pgas.coord(p.worker);
    const GlobalAddress addr =
        p.shared ? shared_addr(p.offset) : priv[p.worker] + p.offset;
    const auto r = p.write ? pgas.store(who, addr, 8, clock[w])
                           : pgas.load(who, addr, 8, clock[w]);
    clock[w] = r.finish;
  }
  TimedResult out;
  for (const auto t : clock) out.finish = std::max(out.finish, t);
  out.energy = pgas.energy().total();
  return out;
}

}  // namespace
}  // namespace ecoscale

int main(int argc, char** argv) {
  using namespace ecoscale;
  bench::init(argc, argv);
  bench::print_header("EXP-C2-coherence",
                      "UNIMEM eliminates global coherence traffic (claim C2)");

  // Each sweep point builds its own pattern and systems, so the points are
  // independent and the parallel run matches the sequential one byte for
  // byte (rows come back in submission order).
  const std::vector<std::size_t> sizes{4, 8, 16, 32, 64, 128};
  Table t({"caches", "snoop bcast msgs/access", "directory msgs/access",
           "UNIMEM msgs/access", "UNIMEM remote frac"});
  for (auto& row : bench::parallel_sweep(sizes.size(), [&](std::size_t i) {
         const std::size_t workers = sizes[i];
         const auto pattern = make_pattern(workers, 0xC0FFEE);
         const double bcast = global_msgs_per_access(
             workers, CoherenceMode::kSnoopBroadcast, pattern);
         const double dir = global_msgs_per_access(
             workers, CoherenceMode::kDirectory, pattern);
         const auto unimem = unimem_run(workers, pattern);
         return std::vector<std::string>{
             fmt_u64(workers), fmt_fixed(bcast, 2), fmt_fixed(dir, 3),
             fmt_fixed(unimem.coherence_msgs_per_access, 3),
             fmt_pct(unimem.remote_fraction)};
       })) {
    t.add_row(std::move(row));
  }
  bench::print_table(
      t,
      "Coherence messages per access (10% shared working set, 30% writes).\n"
      "Broadcast grows linearly with machine size; UNIMEM stays bounded by\n"
      "the node-local domain (4 caches) at any scale:");

  const std::vector<std::size_t> timed_sizes{4, 16, 64};
  Table timed({"caches", "global-snoop time", "UNIMEM time", "speedup",
               "global energy", "UNIMEM energy"});
  for (auto& row :
       bench::parallel_sweep(timed_sizes.size(), [&](std::size_t i) {
         const std::size_t workers = timed_sizes[i];
         const auto pattern = make_pattern(workers, 0xC0FFEE);
         const auto global =
             timed_run(workers, CoherenceScope::kGlobal, pattern);
         const auto unimem =
             timed_run(workers, CoherenceScope::kUnimem, pattern);
         return std::vector<std::string>{
             fmt_u64(workers), fmt_time_ps(static_cast<double>(global.finish)),
             fmt_time_ps(static_cast<double>(unimem.finish)),
             fmt_ratio(static_cast<double>(global.finish) /
                       static_cast<double>(unimem.finish)),
             fmt_energy_pj(global.energy), fmt_energy_pj(unimem.energy)};
       })) {
    timed.add_row(std::move(row));
  }
  bench::print_table(
      timed,
      "Same access stream, timed end to end: machine-wide snoop coherence\n"
      "(every miss probes every cache across the wire) vs. UNIMEM. The gap\n"
      "widens with machine size — the 'simply cannot scale' claim:");
  return 0;
}
