// Micro-benchmarks of the simulator's primitive operations (google-benchmark
// harness). These measure the *simulator's* own cost, not simulated time —
// useful for keeping the experiment harnesses fast as the models grow.
#include <benchmark/benchmark.h>

#include "address/smmu.h"
#include "common/rng.h"
#include "fabric/bitstream.h"
#include "hls/estimate.h"
#include "interconnect/network.h"
#include "memory/cache.h"
#include "model/regression.h"

namespace ecoscale {
namespace {

void BM_RngU64(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform_u64(1000));
  }
}
BENCHMARK(BM_RngU64);

void BM_CacheAccess(benchmark::State& state) {
  Cache cache("c", CacheConfig{});
  Rng rng(2);
  for (auto _ : state) {
    const std::uint64_t line = rng.uniform_u64(1 << 14);
    if (cache.state(line) == LineState::kInvalid) {
      benchmark::DoNotOptimize(cache.fill(line, LineState::kExclusive));
    } else {
      benchmark::DoNotOptimize(cache.touch(line, false));
    }
  }
}
BENCHMARK(BM_CacheAccess);

void BM_SmmuTranslateHit(benchmark::State& state) {
  Smmu smmu;
  smmu.stage1(1).map(5, 6);
  smmu.stage2().map(6, 7);
  (void)smmu.translate(1, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(smmu.translate(1, 5));
  }
}
BENCHMARK(BM_SmmuTranslateHit);

void BM_NetworkSend(benchmark::State& state) {
  NetworkConfig cfg;
  cfg.level_params = {{0, LinkParams{}}};
  Network net(make_tree({8, 8}), cfg);
  Rng rng(3);
  Packet p{PacketType::kWrite, {}, {}, 64};
  SimTime now = 0;
  for (auto _ : state) {
    const auto a = rng.uniform_u64(64);
    const auto b = rng.uniform_u64(64);
    benchmark::DoNotOptimize(net.send(a, b, p, now));
    now += 1000;
  }
}
BENCHMARK(BM_NetworkSend);

void BM_RidgeObserve(benchmark::State& state) {
  RidgeRegression model(5);
  Rng rng(4);
  for (auto _ : state) {
    const double x = rng.uniform();
    model.observe(std::array{1.0, x, x * x, 2 * x, 1 - x}, 3 * x);
  }
}
BENCHMARK(BM_RidgeObserve);

void BM_RidgePredict(benchmark::State& state) {
  RidgeRegression model(5);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform();
    model.observe(std::array{1.0, x, x * x, 2 * x, 1 - x}, 3 * x);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.predict(std::array{1.0, 0.5, 0.25, 1.0, 0.5}));
  }
}
BENCHMARK(BM_RidgePredict);

void BM_BitstreamCompressRle(benchmark::State& state) {
  const auto bs = generate_bitstream(4, 0.3, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compress_rle(bs));
  }
}
BENCHMARK(BM_BitstreamCompressRle);

void BM_HlsEstimate(benchmark::State& state) {
  const auto kernel = make_montecarlo_kernel();
  HlsDesign d;
  d.unroll = 8;
  d.array_partition = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimate_design(kernel, d));
  }
}
BENCHMARK(BM_HlsEstimate);

}  // namespace
}  // namespace ecoscale

BENCHMARK_MAIN();
