// EXP-F1b-mapping — topology-aware task mapping (paper §2: "This
// hierarchical partitioning can significantly reduce the communication
// overhead and the mapping algorithm complexity to achieve scalability
// [3][4]", and §4.4's MPI-3 topology abstractions).
//
// For stencil-like and irregular communication graphs, compare three rank
// placements on a machine of 8-worker nodes: scrambled (oblivious),
// identity (natural order), and the greedy hierarchical reorder. Metrics:
// traffic-weighted mapping cost, inter-node message count and latency of a
// neighbourhood exchange.
#include <iostream>
#include <numeric>

#include "bench_util.h"
#include "common/rng.h"
#include "mpi/graph_topology.h"

namespace ecoscale {
namespace {

struct Placement {
  std::string name;
  std::vector<std::size_t> perm;
};

void run_graph(const std::string& graph_name, const GraphTopology& graph,
               std::size_t ranks_per_node, Table& table) {
  const std::size_t n = graph.size();
  std::vector<std::size_t> identity(n);
  std::iota(identity.begin(), identity.end(), 0);
  std::vector<std::size_t> scrambled = identity;
  Rng rng(0xABBA);
  rng.shuffle(scrambled);
  const auto reordered = graph.reorder(ranks_per_node);

  for (const auto& p :
       {Placement{"scrambled", scrambled}, Placement{"natural", identity},
        Placement{"hier. reorder", reordered}}) {
    MpiWorld world(n);
    std::vector<SimTime> arrivals(n, 0);
    const auto coll = neighbor_alltoall(world, graph, kibibytes(16),
                                        arrivals, p.perm, ranks_per_node);
    table.add_row({graph_name, p.name,
                   fmt_fixed(graph.mapping_cost(p.perm, ranks_per_node), 0),
                   fmt_u64(coll.messages),
                   fmt_time_ps(static_cast<double>(coll.finish)),
                   fmt_energy_pj(coll.energy)});
  }
}

}  // namespace
}  // namespace ecoscale

int main() {
  using namespace ecoscale;
  bench::print_header("EXP-F1b-mapping",
                      "hierarchical topology-aware mapping cuts inter-node "
                      "traffic (claim C1, refs [3][4])");

  Table t({"graph", "placement", "mapping cost", "inter-node msgs",
           "exchange time", "energy"});
  run_graph("stencil 8x8", make_stencil_graph(8, 8), 8, t);
  run_graph("ring 64", make_ring_graph(64), 8, t);
  run_graph("irregular d=4", make_irregular_graph(64, 4, 123), 8, t);
  bench::print_table(
      t,
      "64 ranks on 8-rank nodes, 16 KiB neighbourhood exchange. The greedy\n"
      "hierarchical reorder packs connected ranks into nodes, turning MPI\n"
      "messages into UNIMEM stores:");
  return 0;
}
