// EXP-MEMPATH — memory/interconnect access fast-path throughput.
//
// The scalability experiments (EXP-C2, EXP-APP-holistic) sweep machine
// sizes, so how many simulated PGAS accesses and network packets the model
// retires per wall-clock second directly bounds how far toward "exascale"
// configurations the sweeps can go. This bench times the steady-state
// per-access stack in isolation:
//
//   * local  — node-local load/store through the coherence domain
//   * remote — cross-node load/store: translate, route, DRAM, respond
//   * atomic — remote fetch-add round trips (§4.1 synchronisation traffic)
//   * send   — raw Network::send on a two-level tree
//
// Loops follow the epoch discipline from DESIGN.md §7.1: `now` advances at
// a fixed issue rate and release(now) is called at epoch boundaries so
// calendar resources stay pruned. Emits a one-line machine-readable
// summary (`MEMPATH_JSON {...}`); `--json <path>` additionally dumps the
// tables.
#include <chrono>
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "interconnect/network.h"
#include "interconnect/topology.h"
#include "unimem/pgas.h"

namespace ecoscale {
namespace {

constexpr std::uint64_t kEpoch = 4096;        // accesses between release()
constexpr SimDuration kIssueStride = nanoseconds(100);

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct LoopResult {
  std::uint64_t ops = 0;
  double seconds = 0.0;
  double ops_per_sec() const { return seconds > 0 ? ops / seconds : 0.0; }
  double ns_per_op() const { return ops ? seconds * 1e9 / ops : 0.0; }
};

/// Local loads/stores: every worker walks its own node-homed buffer.
LoopResult local_loop(std::uint64_t ops) {
  PgasConfig cfg;
  cfg.nodes = 2;
  cfg.workers_per_node = 4;
  PgasSystem pgas(cfg);
  std::vector<GlobalAddress> bufs;
  for (std::size_t w = 0; w < pgas.worker_count(); ++w) {
    const auto c = pgas.coord(w);
    bufs.push_back(pgas.alloc(c.node, c.worker, 64 * kKiB));
  }
  Rng rng(0x5EED);
  SimTime now = 0;
  std::uint64_t done = 0;
  volatile double sink = 0.0;
  const auto t0 = std::chrono::steady_clock::now();
  while (done < ops) {
    for (std::uint64_t i = 0; i < kEpoch && done < ops; ++i, ++done) {
      const std::size_t w = done % pgas.worker_count();
      const auto addr = bufs[w] + rng.uniform_u64(64 * kKiB - 8);
      const auto r = (done & 3) == 0 ? pgas.store(pgas.coord(w), addr, 8, now)
                                     : pgas.load(pgas.coord(w), addr, 8, now);
      sink = sink + static_cast<double>(r.finish);
      now += kIssueStride;
    }
    pgas.release(now);
  }
  LoopResult r;
  r.ops = done;
  r.seconds = seconds_since(t0);
  return r;
}

/// Remote loads/stores: workers of node 0 access node-1-owned pages.
LoopResult remote_loop(std::uint64_t ops) {
  PgasConfig cfg;
  cfg.nodes = 2;
  cfg.workers_per_node = 4;
  PgasSystem pgas(cfg);
  std::vector<GlobalAddress> bufs;
  for (std::size_t w = 0; w < cfg.workers_per_node; ++w) {
    bufs.push_back(pgas.alloc(1, static_cast<WorkerId>(w), 64 * kKiB));
  }
  Rng rng(0xFA57);
  SimTime now = 0;
  std::uint64_t done = 0;
  volatile double sink = 0.0;
  const auto t0 = std::chrono::steady_clock::now();
  while (done < ops) {
    for (std::uint64_t i = 0; i < kEpoch && done < ops; ++i, ++done) {
      const WorkerCoord who{0, static_cast<WorkerId>(done & 3)};
      const auto addr = bufs[done & 3] + rng.uniform_u64(64 * kKiB - 8);
      const auto r = (done & 3) == 0 ? pgas.store(who, addr, 8, now)
                                     : pgas.load(who, addr, 8, now);
      sink = sink + static_cast<double>(r.finish);
      now += kIssueStride;
    }
    pgas.release(now);
  }
  LoopResult r;
  r.ops = done;
  r.seconds = seconds_since(t0);
  return r;
}

/// Remote atomics: fetch-add on one node-1-owned counter word per worker.
LoopResult atomic_loop(std::uint64_t ops) {
  PgasConfig cfg;
  cfg.nodes = 2;
  cfg.workers_per_node = 4;
  PgasSystem pgas(cfg);
  const auto ctr = pgas.alloc(1, 0, 4 * kKiB);
  SimTime now = 0;
  std::uint64_t done = 0;
  volatile double sink = 0.0;
  const auto t0 = std::chrono::steady_clock::now();
  while (done < ops) {
    for (std::uint64_t i = 0; i < kEpoch && done < ops; ++i, ++done) {
      const WorkerCoord who{0, static_cast<WorkerId>(done & 3)};
      const auto r = pgas.atomic_rmw(who, ctr + 8 * (done & 63),
                                     AtomicOp::kFetchAdd, 1, now);
      sink = sink + static_cast<double>(r.finish);
      now += kIssueStride;
    }
    pgas.release(now);
  }
  LoopResult r;
  r.ops = done;
  r.seconds = seconds_since(t0);
  return r;
}

/// Raw Network::send over a 64-endpoint two-level tree, mixed pairs.
LoopResult send_loop(std::uint64_t ops) {
  NetworkConfig cfg;
  cfg.level_params = {{0, LinkParams{}}, {1, LinkParams{}}};
  Network net(make_tree({8, 8}), cfg);
  Rng rng(0xD1CE);
  // Fixed pool of src/dst pairs so routes are warm after the first epoch.
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (int i = 0; i < 256; ++i) {
    const auto s = static_cast<std::size_t>(rng.uniform_u64(64));
    auto d = static_cast<std::size_t>(rng.uniform_u64(64));
    if (d == s) d = (d + 1) % 64;
    pairs.emplace_back(s, d);
  }
  Packet p{PacketType::kWrite, {}, {}, 64};
  SimTime now = 0;
  std::uint64_t done = 0;
  volatile double sink = 0.0;
  const auto t0 = std::chrono::steady_clock::now();
  while (done < ops) {
    for (std::uint64_t i = 0; i < kEpoch && done < ops; ++i, ++done) {
      const auto& [s, d] = pairs[done & 255];
      const auto r = net.send(s, d, p, now);
      sink = sink + static_cast<double>(r.arrival);
      now += kIssueStride;
    }
    net.release(now);
  }
  LoopResult r;
  r.ops = done;
  r.seconds = seconds_since(t0);
  return r;
}

}  // namespace
}  // namespace ecoscale

int main(int argc, char** argv) {
  using namespace ecoscale;
  bench::init(argc, argv);
  std::uint64_t scale = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--scale" && i + 1 < argc) {
      scale = std::strtoull(argv[++i], nullptr, 10);
    }
  }
  bench::print_header("EXP-MEMPATH",
                      "steady-state memory/interconnect access throughput");

  // Warm-up pass (route caches, allocator pools, page registration), then
  // the timed pass.
  (void)local_loop(50'000);
  (void)remote_loop(50'000);
  const auto local = local_loop(1'000'000 * scale);
  const auto remote = remote_loop(1'000'000 * scale);
  const auto atomics = atomic_loop(500'000 * scale);
  const auto sends = send_loop(2'000'000 * scale);

  Table t({"path", "ops", "ns/op", "ops/sec"});
  t.add_row({"pgas local load/store", fmt_u64(local.ops),
             fmt_fixed(local.ns_per_op(), 1), fmt_sci(local.ops_per_sec(), 3)});
  t.add_row({"pgas remote load/store", fmt_u64(remote.ops),
             fmt_fixed(remote.ns_per_op(), 1),
             fmt_sci(remote.ops_per_sec(), 3)});
  t.add_row({"pgas remote fetch-add", fmt_u64(atomics.ops),
             fmt_fixed(atomics.ns_per_op(), 1),
             fmt_sci(atomics.ops_per_sec(), 3)});
  t.add_row({"network send (64-ep tree)", fmt_u64(sends.ops),
             fmt_fixed(sends.ns_per_op(), 1),
             fmt_sci(sends.ops_per_sec(), 3)});
  bench::print_table(
      t,
      "Simulated accesses retired per wall-clock second; higher is better.\n"
      "The remote path is the one that bounds machine-size sweeps:");

  std::cout << "MEMPATH_JSON {"
            << "\"local_ops_per_sec\": " << local.ops_per_sec()
            << ", \"remote_ops_per_sec\": " << remote.ops_per_sec()
            << ", \"atomic_ops_per_sec\": " << atomics.ops_per_sec()
            << ", \"send_ops_per_sec\": " << sends.ops_per_sec() << "}\n";
  return 0;
}
