// EXP-C8b-models — the model-building toolbox (paper §4.2: "We intend to
// use an array of regression, SVM and PCA techniques for this purpose").
//
// Compares ridge regression, passive-aggressive (SVM-family) regression,
// and PCA-preprocessed ridge on the task the runtime actually faces:
// predicting execution time from task features, online, with occasional
// outliers (cold caches, reconfiguration stalls). All models work in log
// space — task costs span four orders of magnitude, and a multiplicative
// error model is what makes MAPE the natural metric.
#include <array>
#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "model/pca.h"
#include "model/regression.h"
#include "model/svr.h"

namespace ecoscale {
namespace {

/// Ground-truth cost: time = 50 + 0.004*items + 0.0006*bytes with
/// multiplicative noise; features are log-scaled task properties (the
/// collinear pair log-items / log-bytes plus access-pattern terms).
struct Sample {
  std::array<double, 5> x;
  double y;      // natural units (ns)
  double log_y;  // training target
};

Sample draw(Rng& rng, double outlier_rate) {
  Sample s;
  const double items = std::pow(10.0, rng.uniform(2.0, 6.0));
  const double bytes = 16.0 * items * rng.uniform(0.9, 1.1);
  const double reuse = rng.uniform(0.5, 2.0);
  const double branchiness = rng.uniform(0.0, 0.2);
  s.x = {1.0, std::log10(items), std::log10(bytes), reuse, branchiness};
  // Power-law cost (log-linear ground truth): per-item cost shrinks
  // slightly with batch size, grows with per-item bytes and branchiness.
  double y = 2.5 * std::pow(items, 0.95) *
             std::pow(bytes / items, 0.4) * (1.0 + 2.0 * branchiness) *
             std::exp(rng.normal(0.0, 0.08));
  if (rng.chance(outlier_rate)) y *= rng.uniform(5.0, 20.0);
  s.y = y;
  s.log_y = std::log(y);
  return s;
}

template <typename Train, typename Predict>
double evaluate_mape(double outlier_rate, Train train, Predict predict_log) {
  Rng rng(2024);
  for (int i = 0; i < 3000; ++i) {
    const auto s = draw(rng, outlier_rate);
    train(s.x, s.log_y);
  }
  double mape = 0.0;
  int count = 0;
  for (int i = 0; i < 500; ++i) {
    const auto s = draw(rng, 0.0);  // clean holdout
    const double p = std::exp(predict_log(s.x));
    mape += std::abs(p - s.y) / s.y;
    ++count;
  }
  return mape / count;
}

}  // namespace
}  // namespace ecoscale

int main() {
  using namespace ecoscale;
  bench::print_header("EXP-C8b-models",
                      "regression / SVM / PCA techniques for cost "
                      "prediction (claim C8, §4.2)");

  Table t({"outlier rate", "ridge MAPE", "PA (SVM) MAPE",
           "PCA(3)+ridge MAPE"});
  for (const double outliers : {0.0, 0.02, 0.10}) {
    RidgeRegression ridge(5, 1e-3);
    const double ridge_mape = evaluate_mape(
        outliers,
        [&](const auto& x, double y) { ridge.observe(x, y); },
        [&](const auto& x) { return ridge.predict(x).value_or(0.0); });

    // PA's epsilon-insensitive loss with capped updates: an outlier can
    // move each weight by at most C, so a x20 cost spike nudges rather
    // than wrecks the model.
    PassiveAggressiveRegressor pa(5, /*epsilon=*/0.05, /*C=*/0.02);
    const double pa_mape = evaluate_mape(
        outliers,
        [&](const auto& x, double y) { pa.observe(x, y); },
        [&](const auto& x) { return pa.predict(x); });

    FeatureScaler pca_scaler(5);
    StreamingPca pca(5, 3, /*learning_rate=*/0.01);
    RidgeRegression pca_ridge(4, 1e-3);  // bias + 3 components
    int burn_in = 0;
    const double pca_mape = evaluate_mape(
        outliers,
        [&](const auto& x, double y) {
          pca_scaler.observe(x);
          const auto xs = pca_scaler.transform(x);
          pca.observe(xs);
          if (++burn_in < 300) return;  // let components settle
          const auto z = pca.project(xs);
          pca_ridge.observe(std::array{1.0, z[0], z[1], z[2]}, y);
        },
        [&](const auto& x) {
          const auto z = pca.project(pca_scaler.transform(x));
          return pca_ridge.predict(std::array{1.0, z[0], z[1], z[2]})
              .value_or(0.0);
        });

    t.add_row({fmt_pct(outliers), fmt_pct(ridge_mape), fmt_pct(pa_mape),
               fmt_pct(pca_mape)});
  }
  bench::print_table(
      t,
      "Online training on 3000 task-cost samples (log-space models),\n"
      "evaluated on a clean holdout. Least squares is sharpest on clean\n"
      "data but absorbs outliers into its normal equations forever; the\n"
      "capped-update PA learner degrades gracefully; PCA collapses the\n"
      "collinear features at a small fidelity cost — the reason §4.2\n"
      "keeps an array of techniques:");
  return 0;
}
