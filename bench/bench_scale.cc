// bench_scale — machine-construction and routing scalability (DESIGN.md
// §7.7): sweeps the simulated machine from 64 to 100k workers and reports
// what the implicit-routing + pooled-state refactor is supposed to buy:
//
//  * construction wall time (a 100k-worker machine must build in < 1 s),
//  * routing + cross-shard mailbox state per endpoint (< 64 B/endpoint —
//    the dense table alone was 8 B per endpoint *pair*),
//  * route-computation ns/op (the LCA walk, sampled over random pairs),
//    compared head-to-head against the legacy dense table at 64 workers,
//  * cross-shard message throughput through the consolidated per-thread
//    lanes, with the 1-vs-N-thread hash equality gate.
//
// Deterministic columns (state bytes, hashes, counts) are committed in
// bench/baselines/bench_scale.json and compared exactly by CI; wall-time
// and throughput columns are derated into ceilings/floors there (see
// scripts/update_baselines.py).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <memory>
#include <random>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/table.h"
#include "interconnect/network.h"
#include "interconnect/topology.h"
#include "runtime/machine.h"
#include "sim/parallel.h"

namespace ecoscale {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Resident set size in bytes (Linux /proc/self/statm; 0 elsewhere).
std::uint64_t rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long size = 0;
  unsigned long long resident = 0;
  const int got = std::fscanf(f, "%llu %llu", &size, &resident);
  std::fclose(f);
  if (got != 2) return 0;
  return static_cast<std::uint64_t>(resident) * 4096u;
}

struct ScalePoint {
  std::size_t nodes;
  std::size_t workers_per_node;
  std::size_t chassis;
};

struct ScaleRow {
  std::size_t workers = 0;
  std::size_t nodes = 0;
  double construct_ms = 0.0;
  double rss_mb = 0.0;             // RSS growth while constructing
  std::uint64_t route_bytes = 0;   // Network routing state
  std::uint64_t lane_bytes = 0;    // sharded-engine lane rings
  double state_b_per_ep = 0.0;     // (route + lanes) / workers
  double route_ns = 0.0;           // route_latency ns/op, sampled pairs
  std::uint64_t lazy_workers = 0;  // constructed after touching one pool
};

/// Time route_latency over `samples` random endpoint pairs.
double route_ns_per_op(Network& net, std::size_t samples) {
  std::mt19937 rng(42);
  const std::size_t eps = net.endpoint_count();
  // Pre-draw the pairs so the timed loop measures routing, not the RNG.
  std::vector<std::uint32_t> pairs(2 * samples);
  for (auto& v : pairs) v = rng() % eps;
  SimDuration sink = 0;
  const auto start = Clock::now();
  for (std::size_t i = 0; i < samples; ++i) {
    sink += net.route_latency(pairs[2 * i], pairs[2 * i + 1]);
  }
  const double ns =
      std::chrono::duration<double, std::nano>(Clock::now() - start).count();
  ECO_CHECK(sink > 0);  // keep the loop observable
  return ns / static_cast<double>(samples);
}

ScaleRow measure_scale_point(const ScalePoint& p) {
  ScaleRow row;
  row.nodes = p.nodes;
  row.workers = p.nodes * p.workers_per_node;

  MachineConfig mc;
  mc.nodes = p.nodes;
  mc.workers_per_node = p.workers_per_node;
  mc.pgas.chassis = p.chassis;

  const std::uint64_t rss_before = rss_bytes();
  const auto start = Clock::now();
  Machine machine(mc);
  // The engine shard layout a parallel run of this machine would use: one
  // shard per Compute Node, one message lane per worker thread.
  ShardedConfig sc;
  sc.shards = p.nodes;
  sc.lookahead = std::max<SimDuration>(machine.pgas().shard_lookahead(), 1);
  sc.threads = bench::sim_threads();
  ShardedSimulator engine(sc);
  row.construct_ms = ms_since(start);
  const std::uint64_t rss_after = rss_bytes();
  row.rss_mb = rss_after > rss_before
                   ? static_cast<double>(rss_after - rss_before) / (1 << 20)
                   : 0.0;

  Network& net = machine.pgas().network();
  ECO_CHECK_MSG(net.implicit_routing(),
                "machine trees must route implicitly");
  row.route_bytes = net.route_state_bytes();
  row.lane_bytes = engine.mailbox_state_bytes();
  row.state_b_per_ep =
      static_cast<double>(row.route_bytes + row.lane_bytes) /
      static_cast<double>(row.workers);

  // Routing cost, sampled over random pairs (fewer samples at 100k where
  // the working set no longer fits in cache — that is the point).
  const std::size_t samples = row.workers >= 50000 ? 200000 : 400000;
  row.route_ns = route_ns_per_op(net, samples);

  // Pooled state: constructing the machine built no workers at all;
  // touching one node's pool builds exactly that node's workers.
  ECO_CHECK_MSG(machine.constructed_workers() == 0,
                "construction must not touch worker state");
  machine.pool(0);
  row.lazy_workers = machine.constructed_workers();
  ECO_CHECK_MSG(row.lazy_workers == p.workers_per_node,
                "touching one pool must build exactly one node's workers");
  return row;
}

// --- cross-shard message throughput over the consolidated lanes -------------

struct LaneActor {
  ShardedSimulator* eng = nullptr;
  std::size_t shard = 0;
  std::size_t shards = 0;
  std::uint64_t remaining = 0;
  std::uint64_t* hash = nullptr;  // per-shard FNV accumulator
  Rng rng{0};

  void fire() {
    Simulator& sim = eng->shard(shard);
    std::uint64_t& h = *hash;
    h = (h ^ sim.now()) * 1099511628211ull;
    if (remaining == 0) return;
    --remaining;
    const std::size_t to = (shard + 1 + rng.uniform_u64(shards - 1)) % shards;
    const SimTime t = sim.now() + eng->lookahead() + rng.uniform_u64(150);
    std::uint64_t* dest_hash = hash - shard + to;  // same vector
    ShardedSimulator* e = eng;
    eng->post(shard, to, t, [e, to, dest_hash] {
      *dest_hash = (*dest_hash ^ e->shard(to).now()) * 1099511628211ull;
    });
    sim.schedule_after(1 + rng.uniform_u64(40), [this] { fire(); });
  }
};

struct LaneRun {
  std::uint64_t messages = 0;
  std::uint64_t spills = 0;
  double msgs_per_sec = 0.0;
  std::uint64_t hash = 0;
  double wall_s = 0.0;
};

LaneRun lane_throughput(std::size_t shards, std::size_t threads,
                        std::uint64_t fires) {
  ShardedConfig sc;
  sc.shards = shards;
  sc.lookahead = 200;
  sc.threads = threads;
  sc.mailbox_capacity = 1024;
  // Baseline lock: the committed lane hash mixes the window count, which
  // is a property of the PR-5 fixed-window schedule — pin that mode here
  // (adaptive scaling is gated in bench_simcore's imbalanced scenario).
  sc.window_mode = WindowMode::kFixedWindow;
  ShardedSimulator engine(sc);
  std::vector<std::uint64_t> hashes(shards, 1469598103934665603ull);
  std::vector<std::unique_ptr<LaneActor>> actors;
  for (std::size_t s = 0; s < shards; ++s) {
    for (int a = 0; a < 4; ++a) {
      actors.push_back(std::make_unique<LaneActor>());
      LaneActor& actor = *actors.back();
      actor.eng = &engine;
      actor.shard = s;
      actor.shards = shards;
      actor.remaining = fires;
      actor.hash = &hashes[s];
      actor.rng = Rng(0xACE5 + s * 8 + a);
      engine.shard(s).schedule_at(static_cast<SimTime>(1 + a),
                                  [&actor] { actor.fire(); });
    }
  }
  const auto start = Clock::now();
  engine.run();
  LaneRun run;
  run.wall_s = std::chrono::duration<double>(Clock::now() - start).count();
  run.messages = engine.messages();
  run.spills = engine.mailbox_spills();
  run.msgs_per_sec = static_cast<double>(run.messages) / run.wall_s;
  run.hash = 1469598103934665603ull;
  for (const std::uint64_t h : hashes) {
    run.hash = (run.hash ^ h) * 1099511628211ull;
  }
  run.hash = (run.hash ^ engine.events_processed()) * 1099511628211ull;
  run.hash = (run.hash ^ engine.windows()) * 1099511628211ull;
  run.hash = (run.hash ^ engine.messages()) * 1099511628211ull;
  return run;
}

}  // namespace
}  // namespace ecoscale

int main(int argc, char** argv) {
  using namespace ecoscale;
  bench::init(argc, argv);
  bench::print_header(
      "bench_scale",
      "hierarchical machines scale to 100k workers: implicit routes, "
      "per-thread lanes, pooled node state");

  // --- construction + state sweep -----------------------------------------
  const std::vector<ScalePoint> points = {
      {4, 16, 1},       // 64 workers
      {64, 16, 1},      // 1k
      {640, 16, 10},    // 10k, three-level tree
      {6250, 16, 25},   // 100k, three-level tree
  };
  Table scale({"workers", "nodes", "construct ms", "rss MB", "route bytes",
               "lane bytes", "state B/ep", "route ns/op", "lazy workers"});
  std::vector<ScaleRow> rows;
  for (const ScalePoint& p : points) {
    rows.push_back(measure_scale_point(p));
    const ScaleRow& r = rows.back();
    scale.add_row({fmt_u64(r.workers), fmt_u64(r.nodes),
                   fmt_fixed(r.construct_ms, 2), fmt_fixed(r.rss_mb, 1),
                   fmt_u64(r.route_bytes), fmt_u64(r.lane_bytes),
                   fmt_fixed(r.state_b_per_ep, 2), fmt_fixed(r.route_ns, 1),
                   fmt_u64(r.lazy_workers)});
  }
  bench::print_table(
      scale,
      "machine construction and routing state, 64 -> 100k workers (route\n"
      "state is the per-vertex tree arrays; lane bytes the per-thread\n"
      "cross-shard rings; lazy workers = constructed after touching one\n"
      "node's pool):");
  const ScaleRow& big = rows.back();
  if (big.construct_ms >= 1000.0) {
    std::cerr << "FATAL: 100k-worker machine took " << big.construct_ms
              << " ms to construct (budget: 1000 ms)\n";
    return 1;
  }
  if (big.state_b_per_ep >= 64.0) {
    std::cerr << "FATAL: route+mailbox state is " << big.state_b_per_ep
              << " B/endpoint at 100k workers (budget: 64)\n";
    return 1;
  }

  // --- implicit vs dense routing at 64 endpoints --------------------------
  // The dense table is the old default; at small scale it is a plain array
  // lookup, so it bounds how much the LCA walk may cost.
  NetworkConfig dense_cfg;
  dense_cfg.routing = RoutingMode::kDenseTable;
  Network dense(make_tree({16, 4}), dense_cfg);
  NetworkConfig imp_cfg;
  imp_cfg.routing = RoutingMode::kImplicitTree;
  Network implicit(make_tree({16, 4}), imp_cfg);
  dense.min_cross_latency(0);  // pre-materialize every dense route
  (void)route_ns_per_op(dense, 100000);     // warm both
  (void)route_ns_per_op(implicit, 100000);
  const double dense_ns = route_ns_per_op(dense, 400000);
  const double implicit_ns = route_ns_per_op(implicit, 400000);
  Table modes({"mode", "route ns/op", "route bytes"});
  modes.add_row({"dense table", fmt_fixed(dense_ns, 2),
                 fmt_u64(dense.route_state_bytes())});
  modes.add_row({"implicit LCA", fmt_fixed(implicit_ns, 2),
                 fmt_u64(implicit.route_state_bytes())});
  bench::print_table(modes,
                     "route_latency cost at 64 workers, implicit walk vs\n"
                     "pre-materialized dense table (the walk must stay\n"
                     "within 2x of the lookup):");

  // --- cross-shard throughput over consolidated lanes ---------------------
  constexpr std::size_t kShards = 32;
  constexpr std::uint64_t kFires = 600;
  lane_throughput(kShards, 1, kFires / 8);  // warm-up
  const LaneRun seq = lane_throughput(kShards, 1, kFires);
  const LaneRun par = lane_throughput(kShards, bench::sim_threads(), kFires);
  Table lanes({"sim threads", "messages", "spills", "msgs/sec", "hash"});
  lanes.add_row({"1", fmt_u64(seq.messages), fmt_u64(seq.spills),
                 fmt_sci(seq.msgs_per_sec, 3), fmt_u64(seq.hash)});
  lanes.add_row({fmt_u64(bench::sim_threads()), fmt_u64(par.messages),
                 fmt_u64(par.spills), fmt_sci(par.msgs_per_sec, 3),
                 fmt_u64(par.hash)});
  bench::print_table(
      lanes,
      "cross-shard messages through the per-thread lanes, 32 shards x 4\n"
      "actors (hashes must match across thread counts; spill counts are\n"
      "wall-clock-side and may differ):");
  if (seq.hash != par.hash) {
    std::cerr << "FATAL: lane hash mismatch across thread counts\n";
    return 1;
  }
  if (seq.messages != par.messages) {
    std::cerr << "FATAL: lane message count depends on thread count\n";
    return 1;
  }

  // --- machine-readable summary -------------------------------------------
  std::cout << "SCALE_JSON {"
            << "\"construct_ms_100k\": " << big.construct_ms
            << ", \"state_bytes_per_endpoint_100k\": " << big.state_b_per_ep
            << ", \"rss_mb_100k\": " << big.rss_mb
            << ", \"route_ns_100k\": " << big.route_ns
            << ", \"route_ns_dense_64\": " << dense_ns
            << ", \"route_ns_implicit_64\": " << implicit_ns
            << ", \"lane_msgs_per_sec\": " << par.msgs_per_sec
            << ", \"lane_hash_match\": " << (seq.hash == par.hash ? 1 : 0)
            << "}\n";
  return 0;
}
