// bench_repart — online locality-aware repartitioning driven by live
// traffic (DESIGN.md §7.11, ROADMAP item 3): the CI gate that proves the
// repartitioner pays off. Three scenarios, each static-vs-reactive on
// identical workloads over an 8-node {4,2} tree (two chassis of four):
//
//  * phase rotation: closed-loop Zipfian KV traffic whose per-origin
//    affine key window rotates one node every phase period — a static
//    contiguous partition decays to mostly-remote service while the
//    reactive store follows the traffic. Reactive must cut the
//    remote-issue rate and total byte-hops (requests + migration DMAs)
//    and raise goodput.
//  * node outage: open-loop traffic with a scripted whole-node crash
//    mid-run. Static strands every request aimed at the dead node until
//    repair; the reactive plan sees the node's believed-alive capacity
//    collapse and diffusion drains its blocks after detection, so only
//    the detection window's requests stall. Reactive must cut p99 and
//    produce stale-owner forwards (the re-homing path under live load).
//  * mesh front: the unstructured-mesh workload with an activity front
//    sweeping the ring. Static serializes the front on whichever node
//    owns it; reactive spreads it and must win total cell updates.
//
// Every reactive scenario re-runs at --sim-threads 1 and the fingerprint
// (workload fold + plan fingerprint) must be byte-identical to the
// parallel run — decisions happen at engine pause epochs, so thread
// count can never change a plan. All margins are enforced in-binary
// (FATAL + exit 1) and the deterministic columns are CI-gated against
// bench/baselines/bench_repart.json.
#include <cstdint>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "common/table.h"
#include "repart/mesh.h"
#include "repart/repart.h"
#include "serve/kvstore.h"
#include "serve/latency.h"
#include "serve/loadgen.h"

namespace ecoscale {
namespace {

using serve::LoadGen;
using serve::LoadGenConfig;

constexpr std::size_t kNodes = 8;
constexpr std::size_t kWorkersPerNode = 4;
constexpr std::size_t kBlocks = 64;
constexpr std::uint64_t kKeySpace = 1ull << 13;

std::uint64_t fnv_word(std::uint64_t h, std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xFF;
    h *= 1099511628211ull;
  }
  return h;
}

struct KvScenario {
  bool reactive = false;
  bool outage = false;
  std::size_t sim_threads = 1;
};

struct KvResult {
  LoadGen::Report report;
  serve::TailSummary tail;
  serve::KvStore::CrossStats cross;
  repart::Repartitioner::Stats plan;  // zeros when static
  double goodput = 0.0;
  double remote_rate = 0.0;        // remote issues / issued
  std::uint64_t total_byte_hops = 0;  // request traffic + migration DMAs
  std::uint64_t fingerprint = 0;   // workload fold + plan fingerprint
};

KvResult run_kv(const KvScenario& s) {
  ShardedRuntimeConfig rc;
  rc.nodes = kNodes;
  rc.workers_per_node = kWorkersPerNode;
  rc.threads = s.sim_threads;
  rc.internode_radices = {4, 2};
  rc.runtime.placement = PlacementPolicy::kAlwaysSoftware;
  rc.runtime.distribution = DistributionPolicy::kHomeOnly;
  if (s.reactive) {
    // A 30 us epoch gives each block a few requests per window — enough
    // signal for the two-epoch confirmation without reacting to noise —
    // and the 0.5 imbalance floor keeps the balance pass out of the
    // locality story entirely: it only fires when capacity actually
    // collapses (the outage drives believed-alive imbalance to 1e6).
    rc.runtime.repartition_epoch = microseconds(30);
    rc.runtime.repartition_max_moves = 64;
    rc.runtime.repartition_imbalance = 0.5;
    rc.runtime.repartition_alpha = 0.7;
    rc.runtime.repartition_cooldown = 2;
    rc.runtime.repartition_min_gain = 128;
  }
  if (s.outage) {
    // Whole-node crash at 300 µs, repaired 150 µs later; fast heartbeats
    // so detection (and the reactive drain) lands ~15 µs in.
    rc.node_outages.push_back(ShardedRuntimeConfig::NodeOutage{
        2, microseconds(300), microseconds(150)});
    rc.runtime.faults.heartbeat_period = microseconds(5);
    rc.runtime.faults.detect_timeout = microseconds(15);
  }
  ShardedRuntime rt(rc);

  serve::KvConfig kc;
  kc.key_space = kKeySpace;
  kc.value_bytes = 256;
  kc.service_items = 600;
  kc.repart_blocks = kBlocks;
  serve::KvStore kv(rt, kc);

  std::unique_ptr<repart::Repartitioner> rp;
  if (s.reactive) {
    rp = std::make_unique<repart::Repartitioner>(rt, kBlocks,
                                                 kv.initial_block_owners());
    kv.attach_repartitioner(rp.get());
    rp->install();
  }

  LoadGenConfig lg;
  lg.zipf_skew = 0.9;
  lg.origin_affinity = 0.9;
  if (s.outage) {
    // Open loop: the generator keeps offering load while the dead node's
    // queue strands, which is what makes the stall visible in the tail.
    // ~60% utilization: the tail below is the outage stall, not baseline
    // queueing (near saturation the detour/forward capacity cost would
    // mix into the comparison).
    lg.mode = LoadGenConfig::Mode::kOpenLoop;
    lg.offered_load = 4e6;
    lg.requests_per_node = 600;
    lg.phase_period = 0;  // stationary affinity: the fault is the story
  } else {
    // Latency-bound closed loop (fewer clients than workers): remote
    // detours lengthen the client round trip directly, so locality is
    // goodput, not just byte counts.
    lg.mode = LoadGenConfig::Mode::kClosedLoop;
    lg.clients_per_node = 3;
    lg.requests_per_client = 400;
    lg.phase_period = microseconds(400);
  }
  LoadGen gen(rt, kv, lg);
  gen.start();
  rt.run();

  KvResult out;
  out.report = gen.report();
  out.tail = serve::summarize(out.report.latency);
  out.cross = kv.cross_stats();
  if (rp != nullptr) out.plan = rp->stats();
  out.goodput =
      serve::goodput_per_sec(out.report.completed, out.report.last_completion);
  out.remote_rate = out.report.issued > 0
                        ? static_cast<double>(out.cross.remote_issues) /
                              static_cast<double>(out.report.issued)
                        : 0.0;
  out.total_byte_hops = out.cross.byte_hops + out.plan.move_byte_hops;
  out.fingerprint =
      fnv_word(out.report.fingerprint, out.plan.plan_fingerprint);
  ECO_CHECK_MSG(out.report.issued == out.report.completed + out.report.shed,
                "every issued request must complete or shed");
  return out;
}

struct MeshResult {
  repart::MeshWorkload::Report report;
  repart::Repartitioner::Stats plan;  // zeros when static
};

MeshResult run_mesh(bool reactive, std::size_t sim_threads) {
  ShardedRuntimeConfig rc;
  rc.nodes = kNodes;
  rc.workers_per_node = 2;
  rc.threads = sim_threads;
  rc.internode_radices = {4, 2};
  ShardedRuntime rt(rc);

  repart::MeshConfig mc;
  mc.cells = 2048;
  mc.front_width = 0.10;
  mc.front_period = milliseconds(1);
  mc.duration = microseconds(500);

  // The RepartConfig constructor (rather than the RuntimeConfig knobs):
  // the mesh wants a slower cadence than the KV scenarios.
  std::unique_ptr<repart::Repartitioner> rp;
  if (reactive) {
    repart::RepartConfig cfg;
    cfg.epoch = microseconds(20);
    cfg.max_moves = 64;
    cfg.alpha = 0.7;
    cfg.cooldown = 2;
    cfg.min_gain = 32;
    rp = std::make_unique<repart::Repartitioner>(
        rt, cfg, mc.cells,
        repart::MeshWorkload::contiguous_owners(mc.cells, kNodes));
  }
  repart::MeshWorkload mesh(rt, rp.get(), mc);
  if (rp != nullptr) rp->install();
  mesh.start();
  rt.run();

  MeshResult out;
  out.report = mesh.report();
  if (rp != nullptr) out.plan = rp->stats();
  return out;
}

}  // namespace
}  // namespace ecoscale

int main(int argc, char** argv) {
  using namespace ecoscale;
  bench::init(argc, argv);
  bench::print_header(
      "bench_repart",
      "online repartitioning driven by live traffic: phase-rotating KV "
      "serving, a node outage, and a sweeping mesh front — static vs "
      "reactive, deterministic at any --sim-threads");

  const std::size_t sim_threads = bench::sim_threads();

  // --- phase rotation ------------------------------------------------------
  KvScenario phase_static;
  phase_static.sim_threads = sim_threads;
  KvScenario phase_reactive = phase_static;
  phase_reactive.reactive = true;
  const KvResult ps = run_kv(phase_static);
  const KvResult pr = run_kv(phase_reactive);

  Table phase_table({"placement", "issued", "completed", "remote %",
                     "byte hops", "goodput/sec", "p99 ns", "moves", "hash"});
  for (const auto* r : {&ps, &pr}) {
    phase_table.add_row(
        {r == &ps ? "static" : "reactive", fmt_u64(r->report.issued),
         fmt_u64(r->report.completed), fmt_fixed(100.0 * r->remote_rate, 1),
         fmt_u64(r->total_byte_hops), fmt_sci(r->goodput, 3),
         fmt_fixed(r->tail.p99_ns, 1), fmt_u64(r->plan.moves),
         fmt_u64(r->fingerprint)});
  }
  bench::print_table(
      phase_table,
      "phase-rotating affine KV traffic (90% of each origin's requests\n"
      "target a key window that shifts one node every 400 us): the static\n"
      "contiguous partition goes remote after the first rotation, the\n"
      "reactive store migrates blocks behind the traffic:");

  // --- node outage ---------------------------------------------------------
  KvScenario fault_static;
  fault_static.outage = true;
  fault_static.sim_threads = sim_threads;
  KvScenario fault_reactive = fault_static;
  fault_reactive.reactive = true;
  const KvResult fs = run_kv(fault_static);
  const KvResult fr = run_kv(fault_reactive);

  Table fault_table({"placement", "completed", "goodput/sec", "p99 ns",
                     "p999 ns", "forwards", "moves", "hash"});
  for (const auto* r : {&fs, &fr}) {
    fault_table.add_row(
        {r == &fs ? "static" : "reactive", fmt_u64(r->report.completed),
         fmt_sci(r->goodput, 3), fmt_fixed(r->tail.p99_ns, 1),
         fmt_fixed(r->tail.p999_ns, 1), fmt_u64(r->cross.forwards),
         fmt_u64(r->plan.moves), fmt_u64(r->fingerprint)});
  }
  bench::print_table(
      fault_table,
      "whole-node outage at 300 us (repaired 150 us later) under open-loop\n"
      "load: static strands every request aimed at the dead node until\n"
      "repair; reactive drains its blocks ~15 us after the crash, and the\n"
      "stranded stragglers re-home through stale-owner forwards:");

  // --- mesh front ----------------------------------------------------------
  const MeshResult ms = run_mesh(false, sim_threads);
  const MeshResult mr = run_mesh(true, sim_threads);

  Table mesh_table({"placement", "updates", "steps", "remote %",
                    "updates/sec", "byte hops", "moves", "hash"});
  for (const auto* r : {&ms, &mr}) {
    mesh_table.add_row(
        {r == &ms ? "static" : "reactive", fmt_u64(r->report.updates),
         fmt_u64(r->report.steps),
         fmt_fixed(100.0 * r->report.remote_read_rate, 1),
         fmt_sci(r->report.updates_per_sec, 3),
         fmt_u64(r->report.halo_byte_hops + r->plan.move_byte_hops),
         fmt_u64(r->plan.moves), fmt_u64(r->report.fingerprint)});
  }
  bench::print_table(
      mesh_table,
      "unstructured-mesh front sweeping the ring (10% of 2048 cells active\n"
      "at a time): the static contiguous partition serializes the front on\n"
      "one or two nodes while everyone else spins; the reactive plan\n"
      "spreads the active cells and multiplies the update rate:");

  // --- determinism: --sim-threads 1 vs N for every reactive scenario -------
  KvScenario phase_seq = phase_reactive;
  phase_seq.sim_threads = 1;
  KvScenario fault_seq = fault_reactive;
  fault_seq.sim_threads = 1;
  const KvResult pr1 = run_kv(phase_seq);
  const KvResult fr1 = run_kv(fault_seq);
  const MeshResult mr1 = run_mesh(true, 1);

  Table det_table({"run", "moves", "hash"});
  det_table.add_row({"phase/1", fmt_u64(pr1.plan.moves),
                     fmt_u64(pr1.fingerprint)});
  det_table.add_row({"phase/" + std::to_string(sim_threads),
                     fmt_u64(pr.plan.moves), fmt_u64(pr.fingerprint)});
  det_table.add_row({"fault/1", fmt_u64(fr1.plan.moves),
                     fmt_u64(fr1.fingerprint)});
  det_table.add_row({"fault/" + std::to_string(sim_threads),
                     fmt_u64(fr.plan.moves), fmt_u64(fr.fingerprint)});
  det_table.add_row({"mesh/1", fmt_u64(mr1.plan.moves),
                     fmt_u64(mr1.report.fingerprint)});
  det_table.add_row({"mesh/" + std::to_string(sim_threads),
                     fmt_u64(mr.plan.moves), fmt_u64(mr.report.fingerprint)});
  bench::print_table(
      det_table,
      "every reactive scenario at 1 vs N simulation threads: plans are\n"
      "decided at engine pause epochs from folded windows, so the\n"
      "workload + plan fingerprints must be byte-identical:");

  // --- gates ---------------------------------------------------------------
  if (pr1.fingerprint != pr.fingerprint ||
      fr1.fingerprint != fr.fingerprint ||
      mr1.report.fingerprint != mr.report.fingerprint) {
    std::cerr << "FATAL: repartitioning fingerprint differs across sim "
                 "threads\n";
    return 1;
  }
  if (pr.plan.moves == 0) {
    std::cerr << "FATAL: reactive phase run executed no migrations\n";
    return 1;
  }
  if (pr.remote_rate > 0.7 * ps.remote_rate) {
    std::cerr << "FATAL: reactive remote-issue rate " << pr.remote_rate
              << " not under 0.7x static " << ps.remote_rate << "\n";
    return 1;
  }
  if (pr.total_byte_hops >= ps.total_byte_hops) {
    std::cerr << "FATAL: reactive byte-hops (incl. migration DMAs) "
              << pr.total_byte_hops << " not below static "
              << ps.total_byte_hops << "\n";
    return 1;
  }
  if (pr.goodput <= 1.02 * ps.goodput) {
    std::cerr << "FATAL: reactive goodput " << pr.goodput
              << " not above 1.02x static " << ps.goodput << "\n";
    return 1;
  }
  if (fr.plan.moves == 0 || fr.cross.forwards == 0) {
    std::cerr << "FATAL: outage run must migrate blocks off the dead node "
                 "and re-home stranded requests (moves "
              << fr.plan.moves << ", forwards " << fr.cross.forwards << ")\n";
    return 1;
  }
  if (fr.tail.p99_ns > 0.5 * fs.tail.p99_ns) {
    std::cerr << "FATAL: reactive p99 under outage " << fr.tail.p99_ns
              << " ns not under 0.5x static " << fs.tail.p99_ns << " ns\n";
    return 1;
  }
  if (mr.plan.moves == 0 ||
      mr.report.updates < (12 * ms.report.updates) / 10) {
    std::cerr << "FATAL: reactive mesh updates " << mr.report.updates
              << " not 1.2x static " << ms.report.updates << " (moves "
              << mr.plan.moves << ")\n";
    return 1;
  }

  std::cout << "REPART_JSON {"
            << "\"phase_static_remote_rate\": " << ps.remote_rate
            << ", \"phase_reactive_remote_rate\": " << pr.remote_rate
            << ", \"phase_static_byte_hops\": " << ps.total_byte_hops
            << ", \"phase_reactive_byte_hops\": " << pr.total_byte_hops
            << ", \"phase_static_goodput\": " << ps.goodput
            << ", \"phase_reactive_goodput\": " << pr.goodput
            << ", \"phase_moves\": " << pr.plan.moves
            << ", \"fault_static_p99_ns\": " << fs.tail.p99_ns
            << ", \"fault_reactive_p99_ns\": " << fr.tail.p99_ns
            << ", \"fault_forwards\": " << fr.cross.forwards
            << ", \"fault_moves\": " << fr.plan.moves
            << ", \"mesh_static_updates\": " << ms.report.updates
            << ", \"mesh_reactive_updates\": " << mr.report.updates
            << ", \"mesh_moves\": " << mr.plan.moves
            << ", \"det_match\": 1}\n";
  return 0;
}
