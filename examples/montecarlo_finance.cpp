// Monte-Carlo option pricing with accelerator chaining — the financial
// workload the paper cites (ref [18], Maxeler-class Monte-Carlo engines).
//
// Demonstrates three things:
//  1. functional correctness: the simulated-system price matches
//     Black–Scholes within the Monte-Carlo error bound;
//  2. the runtime's learned models moving the path kernel to the fabric;
//  3. §4.3 module chaining: RNG -> path-evolve -> payoff-reduce as one
//     on-fabric pipeline vs. staged execution with DRAM round trips.
#include <cstdio>
#include <vector>

#include "apps/montecarlo.h"
#include "runtime/api.h"
#include "runtime/chain.h"

using namespace ecoscale;

int main() {
  // --- functional pricing ---------------------------------------------------
  apps::OptionParams option;
  option.spot = 105.0;
  option.strike = 100.0;
  option.volatility = 0.25;
  const double exact = apps::black_scholes_call(option);
  const auto mc = apps::price_european_call(option, 400000, 2016);
  std::printf("European call: Black-Scholes %.4f, Monte-Carlo %.4f "
              "(+/- %.4f, %zu paths)\n",
              exact, mc.price, 2 * mc.std_error, mc.paths);
  const bool price_ok = std::abs(mc.price - exact) < 4 * mc.std_error + 0.01;

  // --- runtime offload --------------------------------------------------------
  MachineConfig machine;
  machine.nodes = 1;
  machine.workers_per_node = 4;
  RuntimeConfig runtime;
  runtime.placement = PlacementPolicy::kModelBased;
  EcoRuntime rt(machine, runtime);
  EcoKernel kernel = rt.create_kernel(make_montecarlo_kernel());
  EcoBuffer paths = rt.create_buffer(mebibytes(8), Distribution::kBlock);
  // Price 16 instruments of growing path counts.
  for (int i = 0; i < 16; ++i) {
    (void)rt.enqueue(kernel, paths, 50000 + 25000ull * i,
                     milliseconds(i));
  }
  rt.finish();
  const auto stats = rt.stats();
  std::printf("runtime: %llu pricing tasks, %.1f%% on fabric, "
              "makespan %.2f ms, energy %.2f mJ\n",
              static_cast<unsigned long long>(stats.sw_tasks +
                                              stats.hw_tasks),
              100.0 * static_cast<double>(stats.hw_tasks) /
                  static_cast<double>(stats.hw_tasks + stats.sw_tasks),
              to_milliseconds(stats.makespan),
              to_millijoules(stats.energy));

  // --- accelerator chaining ----------------------------------------------------
  // RNG -> path evolution -> payoff reduce as three chained modules.
  std::vector<KernelIR> chain_kernels = {
      make_sha_like_kernel(),     // counter-based RNG rounds
      make_montecarlo_kernel(),   // GBM path step
      make_spmv_kernel(),         // payoff gather/reduce
  };
  for (std::size_t i = 0; i < chain_kernels.size(); ++i) {
    chain_kernels[i].id = static_cast<KernelId>(2000 + i);
  }
  std::vector<AcceleratorModule> stages;
  for (const auto& k : chain_kernels) {
    auto m = emit_variants(k, 1).front();
    m.kernel = k.id;
    stages.push_back(m);
  }
  WorkerConfig wc;
  wc.fabric.fabric_width = 16;
  Worker chained_worker({0, 0}, wc);
  Worker staged_worker({0, 1}, wc);
  const auto chained =
      run_chained(chained_worker, stages, chain_kernels, 200000, 0);
  const auto staged =
      run_staged(staged_worker, stages, chain_kernels, 200000, 0);
  std::printf("chained pipeline: %.2f ms, %.1f KiB DRAM, %.1f uJ\n",
              to_milliseconds(chained.finish - chained.start),
              static_cast<double>(chained.dram_bytes) / 1024.0,
              to_microjoules(chained.energy));
  std::printf("staged baseline:  %.2f ms, %.1f KiB DRAM, %.1f uJ "
              "(%.2fx more energy)\n",
              to_milliseconds(staged.finish - staged.start),
              static_cast<double>(staged.dram_bytes) / 1024.0,
              to_microjoules(staged.energy), staged.energy / chained.energy);
  return price_ok && chained.fits && staged.fits ? 0 : 1;
}
