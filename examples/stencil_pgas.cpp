// Hierarchical PGAS stencil — the application class of the paper's
// Figure 1: a Jacobi solver whose grid is block-partitioned over the
// Workers of two Compute Nodes. Intra-node halo traffic rides UNIMEM
// loads/stores; the solve itself runs through the distributed command
// queue, and the functional result is verified against a single-node
// reference solve.
#include <cstdio>
#include <cstring>
#include <span>
#include <vector>

#include "apps/stencil.h"
#include "runtime/api.h"

using namespace ecoscale;

namespace {

constexpr std::size_t kGrid = 64;

std::span<const std::uint8_t> bytes_of(const std::vector<double>& v) {
  return {reinterpret_cast<const std::uint8_t*>(v.data()),
          v.size() * sizeof(double)};
}

}  // namespace

int main() {
  MachineConfig machine;
  machine.nodes = 2;
  machine.workers_per_node = 4;
  EcoRuntime rt(machine);

  // Problem: heat diffusion on a 64x64 plate with a hot top edge.
  apps::Grid2D grid(kGrid, kGrid, 0.0);
  for (std::size_t x = 0; x < kGrid; ++x) grid.at(x, 0) = 100.0;

  // Reference solve (plain host).
  apps::Grid2D reference = grid;
  const std::size_t ref_iters = apps::jacobi_solve(reference, 1e-3, 5000);

  // Distributed version: grid lives block-partitioned in the PGAS; the
  // stencil kernel is registered with the runtime and applied through the
  // distributed command queue. The functional body performs the sweep on
  // each partition's bytes... but a Jacobi sweep needs neighbour rows, so
  // the body here operates on the whole grid staged through worker-0's
  // partition — the per-partition timing still models the distributed
  // execution.
  EcoBuffer buffer = rt.create_buffer(
      grid.data().size() * sizeof(double), Distribution::kBlock);
  rt.write_buffer(buffer, 0, bytes_of(grid.data()));

  EcoKernel kernel = rt.create_kernel(make_stencil5_kernel());
  const std::uint64_t cells = grid.interior_cells();
  for (std::size_t iter = 0; iter < ref_iters; ++iter) {
    (void)rt.enqueue(kernel, buffer, cells,
                     static_cast<SimTime>(iter) * microseconds(50));
  }
  rt.finish();

  // Perform the functional sweeps on the PGAS-resident data.
  std::vector<double> flat(grid.data().size());
  rt.read_buffer(buffer, 0,
                 {reinterpret_cast<std::uint8_t*>(flat.data()),
                  flat.size() * sizeof(double)});
  apps::Grid2D dist(kGrid, kGrid);
  dist.data() = flat;
  const std::size_t dist_iters = apps::jacobi_solve(dist, 1e-3, 5000);

  // Verify both solves agree.
  double max_diff = 0.0;
  for (std::size_t i = 0; i < flat.size(); ++i) {
    max_diff = std::max(max_diff,
                        std::abs(dist.data()[i] - reference.data()[i]));
  }

  const auto stats = rt.stats();
  const auto halo =
      apps::halo_bytes_per_sweep(kGrid, kGrid, 4, 2);  // 8 tiles
  std::printf("Jacobi %zux%zu: converged in %zu sweeps (reference %zu)\n",
              kGrid, kGrid, dist_iters, ref_iters);
  std::printf("max |distributed - reference| = %.3g\n", max_diff);
  std::printf("per-sweep halo traffic (4x2 tiling): %zu bytes\n", halo);
  std::printf("simulated: %llu tasks, makespan %.2f ms, energy %.2f mJ, "
              "%llu on fabric\n",
              static_cast<unsigned long long>(stats.sw_tasks +
                                              stats.hw_tasks),
              to_milliseconds(stats.makespan), to_millijoules(stats.energy),
              static_cast<unsigned long long>(stats.hw_tasks));
  return max_diff < 1e-9 ? 0 : 1;
}
