// CART decision-tree classification — the HC-CART data-mining workload the
// paper cites (ref [17]: Convey HC-1 accelerating CART for big-data
// classification). The gini split-search is the hardware kernel; tree
// induction stays on the CPU, and every split search of the recursion is
// offloaded through the runtime with UNILOGIC sharing across the node.
#include <cstdio>

#include "apps/cart.h"
#include "apps/kmeans.h"
#include "runtime/api.h"

using namespace ecoscale;

int main() {
  // --- functional model quality ------------------------------------------------
  const auto train = apps::make_blobs(2000, 8, 3, 7);
  const auto test = apps::make_blobs(500, 8, 3, 8);
  const auto tree = apps::build_tree(train);
  const double train_acc = apps::accuracy(*tree, train);
  const double test_acc = apps::accuracy(*tree, test);
  std::printf("CART on synthetic blobs: train accuracy %.1f%%, "
              "test accuracy %.1f%%\n",
              100 * train_acc, 100 * test_acc);

  // --- simulated offload of the split-search kernel ------------------------------
  MachineConfig machine;
  machine.nodes = 1;
  machine.workers_per_node = 4;
  RuntimeConfig runtime;
  runtime.placement = PlacementPolicy::kModelBased;
  runtime.share_fabric = true;  // UNILOGIC: any worker may use any fabric
  EcoRuntime rt(machine, runtime);
  EcoKernel split = rt.create_kernel(make_cart_split_kernel());
  EcoBuffer dataset = rt.create_buffer(
      train.size() * train.features * sizeof(double), Distribution::kBlock);

  // Tree induction visits ~2^depth nodes; each evaluates rows × features
  // candidate splits. Model the recursion level by level: the row count
  // halves per level while the node count doubles — constant total work
  // per level, issued as increasingly many smaller tasks.
  SimTime when = 0;
  std::uint64_t rows = train.size();
  int nodes = 1;
  for (int depth = 0; depth < 6 && rows >= 8; ++depth) {
    for (int n = 0; n < nodes; ++n) {
      (void)rt.enqueue(split, dataset, rows * train.features, when);
    }
    when += milliseconds(2);
    rows /= 2;
    nodes *= 2;
  }
  rt.finish();
  const auto stats = rt.stats();
  std::printf("split-search offload: %llu tasks (%llu HW / %llu SW, "
              "%llu on remote fabrics)\n",
              static_cast<unsigned long long>(stats.hw_tasks +
                                              stats.sw_tasks),
              static_cast<unsigned long long>(stats.hw_tasks),
              static_cast<unsigned long long>(stats.sw_tasks),
              static_cast<unsigned long long>(stats.remote_hw_tasks));
  std::printf("makespan %.2f ms, energy %.2f mJ, mean queue wait %.0f us\n",
              to_milliseconds(stats.makespan), to_millijoules(stats.energy),
              stats.queue_wait_ns.count()
                  ? stats.queue_wait_ns.mean() / 1000.0
                  : 0.0);

  // --- second data-mining workload: k-means clustering -------------------------
  const auto points = apps::make_clustered_points(3000, 4, 8, 21);
  const auto clusters = apps::kmeans(points, 8, 100, 21);
  std::printf("\nk-means: %zu points -> 8 clusters in %zu iterations, "
              "inertia/point %.2f\n",
              points.size(), clusters.iterations,
              clusters.inertia / static_cast<double>(points.size()));
  // Offload the assignment scans (one task per Lloyd iteration).
  EcoRuntime rt2(machine, runtime);
  EcoKernel assign = rt2.create_kernel(make_kmeans_kernel());
  EcoBuffer pts = rt2.create_buffer(
      points.size() * 4 * sizeof(double), Distribution::kBlock);
  for (std::size_t iter = 0; iter < clusters.iterations; ++iter) {
    (void)rt2.enqueue(assign, pts, points.size(),
                      static_cast<SimTime>(iter) * milliseconds(1));
  }
  rt2.finish();
  const auto s2 = rt2.stats();
  std::printf("assignment scans: %llu tasks, %llu on fabric, %.2f ms, "
              "%.2f mJ\n",
              static_cast<unsigned long long>(s2.sw_tasks + s2.hw_tasks),
              static_cast<unsigned long long>(s2.hw_tasks),
              to_milliseconds(s2.makespan), to_millijoules(s2.energy));

  // The deep levels produce many small tasks: the learned models should
  // keep at least some of those on the CPUs.
  return (train_acc > 0.85 && test_acc > 0.7) ? 0 : 1;
}
