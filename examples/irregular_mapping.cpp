// Irregular-application mapping — the PGAS-motivated case of §2 ("the
// PGAS programming model is an attractive alternative for designing
// applications with irregular communication patterns") plus §4.4's MPI-3
// topology abstractions.
//
// An irregular communication graph (a sparse-matrix-style neighbourhood)
// is mapped onto a machine of 8-worker Compute Nodes three ways; the
// greedy hierarchical reorder pulls heavy edges inside nodes, where they
// become UNIMEM stores instead of MPI messages.
#include <cstdio>
#include <numeric>

#include "common/rng.h"
#include "mpi/graph_topology.h"

using namespace ecoscale;

int main() {
  constexpr std::size_t kRanks = 64;
  constexpr std::size_t kRanksPerNode = 8;
  const auto graph = make_irregular_graph(kRanks, 4, 0xFEED);
  std::printf("irregular graph: %zu ranks, %zu directed edges\n",
              graph.size(), graph.edge_count());

  std::vector<std::size_t> identity(kRanks);
  std::iota(identity.begin(), identity.end(), 0);
  std::vector<std::size_t> scrambled = identity;
  Rng rng(1);
  rng.shuffle(scrambled);
  const auto reordered = graph.reorder(kRanksPerNode);

  struct Row {
    const char* name;
    const std::vector<std::size_t>* perm;
  };
  std::printf("%-16s %14s %16s %14s\n", "placement", "mapping cost",
              "inter-node msgs", "exchange");
  for (const Row row : {Row{"scrambled", &scrambled},
                        Row{"natural", &identity},
                        Row{"hier. reorder", &reordered}}) {
    MpiWorld world(kRanks);
    std::vector<SimTime> arrivals(kRanks, 0);
    const auto coll = neighbor_alltoall(world, graph, kibibytes(8),
                                        arrivals, *row.perm, kRanksPerNode);
    std::printf("%-16s %14.0f %16llu %11.1f us\n", row.name,
                graph.mapping_cost(*row.perm, kRanksPerNode),
                static_cast<unsigned long long>(coll.messages),
                to_microseconds(coll.finish));
  }
  std::printf(
      "\nThe reorder is the programming-model contract of Figure 1: the\n"
      "application expresses its topology (MPI-3 graph comm); the runtime\n"
      "maps heavy edges into PGAS partitions.\n");
  return 0;
}
