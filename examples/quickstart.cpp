// Quickstart: offload one OpenCL-style kernel through the full ECOSCALE
// stack — machine bring-up, PGAS buffer, HLS-generated accelerator
// variants, and the runtime's dynamic HW/SW placement.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "runtime/api.h"

using namespace ecoscale;

int main() {
  // 1. Bring up a small ECOSCALE machine: 2 Compute Nodes × 4 Workers,
  //    each Worker = 4 ARM-class cores + an 8×8-slot reconfigurable block.
  MachineConfig machine;
  machine.nodes = 2;
  machine.workers_per_node = 4;
  RuntimeConfig runtime;
  runtime.placement = PlacementPolicy::kModelBased;  // learn HW vs SW
  EcoRuntime rt(machine, runtime);
  std::printf("machine: %zu workers across %zu compute nodes\n",
              rt.device_count(), rt.machine().node_count());

  // 2. Create a kernel from its IR. This runs the HLS design-space
  //    exploration and registers up to 3 Pareto-optimal module variants.
  EcoKernel kernel = rt.create_kernel(make_montecarlo_kernel());
  std::printf("kernel '%s': %zu HLS variants, smallest %zu slots\n",
              kernel.ir().name.c_str(), kernel.variants().size(),
              kernel.variants().front().shape.slots());

  // 3. Allocate a PGAS buffer block-distributed across all workers
  //    (the ECOSCALE data-scoping extension to OpenCL).
  EcoBuffer buffer = rt.create_buffer(mebibytes(4), Distribution::kBlock);
  std::printf("buffer: %zu partitions over the global address space\n",
              buffer.layout().partitions().size());

  // 4. Enqueue a stream of invocations. Each enqueue fans out one task per
  //    buffer partition, homed where that partition lives (distributed
  //    command queues). Early small calls train the cost models; later
  //    large calls get offloaded to the fabric.
  for (int round = 0; round < 20; ++round) {
    const std::uint64_t items = 1000ull << (round % 8);
    (void)rt.enqueue(kernel, buffer, items, milliseconds(round));
  }
  rt.finish();

  // 5. Inspect what the runtime did.
  const auto stats = rt.stats();
  std::printf("\ncompleted %llu tasks: %llu on CPUs, %llu on fabric "
              "(%llu via remote UNILOGIC blocks)\n",
              static_cast<unsigned long long>(stats.sw_tasks +
                                              stats.hw_tasks),
              static_cast<unsigned long long>(stats.sw_tasks),
              static_cast<unsigned long long>(stats.hw_tasks),
              static_cast<unsigned long long>(stats.remote_hw_tasks));
  std::printf("makespan %.2f ms, energy %.2f mJ\n",
              to_milliseconds(stats.makespan),
              to_millijoules(stats.energy));
  return 0;
}
