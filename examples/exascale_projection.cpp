// Exascale projection — the paper's motivating arithmetic (§1): "we
// estimate that sustaining exaflop performance requires an enormous 1 GW
// power" for a Tianhe-2-style scale-up, and ECOSCALE's counter-proposal:
// hierarchical UNIMEM machines of FPGA-accelerated Workers.
//
// This example sweeps machine sizes through the simulator's energy models
// and prints the projected power for (a) CPU-only workers and (b) workers
// that offload the hot kernel to their reconfigurable blocks, showing the
// gap that motivates the whole project.
#include <cstdio>

#include "hls/dse.h"
#include "worker/worker.h"

using namespace ecoscale;

int main() {
  // The sustained-workload proxy: one compute-heavy kernel (Monte-Carlo
  // class, ~90 CPU cycles/item) at full machine utilisation.
  const auto kernel = make_montecarlo_kernel();
  const auto module = emit_variants(kernel, 1).front();
  constexpr std::uint64_t kItems = 1u << 20;

  // Per-worker figures from the simulated execution paths.
  Worker cpu_worker({0, 0}, WorkerConfig{});
  const auto sw = cpu_worker.run_software(kernel, kItems, 0, 1);
  Worker hw_worker({0, 1}, WorkerConfig{});
  const auto warm = hw_worker.run_hardware(module, kItems, 0);
  const auto hw = hw_worker.run_hardware(module, kItems, warm->finish);

  const double sw_time_s = to_seconds(sw.finish - sw.start);
  const double hw_time_s = to_seconds(hw->finish - hw->start);
  const double sw_watts = (sw.energy * 1e-12) / sw_time_s;
  const double hw_watts = (hw->energy * 1e-12) / hw_time_s;
  const double sw_flops =
      static_cast<double>(kItems) * kernel.ops.total() / sw_time_s;
  const double hw_flops =
      static_cast<double>(kItems) * kernel.ops.total() / hw_time_s;

  std::printf("per-worker sustained op rate and power on '%s':\n",
              kernel.name.c_str());
  std::printf("  CPU-only : %8.2f Gops/s at %6.2f W  (%.1f pJ/op)\n",
              sw_flops / 1e9, sw_watts, sw.energy / (kItems * 12.0));
  std::printf("  w/ fabric: %8.2f Gops/s at %6.2f W  (%.1f pJ/op)\n\n",
              hw_flops / 1e9, hw_watts, hw->energy / (kItems * 12.0));

  std::printf("projected machine power to sustain a target op rate\n");
  std::printf("%-14s %-18s %-18s\n", "target ops/s", "CPU-only workers",
              "ECOSCALE workers");
  for (const double target : {1e15, 1e16, 1e17, 1e18}) {
    const double cpu_workers = target / sw_flops;
    const double eco_workers = target / hw_flops;
    std::printf("%-14.0e %10.0f kW (%.1e workers) %10.0f kW (%.1e workers)\n",
                target, cpu_workers * sw_watts / 1e3, cpu_workers,
                eco_workers * hw_watts / 1e3, eco_workers);
  }
  std::printf(
      "\nThe ~%0.0fx energy-per-op gap is what the paper's abstract calls\n"
      "'substantially reduce energy consumption'; absolute numbers are\n"
      "indicative (simulated technology parameters, compute-bound proxy).\n",
      (sw.energy / static_cast<double>(kItems)) /
          (hw->energy / static_cast<double>(kItems)));
  return 0;
}
