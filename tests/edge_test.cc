// Cross-module edge cases: boundary sizes, degenerate configurations and
// misuse handling that the per-module suites do not cover.
#include <gtest/gtest.h>

#include "apps/sort.h"
#include "apps/stencil.h"
#include "common/check.h"
#include "common/table.h"
#include "hls/dse.h"
#include "mpi/mpi.h"
#include "runtime/api.h"
#include "runtime/chain.h"
#include "unimem/pgas.h"

namespace ecoscale {
namespace {

// --- degenerate machine shapes ------------------------------------------------

TEST(Edge, SingleWorkerMachine) {
  MachineConfig mc;
  mc.nodes = 1;
  mc.workers_per_node = 1;
  EcoRuntime rt(mc);
  auto kernel = rt.create_kernel(make_stencil5_kernel());
  auto buf = rt.create_buffer(kPageSize, Distribution::kBlock);
  (void)rt.enqueue(kernel, buf, 100);
  rt.finish();
  EXPECT_EQ(rt.stats().sw_tasks + rt.stats().hw_tasks, 1u);
}

TEST(Edge, SingleWorkerLazyNeverSpills) {
  MachineConfig mc;
  mc.nodes = 1;
  mc.workers_per_node = 1;
  Machine machine(mc);
  Simulator sim;
  RuntimeConfig rc;
  rc.distribution = DistributionPolicy::kLazyLocal;
  rc.spill_depth = 1;
  RuntimeSystem runtime(machine, sim, rc);
  const auto kernel = make_spmv_kernel();
  runtime.register_kernel(kernel, emit_variants(kernel, 1));
  for (TaskId i = 0; i < 10; ++i) {
    Task t;
    t.id = i;
    t.kernel = kernel.id;
    t.items = 10000;
    t.features.items = 10000;
    t.home = {0, 0};
    runtime.submit(t);
  }
  runtime.run();
  EXPECT_EQ(runtime.stats().forwarded_tasks, 0u);
}

TEST(Edge, OneRankMpiWorldCollectives) {
  MpiWorld world(1);
  const std::vector<SimTime> arrivals{microseconds(3)};
  EXPECT_GE(world.barrier(arrivals).finish, microseconds(3));
  EXPECT_GE(world.allreduce(64, arrivals).finish, microseconds(3));
  EXPECT_EQ(world.broadcast(0, 64, arrivals).messages, 0u);
}

// --- buffer and allocation boundaries -----------------------------------------

TEST(Edge, SubPageBuffer) {
  EcoRuntime rt(MachineConfig{});
  auto buf = rt.create_buffer(100, Distribution::kLocal, WorkerCoord{0, 0});
  std::vector<std::uint8_t> data(100, 7);
  rt.write_buffer(buf, 0, data);
  std::vector<std::uint8_t> out(100);
  rt.read_buffer(buf, 0, out);
  EXPECT_EQ(out, data);
  EXPECT_THROW(rt.read_buffer(buf, 1, out), CheckError);  // past end
}

TEST(Edge, ZeroSizeAllocRejected) {
  PgasSystem pgas(PgasConfig{});
  EXPECT_THROW(pgas.alloc(0, 0, 0), CheckError);
}

TEST(Edge, BufferExactlyOnePage) {
  EcoRuntime rt(MachineConfig{});
  auto buf = rt.create_buffer(kPageSize, Distribution::kCyclic);
  EXPECT_EQ(buf.layout().partitions().size(), 1u);
}

// --- chain edge cases ------------------------------------------------------------

TEST(Edge, ChainWithZeroItems) {
  Worker w({0, 0}, WorkerConfig{});
  const KernelIR kernels[] = {make_stencil5_kernel()};
  const std::vector<AcceleratorModule> stages{
      emit_variants(kernels[0], 1).front()};
  const auto r = run_chained(w, stages, kernels, 0, 0);
  EXPECT_TRUE(r.fits);
  EXPECT_EQ(r.dram_bytes, 0u);
}

TEST(Edge, EmptyChainRejected) {
  Worker w({0, 0}, WorkerConfig{});
  EXPECT_THROW(run_chained(w, {}, {}, 10, 0), CheckError);
}

// --- HLS boundaries ------------------------------------------------------------

TEST(Edge, DseLimitsOfOnePoint) {
  DseLimits limits;
  limits.max_unroll = 1;
  limits.max_partition = 1;
  limits.max_dram_ports = 1;
  limits.explore_no_pipeline = false;
  const auto points = enumerate_designs(make_spmv_kernel(), limits);
  EXPECT_EQ(points.size(), 1u);
  const auto front = pareto_front(points);
  EXPECT_EQ(front.size(), 1u);
}

TEST(Edge, EmitSingleVariantAlwaysFitsDefaultFabric) {
  for (const auto& k :
       {make_stencil5_kernel(), make_matmul_tile_kernel(),
        make_montecarlo_kernel(), make_cart_split_kernel(),
        make_sha_like_kernel(), make_spmv_kernel(), make_fft_kernel()}) {
    const auto variants = emit_variants(k, 1, DseLimits{}, HlsTechnology{}, 8);
    ASSERT_EQ(variants.size(), 1u);
    EXPECT_LE(variants[0].shape.slots(), 64u) << k.name;
  }
}

// --- stencil boundaries ---------------------------------------------------------

TEST(Edge, MinimumGridSolves) {
  apps::Grid2D g(3, 3, 0.0);
  g.at(1, 0) = 1.0;
  EXPECT_LT(apps::jacobi_solve(g, 1e-9, 1000), 1000u);
  EXPECT_NEAR(g.at(1, 1), 0.25, 1e-6);
}

TEST(Edge, HaloSingleTileIsZero) {
  EXPECT_EQ(apps::halo_bytes_per_sweep(128, 128, 1, 1), 0u);
}

// --- sort boundaries -------------------------------------------------------------

TEST(Edge, SortEmptyInput) {
  const std::vector<std::uint64_t> empty;
  const auto trace = apps::sample_sort(empty, 4);
  EXPECT_TRUE(trace.sorted.empty());
}

TEST(Edge, SortMoreRanksThanKeys) {
  const auto keys = apps::make_keys(3, 1);
  const auto trace = apps::sample_sort(keys, 8);
  EXPECT_EQ(trace.sorted.size(), 3u);
  EXPECT_TRUE(std::is_sorted(trace.sorted.begin(), trace.sorted.end()));
}

TEST(Edge, SortAllEqualKeys) {
  std::vector<std::uint64_t> keys(1000, 42);
  const auto trace = apps::sample_sort(keys, 4);
  EXPECT_EQ(trace.sorted, keys);
}

// --- reconfiguration boundaries ----------------------------------------------------

TEST(Edge, ModuleExactlyFabricSized) {
  ReconfigConfig cfg;
  cfg.fabric_width = 4;
  cfg.fabric_height = 4;
  ReconfigManager mgr("f", cfg);
  AcceleratorModule m;
  m.kernel = 1;
  m.shape = ModuleShape{4, 4};
  const auto r = mgr.ensure_loaded(m, 0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(mgr.floorplan().free_slots(), 0u);
}

TEST(Edge, WidthOneFabric) {
  ReconfigConfig cfg;
  cfg.fabric_width = 1;
  cfg.fabric_height = 8;
  ReconfigManager mgr("f", cfg);
  AcceleratorModule m;
  m.kernel = 1;
  m.shape = ModuleShape{1, 8};
  EXPECT_TRUE(mgr.ensure_loaded(m, 0).has_value());
}

// --- atomics as a lock (integration) ----------------------------------------------

TEST(Edge, SpinlockHandoffAcrossNodes) {
  PgasSystem pgas(PgasConfig{});
  const auto lock = pgas.alloc(0, 0, 64);
  // Worker (1,0) acquires, (0,1) spins, (1,0) releases, (0,1) acquires.
  const auto a = pgas.atomic_rmw({1, 0}, lock, AtomicOp::kCompareSwap, 1, 0,
                                 /*compare=*/0);
  ASSERT_TRUE(a.swapped);
  const auto spin = pgas.atomic_rmw({0, 1}, lock, AtomicOp::kCompareSwap, 1,
                                    a.finish, 0);
  EXPECT_FALSE(spin.swapped);
  const auto rel =
      pgas.atomic_rmw({1, 0}, lock, AtomicOp::kSwap, 0, spin.finish);
  EXPECT_EQ(rel.old_value, 1u);
  const auto b = pgas.atomic_rmw({0, 1}, lock, AtomicOp::kCompareSwap, 1,
                                 rel.finish, 0);
  EXPECT_TRUE(b.swapped);
}

// --- table formatting boundaries -----------------------------------------------------

TEST(Edge, FormatExtremes) {
  EXPECT_EQ(fmt_bytes(0), "0.00 B");
  EXPECT_EQ(fmt_time_ps(0), "0.00 ps");
  EXPECT_EQ(fmt_bytes(1024.0 * 1024 * 1024 * 1024 * 8), "8.00 TiB");
  EXPECT_EQ(fmt_time_ps(3.6e15), "3600.0 s");
}

}  // namespace
}  // namespace ecoscale
