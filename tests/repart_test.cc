// Tests for the online repartitioner (src/repart/, DESIGN.md §7.11):
// the tree-level extraction, hierarchical diffusion invariants, the
// planner's hysteresis/cooldown/rate-limit damping, and — the
// load-bearing property — migration under live KV traffic with a
// scripted whole-node outage staying byte-identical across
// --sim-threads 1/2/8 while every key's apply history remains serial
// across the migration edges (the partition-consistency oracle of
// DESIGN.md §7.10, applied to a *moving* partition).
#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/units.h"
#include "repart/diffusion.h"
#include "repart/mesh.h"
#include "repart/repart.h"
#include "runtime/sharded.h"
#include "serve/kvstore.h"
#include "serve/loadgen.h"

namespace ecoscale {
namespace {

using repart::LoadTracker;
using repart::RepartConfig;
using repart::Repartitioner;
using repart::TreeLevels;

ShardedRuntime make_rt(std::size_t nodes, std::vector<std::size_t> radices,
                       std::size_t threads = 1) {
  ShardedRuntimeConfig cfg;
  cfg.nodes = nodes;
  cfg.workers_per_node = 1;
  cfg.threads = threads;
  cfg.internode_radices = std::move(radices);
  return ShardedRuntime(cfg);
}

// --- tree levels ----------------------------------------------------------

TEST(TreeLevels, TreeTopologyRefinesRootDownToSingletons) {
  ShardedRuntime rt = make_rt(8, {4, 2});
  const TreeLevels levels = TreeLevels::from_network(rt.internode(), 8);
  // The chain walks the interconnect's *implicit* tree (the per-vertex
  // parent arrays LCA routing uses), which is rooted at a vertex, not at
  // a symmetric chassis partition — so the tier shapes depend on the
  // encoding. The properties diffusion relies on are structural: one
  // root group, a partition at every tier that only ever refines on the
  // way down, at least one nontrivial intermediate tier (the sibling
  // groups net flow crosses), and the singleton partition at the bottom.
  ASSERT_GE(levels.tier_count(), 3u);
  EXPECT_EQ(levels.group_count.front(), 1u);
  for (std::size_t n = 0; n < 8; ++n) EXPECT_EQ(levels.group_of[0][n], 0u);
  bool intermediate = false;
  for (std::size_t t = 1; t < levels.tier_count(); ++t) {
    EXPECT_GE(levels.group_count[t], levels.group_count[t - 1]);
    intermediate =
        intermediate || (levels.group_count[t] > 1 && levels.group_count[t] < 8);
    // Refinement: two nodes in one tier-t group share their tier-(t-1)
    // group (a child group never straddles parents).
    for (std::size_t a = 0; a < 8; ++a) {
      for (std::size_t b = a + 1; b < 8; ++b) {
        if (levels.group_of[t][a] == levels.group_of[t][b]) {
          EXPECT_EQ(levels.group_of[t - 1][a], levels.group_of[t - 1][b]);
        }
      }
    }
  }
  EXPECT_TRUE(intermediate);
  // Last tier: singletons, ids dense in node order.
  EXPECT_EQ(levels.group_count.back(), 8u);
  for (std::size_t n = 0; n < 8; ++n) {
    EXPECT_EQ(levels.group_of.back()[n], static_cast<std::uint32_t>(n));
  }
}

TEST(TreeLevels, CrossbarCollapsesToRootPlusLeaves) {
  ShardedRuntime rt = make_rt(4, {});
  const TreeLevels levels = TreeLevels::from_network(rt.internode(), 4);
  ASSERT_GE(levels.tier_count(), 2u);
  EXPECT_EQ(levels.group_count.front(), 1u);
  EXPECT_EQ(levels.group_count.back(), 4u);
}

// --- diffusion ------------------------------------------------------------

TEST(Diffusion, ConservesLoadAndReachesProportionalAtAlphaOne) {
  ShardedRuntime rt = make_rt(8, {4, 2});
  const TreeLevels levels = TreeLevels::from_network(rt.internode(), 8);
  const std::vector<double> load = {80, 0, 0, 0, 0, 0, 0, 0};
  const std::vector<double> cap(8, 1.0);
  const std::vector<double> t1 =
      repart::diffusion_targets(levels, load, cap, 1.0);
  double sum = std::accumulate(t1.begin(), t1.end(), 0.0);
  EXPECT_NEAR(sum, 80.0, 1e-9);
  // Uniform capacity, alpha 1: straight to the proportional share.
  for (const double t : t1) EXPECT_NEAR(t, 10.0, 1e-9);
}

TEST(Diffusion, AlphaDampsTheFlow) {
  ShardedRuntime rt = make_rt(8, {4, 2});
  const TreeLevels levels = TreeLevels::from_network(rt.internode(), 8);
  const std::vector<double> load = {80, 0, 0, 0, 0, 0, 0, 0};
  const std::vector<double> cap(8, 1.0);
  const std::vector<double> t =
      repart::diffusion_targets(levels, load, cap, 0.5);
  EXPECT_NEAR(std::accumulate(t.begin(), t.end(), 0.0), 80.0, 1e-9);
  // The loaded node keeps more than its proportional share (damping), but
  // sheds something; everyone else gains monotonically toward theirs.
  EXPECT_GT(t[0], 10.0);
  EXPECT_LT(t[0], 80.0);
  for (std::size_t n = 1; n < 8; ++n) {
    EXPECT_GT(t[n], 0.0);
    EXPECT_LT(t[n], 10.0 + 1e-9);
  }
  // Hierarchical: the damped cross-chassis flow means the hot chassis
  // (nodes 0..3) retains more aggregate than the cold one.
  const double hot = t[0] + t[1] + t[2] + t[3];
  EXPECT_GT(hot, 40.0);
}

TEST(Diffusion, ZeroCapacityNodeTargetsZeroAtAlphaOne) {
  ShardedRuntime rt = make_rt(4, {});
  const TreeLevels levels = TreeLevels::from_network(rt.internode(), 4);
  const std::vector<double> load = {10, 10, 10, 10};
  const std::vector<double> cap = {1, 1, 0, 1};
  const std::vector<double> t =
      repart::diffusion_targets(levels, load, cap, 1.0);
  EXPECT_NEAR(std::accumulate(t.begin(), t.end(), 0.0), 40.0, 1e-9);
  EXPECT_NEAR(t[2], 0.0, 1e-9);
}

// --- planner damping ------------------------------------------------------

/// Client that only records calls: planner tests care about decisions.
struct RecordingClient : repart::RepartClient {
  struct Call {
    std::uint32_t item, from, to;
    SimTime at;
  };
  std::vector<Call> calls;
  std::uint64_t item_bytes(std::uint32_t) const override { return 64; }
  void migrate_item(std::uint32_t item, std::uint32_t from, std::uint32_t to,
                    SimTime at) override {
    calls.push_back(Call{item, from, to, at});
  }
};

/// Schedules one recording event per epoch window on `shard`, so the
/// engine stays alive for `epochs` epochs of `period` and every window
/// sees the same affinity signal.
template <typename F>
void every_epoch(ShardedRuntime& rt, std::size_t shard, SimDuration period,
                 std::size_t epochs, F record) {
  for (std::size_t e = 0; e < epochs; ++e) {
    const SimTime at = static_cast<SimTime>(e) * period + period / 2;
    rt.shard(shard).schedule_at(at, [record] { record(); });
  }
}

TEST(Repartitioner, LocalityNeedsTwoEpochConfirmationAndMinGain) {
  ShardedRuntime rt = make_rt(2, {});
  RepartConfig cfg;
  cfg.epoch = microseconds(10);
  cfg.max_moves = 8;
  cfg.imbalance = 1e9;  // locality only
  cfg.min_gain = 50;
  cfg.cooldown = 1;
  Repartitioner rp(rt, cfg, /*items=*/2, {0, 0});
  RecordingClient client;
  rp.set_client(&client);
  rp.install();
  // Item 0: strong node-1 affinity every epoch. Item 1: affinity below
  // min_gain — never moves.
  every_epoch(rt, 1, cfg.epoch, 6, [&rp] {
    rp.tracker().record_access(1, 0, 1, 100);
    rp.tracker().record_access(1, 1, 1, 40);
  });
  rt.run();
  ASSERT_EQ(rp.moves().size(), 1u);
  const Repartitioner::Move& m = rp.moves()[0];
  EXPECT_EQ(m.item, 0u);
  EXPECT_EQ(m.from, 0u);
  EXPECT_EQ(m.to, 1u);
  EXPECT_EQ(m.kind, Repartitioner::MoveKind::kLocality);
  // Epoch 1 only establishes the preference; the move lands at epoch 2.
  EXPECT_EQ(m.epoch, 2u);
  EXPECT_EQ(rp.owner(0), 1u);
  EXPECT_EQ(rp.owner(1), 0u);
  ASSERT_EQ(client.calls.size(), 1u);
  EXPECT_EQ(client.calls[0].item, 0u);
  EXPECT_EQ(rp.stats().locality_moves, 1u);
  EXPECT_EQ(rp.stats().moved_bytes, 64u);
}

TEST(Repartitioner, CooldownFreezesAMovedItem) {
  ShardedRuntime rt = make_rt(2, {});
  RepartConfig cfg;
  cfg.epoch = microseconds(10);
  cfg.max_moves = 8;
  cfg.imbalance = 1e9;
  cfg.min_gain = 50;
  cfg.cooldown = 4;
  Repartitioner rp(rt, cfg, /*items=*/1, {0});
  RecordingClient client;
  rp.set_client(&client);
  rp.install();
  // Affinity flips to node 1 for two epochs (moves the item at epoch 2),
  // then back to node 0 from epoch 3 on. The return preference confirms
  // at epoch 4 but the item is frozen until epoch 2 + cooldown = 6.
  every_epoch(rt, 1, cfg.epoch, 2,
              [&rp] { rp.tracker().record_access(1, 0, 1, 100); });
  for (std::size_t e = 2; e < 10; ++e) {
    const SimTime at =
        static_cast<SimTime>(e) * cfg.epoch + cfg.epoch / 2;
    rt.shard(0).schedule_at(at,
                            [&rp] { rp.tracker().record_access(0, 0, 0, 100); });
  }
  rt.run();
  ASSERT_EQ(rp.moves().size(), 2u);
  EXPECT_EQ(rp.moves()[0].epoch, 2u);
  EXPECT_EQ(rp.moves()[0].to, 1u);
  EXPECT_GE(rp.moves()[1].epoch, 6u);
  EXPECT_EQ(rp.moves()[1].to, 0u);
}

TEST(Repartitioner, MaxMovesRateLimitsByGainTimesDistance) {
  ShardedRuntime rt = make_rt(2, {});
  RepartConfig cfg;
  cfg.epoch = microseconds(10);
  cfg.max_moves = 1;
  cfg.imbalance = 1e9;
  cfg.min_gain = 10;
  cfg.cooldown = 1;
  Repartitioner rp(rt, cfg, /*items=*/2, {0, 0});
  rp.install();
  // Both items want node 1; item 1 has the bigger advantage, so the
  // single slot per epoch goes to it first, item 0 follows next epoch.
  every_epoch(rt, 1, cfg.epoch, 4, [&rp] {
    rp.tracker().record_access(1, 0, 1, 60);
    rp.tracker().record_access(1, 1, 1, 200);
  });
  rt.run();
  ASSERT_GE(rp.moves().size(), 2u);
  EXPECT_EQ(rp.moves()[0].item, 1u);
  EXPECT_EQ(rp.moves()[0].epoch, 2u);
  EXPECT_EQ(rp.moves()[1].item, 0u);
  EXPECT_EQ(rp.moves()[1].epoch, 3u);
}

TEST(Repartitioner, BalancePassSpreadsWorkWhenImbalanced) {
  ShardedRuntime rt = make_rt(2, {});
  RepartConfig cfg;
  cfg.epoch = microseconds(10);
  cfg.max_moves = 1;
  cfg.imbalance = 0.10;
  cfg.min_gain = 1000000;  // locality never fires
  cfg.cooldown = 1;
  cfg.alpha = 1.0;
  Repartitioner rp(rt, cfg, /*items=*/4, {0, 0, 0, 0});
  rp.install();
  // All work lands on node 0's items: the balance pass must shed toward
  // node 1, one item per epoch (rate limit).
  every_epoch(rt, 0, cfg.epoch, 4, [&rp] {
    for (std::uint32_t i = 0; i < 4; ++i) {
      rp.tracker().record_work(0, i, 100);
    }
  });
  rt.run();
  ASSERT_GE(rp.moves().size(), 1u);
  EXPECT_EQ(rp.moves()[0].kind, Repartitioner::MoveKind::kBalance);
  EXPECT_EQ(rp.moves()[0].from, 0u);
  EXPECT_EQ(rp.moves()[0].to, 1u);
  EXPECT_GE(rp.stats().balance_moves, 1u);
  // The balanced end state keeps ownership split, not sloshing: with the
  // donor-surplus hysteresis a settled partition stops moving.
  std::size_t on1 = 0;
  for (std::uint32_t i = 0; i < 4; ++i) on1 += rp.owner(i) == 1 ? 1 : 0;
  EXPECT_GE(on1, 1u);
  EXPECT_LE(on1, 3u);
}

TEST(Repartitioner, QuietWindowsPlanNothing) {
  ShardedRuntime rt = make_rt(2, {});
  RepartConfig cfg;
  cfg.epoch = microseconds(10);
  Repartitioner rp(rt, cfg, /*items=*/4, {0, 0, 1, 1});
  rp.install();
  // Keep the sim alive with no recorded traffic at all.
  every_epoch(rt, 0, cfg.epoch, 5, [] {});
  rt.run();
  EXPECT_EQ(rp.moves().size(), 0u);
  EXPECT_GE(rp.stats().epochs, 4u);
  EXPECT_EQ(rp.stats().plan_fingerprint, 1469598103934665603ull);
}

// --- migration under live load + outage: determinism and consistency ------

struct MigrationRun {
  std::uint64_t fingerprint = 0;
  std::uint64_t moves = 0;
  std::uint64_t forwards = 0;
  /// Every node's apply log, concatenated (node, records) for the oracle.
  std::vector<serve::KvApplyRecord> records;
};

MigrationRun run_migration_under_load(std::size_t threads) {
  ShardedRuntimeConfig rc;
  rc.nodes = 4;
  rc.workers_per_node = 2;
  rc.threads = threads;
  rc.internode_radices = {2, 2};
  rc.runtime.placement = PlacementPolicy::kAlwaysSoftware;
  rc.runtime.distribution = DistributionPolicy::kHomeOnly;
  rc.runtime.repartition_epoch = microseconds(10);
  rc.runtime.repartition_max_moves = 16;
  rc.runtime.repartition_imbalance = 0.5;
  rc.runtime.repartition_min_gain = 64;
  rc.runtime.repartition_cooldown = 2;
  // Whole-node outage mid-run; fast heartbeats so the drain happens while
  // traffic is still flowing (the migration edge under live load).
  rc.node_outages.push_back(ShardedRuntimeConfig::NodeOutage{
      1, microseconds(60), microseconds(60)});
  rc.runtime.faults.heartbeat_period = microseconds(5);
  rc.runtime.faults.detect_timeout = microseconds(15);
  ShardedRuntime rt(rc);

  serve::KvConfig kc;
  kc.key_space = 1 << 10;
  kc.value_bytes = 128;
  kc.service_items = 300;
  kc.repart_blocks = 16;
  serve::KvStore kv(rt, kc);
  Repartitioner rp(rt, kc.repart_blocks, kv.initial_block_owners());
  kv.attach_repartitioner(&rp);
  rp.install();

  serve::LoadGenConfig lg;
  lg.mode = serve::LoadGenConfig::Mode::kOpenLoop;
  lg.offered_load = 2e6;
  lg.requests_per_node = 150;
  lg.zipf_skew = 0.9;
  lg.origin_affinity = 0.9;
  lg.get_fraction = 0.6;  // more SETs, so the moved slots carry state
  serve::LoadGen gen(rt, kv, lg);
  gen.start();
  rt.run();

  MigrationRun out;
  const serve::LoadGen::Report report = gen.report();
  std::uint64_t h = report.fingerprint;
  const std::uint64_t plan = rp.stats().plan_fingerprint;
  for (int b = 0; b < 8; ++b) {
    h ^= (plan >> (8 * b)) & 0xFF;
    h *= 1099511628211ull;
  }
  out.fingerprint = h;
  out.moves = rp.stats().moves;
  out.forwards = kv.cross_stats().forwards;
  for (std::size_t n = 0; n < rt.node_count(); ++n) {
    const auto& log = kv.apply_log(n);
    out.records.insert(out.records.end(), log.begin(), log.end());
  }
  return out;
}

TEST(MigrationUnderLoad, ByteIdenticalAcrossSimThreads) {
  const MigrationRun r1 = run_migration_under_load(1);
  const MigrationRun r2 = run_migration_under_load(2);
  const MigrationRun r8 = run_migration_under_load(8);
  EXPECT_EQ(r1.fingerprint, r2.fingerprint);
  EXPECT_EQ(r1.fingerprint, r8.fingerprint);
  EXPECT_EQ(r1.moves, r8.moves);
  EXPECT_EQ(r1.forwards, r8.forwards);
  // The scenario really exercised the machinery: the outage drained
  // blocks off the dead node, and at least one stranded request re-homed
  // through a stale-owner forward.
  EXPECT_GT(r1.moves, 0u);
  EXPECT_GT(r1.forwards, 0u);
}

TEST(MigrationUnderLoad, PerKeyApplyHistoryStaysSerialAcrossMigrations) {
  MigrationRun run = run_migration_under_load(4);
  ASSERT_GT(run.moves, 0u);
  // Partition-consistency oracle over a *moving* partition: merge every
  // node's apply records per key in apply-time order and replay. A block
  // migration that lost a write (wiped source read back), double-applied
  // a forwarded request, or let two owners serve the same key in overlap
  // shows up as a GET/DELETE seeing the wrong value or presence.
  std::map<std::uint64_t, std::vector<const serve::KvApplyRecord*>> by_key;
  for (const serve::KvApplyRecord& r : run.records) {
    by_key[r.key].push_back(&r);
  }
  std::size_t checked_gets = 0;
  for (auto& [key, recs] : by_key) {
    std::stable_sort(recs.begin(), recs.end(),
                     [](const serve::KvApplyRecord* a,
                        const serve::KvApplyRecord* b) {
                       if (a->at != b->at) return a->at < b->at;
                       return a->request < b->request;
                     });
    bool present = false;
    std::uint64_t value = 0;
    for (const serve::KvApplyRecord* r : recs) {
      switch (r->op) {
        case serve::KvOp::kGet:
          EXPECT_EQ(r->found, present) << "key " << key;
          EXPECT_EQ(r->returned, present ? value : 0u) << "key " << key;
          ++checked_gets;
          break;
        case serve::KvOp::kSet:
          present = true;
          value = r->value;
          break;
        case serve::KvOp::kDelete:
          EXPECT_EQ(r->found, present) << "key " << key;
          present = false;
          value = 0;
          break;
      }
    }
  }
  EXPECT_GT(checked_gets, 100u);
}

// --- mesh workload sanity -------------------------------------------------

TEST(MeshWorkload, ContiguousOwnersPartitionTheRing) {
  const std::vector<std::uint32_t> owners =
      repart::MeshWorkload::contiguous_owners(16, 4);
  ASSERT_EQ(owners.size(), 16u);
  for (std::size_t c = 1; c < owners.size(); ++c) {
    EXPECT_GE(owners[c], owners[c - 1]);  // monotone blocks
  }
  EXPECT_EQ(owners.front(), 0u);
  EXPECT_EQ(owners.back(), 3u);
}

TEST(MeshWorkload, StaticRunIsDeterministicAcrossThreads) {
  auto run = [](std::size_t threads) {
    ShardedRuntimeConfig rc;
    rc.nodes = 4;
    rc.workers_per_node = 1;
    rc.threads = threads;
    ShardedRuntime rt(rc);
    repart::MeshConfig mc;
    mc.cells = 256;
    mc.chords = 64;
    mc.duration = microseconds(50);
    mc.front_period = microseconds(200);
    repart::MeshWorkload mesh(rt, nullptr, mc);
    mesh.start();
    rt.run();
    return mesh.report();
  };
  const repart::MeshWorkload::Report a = run(1);
  const repart::MeshWorkload::Report b = run(4);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_GT(a.updates, 0u);
  EXPECT_GT(a.total_reads, 0u);
}

}  // namespace
}  // namespace ecoscale
