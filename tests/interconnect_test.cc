#include <gtest/gtest.h>

#include "common/check.h"
#include "interconnect/network.h"
#include "interconnect/packet.h"
#include "interconnect/topology.h"

namespace ecoscale {
namespace {

NetworkConfig simple_config() {
  NetworkConfig cfg;
  LinkParams p;
  p.hop_latency = nanoseconds(10);
  p.bandwidth = Bandwidth::from_gib_per_s(1.0);
  p.pj_per_byte = 1.0;
  p.pj_per_packet = 5.0;
  cfg.level_params = {{0, p}, {1, p}, {2, p}};
  return cfg;
}

TEST(Topology, TreeShape) {
  const auto t = make_tree({4, 2});
  EXPECT_EQ(t.endpoint_count(), 8u);
  // 8 endpoints + 2 L0 switches + 1 root.
  EXPECT_EQ(t.vertex_count(), 11u);
}

TEST(Topology, TreeSingleLevel) {
  const auto t = make_tree({8});
  EXPECT_EQ(t.endpoint_count(), 8u);
  EXPECT_EQ(t.vertex_count(), 9u);
}

TEST(Topology, CrossbarShape) {
  const auto t = make_crossbar(5);
  EXPECT_EQ(t.endpoint_count(), 5u);
  EXPECT_EQ(t.vertex_count(), 6u);
}

TEST(Topology, DragonflyShape) {
  const auto t = make_dragonfly(3, 2, 2);
  EXPECT_EQ(t.endpoint_count(), 12u);
}

TEST(Topology, Mesh2dShape) {
  const auto t = make_mesh2d(3, 2);
  EXPECT_EQ(t.endpoint_count(), 6u);
  EXPECT_EQ(t.vertex_count(), 12u);
}

TEST(Network, TreeHopCounts) {
  Network net(make_tree({4, 2}), simple_config());
  // Same L0 switch: ep -> sw -> ep = 2 hops.
  EXPECT_EQ(net.hop_count(0, 1), 2);
  // Across nodes: ep -> L0 -> root -> L0 -> ep = 4 hops.
  EXPECT_EQ(net.hop_count(0, 4), 4);
  EXPECT_EQ(net.hop_count(0, 0), 0);
  EXPECT_EQ(net.diameter(), 4);
}

TEST(Network, CrossbarAlwaysTwoHops) {
  Network net(make_crossbar(8), simple_config());
  EXPECT_EQ(net.hop_count(0, 7), 2);
  EXPECT_EQ(net.diameter(), 2);
}

TEST(Network, TreeDiameterGrowsWithLevels) {
  Network two(make_tree({4, 4}), simple_config());
  Network three(make_tree({4, 4, 4}), simple_config());
  EXPECT_EQ(two.diameter(), 4);
  EXPECT_EQ(three.diameter(), 6);
}

TEST(Network, TransferTimingIncludesHopsAndSerialization) {
  Network net(make_crossbar(2), simple_config());
  Packet p{PacketType::kRead, {}, {}, 1024 - kHeaderBytes};
  const auto r = net.send(0, 1, p, 0);
  EXPECT_EQ(r.hops, 2);
  // 2 hop latencies + tail serialization at 1 GiB/s for 1024 B.
  const SimDuration ser = Bandwidth::from_gib_per_s(1.0).transfer_time(1024);
  EXPECT_EQ(r.arrival, 2 * nanoseconds(10) + ser);
}

TEST(Network, SelfSendIsFree) {
  Network net(make_crossbar(2), simple_config());
  Packet p{PacketType::kRead, {}, {}, 64};
  const auto r = net.send(0, 0, p, 123);
  EXPECT_EQ(r.arrival, 123u);
  EXPECT_EQ(r.hops, 0);
  EXPECT_DOUBLE_EQ(r.energy, 0.0);
}

TEST(Network, ContentionDelaysSecondTransfer) {
  Network net(make_crossbar(3), simple_config());
  Packet big{PacketType::kDma, {}, {}, mebibytes(1)};
  const auto first = net.send(0, 2, big, 0);
  const auto second = net.send(1, 2, big, 0);  // shares the sw->ep2 link
  EXPECT_GT(second.arrival, first.arrival);
}

TEST(Network, DisjointPathsDoNotContend) {
  Network net(make_tree({2, 2}), simple_config());
  Packet p{PacketType::kDma, {}, {}, kibibytes(64)};
  const auto a = net.send(0, 1, p, 0);  // inside node 0
  const auto b = net.send(2, 3, p, 0);  // inside node 1
  EXPECT_EQ(a.arrival, b.arrival);
}

TEST(Network, SharedMediumSerializesEverything) {
  auto cfg = simple_config();
  cfg.shared_medium = true;
  Network bus(make_bus(4), cfg);
  Packet p{PacketType::kWrite, {}, {}, kibibytes(16)};
  const auto a = bus.send(0, 1, p, 0);
  const auto b = bus.send(2, 3, p, 0);  // different endpoints, same medium
  EXPECT_GT(b.arrival, a.arrival);
}

TEST(Network, EnergyScalesWithHops) {
  Network net(make_tree({4, 2}), simple_config());
  Packet p{PacketType::kWrite, {}, {}, 1024};
  const auto near = net.send(0, 1, p, 0);
  const auto far = net.send(0, 4, p, 0);
  EXPECT_NEAR(far.energy / near.energy, 2.0, 0.01);  // 4 vs 2 hops
}

TEST(Network, TrafficAccounting) {
  Network net(make_tree({2, 2}), simple_config());
  Packet p{PacketType::kWrite, {}, {}, 100};
  net.send(0, 3, p, 0);  // 4 hops, wire = 116 bytes
  EXPECT_EQ(net.byte_hops(), 4u * 116u);
  EXPECT_EQ(net.total_packets(), 1u);
  // Two L0 links and two L1 links traversed.
  EXPECT_EQ(net.bytes_per_level().at(0), 2u * 116u);
  EXPECT_EQ(net.bytes_per_level().at(1), 2u * 116u);
}

TEST(Network, LevelParamsFallBackToLevelZero) {
  NetworkConfig cfg;
  LinkParams p;
  p.hop_latency = nanoseconds(7);
  cfg.level_params = {{0, p}};  // tree has level-1 links too
  Network net(make_tree({2, 2}), cfg);
  Packet pkt{PacketType::kRead, {}, {}, 0};
  const auto r = net.send(0, 2, pkt, 0);
  EXPECT_EQ(r.hops, 4);
}

TEST(Network, RejectsMissingLevelZero) {
  NetworkConfig cfg;
  cfg.level_params.clear();
  EXPECT_THROW(Network(make_crossbar(2), cfg), CheckError);
}

TEST(Network, MaxLinkUtilization) {
  Network net(make_crossbar(2), simple_config());
  Packet p{PacketType::kDma, {}, {}, mebibytes(1)};
  const auto r = net.send(0, 1, p, 0);
  EXPECT_GT(net.max_link_utilization(r.arrival), 0.1);
  EXPECT_GT(net.max_link_busy(), 0u);
}

TEST(Packet, WireBytesIncludeHeader) {
  Packet p{PacketType::kRead, {}, {}, 100};
  EXPECT_EQ(p.wire_bytes(), 100 + kHeaderBytes);
  EXPECT_STREQ(packet_type_name(PacketType::kDma), "dma");
}

TEST(Network, DragonflyShorterThanTreeAtScale) {
  auto cfg = simple_config();
  Network tree(make_tree({4, 4, 4}), cfg);
  Network fly(make_dragonfly(8, 4, 2), cfg);
  EXPECT_EQ(tree.endpoint_count(), fly.endpoint_count());
  EXPECT_LT(fly.diameter(), tree.diameter());
}

}  // namespace
}  // namespace ecoscale
