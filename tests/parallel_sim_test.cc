// Tests for the sharded parallel simulation engine (sim/parallel.h):
// per-thread lane FIFO + wraparound, the conservative post() contract, the
// canonical window merge, and — the load-bearing property — byte-identical
// determinism across --sim-threads 1, 2 and 8, both for a raw engine
// workload and for a mixed UNIMEM+UNILOGIC workload on ShardedRuntime.
#include <cstdint>
#include <cstring>
#include <functional>
#include <numeric>
#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "common/rng.h"
#include "common/units.h"
#include "hls/dse.h"
#include "hls/ir.h"
#include "interconnect/network.h"
#include "interconnect/topology.h"
#include "runtime/sharded.h"
#include "sim/mailbox.h"
#include "sim/parallel.h"
#include "unimem/pgas.h"

namespace ecoscale {
namespace {

// FNV-1a over a stream of u64 words (the same recipe the kernel
// determinism lock in sim_test.cc uses).
struct TraceHasher {
  std::uint64_t h = 1469598103934665603ull;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  void mix_double(double d) {
    std::uint64_t bits;
    std::memcpy(&bits, &d, sizeof bits);
    mix(bits);
  }
};

// --- per-thread SPSC lane ---------------------------------------------------

TEST(ShardLane, FifoAcrossRingWraparound) {
  ShardLane lane(4);
  ASSERT_EQ(lane.capacity(), 4u);
  std::vector<int> got;
  std::vector<ShardMessage> out;
  // 32 push/drain rounds of 3 messages wrap the 4-slot ring many times.
  for (int round = 0; round < 32; ++round) {
    for (int i = 0; i < 3; ++i) {
      const int v = round * 3 + i;
      lane.push(static_cast<SimTime>(v), /*src=*/0, /*dst=*/1,
                static_cast<std::uint64_t>(v),
                [&got, v] { got.push_back(v); });
    }
    out.clear();
    lane.drain(out);
    ASSERT_EQ(out.size(), 3u);
    for (auto& m : out) m.action();
  }
  EXPECT_TRUE(lane.empty());
  EXPECT_EQ(lane.overflow_spills(), 0u);
  ASSERT_EQ(got.size(), 96u);
  for (int v = 0; v < 96; ++v) EXPECT_EQ(got[v], v);
}

TEST(ShardLane, OverflowSpillKeepsFifoOrder) {
  ShardLane lane(4);
  std::vector<int> got;
  for (int v = 0; v < 10; ++v) {
    lane.push(static_cast<SimTime>(v), 0, 1, static_cast<std::uint64_t>(v),
              [&got, v] { got.push_back(v); });
  }
  EXPECT_GT(lane.overflow_spills(), 0u);
  std::vector<ShardMessage> out;
  lane.drain(out);
  ASSERT_EQ(out.size(), 10u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].seq, i);
    out[i].action();
  }
  for (int v = 0; v < 10; ++v) EXPECT_EQ(got[v], v);
  EXPECT_TRUE(lane.empty());
}

// Lanes are shared by every shard a thread runs: messages for different
// (src, dst) pairs interleave in one ring and must come back tagged and in
// push order — the merge sort relies on the tags, not the lane layout.
TEST(ShardLane, InterleavedShardPairsStayTaggedAndOrdered) {
  ShardLane lane(8);
  struct Tag {
    std::uint32_t src, dst;
    std::uint64_t seq;
  };
  std::vector<Tag> pushed;
  std::vector<std::uint64_t> next_seq(4, 0);
  for (int i = 0; i < 21; ++i) {  // > capacity, so the tail spills too
    const auto src = static_cast<std::uint32_t>(i % 3);
    const auto dst = static_cast<std::uint32_t>(3 - i % 3);
    const std::uint64_t seq = next_seq[src]++;
    pushed.push_back(Tag{src, dst, seq});
    lane.push(static_cast<SimTime>(100 + i), src, dst, seq, [] {});
  }
  EXPECT_GT(lane.overflow_spills(), 0u);
  std::vector<ShardMessage> out;
  lane.drain(out);
  ASSERT_EQ(out.size(), pushed.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].time, static_cast<SimTime>(100 + i));
    EXPECT_EQ(out[i].src, pushed[i].src);
    EXPECT_EQ(out[i].dst, pushed[i].dst);
    EXPECT_EQ(out[i].seq, pushed[i].seq);
  }
  EXPECT_TRUE(lane.empty());
}

// --- post() contract --------------------------------------------------------

TEST(ShardedSimulator, PostOutsideARunningActionIsRejected) {
  ShardedConfig sc;
  sc.shards = 2;
  sc.lookahead = 10;
  ShardedSimulator engine(sc);
  EXPECT_THROW(engine.post(0, 1, 100, [] {}), CheckError);
}

TEST(ShardedSimulator, PostInsideTheLookaheadWindowIsRejected) {
  ShardedConfig sc;
  sc.shards = 2;
  sc.lookahead = 100;
  ShardedSimulator engine(sc);
  engine.shard(0).schedule_at(50, [&engine] {
    engine.post(0, 1, engine.shard(0).now() + 99, [] {});  // < lookahead
  });
  EXPECT_THROW(engine.run(), CheckError);
}

TEST(ShardedSimulator, ActionExceptionPropagatesFromWorkerThreads) {
  ShardedConfig sc;
  sc.shards = 4;
  sc.lookahead = 10;
  sc.threads = 4;
  ShardedSimulator engine(sc);
  for (std::size_t s = 0; s < 4; ++s) {
    engine.shard(s).schedule_at(5, [] {});
  }
  engine.shard(3).schedule_at(7, [] {
    throw std::runtime_error("shard 3 exploded");
  });
  EXPECT_THROW(engine.run(), std::runtime_error);
}

// --- deterministic cross-shard workload -------------------------------------

// Per-shard actor mesh: every shard runs self-rescheduling actors that mix
// their execution order into the shard's own hash; a deterministic fraction
// of fires post a message to another shard, which mixes into the
// *destination's* hash when it executes there. All mutable state is
// per-shard, so any hash difference across thread counts is an engine
// ordering bug.
struct MeshActor {
  ShardedSimulator* eng = nullptr;
  std::size_t shard = 0;
  std::size_t shards = 0;
  TraceHasher* hashes = nullptr;  // one per shard, indexed by shard id
  std::uint64_t remaining = 0;
  Rng rng{0};

  void fire() {
    Simulator& sim = eng->shard(shard);
    TraceHasher& hash = hashes[shard];
    hash.mix(sim.now());
    hash.mix(remaining);
    if (remaining == 0) return;
    --remaining;
    if (rng.uniform_u64(4) == 0 && shards > 1) {
      const std::size_t to =
          (shard + 1 + rng.uniform_u64(shards - 1)) % shards;
      const SimTime t =
          sim.now() + eng->lookahead() + rng.uniform_u64(300);
      ShardedSimulator* e = eng;
      TraceHasher* dest = &hashes[to];
      const std::uint64_t payload = rng.uniform_u64(1u << 30);
      const std::size_t from = shard;
      eng->post(shard, to, t, [e, to, dest, payload, from] {
        dest->mix(e->shard(to).now());
        dest->mix(payload);
        dest->mix(from);
      });
    }
    sim.schedule_after(1 + rng.uniform_u64(97), [this] { fire(); });
  }
};

std::uint64_t mesh_workload_hash(std::size_t shards, std::size_t threads,
                                 std::size_t mailbox_capacity,
                                 std::uint64_t fires_per_actor,
                                 std::uint64_t* spills_out = nullptr) {
  ShardedConfig sc;
  sc.shards = shards;
  sc.lookahead = 200;
  sc.threads = threads;
  sc.mailbox_capacity = mailbox_capacity;
  ShardedSimulator engine(sc);
  std::vector<TraceHasher> hashes(shards);
  std::vector<std::unique_ptr<MeshActor>> actors;
  for (std::size_t s = 0; s < shards; ++s) {
    for (int a = 0; a < 4; ++a) {
      actors.push_back(std::make_unique<MeshActor>());
      MeshActor& actor = *actors.back();
      actor.eng = &engine;
      actor.shard = s;
      actor.shards = shards;
      actor.hashes = hashes.data();
      actor.remaining = fires_per_actor;
      actor.rng = Rng(0xBEEF + s * 16 + a);
      engine.shard(s).schedule_at(1 + a, [&actor] { actor.fire(); });
    }
  }
  engine.run();
  TraceHasher combined;
  for (const TraceHasher& h : hashes) combined.mix(h.h);
  combined.mix(engine.events_processed());
  combined.mix(engine.messages());
  combined.mix(engine.windows());
  if (spills_out != nullptr) *spills_out = engine.mailbox_spills();
  EXPECT_GT(engine.messages(), 0u);
  return combined.h;
}

TEST(ShardedSimulator, ByteIdenticalAcrossSimThreads1_2_8) {
  const std::uint64_t h1 = mesh_workload_hash(8, 1, 1024, 400);
  const std::uint64_t h2 = mesh_workload_hash(8, 2, 1024, 400);
  const std::uint64_t h8 = mesh_workload_hash(8, 8, 1024, 400);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1, h8);
}

// Window-boundary lane stress: a 4-slot ring under a message rate far
// beyond it wraps its indices every window and overflows constantly; the
// spill path must preserve the canonical merge exactly. Spill *counts* are
// a wall-clock-side metric that varies with how many shards share a lane
// (i.e. with the thread count), so only the hashes must match.
TEST(ShardedSimulator, MailboxWraparoundAtWindowBoundariesIsDeterministic) {
  std::uint64_t spills1 = 0;
  std::uint64_t spills4 = 0;
  const std::uint64_t h1 = mesh_workload_hash(4, 1, 4, 800, &spills1);
  const std::uint64_t h4 = mesh_workload_hash(4, 4, 4, 800, &spills4);
  EXPECT_EQ(h1, h4);
  EXPECT_GT(spills1, 0u);
  EXPECT_GT(spills4, 0u);
}

TEST(ShardedSimulator, ThreadsClampedToShardCount) {
  ShardedConfig sc;
  sc.shards = 2;
  sc.lookahead = 10;
  sc.threads = 16;
  ShardedSimulator engine(sc);
  EXPECT_EQ(engine.threads_used(), 2u);
}

// --- per-pair post contract -------------------------------------------------

TEST(ShardedSimulator, PerPairContractUsesTheOracle) {
  ShardedConfig sc;
  sc.shards = 3;
  sc.lookahead = 10;
  // A metric: 50 on the (0,1) edge, 300 elsewhere. Triangle inequality
  // holds (300 <= 50 + 300), which the engine spot-checks at construction.
  sc.pair_lookahead = [](std::size_t from, std::size_t to) -> SimDuration {
    return (from == 0 && to == 1) ? 50 : 300;
  };
  ShardedSimulator engine(sc);
  EXPECT_EQ(engine.pair_lookahead(0, 1), 50);
  EXPECT_EQ(engine.pair_lookahead(1, 0), 300);
  EXPECT_EQ(engine.pair_lookahead(0, 2), 300);
  // A post riding the cheap pair is legal right at its bound...
  engine.shard(0).schedule_at(5, [&engine] {
    engine.post(0, 1, engine.shard(0).now() + 50, [] {});
  });
  engine.run();
  EXPECT_EQ(engine.messages(), 1u);
  // ...but the same delay toward an expensive pair is a contract breach.
  ShardedSimulator strict(sc);
  strict.shard(0).schedule_at(5, [&strict] {
    strict.post(0, 2, strict.shard(0).now() + 299, [] {});
  });
  EXPECT_THROW(strict.run(), CheckError);
}

TEST(ShardedSimulator, FixedModeRaisesThePairBoundToTheGlobalWindow) {
  ShardedConfig sc;
  sc.shards = 2;
  sc.lookahead = 100;
  sc.window_mode = WindowMode::kFixedWindow;
  sc.pair_lookahead = [](std::size_t, std::size_t) -> SimDuration {
    return 50;
  };
  ShardedSimulator engine(sc);
  // The legacy engine's invariant is "nothing lands inside the global
  // window", so in kFixedWindow the contract is max(pair, lookahead).
  engine.shard(0).schedule_at(5, [&engine] {
    engine.post(0, 1, engine.shard(0).now() + 50, [] {});
  });
  EXPECT_THROW(engine.run(), CheckError);
}

TEST(ShardedSimulator, TriangleInequalityViolationIsRejected) {
  ShardedConfig sc;
  sc.shards = 3;
  sc.lookahead = 10;
  // 0->2 direct (500) costs more than relaying via 1 (10 + 10): a relayed
  // event could outrun the direct bound, so construction must refuse.
  sc.pair_lookahead = [](std::size_t from, std::size_t to) -> SimDuration {
    return (from == 0 && to == 2) ? 500 : 10;
  };
  EXPECT_THROW(ShardedSimulator{sc}, CheckError);
}

TEST(ShardedSimulator, OffStrideTriangleViolationIsCaughtBySampling) {
  // 48 shards put the strided triangle check on stride 2 — even indices
  // only — so a violation confined to odd shards slips through it.
  // Odd->odd pairs cost 500 with 10-cost relays through any even shard: a
  // gross metric violation living entirely off the stride grid, which the
  // seeded random triple sweep must still catch.
  ShardedConfig sc;
  sc.shards = 48;
  sc.lookahead = 10;
  sc.pair_lookahead = [](std::size_t from, std::size_t to) -> SimDuration {
    return (from % 2 == 1 && to % 2 == 1) ? 500 : 10;
  };
  EXPECT_THROW(ShardedSimulator{sc}, CheckError);
}

TEST(ShardedSimulator, OverstatedSourceFloorIsRejected) {
  // Above dense_pair_cap the horizons trust the per-source floors, so a
  // floor that exceeds a real pair latency must fail at construction
  // instead of silently over-advancing shards.
  ShardedConfig sc;
  sc.shards = 8;
  sc.lookahead = 10;
  sc.dense_pair_cap = 4;
  sc.pair_lookahead = [](std::size_t, std::size_t) -> SimDuration {
    return 100;
  };
  sc.source_floor = [](std::size_t) -> SimDuration { return 150; };
  EXPECT_THROW(ShardedSimulator{sc}, CheckError);
  // An honest floor (== the uniform pair latency) constructs fine.
  sc.source_floor = [](std::size_t) -> SimDuration { return 100; };
  EXPECT_NO_THROW(ShardedSimulator{sc});
}

// --- self-chain echo: ping-pong back to the global-min shard ----------------

// Regression for the adaptive-horizon self-chain hole: shard 0 holds the
// global floor with dense local work far beyond the echo time, shard 1 is
// idle and shard 2's only event is distant, so the round-start peer bound
// leaves shard 0's first window nearly unbounded. Shard 0 pings shard 1,
// which pongs straight back at the pair bound. Without the post-time echo
// cap shard 0 runs its local work past the pong's delivery time in round
// 1 and the merge two rounds later schedules an event in its past.
void ping_pong_echo_run(const std::function<void(ShardedConfig&)>& tweak,
                        SimDuration hop) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    ShardedConfig sc;
    sc.shards = 3;
    sc.lookahead = 100;
    sc.threads = threads;
    tweak(sc);
    ShardedSimulator engine(sc);
    for (SimTime t = 10; t <= 5000; t += 10) {
      engine.shard(0).schedule_at(t, [] {});
    }
    engine.shard(2).schedule_at(1000000, [] {});  // distant, not idle
    SimTime pong_at = 0;
    engine.shard(0).schedule_at(10, [&engine, &pong_at, hop] {
      engine.post(0, 1, engine.shard(0).now() + hop,
                  [&engine, &pong_at, hop] {
                    engine.post(1, 0, engine.shard(1).now() + hop,
                                [&engine, &pong_at] {
                                  pong_at = engine.shard(0).now();
                                });
                  });
    });
    engine.run();
    EXPECT_EQ(pong_at, 10 + 2 * hop);
  }
}

TEST(ShardedSimulator, EchoToGlobalMinShardUniformLookahead) {
  ping_pong_echo_run([](ShardedConfig&) {}, 100);
}

TEST(ShardedSimulator, EchoToGlobalMinShardDensePairOracle) {
  ping_pong_echo_run(
      [](ShardedConfig& sc) {
        sc.lookahead = 10;
        sc.pair_lookahead = [](std::size_t, std::size_t) -> SimDuration {
          return 100;
        };
      },
      100);
}

TEST(ShardedSimulator, EchoToGlobalMinShardCollapsedFloors) {
  ping_pong_echo_run(
      [](ShardedConfig& sc) {
        sc.lookahead = 10;
        sc.dense_pair_cap = 2;  // force the collapsed per-source-floor path
        sc.pair_lookahead = [](std::size_t, std::size_t) -> SimDuration {
          return 100;
        };
        sc.source_floor = [](std::size_t) -> SimDuration { return 100; };
      },
      100);
}

// --- imbalanced topology: one hot shard, many cold burst shards -------------

// The fixed-window engine's worst case: shard 0 fires continuously (it
// holds the global floor), while shards 1..N-1 wake only in short
// synchronized bursts once per period and sit idle in between. Fixed
// windows march the whole machine forward one lookahead at a time, so the
// cold shards stall at (periods / lookahead) barriers per period; adaptive
// horizons let the hot shard cross an entire quiet gap in one window.
struct HotActor {
  ShardedSimulator* eng = nullptr;
  std::size_t shards = 0;
  TraceHasher* hash = nullptr;
  SimTime stop_at = 0;
  Rng rng{0};

  void fire() {
    Simulator& sim = eng->shard(0);
    hash->mix(sim.now());
    if (sim.now() >= stop_at) return;
    if (rng.uniform_u64(256) == 0 && shards > 1) {
      const std::size_t to = 1 + rng.uniform_u64(shards - 1);
      ShardedSimulator* e = eng;
      eng->post(0, to, sim.now() + 200 + rng.uniform_u64(100),
                [e, to] { /* wake the cold shard mid-gap */
                          (void)e->shard(to).now(); });
    }
    sim.schedule_after(1 + rng.uniform_u64(13), [this] { fire(); });
  }
};

struct ColdActor {
  ShardedSimulator* eng = nullptr;
  std::size_t shard = 0;
  std::size_t shards = 0;
  TraceHasher* hashes = nullptr;
  SimTime period = 0;
  std::uint64_t burst = 0;
  std::uint64_t burst_left = 0;
  int epochs_left = 0;
  SimTime next_burst = 0;
  Rng rng{0};

  void fire() {
    Simulator& sim = eng->shard(shard);
    hashes[shard].mix(sim.now());
    if (burst_left > 0) {
      --burst_left;
      sim.schedule_after(1 + rng.uniform_u64(5), [this] { fire(); });
      return;
    }
    // Burst over: hand one message to the next cold shard, then sleep
    // until the next period boundary.
    const std::size_t to = 1 + (shard % (shards - 1));
    TraceHasher* dest = &hashes[to];
    ShardedSimulator* e = eng;
    eng->post(shard, to, sim.now() + 200 + rng.uniform_u64(50),
              [e, to, dest] { dest->mix(e->shard(to).now()); });
    if (--epochs_left <= 0) return;
    next_burst += period;
    burst_left = burst;
    sim.schedule_at(next_burst, [this] { fire(); });
  }
};

struct ImbalancedResult {
  std::uint64_t hash = 0;
  std::uint64_t windows = 0;
  std::uint64_t shard_windows = 0;
  std::uint64_t stalled = 0;
  std::uint64_t steals = 0;
};

ImbalancedResult imbalanced_run(WindowMode mode, std::size_t threads) {
  constexpr std::size_t kShards = 64;  // shards >> threads: claim queues
  constexpr SimTime kPeriod = 20000;
  constexpr int kEpochs = 6;
  ShardedConfig sc;
  sc.shards = kShards;
  sc.lookahead = 200;
  sc.threads = threads;
  sc.window_mode = mode;
  ShardedSimulator engine(sc);
  std::vector<TraceHasher> hashes(kShards);
  HotActor hot;
  hot.eng = &engine;
  hot.shards = kShards;
  hot.hash = &hashes[0];
  hot.stop_at = kPeriod * kEpochs;
  hot.rng = Rng(0x4077);
  engine.shard(0).schedule_at(1, [&hot] { hot.fire(); });
  std::vector<std::unique_ptr<ColdActor>> colds;
  for (std::size_t s = 1; s < kShards; ++s) {
    colds.push_back(std::make_unique<ColdActor>());
    ColdActor& c = *colds.back();
    c.eng = &engine;
    c.shard = s;
    c.shards = kShards;
    c.hashes = hashes.data();
    c.period = kPeriod;
    c.burst = 8;
    c.burst_left = 8;
    c.epochs_left = kEpochs;
    c.next_burst = static_cast<SimTime>(100 + s * 3);
    c.rng = Rng(0xC01D + s);
    engine.shard(s).schedule_at(c.next_burst, [&c] { c.fire(); });
  }
  engine.run();
  ImbalancedResult r;
  TraceHasher combined;
  for (const TraceHasher& h : hashes) combined.mix(h.h);
  combined.mix(engine.events_processed());
  combined.mix(engine.messages());
  combined.mix(engine.windows());
  combined.mix(engine.shard_windows());
  combined.mix(engine.stalled_shard_windows());  // deterministic too
  r.hash = combined.h;
  r.windows = engine.windows();
  r.shard_windows = engine.shard_windows();
  r.stalled = engine.stalled_shard_windows();
  r.steals = engine.steals();
  return r;
}

TEST(ShardedSimulator, ImbalancedTopologyByteIdenticalAcross1_2_8Threads) {
  for (const WindowMode mode :
       {WindowMode::kAdaptive, WindowMode::kFixedWindow}) {
    const ImbalancedResult r1 = imbalanced_run(mode, 1);
    const ImbalancedResult r2 = imbalanced_run(mode, 2);
    const ImbalancedResult r8 = imbalanced_run(mode, 8);
    EXPECT_EQ(r1.hash, r2.hash);
    EXPECT_EQ(r1.hash, r8.hash);
    // Single-threaded runs have nothing to steal from.
    EXPECT_EQ(r1.steals, 0u);
  }
}

TEST(ShardedSimulator, AdaptiveHorizonsCrossQuietGapsInOneWindow) {
  const ImbalancedResult fixed = imbalanced_run(WindowMode::kFixedWindow, 1);
  const ImbalancedResult adaptive = imbalanced_run(WindowMode::kAdaptive, 1);
  // Same simulation, radically fewer synchronization rounds: the fixed
  // engine pays ~period/lookahead barriers per quiet gap, adaptive one.
  EXPECT_LT(adaptive.windows * 4, fixed.windows);
  // The starvation regression proper: cold shards no longer spin at
  // barriers with empty horizons while the hot shard inches forward.
  EXPECT_LT(adaptive.stalled * 4, fixed.stalled);
}

// --- lookahead queries ------------------------------------------------------

TEST(Network, MinCrossLatencyOnATwoLevelTree) {
  NetworkConfig nc;
  LinkParams l0;
  l0.hop_latency = nanoseconds(20);
  LinkParams l1;
  l1.hop_latency = nanoseconds(150);
  nc.level_params = {{0, l0}, {1, l1}};
  Network net(make_tree({2, 2}), nc);
  // Same-switch pair: up + down over two level-0 links.
  EXPECT_EQ(net.min_cross_latency(0), nanoseconds(40));
  // Crossing the level-1 tier costs two level-0 and two level-1 hops.
  EXPECT_EQ(net.min_cross_latency(1), nanoseconds(340));
  // Nothing crosses a level that does not exist.
  EXPECT_EQ(net.min_cross_latency(2), 0);
  EXPECT_EQ(net.route_latency(0, 1), nanoseconds(40));
  EXPECT_EQ(net.route_latency(0, 2), nanoseconds(340));
}

TEST(Network, MinLatencyFromIsThePerSourceFloor) {
  NetworkConfig nc;
  LinkParams l0;
  l0.hop_latency = nanoseconds(20);
  LinkParams l1;
  l1.hop_latency = nanoseconds(150);
  nc.level_params = {{0, l0}, {1, l1}};
  // Two switches of two endpoints each: {0,1} under one, {2,3} under the
  // other, switches joined by level-1 links.
  Network net(make_tree({2, 2}), nc);
  for (std::size_t e = 0; e < net.endpoint_count(); ++e) {
    // Nearest peer of any endpoint is its same-switch sibling...
    EXPECT_EQ(net.min_latency_from(e, 0), nanoseconds(40));
    // ...while the nearest *cross-tier* peer sits behind two l1 hops.
    EXPECT_EQ(net.min_latency_from(e, 1), nanoseconds(340));
    // No route from anywhere crosses a level that does not exist.
    EXPECT_EQ(net.min_latency_from(e, 2), 0);
  }
  // The global min_cross_latency is the min over per-source floors.
  EXPECT_EQ(net.min_cross_latency(1), nanoseconds(340));
}

TEST(Network, MinLatencyFromOnALopsidedTree) {
  NetworkConfig nc;
  LinkParams l0;
  l0.hop_latency = nanoseconds(10);
  LinkParams l1;
  l1.hop_latency = nanoseconds(100);
  nc.level_params = {{0, l0}, {1, l1}};
  // Three switches of 3 endpoints: every endpoint's cheapest peer is
  // intra-switch (20), and the per-source cross floor (220) is the same
  // from every source by symmetry — but must be derived per endpoint by
  // the climb, not read off the global min.
  Network net(make_tree({3, 3}), nc);
  for (std::size_t e = 0; e < 9; ++e) {
    EXPECT_EQ(net.min_latency_from(e, 0), nanoseconds(20));
    EXPECT_EQ(net.min_latency_from(e, 1), nanoseconds(220));
  }
}

TEST(PgasSystem, PerPeerShardLookaheadMatchesTheRouteOracle) {
  PgasConfig pc;
  pc.nodes = 4;
  pc.workers_per_node = 2;
  PgasSystem pgas(pc);
  for (std::size_t from = 0; from < 4; ++from) {
    // The per-source floor out of any node is the cheapest of its
    // per-peer latencies — the exact relation the adaptive engine's
    // collapsed-horizon fallback relies on.
    SimDuration cheapest = 0;
    for (std::size_t to = 0; to < 4; ++to) {
      if (from == to) continue;
      const SimDuration pair = pgas.shard_lookahead(from, to);
      // Per-peer bounds can never undercut the global cross-node floor.
      EXPECT_GE(pair, pgas.shard_lookahead());
      if (cheapest == 0 || pair < cheapest) cheapest = pair;
    }
    EXPECT_EQ(pgas.shard_lookahead_floor(from), cheapest);
  }
}

TEST(PgasSystem, ShardLookaheadMatchesInterNodeTier) {
  PgasConfig pc;
  pc.nodes = 4;
  pc.workers_per_node = 2;
  PgasSystem pgas(pc);
  const SimDuration la = pgas.shard_lookahead();
  EXPECT_GT(la, 0);
  // A cross-node route pays at least one l1 hop on top of intra-node hops.
  EXPECT_GE(la, pc.l1_link.hop_latency);
  // And it is a true lower bound on the network's cross-tier latency.
  EXPECT_EQ(la, pgas.network().min_cross_latency(1));
}

TEST(PgasSystem, SingleNodeMachineHasNoCrossTraffic) {
  PgasConfig pc;
  pc.nodes = 1;
  pc.workers_per_node = 4;
  PgasSystem pgas(pc);
  EXPECT_EQ(pgas.shard_lookahead(), 0);
}

// --- mixed UNIMEM+UNILOGIC workload on ShardedRuntime -----------------------

// Per-node epoch generator: every epoch it issues node-local UNIMEM
// traffic, submits local tasks (software + fabric via the UNILOGIC pool),
// and forwards one task to another node through the engine mailboxes.
struct NodeGenerator {
  ShardedRuntime* rt = nullptr;
  std::size_t node = 0;
  std::size_t nodes = 0;
  std::size_t workers = 0;
  int epochs_left = 0;
  TaskId next_id = 0;
  Rng rng{0};
  GlobalAddress buf{};
  TraceHasher* hash = nullptr;
  const std::vector<KernelIR>* kernels = nullptr;

  Task make_task(SimTime release) {
    Task t;
    t.id = next_id++;
    const KernelIR& k = (*kernels)[rng.uniform_u64(kernels->size())];
    t.kernel = k.id;
    t.items = 2000 + rng.uniform_u64(8000);
    t.features.items = static_cast<double>(t.items);
    t.features.bytes =
        static_cast<double>(t.items * (k.bytes_in + k.bytes_out));
    t.home = WorkerCoord{0, static_cast<WorkerId>(rng.uniform_u64(workers))};
    t.release = release;
    return t;
  }

  void fire() {
    Simulator& sim = rt->shard(node);
    PgasSystem& pgas = rt->machine(node).pgas();
    // Node-local UNIMEM traffic (stays inside the shard's domain).
    const auto who =
        WorkerCoord{0, static_cast<WorkerId>(rng.uniform_u64(workers))};
    const auto ld = pgas.load(who, buf, 256, sim.now());
    const auto st = pgas.store(who, buf, 128, ld.finish);
    hash->mix(ld.finish);
    hash->mix(st.finish);
    // Local work for this node's scheduler / UNILOGIC pool.
    for (int i = 0; i < 2; ++i) rt->submit(node, make_task(sim.now()));
    // One cross-node forward through the SPSC mailboxes.
    if (nodes > 1) {
      const std::size_t to = (node + 1 + rng.uniform_u64(nodes - 1)) % nodes;
      rt->post_task(node, to, make_task(0));
    }
    if (--epochs_left > 0) {
      sim.schedule_after(microseconds(30), [this] { fire(); });
    }
  }
};

std::uint64_t sharded_runtime_hash(std::size_t threads,
                                   ShardedRuntime::Stats* stats_out = nullptr) {
  ShardedRuntimeConfig cfg;
  cfg.nodes = 8;
  cfg.workers_per_node = 2;
  cfg.threads = threads;
  cfg.runtime.placement = PlacementPolicy::kModelBased;
  cfg.runtime.share_fabric = true;
  cfg.runtime.distribution = DistributionPolicy::kLazyLocal;
  ShardedRuntime rt(cfg);
  const std::vector<KernelIR> kernels = {make_stencil5_kernel(),
                                         make_spmv_kernel()};
  for (const auto& k : kernels) rt.register_kernel(k, emit_variants(k, 2));

  std::vector<TraceHasher> hashes(cfg.nodes);
  std::vector<std::unique_ptr<NodeGenerator>> gens;
  for (std::size_t node = 0; node < cfg.nodes; ++node) {
    gens.push_back(std::make_unique<NodeGenerator>());
    NodeGenerator& g = *gens.back();
    g.rt = &rt;
    g.node = node;
    g.nodes = cfg.nodes;
    g.workers = cfg.workers_per_node;
    g.epochs_left = 6;
    g.next_id = 1 + node * 1000000;
    g.rng = Rng(0x5EED + node);
    g.buf = rt.machine(node).pgas().alloc(0, 0, kibibytes(64));
    g.hash = &hashes[node];
    g.kernels = &kernels;
    rt.shard(node).schedule_at(static_cast<SimTime>(1 + node),
                               [&g] { g.fire(); });
  }
  rt.run();

  TraceHasher combined;
  for (std::size_t node = 0; node < cfg.nodes; ++node) {
    combined.mix(hashes[node].h);
    for (const TaskResult& r : rt.runtime(node).results()) {
      combined.mix(r.id);
      combined.mix(r.started);
      combined.mix(r.finished);
      combined.mix(static_cast<std::uint64_t>(r.device));
      combined.mix(r.executed_on);
      combined.mix_double(r.energy);
    }
    combined.mix_double(rt.machine(node).total_energy());
  }
  const ShardedRuntime::Stats s = rt.stats();
  combined.mix(s.makespan);
  combined.mix(s.events);
  combined.mix(s.windows);
  combined.mix(s.cross_posts);
  if (stats_out != nullptr) *stats_out = s;
  return combined.h;
}

TEST(ShardedRuntime, MixedUnimemUnilogicWorkloadIdenticalAcrossThreads) {
  ShardedRuntime::Stats s1{};
  const std::uint64_t h1 = sharded_runtime_hash(1, &s1);
  const std::uint64_t h2 = sharded_runtime_hash(2);
  const std::uint64_t h8 = sharded_runtime_hash(8);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1, h8);
  // The workload really was mixed and really did cross node boundaries:
  // 8 nodes x 6 epochs x (2 local + 1 forwarded) tasks.
  EXPECT_EQ(s1.tasks, 8u * 6u * 3u);
  EXPECT_GT(s1.cross_posts, 0u);
  EXPECT_GT(s1.windows, 0u);
  EXPECT_GT(s1.makespan, 0u);
}

// --- run_until(): the epoch-pause primitive ---------------------------------

TEST(ShardedSimulator, RunUntilPausesAtTheExclusiveBoundary) {
  ShardedConfig sc;
  sc.shards = 2;
  sc.lookahead = 5;
  ShardedSimulator engine(sc);
  std::vector<int> fired(2, 0);
  for (std::size_t s = 0; s < 2; ++s) {
    for (SimTime t = 10; t <= 100; t += 10) {
      engine.shard(s).schedule_at(t, [&fired, s] { ++fired[s]; });
    }
  }
  // Exclusive bound: events at 10..40 run, the event at exactly 50 stays
  // pending — and there is still work, so the engine reports "not drained".
  EXPECT_FALSE(engine.run_until(50));
  EXPECT_EQ(fired[0], 4);
  EXPECT_EQ(fired[1], 4);
  // Re-pausing at the same bound is a no-op, not a re-execution.
  EXPECT_FALSE(engine.run_until(50));
  EXPECT_EQ(fired[0], 4);
  // A bound past the last event drains fully and says so.
  EXPECT_TRUE(engine.run_until(1000));
  EXPECT_EQ(fired[0], 10);
  EXPECT_EQ(fired[1], 10);
  EXPECT_EQ(engine.events_processed(), 20u);
}

TEST(ShardedSimulator, ControllerMayScheduleAtThePauseOnAnyShard) {
  ShardedConfig sc;
  sc.shards = 4;
  sc.lookahead = 5;
  ShardedSimulator engine(sc);
  std::vector<std::uint64_t> count(4, 0);
  for (std::size_t s = 0; s < 4; ++s) {
    engine.shard(s).schedule_at(3, [&count, s] { ++count[s]; });
  }
  // A far-out no-op keeps work pending through every pause we want to
  // observe (run_until reports drained as soon as all queues are empty).
  engine.shard(0).schedule_at(65, [] {});
  SimTime bound = 0;
  std::size_t pauses = 0;
  // Controller loop: at every pause, inject one event at the boundary on
  // a rotating shard (legal: nothing is running, and the boundary is at
  // or after every shard's clock). The injected event lands in the *next*
  // segment — the bound is exclusive.
  while (!engine.run_until(bound += 10)) {
    const std::size_t s = pauses % 4;
    engine.shard(s).schedule_at(bound, [&count, s] { ++count[s]; });
    ++pauses;
  }
  EXPECT_EQ(pauses, 6u);
  EXPECT_EQ(std::accumulate(count.begin(), count.end(), 0ull), 10ull);
}

// One segmented run with a mid-run controller: chains of self-scheduling
// events with deterministic cross-posts, paused every 17 ticks; at each
// pause the controller folds the (deterministic) per-shard counters into
// the hash and injects boundary events for the first few epochs. The
// final hash must be byte-identical across thread counts — run_until's
// pause is a consistent cut, never a function of the interleaving.
std::uint64_t segmented_run_hash(std::size_t threads) {
  ShardedConfig sc;
  sc.shards = 4;
  sc.lookahead = 7;
  sc.threads = threads;
  ShardedSimulator engine(sc);
  std::vector<TraceHasher> hashes(4);
  struct Chain {
    ShardedSimulator* eng;
    std::size_t shard;
    TraceHasher* hashes;
    int remaining;
    Rng rng{0};
    void fire() {
      Simulator& sim = eng->shard(shard);
      hashes[shard].mix(sim.now());
      if (remaining-- <= 0) return;
      if (rng.uniform_u64(3) == 0) {
        const std::size_t to = (shard + 1) % 4;
        TraceHasher* dest = &hashes[to];
        ShardedSimulator* e = eng;
        eng->post(shard, to, sim.now() + eng->lookahead() + rng.uniform_u64(11),
                  [e, to, dest] { dest->mix(e->shard(to).now()); });
      }
      sim.schedule_after(1 + rng.uniform_u64(13), [this] { fire(); });
    }
  };
  std::vector<std::unique_ptr<Chain>> chains;
  for (std::size_t s = 0; s < 4; ++s) {
    chains.push_back(std::make_unique<Chain>());
    Chain& c = *chains.back();
    c.eng = &engine;
    c.shard = s;
    c.hashes = hashes.data();
    c.remaining = 40;
    c.rng = Rng(0xC0DE + s);
    engine.shard(s).schedule_at(1 + static_cast<SimTime>(s), [&c] { c.fire(); });
  }
  TraceHasher controller;
  SimTime bound = 0;
  std::size_t epoch = 0;
  while (!engine.run_until(bound += 17)) {
    ++epoch;
    // Mid-run shard state is stable at the pause: fold it in.
    for (std::size_t s = 0; s < 4; ++s) {
      controller.mix(engine.shard(s).now());
      controller.mix(hashes[s].h);
    }
    if (epoch <= 4) {
      const std::size_t s = epoch % 4;
      engine.shard(s).schedule_at(bound + 1, [&hashes, &engine, s] {
        hashes[s].mix(engine.shard(s).now());
      });
    }
  }
  for (std::size_t s = 0; s < 4; ++s) controller.mix(hashes[s].h);
  controller.mix(engine.events_processed());
  return controller.h;
}

TEST(ShardedSimulator, SegmentedRunsAreByteIdenticalAcrossThreads) {
  const std::uint64_t h1 = segmented_run_hash(1);
  const std::uint64_t h2 = segmented_run_hash(2);
  const std::uint64_t h8 = segmented_run_hash(8);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1, h8);
}

TEST(ShardedRuntime, ForwardedTasksPayTheInterNodeLatency) {
  ShardedRuntimeConfig cfg;
  cfg.nodes = 4;
  cfg.workers_per_node = 2;
  ShardedRuntime rt(cfg);
  EXPECT_GT(rt.lookahead(), 0);
  for (std::size_t from = 0; from < 4; ++from) {
    for (std::size_t to = 0; to < 4; ++to) {
      if (from == to) continue;
      EXPECT_GE(rt.inter_node_latency(from, to), rt.lookahead());
    }
  }
}

}  // namespace
}  // namespace ecoscale
