// End-to-end fault injection & recovery: the live FaultInjector path
// (worker crashes, node loss, UNIMEM page failover, UNILOGIC dead-fabric
// fallback) plus deterministic regressions for the fixed analytic model
// (re-execution causality, lazy failure sampling) and the legacy
// failures_per_second path (wasted-energy accounting).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "hls/dse.h"
#include "obs/trace.h"
#include "runtime/resilience.h"
#include "runtime/scheduler.h"

namespace ecoscale {
namespace {

// --- live runtime rig -------------------------------------------------------

struct LiveRig {
  explicit LiveRig(const FaultConfig& faults,
                   double legacy_failures_per_second = 0.0) {
    MachineConfig mc;
    mc.nodes = 2;
    mc.workers_per_node = 4;
    machine = std::make_unique<Machine>(mc);
    sim = std::make_unique<Simulator>();
    RuntimeConfig rc;
    rc.placement = PlacementPolicy::kModelBased;
    rc.distribution = DistributionPolicy::kLazyLocal;
    rc.faults = faults;
    rc.failures_per_second = legacy_failures_per_second;
    runtime = std::make_unique<RuntimeSystem>(*machine, *sim, rc);
    kernel = make_montecarlo_kernel();
    runtime->register_kernel(kernel, emit_variants(kernel, 2));
  }

  /// Submit `n` deterministic mixed tasks (released over 3 ms) and run to
  /// completion.
  void run(std::size_t n) {
    Rng rng(5);
    for (TaskId i = 0; i < n; ++i) {
      Task t;
      t.id = i;
      t.kernel = kernel.id;
      t.items = 50000 + rng.uniform_u64(100000);
      t.features.items = static_cast<double>(t.items);
      t.home = WorkerCoord{static_cast<NodeId>(rng.uniform_u64(2)),
                           static_cast<WorkerId>(rng.uniform_u64(4))};
      t.release = rng.uniform_u64(milliseconds(3));
      runtime->submit(t);
    }
    runtime->run();
  }

  std::unique_ptr<Machine> machine;
  std::unique_ptr<Simulator> sim;
  std::unique_ptr<RuntimeSystem> runtime;
  KernelIR kernel;
};

FaultConfig crash_faults(double rate) {
  FaultConfig fc;
  fc.enabled = true;
  fc.worker_crash_per_second = rate;
  return fc;
}

TEST(ResilienceLive, CrashRecoveryCompletesAllTasks) {
  LiveRig rig(crash_faults(2000.0));
  rig.run(64);
  const auto stats = rig.runtime->stats();
  EXPECT_EQ(rig.runtime->results().size(), 64u);
  EXPECT_GT(rig.runtime->faults()->crashes(), 0u);
  EXPECT_GT(stats.worker_failures, 0u);
  EXPECT_GT(stats.reexecutions, 0u);
  // Destroyed in-flight progress is priced, not silently dropped.
  EXPECT_GT(stats.wasted_energy, 0.0);
}

TEST(ResilienceLive, DetectionRespectsHeartbeatTimeout) {
  FaultConfig fc = crash_faults(2000.0);
  LiveRig rig(fc);
  rig.run(64);
  const auto& log = rig.runtime->recovery_log();
  ASSERT_FALSE(log.empty());
  for (const auto& r : log) {
    // The runtime must not know of a crash before the heartbeat monitor
    // could have: detection is at least detect_timeout after the fact.
    EXPECT_GE(r.detected_at, r.crash_at + fc.detect_timeout);
    EXPECT_NE(r.requeued_to, r.worker);
  }
  EXPECT_GE(rig.runtime->stats().detections, log.size());
}

TEST(ResilienceLive, DeterministicForFixedSeed) {
  LiveRig a(crash_faults(2000.0));
  a.run(64);
  LiveRig b(crash_faults(2000.0));
  b.run(64);
  const auto sa = a.runtime->stats();
  const auto sb = b.runtime->stats();
  EXPECT_EQ(sa.makespan, sb.makespan);
  EXPECT_EQ(sa.worker_failures, sb.worker_failures);
  EXPECT_EQ(sa.detections, sb.detections);
  EXPECT_DOUBLE_EQ(sa.wasted_energy, sb.wasted_energy);
  EXPECT_EQ(a.runtime->recovery_log().size(), b.runtime->recovery_log().size());
}

TEST(ResilienceLive, NodeLossFailsOverToSurvivors) {
  FaultConfig fc;
  fc.enabled = true;
  fc.node_losses.push_back({/*node=*/1, /*at=*/milliseconds(1)});
  LiveRig rig(fc);
  rig.run(64);
  const auto stats = rig.runtime->stats();
  // Every task completes even though half the machine is gone for the
  // last two-thirds of the release window.
  EXPECT_EQ(rig.runtime->results().size(), 64u);
  EXPECT_EQ(rig.runtime->faults()->node_losses(), 1u);
  EXPECT_FALSE(rig.machine->health().node_up(1));
  EXPECT_TRUE(rig.machine->health().node_up(0));
  // All four lost workers are eventually declared dead.
  EXPECT_EQ(stats.detections, 4u);
}

TEST(ResilienceLive, ScriptedCrashFiresAtExactTimeThenRepairs) {
  // A scripted CrashEvent is the deterministic counterpart of the Poisson
  // chains: it takes the worker down at precisely `at` and (non-permanent)
  // brings it back exactly `repair_after` later. The litmus harness relies
  // on this to place a crash between two memory operations.
  MachineConfig mc;
  mc.nodes = 1;
  mc.workers_per_node = 2;
  Machine machine(mc);
  Simulator sim;
  FaultConfig fc;
  fc.enabled = true;
  fc.scripted_crashes.push_back(
      {/*worker=*/1, /*at=*/microseconds(7), /*permanent=*/false,
       /*repair_after=*/microseconds(3)});
  std::vector<std::pair<std::size_t, SimTime>> downs;
  std::vector<std::pair<std::size_t, SimTime>> ups;
  FaultInjector::Callbacks cb;
  cb.on_worker_down = [&](std::size_t w, SimTime at) {
    downs.emplace_back(w, at);
  };
  cb.on_worker_up = [&](std::size_t w, SimTime at) { ups.emplace_back(w, at); };
  cb.active = [] { return true; };
  FaultInjector inj(sim, machine, fc, cb);
  inj.arm();
  sim.run();
  ASSERT_EQ(downs.size(), 1u);
  EXPECT_EQ(downs[0].first, 1u);
  EXPECT_EQ(downs[0].second, microseconds(7));
  ASSERT_EQ(ups.size(), 1u);
  EXPECT_EQ(ups[0].first, 1u);
  EXPECT_EQ(ups[0].second, microseconds(10));  // exactly repair_after later
  EXPECT_TRUE(machine.health().up(1));
  EXPECT_EQ(inj.crashes(), 1u);
}

TEST(ResilienceLive, ScriptedPermanentCrashNeverRepairs) {
  MachineConfig mc;
  mc.nodes = 1;
  mc.workers_per_node = 2;
  Machine machine(mc);
  Simulator sim;
  FaultConfig fc;
  fc.enabled = true;
  fc.scripted_crashes.push_back(
      {/*worker=*/0, /*at=*/microseconds(5), /*permanent=*/true,
       /*repair_after=*/0});
  std::vector<std::pair<std::size_t, SimTime>> downs;
  bool repaired = false;
  FaultInjector::Callbacks cb;
  cb.on_worker_down = [&](std::size_t w, SimTime at) {
    downs.emplace_back(w, at);
  };
  cb.on_worker_up = [&](std::size_t, SimTime) { repaired = true; };
  cb.active = [] { return true; };
  FaultInjector inj(sim, machine, fc, cb);
  inj.arm();
  sim.run();  // drains: a permanent crash schedules no repair event
  ASSERT_EQ(downs.size(), 1u);
  EXPECT_EQ(downs[0].first, 0u);
  EXPECT_EQ(downs[0].second, microseconds(5));
  EXPECT_FALSE(repaired);
  EXPECT_FALSE(machine.health().up(0));
  EXPECT_TRUE(machine.health().up(1));  // the node itself stays reachable
  EXPECT_TRUE(machine.health().node_up(0));
}

#if !defined(ECO_TRACE_DISABLED)

std::size_t count_occurrences(const std::string& hay,
                              const std::string& needle) {
  std::size_t n = 0;
  for (auto pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(ResilienceLive, TraceFaultLifecycleIsBalanced) {
  auto& session = obs::TraceSession::instance();
  obs::TraceOptions opts;
  opts.categories = obs::cat_bit(obs::Cat::kFault) |
                    obs::cat_bit(obs::Cat::kDetect) |
                    obs::cat_bit(obs::Cat::kRetry) |
                    obs::cat_bit(obs::Cat::kFailover);
  opts.ring_capacity = std::size_t{1} << 14;
  opts.counter_sample_every = 1;
  session.start(opts);
  LiveRig rig(crash_faults(2000.0));
  rig.run(64);
  session.stop();
  std::ostringstream os;
  session.export_json(os);
  const std::string json = os.str();
  const auto stats = rig.runtime->stats();
  const std::uint64_t crashes = rig.runtime->faults()->crashes();
  ASSERT_GT(crashes, 0u);
  // Every injected crash leaves a crash marker and (non-permanent faults
  // only run here) a matching repair; every detection leaves a marker.
  EXPECT_EQ(count_occurrences(json, "\"name\":\"fault.crash\""), crashes);
  EXPECT_EQ(count_occurrences(json, "\"name\":\"fault.repair\""), crashes);
  EXPECT_EQ(count_occurrences(json, "\"name\":\"fault.detect\""),
            stats.detections);
}

#endif  // !ECO_TRACE_DISABLED

// --- UNIMEM dead-owner failover ---------------------------------------------

TEST(PgasFault, DeadOwnerRetriesThenRehomesPage) {
  MachineConfig mc;
  mc.nodes = 2;
  mc.workers_per_node = 4;
  Machine machine(mc);
  auto& pgas = machine.pgas();
  const GlobalAddress addr = pgas.alloc(/*node=*/1, /*worker=*/0, 4096);
  for (std::size_t w = 4; w < 8; ++w) machine.health().mark_down(w);

  const WorkerCoord reader{0, 0};
  const auto first = pgas.load(reader, addr, 64, 0);
  const auto& cfg = machine.config().pgas;
  // Bounded retries with linear backoff, then ownership failover.
  EXPECT_EQ(pgas.remote_retries(), cfg.fault_max_retries);
  EXPECT_EQ(pgas.page_failovers(), 1u);
  SimDuration retry_floor = 0;
  for (std::size_t a = 0; a < cfg.fault_max_retries; ++a) {
    retry_floor += cfg.fault_retry_timeout + a * cfg.fault_retry_backoff;
  }
  EXPECT_GE(first.finish, retry_floor);
  // The page now lives on the survivor: later accesses are plain local
  // loads, no further retries.
  const auto second = pgas.load(reader, addr, 64, first.finish);
  EXPECT_FALSE(second.remote);
  EXPECT_EQ(pgas.remote_retries(), cfg.fault_max_retries);
  EXPECT_EQ(pgas.page_failovers(), 1u);
}

// --- UNILOGIC dead-fabric fallback ------------------------------------------

TEST(PoolFault, DeadFabricTimesOutBlacklistsAndFallsBackLocal) {
  MachineConfig mc;
  mc.nodes = 1;
  mc.workers_per_node = 4;
  Machine machine(mc);
  auto& pool = machine.pool(0);
  const auto module = emit_variants(make_montecarlo_kernel(), 1).front();
  // Saturate the caller's own fabric so remote candidates win placement.
  ASSERT_TRUE(pool.invoke(0, module, 5'000'000, 0,
                          DispatchPolicy::kLocalOnly));
  for (std::size_t w = 1; w < 4; ++w) machine.health().mark_down(w);

  const auto r =
      pool.invoke(0, module, 100'000, 0, DispatchPolicy::kLeastLoaded);
  // The doorbells go unanswered: bounded remote attempts, blacklist, then
  // degrade to the caller's own (busy but alive) fabric. The call still
  // succeeds — a dead neighbour never loses the invocation.
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->executed_on, 0u);
  EXPECT_FALSE(r->remote);
  EXPECT_EQ(pool.failed_remote_attempts(), 2u);  // max attempts per call
  EXPECT_EQ(pool.local_fallbacks(), 1u);
  EXPECT_EQ(machine.health().blacklists(), 2u);
}

// --- analytic model regressions ---------------------------------------------

TEST(AnalyticResilience, ReexecutionStartsAfterDetectionPoint) {
  // Several idle-ish workers: before the fix, a re-queued crashed task
  // could restart on a free worker *before* its crash was detectable.
  std::vector<ResilientTask> tasks;
  for (std::uint64_t i = 0; i < 6; ++i) {
    tasks.push_back({i, milliseconds(1), 100.0});
  }
  ResilienceConfig cfg;
  cfg.workers = 4;
  cfg.failures_per_second = 2000.0;
  cfg.detect_timeout = microseconds(500);
  cfg.repair_time = microseconds(100);
  cfg.seed = 7;
  const auto out = run_with_failures(tasks, cfg);
  EXPECT_EQ(out.completed, tasks.size());
  ASSERT_GT(out.reexecutions, 0u);
  EXPECT_GT(out.first_crash, 0u);
  EXPECT_GE(out.earliest_reexec_start, out.first_crash + cfg.detect_timeout);
}

TEST(AnalyticResilience, LongCrashChainsOutliveOldSamplingHorizon) {
  // One worker, brutal crash rate: the crash/repair chain runs far past
  // 4x the serial time. The old implementation pre-sampled failures only
  // to that horizon (and ECO_CHECKed against passing it); lazy per-worker
  // sampling keeps injecting for as long as the run actually takes.
  std::vector<ResilientTask> tasks;
  for (std::uint64_t i = 0; i < 4; ++i) {
    tasks.push_back({i, microseconds(200), 100.0});
  }
  ResilienceConfig cfg;
  cfg.workers = 1;
  cfg.failures_per_second = 10000.0;
  cfg.seed = 3;
  const auto out = run_with_failures(tasks, cfg);
  EXPECT_EQ(out.completed, 4u);
  const SimDuration serial = 4 * microseconds(200);
  const SimTime old_horizon = 4 * serial + milliseconds(10);
  EXPECT_GT(out.makespan, old_horizon);
  EXPECT_GT(out.last_crash, static_cast<SimTime>(serial));
}

TEST(AnalyticResilience, CleanRunMatchesSerialSchedule) {
  std::vector<ResilientTask> tasks;
  for (std::uint64_t i = 0; i < 8; ++i) {
    tasks.push_back({i, microseconds(100), 100.0});
  }
  ResilienceConfig cfg;
  cfg.workers = 2;
  cfg.failures_per_second = 0.0;
  const auto out = run_with_failures(tasks, cfg);
  EXPECT_EQ(out.completed, 8u);
  EXPECT_EQ(out.failures, 0u);
  EXPECT_EQ(out.makespan, static_cast<SimTime>(4 * microseconds(100)));
  EXPECT_EQ(out.first_crash, 0u);
  EXPECT_EQ(out.earliest_reexec_start, 0u);
}

// --- legacy failures_per_second path ----------------------------------------

TEST(LegacyFailures, CrashedAttemptsChargeWastedEnergy) {
  FaultConfig off;
  LiveRig rig(off, /*legacy_failures_per_second=*/3000.0);
  rig.run(48);
  const auto stats = rig.runtime->stats();
  EXPECT_EQ(rig.runtime->results().size(), 48u);
  ASSERT_GT(stats.worker_failures, 0u);
  EXPECT_GT(stats.wasted_energy, 0.0);
}

TEST(LegacyFailures, CleanRunWastesNothing) {
  FaultConfig off;
  LiveRig rig(off, /*legacy_failures_per_second=*/0.0);
  rig.run(16);
  EXPECT_EQ(rig.runtime->stats().wasted_energy, 0.0);
}

}  // namespace
}  // namespace ecoscale
