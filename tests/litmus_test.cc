// Litmus harness tests (DESIGN.md §7.10): the oracle's allowed sets for
// the classic shapes, the exhaustive executor against the real
// PgasSystem, the sharded randomized executor's model conformance and
// its --sim-threads byte-identity contract.
#include <gtest/gtest.h>

#include <set>

#include "common/check.h"
#include "litmus/executor.h"
#include "litmus/oracle.h"
#include "litmus/program.h"
#include "litmus/sharded.h"

namespace ecoscale::litmus {
namespace {

const LitmusProgram& suite_program(const std::string& name) {
  static const std::vector<LitmusProgram> suite = standard_suite();
  for (const LitmusProgram& p : suite) {
    if (p.name == name) return p;
  }
  ECO_CHECK_MSG(false, "no suite program named " << name);
  __builtin_unreachable();
}

/// Build an outcome from observation values + (page, var) finals.
Outcome make_outcome(const LitmusProgram& p,
                     std::vector<std::uint64_t> observations,
                     std::vector<std::uint64_t> finals) {
  ECO_CHECK(observations.size() == p.observer_slots());
  ECO_CHECK(finals.size() == p.pages * kVarsPerPage);
  Outcome o = std::move(observations);
  o.insert(o.end(), finals.begin(), finals.end());
  return o;
}

// --- DSL -------------------------------------------------------------------

TEST(LitmusProgram, ValidateRejectsSharedNodes) {
  LitmusProgram p;
  p.name = "bad";
  p.nodes = 2;
  p.pages = 1;
  p.page_owner = {0};
  p.threads = {{0, {load(0, 0)}}, {0, {load(0, 0)}}};
  EXPECT_THROW(p.validate(), CheckError);
}

TEST(LitmusProgram, ValidateRejectsCrashOfThreadNode) {
  LitmusProgram p;
  p.name = "bad";
  p.nodes = 2;
  p.pages = 1;
  p.page_owner = {0};
  p.threads = {{0, {crash(1)}}, {1, {load(0, 0)}}};
  EXPECT_THROW(p.validate(), CheckError);
}

TEST(LitmusProgram, OutcomeLayout) {
  const LitmusProgram& sb = suite_program("sb_same_page");
  EXPECT_EQ(sb.observer_slots(), 2u);
  EXPECT_EQ(sb.outcome_size(), 2u + kVarsPerPage);
  EXPECT_EQ(sb.total_ops(), 4u);
}

// --- oracle ----------------------------------------------------------------

TEST(LitmusOracle, StoreBufferingSamePageForbidsBothZero) {
  const LitmusProgram& p = suite_program("sb_same_page");
  Oracle oracle(p);
  // One page, 4 ops interleaved: C(4,2) = 6 linearizations.
  EXPECT_EQ(oracle.linearizations(), 6u);
  // The classic forbidden outcome: both loads miss the other store.
  EXPECT_FALSE(oracle.allows(make_outcome(p, {0, 0}, {1, 1, 0, 0})));
  // Every weaker observation is allowed.
  EXPECT_TRUE(oracle.allows(make_outcome(p, {0, 1}, {1, 1, 0, 0})));
  EXPECT_TRUE(oracle.allows(make_outcome(p, {1, 0}, {1, 1, 0, 0})));
  EXPECT_TRUE(oracle.allows(make_outcome(p, {1, 1}, {1, 1, 0, 0})));
  // Final values are part of the outcome: dropping a store is forbidden.
  EXPECT_FALSE(oracle.allows(make_outcome(p, {1, 1}, {1, 0, 0, 0})));
}

TEST(LitmusOracle, StoreBufferingTwoPagesAllowsBothZero) {
  const LitmusProgram& p = suite_program("sb_two_pages");
  Oracle oracle(p);
  // Per-page independence: the SC-forbidden outcome is allowed here.
  EXPECT_TRUE(oracle.allows(
      make_outcome(p, {0, 0}, {1, 0, 0, 0, 1, 0, 0, 0})));
}

TEST(LitmusOracle, MessagePassingSamePageForbidsStaleData) {
  const LitmusProgram& p = suite_program("mp_same_page");
  Oracle oracle(p);
  // flag observed set but data stale: impossible within one page's order.
  EXPECT_FALSE(oracle.allows(make_outcome(p, {1, 0}, {1, 1, 0, 0})));
  EXPECT_TRUE(oracle.allows(make_outcome(p, {0, 0}, {1, 1, 0, 0})));
  EXPECT_TRUE(oracle.allows(make_outcome(p, {1, 1}, {1, 1, 0, 0})));
  EXPECT_TRUE(oracle.allows(make_outcome(p, {0, 1}, {1, 1, 0, 0})));
}

TEST(LitmusOracle, MessagePassingTwoPagesAllowsStaleData) {
  const LitmusProgram& p = suite_program("mp_two_pages");
  Oracle oracle(p);
  EXPECT_TRUE(oracle.allows(
      make_outcome(p, {1, 0}, {1, 0, 0, 0, 1, 0, 0, 0})));
}

TEST(LitmusOracle, AtomicIncrementsNeverLoseUpdates) {
  const LitmusProgram& p = suite_program("atomic_inc");
  Oracle oracle(p);
  // 3 single-op threads: 3! linearizations, old values a permutation of
  // {0, 1, 2}, final exactly 3.
  EXPECT_EQ(oracle.linearizations(), 6u);
  for (const Outcome& o : oracle.allowed()) {
    std::set<std::uint64_t> olds(o.begin(), o.begin() + 3);
    EXPECT_EQ(olds, (std::set<std::uint64_t>{0, 1, 2}));
    EXPECT_EQ(o[3], 3u);  // final v0
  }
  EXPECT_FALSE(oracle.allows(make_outcome(p, {0, 0, 1}, {2, 0, 0, 0})));
}

TEST(LitmusOracle, MigrationLoadsNeverRegress) {
  const LitmusProgram& p = suite_program("migration_inflight");
  Oracle oracle(p);
  // t2 loads twice; the page's total order makes regressions impossible.
  for (const Outcome& o : oracle.allowed()) {
    EXPECT_LE(o[1], o[2]) << format_outcome(p, o);  // t2.op0 <= t2.op1
    EXPECT_EQ(o[3], 2u) << format_outcome(p, o);    // final v0
  }
  EXPECT_FALSE(oracle.allows(make_outcome(p, {2, 2, 1}, {2, 0, 0, 0})));
}

TEST(LitmusOracle, FailoverPreservesProgramOrderAndFinalValue) {
  const LitmusProgram& p = suite_program("failover_lost_update");
  Oracle oracle(p);
  for (const Outcome& o : oracle.allowed()) {
    EXPECT_EQ(o[0], 1u) << format_outcome(p, o);  // t0 reads its own store
    EXPECT_EQ(o[2], 1u) << format_outcome(p, o);  // final v0 survives
  }
  // The lost-update outcome failover must never produce.
  EXPECT_FALSE(oracle.allows(make_outcome(p, {0, 0}, {0, 0, 0, 0})));
}

TEST(LitmusOracle, CheckOutcomesThrowsOnForbidden) {
  const LitmusProgram& p = suite_program("sb_same_page");
  Oracle oracle(p);
  const Outcome forbidden = make_outcome(p, {0, 0}, {1, 1, 0, 0});
  EXPECT_THROW(check_outcomes(oracle, {forbidden}, "test executor"),
               CheckError);
  // An allowed set passes silently.
  check_outcomes(oracle, {make_outcome(p, {1, 1}, {1, 1, 0, 0})}, "test");
}

// --- exhaustive executor (real PgasSystem) ---------------------------------

TEST(LitmusExhaustive, SuiteStaysWithinTheModel) {
  for (const LitmusProgram& p : standard_suite()) {
    Oracle oracle(p);
    const ExhaustiveResult res = check_exhaustive(p, oracle);
    EXPECT_GT(res.interleavings, 0u) << p.name;
    EXPECT_FALSE(res.outcomes.empty()) << p.name;
    // The observation hooks fire on every memory access of every run.
    EXPECT_GT(res.observed_accesses, 0u) << p.name;
  }
}

TEST(LitmusExhaustive, SpecificScheduleProducesExactOutcome) {
  const LitmusProgram& p = suite_program("sb_same_page");
  // Both stores, then both loads: each load sees the other's store.
  const Outcome o = run_schedule(p, {0, 1, 0, 1});
  EXPECT_EQ(o, make_outcome(p, {1, 1}, {1, 1, 0, 0}));
  // Fully serial t0 then t1: t0's load misses t1's store.
  const Outcome serial = run_schedule(p, {0, 0, 1, 1});
  EXPECT_EQ(serial, make_outcome(p, {0, 1}, {1, 1, 0, 0}));
}

TEST(LitmusExhaustive, MigrationExercisesOwnershipHooks) {
  const LitmusProgram& p = suite_program("migration_inflight");
  Oracle oracle(p);
  const ExhaustiveResult res = check_exhaustive(p, oracle);
  // Every interleaving migrates exactly once.
  EXPECT_EQ(res.ownership_changes, res.interleavings);
}

TEST(LitmusExhaustive, FailoverExercisesRetryAndRehomeHooks) {
  const LitmusProgram& p = suite_program("failover_lost_update");
  Oracle oracle(p);
  const ExhaustiveResult res = check_exhaustive(p, oracle);
  // Interleavings where the crash precedes a remote access pay the full
  // bounded-retry + failover path — visible through the observer.
  EXPECT_GT(res.retries, 0u);
  EXPECT_GT(res.ownership_changes, 0u);
}

TEST(LitmusExhaustive, RefusesOversizedPrograms) {
  LitmusProgram p;
  p.name = "huge";
  p.nodes = 4;
  p.pages = 1;
  p.page_owner = {0};
  for (NodeId n = 0; n < 4; ++n) {
    LitmusThread t;
    t.node = n;
    for (int i = 0; i < 4; ++i) t.ops.push_back(store(0, 0, 1));
    p.threads.push_back(std::move(t));
  }
  // 16! / (4!)^4 = 63,063,000 interleavings: exhaustive must refuse.
  EXPECT_THROW(run_exhaustive(p), CheckError);
}

// --- sharded randomized executor -------------------------------------------

RandomizedConfig quick_config(std::size_t sim_threads) {
  RandomizedConfig c;
  c.sim_threads = sim_threads;
  c.seed = 42;
  c.rounds = 24;
  return c;
}

TEST(LitmusSharded, SuiteStaysWithinTheModel) {
  for (const LitmusProgram& p : standard_suite()) {
    Oracle oracle(p);
    const RandomizedResult res =
        check_randomized(p, oracle, quick_config(1));
    EXPECT_FALSE(res.outcomes.empty()) << p.name;
    EXPECT_GT(res.events, 0u) << p.name;
  }
}

TEST(LitmusSharded, PerturbationExploresMultipleOutcomes) {
  const LitmusProgram& p = suite_program("sb_same_page");
  Oracle oracle(p);
  const RandomizedResult res = check_randomized(p, oracle, quick_config(1));
  // Timing jitter must actually reorder the racing accesses.
  EXPECT_GE(res.outcomes.size(), 2u);
}

TEST(LitmusSharded, MigrationReHomesThePage) {
  const LitmusProgram& p = suite_program("migration_inflight");
  Oracle oracle(p);
  const RandomizedResult res = check_randomized(p, oracle, quick_config(1));
  // One explicit migrate per round, no losses.
  EXPECT_EQ(res.migrations, 24u);
}

TEST(LitmusSharded, CrashDrivesNacksAndFailover) {
  const LitmusProgram& p = suite_program("failover_lost_update");
  Oracle oracle(p);
  const RandomizedResult res = check_randomized(p, oracle, quick_config(1));
  // With the crash racing the loads across 24 seeds, some schedules must
  // hit the dead owner and at least one must exhaust retries into
  // failover (deterministic for the fixed seed).
  EXPECT_GT(res.nacks, 0u);
  EXPECT_GT(res.failovers, 0u);
}

TEST(LitmusSharded, ByteIdenticalAcrossSimThreads) {
  for (const LitmusProgram& p : standard_suite()) {
    const RandomizedResult seq = run_randomized(p, quick_config(1));
    const RandomizedResult par = run_randomized(p, quick_config(4));
    EXPECT_EQ(seq.fingerprint, par.fingerprint) << p.name;
    EXPECT_EQ(seq.outcomes, par.outcomes) << p.name;
    EXPECT_EQ(seq.events, par.events) << p.name;
    EXPECT_EQ(seq.nacks, par.nacks) << p.name;
    EXPECT_EQ(seq.failovers, par.failovers) << p.name;
  }
}

TEST(LitmusSharded, ExecutorsAgreeWithEachOther) {
  // Every op in both executors completes before its thread's next op
  // issues, so for fault-free single-page programs the randomized
  // outcomes must be a subset of the exhaustive executor's interleaving
  // set (which itself sits inside the oracle's allowed set — the oracle
  // is strictly more permissive across pages).
  for (const char* name : {"sb_same_page", "mp_same_page", "atomic_inc"}) {
    const LitmusProgram& p = suite_program(name);
    Oracle oracle(p);
    const ExhaustiveResult exh = check_exhaustive(p, oracle);
    RandomizedConfig c = quick_config(1);
    c.rounds = 64;
    const RandomizedResult rand = check_randomized(p, oracle, c);
    for (const Outcome& o : rand.outcomes) {
      EXPECT_TRUE(exh.outcomes.count(o))
          << name << ": randomized-only outcome " << format_outcome(p, o);
    }
  }
}

}  // namespace
}  // namespace ecoscale::litmus
