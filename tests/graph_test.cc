#include <gtest/gtest.h>

#include <numeric>

#include "common/check.h"
#include "common/rng.h"
#include "mpi/graph_topology.h"

namespace ecoscale {
namespace {

TEST(GraphTopology, RingShape) {
  const auto g = make_ring_graph(6);
  EXPECT_EQ(g.size(), 6u);
  EXPECT_EQ(g.edge_count(), 12u);
  for (std::size_t r = 0; r < 6; ++r) {
    EXPECT_EQ(g.neighbors(r).size(), 2u);
  }
}

TEST(GraphTopology, StencilShape) {
  const auto g = make_stencil_graph(3, 3);
  EXPECT_EQ(g.size(), 9u);
  EXPECT_EQ(g.neighbors(4).size(), 4u);  // centre
  EXPECT_EQ(g.neighbors(0).size(), 2u);  // corner
}

TEST(GraphTopology, RejectsBadEdges) {
  std::vector<std::vector<GraphTopology::Edge>> adj(2);
  adj[0].push_back({5, 1.0});  // rank 5 does not exist
  EXPECT_THROW(GraphTopology(std::move(adj)), CheckError);
}

TEST(GraphTopology, MappingCostIdentityVsPenalty) {
  const auto g = make_ring_graph(8);
  std::vector<std::size_t> identity(8);
  std::iota(identity.begin(), identity.end(), 0);
  // All in one node: every edge costs 1.
  EXPECT_DOUBLE_EQ(g.mapping_cost(identity, 8), 16.0);
  // One rank per node: every edge pays the penalty.
  EXPECT_DOUBLE_EQ(g.mapping_cost(identity, 1, 10.0), 160.0);
}

TEST(GraphTopology, ReorderIsPermutation) {
  const auto g = make_irregular_graph(16, 3, 77);
  const auto perm = g.reorder(4);
  ASSERT_EQ(perm.size(), 16u);
  std::vector<bool> seen(16, false);
  for (const auto p : perm) {
    ASSERT_LT(p, 16u);
    EXPECT_FALSE(seen[p]);
    seen[p] = true;
  }
}

TEST(GraphTopology, ReorderNeverWorseOnStencil) {
  // A stencil whose natural order is scrambled: reordering should recover
  // locality (cost <= scrambled identity cost).
  const auto g = make_stencil_graph(4, 4);
  std::vector<std::size_t> scrambled(16);
  std::iota(scrambled.begin(), scrambled.end(), 0);
  Rng rng(5);
  rng.shuffle(scrambled);
  const double scrambled_cost = g.mapping_cost(scrambled, 4);
  const auto perm = g.reorder(4);
  const double reordered_cost = g.mapping_cost(perm, 4);
  EXPECT_LE(reordered_cost, scrambled_cost);
}

TEST(GraphTopology, ReorderHelpsIrregularGraphs) {
  const auto g = make_irregular_graph(32, 4, 99);
  std::vector<std::size_t> identity(32);
  std::iota(identity.begin(), identity.end(), 0);
  const auto perm = g.reorder(8);
  EXPECT_LE(g.mapping_cost(perm, 8), g.mapping_cost(identity, 8) * 1.05);
}

TEST(NeighborAlltoall, CompletesAndCountsOnlyInterNode) {
  MpiWorld world(8);
  const auto g = make_ring_graph(8);
  std::vector<SimTime> arrivals(8, 0);
  // All ranks in one node: zero MPI messages.
  std::vector<std::size_t> identity(8);
  std::iota(identity.begin(), identity.end(), 0);
  const auto all_local =
      neighbor_alltoall(world, g, kibibytes(4), arrivals, identity, 8);
  EXPECT_EQ(all_local.messages, 0u);
  // One rank per node: every edge is an MPI message.
  const auto all_remote =
      neighbor_alltoall(world, g, kibibytes(4), arrivals, identity, 1);
  EXPECT_EQ(all_remote.messages, g.edge_count());
  EXPECT_GT(all_remote.finish, all_local.finish);
}

TEST(NeighborAlltoall, ReorderingReducesMessages) {
  MpiWorld world(16);
  const auto g = make_stencil_graph(4, 4);
  std::vector<SimTime> arrivals(16, 0);
  std::vector<std::size_t> scrambled(16);
  std::iota(scrambled.begin(), scrambled.end(), 0);
  Rng rng(8);
  rng.shuffle(scrambled);
  const auto bad =
      neighbor_alltoall(world, g, kibibytes(1), arrivals, scrambled, 4);
  MpiWorld world2(16);
  const auto perm = g.reorder(4);
  const auto good =
      neighbor_alltoall(world2, g, kibibytes(1), arrivals, perm, 4);
  EXPECT_LE(good.messages, bad.messages);
}

}  // namespace
}  // namespace ecoscale
