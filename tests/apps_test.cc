#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "apps/cart.h"
#include "apps/kmeans.h"
#include "apps/linalg.h"
#include "apps/montecarlo.h"
#include "apps/sort.h"
#include "apps/stencil.h"
#include "common/check.h"

namespace ecoscale::apps {
using ecoscale::CheckError;
namespace {

// --- stencil --------------------------------------------------------------

TEST(Stencil, StepAveragesNeighbours) {
  Grid2D g(3, 3, 0.0);
  g.at(1, 0) = 4.0;
  g.at(1, 2) = 8.0;
  g.at(0, 1) = 2.0;
  g.at(2, 1) = 6.0;
  Grid2D out(3, 3, 0.0);
  const double res = jacobi_step(g, out);
  EXPECT_DOUBLE_EQ(out.at(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(res, 5.0);
}

TEST(Stencil, SolveConvergesToBoundaryValue) {
  Grid2D g(16, 16, 0.0);
  // Hot boundary everywhere: interior must converge toward 1.
  for (std::size_t x = 0; x < 16; ++x) {
    g.at(x, 0) = 1.0;
    g.at(x, 15) = 1.0;
  }
  for (std::size_t y = 0; y < 16; ++y) {
    g.at(0, y) = 1.0;
    g.at(15, y) = 1.0;
  }
  const std::size_t iters = jacobi_solve(g, 1e-7, 20000);
  EXPECT_LT(iters, 20000u);
  EXPECT_NEAR(g.at(8, 8), 1.0, 1e-4);
}

TEST(Stencil, ResidualMonotonicallyUseful) {
  Grid2D g(12, 12, 0.0);
  g.at(5, 5) = 100.0;
  Grid2D tmp = g;
  const double r1 = jacobi_step(g, tmp);
  Grid2D tmp2 = tmp;
  const double r2 = jacobi_step(tmp, tmp2);
  EXPECT_LT(r2, r1);
}

TEST(Stencil, HaloBytesFavourSquareTiles) {
  // 2-D (4×4) decomposition cuts less halo than 1-D (16×1) for a square
  // grid — the locality argument behind hierarchical partitioning.
  const auto square = halo_bytes_per_sweep(1024, 1024, 4, 4);
  const auto strip = halo_bytes_per_sweep(1024, 1024, 16, 1);
  EXPECT_LT(square, strip);
}

TEST(Stencil, GridBoundsChecked) {
  Grid2D g(4, 4);
  EXPECT_THROW(g.at(4, 0), CheckError);
  EXPECT_THROW(Grid2D(2, 2), CheckError);
}

// --- Monte Carlo -------------------------------------------------------------

TEST(MonteCarlo, ConvergesToBlackScholes) {
  OptionParams p;
  const double exact = black_scholes_call(p);
  const auto mc = price_european_call(p, 200000, 42);
  EXPECT_NEAR(mc.price, exact, 4.0 * mc.std_error + 0.01);
  EXPECT_LT(mc.std_error, 0.1);
}

TEST(MonteCarlo, StdErrorShrinksWithPaths) {
  OptionParams p;
  const auto small = price_european_call(p, 1000, 7);
  const auto big = price_european_call(p, 64000, 7);
  EXPECT_LT(big.std_error, small.std_error);
}

TEST(MonteCarlo, Deterministic) {
  OptionParams p;
  const auto a = price_european_call(p, 5000, 11);
  const auto b = price_european_call(p, 5000, 11);
  EXPECT_DOUBLE_EQ(a.price, b.price);
}

TEST(MonteCarlo, DeepInTheMoneyNearIntrinsic) {
  OptionParams p;
  p.spot = 200.0;
  p.strike = 100.0;
  const auto mc = price_european_call(p, 100000, 3);
  const double intrinsic =
      p.spot - p.strike * std::exp(-p.rate * p.maturity);
  EXPECT_NEAR(mc.price, intrinsic, 2.0);
}

TEST(MonteCarlo, AsianBelowEuropean) {
  OptionParams p;
  const auto euro = price_european_call(p, 50000, 5);
  const auto asian = price_asian_call(p, 50000, 16, 5);
  // Averaging reduces volatility: the Asian call is cheaper.
  EXPECT_LT(asian.price, euro.price);
}

// --- CART ----------------------------------------------------------------------

TEST(Cart, BlobsAreLearnable) {
  const auto data = make_blobs(600, 6, 3, 42);
  const auto tree = build_tree(data);
  EXPECT_GT(accuracy(*tree, data), 0.85);
}

TEST(Cart, SplitSeparatesObviousData) {
  Dataset d;
  d.features = 1;
  d.classes = 2;
  for (int i = 0; i < 10; ++i) {
    d.rows.push_back({static_cast<double>(i)});
    d.labels.push_back(i < 5 ? 0 : 1);
  }
  std::vector<std::size_t> rows(10);
  for (std::size_t i = 0; i < 10; ++i) rows[i] = i;
  const auto split = best_split(d, rows);
  ASSERT_TRUE(split.valid);
  EXPECT_EQ(split.feature, 0u);
  EXPECT_NEAR(split.threshold, 4.5, 1e-9);
  EXPECT_NEAR(split.gini, 0.0, 1e-9);
}

TEST(Cart, NoSplitOnPureNode) {
  Dataset d;
  d.features = 2;
  d.classes = 2;
  for (int i = 0; i < 6; ++i) {
    d.rows.push_back({1.0, 2.0});
    d.labels.push_back(0);
  }
  std::vector<std::size_t> rows{0, 1, 2, 3, 4, 5};
  const auto split = best_split(d, rows);
  EXPECT_FALSE(split.valid);  // identical features: nothing to split on
}

TEST(Cart, DepthLimitRespected) {
  const auto data = make_blobs(400, 4, 2, 1);
  CartConfig cfg;
  cfg.max_depth = 1;
  const auto stump = build_tree(data, cfg);
  if (!stump->leaf) {
    EXPECT_TRUE(stump->left->leaf);
    EXPECT_TRUE(stump->right->leaf);
  }
}

TEST(Cart, PredictIsTotal) {
  const auto data = make_blobs(100, 3, 2, 9);
  const auto tree = build_tree(data);
  for (const auto& row : data.rows) {
    const int label = predict(*tree, row);
    EXPECT_GE(label, 0);
    EXPECT_LT(label, data.classes);
  }
}

// --- sort -------------------------------------------------------------------------

TEST(Sort, SampleSortProducesSortedOutput) {
  const auto keys = make_keys(10000, 77);
  const auto trace = sample_sort(keys, 4);
  ASSERT_EQ(trace.sorted.size(), keys.size());
  EXPECT_TRUE(std::is_sorted(trace.sorted.begin(), trace.sorted.end()));
  auto ref = keys;
  std::sort(ref.begin(), ref.end());
  EXPECT_EQ(trace.sorted, ref);
}

TEST(Sort, SingleRankNoTraffic) {
  const auto keys = make_keys(1000, 3);
  const auto trace = sample_sort(keys, 1);
  EXPECT_EQ(trace.alltoall_bytes, 0u);
  EXPECT_TRUE(std::is_sorted(trace.sorted.begin(), trace.sorted.end()));
}

TEST(Sort, TrafficScalesWithRanks) {
  const auto keys = make_keys(20000, 5);
  const auto t2 = sample_sort(keys, 2);
  const auto t8 = sample_sort(keys, 8);
  EXPECT_GT(t8.alltoall_bytes, t2.alltoall_bytes);
}

TEST(Sort, PartitionRespectsSplitters) {
  const std::vector<std::uint64_t> keys{5, 10, 15, 20, 25};
  const std::vector<std::uint64_t> splitters{10, 20};
  const auto buckets = partition_keys(keys, splitters);
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0], (std::vector<std::uint64_t>{5, 10}));
  EXPECT_EQ(buckets[1], (std::vector<std::uint64_t>{15, 20}));
  EXPECT_EQ(buckets[2], (std::vector<std::uint64_t>{25}));
}

TEST(Sort, SplittersRoughlyBalance) {
  const auto keys = make_keys(40000, 13);
  const auto trace = sample_sort(keys, 8);
  // With uniform keys and regular sampling the largest bucket should not
  // exceed twice the ideal share.
  EXPECT_EQ(trace.local_sort_keys, keys.size());
}

// --- k-means -----------------------------------------------------------------------

TEST(Kmeans, RecoversWellSeparatedClusters) {
  const auto points = make_clustered_points(600, 3, 4, 11);
  const auto r = kmeans(points, 4, 100, 11);
  EXPECT_LT(r.iterations, 100u);
  // With blobs of sigma 1 around lattice centres >= 10 apart, the average
  // squared distance to the assigned centroid is ~dims.
  EXPECT_LT(r.inertia / 600.0, 2.0 * 3.0);
  // Every cluster is used.
  std::vector<int> counts(4, 0);
  for (const int a : r.assignment) ++counts[static_cast<std::size_t>(a)];
  for (const int c : counts) EXPECT_GT(c, 0);
}

TEST(Kmeans, Deterministic) {
  const auto points = make_clustered_points(200, 2, 3, 5);
  const auto a = kmeans(points, 3, 50, 9);
  const auto b = kmeans(points, 3, 50, 9);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(Kmeans, KEqualsOneGivesCentroidAtMean) {
  const auto points = make_clustered_points(100, 2, 1, 3);
  const auto r = kmeans(points, 1, 50, 1);
  double mx = 0.0;
  double my = 0.0;
  for (const auto& p : points) {
    mx += p[0];
    my += p[1];
  }
  EXPECT_NEAR(r.centroids[0][0], mx / 100.0, 1e-9);
  EXPECT_NEAR(r.centroids[0][1], my / 100.0, 1e-9);
}

TEST(Kmeans, MoreClustersNeverWorseInertia) {
  const auto points = make_clustered_points(300, 2, 4, 7);
  const auto k2 = kmeans(points, 2, 100, 7);
  const auto k4 = kmeans(points, 4, 100, 7);
  EXPECT_LE(k4.inertia, k2.inertia);
}

// --- linear algebra ---------------------------------------------------------------

TEST(Linalg, MatmulIdentity) {
  const std::size_t n = 8;
  std::vector<double> a(n * n, 0.0);
  std::vector<double> b(n * n);
  for (std::size_t i = 0; i < n; ++i) a[i * n + i] = 1.0;
  for (std::size_t i = 0; i < n * n; ++i) b[i] = static_cast<double>(i);
  std::vector<double> c;
  matmul(a, b, c, n, n, n);
  EXPECT_EQ(c, b);
}

TEST(Linalg, BlockedMatchesNaive) {
  const std::size_t m = 13, k = 7, n = 11;  // awkward sizes
  std::vector<double> a(m * k);
  std::vector<double> b(k * n);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = 0.01 * double(i) - 0.3;
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = 0.02 * double(i) + 0.1;
  std::vector<double> c1;
  std::vector<double> c2;
  matmul(a, b, c1, m, k, n);
  matmul_blocked(a, b, c2, m, k, n, 4);
  ASSERT_EQ(c1.size(), c2.size());
  for (std::size_t i = 0; i < c1.size(); ++i) {
    EXPECT_NEAR(c1[i], c2[i], 1e-9);
  }
}

TEST(Linalg, SparseMatrixWellFormed) {
  const auto m = make_sparse(50, 40, 5, 21);
  EXPECT_EQ(m.row_ptr.size(), 51u);
  EXPECT_EQ(m.nnz(), m.col_idx.size());
  for (std::size_t r = 0; r < m.rows; ++r) {
    for (std::size_t i = m.row_ptr[r]; i + 1 < m.row_ptr[r + 1]; ++i) {
      EXPECT_LT(m.col_idx[i], m.col_idx[i + 1]);  // sorted per row
    }
  }
}

TEST(Linalg, SpmvMatchesDense) {
  const auto m = make_sparse(20, 20, 4, 33);
  std::vector<double> x(20);
  for (std::size_t i = 0; i < 20; ++i) x[i] = 0.1 * double(i) - 1.0;
  const auto y = spmv(m, x);
  // Dense reference.
  std::vector<double> dense(20 * 20, 0.0);
  for (std::size_t r = 0; r < 20; ++r) {
    for (std::size_t i = m.row_ptr[r]; i < m.row_ptr[r + 1]; ++i) {
      dense[r * 20 + m.col_idx[i]] = m.values[i];
    }
  }
  for (std::size_t r = 0; r < 20; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 20; ++c) sum += dense[r * 20 + c] * x[c];
    EXPECT_NEAR(y[r], sum, 1e-9);
  }
}

}  // namespace
}  // namespace ecoscale::apps
