#include <gtest/gtest.h>

#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "sim/server.h"
#include "sim/simulator.h"
#include "sim/timeline.h"

namespace ecoscale {
namespace {

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(300, [&] { order.push_back(3); });
  sim.schedule_at(100, [&] { order.push_back(1); });
  sim.schedule_at(200, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 300u);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(50, [&] { order.push_back(1); });
  sim.schedule_at(50, [&] { order.push_back(2); });
  sim.schedule_at(50, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.schedule_at(10, [&] {
    times.push_back(sim.now());
    sim.schedule_after(5, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(Simulator, RejectsPastEvents) {
  Simulator sim;
  sim.schedule_at(100, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(50, [] {}), CheckError);
}

TEST(Simulator, RunUntilAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(100, [&] { ++fired; });
  sim.schedule_at(300, [&] { ++fired; });
  EXPECT_TRUE(sim.run_until(200));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 200u);
  EXPECT_FALSE(sim.run_until(400));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, IdleWhenEmpty) {
  Simulator sim;
  EXPECT_TRUE(sim.idle());
  EXPECT_FALSE(sim.step());
}

TEST(Timeline, NoContentionStartsAtReady) {
  Timeline tl;
  EXPECT_EQ(tl.reserve(100, 50), 100u);
  EXPECT_EQ(tl.next_free(), 150u);
}

TEST(Timeline, ContentionSerializes) {
  Timeline tl;
  tl.reserve(0, 100);
  EXPECT_EQ(tl.reserve(10, 100), 100u);  // waits for the first
  EXPECT_EQ(tl.reserve(500, 10), 500u);  // idle gap, starts at ready
  EXPECT_EQ(tl.busy_time(), 210u);
  EXPECT_EQ(tl.reservations(), 3u);
}

TEST(Timeline, ReserveUntilReturnsCompletion) {
  Timeline tl;
  EXPECT_EQ(tl.reserve_until(100, 25), 125u);
}

TEST(Timeline, Utilization) {
  Timeline tl;
  tl.reserve(0, 500);
  EXPECT_DOUBLE_EQ(tl.utilization(1000), 0.5);
  EXPECT_DOUBLE_EQ(tl.utilization(0), 0.0);
}

TEST(Timeline, ResetClearsState) {
  Timeline tl;
  tl.reserve(0, 100);
  tl.reset();
  EXPECT_EQ(tl.next_free(), 0u);
  EXPECT_EQ(tl.busy_time(), 0u);
}

TEST(CalendarTimeline, BackfillsGaps) {
  CalendarTimeline tl;
  // A future reservation must not block an earlier-ready one.
  EXPECT_EQ(tl.reserve(1000, 100), 1000u);
  EXPECT_EQ(tl.reserve(0, 100), 0u);  // fits in the gap before 1000
  EXPECT_EQ(tl.reserve(0, 950), 1100u);  // too big for [100,1000): after
  EXPECT_EQ(tl.busy_time(), 1150u);
}

TEST(CalendarTimeline, ExactGapFit) {
  CalendarTimeline tl;
  tl.reserve(0, 100);     // [0,100)
  tl.reserve(200, 100);   // [200,300)
  EXPECT_EQ(tl.reserve(0, 100), 100u);  // exactly fills [100,200)
  EXPECT_EQ(tl.reserve(0, 1), 300u);    // nothing left before 300
}

TEST(CalendarTimeline, OverlappingReadySlidesForward) {
  CalendarTimeline tl;
  tl.reserve(0, 100);
  EXPECT_EQ(tl.reserve(50, 10), 100u);  // ready inside a busy interval
}

TEST(CalendarTimeline, ZeroServiceIsFree) {
  CalendarTimeline tl;
  tl.reserve(0, 100);
  EXPECT_EQ(tl.reserve(50, 0), 50u);
}

TEST(CalendarTimeline, MatchesTimelineForInOrderLoads) {
  // When reservations arrive in nondecreasing ready order with no gaps,
  // the calendar behaves like the plain FIFO timeline.
  Timeline fifo;
  CalendarTimeline cal;
  Rng rng(3);
  SimTime ready = 0;
  for (int i = 0; i < 200; ++i) {
    ready += rng.uniform_u64(50);
    const SimDuration service = 1 + rng.uniform_u64(30);
    EXPECT_EQ(fifo.reserve(ready, service), cal.reserve(ready, service));
  }
  EXPECT_EQ(fifo.busy_time(), cal.busy_time());
}

TEST(Server, ProcessesFifo) {
  Simulator sim;
  Server server(sim, "s");
  std::vector<SimTime> finishes;
  server.submit(100, [&](SimTime t) { finishes.push_back(t); });
  server.submit(50, [&](SimTime t) { finishes.push_back(t); });
  sim.run();
  EXPECT_EQ(finishes, (std::vector<SimTime>{100, 150}));
  EXPECT_EQ(server.completed(), 2u);
  EXPECT_EQ(server.busy_time(), 150u);
}

TEST(Server, QueueLengthTracksBacklog) {
  Simulator sim;
  Server server(sim, "s");
  server.submit(100, nullptr);
  server.submit(100, nullptr);
  server.submit(100, nullptr);
  EXPECT_EQ(server.queue_length(), 3u);
  sim.run();
  EXPECT_EQ(server.queue_length(), 0u);
}

TEST(Server, CompletionCanSubmitMore) {
  Simulator sim;
  Server server(sim, "s");
  int chain = 0;
  std::function<void(SimTime)> next = [&](SimTime) {
    if (++chain < 3) server.submit(10, next);
  };
  server.submit(10, next);
  sim.run();
  EXPECT_EQ(chain, 3);
  EXPECT_EQ(sim.now(), 30u);
}

TEST(Server, SubmittedAfterIdleResumesAtCurrentTime) {
  Simulator sim;
  Server server(sim, "s");
  SimTime second_finish = 0;
  server.submit(10, nullptr);
  sim.run();
  sim.schedule_at(100, [&] {
    server.submit(5, [&](SimTime t) { second_finish = t; });
  });
  sim.run();
  EXPECT_EQ(second_finish, 105u);
}

}  // namespace
}  // namespace ecoscale
