#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "sim/inline_action.h"
#include "sim/server.h"
#include "sim/simulator.h"
#include "sim/timeline.h"

namespace ecoscale {
namespace {

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(300, [&] { order.push_back(3); });
  sim.schedule_at(100, [&] { order.push_back(1); });
  sim.schedule_at(200, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 300u);
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(50, [&] { order.push_back(1); });
  sim.schedule_at(50, [&] { order.push_back(2); });
  sim.schedule_at(50, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.schedule_at(10, [&] {
    times.push_back(sim.now());
    sim.schedule_after(5, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(Simulator, RejectsPastEvents) {
  Simulator sim;
  sim.schedule_at(100, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(50, [] {}), CheckError);
}

TEST(Simulator, RunUntilAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(100, [&] { ++fired; });
  sim.schedule_at(300, [&] { ++fired; });
  EXPECT_TRUE(sim.run_until(200));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 200u);
  EXPECT_FALSE(sim.run_until(400));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, IdleWhenEmpty) {
  Simulator sim;
  EXPECT_TRUE(sim.idle());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, PendingEventsTracksQueueDepth) {
  Simulator sim;
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.schedule_at(10, [] {});
  sim.schedule_at(20, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.step();
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, EventsPerSecondCounter) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.events_per_second(), 0.0);
  for (int i = 0; i < 10000; ++i) {
    sim.schedule_at(static_cast<SimTime>(i), [] {});
  }
  sim.run();
  EXPECT_EQ(sim.events_processed(), 10000u);
  EXPECT_GT(sim.events_per_second(), 0.0);
  EXPECT_GT(sim.wall_time_ns(), 0u);
}

// FNV-1a over the executed (time, counter) trace.
struct TraceHasher {
  std::uint64_t h = 1469598103934665603ull;
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
};

std::uint64_t trace_hash_workload() {
  TraceHasher hash;
  Simulator sim;
  Rng rng(0xD5EED);
  std::uint64_t executed = 0;
  std::function<void()> tick = [&] {
    hash.mix(sim.now());
    hash.mix(executed++);
    if (executed < 50000) {
      const int fan = 1 + static_cast<int>(rng.uniform_u64(2));
      for (int i = 0; i < fan; ++i) {
        sim.schedule_after(rng.uniform_u64(1000), [&] {
          hash.mix(sim.now());
          hash.mix(executed++);
        });
      }
      sim.schedule_after(1 + rng.uniform_u64(100), tick);
    }
  };
  sim.schedule_at(0, tick);
  sim.run();
  EXPECT_EQ(executed, 50020u);
  return hash.h;
}

// Determinism regression lock: a randomized self-rescheduling workload must
// execute in exactly the same (time, sequence) order as it did on the
// pre-InlineAction kernel (std::function + std::priority_queue). The
// constant below was produced by that kernel; any queue rework that breaks
// tie-breaking or event ordering changes the hash.
TEST(Simulator, DeterministicTraceMatchesSeedKernel) {
  EXPECT_EQ(trace_hash_workload(), 0x45172e9a02a00b3eull);
}

TEST(Simulator, TraceIsReproducibleAcrossRuns) {
  EXPECT_EQ(trace_hash_workload(), trace_hash_workload());
}

// Backlogs past the sorted-run threshold are drained through a different
// code path (one sort + pop_back instead of heap sifts); the execution
// order must still be exactly (time, then insertion order).
TEST(Simulator, LargeBacklogRunsInScheduleOrder) {
  constexpr int kEvents = 20000;  // > sorted-run conversion threshold
  Simulator sim;
  Rng rng(99);
  std::vector<std::pair<SimTime, int>> expected;
  expected.reserve(kEvents);
  std::vector<std::pair<SimTime, int>> executed;
  executed.reserve(kEvents);
  for (int i = 0; i < kEvents; ++i) {
    const SimTime t = rng.uniform_u64(512);  // dense: many exact ties
    expected.emplace_back(t, i);
    sim.schedule_at(t, [&executed, &sim, i] {
      executed.emplace_back(sim.now(), i);
    });
  }
  std::stable_sort(
      expected.begin(), expected.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  sim.run();
  EXPECT_EQ(executed, expected);
}

// New events scheduled while a converted backlog drains land in the live
// heap; pops must interleave the two structures in exact time order.
TEST(Simulator, BacklogDrainInterleavesWithFreshEvents) {
  constexpr int kEvents = 20000;
  Simulator sim;
  Rng rng(7);
  std::vector<SimTime> times;
  times.reserve(2 * kEvents);
  for (int i = 0; i < kEvents; ++i) {
    const SimTime t = 10 * rng.uniform_u64(10000);
    sim.schedule_at(t, [&sim, &times] {
      times.push_back(sim.now());
      // Immediate follow-up: must run before any later backlog event.
      sim.schedule_after(1, [&sim, &times] { times.push_back(sim.now()); });
    });
  }
  sim.run();
  ASSERT_EQ(times.size(), 2u * kEvents);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
}

// --- InlineAction ---------------------------------------------------------

TEST(InlineAction, InvokesSmallInlineCapture) {
  int hits = 0;
  InlineAction a([&hits] { ++hits; });
  EXPECT_TRUE(static_cast<bool>(a));
  a();
  EXPECT_EQ(hits, 1);
}

TEST(InlineAction, MovePreservesCallableAndEmptiesSource) {
  int hits = 0;
  InlineAction a([&hits] { ++hits; });
  InlineAction b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  b();
  EXPECT_EQ(hits, 1);
  InlineAction c;
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 2);
}

TEST(InlineAction, LargeCaptureSpillsToPoolAndStillRuns) {
  std::array<std::uint64_t, 20> payload{};  // 160 bytes > kInlineBytes
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = i;
  std::uint64_t sum = 0;
  InlineAction a([payload, &sum] {
    for (const auto v : payload) sum += v;
  });
  InlineAction b(std::move(a));  // pointer steal, not a copy
  b();
  EXPECT_EQ(sum, 190u);
}

TEST(InlineAction, DestroysCaptureExactlyOnce) {
  struct Probe {
    int* dtors;
    explicit Probe(int* d) : dtors(d) {}
    Probe(const Probe& o) = default;
    ~Probe() { ++*dtors; }
  };
  int dtors = 0;
  {
    Probe p(&dtors);
    InlineAction a([p] {});
    const int after_capture = dtors;
    InlineAction b(std::move(a));
    b();
    // Moving must not leak or double-destroy: exactly one live payload.
    EXPECT_GE(dtors, after_capture);
  }
  // p + the captured copy (and any intermediates) are all gone.
  EXPECT_GT(dtors, 0);
}

TEST(InlineAction, InvokingEmptyActionThrows) {
  InlineAction a;
  EXPECT_THROW(a(), CheckError);
}

TEST(Timeline, NoContentionStartsAtReady) {
  Timeline tl;
  EXPECT_EQ(tl.reserve(100, 50), 100u);
  EXPECT_EQ(tl.next_free(), 150u);
}

TEST(Timeline, ContentionSerializes) {
  Timeline tl;
  tl.reserve(0, 100);
  EXPECT_EQ(tl.reserve(10, 100), 100u);  // waits for the first
  EXPECT_EQ(tl.reserve(500, 10), 500u);  // idle gap, starts at ready
  EXPECT_EQ(tl.busy_time(), 210u);
  EXPECT_EQ(tl.reservations(), 3u);
}

TEST(Timeline, ReserveUntilReturnsCompletion) {
  Timeline tl;
  EXPECT_EQ(tl.reserve_until(100, 25), 125u);
}

TEST(Timeline, Utilization) {
  Timeline tl;
  tl.reserve(0, 500);
  EXPECT_DOUBLE_EQ(tl.utilization(1000), 0.5);
  EXPECT_DOUBLE_EQ(tl.utilization(0), 0.0);
}

TEST(Timeline, ResetClearsState) {
  Timeline tl;
  tl.reserve(0, 100);
  tl.reset();
  EXPECT_EQ(tl.next_free(), 0u);
  EXPECT_EQ(tl.busy_time(), 0u);
}

TEST(CalendarTimeline, BackfillsGaps) {
  CalendarTimeline tl;
  // A future reservation must not block an earlier-ready one.
  EXPECT_EQ(tl.reserve(1000, 100), 1000u);
  EXPECT_EQ(tl.reserve(0, 100), 0u);  // fits in the gap before 1000
  EXPECT_EQ(tl.reserve(0, 950), 1100u);  // too big for [100,1000): after
  EXPECT_EQ(tl.busy_time(), 1150u);
}

TEST(CalendarTimeline, ExactGapFit) {
  CalendarTimeline tl;
  tl.reserve(0, 100);     // [0,100)
  tl.reserve(200, 100);   // [200,300)
  EXPECT_EQ(tl.reserve(0, 100), 100u);  // exactly fills [100,200)
  EXPECT_EQ(tl.reserve(0, 1), 300u);    // nothing left before 300
}

TEST(CalendarTimeline, OverlappingReadySlidesForward) {
  CalendarTimeline tl;
  tl.reserve(0, 100);
  EXPECT_EQ(tl.reserve(50, 10), 100u);  // ready inside a busy interval
}

TEST(CalendarTimeline, ZeroServiceIsFree) {
  CalendarTimeline tl;
  tl.reserve(0, 100);
  EXPECT_EQ(tl.reserve(50, 0), 50u);
}

TEST(CalendarTimeline, MatchesTimelineForInOrderLoads) {
  // When reservations arrive in nondecreasing ready order with no gaps,
  // the calendar behaves like the plain FIFO timeline.
  Timeline fifo;
  CalendarTimeline cal;
  Rng rng(3);
  SimTime ready = 0;
  for (int i = 0; i < 200; ++i) {
    ready += rng.uniform_u64(50);
    const SimDuration service = 1 + rng.uniform_u64(30);
    EXPECT_EQ(fifo.reserve(ready, service), cal.reserve(ready, service));
  }
  EXPECT_EQ(fifo.busy_time(), cal.busy_time());
}

TEST(Server, ProcessesFifo) {
  Simulator sim;
  Server server(sim, "s");
  std::vector<SimTime> finishes;
  server.submit(100, [&](SimTime t) { finishes.push_back(t); });
  server.submit(50, [&](SimTime t) { finishes.push_back(t); });
  sim.run();
  EXPECT_EQ(finishes, (std::vector<SimTime>{100, 150}));
  EXPECT_EQ(server.completed(), 2u);
  EXPECT_EQ(server.busy_time(), 150u);
}

TEST(Server, QueueLengthTracksBacklog) {
  Simulator sim;
  Server server(sim, "s");
  server.submit(100, nullptr);
  server.submit(100, nullptr);
  server.submit(100, nullptr);
  EXPECT_EQ(server.queue_length(), 3u);
  sim.run();
  EXPECT_EQ(server.queue_length(), 0u);
}

TEST(Server, CompletionCanSubmitMore) {
  Simulator sim;
  Server server(sim, "s");
  int chain = 0;
  std::function<void(SimTime)> next = [&](SimTime) {
    if (++chain < 3) server.submit(10, next);
  };
  server.submit(10, next);
  sim.run();
  EXPECT_EQ(chain, 3);
  EXPECT_EQ(sim.now(), 30u);
}

TEST(Server, SubmittedAfterIdleResumesAtCurrentTime) {
  Simulator sim;
  Server server(sim, "s");
  SimTime second_finish = 0;
  server.submit(10, nullptr);
  sim.run();
  sim.schedule_at(100, [&] {
    server.submit(5, [&](SimTime t) { second_finish = t; });
  });
  sim.run();
  EXPECT_EQ(second_finish, 105u);
}

}  // namespace
}  // namespace ecoscale
