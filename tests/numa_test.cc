#include <gtest/gtest.h>

#include "runtime/numa_policy.h"

namespace ecoscale {
namespace {

PgasConfig machine() {
  PgasConfig cfg;
  cfg.nodes = 4;
  cfg.workers_per_node = 2;
  return cfg;
}

TEST(Numa, StaticHomeNeverActs) {
  PgasSystem pgas(machine());
  NumaManager numa(pgas, NumaConfig{});
  const auto data = pgas.alloc(0, 0, kPageSize);
  SimTime t = 0;
  for (int i = 0; i < 100; ++i) {
    t = numa.load({1, 0}, data, 8, t).finish;
  }
  EXPECT_EQ(numa.stats().migrations, 0u);
  EXPECT_EQ(numa.stats().replicas_created, 0u);
  EXPECT_TRUE(pgas.directory().cacheable_at(page_of(data), 0));
}

TEST(Numa, MigratesHotPageToRemoteUser) {
  PgasSystem pgas(machine());
  NumaConfig cfg;
  cfg.policy = NumaPolicy::kMigrateOnHot;
  cfg.migrate_threshold = 8;
  NumaManager numa(pgas, cfg);
  const auto data = pgas.alloc(0, 0, kPageSize);
  SimTime t = 0;
  for (int i = 0; i < 8; ++i) {
    t = numa.load({2, 0}, data, 8, t).finish;
  }
  EXPECT_EQ(numa.stats().migrations, 1u);
  EXPECT_TRUE(pgas.directory().cacheable_at(page_of(data), 2));
  // Subsequent accesses from node 2 are local.
  const auto after = numa.load({2, 0}, data, 8, t);
  EXPECT_FALSE(after.remote);
}

TEST(Numa, MigrationNotTriggeredByOwnerAccesses) {
  PgasSystem pgas(machine());
  NumaConfig cfg;
  cfg.policy = NumaPolicy::kMigrateOnHot;
  cfg.migrate_threshold = 4;
  NumaManager numa(pgas, cfg);
  const auto data = pgas.alloc(0, 0, kPageSize);
  SimTime t = 0;
  for (int i = 0; i < 50; ++i) {
    t = numa.load({0, 1}, data, 8, t).finish;  // same node as owner
  }
  EXPECT_EQ(numa.stats().migrations, 0u);
}

TEST(Numa, ReplicatesAfterRemoteReads) {
  PgasSystem pgas(machine());
  NumaConfig cfg;
  cfg.policy = NumaPolicy::kReplicateReadMostly;
  cfg.replicate_threshold = 4;
  NumaManager numa(pgas, cfg);
  const auto data = pgas.alloc(0, 0, kPageSize);
  SimTime t = 0;
  SimDuration last_remote_latency = 0;
  for (int i = 0; i < 4; ++i) {
    const auto r = numa.load({3, 0}, data, 8, t);
    last_remote_latency = r.finish - t;
    t = r.finish;
  }
  ASSERT_TRUE(numa.has_replica(page_of(data), 3));
  EXPECT_EQ(numa.stats().replicas_created, 1u);
  // Replica hit: served locally, faster than the remote access was.
  const auto hit = numa.load({3, 0}, data, 8, t);
  EXPECT_FALSE(hit.remote);
  EXPECT_LT(hit.finish - t, last_remote_latency);
  EXPECT_GE(numa.stats().replica_hits, 1u);
}

TEST(Numa, WriteInvalidatesReplicas) {
  PgasSystem pgas(machine());
  NumaConfig cfg;
  cfg.policy = NumaPolicy::kReplicateReadMostly;
  cfg.replicate_threshold = 2;
  NumaManager numa(pgas, cfg);
  const auto data = pgas.alloc(0, 0, kPageSize);
  SimTime t = 0;
  for (int i = 0; i < 3; ++i) t = numa.load({1, 0}, data, 8, t).finish;
  for (int i = 0; i < 3; ++i) t = numa.load({2, 0}, data, 8, t).finish;
  ASSERT_TRUE(numa.has_replica(page_of(data), 1));
  ASSERT_TRUE(numa.has_replica(page_of(data), 2));
  // A write (even from the owner) invalidates both replicas.
  t = numa.store({0, 0}, data, 8, t).finish;
  EXPECT_FALSE(numa.has_replica(page_of(data), 1));
  EXPECT_FALSE(numa.has_replica(page_of(data), 2));
  EXPECT_EQ(numa.stats().invalidations, 2u);
  // The next read is remote again (replica gone).
  const auto r = numa.load({1, 0}, data, 8, t);
  EXPECT_TRUE(r.remote);
}

TEST(Numa, ReplicaReadsObserveLaterWrites) {
  // Functional coherence: after an invalidating write, readers see the
  // new value (the backing store is single-copy; replicas only change
  // the timing path).
  PgasSystem pgas(machine());
  NumaConfig cfg;
  cfg.policy = NumaPolicy::kReplicateReadMostly;
  cfg.replicate_threshold = 2;
  NumaManager numa(pgas, cfg);
  const auto data = pgas.alloc(0, 0, kPageSize);
  SimTime t = 0;
  for (int i = 0; i < 3; ++i) t = numa.load({1, 0}, data, 8, t).finish;
  const std::array<std::uint8_t, 4> value{1, 2, 3, 4};
  pgas.write_bytes(data, value);
  t = numa.store({0, 0}, data, 4, t).finish;
  std::array<std::uint8_t, 4> out{};
  pgas.read_bytes(data, out);
  EXPECT_EQ(out, value);
}

TEST(Numa, PingPongDoesNotThrashReplication) {
  PgasSystem pgas(machine());
  NumaConfig cfg;
  cfg.policy = NumaPolicy::kReplicateReadMostly;
  NumaManager numa(pgas, cfg);
  const auto flag = pgas.alloc(0, 0, kPageSize);
  SimTime t = 0;
  for (int i = 0; i < 100; ++i) {
    t = numa.store({static_cast<NodeId>(i % 2), 0}, flag, 8, t).finish;
  }
  EXPECT_EQ(numa.stats().replicas_created, 0u);  // writes never replicate
}

}  // namespace
}  // namespace ecoscale
