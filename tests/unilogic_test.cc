#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "hls/dse.h"
#include "interconnect/network.h"
#include "unilogic/pool.h"

namespace ecoscale {
namespace {

constexpr std::size_t kWorkers = 4;

/// A Compute Node's worth of workers + network + pool, rebuildable so tests
/// can compare policies from identical cold state.
struct PoolRig {
  PoolRig() {
    WorkerConfig cfg;
    cfg.fabric.fabric_width = 8;
    cfg.fabric.fabric_height = 8;
    for (std::size_t i = 0; i < kWorkers; ++i) {
      workers.push_back(std::make_unique<Worker>(
          WorkerCoord{0, static_cast<WorkerId>(i)}, cfg));
    }
    NetworkConfig net_cfg;
    net_cfg.level_params = {{0, LinkParams{}}};
    network = std::make_unique<Network>(make_crossbar(kWorkers), net_cfg);
    std::vector<Worker*> ptrs;
    for (auto& w : workers) ptrs.push_back(w.get());
    pool = std::make_unique<UnilogicPool>(ptrs, *network);
    module = emit_variants(make_montecarlo_kernel(), 1).front();
  }

  std::vector<std::unique_ptr<Worker>> workers;
  std::unique_ptr<Network> network;
  std::unique_ptr<UnilogicPool> pool;
  AcceleratorModule module;
};

class UnilogicTest : public ::testing::Test {
 protected:
  PoolRig rig_;
};

TEST_F(UnilogicTest, LocalOnlyExecutesOnCaller) {
  const auto r = rig_.pool->invoke(2, rig_.module, 1000, 0,
                                   DispatchPolicy::kLocalOnly);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->executed_on, 2u);
  EXPECT_FALSE(r->remote);
  EXPECT_EQ(rig_.pool->local_invocations(), 1u);
}

TEST_F(UnilogicTest, SharingOffloadsWhenLocalFabricBusy) {
  // Saturate worker 0's accelerator with a huge call.
  const auto busy = rig_.pool->invoke(0, rig_.module, 5'000'000, 0,
                                      DispatchPolicy::kLocalOnly);
  ASSERT_TRUE(busy.has_value());
  // A second call from worker 0 should go remote under sharing...
  const auto shared = rig_.pool->invoke(0, rig_.module, 100'000, 0,
                                        DispatchPolicy::kLeastLoaded);
  ASSERT_TRUE(shared.has_value());
  EXPECT_TRUE(shared->remote);
  EXPECT_NE(shared->executed_on, 0u);
  // ...and would have queued behind the big call without sharing.
  EXPECT_LT(shared->finish, busy->finish);
}

TEST_F(UnilogicTest, LocalPreferredWhenIdle) {
  const auto r = rig_.pool->invoke(1, rig_.module, 1000, 0,
                                   DispatchPolicy::kLeastLoaded);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->executed_on, 1u);
  EXPECT_FALSE(r->remote);
}

TEST_F(UnilogicTest, RemoteInvocationCostsMoreEnergy) {
  // Warm both fabrics so the comparison excludes configuration.
  (void)rig_.pool->invoke(0, rig_.module, 1000, 0,
                          DispatchPolicy::kLocalOnly);
  (void)rig_.pool->invoke(1, rig_.module, 1000, 0,
                          DispatchPolicy::kLocalOnly);
  const SimTime t = milliseconds(10);
  const auto local =
      rig_.pool->invoke(0, rig_.module, 10000, t, DispatchPolicy::kLocalOnly);
  ASSERT_TRUE(local.has_value());
  // Force remote by saturating worker 0 then sharing.
  (void)rig_.pool->invoke(0, rig_.module, 5'000'000, local->finish,
                          DispatchPolicy::kLocalOnly);
  const auto remote = rig_.pool->invoke(0, rig_.module, 10000, local->finish,
                                        DispatchPolicy::kLeastLoaded);
  ASSERT_TRUE(remote.has_value());
  ASSERT_TRUE(remote->remote);
  EXPECT_GT(remote->energy, local->energy);
  EXPECT_EQ(rig_.pool->remote_invocations(), 1u);
}

TEST_F(UnilogicTest, ImpossibleModuleReturnsNull) {
  auto huge = rig_.module;
  huge.shape = ModuleShape{64, 64};
  EXPECT_FALSE(rig_.pool->invoke(0, huge, 10, 0,
                                 DispatchPolicy::kLeastLoaded)
                   .has_value());
}

TEST(UnilogicThroughput, SharingRaisesAggregateThroughputWhenComputeBound) {
  // 8 bursty calls all arriving at worker 0, compared from identical cold
  // state under the two policies. The kernel is compute-bound (II = 4,
  // 8 B/item), so remote data streaming does not mask the shared capacity.
  auto make_module = [](const PoolRig& rig) {
    auto m = rig.module;
    m.initiation_interval = 4;
    m.bytes_in_per_item = 4;
    m.bytes_out_per_item = 4;
    m.clock_ghz = 0.25;
    return m;
  };
  SimTime private_makespan = 0;
  SimTime shared_makespan = 0;
  {
    PoolRig rig;
    const auto m = make_module(rig);
    for (int i = 0; i < 8; ++i) {
      const auto r =
          rig.pool->invoke(0, m, 200'000, 0, DispatchPolicy::kLocalOnly);
      ASSERT_TRUE(r.has_value());
      private_makespan = std::max(private_makespan, r->finish);
    }
  }
  {
    PoolRig rig;
    const auto m = make_module(rig);
    for (int i = 0; i < 8; ++i) {
      const auto r =
          rig.pool->invoke(0, m, 200'000, 0, DispatchPolicy::kLeastLoaded);
      ASSERT_TRUE(r.has_value());
      shared_makespan = std::max(shared_makespan, r->finish);
    }
  }
  EXPECT_LT(shared_makespan, private_makespan);
}

}  // namespace
}  // namespace ecoscale
