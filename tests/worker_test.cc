#include <gtest/gtest.h>

#include "hls/dse.h"
#include "worker/cpu.h"
#include "worker/virtualization.h"
#include "worker/worker.h"

namespace ecoscale {
namespace {

TEST(Cpu, ExecutionTimeMatchesClock) {
  CpuConfig cfg;
  cfg.cores = 1;
  cfg.clock_ghz = 1.0;  // 1 cycle = 1 ns
  CpuCluster cpu("c", cfg);
  const auto e = cpu.execute(0, 1000.0, 1);
  EXPECT_EQ(e.finish - e.start, nanoseconds(1000));
  EXPECT_DOUBLE_EQ(e.energy, cfg.pj_per_cycle * 1000.0);
}

TEST(Cpu, PicksEarliestFreeCore) {
  CpuConfig cfg;
  cfg.cores = 2;
  CpuCluster cpu("c", cfg);
  const auto a = cpu.execute(0, 10000.0, 1);
  const auto b = cpu.execute(0, 10000.0, 2);
  EXPECT_NE(a.core, b.core);
  EXPECT_EQ(a.start, b.start);  // parallel on separate cores
  const auto c = cpu.execute(0, 100.0, 3);
  EXPECT_GT(c.start, 0u);  // both cores busy, queues behind one
}

TEST(Cpu, ContextSwitchChargedOnTaskChange) {
  CpuConfig cfg;
  cfg.cores = 1;
  cfg.clock_ghz = 1.0;
  CpuCluster cpu("c", cfg);
  const auto a = cpu.execute(0, 100.0, 7);
  const auto b = cpu.execute(a.finish, 100.0, 7);  // same task: no switch
  EXPECT_EQ(b.finish - b.start, nanoseconds(100));
  const auto c = cpu.execute(b.finish, 100.0, 8);  // new task: switch
  EXPECT_EQ(c.finish - c.start, nanoseconds(100) + cfg.context_switch);
  EXPECT_EQ(cpu.context_switches(), 1u);
}

TEST(Cpu, BusyTimeAccumulates) {
  CpuCluster cpu("c");
  (void)cpu.execute(0, 1200.0, 1);
  EXPECT_GT(cpu.busy_time(), 0u);
  EXPECT_GT(cpu.energy().total(), 0.0);
}

AcceleratorModule pipe_module() {
  AcceleratorModule m;
  m.name = "pipe";
  m.kernel = 9;
  m.shape = ModuleShape{2, 2};
  m.pipeline_depth = 20;
  m.initiation_interval = 1;
  m.clock_ghz = 0.25;
  m.pj_per_item = 10.0;
  return m;
}

TEST(Virtualization, PipelinedOverlapsCallers) {
  const auto m = pipe_module();
  VirtualizationBlock ex("ex", m, SharingMode::kExclusive);
  VirtualizationBlock pl("pl", m, SharingMode::kPipelined);
  // Two concurrent callers, 1000 items each.
  const auto e1 = ex.call(0, 1000, 0);
  const auto e2 = ex.call(1, 1000, 0);
  const auto p1 = pl.call(0, 1000, 0);
  const auto p2 = pl.call(1, 1000, 0);
  // Exclusive: second caller waits for the whole first call.
  EXPECT_GE(e2.start, e1.finish - m.pipeline_depth * m.cycle_time());
  // Pipelined: second caller's items issue right behind the first's.
  EXPECT_LT(p2.finish, e2.finish);
  // Single-caller latency is identical in both modes (same pipeline).
  EXPECT_NEAR(static_cast<double>(p1.finish),
              static_cast<double>(e1.finish),
              static_cast<double>(m.pipeline_depth * m.cycle_time()));
}

TEST(Virtualization, EnergyPerItemIndependentOfMode) {
  const auto m = pipe_module();
  VirtualizationBlock ex("ex", m, SharingMode::kExclusive);
  VirtualizationBlock pl("pl", m, SharingMode::kPipelined);
  EXPECT_DOUBLE_EQ(ex.call(0, 100, 0).energy, pl.call(0, 100, 0).energy);
}

TEST(Virtualization, CountsCallsAndItems) {
  VirtualizationBlock vb("v", pipe_module(), SharingMode::kPipelined);
  (void)vb.call(0, 10, 0);
  (void)vb.call(1, 20, 0);
  EXPECT_EQ(vb.calls(), 2u);
  EXPECT_EQ(vb.items(), 30u);
}

WorkerConfig small_worker() {
  WorkerConfig cfg;
  cfg.fabric.fabric_width = 8;
  cfg.fabric.fabric_height = 8;
  return cfg;
}

TEST(Worker, SoftwarePath) {
  Worker w({0, 0}, small_worker());
  const auto k = make_montecarlo_kernel();
  const auto r = w.run_software(k, 1000, 0, 1);
  EXPECT_FALSE(r.hardware);
  EXPECT_GT(r.finish, r.start);
  EXPECT_GT(r.energy, 0.0);
}

TEST(Worker, HardwarePathLoadsThenReuses) {
  Worker w({0, 0}, small_worker());
  const auto variants = emit_variants(make_montecarlo_kernel(), 1);
  ASSERT_FALSE(variants.empty());
  const auto first = w.run_hardware(variants[0], 1000, 0);
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->hardware);
  EXPECT_TRUE(first->reconfigured);
  const auto second = w.run_hardware(variants[0], 1000, first->finish);
  ASSERT_TRUE(second.has_value());
  EXPECT_FALSE(second->reconfigured);
  EXPECT_LT(second->finish - second->start, first->finish - first->start);
}

TEST(Worker, HardwareBeatsSoftwareOnLargeComputeHeavyKernels) {
  Worker w({0, 0}, small_worker());
  const auto k = make_montecarlo_kernel();  // 90 CPU cycles/item
  const auto variants = emit_variants(k, 1);
  const auto sw = w.run_software(k, 200000, 0, 1);
  const auto hw = w.run_hardware(variants[0], 200000, 0);
  ASSERT_TRUE(hw.has_value());
  EXPECT_LT(hw->finish - hw->start, sw.finish - sw.start);
  EXPECT_LT(hw->energy, sw.energy);
}

TEST(Worker, SoftwareBeatsHardwareOnTinyCalls) {
  Worker w({0, 0}, small_worker());
  const auto k = make_montecarlo_kernel();
  const auto variants = emit_variants(k, 1);
  const auto sw = w.run_software(k, 10, 0, 1);
  const auto hw = w.run_hardware(variants[0], 10, 0);  // pays config
  ASSERT_TRUE(hw.has_value());
  EXPECT_LT(sw.finish, hw->finish);
}

TEST(Worker, OversizedModuleRejected) {
  auto cfg = small_worker();
  cfg.fabric.fabric_width = 1;
  cfg.fabric.fabric_height = 1;
  Worker w({0, 0}, cfg);
  auto m = pipe_module();
  m.shape = ModuleShape{4, 4};
  EXPECT_FALSE(w.run_hardware(m, 100, 0).has_value());
}

TEST(Worker, FindBlockAfterHardwareRun) {
  Worker w({0, 0}, small_worker());
  const auto variants = emit_variants(make_stencil5_kernel(), 1);
  EXPECT_EQ(w.find_block(variants[0].kernel), nullptr);
  ASSERT_TRUE(w.run_hardware(variants[0], 100, 0).has_value());
  EXPECT_NE(w.find_block(variants[0].kernel), nullptr);
}

}  // namespace
}  // namespace ecoscale
