// Targeted coverage for thinner corners: logging, MPI occupancy, chassis
// hierarchy, 3-D Cartesian topologies, and the accelerator memory bound.
#include <gtest/gtest.h>

#include <array>

#include "common/log.h"
#include "hls/dse.h"
#include "mpi/mpi.h"
#include "unimem/pgas.h"
#include "worker/worker.h"

namespace ecoscale {
namespace {

// --- logging -------------------------------------------------------------------

TEST(Log, LevelGatesOutput) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kOff);
  ECO_INFO << "suppressed";  // must not crash; nothing observable
  set_log_level(LogLevel::kWarn);
  ECO_DEBUG << "suppressed";
  ECO_WARN << "emitted";
  set_log_level(before);
  SUCCEED();
}

// --- MPI sender occupancy (LogP o_s serialisation) --------------------------------

TEST(MpiOccupancy, BackToBackSendsSerialiseOnSenderCpu) {
  MpiConfig cfg;
  MpiWorld world(4, cfg);
  // Two sends from rank 0 at the same instant to different receivers: the
  // second cannot leave before the first's o_send completes.
  const auto a = world.send(0, 1, 64, 0);
  const auto b = world.send(0, 2, 64, 0);
  EXPECT_GE(b.sent, a.sent + cfg.send_overhead);
}

TEST(MpiOccupancy, ReceiverSerialisesIncomingProcessing) {
  MpiConfig cfg;
  MpiWorld world(4, cfg);
  const auto a = world.send(1, 0, 64, 0);
  const auto b = world.send(2, 0, 64, 0);
  // Both arrive around the same time; the second delivery waits for the
  // receiver CPU to finish the first's o_recv.
  EXPECT_GE(std::max(a.delivered, b.delivered),
            std::min(a.delivered, b.delivered) + cfg.recv_overhead);
}

// --- chassis hierarchy -------------------------------------------------------------

TEST(Chassis, CrossChassisCostsMoreThanCrossNode) {
  PgasConfig cfg;
  cfg.chassis = 2;
  cfg.nodes = 4;  // 2 nodes per chassis
  cfg.workers_per_node = 2;
  PgasSystem pgas(cfg);
  // Owner node 0 (chassis 0). Node 1 is same-chassis; node 2 is not.
  const auto data = pgas.alloc(0, 0, kPageSize);
  const auto same_chassis = pgas.load({1, 0}, data, 8, 0);
  const auto cross_chassis = pgas.load({2, 0}, data, 8, 0);
  EXPECT_TRUE(same_chassis.remote);
  EXPECT_TRUE(cross_chassis.remote);
  EXPECT_GT(cross_chassis.finish, same_chassis.finish);
  EXPECT_GT(cross_chassis.energy, same_chassis.energy);
}

TEST(Chassis, DiameterGrowsByTwoHops) {
  PgasConfig flat;
  flat.nodes = 4;
  flat.workers_per_node = 2;
  PgasSystem flat_sys(flat);
  PgasConfig deep = flat;
  deep.chassis = 2;
  PgasSystem deep_sys(deep);
  EXPECT_EQ(flat_sys.network().diameter() + 2,
            deep_sys.network().diameter());
}

TEST(Chassis, UnevenDivisionRejected) {
  PgasConfig cfg;
  cfg.chassis = 3;
  cfg.nodes = 4;
  EXPECT_THROW(PgasSystem{cfg}, CheckError);
}

// --- 3-D Cartesian topology ---------------------------------------------------------

TEST(Cart3d, InteriorHasSixNeighbours) {
  CartTopology cart({3, 3, 3}, false);
  EXPECT_EQ(cart.size(), 27u);
  // Centre of the cube.
  const std::size_t centre = cart.rank_of(std::array<std::size_t, 3>{1, 1, 1});
  EXPECT_EQ(cart.neighbors(centre).size(), 6u);
  const std::size_t corner = cart.rank_of(std::array<std::size_t, 3>{0, 0, 0});
  EXPECT_EQ(cart.neighbors(corner).size(), 3u);
}

TEST(Cart3d, PeriodicTorusUniformDegree) {
  CartTopology torus({2, 3, 4}, true);
  for (std::size_t r = 0; r < torus.size(); ++r) {
    // In a periodic torus with a dim of extent 2, +1 and -1 reach the same
    // rank; neighbors() deduplicates nothing but excludes self-loops never
    // occurring here, so degree is between 5 and 6.
    const auto n = torus.neighbors(r).size();
    EXPECT_GE(n, 5u);
    EXPECT_LE(n, 6u);
  }
}

// --- worker accelerator memory path --------------------------------------------------

TEST(WorkerMemoryBound, StreamingBoundKernelsLimitedByBandwidth) {
  WorkerConfig cfg;
  cfg.accel_mem_bw = Bandwidth::from_gib_per_s(1.0);  // starve the port
  Worker slow({0, 0}, cfg);
  Worker fast({0, 1}, WorkerConfig{});  // 6.4 GiB/s default
  const auto module = emit_variants(make_spmv_kernel(), 1).front();
  constexpr std::uint64_t kItems = 100000;
  const auto a = slow.run_hardware(module, kItems, 0);
  const auto b = fast.run_hardware(module, kItems, 0);
  ASSERT_TRUE(a && b);
  EXPECT_GT(a->finish - a->start, b->finish - b->start);
  // The starved port is the bound: duration ≈ bytes / bandwidth.
  const Bytes moved = kItems * (module.bytes_in_per_item +
                                module.bytes_out_per_item);
  const double expected_ns =
      to_nanoseconds(Bandwidth::from_gib_per_s(1.0).transfer_time(moved));
  EXPECT_GT(to_nanoseconds(a->finish - a->start), 0.9 * expected_ns);
}

// --- HLS: no-pipeline floor ---------------------------------------------------------

TEST(HlsNoPipeline, SequentialDesignScalesWithDepth) {
  const auto k = make_montecarlo_kernel();
  HlsDesign seq;
  seq.pipeline = false;
  const auto est = estimate_design(k, seq);
  EXPECT_EQ(est.ii, est.depth);  // unroll 1: a new item per full body
}

}  // namespace
}  // namespace ecoscale
