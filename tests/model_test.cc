#include <gtest/gtest.h>

#include <array>
#include <sstream>

#include "common/rng.h"
#include "model/predictor.h"
#include "model/regression.h"

namespace ecoscale {
namespace {

TEST(Ridge, RecoversLinearFunction) {
  RidgeRegression model(3, 1e-6);
  Rng rng(1);
  // y = 2 + 3a - 5b
  for (int i = 0; i < 200; ++i) {
    const double a = rng.uniform(0, 10);
    const double b = rng.uniform(0, 10);
    model.observe(std::array{1.0, a, b}, 2.0 + 3.0 * a - 5.0 * b);
  }
  const auto coef = model.coefficients();
  ASSERT_EQ(coef.size(), 3u);
  EXPECT_NEAR(coef[0], 2.0, 0.01);
  EXPECT_NEAR(coef[1], 3.0, 0.01);
  EXPECT_NEAR(coef[2], -5.0, 0.01);
  const auto pred = model.predict(std::array{1.0, 4.0, 2.0});
  ASSERT_TRUE(pred.has_value());
  EXPECT_NEAR(*pred, 2.0 + 12.0 - 10.0, 0.05);
}

TEST(Ridge, NoPredictionUntilEnoughData) {
  RidgeRegression model(4);
  EXPECT_FALSE(model.predict(std::array{1.0, 2.0, 3.0, 4.0}).has_value());
  for (int i = 0; i < 3; ++i) {
    model.observe(std::array{1.0, double(i), double(i * i), 1.0}, double(i));
  }
  EXPECT_FALSE(model.predict(std::array{1.0, 2.0, 4.0, 1.0}).has_value());
  model.observe(std::array{1.0, 9.0, 81.0, 1.0}, 9.0);
  EXPECT_TRUE(model.predict(std::array{1.0, 2.0, 4.0, 1.0}).has_value());
}

TEST(Ridge, RobustToNoise) {
  RidgeRegression model(2, 1e-3);
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.uniform(0, 100);
    model.observe(std::array{1.0, x}, 10.0 + 0.5 * x + rng.normal(0, 2.0));
  }
  const auto coef = model.coefficients();
  EXPECT_NEAR(coef[1], 0.5, 0.02);
}

TEST(Ridge, PrequentialErrorShrinks) {
  RidgeRegression model(2, 1e-6);
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    const double x = rng.uniform(0, 10);
    model.observe(std::array{1.0, x}, 4.0 * x);
  }
  const double early = model.mean_abs_error();
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0, 10);
    model.observe(std::array{1.0, x}, 4.0 * x);
  }
  EXPECT_LE(model.mean_abs_error(), early + 1e-9);
}

TEST(Scaler, StandardisesFeatures) {
  FeatureScaler scaler(2);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    scaler.observe(std::array{rng.normal(100.0, 10.0),
                              rng.normal(-5.0, 0.5)});
  }
  const auto z = scaler.transform(std::array{100.0, -5.0});
  EXPECT_NEAR(z[0], 0.0, 0.15);
  EXPECT_NEAR(z[1], 0.0, 0.15);
  const auto hi = scaler.transform(std::array{110.0, -4.5});
  EXPECT_NEAR(hi[0], 1.0, 0.15);
  EXPECT_NEAR(hi[1], 1.0, 0.15);
}

TEST(Predictor, StaticFallbackBeforeTraining) {
  CostPredictor pred;
  const auto k = make_montecarlo_kernel();
  TaskFeatures f;
  f.items = 1000;
  f.bytes = 16000;
  const auto p = pred.predict(k, DeviceClass::kCpu, f);
  EXPECT_FALSE(p.from_model);
  EXPECT_GT(p.time_ns, 0.0);
  EXPECT_GT(p.energy_pj, 0.0);
}

TEST(Predictor, LearnsFromObservations) {
  CostPredictor pred;
  const auto k = make_montecarlo_kernel();
  // Ground truth: time = 100 + 2*items ns.
  for (int i = 1; i <= 40; ++i) {
    HistoryRecord r;
    r.kernel = k.id;
    r.device = DeviceClass::kCpu;
    r.features.items = i * 100.0;
    r.features.bytes = i * 1600.0;
    r.time_ns = 100.0 + 2.0 * r.features.items;
    r.energy_pj = 50.0 * r.features.items;
    pred.observe(r);
  }
  TaskFeatures f;
  f.items = 2500.0;
  f.bytes = 40000.0;
  const auto p = pred.predict(k, DeviceClass::kCpu, f);
  EXPECT_TRUE(p.from_model);
  EXPECT_NEAR(p.time_ns, 100.0 + 5000.0, 150.0);
  EXPECT_NEAR(p.energy_pj, 125000.0, 3000.0);
  EXPECT_EQ(pred.observations(k.id, DeviceClass::kCpu), 40u);
  EXPECT_EQ(pred.observations(k.id, DeviceClass::kLocalFabric), 0u);
}

TEST(Predictor, DevicesModelledIndependently) {
  CostPredictor pred;
  const auto k = make_stencil5_kernel();
  for (int i = 1; i <= 30; ++i) {
    HistoryRecord cpu;
    cpu.kernel = k.id;
    cpu.device = DeviceClass::kCpu;
    cpu.features.items = i * 10.0;
    cpu.time_ns = 10.0 * cpu.features.items;
    pred.observe(cpu);
    HistoryRecord hw = cpu;
    hw.device = DeviceClass::kLocalFabric;
    hw.time_ns = 1.0 * hw.features.items + 5000.0;
    pred.observe(hw);
  }
  TaskFeatures f;
  f.items = 150.0;
  const auto pc = pred.predict(k, DeviceClass::kCpu, f);
  const auto ph = pred.predict(k, DeviceClass::kLocalFabric, f);
  EXPECT_GT(pc.time_ns, ph.time_ns * 0.2);
  EXPECT_NEAR(pc.time_ns, 1500.0, 100.0);
  EXPECT_NEAR(ph.time_ns, 5150.0, 300.0);
}

TEST(Predictor, HistoryFileRoundTrip) {
  CostPredictor pred;
  const auto k = make_cart_split_kernel();
  for (int i = 1; i <= 25; ++i) {
    HistoryRecord r;
    r.kernel = k.id;
    r.device = i % 2 ? DeviceClass::kCpu : DeviceClass::kRemoteFabric;
    r.features.items = i * 7.0;
    r.features.bytes = i * 84.0;
    r.time_ns = 3.0 * r.features.items + 11.0;
    r.energy_pj = 2.0 * r.features.items;
    pred.observe(r);
  }
  std::stringstream file;
  pred.save(file);
  const auto restored = CostPredictor::load(file);
  EXPECT_EQ(restored.records().size(), pred.records().size());
  TaskFeatures f;
  f.items = 70.0;
  f.bytes = 840.0;
  const auto a = pred.predict(k, DeviceClass::kCpu, f);
  const auto b = restored.predict(k, DeviceClass::kCpu, f);
  EXPECT_DOUBLE_EQ(a.time_ns, b.time_ns);
  EXPECT_EQ(a.from_model, b.from_model);
}

TEST(Predictor, LoadRejectsBadHeader) {
  std::stringstream bad("not-a-history 0\n");
  EXPECT_THROW(CostPredictor::load(bad), CheckError);
}

TEST(Predictor, PredictionsClampedNonNegative) {
  CostPredictor pred;
  const auto k = make_spmv_kernel();
  // Adversarial data that would extrapolate negative.
  for (int i = 1; i <= 20; ++i) {
    HistoryRecord r;
    r.kernel = k.id;
    r.device = DeviceClass::kCpu;
    r.features.items = i * 1.0;
    r.time_ns = 1000.0 - 40.0 * i;
    r.energy_pj = 1.0;
    pred.observe(r);
  }
  TaskFeatures f;
  f.items = 100.0;  // extrapolates to negative time
  const auto p = pred.predict(k, DeviceClass::kCpu, f);
  EXPECT_GE(p.time_ns, 0.0);
}

TEST(DeviceClassNames, Stable) {
  EXPECT_STREQ(device_class_name(DeviceClass::kCpu), "cpu");
  EXPECT_STREQ(device_class_name(DeviceClass::kLocalFabric), "local_fabric");
  EXPECT_STREQ(device_class_name(DeviceClass::kRemoteFabric),
               "remote_fabric");
}

}  // namespace
}  // namespace ecoscale
