// Serving subsystem tests: the KV store must be linearizable per key
// against a reference map, admission control must shed (not hang) under
// overload, results must be byte-identical across --sim-threads, and the
// graph engine must match its single-threaded functional references.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "runtime/sharded.h"
#include "serve/graph.h"
#include "serve/kvstore.h"
#include "serve/latency.h"
#include "serve/loadgen.h"

namespace ecoscale {
namespace {

using serve::KvApplyRecord;
using serve::KvOp;
using serve::KvResponse;
using serve::KvStore;
using serve::LoadGen;
using serve::LoadGenConfig;

ShardedRuntimeConfig serve_config(std::size_t nodes, std::size_t workers,
                                  std::size_t threads = 1) {
  ShardedRuntimeConfig rc;
  rc.nodes = nodes;
  rc.workers_per_node = workers;
  rc.threads = threads;
  rc.runtime.placement = PlacementPolicy::kAlwaysSoftware;
  rc.runtime.distribution = DistributionPolicy::kHomeOnly;
  return rc;
}

serve::KvConfig small_kv() {
  serve::KvConfig cfg;
  cfg.key_space = 256;
  cfg.value_bytes = 64;
  cfg.service_items = 64;
  return cfg;
}

/// Replay every node's apply log (in log order — per-key serialization
/// order, since each key lives on exactly one worker queue) against a
/// reference map and check each record's found/returned/value fields.
void check_logs_against_reference(const KvStore& kv, std::size_t nodes) {
  for (std::size_t n = 0; n < nodes; ++n) {
    std::unordered_map<std::uint64_t, std::uint64_t> reference;
    for (const KvApplyRecord& rec : kv.apply_log(n)) {
      ASSERT_EQ(kv.owner_of(rec.key), n) << "record on the wrong node";
      const auto it = reference.find(rec.key);
      const bool present = it != reference.end();
      switch (rec.op) {
        case KvOp::kGet:
          EXPECT_EQ(rec.found, present);
          EXPECT_EQ(rec.returned, present ? it->second : 0u);
          break;
        case KvOp::kSet:
          reference[rec.key] = rec.value;
          break;
        case KvOp::kDelete:
          EXPECT_EQ(rec.found, present);
          if (present) reference.erase(it);
          break;
      }
    }
  }
}

TEST(KvStore, PartitionSpreadsKeysAcrossNodes) {
  ShardedRuntime rt(serve_config(4, 2));
  KvStore kv(rt, small_kv());
  std::set<std::size_t> owners;
  for (std::uint64_t key = 0; key < small_kv().key_space; ++key) {
    owners.insert(kv.owner_of(key));
  }
  EXPECT_EQ(owners.size(), 4u);  // 256 hashed keys must touch all 4 nodes
}

TEST(KvStore, LinearizablePerKeyAgainstReferenceMap) {
  const std::size_t nodes = 4;
  ShardedRuntime rt(serve_config(nodes, 2));
  KvStore kv(rt, small_kv());

  std::vector<KvResponse> responses;
  kv.set_response_handler(
      [&responses](std::size_t, const KvResponse& resp) {
        responses.push_back(resp);
      });

  // A mixed workload over a small key range so keys see many conflicting
  // ops from different origins; issue pre-run, interleaved across origins.
  Rng rng(0x5E12);
  const std::size_t total = 240;
  for (std::size_t i = 0; i < total; ++i) {
    const std::size_t origin = i % nodes;
    const std::uint64_t key = rng.uniform_u64(32);
    const double r = rng.uniform();
    const KvOp op =
        r < 0.4 ? KvOp::kGet : (r < 0.8 ? KvOp::kSet : KvOp::kDelete);
    kv.issue(origin, op, key, /*value=*/1000 + i, /*request=*/1 + i);
  }
  rt.run();

  // Every request applied exactly once, and the logs replay cleanly.
  std::size_t applied = 0;
  for (std::size_t n = 0; n < nodes; ++n) applied += kv.apply_log(n).size();
  EXPECT_EQ(applied, total);
  EXPECT_EQ(kv.sheds(), 0u);
  check_logs_against_reference(kv, nodes);

  // Exactly one response per request, consistent with the apply record.
  ASSERT_EQ(responses.size(), total);
  std::map<TaskId, const KvApplyRecord*> by_request;
  for (std::size_t n = 0; n < nodes; ++n) {
    for (const KvApplyRecord& rec : kv.apply_log(n)) {
      by_request[rec.request] = &rec;
    }
  }
  std::set<TaskId> seen;
  for (const KvResponse& resp : responses) {
    EXPECT_TRUE(seen.insert(resp.request).second) << "duplicate response";
    ASSERT_TRUE(by_request.count(resp.request));
    const KvApplyRecord& rec = *by_request[resp.request];
    EXPECT_FALSE(resp.shed);
    EXPECT_EQ(resp.key, rec.key);
    EXPECT_EQ(resp.op, rec.op);
    EXPECT_EQ(resp.found, rec.found);
    EXPECT_EQ(resp.value,
              rec.op == KvOp::kGet ? rec.returned : rec.value);
    EXPECT_GE(resp.completed, rec.at);  // reply cannot beat the apply
  }
}

TEST(KvStore, GetSetDeleteChainOnOneKey) {
  // A strict per-key chain driven off the response handler (each step is
  // issued from the origin shard when the previous one answers).
  const std::uint64_t key = 7;
  ShardedRuntime rt(serve_config(2, 2));
  KvStore kv(rt, small_kv());
  std::vector<KvResponse> log;
  kv.set_response_handler([&](std::size_t origin, const KvResponse& resp) {
    log.push_back(resp);
    switch (log.size()) {
      case 1: kv.issue(origin, KvOp::kSet, key, 42, 2); break;
      case 2: kv.issue(origin, KvOp::kGet, key, 0, 3); break;
      case 3: kv.issue(origin, KvOp::kDelete, key, 0, 4); break;
      case 4: kv.issue(origin, KvOp::kGet, key, 0, 5); break;
      default: break;
    }
  });
  kv.issue(/*origin=*/0, KvOp::kGet, key, 0, 1);
  rt.run();

  ASSERT_EQ(log.size(), 5u);
  EXPECT_FALSE(log[0].found);              // miss before the SET
  EXPECT_EQ(log[0].value, 0u);
  EXPECT_EQ(log[1].op, KvOp::kSet);
  EXPECT_TRUE(log[2].found);               // GET sees the SET
  EXPECT_EQ(log[2].value, 42u);
  EXPECT_TRUE(log[3].found);               // DELETE finds it
  EXPECT_FALSE(log[4].found);              // gone afterwards
}

TEST(Admission, ShedsInsteadOfHangingUnderOverload) {
  ShardedRuntimeConfig rc = serve_config(4, 2);
  rc.runtime.admission_limit = 8;
  ShardedRuntime rt(rc);
  serve::KvConfig kv_cfg = small_kv();
  kv_cfg.service_items = 2000;  // slow service, queues fill fast
  KvStore kv(rt, kv_cfg);

  LoadGenConfig lg;
  lg.mode = LoadGenConfig::Mode::kOpenLoop;
  lg.offered_load = 5e7;  // far beyond capacity
  lg.requests_per_node = 300;
  LoadGen gen(rt, kv, lg);
  gen.start();
  rt.run();  // returning at all is the no-livelock half of the test

  const LoadGen::Report report = gen.report();
  EXPECT_EQ(report.issued, 4u * 300u);
  EXPECT_GT(report.shed, 0u);
  EXPECT_EQ(report.completed + report.shed, report.issued);
  EXPECT_EQ(report.shed, kv.sheds());
  EXPECT_EQ(rt.stats().shed_tasks, kv.sheds());
  // Tail of *answered* requests is bounded by the queue-depth limit times
  // the per-request service path, far below the full-backlog tail.
  const serve::TailSummary tail = serve::summarize(report.latency);
  EXPECT_GT(tail.count, 0u);
  EXPECT_LE(tail.p999_ns, tail.max_ns);
}

TEST(Admission, ShedResponsesKeepClosedLoopsLive) {
  ShardedRuntimeConfig rc = serve_config(2, 1);
  rc.runtime.admission_limit = 2;
  ShardedRuntime rt(rc);
  serve::KvConfig kv_cfg = small_kv();
  kv_cfg.service_items = 4000;
  KvStore kv(rt, kv_cfg);

  LoadGenConfig lg;
  lg.mode = LoadGenConfig::Mode::kClosedLoop;
  lg.clients_per_node = 8;  // 8 clients into depth-2 queues: must shed
  lg.requests_per_client = 25;
  LoadGen gen(rt, kv, lg);
  gen.start();
  rt.run();

  const LoadGen::Report report = gen.report();
  // Every client ran its full budget: sheds answered, nobody starved.
  EXPECT_EQ(report.issued, 2u * 8u * 25u);
  EXPECT_EQ(report.completed + report.shed, report.issued);
  EXPECT_GT(report.shed, 0u);
  EXPECT_GT(report.completed, 0u);
}

LoadGen::Report run_loadgen(std::size_t threads) {
  ShardedRuntimeConfig rc = serve_config(4, 2, threads);
  rc.runtime.admission_limit = 32;
  ShardedRuntime rt(rc);
  serve::KvConfig kv_cfg = small_kv();
  kv_cfg.key_space = 1024;
  kv_cfg.service_items = 500;
  KvStore kv(rt, kv_cfg);
  LoadGenConfig lg;
  lg.mode = LoadGenConfig::Mode::kOpenLoop;
  lg.offered_load = 4e6;
  lg.requests_per_node = 250;
  LoadGen gen(rt, kv, lg);
  gen.start();
  rt.run();
  return gen.report();
}

TEST(Determinism, ByteIdenticalAcrossSimThreads) {
  const LoadGen::Report seq = run_loadgen(1);
  ASSERT_GT(seq.completed, 0u);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const LoadGen::Report par = run_loadgen(threads);
    EXPECT_EQ(par.fingerprint, seq.fingerprint) << threads << " threads";
    EXPECT_EQ(par.issued, seq.issued);
    EXPECT_EQ(par.completed, seq.completed);
    EXPECT_EQ(par.shed, seq.shed);
    EXPECT_EQ(par.last_completion, seq.last_completion);
    EXPECT_EQ(par.latency.fingerprint(), seq.latency.fingerprint());
  }
}

// --- graph engine -----------------------------------------------------------

TEST(Graph, MakeSkewedGraphIsValidUndirectedCsr) {
  const serve::CsrGraph g = serve::make_skewed_graph(256, 4.0, 0.8, 99);
  ASSERT_EQ(g.row.size(), 257u);
  EXPECT_EQ(g.row.front(), 0u);
  EXPECT_EQ(g.row.back(), g.col.size());
  std::set<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint32_t v = 0; v < 256; ++v) {
    ASSERT_LE(g.row[v], g.row[v + 1]);
    for (std::uint64_t e = g.row[v]; e < g.row[v + 1]; ++e) {
      const std::uint32_t u = g.col[e];
      ASSERT_LT(u, 256u);
      EXPECT_NE(u, v) << "self loop";
      if (e > g.row[v]) {
        EXPECT_LT(g.col[e - 1], u) << "unsorted/duplicate";
      }
      edges.emplace(v, u);
    }
  }
  for (const auto& [v, u] : edges) {
    EXPECT_TRUE(edges.count({u, v})) << "missing reverse edge " << u << "->"
                                     << v;
  }
}

struct GraphFixture {
  MachineConfig mc;
  Machine machine;
  serve::CsrGraph graph;
  serve::GraphEngine engine;

  GraphFixture()
      : mc(make_config()),
        machine(mc),
        graph(serve::make_skewed_graph(256, 4.0, 0.7, 0xEC05)),
        engine(machine, graph) {}

  static MachineConfig make_config() {
    MachineConfig mc;
    mc.nodes = 4;
    mc.workers_per_node = 2;
    return mc;
  }
};

TEST(Graph, BfsMatchesReference) {
  GraphFixture f;
  const serve::BfsResult result = f.engine.bfs(0);
  EXPECT_EQ(result.dist, serve::reference_bfs(f.graph, 0));
  EXPECT_GT(result.stats.iterations, 0u);
  EXPECT_GT(result.stats.edge_reads, 0u);
  EXPECT_LE(result.stats.remote_edge_reads, result.stats.edge_reads);
  EXPECT_GT(result.stats.remote_edge_reads, 0u);  // 4 nodes: some remote
  EXPECT_GT(result.stats.byte_hops, 0u);
  EXPECT_GT(result.stats.time, 0u);
}

TEST(Graph, PagerankMatchesReferenceBitwise) {
  GraphFixture f;
  const serve::PagerankResult result = f.engine.pagerank(6);
  const std::vector<double> ref = serve::reference_pagerank(f.graph, 6);
  ASSERT_EQ(result.rank.size(), ref.size());
  for (std::size_t v = 0; v < ref.size(); ++v) {
    EXPECT_EQ(result.rank[v], ref[v]) << "vertex " << v;
  }
  double total = 0.0;
  for (const double r : result.rank) total += r;
  EXPECT_NEAR(total, 1.0, 0.2);  // dangling mass leaks a little
}

TEST(Graph, ConnectedComponentsMatchReference) {
  GraphFixture f;
  const serve::CcResult result = f.engine.connected_components();
  EXPECT_EQ(result.label, serve::reference_cc(f.graph));
  // Labels are the component's minimum vertex id.
  for (std::size_t v = 0; v < result.label.size(); ++v) {
    EXPECT_LE(result.label[v], v);
  }
}

TEST(Graph, RunsAreDeterministic) {
  GraphFixture a;
  GraphFixture b;
  const serve::BfsResult ra = a.engine.bfs(3);
  const serve::BfsResult rb = b.engine.bfs(3);
  EXPECT_EQ(ra.dist, rb.dist);
  EXPECT_EQ(ra.stats.time, rb.stats.time);
  EXPECT_EQ(ra.stats.edge_reads, rb.stats.edge_reads);
  EXPECT_EQ(ra.stats.remote_edge_reads, rb.stats.remote_edge_reads);
  EXPECT_EQ(ra.stats.byte_hops, rb.stats.byte_hops);
}

TEST(Graph, SequentialAlgorithmsShareTheLayout) {
  // BFS then PageRank then CC on one engine: cursors stay monotonic and
  // every run still matches its reference.
  GraphFixture f;
  EXPECT_EQ(f.engine.bfs(0).dist, serve::reference_bfs(f.graph, 0));
  const serve::PagerankResult pr = f.engine.pagerank(3);
  const std::vector<double> ref = serve::reference_pagerank(f.graph, 3);
  for (std::size_t v = 0; v < ref.size(); ++v) {
    ASSERT_EQ(pr.rank[v], ref[v]);
  }
  EXPECT_EQ(f.engine.connected_components().label,
            serve::reference_cc(f.graph));
}

}  // namespace
}  // namespace ecoscale
