#include <gtest/gtest.h>

#include <array>

#include "common/check.h"
#include "common/health.h"
#include "interconnect/packet.h"
#include "sim/timeline.h"
#include "unimem/pgas.h"
#include "unimem/sync.h"

namespace ecoscale {
namespace {

PgasConfig small_pgas() {
  PgasConfig cfg;
  cfg.nodes = 2;
  cfg.workers_per_node = 2;
  return cfg;
}

TEST(Pgas, AllocRegistersOwnership) {
  PgasSystem pgas(small_pgas());
  const auto addr = pgas.alloc(1, 0, 2 * kPageSize);
  EXPECT_EQ(addr.node(), 1);
  EXPECT_EQ(addr.worker(), 0);
  EXPECT_TRUE(pgas.directory().cacheable_at(page_of(addr), 1));
  EXPECT_TRUE(
      pgas.directory().cacheable_at(page_of(addr + kPageSize), 1));
  EXPECT_FALSE(pgas.directory().cacheable_at(page_of(addr), 0));
}

TEST(Pgas, AllocationsDoNotOverlap) {
  PgasSystem pgas(small_pgas());
  const auto a = pgas.alloc(0, 0, 100);
  const auto b = pgas.alloc(0, 0, 100);
  EXPECT_GE(b.offset(), a.offset() + 100);
}

TEST(Pgas, FunctionalStoreRoundTrip) {
  PgasSystem pgas(small_pgas());
  const auto addr = pgas.alloc(0, 1, 3 * kPageSize);
  std::vector<std::uint8_t> data(2 * kPageSize + 100);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7);
  }
  // Cross-page write at a non-zero offset.
  pgas.write_bytes(addr + 50, data);
  std::vector<std::uint8_t> out(data.size());
  pgas.read_bytes(addr + 50, out);
  EXPECT_EQ(out, data);
  // Unwritten memory reads as zero.
  std::array<std::uint8_t, 4> zeros{};
  std::array<std::uint8_t, 4> probe{1, 2, 3, 4};
  pgas.read_bytes(pgas.alloc(1, 1, 64), probe);
  EXPECT_EQ(probe, zeros);
}

TEST(Pgas, LocalAccessStaysOnNode) {
  PgasSystem pgas(small_pgas());
  const auto addr = pgas.alloc(0, 0, kPageSize);
  const auto r = pgas.load({0, 1}, addr, 64, 0);  // same node, other worker
  EXPECT_FALSE(r.remote);
  EXPECT_EQ(pgas.local_accesses(), 1u);
  EXPECT_EQ(pgas.remote_accesses(), 0u);
}

TEST(Pgas, RemoteAccessCrossesNodeAndIsNotCached) {
  PgasSystem pgas(small_pgas());
  const auto addr = pgas.alloc(0, 0, kPageSize);
  const auto first = pgas.load({1, 0}, addr, 64, 0);
  EXPECT_TRUE(first.remote);
  EXPECT_FALSE(first.cache_hit);
  // Repeat: still remote, still no cache hit (UNIMEM: remote data is not
  // cacheable at the requester).
  const auto second = pgas.load({1, 0}, addr, 64, first.finish);
  EXPECT_TRUE(second.remote);
  EXPECT_FALSE(second.cache_hit);
  EXPECT_EQ(pgas.remote_accesses(), 2u);
}

TEST(Pgas, LocalCachingWarmsUp) {
  PgasSystem pgas(small_pgas());
  const auto addr = pgas.alloc(0, 0, kPageSize);
  const auto miss = pgas.load({0, 0}, addr, 8, 0);
  EXPECT_FALSE(miss.cache_hit);
  const auto hit = pgas.load({0, 0}, addr, 8, miss.finish);
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_LT(hit.finish - miss.finish, miss.finish);
}

TEST(Pgas, RemoteCostsMoreThanLocal) {
  PgasSystem pgas(small_pgas());
  const auto local_addr = pgas.alloc(0, 0, kPageSize);
  const auto remote_addr = pgas.alloc(1, 0, kPageSize);
  const auto local = pgas.load({0, 0}, local_addr, 64, 0);
  const auto remote = pgas.load({0, 0}, remote_addr, 64, 0);
  EXPECT_GT(remote.finish, local.finish);
  EXPECT_GT(remote.energy, local.energy);
}

TEST(Pgas, PageMigrationFlipsOwnershipAndCacheability) {
  PgasSystem pgas(small_pgas());
  const auto addr = pgas.alloc(0, 0, kPageSize);
  const PageId page = page_of(addr);
  // Warm the old owner's cache so migration must flush.
  (void)pgas.load({0, 0}, addr, 8, 0);
  const auto mig = pgas.migrate_page(page, 1, microseconds(10));
  EXPECT_GT(mig.finish, microseconds(10));
  EXPECT_EQ(mig.bytes_moved, kPageSize);
  EXPECT_TRUE(pgas.directory().cacheable_at(page, 1));
  // The flushed line is gone from the old owner's cache.
  EXPECT_EQ(pgas.cache({0, 0}).state(addr.raw() / 64), LineState::kInvalid);
  // Node 0's access is now remote.
  const auto after = pgas.load({0, 0}, addr, 8, mig.finish);
  EXPECT_TRUE(after.remote);
}

TEST(Pgas, MigrationToSelfIsFree) {
  PgasSystem pgas(small_pgas());
  const auto addr = pgas.alloc(0, 0, kPageSize);
  const auto mig = pgas.migrate_page(page_of(addr), 0, 100);
  EXPECT_EQ(mig.finish, 100u);
  EXPECT_EQ(mig.bytes_moved, 0u);
}

TEST(Pgas, TaskMigrationCheaperThanBulkData) {
  PgasSystem pgas(small_pgas());
  const auto addr = pgas.alloc(1, 0, mebibytes(1));
  // Move task: one closure message.
  const auto task = pgas.migrate_task({0, 0}, {1, 0}, 0);
  // Move data: 1 MiB DMA from the remote node.
  const auto data = pgas.dma({0, 0}, addr, mebibytes(1), false, 0);
  EXPECT_LT(task.finish, data.finish);
  EXPECT_LT(task.energy, data.energy);
}

TEST(Pgas, TaskMigrationToSelfIsFree) {
  PgasSystem pgas(small_pgas());
  const auto r = pgas.migrate_task({0, 0}, {0, 0}, 42);
  EXPECT_EQ(r.finish, 42u);
  EXPECT_DOUBLE_EQ(r.energy, 0.0);
}

TEST(Pgas, AccessToUnregisteredPageThrows) {
  PgasSystem pgas(small_pgas());
  const GlobalAddress bogus(0, 0, 0x100000);
  EXPECT_THROW(pgas.load({0, 0}, bogus, 8, 0), CheckError);
}

TEST(Pgas, FlatCoordRoundTrip) {
  PgasSystem pgas(small_pgas());
  for (std::size_t i = 0; i < pgas.worker_count(); ++i) {
    EXPECT_EQ(pgas.flat(pgas.coord(i)), i);
  }
}

// --- synchronisation ---------------------------------------------------------

class BarrierTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BarrierTest, TreeBarrierReleasesAfterLastArrival) {
  PgasConfig cfg;
  cfg.nodes = 2;
  cfg.workers_per_node = GetParam();
  PgasSystem pgas(cfg);
  std::vector<WorkerCoord> workers;
  std::vector<SimTime> arrivals;
  for (std::size_t i = 0; i < pgas.worker_count(); ++i) {
    workers.push_back(pgas.coord(i));
    arrivals.push_back(microseconds(i));  // straggler is the last worker
  }
  const auto r = tree_barrier(pgas, workers, arrivals);
  EXPECT_GT(r.finish, arrivals.back());
  EXPECT_GT(r.messages, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BarrierTest, ::testing::Values(1, 2, 4, 8));

TEST(Barrier, TreeBeatsFlatAtScale) {
  PgasConfig cfg;
  cfg.nodes = 4;
  cfg.workers_per_node = 8;
  PgasSystem pgas(cfg);
  std::vector<WorkerCoord> workers;
  std::vector<SimTime> arrivals;
  for (std::size_t i = 0; i < pgas.worker_count(); ++i) {
    workers.push_back(pgas.coord(i));
    arrivals.push_back(0);
  }
  PgasSystem pgas2(cfg);  // fresh timelines for a fair comparison
  const auto tree = tree_barrier(pgas, workers, arrivals);
  const auto flat = flat_barrier(pgas2, workers, arrivals);
  EXPECT_LT(tree.finish, flat.finish);
}

TEST(Barrier, SingleWorkerTrivial) {
  PgasSystem pgas(small_pgas());
  const std::array workers{WorkerCoord{0, 0}};
  const std::array arrivals{microseconds(5)};
  const auto r = tree_barrier(pgas, workers, arrivals);
  EXPECT_EQ(r.finish, microseconds(5));
  EXPECT_EQ(r.messages, 0u);
}

TEST(Barrier, TwoWorkerTreeEqualsFlat) {
  // With two participants both topologies degenerate to the same
  // message pattern (one combine token, one release token), and since
  // both barriers now charge the sender-side issue cost identically the
  // results must be *exactly* equal — this is the accounting-parity
  // check for the token-issue fix.
  PgasConfig cfg;
  cfg.nodes = 2;
  cfg.workers_per_node = 1;
  const std::array workers{WorkerCoord{0, 0}, WorkerCoord{1, 0}};
  const std::array arrivals{microseconds(1), microseconds(3)};
  PgasSystem tree_sys(cfg);
  PgasSystem flat_sys(cfg);  // fresh network timelines for each
  const auto tree = tree_barrier(tree_sys, workers, arrivals);
  const auto flat = flat_barrier(flat_sys, workers, arrivals);
  EXPECT_EQ(tree.finish, flat.finish);
  EXPECT_EQ(tree.messages, flat.messages);
  EXPECT_DOUBLE_EQ(tree.energy, flat.energy);
  EXPECT_EQ(tree.messages, 2u);
}

TEST(Barrier, ReleaseBroadcastSerializesOnSenderCpu) {
  // Replay flat_barrier's token accounting against a reference model:
  // every token issue reserves kBarrierTokenIssue on the sender's CPU
  // timeline and every delivery reserves kBarrierTokenProcess on the
  // receiver's, so the hub's two release sends depart back-to-back
  // rather than at the same instant. The replayed finish must match the
  // real barrier exactly.
  PgasConfig cfg;
  cfg.nodes = 3;
  cfg.workers_per_node = 1;
  const std::array workers{WorkerCoord{0, 0}, WorkerCoord{1, 0},
                           WorkerCoord{2, 0}};
  const std::array arrivals{SimTime{0}, nanoseconds(10), nanoseconds(20)};

  PgasSystem sys(cfg);
  const auto real = flat_barrier(sys, workers, arrivals);

  PgasSystem ref(cfg);  // identical fresh system for the replay
  std::vector<Timeline> cpus(ref.worker_count());
  const auto send = [&](WorkerCoord from, WorkerCoord to, SimTime ready) {
    const SimTime go =
        cpus[ref.flat(from)].reserve_until(ready, kBarrierTokenIssue);
    Packet p{PacketType::kSync, from, to, 8};
    const auto t = ref.network().send(ref.flat(from), ref.flat(to), p, go);
    return cpus[ref.flat(to)].reserve_until(t.arrival, kBarrierTokenProcess);
  };
  const WorkerCoord hub = workers[0];
  SimTime all_in = arrivals[0];
  for (std::size_t i = 1; i < workers.size(); ++i) {
    all_in = std::max(all_in, send(workers[i], hub, arrivals[i]));
  }
  // The hub's release issues serialize on its own CPU: the second send
  // cannot depart before the first one's issue slot completes.
  const SimTime hub_free_before = cpus[ref.flat(hub)].next_free();
  SimTime done = all_in;
  for (std::size_t i = 1; i < workers.size(); ++i) {
    done = std::max(done, send(hub, workers[i], all_in));
  }
  EXPECT_EQ(cpus[ref.flat(hub)].next_free(),
            std::max(hub_free_before, all_in) +
                (workers.size() - 1) * kBarrierTokenIssue);
  EXPECT_EQ(real.finish, done);
  EXPECT_EQ(real.messages, 2u * (workers.size() - 1));
}

TEST(Mailbox, SignalDeliversWithInterruptLatency) {
  PgasSystem pgas(small_pgas());
  const auto r = mailbox_signal(pgas, {0, 0}, {1, 1}, 0);
  EXPECT_GT(r.finish, nanoseconds(500));
  EXPECT_EQ(r.messages, 1u);
}

// --- dead-owner failover edge cases ------------------------------------------

TEST(PgasFailover, RequesterNodeDownFallsBackToReplica) {
  // The owner is dead AND the requester's own node is down: the page
  // cannot re-home at the requester, so it lands on the lowest surviving
  // node (the replica holder) instead.
  PgasConfig cfg;
  cfg.nodes = 3;
  cfg.workers_per_node = 1;
  cfg.fault_retry_timeout = microseconds(2);
  cfg.fault_retry_backoff = microseconds(1);
  PgasSystem pgas(cfg);
  HealthRegistry health(3, 1);
  pgas.set_health(&health);
  const auto addr = pgas.alloc(2, 0, kPageSize);
  health.mark_down(2);  // page owner
  health.mark_down(1);  // the requester's own node
  const auto r = pgas.load({1, 0}, addr, 64, 0);
  EXPECT_EQ(pgas.remote_retries(), cfg.fault_max_retries);
  EXPECT_EQ(pgas.page_failovers(), 1u);
  SimDuration retry_floor = 0;
  for (std::size_t a = 0; a < cfg.fault_max_retries; ++a) {
    retry_floor += cfg.fault_retry_timeout + a * cfg.fault_retry_backoff;
  }
  EXPECT_GE(r.finish, retry_floor);
  EXPECT_TRUE(r.remote);  // node 0 now owns it; the requester is node 1
  EXPECT_TRUE(pgas.directory().cacheable_at(page_of(addr), 0));
  EXPECT_FALSE(pgas.directory().cacheable_at(page_of(addr), 1));
  // The survivor's own accesses are plain local loads from here on, with
  // no further retries or failovers.
  const auto after = pgas.load({0, 0}, addr, 8, r.finish);
  EXPECT_FALSE(after.remote);
  EXPECT_EQ(pgas.remote_retries(), cfg.fault_max_retries);
  EXPECT_EQ(pgas.page_failovers(), 1u);
}

TEST(PgasFailover, RepairRacingFinalRetryAvoidsFailover) {
  // A repair that lands between the final retry's timeout and its
  // liveness re-check wins the race: the access proceeds against the
  // original owner and the page never moves. The on_retry hook fires at
  // exactly that point, which is how the litmus harness scripts the race
  // deterministically.
  PgasConfig cfg;
  cfg.nodes = 2;
  cfg.workers_per_node = 1;
  cfg.fault_retry_timeout = microseconds(2);
  cfg.fault_retry_backoff = microseconds(1);
  PgasSystem pgas(cfg);
  HealthRegistry health(2, 1);
  pgas.set_health(&health);
  const auto addr = pgas.alloc(1, 0, kPageSize);
  health.mark_down(1);
  std::size_t retries_seen = 0;
  PgasObserver obs;
  obs.on_retry = [&](WorkerCoord, PageId, std::size_t attempt, SimTime) {
    retries_seen = attempt;
    if (attempt == cfg.fault_max_retries) health.mark_up(1);
  };
  pgas.set_observer(&obs);
  const auto r = pgas.load({0, 0}, addr, 64, 0);
  pgas.set_observer(nullptr);
  // Every retry attempt was burned, but no failover happened.
  EXPECT_EQ(retries_seen, cfg.fault_max_retries);
  EXPECT_EQ(pgas.remote_retries(), cfg.fault_max_retries);
  EXPECT_EQ(pgas.page_failovers(), 0u);
  EXPECT_TRUE(r.remote);  // served by the original, repaired owner
  EXPECT_TRUE(pgas.directory().cacheable_at(page_of(addr), 1));
  EXPECT_FALSE(pgas.directory().cacheable_at(page_of(addr), 0));
}

}  // namespace
}  // namespace ecoscale
