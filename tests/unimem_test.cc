#include <gtest/gtest.h>

#include <array>

#include "common/check.h"
#include "unimem/pgas.h"
#include "unimem/sync.h"

namespace ecoscale {
namespace {

PgasConfig small_pgas() {
  PgasConfig cfg;
  cfg.nodes = 2;
  cfg.workers_per_node = 2;
  return cfg;
}

TEST(Pgas, AllocRegistersOwnership) {
  PgasSystem pgas(small_pgas());
  const auto addr = pgas.alloc(1, 0, 2 * kPageSize);
  EXPECT_EQ(addr.node(), 1);
  EXPECT_EQ(addr.worker(), 0);
  EXPECT_TRUE(pgas.directory().cacheable_at(page_of(addr), 1));
  EXPECT_TRUE(
      pgas.directory().cacheable_at(page_of(addr + kPageSize), 1));
  EXPECT_FALSE(pgas.directory().cacheable_at(page_of(addr), 0));
}

TEST(Pgas, AllocationsDoNotOverlap) {
  PgasSystem pgas(small_pgas());
  const auto a = pgas.alloc(0, 0, 100);
  const auto b = pgas.alloc(0, 0, 100);
  EXPECT_GE(b.offset(), a.offset() + 100);
}

TEST(Pgas, FunctionalStoreRoundTrip) {
  PgasSystem pgas(small_pgas());
  const auto addr = pgas.alloc(0, 1, 3 * kPageSize);
  std::vector<std::uint8_t> data(2 * kPageSize + 100);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7);
  }
  // Cross-page write at a non-zero offset.
  pgas.write_bytes(addr + 50, data);
  std::vector<std::uint8_t> out(data.size());
  pgas.read_bytes(addr + 50, out);
  EXPECT_EQ(out, data);
  // Unwritten memory reads as zero.
  std::array<std::uint8_t, 4> zeros{};
  std::array<std::uint8_t, 4> probe{1, 2, 3, 4};
  pgas.read_bytes(pgas.alloc(1, 1, 64), probe);
  EXPECT_EQ(probe, zeros);
}

TEST(Pgas, LocalAccessStaysOnNode) {
  PgasSystem pgas(small_pgas());
  const auto addr = pgas.alloc(0, 0, kPageSize);
  const auto r = pgas.load({0, 1}, addr, 64, 0);  // same node, other worker
  EXPECT_FALSE(r.remote);
  EXPECT_EQ(pgas.local_accesses(), 1u);
  EXPECT_EQ(pgas.remote_accesses(), 0u);
}

TEST(Pgas, RemoteAccessCrossesNodeAndIsNotCached) {
  PgasSystem pgas(small_pgas());
  const auto addr = pgas.alloc(0, 0, kPageSize);
  const auto first = pgas.load({1, 0}, addr, 64, 0);
  EXPECT_TRUE(first.remote);
  EXPECT_FALSE(first.cache_hit);
  // Repeat: still remote, still no cache hit (UNIMEM: remote data is not
  // cacheable at the requester).
  const auto second = pgas.load({1, 0}, addr, 64, first.finish);
  EXPECT_TRUE(second.remote);
  EXPECT_FALSE(second.cache_hit);
  EXPECT_EQ(pgas.remote_accesses(), 2u);
}

TEST(Pgas, LocalCachingWarmsUp) {
  PgasSystem pgas(small_pgas());
  const auto addr = pgas.alloc(0, 0, kPageSize);
  const auto miss = pgas.load({0, 0}, addr, 8, 0);
  EXPECT_FALSE(miss.cache_hit);
  const auto hit = pgas.load({0, 0}, addr, 8, miss.finish);
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_LT(hit.finish - miss.finish, miss.finish);
}

TEST(Pgas, RemoteCostsMoreThanLocal) {
  PgasSystem pgas(small_pgas());
  const auto local_addr = pgas.alloc(0, 0, kPageSize);
  const auto remote_addr = pgas.alloc(1, 0, kPageSize);
  const auto local = pgas.load({0, 0}, local_addr, 64, 0);
  const auto remote = pgas.load({0, 0}, remote_addr, 64, 0);
  EXPECT_GT(remote.finish, local.finish);
  EXPECT_GT(remote.energy, local.energy);
}

TEST(Pgas, PageMigrationFlipsOwnershipAndCacheability) {
  PgasSystem pgas(small_pgas());
  const auto addr = pgas.alloc(0, 0, kPageSize);
  const PageId page = page_of(addr);
  // Warm the old owner's cache so migration must flush.
  (void)pgas.load({0, 0}, addr, 8, 0);
  const auto mig = pgas.migrate_page(page, 1, microseconds(10));
  EXPECT_GT(mig.finish, microseconds(10));
  EXPECT_EQ(mig.bytes_moved, kPageSize);
  EXPECT_TRUE(pgas.directory().cacheable_at(page, 1));
  // The flushed line is gone from the old owner's cache.
  EXPECT_EQ(pgas.cache({0, 0}).state(addr.raw() / 64), LineState::kInvalid);
  // Node 0's access is now remote.
  const auto after = pgas.load({0, 0}, addr, 8, mig.finish);
  EXPECT_TRUE(after.remote);
}

TEST(Pgas, MigrationToSelfIsFree) {
  PgasSystem pgas(small_pgas());
  const auto addr = pgas.alloc(0, 0, kPageSize);
  const auto mig = pgas.migrate_page(page_of(addr), 0, 100);
  EXPECT_EQ(mig.finish, 100u);
  EXPECT_EQ(mig.bytes_moved, 0u);
}

TEST(Pgas, TaskMigrationCheaperThanBulkData) {
  PgasSystem pgas(small_pgas());
  const auto addr = pgas.alloc(1, 0, mebibytes(1));
  // Move task: one closure message.
  const auto task = pgas.migrate_task({0, 0}, {1, 0}, 0);
  // Move data: 1 MiB DMA from the remote node.
  const auto data = pgas.dma({0, 0}, addr, mebibytes(1), false, 0);
  EXPECT_LT(task.finish, data.finish);
  EXPECT_LT(task.energy, data.energy);
}

TEST(Pgas, TaskMigrationToSelfIsFree) {
  PgasSystem pgas(small_pgas());
  const auto r = pgas.migrate_task({0, 0}, {0, 0}, 42);
  EXPECT_EQ(r.finish, 42u);
  EXPECT_DOUBLE_EQ(r.energy, 0.0);
}

TEST(Pgas, AccessToUnregisteredPageThrows) {
  PgasSystem pgas(small_pgas());
  const GlobalAddress bogus(0, 0, 0x100000);
  EXPECT_THROW(pgas.load({0, 0}, bogus, 8, 0), CheckError);
}

TEST(Pgas, FlatCoordRoundTrip) {
  PgasSystem pgas(small_pgas());
  for (std::size_t i = 0; i < pgas.worker_count(); ++i) {
    EXPECT_EQ(pgas.flat(pgas.coord(i)), i);
  }
}

// --- synchronisation ---------------------------------------------------------

class BarrierTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BarrierTest, TreeBarrierReleasesAfterLastArrival) {
  PgasConfig cfg;
  cfg.nodes = 2;
  cfg.workers_per_node = GetParam();
  PgasSystem pgas(cfg);
  std::vector<WorkerCoord> workers;
  std::vector<SimTime> arrivals;
  for (std::size_t i = 0; i < pgas.worker_count(); ++i) {
    workers.push_back(pgas.coord(i));
    arrivals.push_back(microseconds(i));  // straggler is the last worker
  }
  const auto r = tree_barrier(pgas, workers, arrivals);
  EXPECT_GT(r.finish, arrivals.back());
  EXPECT_GT(r.messages, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BarrierTest, ::testing::Values(1, 2, 4, 8));

TEST(Barrier, TreeBeatsFlatAtScale) {
  PgasConfig cfg;
  cfg.nodes = 4;
  cfg.workers_per_node = 8;
  PgasSystem pgas(cfg);
  std::vector<WorkerCoord> workers;
  std::vector<SimTime> arrivals;
  for (std::size_t i = 0; i < pgas.worker_count(); ++i) {
    workers.push_back(pgas.coord(i));
    arrivals.push_back(0);
  }
  PgasSystem pgas2(cfg);  // fresh timelines for a fair comparison
  const auto tree = tree_barrier(pgas, workers, arrivals);
  const auto flat = flat_barrier(pgas2, workers, arrivals);
  EXPECT_LT(tree.finish, flat.finish);
}

TEST(Barrier, SingleWorkerTrivial) {
  PgasSystem pgas(small_pgas());
  const std::array workers{WorkerCoord{0, 0}};
  const std::array arrivals{microseconds(5)};
  const auto r = tree_barrier(pgas, workers, arrivals);
  EXPECT_EQ(r.finish, microseconds(5));
  EXPECT_EQ(r.messages, 0u);
}

TEST(Mailbox, SignalDeliversWithInterruptLatency) {
  PgasSystem pgas(small_pgas());
  const auto r = mailbox_signal(pgas, {0, 0}, {1, 1}, 0);
  EXPECT_GT(r.finish, nanoseconds(500));
  EXPECT_EQ(r.messages, 1u);
}

}  // namespace
}  // namespace ecoscale
