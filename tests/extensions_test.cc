// Tests for the extension substrates: PGAS atomics, PA regression,
// streaming PCA, pre-emptive hardware execution / accelerator migration,
// the reconfiguration daemon, and resilience with failure injection.
#include <gtest/gtest.h>

#include <array>

#include "common/check.h"
#include "hls/dse.h"
#include "model/pca.h"
#include "model/svr.h"
#include "runtime/daemon.h"
#include "runtime/resilience.h"
#include "unimem/pgas.h"
#include "worker/preemption.h"

namespace ecoscale {
namespace {

// --- PGAS atomics --------------------------------------------------------

PgasConfig small_pgas() {
  PgasConfig cfg;
  cfg.nodes = 2;
  cfg.workers_per_node = 2;
  return cfg;
}

TEST(Atomics, FetchAddAccumulates) {
  PgasSystem pgas(small_pgas());
  const auto counter = pgas.alloc(0, 0, 64);
  SimTime t = 0;
  for (int i = 1; i <= 5; ++i) {
    const auto r = pgas.atomic_rmw({0, 0}, counter, AtomicOp::kFetchAdd,
                                   static_cast<std::uint64_t>(i), t);
    t = r.finish;
  }
  const auto final = pgas.atomic_rmw({0, 0}, counter, AtomicOp::kFetchAdd,
                                     0, t);
  EXPECT_EQ(final.old_value, 15u);  // 1+2+3+4+5
}

TEST(Atomics, CompareSwapSemantics) {
  PgasSystem pgas(small_pgas());
  const auto lock = pgas.alloc(0, 0, 64);
  const auto acquire = pgas.atomic_rmw({0, 1}, lock, AtomicOp::kCompareSwap,
                                       /*operand=*/1, 0, /*compare=*/0);
  EXPECT_TRUE(acquire.swapped);
  EXPECT_EQ(acquire.old_value, 0u);
  const auto contend = pgas.atomic_rmw({1, 0}, lock, AtomicOp::kCompareSwap,
                                       2, acquire.finish, 0);
  EXPECT_FALSE(contend.swapped);
  EXPECT_EQ(contend.old_value, 1u);
}

TEST(Atomics, SwapAndOr) {
  PgasSystem pgas(small_pgas());
  const auto word = pgas.alloc(1, 0, 64);
  const auto s = pgas.atomic_rmw({1, 0}, word, AtomicOp::kSwap, 0xff, 0);
  EXPECT_EQ(s.old_value, 0u);
  const auto o =
      pgas.atomic_rmw({1, 0}, word, AtomicOp::kFetchOr, 0xf00, s.finish);
  EXPECT_EQ(o.old_value, 0xffu);
  const auto check =
      pgas.atomic_rmw({1, 0}, word, AtomicOp::kFetchAdd, 0, o.finish);
  EXPECT_EQ(check.old_value, 0xfffu);
}

TEST(Atomics, RemoteExecutesAtOwnerAndCostsMore) {
  PgasSystem pgas(small_pgas());
  const auto counter = pgas.alloc(0, 0, 64);
  const auto local =
      pgas.atomic_rmw({0, 0}, counter, AtomicOp::kFetchAdd, 1, 0);
  const auto remote =
      pgas.atomic_rmw({1, 0}, counter, AtomicOp::kFetchAdd, 1, 0);
  EXPECT_FALSE(local.remote);
  EXPECT_TRUE(remote.remote);
  EXPECT_GT(remote.finish - 0, local.finish - 0);
  EXPECT_GT(remote.energy, local.energy);
  // Both updates landed (executed at the owner, no lost updates).
  const auto check =
      pgas.atomic_rmw({0, 0}, counter, AtomicOp::kFetchAdd, 0,
                      std::max(local.finish, remote.finish));
  EXPECT_EQ(check.old_value, 2u);
}

TEST(Atomics, AlignmentEnforced) {
  PgasSystem pgas(small_pgas());
  const auto base = pgas.alloc(0, 0, 64);
  EXPECT_THROW(
      pgas.atomic_rmw({0, 0}, base + 4, AtomicOp::kFetchAdd, 1, 0),
      CheckError);
}

// --- PA regression ("SVM technique") ----------------------------------------

TEST(Svr, LearnsLinearFunction) {
  PassiveAggressiveRegressor model(3, /*epsilon=*/0.5, /*C=*/0.5);
  Rng rng(3);
  for (int i = 0; i < 3000; ++i) {
    const double a = rng.uniform(0, 10);
    const double b = rng.uniform(0, 10);
    model.observe(std::array{1.0, a, b}, 2.0 + 3.0 * a - 1.0 * b);
  }
  const double pred = model.predict(std::array{1.0, 5.0, 2.0});
  EXPECT_NEAR(pred, 2.0 + 15.0 - 2.0, 1.0);
}

TEST(Svr, PassiveInsideTube) {
  PassiveAggressiveRegressor model(2, /*epsilon=*/10.0);
  model.observe(std::array{1.0, 1.0}, 5.0);  // |err|=5 < 10: no update
  EXPECT_DOUBLE_EQ(model.weights()[0], 0.0);
  EXPECT_DOUBLE_EQ(model.weights()[1], 0.0);
}

TEST(Svr, RobustToOutliersVsRidge) {
  // y = 2x with 2% wild outliers: PA's capped updates should track the
  // bulk relationship better than unregularised least squares would.
  PassiveAggressiveRegressor pa(2, 0.2, 0.05);
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform(0, 10);
    const double y = rng.chance(0.02) ? 1e4 : 2.0 * x;
    pa.observe(std::array{1.0, x}, y);
  }
  EXPECT_NEAR(pa.predict(std::array{1.0, 5.0}), 10.0, 2.5);
}

// --- streaming PCA ------------------------------------------------------------

TEST(Pca, FindsDominantDirection) {
  StreamingPca pca(3, 1);
  Rng rng(4);
  // Data varies along (1, 2, 0)/sqrt(5) with small isotropic noise.
  for (int i = 0; i < 5000; ++i) {
    const double t = rng.normal(0, 10.0);
    pca.observe(std::array{t * 1.0 + rng.normal(0, 0.1),
                           t * 2.0 + rng.normal(0, 0.1),
                           rng.normal(0, 0.1)});
  }
  const auto c = pca.component(0);
  const double inv = std::sqrt(5.0);
  // Direction up to sign.
  const double dot = c[0] * (1.0 / inv) + c[1] * (2.0 / inv) + c[2] * 0.0;
  EXPECT_GT(std::abs(dot), 0.98);
}

TEST(Pca, ComponentsStayUnitNorm) {
  StreamingPca pca(4, 2);
  Rng rng(6);
  for (int i = 0; i < 500; ++i) {
    pca.observe(std::array{rng.normal(), rng.normal(), rng.normal(),
                           rng.normal()});
  }
  for (std::size_t k = 0; k < 2; ++k) {
    double norm = 0.0;
    for (const double v : pca.component(k)) norm += v * v;
    EXPECT_NEAR(norm, 1.0, 1e-6);
  }
}

TEST(Pca, ProjectionCentersData) {
  StreamingPca pca(2, 1);
  Rng rng(8);
  for (int i = 0; i < 3000; ++i) {
    pca.observe(std::array{100.0 + rng.normal(0, 5.0), -50.0});
  }
  // The mean point projects to ~0.
  const auto z = pca.project(std::array{100.0, -50.0});
  EXPECT_NEAR(z[0], 0.0, 1.5);
}

TEST(Pca, ExplainedVarianceConcentrates) {
  StreamingPca pca(3, 2);
  Rng rng(11);
  for (int i = 0; i < 4000; ++i) {
    const double t = rng.normal(0, 10.0);
    pca.observe(std::array{t, 0.5 * t + rng.normal(0, 0.2),
                           rng.normal(0, 0.2)});
  }
  const auto ratio = pca.explained_variance_ratio();
  EXPECT_GT(ratio[0], 0.8);  // first component dominates
}

// --- pre-emption and accelerator migration ---------------------------------------

WorkerConfig pre_cfg() {
  WorkerConfig cfg;
  cfg.fabric.fabric_width = 8;
  cfg.fabric.fabric_height = 8;
  return cfg;
}

TEST(Preemption, HighPriorityFinishesSoonerWithPreemption) {
  const auto low = emit_variants(make_sha_like_kernel(), 1).front();
  const auto high = emit_variants(make_montecarlo_kernel(), 1).front();
  Worker w1({0, 0}, pre_cfg());
  Worker w2({0, 1}, pre_cfg());
  const SimTime arrival = microseconds(400);
  const auto pre = run_preemptive(w1, low, 2'000'000, high, 10000, arrival);
  const auto fifo =
      run_to_completion(w2, low, 2'000'000, high, 10000, arrival);
  EXPECT_LT(pre.high_finish, fifo.high_finish);
  // The preempted low job pays for it.
  EXPECT_GT(pre.low_finish, fifo.low_finish);
  EXPECT_GT(pre.overhead_energy, 0.0);
}

TEST(Preemption, NoOverlapMeansNoPreemption) {
  const auto low = emit_variants(make_sha_like_kernel(), 1).front();
  const auto high = emit_variants(make_montecarlo_kernel(), 1).front();
  Worker w({0, 0}, pre_cfg());
  const auto pre = run_preemptive(w, low, 100, high, 100, milliseconds(500));
  EXPECT_DOUBLE_EQ(pre.overhead_energy, 0.0);
}

TEST(Preemption, CheckpointCostScalesWithContext) {
  Worker w({0, 0}, pre_cfg());
  const auto m = emit_variants(make_stencil5_kernel(), 1).front();
  ASSERT_TRUE(w.run_hardware(m, 100, 0).has_value());
  PreemptionConfig small;
  small.context_bytes = 4 * kKiB;
  PreemptionConfig big;
  big.context_bytes = 64 * kKiB;
  const auto a = checkpoint_accelerator(w.fabric(), m, 0, small);
  const auto b = checkpoint_accelerator(w.fabric(), m, 0, big);
  EXPECT_GT(b.done, a.done);
  EXPECT_GT(b.energy, a.energy);
}

TEST(Preemption, CheckpointRequiresLoadedModule) {
  Worker w({0, 0}, pre_cfg());
  const auto m = emit_variants(make_stencil5_kernel(), 1).front();
  EXPECT_THROW(checkpoint_accelerator(w.fabric(), m, 0), CheckError);
}

TEST(AcceleratorMigration, MovesWorkToDestination) {
  const auto m = emit_variants(make_montecarlo_kernel(), 1).front();
  Worker src({0, 0}, pre_cfg());
  Worker dst({0, 1}, pre_cfg());
  ASSERT_TRUE(src.run_hardware(m, 1000, 0).has_value());
  const auto out = migrate_accelerator(src, dst, m, 50000, microseconds(100));
  ASSERT_TRUE(out.ok);
  EXPECT_FALSE(src.fabric().is_loaded(m.kernel));
  EXPECT_TRUE(dst.fabric().is_loaded(m.kernel));
  EXPECT_GT(out.finish, out.resumed);
  EXPECT_GT(out.bytes_moved, 0u);
}

TEST(AcceleratorMigration, FailsIfNotLoaded) {
  const auto m = emit_variants(make_montecarlo_kernel(), 1).front();
  Worker src({0, 0}, pre_cfg());
  Worker dst({0, 1}, pre_cfg());
  EXPECT_FALSE(migrate_accelerator(src, dst, m, 100, 0).ok);
}

// --- reconfiguration daemon -------------------------------------------------------

TEST(Daemon, PrefetchesHotKernels) {
  ReconfigConfig fc;
  fc.fabric_width = 16;
  fc.fabric_height = 8;
  ReconfigManager fabric("f", fc);
  ReconfigDaemon daemon(fabric);
  const auto hot = emit_variants(make_montecarlo_kernel(), 1).front();
  const auto cold = emit_variants(make_stencil5_kernel(), 1).front();
  daemon.register_module(hot);
  daemon.register_module(cold);
  for (int i = 0; i < 10; ++i) daemon.record_call(hot.kernel);
  daemon.record_call(cold.kernel);
  const auto loaded = daemon.tick(0);
  EXPECT_GE(loaded, 1u);
  EXPECT_TRUE(daemon.is_resident(hot.kernel));
  EXPECT_GT(daemon.score(hot.kernel), daemon.score(cold.kernel));
}

TEST(Daemon, EvictsColdWhenHotterWaits) {
  ReconfigConfig fc;
  fc.fabric_width = 2;
  fc.fabric_height = 8;  // roughly one module at a time
  ReconfigManager fabric("f", fc);
  ReconfigDaemon daemon(fabric);
  auto a = emit_variants(make_montecarlo_kernel(), 1).front();
  auto b = emit_variants(make_sha_like_kernel(), 1).front();
  a.shape = ModuleShape{2, 8};
  b.shape = ModuleShape{2, 8};
  daemon.register_module(a);
  daemon.register_module(b);
  // Phase 1: a is hot.
  for (int i = 0; i < 10; ++i) daemon.record_call(a.kernel);
  daemon.tick(0);
  ASSERT_TRUE(daemon.is_resident(a.kernel));
  // Phase 2: a goes silent, b becomes hot; decay drives a's score down.
  SimTime t = milliseconds(1);
  for (int period = 0; period < 12; ++period) {
    for (int i = 0; i < 10; ++i) daemon.record_call(b.kernel);
    daemon.tick(t);
    t += milliseconds(1);
  }
  EXPECT_TRUE(daemon.is_resident(b.kernel));
  EXPECT_FALSE(daemon.is_resident(a.kernel));
  EXPECT_GE(daemon.evictions(), 1u);
}

TEST(Daemon, ScoresDecay) {
  ReconfigManager fabric("f", ReconfigConfig{});
  ReconfigDaemon daemon(fabric);
  const auto m = emit_variants(make_spmv_kernel(), 1).front();
  daemon.register_module(m);
  for (int i = 0; i < 10; ++i) daemon.record_call(m.kernel);
  daemon.tick(0);
  const double s0 = daemon.score(m.kernel);
  daemon.tick(1);
  daemon.tick(2);
  EXPECT_LT(daemon.score(m.kernel), s0);
}

// --- resilience ----------------------------------------------------------------------

std::vector<ResilientTask> make_tasks(std::size_t n, SimDuration d) {
  std::vector<ResilientTask> tasks(n);
  for (std::size_t i = 0; i < n; ++i) {
    tasks[i].id = i;
    tasks[i].duration = d;
  }
  return tasks;
}

TEST(Resilience, NoFailuresAllComplete) {
  ResilienceConfig cfg;
  cfg.failures_per_second = 0.0;
  const auto out = run_with_failures(make_tasks(32, microseconds(100)), cfg);
  EXPECT_EQ(out.completed, 32u);
  EXPECT_EQ(out.failures, 0u);
  EXPECT_DOUBLE_EQ(out.wasted_energy, 0.0);
}

TEST(Resilience, ReexecutionCompletesEverythingDespiteFailures) {
  ResilienceConfig cfg;
  cfg.failures_per_second = 2000.0;  // aggressive, scaled for ms-runs
  cfg.reexecute = true;
  const auto out = run_with_failures(make_tasks(64, microseconds(200)), cfg);
  EXPECT_EQ(out.completed, 64u);
  EXPECT_EQ(out.lost, 0u);
  EXPECT_GT(out.failures, 0u);
  EXPECT_EQ(out.reexecutions, out.failures);
  EXPECT_GT(out.wasted_energy, 0.0);
}

TEST(Resilience, WithoutReexecutionWorkIsLost) {
  ResilienceConfig cfg;
  cfg.failures_per_second = 2000.0;
  cfg.reexecute = false;
  cfg.seed = 7;
  const auto out = run_with_failures(make_tasks(64, microseconds(200)), cfg);
  EXPECT_GT(out.lost, 0u);
  EXPECT_EQ(out.completed + out.lost, 64u);
}

TEST(Resilience, FailureFreeRunsAreFasterThanFailingOnes) {
  ResilienceConfig clean;
  clean.failures_per_second = 0.0;
  ResilienceConfig faulty;
  faulty.failures_per_second = 3000.0;
  const auto tasks = make_tasks(48, microseconds(150));
  const auto a = run_with_failures(tasks, clean);
  const auto b = run_with_failures(tasks, faulty);
  EXPECT_LT(a.makespan, b.makespan);
}

TEST(Scrubbing, PeriodicBoundsCorruptionWindow) {
  const SimTime horizon = milliseconds(100);
  const auto none = scrubbing_policy(
      /*scrub_period=*/0, /*seu_per_second=*/200.0, 2000, horizon,
      microseconds(160), 42);
  const auto slow = scrubbing_policy(milliseconds(5), 200.0, 2000, horizon,
                                     microseconds(160), 42);
  const auto fast = scrubbing_policy(microseconds(500), 200.0, 2000,
                                     horizon, microseconds(160), 42);
  // Scrubbing strictly reduces silent corruption; faster scrubbing more so.
  EXPECT_LT(slow.corrupted_calls, none.corrupted_calls);
  EXPECT_LT(fast.corrupted_calls, slow.corrupted_calls);
  // Overhead is the price, growing with scrub frequency.
  EXPECT_GT(fast.overhead, slow.overhead);
  EXPECT_EQ(none.overhead, 0u);
}

TEST(Scrubbing, NoSeusNoCorruption) {
  const auto out = scrubbing_policy(0, 0.0, 100, milliseconds(10),
                                    microseconds(100), 1);
  EXPECT_EQ(out.corrupted_calls, 0u);
  EXPECT_DOUBLE_EQ(out.corrupted_fraction, 0.0);
}

}  // namespace
}  // namespace ecoscale
