// Implicit (LCA) routing must be observationally identical to the legacy
// dense route table — latency, hops, energy, per-level byte accounting,
// lookahead and diameter — across randomized hierarchical topologies.
// The dense table (RoutingMode::kDenseTable) is kept precisely to serve as
// the equivalence oracle here.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "common/check.h"
#include "interconnect/network.h"
#include "interconnect/packet.h"
#include "interconnect/topology.h"

namespace ecoscale {
namespace {

NetworkConfig leveled_config(RoutingMode mode) {
  NetworkConfig cfg;
  LinkParams l0;
  l0.hop_latency = nanoseconds(20);
  l0.bandwidth = Bandwidth::from_gib_per_s(16.0);
  l0.pj_per_byte = 1.0;
  LinkParams l1;
  l1.hop_latency = nanoseconds(150);
  l1.bandwidth = Bandwidth::from_gib_per_s(8.0);
  l1.pj_per_byte = 6.0;
  LinkParams l2;
  l2.hop_latency = nanoseconds(500);
  l2.bandwidth = Bandwidth::from_gib_per_s(5.0);
  l2.pj_per_byte = 20.0;
  cfg.level_params = {{0, l0}, {1, l1}, {2, l2}};
  cfg.routing = mode;
  return cfg;
}

TEST(RouteEquivalence, RandomizedTreesMatchDenseTableExactly) {
  for (std::uint32_t seed = 0; seed < 120; ++seed) {
    std::mt19937 rng(seed);
    // Sample an ECOSCALE-shaped machine: workers per node, nodes, and an
    // optional chassis level (the three-radix trees PgasSystem builds).
    std::vector<std::size_t> radices;
    radices.push_back(1 + rng() % 5);  // workers per node
    if (rng() % 2 == 0) {
      radices.push_back(1 + rng() % 4);  // nodes per chassis
      radices.push_back(1 + rng() % 3);  // chassis
    } else {
      radices.push_back(1 + rng() % 8);  // nodes
    }
    Network implicit(make_tree(radices), leveled_config(RoutingMode::kAuto));
    Network dense(make_tree(radices),
                  leveled_config(RoutingMode::kDenseTable));
    ASSERT_TRUE(implicit.implicit_routing()) << "seed " << seed;
    ASSERT_FALSE(dense.implicit_routing()) << "seed " << seed;
    const std::size_t eps = implicit.endpoint_count();
    ASSERT_EQ(eps, dense.endpoint_count());

    // Static oracles over every pair (machines here are small).
    for (std::size_t s = 0; s < eps; ++s) {
      for (std::size_t d = 0; d < eps; ++d) {
        ASSERT_EQ(implicit.hop_count(s, d), dense.hop_count(s, d))
            << "seed " << seed << " pair " << s << "->" << d;
        ASSERT_EQ(implicit.route_latency(s, d), dense.route_latency(s, d))
            << "seed " << seed << " pair " << s << "->" << d;
      }
    }
    for (int level = 0; level < 4; ++level) {
      ASSERT_EQ(implicit.min_cross_latency(level),
                dense.min_cross_latency(level))
          << "seed " << seed << " level " << level;
      // Per-source floors: the implicit tree-DP climb against the dense
      // destination sweep — the adaptive engine's source_floor oracle.
      for (std::size_t s = 0; s < eps; ++s) {
        ASSERT_EQ(implicit.min_latency_from(s, level),
                  dense.min_latency_from(s, level))
            << "seed " << seed << " level " << level << " src " << s;
      }
    }
    ASSERT_EQ(implicit.diameter(), dense.diameter()) << "seed " << seed;

    // Dynamic equivalence: the same randomized packet sequence must
    // produce byte-identical arrivals, energy and per-level traffic —
    // contention state included (trees have unique paths, so the two
    // modes must reserve the same link timelines in the same order).
    if (eps >= 2) {
      SimTime now = 0;
      for (int i = 0; i < 64; ++i) {
        const auto src = static_cast<std::size_t>(rng() % eps);
        auto dst = static_cast<std::size_t>(rng() % eps);
        Packet p{static_cast<PacketType>(rng() % kPacketTypeCount),
                 {},
                 {},
                 64 + rng() % 4096};
        const auto a = implicit.send(src, dst, p, now);
        const auto b = dense.send(src, dst, p, now);
        ASSERT_EQ(a.arrival, b.arrival) << "seed " << seed << " send " << i;
        ASSERT_EQ(a.hops, b.hops) << "seed " << seed << " send " << i;
        ASSERT_DOUBLE_EQ(a.energy, b.energy)
            << "seed " << seed << " send " << i;
        now += rng() % 200;
      }
      ASSERT_EQ(implicit.total_packets(), dense.total_packets());
      ASSERT_EQ(implicit.byte_hops(), dense.byte_hops());
      ASSERT_EQ(implicit.bytes_per_level(), dense.bytes_per_level());
      ASSERT_DOUBLE_EQ(implicit.energy().total(), dense.energy().total());
    }
  }
}

TEST(RouteEquivalence, ImplicitStateIsLinearDenseIsQuadratic) {
  Network implicit(make_tree({16, 64}), leveled_config(RoutingMode::kAuto));
  Network dense(make_tree({16, 64}),
                leveled_config(RoutingMode::kDenseTable));
  ASSERT_TRUE(implicit.implicit_routing());
  // 1024 endpoints, 1089 vertices: implicit carries 16 B/vertex; the dense
  // table starts at 8 B per endpoint *pair*.
  EXPECT_LT(implicit.route_state_bytes(), 64u * 1089u);
  EXPECT_GE(dense.route_state_bytes(), 8u * 1024u * 1024u);
}

TEST(RouteEquivalence, NonTreeTopologiesFallBackToDenseRouting) {
  Network mesh(make_mesh2d(4, 4), leveled_config(RoutingMode::kAuto));
  EXPECT_FALSE(mesh.implicit_routing());
  // Still routable and sane.
  EXPECT_GT(mesh.hop_count(0, 15), 0);
  EXPECT_GT(mesh.diameter(), 0);
  Network fly(make_dragonfly(3, 2, 2), leveled_config(RoutingMode::kAuto));
  EXPECT_FALSE(fly.implicit_routing());
  EXPECT_GT(fly.diameter(), 0);
}

TEST(RouteEquivalence, ImplicitTreeModeRejectsNonTrees) {
  EXPECT_THROW(Network(make_mesh2d(3, 3),
                       leveled_config(RoutingMode::kImplicitTree)),
               CheckError);
}

}  // namespace
}  // namespace ecoscale
