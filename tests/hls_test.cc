#include <gtest/gtest.h>

#include "hls/dse.h"
#include "hls/estimate.h"
#include "hls/ir.h"

namespace ecoscale {
namespace {

TEST(KernelIR, FactoriesHaveDistinctIds) {
  const KernelIR kernels[] = {
      make_stencil5_kernel(),  make_matmul_tile_kernel(),
      make_montecarlo_kernel(), make_cart_split_kernel(),
      make_sha_like_kernel(),   make_spmv_kernel()};
  for (std::size_t i = 0; i < std::size(kernels); ++i) {
    for (std::size_t j = i + 1; j < std::size(kernels); ++j) {
      EXPECT_NE(kernels[i].id, kernels[j].id);
    }
    EXPECT_GT(kernels[i].ops.total(), 0u);
    EXPECT_GT(kernels[i].cpu_cycles_per_item, 0.0);
  }
}

TEST(Estimate, PipelinedBaseDesign) {
  const auto k = make_stencil5_kernel();
  const auto est = estimate_design(k, HlsDesign{});
  EXPECT_GE(est.ii, 1u);
  EXPECT_GT(est.depth, 1u);
  EXPECT_GT(est.area_units, 0u);
  EXPECT_GE(est.slots, 1u);
  EXPECT_GT(est.pj_per_item, 0.0);
}

TEST(Estimate, NoPipelineIsSlower) {
  const auto k = make_stencil5_kernel();
  HlsDesign pipe;
  pipe.pipeline = true;
  HlsDesign nopipe;
  nopipe.pipeline = false;
  const auto a = estimate_design(k, pipe);
  const auto b = estimate_design(k, nopipe);
  EXPECT_GT(a.items_per_cycle, b.items_per_cycle);
}

TEST(Estimate, UnrollIncreasesAreaAndNeverThroughputLoss) {
  const auto k = make_montecarlo_kernel();  // no recurrence: unroll helps
  HlsDesign u1;
  HlsDesign u8;
  u8.unroll = 8;
  u8.array_partition = 8;
  u8.dram_ports = 4;
  const auto a = estimate_design(k, u1);
  const auto b = estimate_design(k, u8);
  EXPECT_GT(b.area_units, a.area_units);
  EXPECT_GT(b.items_per_cycle, a.items_per_cycle);
}

TEST(Estimate, RecurrenceBoundsII) {
  const auto k = make_matmul_tile_kernel();  // dep distance 1, latency 5
  HlsDesign d;
  d.array_partition = 8;
  d.dram_ports = 4;
  const auto est = estimate_design(k, d);
  EXPECT_GE(est.ii, 5u);  // recurrence floor
}

TEST(Estimate, MemoryPortsBoundII) {
  auto k = make_stencil5_kernel();  // 5 loads + 1 store, no recurrence
  HlsDesign d;
  d.unroll = 4;
  d.array_partition = 1;
  d.dram_ports = 1;  // 2 ports total, 24 mem ops per II
  const auto est = estimate_design(k, d);
  EXPECT_GE(est.ii, 12u);
  HlsDesign wide = d;
  wide.array_partition = 8;
  wide.dram_ports = 4;
  const auto est2 = estimate_design(k, wide);
  EXPECT_LT(est2.ii, est.ii);
}

TEST(Estimate, ModuleEmissionRoundTrip) {
  const auto k = make_montecarlo_kernel();
  const auto est = estimate_design(k, HlsDesign{});
  const auto m = emit_module(k, est, HlsTechnology{}, 8);
  EXPECT_EQ(m.kernel, k.id);
  EXPECT_EQ(m.pipeline_depth, est.depth);
  EXPECT_GE(m.shape.slots(), est.slots);
  EXPECT_EQ(m.bytes_in_per_item, k.bytes_in);
  // Per-item rate of the module matches the estimate within integer
  // rounding of II/unroll.
  const double module_rate =
      m.clock_ghz / static_cast<double>(m.initiation_interval);
  const double est_rate = est.items_per_cycle * 0.25;
  EXPECT_NEAR(module_rate, est_rate, est_rate * 0.01);
}

TEST(Dse, EnumerationCoversGrid) {
  const auto points = enumerate_designs(make_stencil5_kernel());
  // 5 unrolls × 4 partitions × 3 ports × 2 pipeline = 120.
  EXPECT_EQ(points.size(), 120u);
}

TEST(Dse, ParetoFrontIsMonotone) {
  const auto points = enumerate_designs(make_montecarlo_kernel());
  const auto front = pareto_front(points);
  ASSERT_FALSE(front.empty());
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GT(front[i].slots, front[i - 1].slots);
    EXPECT_GT(front[i].items_per_cycle, front[i - 1].items_per_cycle);
  }
}

TEST(Dse, ParetoDominatesAllPoints) {
  const auto points = enumerate_designs(make_cart_split_kernel());
  const auto front = pareto_front(points);
  for (const auto& p : points) {
    bool dominated_or_on_front = false;
    for (const auto& f : front) {
      if (f.slots <= p.slots && f.items_per_cycle >= p.items_per_cycle) {
        dominated_or_on_front = true;
        break;
      }
    }
    EXPECT_TRUE(dominated_or_on_front);
  }
}

TEST(Dse, SelectRespectsAreaBudget) {
  const auto k = make_montecarlo_kernel();
  DseConstraints tight;
  tight.max_slots = 8;
  const auto small = select_design(k, tight);
  ASSERT_TRUE(small.has_value());
  EXPECT_LE(small->slots, 8u);
  DseConstraints loose;
  loose.max_slots = 512;
  const auto big = select_design(k, loose);
  ASSERT_TRUE(big.has_value());
  EXPECT_GE(big->items_per_cycle, small->items_per_cycle);
}

TEST(Dse, SelectFailsOnImpossibleFloor) {
  const auto k = make_matmul_tile_kernel();
  DseConstraints c;
  c.max_slots = 2;
  c.min_items_per_cycle = 100.0;  // unreachable
  EXPECT_FALSE(select_design(k, c).has_value());
}

TEST(Dse, EmitVariantsSpanAreaRange) {
  const auto variants = emit_variants(make_montecarlo_kernel(), 3);
  ASSERT_GE(variants.size(), 2u);
  ASSERT_LE(variants.size(), 3u);
  EXPECT_LT(variants.front().shape.slots(), variants.back().shape.slots());
  for (const auto& v : variants) {
    EXPECT_EQ(v.kernel, make_montecarlo_kernel().id);
  }
}

TEST(Dse, VariantNamesEncodeDesign) {
  const auto variants = emit_variants(make_stencil5_kernel(), 2);
  for (const auto& v : variants) {
    EXPECT_NE(v.name.find("stencil5"), std::string::npos);
  }
}

}  // namespace
}  // namespace ecoscale
