// Parameterised property sweeps over module invariants.
#include <gtest/gtest.h>

#include <tuple>

#include "apps/sort.h"
#include "fabric/bitstream.h"
#include "fabric/floorplan.h"
#include "hls/dse.h"
#include "interconnect/network.h"
#include "mpi/mpi.h"
#include "sim/timeline.h"
#include "unimem/pgas.h"

namespace ecoscale {
namespace {

// --- Timeline: reservations never overlap -----------------------------------

class TimelineSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TimelineSweep, ReservationsNeverOverlap) {
  Rng rng(GetParam());
  Timeline tl;
  SimTime prev_end = 0;
  for (int i = 0; i < 500; ++i) {
    const SimTime ready = rng.uniform_u64(1000000);
    const SimDuration service = 1 + rng.uniform_u64(5000);
    const SimTime start = tl.reserve(ready, service);
    EXPECT_GE(start, ready);
    EXPECT_GE(start, prev_end);  // FIFO: serially reusable
    prev_end = start + service;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimelineSweep, ::testing::Values(1, 2, 3, 7));

// --- Network: triangle-ish sanity over random pairs -------------------------

class NetworkSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(NetworkSweep, HopsSymmetricAndBounded) {
  const auto [radix, levels] = GetParam();
  std::vector<std::size_t> radices(levels, radix);
  NetworkConfig cfg;
  cfg.level_params = {{0, LinkParams{}}};
  Network net(make_tree(radices), cfg);
  Rng rng(99);
  const int max_hops = static_cast<int>(2 * levels);
  for (int i = 0; i < 200; ++i) {
    const auto a = rng.uniform_u64(net.endpoint_count());
    const auto b = rng.uniform_u64(net.endpoint_count());
    const int ab = net.hop_count(a, b);
    const int ba = net.hop_count(b, a);
    EXPECT_EQ(ab, ba);
    EXPECT_LE(ab, max_hops);
    if (a == b) {
      EXPECT_EQ(ab, 0);
    } else {
      EXPECT_GE(ab, 2);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, NetworkSweep,
    ::testing::Combine(::testing::Values(2u, 4u, 8u),
                       ::testing::Values(1u, 2u, 3u)));

// --- Bitstream compression: ratio ordering across density -------------------

class DensitySweep : public ::testing::TestWithParam<double> {};

TEST_P(DensitySweep, CompressionNeverInflatesPastTokenOverhead) {
  const auto bs = generate_bitstream(4, GetParam(), 5);
  const auto rle = compress_rle(bs);
  const auto lz = compress_lz(bs);
  // Worst case token overhead is bounded: 3 bytes per 64-byte frame.
  EXPECT_LE(rle.compressed_size, bs.size() + bs.size() / 16 + 16);
  EXPECT_LE(lz.compressed_size, bs.size() + bs.size() / 16 + 16);
}

INSTANTIATE_TEST_SUITE_P(Densities, DensitySweep,
                         ::testing::Values(0.05, 0.2, 0.5, 0.8, 1.0));

// --- Floorplan: random churn keeps the grid consistent ----------------------

class FloorplanChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FloorplanChurn, UsedSlotsAlwaysConsistent) {
  Rng rng(GetParam());
  Floorplan fp(8, 8);
  std::vector<std::pair<RegionId, std::size_t>> live;
  std::size_t expected_used = 0;
  for (int step = 0; step < 400; ++step) {
    if (!live.empty() && rng.chance(0.4)) {
      const auto idx = rng.uniform_u64(live.size());
      fp.remove(live[idx].first);
      expected_used -= live[idx].second;
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      ModuleShape shape{1 + rng.uniform_u64(3), 1 + rng.uniform_u64(3)};
      const auto r = fp.place(shape);
      if (r) {
        live.emplace_back(*r, shape.slots());
        expected_used += shape.slots();
      }
    }
    EXPECT_EQ(fp.used_slots(), expected_used);
    EXPECT_LE(fp.largest_free_rectangle(), fp.free_slots());
    const double frag = fp.fragmentation();
    EXPECT_GE(frag, 0.0);
    EXPECT_LE(frag, 1.0);
  }
  // Defragment at the end: everything still live, zero fragmentation.
  fp.defragment();
  EXPECT_EQ(fp.used_slots(), expected_used);
  for (const auto& [region, slots] : live) {
    EXPECT_TRUE(fp.is_live(region));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FloorplanChurn,
                         ::testing::Values(11, 22, 33, 44));

// --- HLS: estimates are monotone in the constraint direction ----------------

class KernelSweep : public ::testing::TestWithParam<int> {
 protected:
  KernelIR kernel() const {
    switch (GetParam()) {
      case 0: return make_stencil5_kernel();
      case 1: return make_matmul_tile_kernel();
      case 2: return make_montecarlo_kernel();
      case 3: return make_cart_split_kernel();
      case 4: return make_sha_like_kernel();
      default: return make_spmv_kernel();
    }
  }
};

TEST_P(KernelSweep, ParetoFrontNonEmptyAndOrdered) {
  const auto front = pareto_front(enumerate_designs(kernel()));
  ASSERT_FALSE(front.empty());
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_GT(front[i].items_per_cycle, front[i - 1].items_per_cycle);
    EXPECT_GT(front[i].slots, front[i - 1].slots);
  }
}

TEST_P(KernelSweep, BiggerAreaBudgetNeverHurts) {
  double prev = 0.0;
  for (const std::size_t budget : {4u, 8u, 16u, 32u, 64u, 128u}) {
    DseConstraints c;
    c.max_slots = budget;
    const auto pick = select_design(kernel(), c);
    if (!pick) continue;
    EXPECT_GE(pick->items_per_cycle, prev);
    prev = pick->items_per_cycle;
  }
}

TEST_P(KernelSweep, EmittedModulesRespectKernelIO) {
  for (const auto& m : emit_variants(kernel(), 4)) {
    EXPECT_EQ(m.bytes_in_per_item, kernel().bytes_in);
    EXPECT_EQ(m.bytes_out_per_item, kernel().bytes_out);
    EXPECT_GE(m.initiation_interval, 1u);
    EXPECT_GT(m.shape.slots(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Kernels, KernelSweep, ::testing::Range(0, 6));

// --- PGAS: remote accesses always cost at least local ------------------------

class PgasShapeSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(PgasShapeSweep, RemoteNeverCheaperThanLocal) {
  const auto [nodes, workers] = GetParam();
  PgasConfig cfg;
  cfg.nodes = nodes;
  cfg.workers_per_node = workers;
  PgasSystem pgas(cfg);
  const auto local_addr = pgas.alloc(0, 0, kPageSize);
  const auto a = pgas.load({0, 0}, local_addr, 64, 0);
  if (nodes > 1) {
    const auto remote_addr = pgas.alloc(static_cast<NodeId>(nodes - 1), 0,
                                        kPageSize);
    const auto b = pgas.load({0, 0}, remote_addr, 64, 0);
    EXPECT_GE(b.finish, a.finish);
    EXPECT_GE(b.energy, a.energy);
    EXPECT_TRUE(b.remote);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PgasShapeSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),
                       ::testing::Values(1u, 2u, 8u)));

// --- MPI collectives: finish dominated by arrivals ---------------------------

class CollectiveSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CollectiveSweep, FinishNeverBeforeLastArrival) {
  MpiWorld world(GetParam());
  std::vector<SimTime> arrivals(GetParam());
  Rng rng(5);
  SimTime last = 0;
  for (auto& a : arrivals) {
    a = rng.uniform_u64(milliseconds(2));
    last = std::max(last, a);
  }
  EXPECT_GE(world.barrier(arrivals).finish, last);
  EXPECT_GE(world.allreduce(256, arrivals).finish, last);
  EXPECT_GE(world.alltoall(256, arrivals).finish, last);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveSweep,
                         ::testing::Values(2, 3, 4, 5, 8, 9, 16));

// --- Sample sort: permutation property across rank counts --------------------

class SortSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SortSweep, OutputIsSortedPermutation) {
  const auto keys = apps::make_keys(5000, 17);
  const auto trace = apps::sample_sort(keys, GetParam());
  EXPECT_TRUE(std::is_sorted(trace.sorted.begin(), trace.sorted.end()));
  auto ref = keys;
  std::sort(ref.begin(), ref.end());
  EXPECT_EQ(trace.sorted, ref);
}

INSTANTIATE_TEST_SUITE_P(Ranks, SortSweep,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16));

}  // namespace
}  // namespace ecoscale
