#include <gtest/gtest.h>

#include "hls/dse.h"
#include "runtime/scheduler.h"
#include "unimem/pgas.h"
#include "worker/power.h"

namespace ecoscale {
namespace {

TEST(Power, RunAtScalesWithFrequency) {
  DvfsPoint slow{0.6, 30.0};
  DvfsPoint fast{1.2, 120.0};
  const auto a = run_at(1e6, slow, 0.0);
  const auto b = run_at(1e6, fast, 0.0);
  EXPECT_EQ(a.time, 2 * b.time);
  EXPECT_LT(a.energy, b.energy);  // dynamic-only: slow is cheaper
}

TEST(Power, StaticPowerChargesForDuration) {
  DvfsPoint p{1.0, 100.0};
  const auto no_static = run_at(1e6, p, 0.0);
  const auto with_static = run_at(1e6, p, 2.0);
  EXPECT_EQ(no_static.time, with_static.time);
  const double expected_static_pj = 2.0 * to_seconds(no_static.time) * 1e12;
  EXPECT_NEAR(with_static.energy - no_static.energy, expected_static_pj,
              expected_static_pj * 1e-9);
}

TEST(Power, DeadlineInfeasibleReturnsNull) {
  DvfsPoint p{0.5, 20.0};
  EXPECT_FALSE(
      energy_with_deadline(1e9, p, 0.5, 0.1, microseconds(1)).has_value());
}

TEST(Power, LadderIsMonotoneInFrequency) {
  const auto ladder = default_dvfs_ladder();
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_GT(ladder[i].clock_ghz, ladder[i - 1].clock_ghz);
    EXPECT_GT(ladder[i].pj_per_cycle, ladder[i - 1].pj_per_cycle);
  }
}

TEST(Power, GatedIdleFavoursRacing) {
  // Near-zero idle power: finish fast, gate off.
  const auto best = best_dvfs_point(1e9, /*static=*/1.0, /*idle=*/0.01,
                                    milliseconds(2000));
  ASSERT_TRUE(best.has_value());
  EXPECT_GE(best->clock_ghz, 1.5);
}

TEST(Power, LeakyPlatformFavoursJustInTime) {
  // Idle power == static power: duration is paid regardless; minimise
  // dynamic by running as slowly as the deadline allows.
  const auto best = best_dvfs_point(1e9, /*static=*/1.5, /*idle=*/1.5,
                                    milliseconds(2000));
  ASSERT_TRUE(best.has_value());
  EXPECT_LE(best->clock_ghz, 0.8);
}

TEST(Power, ImpossibleDeadlineYieldsNoPoint) {
  EXPECT_FALSE(
      best_dvfs_point(1e12, 1.0, 0.1, microseconds(1)).has_value());
}

// --- progressive translation inside the PGAS ------------------------------------

TEST(ProgressivePgas, RemoteAccessPaysMoreTranslationLevels) {
  PgasConfig base;
  base.nodes = 2;
  base.workers_per_node = 2;
  // Exaggerate translation so its contribution is measurable.
  PgasConfig slow_translation = base;
  slow_translation.translation_latencies = {microseconds(1), microseconds(10),
                                            microseconds(100)};
  PgasSystem fast(base);
  PgasSystem slow(slow_translation);
  const auto fast_remote_addr = fast.alloc(1, 0, kPageSize);
  const auto slow_remote_addr = slow.alloc(1, 0, kPageSize);
  const auto fast_access = fast.load({0, 0}, fast_remote_addr, 8, 0);
  const auto slow_access = slow.load({0, 0}, slow_remote_addr, 8, 0);
  // The slow-translation system pays all three levels (~111 us more).
  EXPECT_GT(slow_access.finish, fast_access.finish + microseconds(100));
}

TEST(ProgressivePgas, LocalAccessOnlyPaysLevelZero) {
  PgasConfig cfg;
  cfg.nodes = 2;
  cfg.workers_per_node = 2;
  cfg.translation_latencies = {nanoseconds(1), microseconds(50),
                               microseconds(500)};
  PgasSystem pgas(cfg);
  const auto local = pgas.alloc(0, 0, kPageSize);
  const auto r = pgas.load({0, 0}, local, 8, 0);
  // Far below the level-1 latency: only the worker-local table was used.
  EXPECT_LT(r.finish, microseconds(50));
}

// --- daemon integrated into the runtime -------------------------------------------

TEST(RuntimeDaemon, EnabledRuntimePrefetches) {
  MachineConfig mc;
  mc.nodes = 1;
  mc.workers_per_node = 2;
  mc.worker.fabric.fabric_width = 6;  // two 3-wide modules fit
  Machine machine(mc);
  Simulator sim;
  RuntimeConfig rc;
  rc.placement = PlacementPolicy::kAlwaysHardware;
  rc.enable_daemon = true;
  rc.daemon.period = microseconds(500);
  RuntimeSystem runtime(machine, sim, rc);
  const auto kernel = make_montecarlo_kernel();
  runtime.register_kernel(kernel, emit_variants(kernel, 1));
  ASSERT_NE(runtime.daemon(0), nullptr);
  for (TaskId i = 0; i < 20; ++i) {
    Task t;
    t.id = i;
    t.kernel = kernel.id;
    t.items = 50000;
    t.features.items = 50000;
    t.home = {0, 0};
    t.release = milliseconds(i);
    runtime.submit(t);
  }
  runtime.run();
  EXPECT_EQ(runtime.results().size(), 20u);
  // The daemon saw the calls and holds a positive score for the kernel.
  EXPECT_GT(runtime.daemon(0)->score(kernel.id), 0.0);
}

TEST(RuntimeFailures, AllTasksCompleteDespiteCrashes) {
  MachineConfig mc;
  mc.nodes = 2;
  mc.workers_per_node = 2;
  Machine machine(mc);
  Simulator sim;
  RuntimeConfig rc;
  rc.placement = PlacementPolicy::kAlwaysSoftware;
  rc.failures_per_second = 3000.0;  // scaled for ms-long runs
  rc.repair_time = microseconds(500);
  RuntimeSystem runtime(machine, sim, rc);
  const auto kernel = make_cart_split_kernel();
  runtime.register_kernel(kernel, emit_variants(kernel, 1));
  constexpr int kTasks = 40;
  for (TaskId i = 0; i < kTasks; ++i) {
    Task t;
    t.id = i;
    t.kernel = kernel.id;
    t.items = 40000;
    t.features.items = 40000;
    t.home = {static_cast<NodeId>(i % 2), static_cast<WorkerId>(i % 2)};
    t.release = microseconds(10 * i);
    runtime.submit(t);
  }
  runtime.run();
  const auto s = runtime.stats();
  EXPECT_EQ(runtime.results().size(), static_cast<std::size_t>(kTasks));
  EXPECT_GT(s.worker_failures, 0u);
  EXPECT_EQ(s.worker_failures, s.reexecutions);
}

TEST(RuntimeFailures, ZeroRateMeansZeroFailures) {
  MachineConfig mc;
  mc.nodes = 1;
  mc.workers_per_node = 2;
  Machine machine(mc);
  Simulator sim;
  RuntimeSystem runtime(machine, sim, RuntimeConfig{});
  const auto kernel = make_spmv_kernel();
  runtime.register_kernel(kernel, emit_variants(kernel, 1));
  for (TaskId i = 0; i < 10; ++i) {
    Task t;
    t.id = i;
    t.kernel = kernel.id;
    t.items = 10000;
    t.features.items = 10000;
    t.home = {0, 0};
    runtime.submit(t);
  }
  runtime.run();
  EXPECT_EQ(runtime.stats().worker_failures, 0u);
}

TEST(RuntimeDaemon, DisabledRuntimeHasNoDaemon) {
  MachineConfig mc;
  mc.nodes = 1;
  mc.workers_per_node = 1;
  Machine machine(mc);
  Simulator sim;
  RuntimeSystem runtime(machine, sim, RuntimeConfig{});
  EXPECT_EQ(runtime.daemon(0), nullptr);
}

}  // namespace
}  // namespace ecoscale
