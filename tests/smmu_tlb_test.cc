// TranslationTlb regression tests.
//
// The open-addressed TLB replaced a std::map + std::list LRU; its contract
// is exact LRU with identical hit/miss and eviction order. A reference
// model reimplementing the old structure is driven side by side on a
// recorded random trace, plus the edge cases (capacity 1, full table,
// context invalidation) where off-by-one eviction bugs live.
#include "address/smmu.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <random>
#include <utility>
#include <vector>

namespace ecoscale {
namespace {

/// The previous TLB implementation, kept verbatim in spirit: a recency
/// list of keys (front = most recent) and a map from key to (phys, list
/// position). Serves as the behavioral oracle.
class ReferenceTlb {
 public:
  explicit ReferenceTlb(std::size_t capacity) : capacity_(capacity) {}

  std::optional<PageId> lookup(ContextId ctx, PageId page) {
    const auto it = map_.find({ctx, page});
    if (it == map_.end()) return std::nullopt;
    lru_.splice(lru_.begin(), lru_, it->second.second);
    return it->second.first;
  }

  void insert(ContextId ctx, PageId page, PageId phys) {
    if (map_.size() >= capacity_) {
      const Key victim = lru_.back();
      lru_.pop_back();
      map_.erase(victim);
    }
    lru_.push_front({ctx, page});
    map_[{ctx, page}] = {phys, lru_.begin()};
  }

  void invalidate_context(ContextId ctx) {
    for (auto it = lru_.begin(); it != lru_.end();) {
      if (it->first == ctx) {
        map_.erase(*it);
        it = lru_.erase(it);
      } else {
        ++it;
      }
    }
  }

  std::size_t size() const { return map_.size(); }

 private:
  using Key = std::pair<ContextId, PageId>;
  std::size_t capacity_;
  std::list<Key> lru_;
  std::map<Key, std::pair<PageId, std::list<Key>::iterator>> map_;
};

TEST(TranslationTlb, MatchesReferenceOnRandomTrace) {
  constexpr std::size_t kCapacity = 32;
  TranslationTlb tlb(kCapacity);
  ReferenceTlb ref(kCapacity);
  std::mt19937_64 rng(0xEC05CA1Eu);
  // Working set ~3x capacity forces steady eviction; two contexts overlap
  // page numbers so the (ctx, page) key matters.
  std::uniform_int_distribution<PageId> pages(0, 3 * kCapacity - 1);
  std::uniform_int_distribution<int> ctxs(0, 1);
  std::uint64_t hits = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto ctx = static_cast<ContextId>(ctxs(rng));
    const PageId page = pages(rng);
    const auto got = tlb.lookup(ctx, page);
    const auto want = ref.lookup(ctx, page);
    ASSERT_EQ(got.has_value(), want.has_value()) << "op " << i;
    if (got.has_value()) {
      ASSERT_EQ(*got, *want) << "op " << i;
      ++hits;
    } else {
      const PageId phys = page ^ (static_cast<PageId>(ctx) << 20);
      tlb.insert(ctx, page, phys);
      ref.insert(ctx, page, phys);
    }
    ASSERT_EQ(tlb.size(), ref.size()) << "op " << i;
    if (i % 2048 == 2047) {
      const auto victim = static_cast<ContextId>(ctxs(rng));
      tlb.invalidate_context(victim);
      ref.invalidate_context(victim);
      ASSERT_EQ(tlb.size(), ref.size()) << "after invalidate, op " << i;
    }
  }
  // The trace must actually exercise both outcomes to mean anything.
  EXPECT_GT(hits, 1000u);
}

TEST(TranslationTlb, CapacityOneEvictsOnEveryNewKey) {
  TranslationTlb tlb(1);
  tlb.insert(0, 100, 1);
  EXPECT_EQ(tlb.lookup(0, 100), std::optional<PageId>(1));
  tlb.insert(0, 200, 2);  // evicts (0, 100)
  EXPECT_EQ(tlb.size(), 1u);
  EXPECT_FALSE(tlb.lookup(0, 100).has_value());
  EXPECT_EQ(tlb.lookup(0, 200), std::optional<PageId>(2));
  // Same page, different context is a different key.
  tlb.insert(7, 200, 3);
  EXPECT_FALSE(tlb.lookup(0, 200).has_value());
  EXPECT_EQ(tlb.lookup(7, 200), std::optional<PageId>(3));
}

TEST(TranslationTlb, FullTableEvictsExactlyTheLeastRecent) {
  constexpr std::size_t kCapacity = 8;
  TranslationTlb tlb(kCapacity);
  for (PageId p = 0; p < kCapacity; ++p) tlb.insert(0, p, p + 100);
  EXPECT_EQ(tlb.size(), kCapacity);
  // Touch page 0 so page 1 becomes the LRU victim.
  EXPECT_TRUE(tlb.lookup(0, 0).has_value());
  tlb.insert(0, 50, 150);
  EXPECT_EQ(tlb.size(), kCapacity);
  EXPECT_FALSE(tlb.lookup(0, 1).has_value()) << "LRU entry should be gone";
  for (PageId p : {PageId{0}, PageId{2}, PageId{3}, PageId{4}, PageId{5},
                   PageId{6}, PageId{7}, PageId{50}}) {
    EXPECT_TRUE(tlb.lookup(0, p).has_value()) << "page " << p;
  }
}

TEST(TranslationTlb, InvalidateContextLeavesOthersIntact) {
  TranslationTlb tlb(16);
  for (PageId p = 0; p < 8; ++p) {
    tlb.insert(1, p, p);
    tlb.insert(2, p, p + 1000);
  }
  tlb.invalidate_context(1);
  EXPECT_EQ(tlb.size(), 8u);
  for (PageId p = 0; p < 8; ++p) {
    EXPECT_FALSE(tlb.lookup(1, p).has_value());
    EXPECT_EQ(tlb.lookup(2, p), std::optional<PageId>(p + 1000));
  }
  // The survivors still evict in LRU order afterwards.
  for (PageId p = 100; p < 116; ++p) tlb.insert(2, p, p);
  EXPECT_EQ(tlb.size(), 16u);
  EXPECT_FALSE(tlb.lookup(2, 0).has_value());
}

}  // namespace
}  // namespace ecoscale
