#include <gtest/gtest.h>

#include "common/check.h"
#include "memory/cache.h"
#include "memory/coherence.h"
#include "memory/dram.h"

namespace ecoscale {
namespace {

CacheConfig tiny_cache() {
  CacheConfig c;
  c.capacity = 1024;  // 2 sets × 8 ways × 64 B
  c.line_size = 64;
  c.ways = 8;
  return c;
}

TEST(Dram, LatencyPlusBandwidth) {
  DramConfig cfg;
  cfg.access_latency = nanoseconds(50);
  cfg.bandwidth = Bandwidth::from_gib_per_s(1.0);
  DramChannel dram("d", cfg);
  const auto r = dram.access(0, kibibytes(1));
  EXPECT_EQ(r.finish,
            nanoseconds(50) + cfg.bandwidth.transfer_time(kibibytes(1)));
  EXPECT_GT(r.energy, 0.0);
  EXPECT_EQ(dram.bytes_transferred(), kibibytes(1));
}

TEST(Dram, ChannelContention) {
  DramChannel dram("d");
  const auto a = dram.access(0, mebibytes(1));
  const auto b = dram.access(0, mebibytes(1));
  EXPECT_GT(b.finish, a.finish);
}

TEST(Cache, FillAndState) {
  Cache c("c", tiny_cache());
  EXPECT_EQ(c.state(10), LineState::kInvalid);
  c.fill(10, LineState::kExclusive);
  EXPECT_EQ(c.state(10), LineState::kExclusive);
}

TEST(Cache, TouchUpgradesOnWrite) {
  Cache c("c", tiny_cache());
  c.fill(10, LineState::kExclusive);
  EXPECT_TRUE(c.touch(10, /*write=*/true));
  EXPECT_EQ(c.state(10), LineState::kModified);
  EXPECT_FALSE(c.touch(999, false));
}

TEST(Cache, WriteTouchOnSharedForbidden) {
  Cache c("c", tiny_cache());
  c.fill(10, LineState::kShared);
  EXPECT_THROW(c.touch(10, /*write=*/true), CheckError);
}

TEST(Cache, LruEvictionWithinSet) {
  auto cfg = tiny_cache();
  cfg.capacity = 256;  // 1 set... 256/(64*8)=0.5 -> invalid; use ways=4
  cfg.ways = 4;
  // 256 / (64*4) = 1 set.
  Cache c("c", cfg);
  for (std::uint64_t line = 0; line < 4; ++line) {
    c.fill(line, LineState::kExclusive);
  }
  c.touch(0, false);  // 0 is now MRU; 1 is LRU
  const auto res = c.fill(100, LineState::kExclusive);
  EXPECT_TRUE(res.evicted);
  EXPECT_EQ(res.victim_line, 1u);
  EXPECT_EQ(c.state(1), LineState::kInvalid);
  EXPECT_EQ(c.state(0), LineState::kExclusive);
}

TEST(Cache, DirtyEvictionTriggersWriteback) {
  auto cfg = tiny_cache();
  cfg.ways = 1;
  cfg.capacity = 64;  // one line total
  Cache c("c", cfg);
  c.fill(0, LineState::kModified);
  const auto res = c.fill(1, LineState::kExclusive);
  EXPECT_TRUE(res.writeback);
  EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Cache, InvalidateReportsDirty) {
  Cache c("c", tiny_cache());
  c.fill(10, LineState::kModified);
  EXPECT_TRUE(c.invalidate(10));
  EXPECT_EQ(c.state(10), LineState::kInvalid);
  c.fill(11, LineState::kShared);
  EXPECT_FALSE(c.invalidate(11));
  EXPECT_FALSE(c.invalidate(12));  // not present
  EXPECT_EQ(c.snoop_invalidations(), 2u);
}

TEST(Cache, DowngradeKeepsData) {
  Cache c("c", tiny_cache());
  c.fill(10, LineState::kModified);
  EXPECT_TRUE(c.downgrade(10));
  EXPECT_EQ(c.state(10), LineState::kShared);
}

TEST(Cache, RejectsBadGeometry) {
  CacheConfig bad;
  bad.capacity = 100;  // not divisible by line*ways
  EXPECT_THROW(Cache("c", bad), CheckError);
}

class CoherenceTest : public ::testing::TestWithParam<CoherenceMode> {
 protected:
  CoherenceTest() {
    for (int i = 0; i < 4; ++i) {
      caches_.push_back(
          std::make_unique<Cache>("c" + std::to_string(i), tiny_cache()));
    }
    std::vector<Cache*> ptrs;
    for (auto& c : caches_) ptrs.push_back(c.get());
    domain_ = std::make_unique<CoherenceDomain>(ptrs, GetParam());
  }
  std::vector<std::unique_ptr<Cache>> caches_;
  std::unique_ptr<CoherenceDomain> domain_;
};

TEST_P(CoherenceTest, FirstReadIsExclusive) {
  domain_->read(0, 0x1000);
  EXPECT_EQ(caches_[0]->state(caches_[0]->line_of(0x1000)),
            LineState::kExclusive);
  EXPECT_EQ(domain_->stats().memory_fetches, 1u);
}

TEST_P(CoherenceTest, SecondReaderSharesAndDowngradesOwner) {
  domain_->read(0, 0x1000);
  domain_->read(1, 0x1000);
  const auto line = caches_[0]->line_of(0x1000);
  EXPECT_EQ(caches_[0]->state(line), LineState::kShared);
  EXPECT_EQ(caches_[1]->state(line), LineState::kShared);
  EXPECT_EQ(domain_->stats().cache_to_cache, 1u);
}

TEST_P(CoherenceTest, WriteInvalidatesSharers) {
  domain_->read(0, 0x1000);
  domain_->read(1, 0x1000);
  domain_->read(2, 0x1000);
  domain_->write(3, 0x1000);
  const auto line = caches_[0]->line_of(0x1000);
  EXPECT_EQ(caches_[0]->state(line), LineState::kInvalid);
  EXPECT_EQ(caches_[1]->state(line), LineState::kInvalid);
  EXPECT_EQ(caches_[2]->state(line), LineState::kInvalid);
  EXPECT_EQ(caches_[3]->state(line), LineState::kModified);
  EXPECT_EQ(domain_->stats().invalidations, 3u);
}

TEST_P(CoherenceTest, WriteHitOnModifiedIsSilent) {
  domain_->write(0, 0x1000);
  const auto before = domain_->stats().snoop_messages;
  domain_->write(0, 0x1000);
  EXPECT_EQ(domain_->stats().snoop_messages, before);
  EXPECT_EQ(domain_->stats().hits, 1u);
}

TEST_P(CoherenceTest, SharedUpgradeCountsAsHitButProbes) {
  domain_->read(0, 0x1000);
  domain_->read(1, 0x1000);
  const auto before = domain_->stats().snoop_messages;
  domain_->write(0, 0x1000);  // upgrade: probe + invalidate sharer
  EXPECT_GT(domain_->stats().snoop_messages, before);
  EXPECT_EQ(caches_[0]->state(caches_[0]->line_of(0x1000)),
            LineState::kModified);
  EXPECT_EQ(caches_[1]->state(caches_[1]->line_of(0x1000)),
            LineState::kInvalid);
}

TEST_P(CoherenceTest, DirtyForwarding) {
  domain_->write(0, 0x2000);
  domain_->read(1, 0x2000);
  EXPECT_EQ(domain_->stats().cache_to_cache, 1u);
  const auto line = caches_[0]->line_of(0x2000);
  EXPECT_EQ(caches_[0]->state(line), LineState::kShared);
  EXPECT_EQ(caches_[1]->state(line), LineState::kShared);
}

INSTANTIATE_TEST_SUITE_P(Modes, CoherenceTest,
                         ::testing::Values(CoherenceMode::kSnoopBroadcast,
                                           CoherenceMode::kDirectory),
                         [](const auto& info) {
                           return info.param == CoherenceMode::kSnoopBroadcast
                                      ? "Broadcast"
                                      : "Directory";
                         });

TEST(CoherenceCost, BroadcastProbesEveryoneDirectoryOnlySharers) {
  auto mk = [](CoherenceMode mode, std::size_t n) {
    std::vector<std::unique_ptr<Cache>> caches;
    std::vector<Cache*> ptrs;
    for (std::size_t i = 0; i < n; ++i) {
      caches.push_back(std::make_unique<Cache>("c", tiny_cache()));
      ptrs.push_back(caches.back().get());
    }
    auto domain = std::make_unique<CoherenceDomain>(ptrs, mode);
    // One miss with zero sharers.
    const auto acc = domain->read(0, 0x1000);
    return std::make_pair(std::move(caches), acc.snoop_messages);
  };
  const auto [c8, broadcast8] = mk(CoherenceMode::kSnoopBroadcast, 8);
  const auto [c16, broadcast16] = mk(CoherenceMode::kSnoopBroadcast, 16);
  const auto [d8, dir8] = mk(CoherenceMode::kDirectory, 8);
  const auto [d16, dir16] = mk(CoherenceMode::kDirectory, 16);
  EXPECT_EQ(broadcast8, 14u);   // 2*(8-1)
  EXPECT_EQ(broadcast16, 30u);  // grows with domain size
  EXPECT_EQ(dir8, 1u);          // directory lookup only
  EXPECT_EQ(dir16, 1u);         // independent of domain size
}

}  // namespace
}  // namespace ecoscale
