#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "common/check.h"
#include "common/energy.h"
#include "common/latency.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/units.h"

namespace ecoscale {
namespace {

TEST(Units, TimeConversions) {
  EXPECT_EQ(nanoseconds(1), 1000u);
  EXPECT_EQ(microseconds(1), 1000u * 1000u);
  EXPECT_EQ(milliseconds(1), 1000u * 1000u * 1000u);
  EXPECT_DOUBLE_EQ(to_nanoseconds(nanoseconds(5)), 5.0);
  EXPECT_DOUBLE_EQ(to_microseconds(microseconds(7)), 7.0);
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
}

TEST(Units, ByteHelpers) {
  EXPECT_EQ(kibibytes(2), 2048u);
  EXPECT_EQ(mebibytes(1), 1024u * 1024u);
}

TEST(Units, BandwidthTransferTime) {
  // 1 GiB/s: 1 GiB takes 1e12 ps = 1 s.
  const auto bw = Bandwidth::from_gib_per_s(1.0);
  EXPECT_NEAR(static_cast<double>(bw.transfer_time(kGiB)), 1e12, 1e6);
  // 8 GiB/s moves 8 bytes in ~0.93 ns.
  const auto fast = Bandwidth::from_gib_per_s(8.0);
  EXPECT_NEAR(static_cast<double>(fast.transfer_time(8)),
              8.0 * 1e12 / (8.0 * static_cast<double>(kGiB)), 1.0);
}

TEST(Check, ThrowsOnFailure) {
  EXPECT_THROW(ECO_CHECK(false), CheckError);
  EXPECT_NO_THROW(ECO_CHECK(true));
  try {
    ECO_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("custom 42"), std::string::npos);
  }
}

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformU64InRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform_u64(17), 17u);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformRealInHalfOpenInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  RunningStat stat;
  for (int i = 0; i < 20000; ++i) stat.add(rng.normal(2.0, 3.0));
  EXPECT_NEAR(stat.mean(), 2.0, 0.1);
  EXPECT_NEAR(stat.stddev(), 3.0, 0.1);
}

TEST(Rng, ZipfSkewsTowardLowRanks) {
  Rng rng(19);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.zipf(10, 1.2)];
  EXPECT_GT(counts[0], counts[9] * 3);
}

TEST(Rng, ZipfZeroSkewIsUniformish) {
  Rng rng(23);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.zipf(4, 0.0)];
  for (const int c : counts) EXPECT_NEAR(c, 2000, 200);
}

TEST(Rng, BoundedPoissonMeanAndBound) {
  Rng rng(31);
  const double mean = 3.0;
  const std::uint64_t bound = 20;
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t k = rng.bounded_poisson(mean, bound);
    EXPECT_LE(k, bound);
    sum += static_cast<double>(k);
  }
  EXPECT_NEAR(sum / n, mean, 0.1);
}

TEST(Rng, BoundedPoissonChiSquaredAgainstPmf) {
  // Pearson fit against the Poisson pmf for k = 0..7 (tail pooled):
  // chi^2 with 8 bins has 7 dof; 24.3 is the 0.1% critical value, so a
  // correct sampler fails this about once in a thousand seeds.
  Rng rng(37);
  const double mean = 2.0;
  const int n = 50000;
  std::vector<double> observed(9, 0.0);
  for (int i = 0; i < n; ++i) {
    const std::uint64_t k = rng.bounded_poisson(mean, 100);
    observed[std::min<std::uint64_t>(k, 8)] += 1.0;
  }
  double chi2 = 0.0;
  double tail = static_cast<double>(n);
  double pmf = std::exp(-mean);  // P(0)
  for (int k = 0; k < 8; ++k) {
    const double expected = pmf * n;
    chi2 += (observed[k] - expected) * (observed[k] - expected) / expected;
    tail -= expected;
    pmf *= mean / (k + 1);
  }
  chi2 += (observed[8] - tail) * (observed[8] - tail) / std::max(tail, 1.0);
  EXPECT_LT(chi2, 24.3);
}

TEST(Rng, BoundedPoissonZeroMeanAndTinyBound) {
  Rng rng(41);
  EXPECT_EQ(rng.bounded_poisson(0.0, 8), 0u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LE(rng.bounded_poisson(50.0, 3), 3u);
  }
}

TEST(ZipfSampler, MatchesTheoreticalFrequencies) {
  // Chi-squared-style fit against p(r) ~ 1/(r+1)^s over 8 ranks.
  const std::size_t ranks = 8;
  const double s = 1.0;
  ZipfSampler zipf(ranks, s);
  Rng rng(43);
  const int n = 50000;
  std::vector<double> observed(ranks, 0.0);
  for (int i = 0; i < n; ++i) ++observed[zipf(rng)];
  double norm = 0.0;
  for (std::size_t r = 0; r < ranks; ++r) {
    norm += 1.0 / std::pow(static_cast<double>(r + 1), s);
  }
  double chi2 = 0.0;
  for (std::size_t r = 0; r < ranks; ++r) {
    const double expected =
        n / (std::pow(static_cast<double>(r + 1), s) * norm);
    chi2 += (observed[r] - expected) * (observed[r] - expected) / expected;
  }
  EXPECT_LT(chi2, 24.3);  // 7 dof, 0.1% critical value
}

TEST(ZipfSampler, ZeroSkewIsUniformAndSharedAcrossStreams) {
  const ZipfSampler zipf(4, 0.0);
  Rng a(47);
  Rng b(53);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 4000; ++i) {
    ++counts[zipf(a)];  // one immutable sampler, two rng streams
    ++counts[zipf(b)];
  }
  for (const int c : counts) EXPECT_NEAR(c, 2000, 200);
}

TEST(ZipfSampler, StrongSkewConcentratesOnRankZero) {
  ZipfSampler zipf(1000, 1.2);
  Rng rng(59);
  int rank0 = 0;
  for (int i = 0; i < 10000; ++i) {
    if (zipf(rng) == 0) ++rank0;
  }
  EXPECT_GT(rank0, 2000);  // ~36% of mass at s=1.2 over 1000 ranks
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(LatencyHistogram, ExactBelowSubBucketRange) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < LatencyHistogram::kSub; ++v) h.record(v);
  EXPECT_EQ(h.count(), LatencyHistogram::kSub);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), LatencyHistogram::kSub - 1);
  // Values below kSub land in exact unit buckets.
  EXPECT_EQ(h.percentile(50.0), LatencyHistogram::kSub / 2 - 1);
  EXPECT_EQ(h.percentile(100.0), h.max());
}

TEST(LatencyHistogram, RelativeQuantileErrorBounded) {
  LatencyHistogram h;
  Rng rng(61);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform spread over ~6 decades, the shape latencies take.
    const std::uint64_t v =
        static_cast<std::uint64_t>(std::exp(rng.uniform() * 14.0)) + 1;
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double p : {50.0, 90.0, 99.0, 99.9}) {
    const std::size_t rank = std::min(
        values.size() - 1,
        static_cast<std::size_t>(std::ceil(p / 100.0 * values.size())) - 1);
    const double exact = static_cast<double>(values[rank]);
    const double approx = static_cast<double>(h.percentile(p));
    // Bucket lower bound: under-reports by at most one sub-bucket width.
    EXPECT_LE(approx, exact * 1.001 + 1.0) << "p" << p;
    EXPECT_GE(approx, exact * (1.0 - 2.0 / LatencyHistogram::kSub) - 1.0)
        << "p" << p;
  }
}

TEST(LatencyHistogram, MergeMatchesSequentialAndIsOrderFree) {
  LatencyHistogram whole;
  LatencyHistogram a;
  LatencyHistogram b;
  Rng rng(67);
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t v = rng.uniform_u64(1u << 20) + 1;
    whole.record(v);
    (i % 2 ? a : b).record(v);
  }
  LatencyHistogram ab = a;
  ab.merge(b);
  LatencyHistogram ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.fingerprint(), whole.fingerprint());
  EXPECT_EQ(ba.fingerprint(), whole.fingerprint());
  EXPECT_EQ(ab.percentile(99.0), whole.percentile(99.0));
  EXPECT_EQ(ab.count(), whole.count());
  EXPECT_EQ(ab.sum(), whole.sum());
  EXPECT_EQ(ab.min(), whole.min());
  EXPECT_EQ(ab.max(), whole.max());
}

TEST(LatencyHistogram, EmptyAndReset) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(99.0), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  const std::uint64_t empty_print = h.fingerprint();
  h.record(12345);
  EXPECT_NE(h.fingerprint(), empty_print);
  h.reset();
  EXPECT_EQ(h.fingerprint(), empty_print);
}

TEST(LatencyHistogram, IndexAndBucketLowRoundTrip) {
  for (const std::uint64_t v :
       {0ull, 1ull, 31ull, 32ull, 33ull, 1000ull, (1ull << 32) + 12345ull,
        ~0ull}) {
    const std::size_t idx = LatencyHistogram::index_of(v);
    const std::uint64_t low = LatencyHistogram::bucket_low(idx);
    EXPECT_LE(low, v);
    EXPECT_EQ(LatencyHistogram::index_of(low), idx);
    if (idx + 1 < LatencyHistogram::kBucketCount) {
      EXPECT_GT(LatencyHistogram::bucket_low(idx + 1), v);
    }
  }
}

TEST(LatencyHistogram, PercentileRankBoundariesAreExact) {
  // Ten distinct unit-bucket values: rank arithmetic is fully exact, so
  // the percentile must flip at precisely ceil(p/100 * 10) with no
  // epsilon slop on either side of a boundary.
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 10; ++v) h.record(v);
  EXPECT_EQ(h.percentile(10.0), 1u);   // target = 1
  EXPECT_EQ(h.percentile(49.99999), 5u);
  EXPECT_EQ(h.percentile(50.0), 5u);   // target = 5, exactly
  EXPECT_EQ(h.percentile(50.00001), 6u);
  EXPECT_EQ(h.percentile(90.0), 9u);
  EXPECT_EQ(h.percentile(100.0), 10u);
}

TEST(LatencyHistogram, PercentileExactAtLargeCounts) {
  // The regression the integer-ceil rank fixed: at large counts the old
  // `frac * count + 0.9999999` double expression drifted past the exact
  // rank (0.8 * 671088640 is not representable, and the epsilon pushed
  // the product over the next integer). Build ~6.7e8 samples by merge
  // doubling: 4 zeros + 1 one, doubled 27 times.
  LatencyHistogram h;
  for (int i = 0; i < 4; ++i) h.record(0);
  h.record(1);
  for (int i = 0; i < 27; ++i) {
    const LatencyHistogram half = h;
    h.merge(half);
  }
  const std::uint64_t n = 5ull << 27;
  ASSERT_EQ(h.count(), n);
  // Exactly 80% of the samples are zero, so the boundary sits at p=80:
  // target == 0.8n lands on the last zero, one rank further is a one.
  EXPECT_EQ(h.percentile(80.0), 0u);
  EXPECT_EQ(h.percentile(79.99999), 0u);
  EXPECT_EQ(h.percentile(80.00001), 1u);
  EXPECT_EQ(h.percentile(100.0), 1u);  // p100 is max() exactly
}

TEST(LatencyHistogram, PercentileLowTailClampsToMin) {
  LatencyHistogram h;
  for (std::uint64_t v = 100; v < 100 + 1000; ++v) h.record(v);
  // p -> 0 clamps the rank to 1 (the minimum sample), never below.
  EXPECT_EQ(h.percentile(0.0), h.min());
  EXPECT_EQ(h.percentile(0.00001), h.min());
  EXPECT_EQ(h.percentile(1e-9), h.min());
  // Out-of-range p is clamped, not UB.
  EXPECT_EQ(h.percentile(-5.0), h.min());
  EXPECT_EQ(h.percentile(250.0), h.max());
  // Monotone in p across the whole range.
  std::uint64_t prev = 0;
  for (double p = 0.0; p <= 100.0; p += 0.5) {
    const std::uint64_t v = h.percentile(p);
    EXPECT_GE(v, prev) << "p" << p;
    prev = v;
  }
}

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(RunningStat, MergeMatchesSequential) {
  RunningStat a;
  RunningStat b;
  RunningStat all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37 - 3;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Samples, ExactPercentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(99), 99.01, 0.1);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(Samples, SingleValue) {
  Samples s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 42.0);
}

TEST(Samples, EmptyPercentileThrows) {
  Samples s;
  EXPECT_THROW(s.percentile(50), CheckError);
}

TEST(QuantileEstimator, ExactForSmallSamples) {
  QuantileEstimator median(0.5);
  median.add(3);
  EXPECT_DOUBLE_EQ(median.value(), 3.0);
  median.add(1);
  EXPECT_DOUBLE_EQ(median.value(), 2.0);
  median.add(5);
  EXPECT_DOUBLE_EQ(median.value(), 3.0);
}

TEST(QuantileEstimator, ConvergesOnUniform) {
  QuantileEstimator q10(0.1);
  QuantileEstimator q50(0.5);
  QuantileEstimator q90(0.9);
  Rng rng(33);
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.uniform(0.0, 100.0);
    q10.add(x);
    q50.add(x);
    q90.add(x);
  }
  EXPECT_NEAR(q10.value(), 10.0, 1.5);
  EXPECT_NEAR(q50.value(), 50.0, 1.5);
  EXPECT_NEAR(q90.value(), 90.0, 1.5);
}

TEST(QuantileEstimator, MedianResistsOutliers) {
  QuantileEstimator median(0.5);
  RunningStat mean;
  Rng rng(37);
  for (int i = 0; i < 20000; ++i) {
    double x = rng.normal(100.0, 5.0);
    if (rng.chance(0.05)) x *= 50.0;  // gross contamination
    median.add(x);
    mean.add(x);
  }
  EXPECT_NEAR(median.value(), 100.0, 3.0);
  EXPECT_GT(mean.mean(), 200.0);  // the mean is dragged far away
}

TEST(QuantileEstimator, RejectsDegenerateQuantile) {
  EXPECT_THROW(QuantileEstimator(0.0), CheckError);
  EXPECT_THROW(QuantileEstimator(1.0), CheckError);
}

TEST(CounterSet, AccumulatesByName) {
  CounterSet c;
  c.add("x");
  c.add("x", 4);
  c.add("y", 2);
  EXPECT_EQ(c.get("x"), 5u);
  EXPECT_EQ(c.get("y"), 2u);
  EXPECT_EQ(c.get("z"), 0u);
  EXPECT_EQ(c.all().size(), 2u);
}

TEST(EnergyMeter, ChargesAndBreakdown) {
  EnergyMeter m;
  m.charge("dram", 100.0);
  m.charge("dram", 50.0);
  m.charge("link", 25.0);
  EXPECT_DOUBLE_EQ(m.total(), 175.0);
  EXPECT_DOUBLE_EQ(m.category("dram"), 150.0);
  EXPECT_DOUBLE_EQ(m.category("none"), 0.0);
}

TEST(EnergyMeter, Merge) {
  EnergyMeter a;
  EnergyMeter b;
  a.charge("x", 1.0);
  b.charge("x", 2.0);
  b.charge("y", 3.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.total(), 6.0);
  EXPECT_DOUBLE_EQ(a.category("x"), 3.0);
}

TEST(Table, RendersAlignedRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(TableFormat, Helpers) {
  EXPECT_EQ(fmt_u64(42), "42");
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_ratio(2.5), "2.50x");
  EXPECT_EQ(fmt_pct(0.425), "42.5%");
  EXPECT_EQ(fmt_bytes(2048), "2.00 KiB");
  EXPECT_EQ(fmt_time_ps(1500.0), "1.50 ns");
  EXPECT_EQ(fmt_energy_pj(2.5e6), "2.50 uJ");
}

}  // namespace
}  // namespace ecoscale
