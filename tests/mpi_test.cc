#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "common/check.h"
#include "mpi/mpi.h"

namespace ecoscale {
namespace {

std::vector<SimTime> zeros(std::size_t n) { return std::vector<SimTime>(n, 0); }

TEST(MpiP2p, EagerSmallMessage) {
  MpiWorld world(4);
  const auto r = world.send(0, 1, 1024, 0);
  EXPECT_GT(r.delivered, r.sent);
  EXPECT_GT(r.energy, 0.0);
  EXPECT_EQ(world.messages_sent(), 1u);
  EXPECT_EQ(world.bytes_sent(), 1024u);
}

TEST(MpiP2p, RendezvousAddsHandshake) {
  MpiConfig cfg;
  MpiWorld world(2, cfg);
  const auto eager = world.send(0, 1, cfg.eager_threshold, 0);
  MpiWorld world2(2, cfg);
  const auto rndv = world2.send(0, 1, cfg.eager_threshold + 1, 0);
  // The rendezvous message carries one more byte but pays an extra RTT.
  const auto bw_time =
      cfg.link.bandwidth.transfer_time(1);
  EXPECT_GT(rndv.delivered, eager.delivered + bw_time);
}

TEST(MpiP2p, SelfSendSkipsNetwork) {
  MpiWorld world(2);
  const auto r = world.send(1, 1, 4096, 100);
  EXPECT_EQ(r.delivered, r.sent);
}

TEST(MpiP2p, LargerMessagesTakeLonger) {
  MpiWorld world(2);
  const auto small = world.send(0, 1, 1024, 0);
  MpiWorld world2(2);
  const auto big = world2.send(0, 1, mebibytes(4), 0);
  EXPECT_GT(big.delivered, small.delivered);
}

TEST(MpiDataPlane, FifoPerChannel) {
  MpiWorld world(2);
  const std::array<std::uint8_t, 3> a{1, 2, 3};
  const std::array<std::uint8_t, 2> b{9, 8};
  world.send_data(0, 1, a, 0, /*tag=*/5);
  world.send_data(0, 1, b, 0, /*tag=*/5);
  const auto first = world.recv_data(0, 1, 5);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ((*first)[0], 1);
  const auto second = world.recv_data(0, 1, 5);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->size(), 2u);
  EXPECT_FALSE(world.recv_data(0, 1, 5).has_value());
  EXPECT_FALSE(world.recv_data(0, 1, 6).has_value());  // other tag
}

class CollectiveSize : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CollectiveSize, BarrierCompletesAfterLastArrival) {
  MpiWorld world(GetParam());
  std::vector<SimTime> arrivals(GetParam(), 0);
  if (!arrivals.empty()) arrivals.back() = milliseconds(1);
  const auto r = world.barrier(arrivals);
  EXPECT_GE(r.finish, milliseconds(1));
  ASSERT_EQ(r.per_rank.size(), GetParam());
  for (const auto t : r.per_rank) EXPECT_GE(t, 0u);
}

TEST_P(CollectiveSize, BroadcastReachesEveryRank) {
  MpiWorld world(GetParam());
  const auto r = world.broadcast(0, kibibytes(4), zeros(GetParam()));
  EXPECT_EQ(r.messages, GetParam() - 1);  // binomial tree: P-1 sends
  for (const auto t : r.per_rank) {
    if (GetParam() > 1) {
      EXPECT_GE(r.finish, t);
    }
  }
}

TEST_P(CollectiveSize, ReduceConvergesAtRoot) {
  MpiWorld world(GetParam());
  const auto r = world.reduce(0, kibibytes(1), zeros(GetParam()));
  EXPECT_EQ(r.messages, GetParam() - 1);
  EXPECT_EQ(r.finish, r.per_rank[0]);
}

TEST_P(CollectiveSize, AllreduceSynchronisesAllRanks) {
  MpiWorld world(GetParam());
  const auto r = world.allreduce(kibibytes(1), zeros(GetParam()));
  // Every rank ends with the same completion ceiling.
  for (const auto t : r.per_rank) EXPECT_LE(t, r.finish);
  if (GetParam() > 1) {
    EXPECT_GT(r.messages, 0u);
  }
}

TEST_P(CollectiveSize, AllgatherRingMessageCount) {
  MpiWorld world(GetParam());
  const auto r = world.allgather(kibibytes(1), zeros(GetParam()));
  EXPECT_EQ(r.messages, GetParam() * (GetParam() - 1));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveSize,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

TEST(Collectives, BroadcastScalesLogarithmically) {
  MpiWorld w4(4);
  MpiWorld w16(16);
  const auto r4 = w4.broadcast(0, kibibytes(64), zeros(4));
  const auto r16 = w16.broadcast(0, kibibytes(64), zeros(16));
  // log2(16)/log2(4) = 2: latency roughly doubles, not ×4.
  EXPECT_LT(static_cast<double>(r16.finish),
            2.6 * static_cast<double>(r4.finish));
}

TEST(Collectives, AlltoallQuadraticBytes) {
  MpiWorld world(4);
  const auto r = world.alltoall(kibibytes(1), zeros(4));
  EXPECT_EQ(r.bytes_on_wire, 4u * 3u * kibibytes(1));
}

TEST(Collectives, NonPowerOfTwoRanksWork) {
  MpiWorld world(5);
  EXPECT_NO_THROW(world.allreduce(512, zeros(5)));
  EXPECT_NO_THROW(world.alltoall(512, zeros(5)));
  EXPECT_NO_THROW(world.broadcast(2, 512, zeros(5)));
  EXPECT_NO_THROW(world.reduce(3, 512, zeros(5)));
}

TEST(CartTopology, RankCoordsRoundTrip) {
  CartTopology cart({3, 4}, /*periodic=*/false);
  EXPECT_EQ(cart.size(), 12u);
  for (std::size_t r = 0; r < cart.size(); ++r) {
    EXPECT_EQ(cart.rank_of(cart.coords_of(r)), r);
  }
}

TEST(CartTopology, NonPeriodicBoundary) {
  CartTopology cart({3, 3}, false);
  EXPECT_FALSE(cart.shift(0, 0, -1).has_value());  // corner
  EXPECT_TRUE(cart.shift(0, 0, 1).has_value());
  EXPECT_EQ(cart.neighbors(4).size(), 4u);  // center has all 4
  EXPECT_EQ(cart.neighbors(0).size(), 2u);  // corner has 2
}

TEST(CartTopology, PeriodicWrapsAround) {
  CartTopology cart({4}, true);
  EXPECT_EQ(cart.shift(0, 0, -1).value(), 3u);
  EXPECT_EQ(cart.shift(3, 0, 1).value(), 0u);
  EXPECT_EQ(cart.neighbors(0).size(), 2u);
}

TEST(CartTopology, ShiftMovesAlongOneDim) {
  CartTopology cart({3, 3}, false);
  // rank = x*3 + y with dims {3,3}: shifting dim 0 moves by 3.
  const auto n = cart.shift(0, 0, 1);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, 3u);
  const auto m = cart.shift(0, 1, 1);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, 1u);
}

}  // namespace
}  // namespace ecoscale
