// Second property-test suite: randomised differential and invariant checks
// on the stateful subsystems.
#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "hls/dse.h"
#include "runtime/scheduler.h"
#include "sim/timeline.h"
#include "unimem/pgas.h"

namespace ecoscale {
namespace {

// --- PGAS backing store vs. a flat reference model -----------------------------

class PgasFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PgasFuzz, MatchesReferenceByteModel) {
  Rng rng(GetParam());
  PgasConfig cfg;
  cfg.nodes = 2;
  cfg.workers_per_node = 2;
  PgasSystem pgas(cfg);
  constexpr Bytes kSize = 3 * kPageSize + 123;
  const auto base = pgas.alloc(1, 1, kSize);
  std::vector<std::uint8_t> reference(kSize, 0);
  for (int op = 0; op < 300; ++op) {
    const Bytes offset = rng.uniform_u64(kSize);
    const Bytes len = 1 + rng.uniform_u64(std::min<Bytes>(kSize - offset,
                                                          2 * kPageSize));
    if (rng.chance(0.5)) {
      std::vector<std::uint8_t> data(len);
      for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_u64(256));
      pgas.write_bytes(base + offset, data);
      std::copy(data.begin(), data.end(), reference.begin() + offset);
    } else {
      std::vector<std::uint8_t> out(len);
      pgas.read_bytes(base + offset, out);
      for (Bytes i = 0; i < len; ++i) {
        ASSERT_EQ(out[i], reference[offset + i])
            << "mismatch at offset " << offset + i << " op " << op;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PgasFuzz, ::testing::Values(1, 2, 3, 4, 5));

// --- atomics linearise: concurrent counter reaches the exact total ---------------

class AtomicFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AtomicFuzz, FetchAddTotalsExactly) {
  Rng rng(GetParam());
  PgasConfig cfg;
  cfg.nodes = 2;
  cfg.workers_per_node = 4;
  PgasSystem pgas(cfg);
  const auto counter = pgas.alloc(0, 0, 64);
  std::uint64_t expected = 0;
  std::vector<SimTime> clocks(pgas.worker_count(), 0);
  for (int i = 0; i < 400; ++i) {
    const std::size_t w = rng.uniform_u64(pgas.worker_count());
    const std::uint64_t delta = rng.uniform_u64(100);
    const auto r = pgas.atomic_rmw(pgas.coord(w), counter,
                                   AtomicOp::kFetchAdd, delta, clocks[w]);
    clocks[w] = r.finish;
    expected += delta;
  }
  const auto final = pgas.atomic_rmw({0, 0}, counter, AtomicOp::kFetchAdd,
                                     0, milliseconds(100));
  EXPECT_EQ(final.old_value, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AtomicFuzz, ::testing::Values(7, 8, 9));

// --- CalendarTimeline: intervals never overlap ------------------------------------

class CalendarFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CalendarFuzz, NoTwoReservationsOverlap) {
  Rng rng(GetParam());
  CalendarTimeline tl;
  std::vector<std::pair<SimTime, SimTime>> intervals;
  SimDuration total = 0;
  for (int i = 0; i < 600; ++i) {
    const SimTime ready = rng.uniform_u64(100000);
    const SimDuration service = 1 + rng.uniform_u64(500);
    const SimTime start = tl.reserve(ready, service);
    ASSERT_GE(start, ready);
    intervals.emplace_back(start, start + service);
    total += service;
  }
  std::sort(intervals.begin(), intervals.end());
  for (std::size_t i = 1; i < intervals.size(); ++i) {
    ASSERT_LE(intervals[i - 1].second, intervals[i].first)
        << "overlap between reservations " << i - 1 << " and " << i;
  }
  EXPECT_EQ(tl.busy_time(), total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CalendarFuzz,
                         ::testing::Values(11, 22, 33, 44));

// --- CalendarTimeline pruning/coalescing vs a brute-force interval model ----------

/// Reference first-fit placement over an explicit, never-pruned,
/// never-coalesced interval list — the behaviour CalendarTimeline had
/// before the watermark/coalescing rework.
class BruteForceCalendar {
 public:
  SimTime place(SimTime ready, SimDuration service) {
    SimTime candidate = ready;
    std::size_t pos = 0;
    for (; pos < intervals_.size(); ++pos) {
      const auto& [start, end] = intervals_[pos];
      if (end <= candidate) continue;
      if (candidate + service <= start) break;  // fits in the gap before
      candidate = end;
    }
    intervals_.emplace_back(candidate, candidate + service);
    std::sort(intervals_.begin(), intervals_.end());
    return candidate;
  }

 private:
  std::vector<std::pair<SimTime, SimTime>> intervals_;
};

class CalendarPruneFuzz : public ::testing::TestWithParam<std::uint64_t> {};

// release(watermark) and interval coalescing are pure space optimizations:
// as long as every later reservation has ready >= watermark (which the
// epoch-boundary call sites guarantee — the watermark is a completed
// epoch), start times must match the unpruned brute-force model exactly.
TEST_P(CalendarPruneFuzz, PrunedPlacementMatchesBruteForceModel) {
  Rng rng(GetParam());
  CalendarTimeline tl;
  BruteForceCalendar reference;
  constexpr int kReservations = 1500;
  SimTime watermark = 0;
  for (int i = 0; i < kReservations; ++i) {
    const SimTime ready = watermark + rng.uniform_u64(2000);
    const SimDuration service = 1 + rng.uniform_u64(100);
    const SimTime expected = reference.place(ready, service);
    ASSERT_EQ(tl.reserve(ready, service), expected)
        << "reservation " << i << " ready=" << ready
        << " service=" << service << " watermark=" << watermark;
    if (i % 50 == 49) {
      watermark += rng.uniform_u64(400);
      tl.release(watermark);
    }
  }
  // Acceptance: the live-interval set must not grow linearly with the
  // reservation count once the watermark advances — pruning drops the
  // retired past and coalescing fuses the packed frontier.
  EXPECT_LT(tl.peak_live_intervals(), kReservations / 4);
  EXPECT_GT(tl.pruned_intervals(), 0u);
  // Releasing past the horizon empties the calendar entirely.
  tl.release(watermark + 1000000);
  EXPECT_EQ(tl.live_intervals(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CalendarPruneFuzz,
                         ::testing::Values(101, 202, 303, 404, 505));

// --- scheduler conservation across the policy grid --------------------------------

using PolicyPoint = std::tuple<PlacementPolicy, DistributionPolicy, bool>;

class SchedulerGrid : public ::testing::TestWithParam<PolicyPoint> {};

TEST_P(SchedulerGrid, EveryTaskCompletesExactlyOnce) {
  const auto [placement, distribution, share] = GetParam();
  MachineConfig mc;
  mc.nodes = 2;
  mc.workers_per_node = 4;
  Machine machine(mc);
  Simulator sim;
  RuntimeConfig rc;
  rc.placement = placement;
  rc.distribution = distribution;
  rc.share_fabric = share;
  rc.spill_depth = 2;
  RuntimeSystem runtime(machine, sim, rc);
  const auto kernels = {make_stencil5_kernel(), make_montecarlo_kernel()};
  for (const auto& k : kernels) {
    runtime.register_kernel(k, emit_variants(k, 2));
  }
  Rng rng(99);
  constexpr int kTasks = 60;
  for (TaskId i = 0; i < kTasks; ++i) {
    Task t;
    t.id = i;
    const auto& k = *(kernels.begin() + (i % 2));
    t.kernel = k.id;
    t.items = 1000 + rng.uniform_u64(100000);
    t.features.items = static_cast<double>(t.items);
    t.home = WorkerCoord{static_cast<NodeId>(rng.uniform_u64(2)),
                         static_cast<WorkerId>(rng.uniform_u64(4))};
    t.release = rng.uniform_u64(milliseconds(5));
    runtime.submit(t);
  }
  runtime.run();
  // Conservation: exactly one result per task id; time sanity per result.
  std::map<TaskId, int> seen;
  for (const auto& r : runtime.results()) {
    ++seen[r.id];
    EXPECT_GE(r.started, r.release);
    EXPECT_GT(r.finished, r.started);
    EXPECT_GE(r.energy, 0.0);
    EXPECT_LT(r.executed_on, machine.worker_count());
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kTasks));
  for (const auto& [id, count] : seen) EXPECT_EQ(count, 1) << "task " << id;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SchedulerGrid,
    ::testing::Combine(
        ::testing::Values(PlacementPolicy::kAlwaysSoftware,
                          PlacementPolicy::kAlwaysHardware,
                          PlacementPolicy::kSizeThreshold,
                          PlacementPolicy::kModelBased),
        ::testing::Values(DistributionPolicy::kHomeOnly,
                          DistributionPolicy::kLazyLocal,
                          DistributionPolicy::kCentralized,
                          DistributionPolicy::kPollLeastLoaded),
        ::testing::Bool()));

// --- reconfiguration: floorplan consistency under random runtime churn ----------

class ReconfigChurn : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReconfigChurn, LoadedSetAlwaysMatchesFloorplan) {
  Rng rng(GetParam());
  ReconfigConfig cfg;
  cfg.fabric_width = 8;
  cfg.fabric_height = 8;
  ReconfigManager mgr("f", cfg);
  std::vector<AcceleratorModule> lib;
  for (const auto& k :
       {make_stencil5_kernel(), make_matmul_tile_kernel(),
        make_montecarlo_kernel(), make_cart_split_kernel(),
        make_sha_like_kernel(), make_spmv_kernel(), make_fft_kernel()}) {
    lib.push_back(emit_variants(k, 1).front());
  }
  SimTime now = 0;
  for (int step = 0; step < 300; ++step) {
    now += microseconds(100);
    const auto& m = lib[rng.uniform_u64(lib.size())];
    if (rng.chance(0.7)) {
      const auto r = mgr.ensure_loaded(m, now);
      if (r) {
        EXPECT_TRUE(mgr.is_loaded(m.kernel));
        EXPECT_TRUE(mgr.floorplan().is_live(r->region));
        if (rng.chance(0.5)) {
          mgr.set_busy_until(r->region, r->ready + microseconds(50));
        }
      }
    } else if (mgr.is_loaded(m.kernel) &&
               mgr.is_idle(m.kernel, now)) {
      mgr.unload(m.kernel);
      EXPECT_FALSE(mgr.is_loaded(m.kernel));
    }
    // Invariant: every loaded kernel has a live region; used slots equal
    // the sum of loaded shapes.
    std::size_t expected_slots = 0;
    for (const auto& mod : lib) {
      if (mgr.is_loaded(mod.kernel)) {
        const auto region = mgr.region_of(mod.kernel);
        ASSERT_TRUE(region.has_value());
        ASSERT_TRUE(mgr.floorplan().is_live(*region));
        expected_slots += mgr.floorplan().placement(*region).shape.slots();
      }
    }
    EXPECT_EQ(mgr.floorplan().used_slots(), expected_slots);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReconfigChurn, ::testing::Values(3, 6, 9));

}  // namespace
}  // namespace ecoscale
