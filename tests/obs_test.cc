// Tests for the obs tracing subsystem: ring wrap-around, category
// filtering, counter sampling, begin/end repair at export, and JSON
// well-formedness (the exported trace is parsed back with a minimal JSON
// parser below — if Perfetto cannot load it, these tests should not pass).
#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace ecoscale {
namespace {

// --- minimal JSON parser ----------------------------------------------------
// Just enough to round-trip the exporter's output: objects, arrays,
// strings with the escapes the exporter emits, and numbers as doubles.

struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> items;
  std::map<std::string, Json> fields;

  const Json* find(const std::string& key) const {
    auto it = fields.find(key);
    return it == fields.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : s_(std::move(text)) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

 private:
  void fail(const std::string& why) {
    if (error_.empty()) {
      error_ = why + " at offset " + std::to_string(pos_);
    }
    pos_ = s_.size();  // unwind
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  char peek() { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  bool consume(char c) {
    skip_ws();
    if (peek() != c) return false;
    ++pos_;
    return true;
  }

  Json value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': case 'f': return boolean();
      case 'n': return null();
      default: return number();
    }
  }

  Json object() {
    Json v;
    v.kind = Json::Kind::kObject;
    if (!consume('{')) { fail("expected {"); return v; }
    if (consume('}')) return v;
    do {
      skip_ws();
      Json key = string_value();
      if (!consume(':')) { fail("expected :"); return v; }
      v.fields[key.str] = value();
    } while (consume(','));
    if (!consume('}')) fail("expected }");
    return v;
  }

  Json array() {
    Json v;
    v.kind = Json::Kind::kArray;
    if (!consume('[')) { fail("expected ["); return v; }
    if (consume(']')) return v;
    do {
      v.items.push_back(value());
    } while (consume(','));
    if (!consume(']')) fail("expected ]");
    return v;
  }

  Json string_value() {
    Json v;
    v.kind = Json::Kind::kString;
    if (!consume('"')) { fail("expected string"); return v; }
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        const char esc = s_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'u':
            pos_ += 4;  // exporter only emits \u00xx for control chars
            c = '?';
            break;
          default: c = esc; break;
        }
      }
      v.str += c;
    }
    if (!consume('"')) fail("unterminated string");
    return v;
  }

  Json boolean() {
    Json v;
    v.kind = Json::Kind::kBool;
    if (s_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (s_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
    } else {
      fail("expected boolean");
    }
    return v;
  }

  Json null() {
    Json v;
    if (s_.compare(pos_, 4, "null") == 0) pos_ += 4;
    else fail("expected null");
    return v;
  }

  Json number() {
    Json v;
    v.kind = Json::Kind::kNumber;
    std::size_t end = pos_;
    while (end < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[end])) ||
            s_[end] == '-' || s_[end] == '+' || s_[end] == '.' ||
            s_[end] == 'e' || s_[end] == 'E')) {
      ++end;
    }
    if (end == pos_) { fail("expected number"); return v; }
    v.number = std::stod(s_.substr(pos_, end - pos_));
    pos_ = end;
    return v;
  }

  std::string s_;
  std::size_t pos_ = 0;
  std::string error_;
};

// --- recorder-level tests ---------------------------------------------------

TEST(TraceRecorder, WrapEvictsOldestAndKeepsOrder) {
  obs::TraceRecorder rec(16, 1);
  const CounterId name = CounterRegistry::intern("obs.test.wrap");
  for (std::uint64_t i = 0; i < 40; ++i) {
    rec.emit(obs::EventType::kInstant, obs::Cat::kApp, name,
             obs::Lane{1, 2}, /*ts=*/i, /*value=*/0,
             static_cast<std::uint32_t>(i));
  }
  EXPECT_EQ(rec.emitted(), 40u);
  EXPECT_EQ(rec.dropped(), 24u);  // 40 emitted - 16 retained
  ASSERT_EQ(rec.size(), 16u);
  // Retained window is the most recent 16 events, oldest first.
  for (std::size_t i = 0; i < rec.size(); ++i) {
    EXPECT_EQ(rec.at(i).ts, 24u + i);
    EXPECT_EQ(rec.at(i).arg, 24u + i);
  }
}

TEST(TraceRecorder, CapacityRoundsUpToPowerOfTwo) {
  obs::TraceRecorder rec(20, 1);  // rounds up to 32
  const CounterId name = CounterRegistry::intern("obs.test.cap");
  for (std::uint64_t i = 0; i < 32; ++i) {
    rec.emit(obs::EventType::kInstant, obs::Cat::kApp, name,
             obs::Lane{0, 0}, i, 0, 0);
  }
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_EQ(rec.size(), 32u);
}

TEST(TraceRecorder, CounterSamplingKeepsEveryNth) {
  obs::TraceRecorder rec(16, 4);
  int kept = 0;
  for (int i = 0; i < 16; ++i) {
    if (rec.counter_due()) ++kept;
  }
  EXPECT_EQ(kept, 4);  // ticks 0, 4, 8, 12

  obs::TraceRecorder all(16, 1);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(all.counter_due());
}

TEST(TraceEventLayout, StaysOneCacheHalfLine) {
  EXPECT_EQ(sizeof(obs::TraceEvent), 32u);
}

// --- category mask ----------------------------------------------------------

TEST(CatMask, ParsesListsAndDefaults) {
  EXPECT_EQ(obs::cat_mask_from_list(""), obs::kAllCats);
  EXPECT_EQ(obs::cat_mask_from_list("all"), obs::kAllCats);
  EXPECT_EQ(obs::cat_mask_from_list("unimem,net"),
            obs::cat_bit(obs::Cat::kUnimem) | obs::cat_bit(obs::Cat::kNet));
  // Unknown names are ignored; all-unknown falls back to everything.
  EXPECT_EQ(obs::cat_mask_from_list("unimem,bogus"),
            obs::cat_bit(obs::Cat::kUnimem));
  EXPECT_EQ(obs::cat_mask_from_list("bogus"), obs::kAllCats);
}

#if !defined(ECO_TRACE_DISABLED)

// --- session + export tests -------------------------------------------------

obs::TraceOptions small_options(std::uint32_t categories = obs::kAllCats) {
  obs::TraceOptions opts;
  opts.categories = categories;
  opts.ring_capacity = 1u << 10;
  opts.counter_sample_every = 1;
  return opts;
}

TEST(TraceSession, CategoryMaskGatesTracer) {
  auto& session = obs::TraceSession::instance();
  session.start(small_options(obs::cat_bit(obs::Cat::kUnimem)));
  EXPECT_NE(obs::tracer(obs::Cat::kUnimem), nullptr);
  EXPECT_EQ(obs::tracer(obs::Cat::kNet), nullptr);
  session.stop();
  EXPECT_EQ(obs::tracer(obs::Cat::kUnimem), nullptr);
}

/// Export the current session and parse it back; fails the test on
/// malformed JSON.
Json export_and_parse(const obs::TraceSession& session) {
  std::ostringstream os;
  session.export_json(os);
  JsonParser parser(os.str());
  Json doc = parser.parse();
  EXPECT_TRUE(parser.ok()) << parser.error() << "\n" << os.str();
  return doc;
}

const Json* find_span(const Json& doc, const std::string& name) {
  const Json* events = doc.find("traceEvents");
  if (events == nullptr) return nullptr;
  for (const Json& e : events->items) {
    const Json* ph = e.find("ph");
    const Json* n = e.find("name");
    if (ph != nullptr && ph->str == "X" && n != nullptr && n->str == name) {
      return &e;
    }
  }
  return nullptr;
}

TEST(TraceExport, JsonIsWellFormedAndSpansBalance) {
  auto& session = obs::TraceSession::instance();
  session.start(small_options());

  const CounterId orphan_end = CounterRegistry::intern("obs.test.orphan_end");
  const CounterId paired = CounterRegistry::intern("obs.test.paired");
  const CounterId orphan_begin =
      CounterRegistry::intern("obs.test.orphan_begin");
  const CounterId complete = CounterRegistry::intern("obs.test.complete");
  const CounterId tick = CounterRegistry::intern("obs.test.tick");
  const obs::Lane lane{3, 7};

  // Window is [50, 1000] (the instants below pin both edges).
  ECO_TRACE_INSTANT(obs::Cat::kApp, tick, lane, 50, 1);
  ECO_TRACE_END(obs::Cat::kApp, orphan_end, lane, 100);    // lost its begin
  ECO_TRACE_BEGIN(obs::Cat::kApp, paired, lane, 200);
  ECO_TRACE_END(obs::Cat::kApp, paired, lane, 400);
  ECO_TRACE_SPAN(obs::Cat::kApp, complete, lane, 150, 250, 64);
  ECO_TRACE_BEGIN(obs::Cat::kApp, orphan_begin, lane, 500);  // never ends
  ECO_TRACE_COUNTER(obs::Cat::kApp, tick, lane, 600, 42);
  ECO_TRACE_INSTANT(obs::Cat::kApp, tick, lane, 1000, 2);
  session.stop();

  const Json doc = export_and_parse(session);
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, Json::Kind::kArray);

  // Every exported span must be balanced: non-negative duration, within
  // the window, carrying pid/tid/cat.
  for (const Json& e : events->items) {
    const Json* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->str != "X") continue;
    ASSERT_NE(e.find("dur"), nullptr);
    EXPECT_GE(e.find("dur")->number, 0.0);
    EXPECT_GE(e.find("ts")->number, 0.0);
    EXPECT_NE(e.find("pid"), nullptr);
    EXPECT_NE(e.find("tid"), nullptr);
    EXPECT_NE(e.find("cat"), nullptr);
  }

  // ts/dur are microseconds; sim time above is picoseconds, so 1 ps is
  // 1e-6 us.
  const double us = 1e-6;
  const Json* span = find_span(doc, "obs.test.paired");
  ASSERT_NE(span, nullptr);
  EXPECT_DOUBLE_EQ(span->find("ts")->number, 200 * us);
  EXPECT_DOUBLE_EQ(span->find("dur")->number, 200 * us);
  EXPECT_DOUBLE_EQ(span->find("pid")->number, 3.0);
  EXPECT_DOUBLE_EQ(span->find("tid")->number, 7.0);

  span = find_span(doc, "obs.test.complete");
  ASSERT_NE(span, nullptr);
  EXPECT_DOUBLE_EQ(span->find("dur")->number, 100 * us);
  ASSERT_NE(span->find("args"), nullptr);
  EXPECT_DOUBLE_EQ(span->find("args")->find("v")->number, 64.0);

  // Orphaned end: repaired to open at the window start (ts 50).
  span = find_span(doc, "obs.test.orphan_end");
  ASSERT_NE(span, nullptr);
  EXPECT_DOUBLE_EQ(span->find("ts")->number, 50 * us);
  EXPECT_DOUBLE_EQ(span->find("dur")->number, 50 * us);

  // Orphaned begin: repaired to close at the window end (ts 1000).
  span = find_span(doc, "obs.test.orphan_begin");
  ASSERT_NE(span, nullptr);
  EXPECT_DOUBLE_EQ(span->find("ts")->number, 500 * us);
  EXPECT_DOUBLE_EQ(span->find("dur")->number, 500 * us);
}

TEST(TraceExport, RingWrapReportsDroppedAndStaysWellFormed) {
  auto& session = obs::TraceSession::instance();
  obs::TraceOptions opts = small_options();
  opts.ring_capacity = 64;
  session.start(opts);

  const CounterId name = CounterRegistry::intern("obs.test.flood");
  for (std::uint64_t i = 0; i < 500; ++i) {
    ECO_TRACE_INSTANT(obs::Cat::kApp, name, (obs::Lane{1, 1}), i * 10, i);
  }
  session.stop();
  EXPECT_EQ(session.events_recorded(), 500u);
  EXPECT_EQ(session.events_dropped(), 500u - 64u);

  const Json doc = export_and_parse(session);
  const Json* other = doc.find("otherData");
  ASSERT_NE(other, nullptr);
  EXPECT_DOUBLE_EQ(other->find("droppedEvents")->number, 500.0 - 64.0);
  // Only the newest `ring_capacity` instants survive.
  std::size_t instants = 0;
  for (const Json& e : doc.find("traceEvents")->items) {
    if (e.find("ph")->str == "i") ++instants;
  }
  EXPECT_EQ(instants, 64u);
}

TEST(TraceExport, CategoryFilterDropsDisabledSites) {
  auto& session = obs::TraceSession::instance();
  session.start(small_options(obs::cat_bit(obs::Cat::kApp)));
  const CounterId name = CounterRegistry::intern("obs.test.filtered");
  ECO_TRACE_INSTANT(obs::Cat::kApp, name, (obs::Lane{0, 0}), 10, 0);
  ECO_TRACE_INSTANT(obs::Cat::kNet, name, (obs::Lane{0, 0}), 20, 0);
  session.stop();
  EXPECT_EQ(session.events_recorded(), 1u);
}

TEST(TraceSummary, RanksSpansByTotalTime) {
  auto& session = obs::TraceSession::instance();
  session.start(small_options());
  const CounterId big = CounterRegistry::intern("obs.test.big");
  const CounterId small = CounterRegistry::intern("obs.test.small");
  const obs::Lane lane{0, 0};
  ECO_TRACE_SPAN(obs::Cat::kApp, big, lane, 0, 1000000, 0);
  ECO_TRACE_SPAN(obs::Cat::kApp, small, lane, 0, 1000, 0);
  session.stop();

  const std::string text = session.summary();
  const auto big_at = text.find("obs.test.big");
  const auto small_at = text.find("obs.test.small");
  ASSERT_NE(big_at, std::string::npos) << text;
  ASSERT_NE(small_at, std::string::npos) << text;
  EXPECT_LT(big_at, small_at) << text;  // bigger total ranks first
}

TEST(TraceExport, NestedSpansAttributeSelfTime) {
  auto& session = obs::TraceSession::instance();
  session.start(small_options());
  const CounterId outer = CounterRegistry::intern("obs.test.outer");
  const CounterId inner = CounterRegistry::intern("obs.test.inner");
  const obs::Lane lane{0, 0};
  // outer [0, 1000], inner [200, 900]: outer self time is 300 ps.
  ECO_TRACE_SPAN(obs::Cat::kApp, outer, lane, 0, 1000, 0);
  ECO_TRACE_SPAN(obs::Cat::kApp, inner, lane, 200, 900, 0);
  session.stop();

  // The summary reports totals in ms; just check both names appear and
  // the export stays parseable with nesting.
  const Json doc = export_and_parse(session);
  EXPECT_NE(find_span(doc, "obs.test.outer"), nullptr);
  EXPECT_NE(find_span(doc, "obs.test.inner"), nullptr);
  const std::string text = session.summary();
  EXPECT_NE(text.find("obs.test.outer"), std::string::npos) << text;
}

TEST(TraceExport, WritesFileAtGivenPath) {
  auto& session = obs::TraceSession::instance();
  obs::TraceOptions opts = small_options();
  opts.path = ::testing::TempDir() + "/eco_obs_test_trace.json";
  session.start(opts);
  const CounterId name = CounterRegistry::intern("obs.test.file");
  ECO_TRACE_SPAN(obs::Cat::kApp, name, (obs::Lane{0, 0}), 0, 100, 0);
  session.stop();
  ASSERT_TRUE(session.export_file());

  std::ifstream in(opts.path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  JsonParser parser(buf.str());
  parser.parse();
  EXPECT_TRUE(parser.ok()) << parser.error();
}

#endif  // !ECO_TRACE_DISABLED

}  // namespace
}  // namespace ecoscale
