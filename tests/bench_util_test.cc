// Tests for the shared bench harness: the parallel sweep runner must be
// byte-identical to a sequential run, and the --json table dump must emit
// parseable output.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"

namespace ecoscale {
namespace {

/// RAII save/restore of the process-wide bench options.
struct OptionsGuard {
  bench::Options saved = bench::options();
  ~OptionsGuard() { bench::options() = saved; }
};

TEST(ParallelSweep, ResultsComeBackInSubmissionOrder) {
  OptionsGuard guard;
  bench::options().threads = 4;
  // Early points sleep longest, so completion order is reversed from
  // submission order; the result vector must still be index-ordered.
  auto results = bench::parallel_sweep(8, [](std::size_t i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(8 - i));
    return i * i;
  });
  ASSERT_EQ(results.size(), 8u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], i * i);
  }
}

TEST(ParallelSweep, ParallelMatchesSequential) {
  auto point = [](std::size_t i) {
    // Each point owns its own deterministic state.
    std::uint64_t h = 0x9e3779b97f4a7c15ull + i;
    for (int k = 0; k < 1000; ++k) h = h * 6364136223846793005ull + i;
    std::ostringstream os;
    os << "point-" << i << "-" << h;
    return os.str();
  };
  OptionsGuard guard;
  bench::options().threads = 1;
  const auto sequential = bench::parallel_sweep(16, point);
  bench::options().threads = 8;
  const auto parallel = bench::parallel_sweep(16, point);
  EXPECT_EQ(sequential, parallel);
}

TEST(ParallelSweep, AllPointsRunExactlyOnce) {
  OptionsGuard guard;
  bench::options().threads = 8;
  std::atomic<int> runs{0};
  auto results = bench::parallel_sweep(100, [&runs](std::size_t i) {
    runs.fetch_add(1);
    return i;
  });
  EXPECT_EQ(runs.load(), 100);
  ASSERT_EQ(results.size(), 100u);
}

TEST(ParallelSweep, FirstExceptionInSubmissionOrderPropagates) {
  OptionsGuard guard;
  bench::options().threads = 4;
  try {
    bench::parallel_sweep(8, [](std::size_t i) -> int {
      if (i == 3) throw std::runtime_error("point 3 failed");
      if (i == 6) throw std::runtime_error("point 6 failed");
      return 0;
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "point 3 failed");
  }
}

TEST(ParallelSweep, ZeroAndOnePointsAreFine) {
  OptionsGuard guard;
  bench::options().threads = 4;
  EXPECT_TRUE(bench::parallel_sweep(0, [](std::size_t) { return 1; }).empty());
  const auto one = bench::parallel_sweep(1, [](std::size_t) { return 7; });
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 7);
}

TEST(SweepThreads, FlagBeatsEnvBeatsHardware) {
  OptionsGuard guard;
  bench::options().threads = 3;
  EXPECT_EQ(bench::sweep_threads(), 3u);
  bench::options().threads = 0;
  EXPECT_GE(bench::sweep_threads(), 1u);
}

/// RAII set/restore of ECOSCALE_SIM_THREADS around a test body.
struct SimThreadsEnvGuard {
  explicit SimThreadsEnvGuard(const char* value) {
    const char* old = std::getenv("ECOSCALE_SIM_THREADS");
    if (old != nullptr) saved = old;
    had = old != nullptr;
    if (value != nullptr) {
      ::setenv("ECOSCALE_SIM_THREADS", value, 1);
    } else {
      ::unsetenv("ECOSCALE_SIM_THREADS");
    }
  }
  ~SimThreadsEnvGuard() {
    if (had) {
      ::setenv("ECOSCALE_SIM_THREADS", saved.c_str(), 1);
    } else {
      ::unsetenv("ECOSCALE_SIM_THREADS");
    }
  }
  std::string saved;
  bool had = false;
};

TEST(SimThreads, ValidEnvOverridesFlag) {
  OptionsGuard guard;
  bench::options().sim_threads = 2;
  SimThreadsEnvGuard env("8");
  EXPECT_EQ(bench::sim_threads(), 8u);
}

TEST(SimThreads, ZeroEnvMeansHardwarePick) {
  OptionsGuard guard;
  bench::options().sim_threads = 2;
  SimThreadsEnvGuard env("0");
  // 0 is valid and documented: the engine resolves it to hardware
  // concurrency, so the helper must pass it through, not drop it.
  EXPECT_EQ(bench::sim_threads(), 0u);
}

TEST(SimThreads, UnsetEnvFallsBackToFlag) {
  OptionsGuard guard;
  bench::options().sim_threads = 3;
  SimThreadsEnvGuard env(nullptr);
  EXPECT_EQ(bench::sim_threads(), 3u);
}

TEST(SimThreads, MalformedEnvWarnsAndPinsOneThread) {
  OptionsGuard guard;
  bench::options().sim_threads = 7;  // must NOT silently win
  for (const char* bad : {"four", "4x", "", " 4", "-1", "0x10",
                          "99999999999999999999999999"}) {
    SimThreadsEnvGuard env(bad);
    ::testing::internal::CaptureStderr();
    EXPECT_EQ(bench::sim_threads(), 1u) << "env was \"" << bad << "\"";
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("malformed ECOSCALE_SIM_THREADS"), std::string::npos)
        << "env was \"" << bad << "\"";
  }
}

TEST(JsonDump, RecordedTablesFlushAsJson) {
  OptionsGuard guard;
  const std::string path =
      ::testing::TempDir() + "/bench_util_test_tables.json";
  bench::options().json_path = path;
  Table t({"size", "value"});
  t.add_row({"4", "1.5e+03"});
  t.add_row({"8", "3.0e+03"});
  // print_table records into the sink when json_path is set.
  std::ostringstream discard;
  bench::detail::JsonSink::instance().record(t, "caption \"quoted\"");
  bench::detail::JsonSink::instance().flush(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  EXPECT_NE(json.find("\"tables\""), std::string::npos);
  EXPECT_NE(json.find("\"caption \\\"quoted\\\"\""), std::string::npos);
  EXPECT_NE(json.find("[\"size\", \"value\"]"), std::string::npos);
  EXPECT_NE(json.find("[\"8\", \"3.0e+03\"]"), std::string::npos);
}

TEST(Flags, InitParsesJsonAndThreads) {
  OptionsGuard guard;
  bench::options() = bench::Options{};
  const std::string path = ::testing::TempDir() + "/unused.json";
  std::string a0 = "bench", a1 = "--threads", a2 = "5", a3 = "--ignored";
  char* argv[] = {a0.data(), a1.data(), a2.data(), a3.data()};
  bench::init(4, argv);
  EXPECT_EQ(bench::options().threads, 5u);
  EXPECT_TRUE(bench::options().json_path.empty());
}

TEST(Flags, InitParsesServeLoadFlags) {
  OptionsGuard guard;
  bench::options() = bench::Options{};
  std::string a0 = "bench", a1 = "--offered-load", a2 = "2.5e6",
              a3 = "--zipf", a4 = "0.99";
  char* argv[] = {a0.data(), a1.data(), a2.data(), a3.data(), a4.data()};
  bench::init(5, argv);
  EXPECT_DOUBLE_EQ(bench::options().offered_load, 2.5e6);
  EXPECT_DOUBLE_EQ(bench::options().zipf, 0.99);
}

TEST(Flags, MalformedLoadValueWarnsAndKeepsDefault) {
  for (const char* bad : {"fast", "2..5", "1e", "", "-3", "nan", "inf",
                          "4x"}) {
    OptionsGuard guard;
    bench::options() = bench::Options{};
    double out = 123.0;
    ::testing::internal::CaptureStderr();
    EXPECT_FALSE(bench::parse_load_flag("--offered-load", bad, out))
        << "value was \"" << bad << "\"";
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("malformed --offered-load"), std::string::npos)
        << "value was \"" << bad << "\"";
    EXPECT_DOUBLE_EQ(out, 123.0) << "value was \"" << bad << "\"";
  }
}

TEST(Flags, MalformedLoadFlagViaInitKeepsDefaults) {
  OptionsGuard guard;
  bench::options() = bench::Options{};
  std::string a0 = "bench", a1 = "--offered-load", a2 = "lots",
              a3 = "--zipf", a4 = "-0.5";
  char* argv[] = {a0.data(), a1.data(), a2.data(), a3.data(), a4.data()};
  ::testing::internal::CaptureStderr();
  bench::init(5, argv);
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("malformed --offered-load"), std::string::npos);
  EXPECT_NE(err.find("malformed --zipf"), std::string::npos);
  EXPECT_DOUBLE_EQ(bench::options().offered_load, 0.0);
  EXPECT_DOUBLE_EQ(bench::options().zipf, -1.0);
}

TEST(Flags, ZeroLoadParsesAsBenchDefaultSweep) {
  double out = 9.0;
  EXPECT_TRUE(bench::parse_load_flag("--offered-load", "0", out));
  EXPECT_DOUBLE_EQ(out, 0.0);
}

}  // namespace
}  // namespace ecoscale
