#include <gtest/gtest.h>

#include "hls/dse.h"
#include "runtime/allocator.h"
#include "runtime/chain.h"
#include "runtime/machine.h"
#include "runtime/scheduler.h"
#include "runtime/task.h"

namespace ecoscale {
namespace {

MachineConfig small_machine() {
  MachineConfig cfg;
  cfg.nodes = 2;
  cfg.workers_per_node = 2;
  return cfg;
}

TEST(Machine, ConstructionWiresEverything) {
  Machine m(small_machine());
  EXPECT_EQ(m.worker_count(), 4u);
  EXPECT_EQ(m.node_count(), 2u);
  EXPECT_EQ(m.pool(0).size(), 2u);
  EXPECT_EQ(m.pgas().worker_count(), 4u);
  EXPECT_EQ(m.mpi().size(), 2u);
  EXPECT_EQ(m.worker(WorkerCoord{1, 1}).coord(), (WorkerCoord{1, 1}));
}

// --- allocator -------------------------------------------------------------

TEST(Allocator, LocalPlacesEverythingAtAnchor) {
  Machine m(small_machine());
  TopologyAllocator alloc(m.pgas());
  const auto buf = alloc.allocate(mebibytes(1), Distribution::kLocal,
                                  {WorkerCoord{1, 0}});
  EXPECT_EQ(buf.size(), mebibytes(1));
  ASSERT_EQ(buf.partitions().size(), 1u);
  EXPECT_EQ(buf.home_of(0), (WorkerCoord{1, 0}));
  EXPECT_EQ(buf.home_of(mebibytes(1) - 1), (WorkerCoord{1, 0}));
}

TEST(Allocator, BlockSplitsAcrossWorkers) {
  Machine m(small_machine());
  TopologyAllocator alloc(m.pgas());
  std::vector<WorkerCoord> workers;
  for (std::size_t i = 0; i < 4; ++i) workers.push_back(m.pgas().coord(i));
  const auto buf = alloc.allocate(mebibytes(4), Distribution::kBlock, workers);
  EXPECT_EQ(buf.partitions().size(), 4u);
  EXPECT_EQ(buf.home_of(0), workers[0]);
  EXPECT_EQ(buf.home_of(mebibytes(4) - 1), workers[3]);
  // Offsets tile the buffer.
  Bytes expect = 0;
  for (const auto& p : buf.partitions()) {
    EXPECT_EQ(p.offset, expect);
    expect += p.size;
  }
  EXPECT_EQ(expect, mebibytes(4));
}

TEST(Allocator, CyclicRoundRobinsPages) {
  Machine m(small_machine());
  TopologyAllocator alloc(m.pgas());
  std::vector<WorkerCoord> workers{{0, 0}, {0, 1}};
  const auto buf =
      alloc.allocate(4 * kPageSize, Distribution::kCyclic, workers);
  EXPECT_EQ(buf.partitions().size(), 4u);
  EXPECT_EQ(buf.home_of(0 * kPageSize), workers[0]);
  EXPECT_EQ(buf.home_of(1 * kPageSize), workers[1]);
  EXPECT_EQ(buf.home_of(2 * kPageSize), workers[0]);
}

TEST(Allocator, AddressOfMapsThroughPartition) {
  Machine m(small_machine());
  TopologyAllocator alloc(m.pgas());
  const auto buf = alloc.allocate(2 * kPageSize, Distribution::kBlock,
                                  {WorkerCoord{0, 0}, WorkerCoord{1, 1}});
  const auto a = buf.address_of(10);
  EXPECT_EQ(a.home(), (WorkerCoord{0, 0}));
  const auto b = buf.address_of(kPageSize + 10);
  EXPECT_EQ(b.home(), (WorkerCoord{1, 1}));
  EXPECT_THROW(buf.address_of(2 * kPageSize), CheckError);
}

TEST(Allocator, MigratePartitionMovesOwnership) {
  Machine m(small_machine());
  TopologyAllocator alloc(m.pgas());
  auto buf = alloc.allocate(2 * kPageSize, Distribution::kLocal,
                            {WorkerCoord{0, 0}});
  const auto r = alloc.migrate_partition(buf, 0, 1, 0);
  EXPECT_EQ(r.bytes_moved, 2 * kPageSize);
  EXPECT_GT(r.finish, 0u);
  const PageId page = page_of(buf.partitions()[0].base);
  EXPECT_TRUE(m.pgas().directory().cacheable_at(page, 1));
}

// --- runtime scheduler ----------------------------------------------------------

struct SchedRig {
  explicit SchedRig(RuntimeConfig cfg = {}) : machine(small_machine()) {
    runtime = std::make_unique<RuntimeSystem>(machine, sim, cfg);
    kernel = make_montecarlo_kernel();
    runtime->register_kernel(kernel, emit_variants(kernel, 2));
  }

  Task make_task(TaskId id, std::uint64_t items, WorkerCoord home,
                 SimTime release = 0) const {
    Task t;
    t.id = id;
    t.kernel = kernel.id;
    t.items = items;
    t.features.items = static_cast<double>(items);
    t.features.bytes =
        static_cast<double>(items * (kernel.bytes_in + kernel.bytes_out));
    t.home = home;
    t.release = release;
    return t;
  }

  Machine machine;
  Simulator sim;
  std::unique_ptr<RuntimeSystem> runtime;
  KernelIR kernel;
};

TEST(Runtime, CompletesAllTasks) {
  SchedRig rig;
  for (TaskId i = 0; i < 12; ++i) {
    rig.runtime->submit(rig.make_task(i, 5000, {0, 0}, microseconds(i)));
  }
  rig.runtime->run();
  EXPECT_EQ(rig.runtime->results().size(), 12u);
  const auto s = rig.runtime->stats();
  EXPECT_GT(s.makespan, 0u);
  EXPECT_GT(s.energy, 0.0);
  EXPECT_EQ(s.sw_tasks + s.hw_tasks, 12u);
}

TEST(Runtime, AlwaysSoftwareNeverTouchesFabric) {
  RuntimeConfig cfg;
  cfg.placement = PlacementPolicy::kAlwaysSoftware;
  SchedRig rig(cfg);
  for (TaskId i = 0; i < 8; ++i) {
    rig.runtime->submit(rig.make_task(i, 100000, {0, 0}));
  }
  rig.runtime->run();
  const auto s = rig.runtime->stats();
  EXPECT_EQ(s.sw_tasks, 8u);
  EXPECT_EQ(s.hw_tasks, 0u);
}

TEST(Runtime, AlwaysHardwareUsesFabric) {
  RuntimeConfig cfg;
  cfg.placement = PlacementPolicy::kAlwaysHardware;
  SchedRig rig(cfg);
  for (TaskId i = 0; i < 8; ++i) {
    rig.runtime->submit(rig.make_task(i, 100000, {0, 0}));
  }
  rig.runtime->run();
  const auto s = rig.runtime->stats();
  EXPECT_EQ(s.hw_tasks, 8u);
}

TEST(Runtime, ThresholdSplitsBySize) {
  RuntimeConfig cfg;
  cfg.placement = PlacementPolicy::kSizeThreshold;
  cfg.size_threshold = 10000;
  SchedRig rig(cfg);
  rig.runtime->submit(rig.make_task(0, 100, {0, 0}));
  rig.runtime->submit(rig.make_task(1, 50000, {0, 1}));
  rig.runtime->run();
  const auto& results = rig.runtime->results();
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    if (r.id == 0) {
      EXPECT_EQ(r.device, DeviceClass::kCpu);
    }
    if (r.id == 1) {
      EXPECT_NE(r.device, DeviceClass::kCpu);
    }
  }
}

TEST(Runtime, ModelBasedLearnsToOffloadBigTasks) {
  RuntimeConfig cfg;
  cfg.placement = PlacementPolicy::kModelBased;
  SchedRig rig(cfg);
  // A long stream of identical big tasks: after warmup the model should
  // send them to hardware.
  for (TaskId i = 0; i < 60; ++i) {
    rig.runtime->submit(
        rig.make_task(i, 200000, {0, 0}, milliseconds(i)));
  }
  rig.runtime->run();
  const auto s = rig.runtime->stats();
  EXPECT_GT(s.hw_tasks, s.sw_tasks);
}

TEST(Runtime, LazySpillsOnlyWhenDeep) {
  RuntimeConfig cfg;
  cfg.distribution = DistributionPolicy::kLazyLocal;
  cfg.spill_depth = 4;
  SchedRig rig(cfg);
  // 3 tasks: below the spill depth, nothing forwards.
  for (TaskId i = 0; i < 3; ++i) {
    rig.runtime->submit(rig.make_task(i, 50000, {0, 0}));
  }
  rig.runtime->run();
  EXPECT_EQ(rig.runtime->stats().forwarded_tasks, 0u);
}

TEST(Runtime, LazySpillsUnderBurst) {
  RuntimeConfig cfg;
  cfg.distribution = DistributionPolicy::kLazyLocal;
  cfg.spill_depth = 2;
  SchedRig rig(cfg);
  for (TaskId i = 0; i < 16; ++i) {
    rig.runtime->submit(rig.make_task(i, 200000, {0, 0}));
  }
  rig.runtime->run();
  const auto s = rig.runtime->stats();
  EXPECT_GT(s.forwarded_tasks, 0u);
  EXPECT_GT(s.monitor_messages, 0u);
}

TEST(Runtime, LazyTalksLessThanPollingOracle) {
  RuntimeConfig lazy_cfg;
  lazy_cfg.distribution = DistributionPolicy::kLazyLocal;
  RuntimeConfig poll_cfg;
  poll_cfg.distribution = DistributionPolicy::kPollLeastLoaded;
  SchedRig lazy(lazy_cfg);
  SchedRig poll(poll_cfg);
  for (TaskId i = 0; i < 32; ++i) {
    lazy.runtime->submit(lazy.make_task(i, 100000, {0, 0}));
    poll.runtime->submit(poll.make_task(i, 100000, {0, 0}));
  }
  lazy.runtime->run();
  poll.runtime->run();
  EXPECT_LT(lazy.runtime->stats().monitor_messages,
            poll.runtime->stats().monitor_messages);
  // The burst at one worker drives lazy diffusion.
  EXPECT_GT(lazy.runtime->stats().forwarded_tasks, 0u);
}

TEST(Runtime, PollPolicyCostScalesWithWorkers) {
  RuntimeConfig cfg;
  cfg.distribution = DistributionPolicy::kPollLeastLoaded;
  SchedRig rig(cfg);
  for (TaskId i = 0; i < 10; ++i) {
    rig.runtime->submit(rig.make_task(i, 1000, {0, 0}));
  }
  rig.runtime->run();
  // 2 messages per non-self worker per task = 2*3*10.
  EXPECT_EQ(rig.runtime->stats().monitor_messages, 60u);
}

TEST(Runtime, RejectsUnregisteredKernel) {
  SchedRig rig;
  Task t = rig.make_task(0, 10, {0, 0});
  t.kernel = 9999;
  EXPECT_THROW(rig.runtime->submit(t), CheckError);
}

TEST(Runtime, QueueWaitGrowsUnderLoad) {
  SchedRig rig;
  for (TaskId i = 0; i < 20; ++i) {
    rig.runtime->submit(rig.make_task(i, 500000, {0, 0}));
  }
  rig.runtime->run();
  auto s = rig.runtime->stats();
  EXPECT_GT(s.queue_wait_ns.max(), s.queue_wait_ns.min());
}

// --- chaining -----------------------------------------------------------------

TEST(Chain, ChainedMovesLessDramTraffic) {
  Worker w({0, 0}, WorkerConfig{});
  const KernelIR kernels[] = {make_stencil5_kernel(), make_sha_like_kernel(),
                              make_spmv_kernel()};
  std::vector<AcceleratorModule> stages;
  for (const auto& k : kernels) {
    stages.push_back(emit_variants(k, 1).front());
  }
  const auto chained = run_chained(w, stages, kernels, 100000, 0);
  Worker w2({0, 1}, WorkerConfig{});
  const auto staged = run_staged(w2, stages, kernels, 100000, 0);
  ASSERT_TRUE(chained.fits);
  ASSERT_TRUE(staged.fits);
  EXPECT_LT(chained.dram_bytes, staged.dram_bytes);
  EXPECT_GT(chained.ops_per_dram_byte, staged.ops_per_dram_byte);
  EXPECT_LT(chained.energy, staged.energy);
}

TEST(Chain, SingleStageDegenerate) {
  Worker w({0, 0}, WorkerConfig{});
  const KernelIR kernels[] = {make_stencil5_kernel()};
  const std::vector<AcceleratorModule> stages{
      emit_variants(kernels[0], 1).front()};
  const auto chained = run_chained(w, stages, kernels, 1000, 0);
  ASSERT_TRUE(chained.fits);
  EXPECT_EQ(chained.dram_bytes,
            1000 * (stages[0].bytes_in_per_item +
                    stages[0].bytes_out_per_item));
}

TEST(Chain, OversizedChainReportsNoFit) {
  WorkerConfig cfg;
  cfg.fabric.fabric_width = 2;
  cfg.fabric.fabric_height = 2;
  Worker w({0, 0}, cfg);
  const KernelIR kernels[] = {make_montecarlo_kernel(),
                              make_montecarlo_kernel()};
  AcceleratorModule big = emit_variants(kernels[0], 1).front();
  big.shape = ModuleShape{4, 4};
  const std::vector<AcceleratorModule> stages{big, big};
  const auto r = run_chained(w, stages, kernels, 100, 0);
  EXPECT_FALSE(r.fits);
}

}  // namespace
}  // namespace ecoscale
