// Allocation accounting for the simulation hot path.
//
// This binary overrides the global allocation functions with counting
// versions and asserts the kernel's core promise: once warm, scheduling and
// retiring events performs no heap allocation — captures at or under
// InlineAction::kInlineBytes live inline in recycled slab slots, and larger
// captures are served by the recycled block pool.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <span>
#include <vector>

#include "interconnect/network.h"
#include "interconnect/topology.h"
#include "obs/trace.h"
#include "sim/inline_action.h"
#include "sim/parallel.h"
#include "sim/simulator.h"
#include "unimem/pgas.h"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t align) {
  ++g_allocations;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align), size)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  ++g_allocations;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align), size)) {
    return p;
  }
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace ecoscale {
namespace {

// A capture that exactly fills the inline buffer when combined with
// nothing else: 64 bytes of payload.
struct InlinePayload {
  std::uint64_t w[8];
};
static_assert(sizeof(InlinePayload) == InlineAction::kInlineBytes);

// Forces the spill path: larger than the inline buffer, smaller than a
// pool block.
struct SpillPayload {
  std::uint64_t w[16];
};
static_assert(sizeof(SpillPayload) > InlineAction::kInlineBytes);

template <typename Payload>
void pump(Simulator& sim, std::uint64_t events, std::uint64_t* sink) {
  struct Actor {
    Simulator* sim;
    std::uint64_t* budget;
    std::uint64_t* sink;
    void fire() {
      if (*budget == 0) return;
      --*budget;
      Actor* self = this;
      Payload p{};
      p.w[0] = *budget;
      sim->schedule_after(1 + (*budget % 7), [self, p] {
        *self->sink += p.w[0];
        self->fire();
      });
    }
  };
  std::uint64_t budget = events;
  std::array<Actor, 8> actors;
  actors.fill(Actor{&sim, &budget, sink});
  for (auto& a : actors) a.fire();
  sim.run();
}

TEST(SimulatorAllocation, SteadyStateSchedulingIsAllocationFree) {
  Simulator sim;
  std::uint64_t sink = 0;
  // Warm up: grow the heap/slab vectors and fault in everything once.
  pump<InlinePayload>(sim, 20000, &sink);
  const std::uint64_t before = g_allocations.load();
  pump<InlinePayload>(sim, 100000, &sink);
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after, before)
      << "scheduling inline-capture events allocated on the hot path";
}

TEST(SimulatorAllocation, SpilledCapturesRecycleThroughPool) {
  Simulator sim;
  std::uint64_t sink = 0;
  pump<SpillPayload>(sim, 20000, &sink);  // warm pool + vectors
  const std::uint64_t before = g_allocations.load();
  const auto pool_before = detail::ActionBlockPool::stats();
  pump<SpillPayload>(sim, 100000, &sink);
  const std::uint64_t after = g_allocations.load();
  const auto pool_after = detail::ActionBlockPool::stats();
  EXPECT_EQ(after, before)
      << "spilled captures should be served by the recycled block pool";
  EXPECT_EQ(pool_after.pool_misses, pool_before.pool_misses);
  EXPECT_GT(pool_after.pool_hits, pool_before.pool_hits);
}

// Drive a mixed local/remote/atomic PGAS access pattern for `ops`
// operations, advancing time and releasing the retired past at epoch
// boundaries (the contract long-running workloads follow).
void pgas_pump(PgasSystem& sys, std::span<const GlobalAddress> local,
               std::span<const GlobalAddress> remote, std::uint64_t ops,
               SimTime& now) {
  constexpr std::uint64_t kEpoch = 4096;
  const WorkerCoord who{0, 0};
  for (std::uint64_t i = 0; i < ops; ++i) {
    now += nanoseconds(100);
    const GlobalAddress addr = (i & 1) ? remote[i % remote.size()]
                                       : local[i % local.size()];
    if ((i & 7) == 7) {
      sys.atomic_rmw(who, addr, AtomicOp::kFetchAdd, 1, now);
    } else if (i & 2) {
      sys.store(who, addr, 64, now);
    } else {
      sys.load(who, addr, 64, now);
    }
    if ((i & (kEpoch - 1)) == 0) sys.release(now);
  }
}

TEST(SimulatorAllocation, PgasAccessLoopIsAllocationFreeOnceWarm) {
  PgasConfig cfg;
  cfg.nodes = 2;
  cfg.workers_per_node = 2;
  PgasSystem sys(cfg);
  std::vector<GlobalAddress> local, remote;
  for (std::size_t i = 0; i < 16; ++i) {
    local.push_back(sys.alloc(0, i % 2, 4096) + (i * 8) % 4096);
    remote.push_back(sys.alloc(1, i % 2, 4096) + (i * 8) % 4096);
  }
  SimTime now = 0;
  // Warm up: resolve routes, grow calendars/caches/energy tables, fault in
  // the backing pages the atomics touch.
  pgas_pump(sys, local, remote, 3 * 4096, now);
  const std::uint64_t before = g_allocations.load();
  pgas_pump(sys, local, remote, 10 * 4096, now);
  EXPECT_EQ(g_allocations.load(), before)
      << "steady-state PGAS loads/stores/atomics allocated on the hot path";
}

TEST(SimulatorAllocation, NetworkSendLoopIsAllocationFreeOnceWarm) {
  Network net(make_tree({4, 4}), NetworkConfig{});
  const std::size_t endpoints = 16;
  const auto pump = [&](std::uint64_t ops, SimTime& now) {
    constexpr std::uint64_t kEpoch = 4096;
    for (std::uint64_t i = 0; i < ops; ++i) {
      now += nanoseconds(100);
      const std::size_t src = i % endpoints;
      const std::size_t dst = (i * 7 + 3) % endpoints;
      Packet p{PacketType::kWrite, WorkerCoord{0, 0}, WorkerCoord{0, 0}, 64};
      net.send(src, dst, p, now);
      if ((i & (kEpoch - 1)) == 0) net.release(now);
    }
  };
  SimTime now = 0;
  pump(3 * 4096, now);  // warm: all 16x16 routes resolved, calendars sized
  const std::uint64_t before = g_allocations.load();
  pump(10 * 4096, now);
  EXPECT_EQ(g_allocations.load(), before)
      << "steady-state Network::send allocated on the hot path";
}

#if !defined(ECO_TRACE_DISABLED)
TEST(SimulatorAllocation, TracedPgasAndNetworkLoopsStayAllocationFree) {
  // The tracing promise: with a session armed, the instrumented hot paths
  // still allocate nothing once warm — an emit is one POD store into the
  // preallocated per-thread ring, and ring wrap-around evicts in place.
  // The ring is deliberately smaller than the event volume so the test
  // covers the wrap path too.
  obs::TraceOptions topts;
  topts.ring_capacity = 1u << 15;
  topts.counter_sample_every = 16;
  obs::TraceSession::instance().start(topts);

  PgasConfig cfg;
  cfg.nodes = 2;
  cfg.workers_per_node = 2;
  PgasSystem sys(cfg);
  std::vector<GlobalAddress> local, remote;
  for (std::size_t i = 0; i < 16; ++i) {
    local.push_back(sys.alloc(0, i % 2, 4096) + (i * 8) % 4096);
    remote.push_back(sys.alloc(1, i % 2, 4096) + (i * 8) % 4096);
  }
  Network net(make_tree({4, 4}), NetworkConfig{});
  const auto net_pump = [&](std::uint64_t ops, SimTime& now) {
    for (std::uint64_t i = 0; i < ops; ++i) {
      now += nanoseconds(100);
      Packet p{PacketType::kWrite, WorkerCoord{0, 0}, WorkerCoord{0, 0}, 64};
      net.send(i % 16, (i * 7 + 3) % 16, p, now);
      if ((i & 4095) == 0) net.release(now);
    }
  };

  // Warm up: routes, calendars, and this thread's trace ring registration
  // (the one allocating step).
  SimTime now = 0;
  pgas_pump(sys, local, remote, 3 * 4096, now);
  net_pump(3 * 4096, now);
  ASSERT_GT(obs::TraceSession::instance().events_recorded(), 0u)
      << "instrumented paths emitted nothing; the test is not tracing";

  const std::uint64_t before = g_allocations.load();
  pgas_pump(sys, local, remote, 10 * 4096, now);
  net_pump(10 * 4096, now);
  EXPECT_EQ(g_allocations.load(), before)
      << "tracing-enabled steady state allocated on the hot path";
  EXPECT_GT(obs::TraceSession::instance().events_dropped(), 0u)
      << "ring never wrapped; shrink the ring so eviction is exercised";
  obs::TraceSession::instance().stop();
}
#endif  // !ECO_TRACE_DISABLED

// --- sharded parallel engine ------------------------------------------------

// Cross-posting actor for the multi-threaded engine: self-reschedules on
// its own shard and sends every fourth fire to its ring neighbor. All
// captures fit InlineAction's inline buffer, the mailbox ring is sized so
// nothing spills, and the merge scratch is pre-reserved from lane
// capacities at run() entry — so once warm, a window (claim, execute,
// drain, tree-merge, insert, fold) must not allocate at all.
struct ShardPumpActor {
  ShardedSimulator* eng = nullptr;
  std::size_t shard = 0;
  std::size_t shards = 0;
  std::uint64_t left = 0;
  // Per-shard sink slots: slot d is only ever written by whichever thread
  // is executing shard d's window (cross-posts land on the destination's
  // slot), so the accumulation needs no synchronization of its own.
  std::uint64_t* sinks = nullptr;

  void fire() {
    Simulator& sim = eng->shard(shard);
    sinks[shard] += sim.now();
    if (left == 0) return;
    --left;
    if ((left & 3) == 0 && shards > 1) {
      const std::size_t to = (shard + 1) % shards;
      std::uint64_t* s = &sinks[to];
      ShardedSimulator* e = eng;
      eng->post(shard, to, sim.now() + 200 + (left % 64),
                [e, to, s] { *s += e->shard(to).now(); });
    }
    sim.schedule_after(50 + (left % 50), [this] { fire(); });
  }
};

std::uint64_t sharded_run_allocs(std::uint64_t fires_per_actor) {
  const std::uint64_t before = g_allocations.load();
  ShardedConfig sc;
  sc.shards = 8;
  sc.lookahead = 200;
  sc.threads = 4;  // the promise must hold with --sim-threads > 1
  sc.mailbox_capacity = 1024;
  ShardedSimulator engine(sc);
  EXPECT_EQ(engine.threads_used(), 4u);
  std::array<std::uint64_t, 8> sinks{};
  std::array<ShardPumpActor, 8> actors;
  for (std::size_t s = 0; s < 8; ++s) {
    actors[s].eng = &engine;
    actors[s].shard = s;
    actors[s].shards = 8;
    actors[s].left = fires_per_actor;
    actors[s].sinks = sinks.data();
    ShardPumpActor* a = &actors[s];
    engine.shard(s).schedule_at(static_cast<SimTime>(1 + s),
                                [a] { a->fire(); });
  }
  engine.run();
  EXPECT_EQ(engine.mailbox_spills(), 0u)
      << "ring overflowed; spills allocate and void the comparison";
  EXPECT_GT(engine.messages(), 0u);
  return g_allocations.load() - before;
}

TEST(SimulatorAllocation, ShardedEngineWindowsAreAllocationFreeOnceWarm) {
  // Per-run costs (engine construction, scratch reservations, std::thread
  // state for threads-1 workers, event-slab warm-up) are identical for
  // identical configs, so running 4x the windows must allocate exactly as
  // much as running 1x — anything per-window shows up as the difference.
  sharded_run_allocs(2000);  // warm process-wide pools and TLS once
  const std::uint64_t base = sharded_run_allocs(2000);
  const std::uint64_t scaled = sharded_run_allocs(8000);
  EXPECT_EQ(scaled, base)
      << "the parallel engine allocated per window in steady state";
}

TEST(SimulatorAllocation, ColdStartAllocatesOnlyStorageGrowth) {
  // Sanity: the warm-up itself does allocate (vector growth, pool fill) —
  // this guards against the counters being dead.
  const std::uint64_t before = g_allocations.load();
  Simulator sim;
  std::uint64_t sink = 0;
  pump<InlinePayload>(sim, 1000, &sink);
  EXPECT_GT(g_allocations.load(), before);
}

}  // namespace
}  // namespace ecoscale
