// Allocation accounting for the simulation hot path.
//
// This binary overrides the global allocation functions with counting
// versions and asserts the kernel's core promise: once warm, scheduling and
// retiring events performs no heap allocation — captures at or under
// InlineAction::kInlineBytes live inline in recycled slab slots, and larger
// captures are served by the recycled block pool.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "sim/inline_action.h"
#include "sim/simulator.h"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, std::align_val_t align) {
  ++g_allocations;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align), size)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  ++g_allocations;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align), size)) {
    return p;
  }
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace ecoscale {
namespace {

// A capture that exactly fills the inline buffer when combined with
// nothing else: 64 bytes of payload.
struct InlinePayload {
  std::uint64_t w[8];
};
static_assert(sizeof(InlinePayload) == InlineAction::kInlineBytes);

// Forces the spill path: larger than the inline buffer, smaller than a
// pool block.
struct SpillPayload {
  std::uint64_t w[16];
};
static_assert(sizeof(SpillPayload) > InlineAction::kInlineBytes);

template <typename Payload>
void pump(Simulator& sim, std::uint64_t events, std::uint64_t* sink) {
  struct Actor {
    Simulator* sim;
    std::uint64_t* budget;
    std::uint64_t* sink;
    void fire() {
      if (*budget == 0) return;
      --*budget;
      Actor* self = this;
      Payload p{};
      p.w[0] = *budget;
      sim->schedule_after(1 + (*budget % 7), [self, p] {
        *self->sink += p.w[0];
        self->fire();
      });
    }
  };
  std::uint64_t budget = events;
  std::array<Actor, 8> actors;
  actors.fill(Actor{&sim, &budget, sink});
  for (auto& a : actors) a.fire();
  sim.run();
}

TEST(SimulatorAllocation, SteadyStateSchedulingIsAllocationFree) {
  Simulator sim;
  std::uint64_t sink = 0;
  // Warm up: grow the heap/slab vectors and fault in everything once.
  pump<InlinePayload>(sim, 20000, &sink);
  const std::uint64_t before = g_allocations.load();
  pump<InlinePayload>(sim, 100000, &sink);
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after, before)
      << "scheduling inline-capture events allocated on the hot path";
}

TEST(SimulatorAllocation, SpilledCapturesRecycleThroughPool) {
  Simulator sim;
  std::uint64_t sink = 0;
  pump<SpillPayload>(sim, 20000, &sink);  // warm pool + vectors
  const std::uint64_t before = g_allocations.load();
  const auto pool_before = detail::ActionBlockPool::stats();
  pump<SpillPayload>(sim, 100000, &sink);
  const std::uint64_t after = g_allocations.load();
  const auto pool_after = detail::ActionBlockPool::stats();
  EXPECT_EQ(after, before)
      << "spilled captures should be served by the recycled block pool";
  EXPECT_EQ(pool_after.pool_misses, pool_before.pool_misses);
  EXPECT_GT(pool_after.pool_hits, pool_before.pool_hits);
}

TEST(SimulatorAllocation, ColdStartAllocatesOnlyStorageGrowth) {
  // Sanity: the warm-up itself does allocate (vector growth, pool fill) —
  // this guards against the counters being dead.
  const std::uint64_t before = g_allocations.load();
  Simulator sim;
  std::uint64_t sink = 0;
  pump<InlinePayload>(sim, 1000, &sink);
  EXPECT_GT(g_allocations.load(), before);
}

}  // namespace
}  // namespace ecoscale
