#include <gtest/gtest.h>

#include "common/check.h"
#include "fabric/accelerator.h"
#include "fabric/bitstream.h"
#include "fabric/floorplan.h"
#include "fabric/reconfig.h"

namespace ecoscale {
namespace {

// --- bitstreams -----------------------------------------------------------

TEST(Bitstream, SizeMatchesSlots) {
  const auto bs = generate_bitstream(4, 0.5, 1);
  EXPECT_EQ(bs.size(), 4 * kBytesPerSlot);
}

TEST(Bitstream, Deterministic) {
  const auto a = generate_bitstream(2, 0.5, 7);
  const auto b = generate_bitstream(2, 0.5, 7);
  EXPECT_EQ(a.data, b.data);
  const auto c = generate_bitstream(2, 0.5, 8);
  EXPECT_NE(a.data, c.data);
}

class CompressionRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(CompressionRoundTrip, RleIsLossless) {
  const auto bs = generate_bitstream(3, GetParam(), 42);
  const auto c = compress_rle(bs);
  EXPECT_EQ(decompress_rle(c).data, bs.data);
}

TEST_P(CompressionRoundTrip, LzIsLossless) {
  const auto bs = generate_bitstream(3, GetParam(), 42);
  const auto c = compress_lz(bs);
  EXPECT_EQ(decompress_lz(c).data, bs.data);
}

INSTANTIATE_TEST_SUITE_P(Densities, CompressionRoundTrip,
                         ::testing::Values(0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0));

TEST(Compression, SparseBitstreamsCompressWell) {
  const auto sparse = generate_bitstream(4, 0.1, 1);
  const auto dense = generate_bitstream(4, 0.9, 1);
  const auto cs = compress_rle(sparse);
  const auto cd = compress_rle(dense);
  EXPECT_GT(cs.ratio(), 3.0);
  EXPECT_GT(cs.ratio(), cd.ratio());
}

TEST(Compression, LzBeatsRleOnPatternedData) {
  const auto bs = generate_bitstream(4, 0.6, 5);
  const auto rle = compress_rle(bs);
  const auto lz = compress_lz(bs);
  EXPECT_LE(lz.compressed_size, rle.compressed_size);
}

TEST(Compression, EmptyBitstream) {
  Bitstream empty;
  const auto rle = compress_rle(empty);
  EXPECT_EQ(rle.compressed_size, 0u);
  EXPECT_TRUE(decompress_rle(rle).data.empty());
  const auto lz = compress_lz(empty);
  EXPECT_TRUE(decompress_lz(lz).data.empty());
}

// --- floorplan --------------------------------------------------------------

TEST(Floorplan, PlaceAndRemove) {
  Floorplan fp(4, 4);
  const auto r = fp.place(ModuleShape{2, 2});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(fp.used_slots(), 4u);
  EXPECT_TRUE(fp.is_live(*r));
  fp.remove(*r);
  EXPECT_EQ(fp.used_slots(), 0u);
  EXPECT_FALSE(fp.is_live(*r));
  EXPECT_THROW(fp.remove(*r), CheckError);
}

TEST(Floorplan, PlacementsDoNotOverlap) {
  Floorplan fp(4, 2);
  const auto a = fp.place(ModuleShape{2, 2});
  const auto b = fp.place(ModuleShape{2, 2});
  ASSERT_TRUE(a && b);
  const auto& pa = fp.placement(*a);
  const auto& pb = fp.placement(*b);
  const bool overlap_x = pa.x < pb.x + pb.shape.width &&
                         pb.x < pa.x + pa.shape.width;
  const bool overlap_y = pa.y < pb.y + pb.shape.height &&
                         pb.y < pa.y + pa.shape.height;
  EXPECT_FALSE(overlap_x && overlap_y);
}

TEST(Floorplan, FailsWhenFull) {
  Floorplan fp(2, 2);
  EXPECT_TRUE(fp.place(ModuleShape{2, 2}).has_value());
  EXPECT_FALSE(fp.place(ModuleShape{1, 1}).has_value());
  EXPECT_FALSE(fp.can_place(ModuleShape{1, 1}));
}

TEST(Floorplan, RejectsOversized) {
  Floorplan fp(4, 4);
  EXPECT_FALSE(fp.place(ModuleShape{5, 1}).has_value());
}

TEST(Floorplan, FragmentationBlocksPlacementDefragFixes) {
  Floorplan fp(4, 1);
  const auto a = fp.place(ModuleShape{1, 1});  // x=0
  const auto b = fp.place(ModuleShape{1, 1});  // x=1
  const auto c = fp.place(ModuleShape{1, 1});  // x=2
  const auto d = fp.place(ModuleShape{1, 1});  // x=3
  ASSERT_TRUE(a && b && c && d);
  fp.remove(*a);
  fp.remove(*c);
  // Two free slots, but no contiguous 2×1 rectangle.
  EXPECT_EQ(fp.free_slots(), 2u);
  EXPECT_FALSE(fp.can_place(ModuleShape{2, 1}));
  EXPECT_GT(fp.fragmentation(), 0.0);
  const std::size_t moved = fp.defragment();
  EXPECT_GE(moved, 1u);
  EXPECT_TRUE(fp.can_place(ModuleShape{2, 1}));
  EXPECT_DOUBLE_EQ(fp.fragmentation(), 0.0);
  // Survivors stay live at their (possibly new) placements.
  EXPECT_TRUE(fp.is_live(*b));
  EXPECT_TRUE(fp.is_live(*d));
}

TEST(Floorplan, LargestFreeRectangle) {
  Floorplan fp(4, 4);
  EXPECT_EQ(fp.largest_free_rectangle(), 16u);
  (void)fp.place(ModuleShape{4, 1});
  EXPECT_EQ(fp.largest_free_rectangle(), 12u);
}

TEST(Floorplan, LiveRegions) {
  Floorplan fp(4, 4);
  const auto a = fp.place(ModuleShape{1, 1});
  const auto b = fp.place(ModuleShape{1, 1});
  ASSERT_TRUE(a && b);
  fp.remove(*a);
  const auto live = fp.live_regions();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0], *b);
}

// --- accelerator modules ------------------------------------------------------

AcceleratorModule test_module(KernelId id = 1, std::size_t w = 2,
                              std::size_t h = 2) {
  AcceleratorModule m;
  m.name = "k" + std::to_string(id);
  m.kernel = id;
  m.shape = ModuleShape{w, h};
  m.pipeline_depth = 10;
  m.initiation_interval = 2;
  m.clock_ghz = 0.25;  // 4 ns cycle
  return m;
}

TEST(AcceleratorModule, PipelineTiming) {
  const auto m = test_module();
  EXPECT_EQ(m.cycle_time(), 4000u);  // ps
  EXPECT_EQ(m.compute_time(0), 0u);
  EXPECT_EQ(m.compute_time(1), 10u * 4000u);
  // depth + (n-1)*II cycles
  EXPECT_EQ(m.compute_time(100), (10 + 99 * 2) * 4000u);
}

TEST(AcceleratorModule, EnergyScalesWithItems) {
  auto m = test_module();
  m.pj_per_item = 7.0;
  EXPECT_DOUBLE_EQ(m.compute_energy(10), 70.0);
}

// --- reconfiguration manager ----------------------------------------------------

ReconfigConfig small_fabric() {
  ReconfigConfig cfg;
  cfg.fabric_width = 4;
  cfg.fabric_height = 4;
  return cfg;
}

TEST(Reconfig, FirstLoadPaysConfigSecondIsFree) {
  ReconfigManager mgr("f", small_fabric());
  const auto m = test_module();
  const auto first = mgr.ensure_loaded(m, 0);
  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->reconfigured);
  EXPECT_GT(first->ready, 0u);
  const auto second = mgr.ensure_loaded(m, first->ready);
  ASSERT_TRUE(second.has_value());
  EXPECT_FALSE(second->reconfigured);
  EXPECT_EQ(second->ready, first->ready);
  EXPECT_EQ(mgr.loads(), 1u);
}

TEST(Reconfig, EvictsLruIdleModule) {
  auto cfg = small_fabric();
  cfg.fabric_width = 2;
  cfg.fabric_height = 2;  // fits exactly one 2×2 module
  ReconfigManager mgr("f", cfg);
  const auto a = test_module(1);
  const auto b = test_module(2);
  const auto la = mgr.ensure_loaded(a, 0);
  ASSERT_TRUE(la.has_value());
  const auto lb = mgr.ensure_loaded(b, la->ready + 1);
  ASSERT_TRUE(lb.has_value());
  EXPECT_TRUE(lb->evicted_any);
  EXPECT_FALSE(mgr.is_loaded(1));
  EXPECT_TRUE(mgr.is_loaded(2));
  EXPECT_EQ(mgr.evictions(), 1u);
}

TEST(Reconfig, BusyModuleNotEvicted) {
  auto cfg = small_fabric();
  cfg.fabric_width = 2;
  cfg.fabric_height = 2;
  ReconfigManager mgr("f", cfg);
  const auto a = test_module(1);
  const auto la = mgr.ensure_loaded(a, 0);
  ASSERT_TRUE(la.has_value());
  mgr.set_busy_until(la->region, la->ready + milliseconds(10));
  const auto lb = mgr.ensure_loaded(test_module(2), la->ready + 1);
  EXPECT_FALSE(lb.has_value());  // everything busy, cannot place
  EXPECT_TRUE(mgr.is_loaded(1));
}

TEST(Reconfig, NeverFitsReturnsNull) {
  ReconfigManager mgr("f", small_fabric());
  EXPECT_FALSE(mgr.ensure_loaded(test_module(1, 5, 5), 0).has_value());
}

TEST(Reconfig, BoundingBoxSmallerThanFullRegion) {
  auto bbox_cfg = small_fabric();
  bbox_cfg.bitstream_mode = BitstreamMode::kBoundingBox;
  auto full_cfg = small_fabric();
  full_cfg.bitstream_mode = BitstreamMode::kFullRegion;
  ReconfigManager bbox("b", bbox_cfg);
  ReconfigManager full("f", full_cfg);
  const auto m = test_module(1, 2, 2);  // bbox 4 slots; island 2×4=8 slots
  EXPECT_LT(bbox.wire_bytes_for(m), full.wire_bytes_for(m));
}

TEST(Reconfig, CompressionShrinksWireBytes) {
  auto raw_cfg = small_fabric();
  auto rle_cfg = small_fabric();
  rle_cfg.compression = CompressionMode::kRle;
  auto lz_cfg = small_fabric();
  lz_cfg.compression = CompressionMode::kLz;
  ReconfigManager raw("r", raw_cfg);
  ReconfigManager rle("e", rle_cfg);
  ReconfigManager lz("z", lz_cfg);
  auto m = test_module();
  m.logic_density = 0.3;
  EXPECT_LT(rle.wire_bytes_for(m), raw.wire_bytes_for(m));
  EXPECT_LT(lz.wire_bytes_for(m), raw.wire_bytes_for(m));
}

TEST(Reconfig, CompressionShortensConfigLatency) {
  auto raw_cfg = small_fabric();
  auto lz_cfg = small_fabric();
  lz_cfg.compression = CompressionMode::kLz;
  ReconfigManager raw("r", raw_cfg);
  ReconfigManager lz("z", lz_cfg);
  auto m = test_module();
  m.logic_density = 0.3;
  const auto a = raw.ensure_loaded(m, 0);
  const auto b = lz.ensure_loaded(m, 0);
  ASSERT_TRUE(a && b);
  EXPECT_LT(b->ready, a->ready);
}

TEST(Reconfig, UnloadFreesSpace) {
  auto cfg = small_fabric();
  cfg.fabric_width = 2;
  cfg.fabric_height = 2;
  ReconfigManager mgr("f", cfg);
  ASSERT_TRUE(mgr.ensure_loaded(test_module(1), 0).has_value());
  mgr.unload(1);
  EXPECT_FALSE(mgr.is_loaded(1));
  EXPECT_EQ(mgr.floorplan().used_slots(), 0u);
  EXPECT_THROW(mgr.unload(1), CheckError);
}

TEST(Reconfig, ConfigPortSerializesLoads) {
  ReconfigManager mgr("f", small_fabric());
  const auto a = mgr.ensure_loaded(test_module(1, 2, 2), 0);
  const auto b = mgr.ensure_loaded(test_module(2, 2, 2), 0);
  ASSERT_TRUE(a && b);
  EXPECT_GT(b->ready, a->ready);  // same ICAP port
  EXPECT_GT(mgr.config_bytes(), 0u);
  EXPECT_GT(mgr.energy().total(), 0.0);
}

TEST(Reconfig, DefragmentationRecoversFragmentedFabric) {
  auto cfg = small_fabric();
  cfg.fabric_width = 4;
  cfg.fabric_height = 1;
  ReconfigManager mgr("f", cfg);
  // Fill with four 1×1 modules, unload two non-adjacent ones.
  for (KernelId k = 1; k <= 4; ++k) {
    ASSERT_TRUE(mgr.ensure_loaded(test_module(k, 1, 1), 0).has_value());
  }
  mgr.unload(1);
  mgr.unload(3);
  const auto big = mgr.ensure_loaded(test_module(9, 2, 1), milliseconds(1));
  ASSERT_TRUE(big.has_value());
  EXPECT_GE(mgr.defrag_runs() + (big->evicted_any ? 1u : 0u), 1u);
}

}  // namespace
}  // namespace ecoscale
