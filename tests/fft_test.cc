#include <gtest/gtest.h>

#include <cmath>

#include "apps/fft.h"
#include "common/check.h"
#include "common/rng.h"
#include "hls/dse.h"

namespace ecoscale::apps {
namespace {

TEST(Fft, MatchesDftOnRandomInput) {
  Rng rng(5);
  std::vector<Complex> data(64);
  for (auto& x : data) x = Complex(rng.uniform(-1, 1), rng.uniform(-1, 1));
  const auto reference = dft(data);
  auto fast = data;
  fft(fast);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(fast[i].real(), reference[i].real(), 1e-9);
    EXPECT_NEAR(fast[i].imag(), reference[i].imag(), 1e-9);
  }
}

TEST(Fft, RoundTripIsIdentity) {
  Rng rng(6);
  std::vector<Complex> data(256);
  for (auto& x : data) x = Complex(rng.uniform(-5, 5), rng.uniform(-5, 5));
  auto copy = data;
  fft(copy);
  fft(copy, /*inverse=*/true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(copy[i].real(), data[i].real(), 1e-9);
    EXPECT_NEAR(copy[i].imag(), data[i].imag(), 1e-9);
  }
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<Complex> data(16, Complex(0, 0));
  data[0] = Complex(1, 0);
  fft(data);
  for (const auto& x : data) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  std::vector<Complex> data(n);
  const double freq = 5;
  for (std::size_t t = 0; t < n; ++t) {
    data[t] = Complex(
        std::cos(2 * 3.14159265358979323846 * freq * t / n), 0.0);
  }
  fft(data);
  // Energy concentrated in bins 5 and n-5.
  EXPECT_NEAR(std::abs(data[5]), n / 2.0, 1e-6);
  EXPECT_NEAR(std::abs(data[n - 5]), n / 2.0, 1e-6);
  EXPECT_NEAR(std::abs(data[4]), 0.0, 1e-6);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<Complex> data(12);
  EXPECT_THROW(fft(data), CheckError);
}

TEST(Fft, ConvolutionMatchesDirect) {
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{0.5, -1, 2};
  const auto fast = fft_convolve(a, b);
  ASSERT_EQ(fast.size(), a.size() + b.size() - 1);
  for (std::size_t k = 0; k < fast.size(); ++k) {
    double direct = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const std::size_t j = k - i;
      if (k >= i && j < b.size()) direct += a[i] * b[j];
    }
    EXPECT_NEAR(fast[k], direct, 1e-9);
  }
}

TEST(FftKernel, RegisteredWithDistinctId) {
  const auto k = make_fft_kernel();
  EXPECT_EQ(k.id, 107u);
  EXPECT_GT(k.ops.total(), 0u);
  // The butterfly is parallel: pipelining should reach II bounded only by
  // memory ports.
  const auto front = pareto_front(enumerate_designs(k));
  EXPECT_FALSE(front.empty());
  EXPECT_GE(front.back().items_per_cycle, 1.0);
}

}  // namespace
}  // namespace ecoscale::apps
