#include <gtest/gtest.h>

#include "address/address.h"
#include "address/ownership.h"
#include "address/page_table.h"
#include "address/progressive.h"
#include "address/smmu.h"
#include "common/check.h"

namespace ecoscale {
namespace {

TEST(GlobalAddress, EncodeDecodeRoundTrip) {
  const GlobalAddress a(3, 7, 0x123456);
  EXPECT_EQ(a.node(), 3);
  EXPECT_EQ(a.worker(), 7);
  EXPECT_EQ(a.offset(), 0x123456u);
  EXPECT_EQ(GlobalAddress::from_raw(a.raw()), a);
}

TEST(GlobalAddress, FieldLimitsEnforced) {
  EXPECT_NO_THROW(GlobalAddress(255, 255, GlobalAddress::kOffsetMask));
  EXPECT_THROW(GlobalAddress(0, 0, GlobalAddress::kOffsetMask + 1),
               CheckError);
}

TEST(GlobalAddress, ArithmeticStaysInWorker) {
  const GlobalAddress a(1, 2, 100);
  const GlobalAddress b = a + 28;
  EXPECT_EQ(b.node(), 1);
  EXPECT_EQ(b.worker(), 2);
  EXPECT_EQ(b.offset(), 128u);
}

TEST(GlobalAddress, HomeCoordinate) {
  const GlobalAddress a(5, 1, 0);
  EXPECT_EQ(a.home(), (WorkerCoord{5, 1}));
  EXPECT_EQ(a.home().str(), "n5.w1");
}

TEST(GlobalAddress, PageOfUsesRawAddress) {
  const GlobalAddress a(0, 0, kPageSize - 1);
  const GlobalAddress b(0, 0, kPageSize);
  EXPECT_EQ(page_of(a) + 1, page_of(b));
  // Different workers never share pages.
  const GlobalAddress c(0, 1, kPageSize - 1);
  EXPECT_NE(page_of(a), page_of(c));
}

TEST(PageTable, MapLookupUnmap) {
  PageTable pt(4);
  EXPECT_FALSE(pt.lookup(10).has_value());
  pt.map(10, 20);
  EXPECT_EQ(pt.lookup(10).value(), 20u);
  EXPECT_TRUE(pt.is_mapped(10));
  pt.unmap(10);
  EXPECT_FALSE(pt.is_mapped(10));
  EXPECT_EQ(pt.levels(), 4);
}

TEST(PageTable, RejectsBadLevelCount) {
  EXPECT_THROW(PageTable(0), CheckError);
  EXPECT_THROW(PageTable(7), CheckError);
}

class SmmuTest : public ::testing::Test {
 protected:
  SmmuConfig cfg_;
  void map_one(Smmu& smmu, ContextId ctx, PageId va, PageId ipa, PageId pa) {
    smmu.stage1(ctx).map(va, ipa);
    smmu.stage2().map(ipa, pa);
  }
};

TEST_F(SmmuTest, MissThenHit) {
  Smmu smmu(cfg_);
  map_one(smmu, 1, 100, 200, 300);
  const auto first = smmu.translate(1, 100);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->phys_page, 300u);
  EXPECT_FALSE(first->tlb_hit);
  const auto second = smmu.translate(1, 100);
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(second->tlb_hit);
  EXPECT_LT(second->latency, first->latency);
  EXPECT_EQ(smmu.walks(), 1u);
  EXPECT_EQ(smmu.hits(), 1u);
}

TEST_F(SmmuTest, NestedWalkAccessCount) {
  Smmu smmu(cfg_);
  map_one(smmu, 1, 1, 2, 3);
  (void)smmu.translate(1, 1);
  // (s1+1)*(s2+1)-1 with defaults 4 and 3 = 19.
  EXPECT_EQ(smmu.walk_accesses(), 19u);
}

TEST_F(SmmuTest, FaultOnUnmapped) {
  Smmu smmu(cfg_);
  EXPECT_FALSE(smmu.translate(1, 42).has_value());
  // Stage-1 present but stage-2 missing is still a fault.
  smmu.stage1(2).map(5, 6);
  EXPECT_FALSE(smmu.translate(2, 5).has_value());
}

TEST_F(SmmuTest, TlbEvictsLru) {
  cfg_.tlb_entries = 2;
  Smmu smmu(cfg_);
  map_one(smmu, 1, 1, 11, 21);
  map_one(smmu, 1, 2, 12, 22);
  map_one(smmu, 1, 3, 13, 23);
  (void)smmu.translate(1, 1);
  (void)smmu.translate(1, 2);
  (void)smmu.translate(1, 3);  // evicts page 1
  const auto again = smmu.translate(1, 1);
  ASSERT_TRUE(again.has_value());
  EXPECT_FALSE(again->tlb_hit);
  EXPECT_EQ(smmu.walks(), 4u);
}

TEST_F(SmmuTest, ContextsAreIsolated) {
  Smmu smmu(cfg_);
  map_one(smmu, 1, 100, 200, 300);
  EXPECT_TRUE(smmu.translate(1, 100).has_value());
  EXPECT_FALSE(smmu.translate(2, 100).has_value());
}

TEST_F(SmmuTest, InvalidateContextFlushesItsEntries) {
  Smmu smmu(cfg_);
  map_one(smmu, 1, 1, 10, 20);
  smmu.stage1(2).map(1, 11);
  smmu.stage2().map(11, 21);
  (void)smmu.translate(1, 1);
  (void)smmu.translate(2, 1);
  smmu.invalidate(1);
  const auto ctx1 = smmu.translate(1, 1);
  const auto ctx2 = smmu.translate(2, 1);
  EXPECT_FALSE(ctx1->tlb_hit);
  EXPECT_TRUE(ctx2->tlb_hit);
}

TEST_F(SmmuTest, HitRateAndEnergyAccumulate) {
  Smmu smmu(cfg_);
  map_one(smmu, 1, 1, 2, 3);
  (void)smmu.translate(1, 1);
  (void)smmu.translate(1, 1);
  EXPECT_DOUBLE_EQ(smmu.hit_rate(), 0.5);
  EXPECT_GT(smmu.energy(), 0.0);
}

TEST(Ownership, RegisterAndQuery) {
  OwnershipDirectory dir;
  dir.register_page(10, 2);
  EXPECT_TRUE(dir.is_registered(10));
  EXPECT_EQ(dir.owner(10).value(), 2);
  EXPECT_FALSE(dir.owner(11).has_value());
  EXPECT_THROW(dir.register_page(10, 3), CheckError);
}

TEST(Ownership, UnimemCacheabilityInvariant) {
  OwnershipDirectory dir;
  dir.register_page(10, 2);
  EXPECT_TRUE(dir.cacheable_at(10, 2));
  EXPECT_FALSE(dir.cacheable_at(10, 1));
  EXPECT_FALSE(dir.cacheable_at(99, 2));
}

TEST(Ownership, MigrationMovesCacheability) {
  OwnershipDirectory dir;
  dir.register_page(10, 0);
  EXPECT_EQ(dir.migrate(10, 3), 0);
  EXPECT_TRUE(dir.cacheable_at(10, 3));
  EXPECT_FALSE(dir.cacheable_at(10, 0));
  EXPECT_EQ(dir.migrations(), 1u);
  // Self-migration is a no-op.
  dir.migrate(10, 3);
  EXPECT_EQ(dir.migrations(), 1u);
  EXPECT_THROW(dir.migrate(99, 0), CheckError);
}

TEST(Progressive, LocalNeedsOnlyLevelZero) {
  ProgressiveTranslator pt({nanoseconds(2), nanoseconds(10), nanoseconds(50)});
  const auto r = pt.translate({0, 0}, {0, 0});
  EXPECT_EQ(r.steps.size(), 1u);
  EXPECT_EQ(r.total_latency, nanoseconds(2));
}

TEST(Progressive, IntraNodeStopsAtLevelOne) {
  ProgressiveTranslator pt({nanoseconds(2), nanoseconds(10), nanoseconds(50)});
  const auto r = pt.translate({0, 0}, {0, 3});
  EXPECT_EQ(r.steps.size(), 2u);
  EXPECT_EQ(r.total_latency, nanoseconds(12));
}

TEST(Progressive, CrossNodeClimbsAllLevels) {
  ProgressiveTranslator pt({nanoseconds(2), nanoseconds(10), nanoseconds(50)});
  const auto r = pt.translate({0, 0}, {1, 0});
  EXPECT_EQ(r.steps.size(), 3u);
  EXPECT_EQ(r.total_latency, nanoseconds(62));
}

}  // namespace
}  // namespace ecoscale
