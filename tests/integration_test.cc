// End-to-end tests through the public EcoRuntime (OpenCL-style) API —
// the flows the examples exercise, asserted tightly.
#include <gtest/gtest.h>

#include <cstring>
#include <span>

#include "apps/stencil.h"
#include "runtime/api.h"

namespace ecoscale {
namespace {

MachineConfig machine_2x2() {
  MachineConfig cfg;
  cfg.nodes = 2;
  cfg.workers_per_node = 2;
  return cfg;
}

TEST(EcoRuntime, DeviceDiscovery) {
  EcoRuntime rt(machine_2x2());
  EXPECT_EQ(rt.device_count(), 4u);
}

TEST(EcoRuntime, BufferWriteReadRoundTrip) {
  EcoRuntime rt(machine_2x2());
  auto buf = rt.create_buffer(3 * kPageSize, Distribution::kBlock);
  std::vector<std::uint8_t> data(2 * kPageSize);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i % 251);
  }
  rt.write_buffer(buf, kPageSize / 2, data);  // straddles partitions
  std::vector<std::uint8_t> out(data.size());
  rt.read_buffer(buf, kPageSize / 2, out);
  EXPECT_EQ(out, data);
}

TEST(EcoRuntime, LocalBufferAnchored) {
  EcoRuntime rt(machine_2x2());
  auto buf = rt.create_buffer(kPageSize, Distribution::kLocal,
                              WorkerCoord{1, 1});
  EXPECT_EQ(buf.layout().home_of(0), (WorkerCoord{1, 1}));
}

TEST(EcoRuntime, KernelCreationRunsDse) {
  EcoRuntime rt(machine_2x2());
  auto kernel = rt.create_kernel(make_montecarlo_kernel(), 3);
  EXPECT_FALSE(kernel.variants().empty());
  EXPECT_LE(kernel.variants().size(), 3u);
}

TEST(EcoRuntime, DistributedEnqueueFansOutPerPartition) {
  EcoRuntime rt(machine_2x2());
  auto kernel = rt.create_kernel(make_stencil5_kernel());
  auto buf = rt.create_buffer(4 * kPageSize, Distribution::kBlock);
  const auto event = rt.enqueue(kernel, buf, 40000);
  EXPECT_EQ(event.tasks.size(), buf.layout().partitions().size());
  rt.finish();
  const auto results = rt.wait(event);
  ASSERT_EQ(results.size(), event.tasks.size());
  // Items split across partitions sum to the request.
  const auto stats = rt.stats();
  EXPECT_EQ(stats.sw_tasks + stats.hw_tasks, results.size());
}

TEST(EcoRuntime, EnqueueOnTargetsWorker) {
  EcoRuntime rt(machine_2x2());
  auto kernel = rt.create_kernel(make_cart_split_kernel());
  const auto event = rt.enqueue_on(kernel, WorkerCoord{1, 0}, 1000);
  rt.finish();
  const auto results = rt.wait(event);
  ASSERT_EQ(results.size(), 1u);
  // With the default lazy policy and an idle machine the task runs at home.
  EXPECT_EQ(results[0].executed_on, rt.machine().pgas().flat({1, 0}));
}

TEST(EcoRuntime, FunctionalBodyTransformsBufferContents) {
  EcoRuntime rt(machine_2x2());
  auto kernel = rt.create_kernel(make_sha_like_kernel());
  kernel.set_body([](std::span<std::uint8_t> data, std::uint64_t) {
    for (auto& b : data) b = static_cast<std::uint8_t>(b + 1);
  });
  auto buf = rt.create_buffer(2 * kPageSize, Distribution::kBlock);
  std::vector<std::uint8_t> zeros(64, 0);
  rt.write_buffer(buf, 0, zeros);
  (void)rt.enqueue(kernel, buf, 128);
  rt.finish();
  std::vector<std::uint8_t> out(64);
  rt.read_buffer(buf, 0, out);
  for (const auto b : out) EXPECT_EQ(b, 1);
}

TEST(EcoRuntime, ModelBasedRuntimeOffloadsHeavyStream) {
  RuntimeConfig rc;
  rc.placement = PlacementPolicy::kModelBased;
  EcoRuntime rt(machine_2x2(), rc);
  auto kernel = rt.create_kernel(make_montecarlo_kernel());
  auto buf = rt.create_buffer(mebibytes(1), Distribution::kLocal,
                              WorkerCoord{0, 0});
  for (int i = 0; i < 40; ++i) {
    (void)rt.enqueue(kernel, buf, 150000, milliseconds(i));
  }
  rt.finish();
  const auto stats = rt.stats();
  EXPECT_GT(stats.hw_tasks, 0u);
  EXPECT_GT(stats.energy, 0.0);
  EXPECT_GT(rt.machine().total_energy(), 0.0);
}

TEST(EcoRuntime, StencilEndToEndWithHaloSemantics) {
  // Functional stencil on host data moved through PGAS buffers: verifies
  // the data plane is trustworthy for the examples.
  EcoRuntime rt(machine_2x2());
  apps::Grid2D grid(32, 32, 0.0);
  for (std::size_t x = 0; x < 32; ++x) grid.at(x, 0) = 1.0;
  auto buf = rt.create_buffer(grid.data().size() * sizeof(double),
                              Distribution::kBlock);
  rt.write_buffer(buf, 0,
                  std::span(reinterpret_cast<const std::uint8_t*>(
                                grid.data().data()),
                            grid.data().size() * sizeof(double)));
  std::vector<double> back(grid.data().size());
  rt.read_buffer(buf, 0,
                 std::span(reinterpret_cast<std::uint8_t*>(back.data()),
                           back.size() * sizeof(double)));
  EXPECT_EQ(back, grid.data());
}

TEST(EcoRuntime, EnqueueChainFusesStages) {
  EcoRuntime rt(machine_2x2());
  auto a = rt.create_kernel(make_stencil5_kernel());
  auto b = rt.create_kernel(make_sha_like_kernel());
  auto c = rt.create_kernel(make_spmv_kernel());
  const auto chained =
      rt.enqueue_chain({&a, &b, &c}, WorkerCoord{0, 0}, 50000);
  ASSERT_TRUE(chained.fits);
  // External I/O only: first stage in, last stage out.
  EXPECT_EQ(chained.dram_bytes,
            50000 * (a.variants().front().bytes_in_per_item +
                     c.variants().front().bytes_out_per_item));
  EXPECT_GT(chained.ops_per_dram_byte, 0.0);
}

TEST(EcoRuntime, EnqueueAfterOrdersStages) {
  EcoRuntime rt(machine_2x2());
  auto producer = rt.create_kernel(make_stencil5_kernel());
  auto consumer = rt.create_kernel(make_spmv_kernel());
  auto buf = rt.create_buffer(2 * kPageSize, Distribution::kBlock);
  const auto first = rt.enqueue(producer, buf, 20000);
  const auto second = rt.enqueue_after(consumer, buf, 20000, first);
  rt.finish();
  const auto produced = rt.wait(first);
  const auto consumed = rt.wait(second);
  ASSERT_FALSE(produced.empty());
  ASSERT_FALSE(consumed.empty());
  SimTime stage1_done = 0;
  for (const auto& r : produced) stage1_done = std::max(stage1_done, r.finished);
  for (const auto& r : consumed) {
    EXPECT_GE(r.release, stage1_done);
    EXPECT_GE(r.started, stage1_done);
  }
}

TEST(EcoRuntime, EnqueueAfterChainOfThree) {
  EcoRuntime rt(machine_2x2());
  auto kernel = rt.create_kernel(make_cart_split_kernel());
  auto buf = rt.create_buffer(kPageSize, Distribution::kLocal,
                              WorkerCoord{0, 0});
  auto a = rt.enqueue(kernel, buf, 5000);
  auto b = rt.enqueue_after(kernel, buf, 5000, a);
  auto c = rt.enqueue_after(kernel, buf, 5000, b);
  rt.finish();
  const auto ra = rt.wait(a);
  const auto rb = rt.wait(b);
  const auto rc = rt.wait(c);
  ASSERT_EQ(ra.size(), 1u);
  ASSERT_EQ(rb.size(), 1u);
  ASSERT_EQ(rc.size(), 1u);
  EXPECT_LE(ra[0].finished, rb[0].started);
  EXPECT_LE(rb[0].finished, rc[0].started);
}

TEST(EcoRuntime, SharedFabricToggleChangesRemoteUse) {
  RuntimeConfig shared;
  shared.placement = PlacementPolicy::kAlwaysHardware;
  shared.share_fabric = true;
  shared.distribution = DistributionPolicy::kHomeOnly;
  RuntimeConfig isolated = shared;
  isolated.share_fabric = false;

  auto run = [](const RuntimeConfig& rc) {
    EcoRuntime rt(machine_2x2(), rc);
    auto kernel = rt.create_kernel(make_montecarlo_kernel());
    auto buf = rt.create_buffer(kPageSize, Distribution::kLocal,
                                WorkerCoord{0, 0});
    for (int i = 0; i < 24; ++i) {
      (void)rt.enqueue(kernel, buf, 400000);
    }
    rt.finish();
    return rt.stats();
  };
  const auto with_sharing = run(shared);
  const auto without = run(isolated);
  EXPECT_EQ(without.remote_hw_tasks, 0u);
  EXPECT_EQ(with_sharing.sw_tasks + with_sharing.hw_tasks, 24u);
}

}  // namespace
}  // namespace ecoscale
