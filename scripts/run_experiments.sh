#!/usr/bin/env bash
# Regenerate every experiment in EXPERIMENTS.md and capture the outputs at
# the repository root (test_output.txt / bench_output.txt).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in build/bench/*; do
    echo "===== $(basename "$b") ====="
    "$b"
    echo
  done
} 2>&1 | tee bench_output.txt

echo
echo "Examples:"
status=0
for e in build/examples/*; do
  echo "--- $(basename "$e")"
  if "$e"; then
    :
  else
    rc=$?
    echo "FAILED: $(basename "$e") exited $rc" >&2
    status=1
  fi
done
exit "$status"
