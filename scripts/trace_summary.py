#!/usr/bin/env python3
"""Validate and summarize a Chrome trace-event JSON dump from --trace.

Usage:
    scripts/trace_summary.py TRACE.json [--top N]
        [--require-categories a,b,c] [--min-spans N]

Checks that the file is well-formed (valid JSON, a traceEvents array,
every event carrying the fields its phase requires, durations
non-negative) and prints per-category totals plus the top span names by
total duration. Exits non-zero on a malformed trace, so CI can use it as
a smoke check:

    scripts/trace_summary.py trace.json \
        --require-categories sim,runtime,unimem,unilogic
"""

import argparse
import collections
import json
import sys

# Fields every exported event must carry, per trace-event phase.
REQUIRED = {
    "X": ("name", "cat", "pid", "tid", "ts", "dur"),
    "i": ("name", "cat", "pid", "tid", "ts"),
    "C": ("name", "cat", "pid", "tid", "ts", "args"),
    "M": ("name", "pid"),
}


def fail(msg):
    print(f"trace_summary: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        fail(f"{path}: missing traceEvents array")
    return doc


def validate(events):
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event {i}: not an object")
        ph = ev.get("ph")
        if ph not in REQUIRED:
            fail(f"event {i}: unknown phase {ph!r}")
        for field in REQUIRED[ph]:
            if field not in ev:
                fail(f"event {i} ({ph} {ev.get('name')!r}): missing {field!r}")
        if ph == "X" and ev["dur"] < 0:
            fail(f"event {i} ({ev['name']!r}): negative duration")
        if ph in ("X", "i", "C") and ev["ts"] < 0:
            fail(f"event {i} ({ev['name']!r}): negative timestamp")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("trace")
    ap.add_argument("--top", type=int, default=15,
                    help="span names to list (default 15)")
    ap.add_argument("--require-categories", default="",
                    help="comma list; fail unless every one has events")
    ap.add_argument("--min-spans", type=int, default=1,
                    help="fail if fewer complete spans than this (default 1)")
    args = ap.parse_args()

    doc = load(args.trace)
    events = doc["traceEvents"]
    validate(events)

    spans = [e for e in events if e["ph"] == "X"]
    by_cat = collections.Counter(e["cat"] for e in events if e["ph"] != "M")
    lanes = {(e["pid"], e["tid"]) for e in events if e["ph"] != "M"}
    dur_by_name = collections.defaultdict(float)
    count_by_name = collections.Counter()
    for e in spans:
        key = (e["cat"], e["name"])
        dur_by_name[key] += e["dur"]
        count_by_name[key] += 1

    dropped = (doc.get("otherData") or {}).get("droppedEvents", 0)
    print(f"{args.trace}: {len(events)} events, {len(spans)} spans, "
          f"{len(lanes)} lanes, {dropped} dropped")
    print("events per category:")
    for cat, n in sorted(by_cat.items()):
        print(f"  {cat:<10} {n}")
    print(f"top {args.top} span names by total duration:")
    ranked = sorted(dur_by_name.items(), key=lambda kv: -kv[1])[:args.top]
    for (cat, name), total in ranked:
        print(f"  {cat:<10} {name:<30} {count_by_name[(cat, name)]:>8} "
              f"spans {total / 1000.0:>12.3f} ms")

    if len(spans) < args.min_spans:
        fail(f"only {len(spans)} spans (need >= {args.min_spans})")
    required = [c for c in args.require_categories.split(",") if c]
    missing = [c for c in required if by_cat.get(c, 0) == 0]
    if missing:
        fail(f"no events from required categories: {', '.join(missing)}")
    print("trace OK")


if __name__ == "__main__":
    main()
