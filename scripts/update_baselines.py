#!/usr/bin/env python3
"""Regenerate the bench baseline dumps that CI gates against.

Runs the named benches (default: the gated set) with `--json`, then turns
the fresh dump into a *baseline*: deterministic columns (event counts,
windows, messages, hashes, live intervals) are kept exactly — CI hardware
cannot change them — while hardware-dependent columns are derated into
floors/ceilings so the gate only trips on structural collapses, not on
runner-vs-runner variance:

  * throughput columns ("/sec", "per_sec"): multiplied by 0.5 (a floor —
    CI fails only if it drops more than --fail-above below half the
    reference machine's throughput)
  * latency columns ("ns/op", and tail-percentile columns such as
    "p50 ns" / "p99 ns" / "p999 ns" / "max ns" from the serving benches):
    multiplied by 2.0 (a ceiling — p999 is matched as a whole token, not
    as a substring of p99)
  * wall-time and memory-footprint columns ("ms", "MB"): multiplied by 2.5
    with an absolute floor of 10 units (a ceiling — construction time and
    RSS growth gate structural regressions such as an accidental return
    to quadratic state, not allocator or scheduler noise on tiny rows)

Hash columns are kept exactly and compared exactly (bench_compare treats
any hash change as a failure) — they encode the engine's determinism, not
a performance number.

Re-run this script (and commit bench/baselines/) whenever bench workloads
or engine behavior change intentionally:

Byte-hop columns ("byte hops") are migration/forwarding traffic on the
simulated interconnect — deterministic in principle, but they shift with
every intentional workload retune, so they gate as x2 ceilings rather
than exact matches: only a locality collapse (remote traffic blowing up
past twice the reference) trips them.

Re-run this script (and commit bench/baselines/) whenever bench workloads
or engine behavior change intentionally:

    cmake --build build --target bench_simcore bench_mempath bench_scale \
        bench_serve bench_repart
    python3 scripts/update_baselines.py --build-dir build
"""

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile

GATED_BENCHES = ["bench_simcore", "bench_mempath", "bench_scale",
                 "bench_serve", "bench_repart"]
# Matches the CI bench-smoke invocation so sharded-engine tables have the
# same row keys (the "sim threads" column) in baseline and fresh runs.
BENCH_ARGS = ["--sim-threads", "4"]

THROUGHPUT_DERATE = 0.5
LATENCY_INFLATE = 2.0
WALL_INFLATE = 2.5  # wall-time ("ms") and memory ("MB") ceilings
# Sub-millisecond / sub-megabyte measurements would otherwise produce
# ceilings so tight that scheduler or allocator noise on a shared runner
# trips them; the scaling gate cares about the big rows, so tiny ones
# get at least this much absolute headroom.
WALL_MIN_CEILING = 10.0
# Interconnect traffic ("byte hops"): a ceiling wide enough to survive
# intentional retunes, tight enough to catch a locality collapse.
BYTE_HOP_INFLATE = 2.0


def is_latency_column(name):
    """Latency columns gated as x2 ceilings: "ns/op" rates, and the
    serving benches' tail percentiles. Percentile names are matched as
    whole tokens ("p999 ns" must not be caught by a "p99" substring
    test, or renamed columns would silently inherit the wrong gate)."""
    if "ns/op" in name:
        return True
    tokens = name.split()
    return "ns" in tokens and any(
        t in ("p50", "p90", "p99", "p999", "max", "mean") for t in tokens)


def derate(doc):
    for table in doc.get("tables", []):
        headers = table.get("headers", [])
        for row in table.get("rows", []):
            for i, name in enumerate(headers):
                if i == 0 or i >= len(row):
                    continue
                try:
                    v = float(row[i])
                except (TypeError, ValueError):
                    continue
                if "/sec" in name or "per_sec" in name:
                    row[i] = f"{v * THROUGHPUT_DERATE:.6g}"
                elif is_latency_column(name):
                    row[i] = f"{v * LATENCY_INFLATE:.6g}"
                elif "ms" in name.split() or "MB" in name.split():
                    row[i] = f"{max(v * WALL_INFLATE, WALL_MIN_CEILING):.6g}"
                elif "byte hops" in name:
                    row[i] = f"{v * BYTE_HOP_INFLATE:.6g}"
    return doc


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("benches", nargs="*", default=GATED_BENCHES)
    args = ap.parse_args()

    repo = pathlib.Path(__file__).resolve().parent.parent
    out_dir = repo / "bench" / "baselines"
    out_dir.mkdir(parents=True, exist_ok=True)

    for name in args.benches:
        bench = repo / args.build_dir / "bench" / name
        if not bench.exists():
            sys.exit(f"error: {bench} not built")
        with tempfile.NamedTemporaryFile(suffix=".json") as tmp:
            subprocess.run(
                [str(bench), "--json", tmp.name, *BENCH_ARGS],
                check=True, stdout=subprocess.DEVNULL)
            doc = json.loads(pathlib.Path(tmp.name).read_text())
        baseline = out_dir / f"{name}.json"
        baseline.write_text(json.dumps(derate(doc), indent=1) + "\n")
        print(f"wrote {baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
