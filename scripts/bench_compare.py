#!/usr/bin/env python3
"""Compare two bench --json dumps and print a %-change table.

Usage:
    scripts/bench_compare.py BEFORE.json AFTER.json [--threshold PCT]
        [--fail-above PCT]

Accepts either format the bench harness emits:
  * a --json dump: {"tables": [{"caption", "headers", "rows"}, ...]}
  * a captured stdout log containing one-line summaries such as
    MEMPATH_JSON {"remote_ops_per_sec": 1.2e6, ...}

Tables are matched by caption (falling back to position), rows by their
first column. Every numeric cell is compared; non-numeric cells are
ignored. Exits 1 if --threshold is given and any metric regressed by more
than PCT percent (a regression is a drop for */sec columns and a rise for
everything else, since the remaining units are times/counts). Latency
percentile columns ("p50 ns" / "p99 ns" / "p999 ns") therefore gate as
ceilings: committed baselines pre-inflate them x2 (update_baselines.py),
so only a genuine tail blow-up — not runner noise — can rise past the
threshold. Hash columns are compared exactly, any drift fails. A
deterministic baseline column (hash or count) that is *absent* from the
fresh dump is a hard failure, not a silent skip — renaming or dropping a
gated column must force a baseline regeneration, never an empty diff.
"""

import argparse
import json
import re
import sys


def parse_file(path):
    """Return {table_key: {row_key: {col_name: float}}}."""
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None
    out = {}
    if isinstance(doc, dict) and "tables" in doc:
        for i, table in enumerate(doc["tables"]):
            caption = (table.get("caption") or f"table {i}").splitlines()[0]
            headers = table.get("headers") or []
            rows = {}
            for row in table.get("rows", []):
                cells = {}
                for name, cell in zip(headers[1:], row[1:]):
                    value = to_float(cell)
                    if value is not None:
                        cells[name] = value
                rows[str(row[0])] = cells
            out[caption] = rows
        return out
    # Fall back to scanning for NAME_JSON {...} summary lines.
    for match in re.finditer(r"^(\w+_JSON)\s+(\{.*\})\s*$", text, re.M):
        try:
            flat = json.loads(match.group(2))
        except json.JSONDecodeError:
            continue
        rows = {}
        for key, value in flat.items():
            v = to_float(value)
            if v is not None:
                rows[key] = {"value": v}
        out[match.group(1)] = rows
    if not out:
        sys.exit(f"error: {path}: neither a bench --json dump nor a log "
                 "with *_JSON summary lines")
    return out


def to_float(cell):
    try:
        return float(cell)
    except (TypeError, ValueError):
        return None


def higher_is_better(column):
    return "/sec" in column or "per_sec" in column


def exact_match(column):
    """Hash columns encode determinism: any change at all is a failure,
    whatever its sign or magnitude."""
    return "hash" in column.lower()


# Count-like columns are deterministic too (simulated work, not wall
# clock): if one disappears from a fresh dump, that is a renamed or
# dropped column, not a faster machine.
COUNT_TOKENS = {"issued", "completed", "shed", "events", "windows",
                "messages", "moves", "forwards", "count", "tasks", "spills"}


def deterministic(column):
    """Columns whose *absence* from the fresh dump must hard-fail: a
    baseline hash or count column that no longer exists would otherwise
    pass silently (nothing compared, exit 0)."""
    lowered = column.lower()
    return exact_match(column) or any(
        t in COUNT_TOKENS for t in lowered.split())


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("before")
    ap.add_argument("after")
    ap.add_argument("--threshold", type=float, default=None,
                    help="fail if any metric regresses by more than PCT%%")
    ap.add_argument("--fail-above", type=float, default=None, metavar="PCT",
                    help="regression gate for CI: exit non-zero if any "
                         "metric regresses by more than PCT%% (synonym for "
                         "--threshold; the stricter of the two wins)")
    args = ap.parse_args()
    gates = [t for t in (args.threshold, args.fail_above) if t is not None]
    gate = min(gates) if gates else None

    before = parse_file(args.before)
    after = parse_file(args.after)

    # Positional fallback lets renamed captions still line up.
    keys = [k for k in before if k in after]
    if not keys and len(before) == len(after):
        keys = list(before)
        after = dict(zip(before, after.values()))

    worst = 0.0
    rows = []
    missing = []
    for key in before:
        if key in keys:
            continue
        if any(deterministic(c) for r in before[key].values() for c in r):
            missing.append((key, "-", "table absent from the fresh dump"))
    for key in keys:
        for row_name, cells in before[key].items():
            other = after[key].get(row_name)
            if other is None:
                if any(deterministic(c) for c in cells):
                    missing.append((key, row_name,
                                    "row absent from the fresh dump"))
                continue
            for col, old in cells.items():
                new = other.get(col)
                if new is None and deterministic(col):
                    missing.append((key, row_name,
                                    f"column '{col}' absent from the fresh "
                                    "dump"))
                    continue
                if new is None or old == 0:
                    continue
                change = 100.0 * (new - old) / old
                if exact_match(col):
                    # Determinism gate: any drift fails regardless of the
                    # numeric threshold (hashes are not magnitudes).
                    regression = 0.0 if new == old else float("inf")
                else:
                    regression = -change if higher_is_better(col) else change
                worst = max(worst, regression)
                rows.append((key, row_name, col, old, new, change))

    if not rows and not missing:
        sys.exit("error: no comparable metrics between the two files")

    name_w = max(len(f"{r[1]} [{r[2]}]") for r in rows)
    print(f"{'metric':<{name_w}}  {'before':>12}  {'after':>12}  {'change':>8}")
    last_key = None
    for key, row_name, col, old, new, change in rows:
        if key != last_key:
            print(f"-- {key}")
            last_key = key
        label = f"{row_name} [{col}]"
        print(f"{label:<{name_w}}  {old:>12.6g}  {new:>12.6g}  {change:>+7.1f}%")

    if missing:
        print("\nFAIL: deterministic baseline columns (hashes, counts) are "
              "missing from the fresh dump — a renamed or dropped column "
              "would otherwise pass silently:", file=sys.stderr)
        for key, row_name, what in missing:
            print(f"  {key} / {row_name}: {what}", file=sys.stderr)
        return 1
    if gate is not None and worst > gate:
        print(f"\nFAIL: worst regression {worst:.1f}% exceeds "
              f"threshold {gate:.1f}%", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
