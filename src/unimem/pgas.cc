#include "unimem/pgas.h"

#include <algorithm>
#include <array>
#include <cstring>

#include "common/check.h"
#include "obs/trace.h"

namespace ecoscale {

namespace {

/// Energy categories of the access paths, interned once per process so the
/// per-access lane charges dense CounterIds instead of hashing strings.
struct PgasCounters {
  CounterId global_load = CounterRegistry::intern("pgas.global.load");
  CounterId global_store = CounterRegistry::intern("pgas.global.store");
  CounterId local_load = CounterRegistry::intern("pgas.local.load");
  CounterId local_store = CounterRegistry::intern("pgas.local.store");
  CounterId remote_load = CounterRegistry::intern("pgas.remote.load");
  CounterId remote_store = CounterRegistry::intern("pgas.remote.store");
  CounterId atomic_local = CounterRegistry::intern("pgas.atomic.local");
  CounterId atomic_remote = CounterRegistry::intern("pgas.atomic.remote");
  CounterId page_migration = CounterRegistry::intern("pgas.page_migration");
  CounterId task_migration = CounterRegistry::intern("pgas.task_migration");
  CounterId retry = CounterRegistry::intern("pgas.retry");
  CounterId failover = CounterRegistry::intern("pgas.failover");
};

const PgasCounters& counters() {
  static const PgasCounters c;
  return c;
}

}  // namespace

PgasSystem::PgasSystem(PgasConfig config) : config_(config) {
  ECO_CHECK(config_.nodes >= 1 && config_.workers_per_node >= 1);
  ECO_CHECK(config_.chassis >= 1);
  ECO_CHECK_MSG(config_.nodes % config_.chassis == 0,
                "chassis must divide the node count evenly");
  // Multi-level tree: L0 groups workers into nodes; L1 joins nodes (into
  // chassis, when configured); L2 joins chassis.
  std::vector<std::size_t> radices{config_.workers_per_node};
  NetworkConfig net_cfg;
  net_cfg.level_params = {{0, config_.l0_link}, {1, config_.l1_link}};
  if (config_.chassis > 1) {
    radices.push_back(config_.nodes / config_.chassis);
    radices.push_back(config_.chassis);
    net_cfg.level_params[2] = config_.l2_link;
  } else {
    radices.push_back(config_.nodes);
  }
  network_ = std::make_unique<Network>(make_tree(radices), net_cfg);

  // Pooled lazy state (DESIGN.md §7.7): size the slot vectors but build
  // nothing — caches, DRAM channels and coherence domains are constructed
  // on first touch by cache_at/dram_at/domain_at, so untouched workers
  // cost one null pointer each. Construction is purely functional (no
  // timed side effects, thread-safe counter interning only), so the
  // first-touch order never changes simulation results.
  const std::size_t total = worker_count();
  caches_.resize(total);
  drams_.resize(total);
  alloc_cursor_.assign(total, 0);
  translator_ =
      std::make_unique<ProgressiveTranslator>(config_.translation_latencies);
  if (config_.scope == CoherenceScope::kGlobal) {
    // The "cannot scale" baseline: one machine-wide snoop domain. It holds
    // a pointer to every cache, so this scope is eager by construction —
    // which is the point the baseline makes.
    std::vector<Cache*> all;
    all.reserve(total);
    for (std::size_t i = 0; i < total; ++i) all.push_back(&cache_at(i));
    domains_.push_back(std::make_unique<CoherenceDomain>(
        std::move(all), CoherenceMode::kSnoopBroadcast));
    return;
  }
  domains_.resize(config_.nodes);
}

Cache& PgasSystem::cache_at(std::size_t flat_index) {
  ECO_CHECK(flat_index < caches_.size());
  auto& slot = caches_[flat_index];
  if (slot == nullptr) {
    slot = std::make_unique<Cache>(coord(flat_index).str() + ".l2",
                                   config_.cache);
  }
  return *slot;
}

DramChannel& PgasSystem::dram_at(std::size_t flat_index) {
  ECO_CHECK(flat_index < drams_.size());
  auto& slot = drams_[flat_index];
  if (slot == nullptr) {
    slot = std::make_unique<DramChannel>(coord(flat_index).str() + ".dram",
                                         config_.dram);
  }
  return *slot;
}

CoherenceDomain& PgasSystem::domain_at(NodeId node) {
  if (config_.scope == CoherenceScope::kGlobal) return *domains_[0];
  ECO_CHECK(node < domains_.size());
  auto& slot = domains_[node];
  if (slot == nullptr) {
    // The domain snoops every cache of the node, so first touch of a node
    // forces its workers_per_node caches — per-node, not per-machine.
    std::vector<Cache*> node_caches;
    node_caches.reserve(config_.workers_per_node);
    for (std::size_t w = 0; w < config_.workers_per_node; ++w) {
      node_caches.push_back(
          &cache_at(static_cast<std::size_t>(node) * config_.workers_per_node +
                    w));
    }
    slot = std::make_unique<CoherenceDomain>(std::move(node_caches),
                                             config_.node_coherence);
  }
  return *slot;
}

GlobalAddress PgasSystem::alloc(NodeId node, WorkerId worker, Bytes size) {
  ECO_CHECK(node < config_.nodes && worker < config_.workers_per_node);
  ECO_CHECK(size > 0);
  const std::size_t idx = flat(WorkerCoord{node, worker});
  // Page-align each allocation so ownership is per-allocation clean.
  std::uint64_t& cursor = alloc_cursor_[idx];
  cursor = (cursor + kPageSize - 1) & ~(kPageSize - 1);
  const GlobalAddress base(node, worker, cursor);
  cursor += size;
  const PageId first = page_of(base);
  const PageId last = page_of(base + (size - 1));
  for (PageId p = first; p <= last; ++p) {
    if (!directory_.is_registered(p)) directory_.register_page(p, node);
  }
  return base;
}

std::vector<std::uint8_t>& PgasSystem::page_data(PageId page) {
  auto& data = store_[page];
  if (data.empty()) data.resize(kPageSize, 0);
  return data;
}

void PgasSystem::write_bytes(GlobalAddress addr,
                             std::span<const std::uint8_t> data) {
  std::uint64_t raw = addr.raw();
  std::size_t written = 0;
  while (written < data.size()) {
    const PageId page = raw >> kPageShift;
    const std::size_t in_page = raw & (kPageSize - 1);
    const std::size_t chunk =
        std::min<std::size_t>(kPageSize - in_page, data.size() - written);
    auto& pd = page_data(page);
    std::copy_n(data.data() + written, chunk, pd.data() + in_page);
    written += chunk;
    raw += chunk;
  }
}

void PgasSystem::read_bytes(GlobalAddress addr,
                            std::span<std::uint8_t> out) const {
  std::uint64_t raw = addr.raw();
  std::size_t done = 0;
  while (done < out.size()) {
    const PageId page = raw >> kPageShift;
    const std::size_t in_page = raw & (kPageSize - 1);
    const std::size_t chunk =
        std::min<std::size_t>(kPageSize - in_page, out.size() - done);
    auto it = store_.find(page);
    if (it == store_.end()) {
      std::fill_n(out.data() + done, chunk, 0);
    } else {
      std::copy_n(it->second.data() + in_page, chunk, out.data() + done);
    }
    done += chunk;
    raw += chunk;
  }
}

SimTime PgasSystem::fail_over_dead_owner(WorkerCoord who, PageId page,
                                         SimTime now) {
  const NodeId dead = owner_of(page);
  // Bounded retries with linear backoff: each attempt waits out a timeout
  // against the unresponsive owner. A repair racing the retries wins —
  // the access then proceeds against the original owner, no failover.
  for (std::size_t attempt = 0; attempt < config_.fault_max_retries;
       ++attempt) {
    const SimTime deadline = now + config_.fault_retry_timeout +
                             attempt * config_.fault_retry_backoff;
    ECO_TRACE_SPAN(obs::Cat::kRetry, counters().retry,
                   (obs::Lane{who.node, who.worker}), now, deadline,
                   static_cast<std::uint32_t>(attempt + 1));
    ++remote_retries_;
    now = deadline;
    // The retry hook fires before the liveness re-check: a scripted repair
    // installed by the litmus harness lands exactly where a concurrent
    // repair event would, including one racing the final attempt.
    if (observer_ != nullptr && observer_->on_retry) {
      observer_->on_retry(who, page, attempt + 1, now);
    }
    if (health_->node_up(dead)) return now;
  }
  // Retries exhausted: re-home the page at the requester's node (or the
  // lowest surviving node if the requester's own node is gone). The data
  // is rebuilt from the lowest surviving node's replica: one DRAM read
  // there, a page DMA if the replica is elsewhere, one DRAM write at the
  // new home. The functional copy in store_ is global, so correctness is
  // unaffected — this models the *cost* of replica recovery.
  NodeId target = who.node;
  NodeId replica = dead;
  for (std::size_t n = 0; n < config_.nodes; ++n) {
    if (health_->node_up(n)) {
      replica = static_cast<NodeId>(n);
      break;
    }
  }
  ECO_CHECK_MSG(replica != dead, "no surviving node for page failover");
  if (!health_->node_up(target)) target = replica;
  const SimTime start = now;
  const WorkerCoord rep_w{replica, 0};
  const WorkerCoord dst_w{target, 0};
  const auto rd = dram(rep_w).access(now, kPageSize);
  SimTime t = rd.finish;
  Picojoules e = rd.energy;
  if (replica != target) {
    Packet p{PacketType::kDma, rep_w, dst_w, kPageSize};
    const auto tr = network_->send(flat(rep_w), flat(dst_w), p, t);
    t = tr.arrival;
    e += tr.energy;
  }
  const auto wr = dram(dst_w).access(t, kPageSize);
  t = wr.finish;
  e += wr.energy;
  directory_.migrate(page, target);
  cached_page_ = ~0ull;  // memo may hold the dead owner
  ++page_failovers_;
  energy_.charge(counters().failover, e);
  ECO_TRACE_SPAN(obs::Cat::kFailover, counters().failover,
                 (obs::Lane{target, 0}), start, t,
                 static_cast<std::uint32_t>(page));
  if (observer_ != nullptr && observer_->on_ownership_change) {
    observer_->on_ownership_change(page, dead, target, start, t,
                                   /*failover=*/true);
  }
  return t;
}

MemAccess PgasSystem::access(WorkerCoord who, GlobalAddress addr, Bytes size,
                             bool write, bool bulk, SimTime now) {
  ECO_CHECK(who.node < config_.nodes &&
            who.worker < config_.workers_per_node);
  const PageId page = page_of(addr);
  NodeId owner = owner_of(page);
  if (health_ != nullptr && owner != who.node && !health_->node_up(owner)) {
    now = fail_over_dead_owner(who, page, now);
    owner = owner_of(page);  // failover may have re-homed the page
  }
  MemAccess result;
  const WorkerCoord home = addr.home();
  // Trace spans start at issue time, before translation advances `now`.
  const SimTime issued = now;
  const auto notify = [&] {
    if (observer_ != nullptr && observer_->on_access) {
      observer_->on_access(PgasObserver::Access{
          who, page,
          bulk ? PgasObserver::Kind::kDma
               : (write ? PgasObserver::Kind::kStore
                        : PgasObserver::Kind::kLoad),
          issued, result.finish, owner, result.remote});
    }
  };

  // Progressive address translation: each access resolves exactly the
  // hierarchy levels its route traverses (no central translation agent).
  const WorkerCoord effective_home{
      owner, static_cast<WorkerId>(home.worker % config_.workers_per_node)};
  now += translator_->total_latency(who, effective_home);

  if (config_.scope == CoherenceScope::kGlobal && !bulk) {
    // Machine-wide coherence: every miss/upgrade snoops every cache in the
    // machine, each probe+response paying cross-machine wire latency. The
    // probes fan out in parallel but their responses must all be
    // collected, so latency is one probe round trip plus a serialisation
    // term that grows with machine size (response collection at the
    // requester).
    auto& domain = *domains_[0];
    const std::size_t me = flat(who);
    const auto acc = write ? domain.write(me, addr.raw())
                           : domain.read(me, addr.raw());
    result.cache_hit = acc.hit;
    if (acc.hit && acc.snoop_messages == 0) {
      result.finish = now + config_.cache.hit_latency;
      result.energy = config_.cache.pj_per_hit;
    } else {
      // Win the machine-wide ordering point, then broadcast + collect.
      const SimTime granted = global_order_.reserve_until(
          now, config_.global_order_occupancy);
      const SimDuration collect =
          config_.global_snoop_latency +
          (acc.snoop_messages / 2) * nanoseconds(4);  // response funnel
      const auto d = dram(home).access(granted + collect,
                                       config_.cache.line_size);
      result.finish = d.finish;
      result.energy = d.energy +
                      config_.global_snoop_energy *
                          static_cast<double>(acc.snoop_messages);
    }
    energy_.charge(write ? counters().global_store : counters().global_load,
                   result.energy);
    ++local_accesses_;
    notify();
    return result;
  }

  if (owner == who.node) {
    // Node-local: runs in the node's coherence domain. The requester's
    // cache may hit; a miss goes to the home worker's DRAM.
    ++local_accesses_;
    if (bulk) {
      // DMA bypasses the cache.
      const auto d = dram(home).access(now, size);
      result.finish = d.finish;
      result.energy = d.energy;
    } else {
      auto& domain = domain_at(owner);
      const auto acc = write ? domain.write(who.worker, addr.raw())
                             : domain.read(who.worker, addr.raw());
      result.cache_hit = acc.hit;
      if (acc.hit) {
        result.finish = now + config_.cache.hit_latency;
        result.energy = config_.cache.pj_per_hit;
      } else {
        const auto d = dram(home).access(now, config_.cache.line_size);
        result.finish = d.finish;
        result.energy = d.energy + config_.cache.pj_per_hit;
      }
      // Intra-node hop if the home worker differs from the requester and
      // we actually went past the cache.
      if (!acc.hit && home.worker != who.worker) {
        Packet p{write ? PacketType::kWrite : PacketType::kRead, who, home,
                 config_.cache.line_size};
        const auto t = network_->send(flat(who), flat(home), p,
                                      result.finish);
        result.finish = t.arrival;
        result.energy += t.energy;
      }
    }
    energy_.charge(write ? counters().local_store : counters().local_load,
                   result.energy);
    notify();
    return result;
  }

  // Remote: route to the owner node's copy. Not cacheable at the
  // requester (UNIMEM), so every access pays the network.
  ++remote_accesses_;
  result.remote = true;
  // The physical copy lives at the home worker of the address within the
  // owning node (after migration the data is re-homed at the owner node's
  // worker 0 DRAM channel — we keep the home worker index for locality).
  const WorkerCoord where = effective_home;
  const Bytes req_payload = write ? size : 0;
  Packet req{write ? PacketType::kWrite
                   : (bulk ? PacketType::kDma : PacketType::kRead),
             who, where, bulk ? size : req_payload};
  const auto fwd = network_->send(flat(who), flat(where), req, now);
  const auto d = dram(where).access(fwd.arrival, size);
  Packet resp{write ? PacketType::kWriteAck : PacketType::kReadResp, where,
              who, write ? 0 : size};
  const auto back = network_->send(flat(where), flat(who), resp, d.finish);
  result.finish = back.arrival;
  result.energy = fwd.energy + d.energy + back.energy;
  energy_.charge(write ? counters().remote_store : counters().remote_load,
                 result.energy);
  // Every remote access is a span on the requesting worker's lane: the
  // full translate + route + DRAM + respond round trip the paper's C3
  // task-vs-data argument turns on.
  ECO_TRACE_SPAN(obs::Cat::kUnimem,
                 write ? counters().remote_store : counters().remote_load,
                 (obs::Lane{who.node, who.worker}), issued, result.finish,
                 size);
  notify();
  return result;
}

MemAccess PgasSystem::load(WorkerCoord who, GlobalAddress addr, Bytes size,
                           SimTime now) {
  return access(who, addr, size, /*write=*/false, /*bulk=*/false, now);
}

MemAccess PgasSystem::store(WorkerCoord who, GlobalAddress addr, Bytes size,
                            SimTime now) {
  return access(who, addr, size, /*write=*/true, /*bulk=*/false, now);
}

MemAccess PgasSystem::dma(WorkerCoord who, GlobalAddress src_or_dst,
                          Bytes size, bool write, SimTime now) {
  return access(who, src_or_dst, size, write, /*bulk=*/true, now);
}

AtomicResult PgasSystem::atomic_rmw(WorkerCoord who, GlobalAddress addr,
                                    AtomicOp op, std::uint64_t operand,
                                    SimTime now, std::uint64_t compare) {
  const PageId page = page_of(addr);
  NodeId owner = owner_of(page);
  if (health_ != nullptr && owner != who.node && !health_->node_up(owner)) {
    now = fail_over_dead_owner(who, page, now);
    owner = owner_of(page);
  }
  ECO_CHECK_MSG((addr.offset() & 7) == 0, "atomic must be 8-byte aligned");

  // Functional part: exact RMW against the backing store.
  std::uint64_t old = 0;
  std::array<std::uint8_t, 8> word{};
  read_bytes(addr, word);
  std::memcpy(&old, word.data(), 8);
  std::uint64_t next = old;
  AtomicResult result;
  result.old_value = old;
  switch (op) {
    case AtomicOp::kFetchAdd:
      next = old + operand;
      break;
    case AtomicOp::kSwap:
      next = operand;
      break;
    case AtomicOp::kCompareSwap:
      if (old == compare) {
        next = operand;
        result.swapped = true;
      }
      break;
    case AtomicOp::kFetchOr:
      next = old | operand;
      break;
  }
  std::memcpy(word.data(), &next, 8);
  write_bytes(addr, word);

  // Timing part: the RMW executes at the owning node's memory controller
  // (near-memory atomic unit); remote callers pay one 8-byte round trip.
  constexpr SimDuration kAluLatency = nanoseconds(4);
  if (owner == who.node) {
    const auto home = addr.home();
    const auto d = dram(home).access(now, 8);
    result.finish = d.finish + kAluLatency;
    result.energy = d.energy;
    energy_.charge(counters().atomic_local, result.energy);
  } else {
    result.remote = true;
    ++remote_accesses_;
    const WorkerCoord where{
        owner,
        static_cast<WorkerId>(addr.home().worker % config_.workers_per_node)};
    Packet req{PacketType::kSync, who, where, 16};  // op + operand
    const auto fwd = network_->send(flat(who), flat(where), req, now);
    const auto d = dram(where).access(fwd.arrival, 8);
    Packet resp{PacketType::kSync, where, who, 8};
    const auto back =
        network_->send(flat(where), flat(who), resp, d.finish + kAluLatency);
    result.finish = back.arrival;
    result.energy = fwd.energy + d.energy + back.energy;
    energy_.charge(counters().atomic_remote, result.energy);
  }
  if (observer_ != nullptr && observer_->on_access) {
    observer_->on_access(PgasObserver::Access{
        who, page, PgasObserver::Kind::kAtomic, now, result.finish, owner,
        result.remote});
  }
  return result;
}

MigrationResult PgasSystem::migrate_page(PageId page, NodeId dst,
                                         SimTime now) {
  const auto owner = directory_.owner(page);
  ECO_CHECK_MSG(owner.has_value(), "migrating unregistered page");
  MigrationResult result;
  if (*owner == dst) {
    result.finish = now;
    return result;
  }
  // 1. Flush the old owner's cached lines of this page (UNIMEM: only the
  //    owner may have cached it). Cost: one invalidate walk + writebacks.
  //    A never-touched cache slot has nothing cached — skip it rather
  //    than force its construction just to invalidate nothing.
  const std::size_t lines = kPageSize / config_.cache.line_size;
  std::uint64_t dirty = 0;
  for (std::size_t w = 0; w < config_.workers_per_node; ++w) {
    const auto& slot =
        caches_[static_cast<std::size_t>(*owner) * config_.workers_per_node +
                w];
    if (slot == nullptr) continue;
    Cache& c = *slot;
    for (std::size_t l = 0; l < lines; ++l) {
      const std::uint64_t line =
          (static_cast<std::uint64_t>(page) << kPageShift) /
              config_.cache.line_size +
          l;
      if (c.invalidate(line)) ++dirty;
    }
  }
  // 2. Transfer the page from a worker of the old owner to one of the new.
  const WorkerCoord src{static_cast<NodeId>(*owner), 0};
  const WorkerCoord dst_w{dst, 0};
  const auto rd = dram(src).access(now, kPageSize + dirty *
                                            config_.cache.line_size);
  Packet p{PacketType::kDma, src, dst_w, kPageSize};
  const auto t = network_->send(flat(src), flat(dst_w), p, rd.finish);
  const auto wr = dram(dst_w).access(t.arrival, kPageSize);
  // 3. Flip ownership and drop the one-entry owner memo — it may hold the
  //    pre-migration owner of this very page.
  directory_.migrate(page, dst);
  cached_page_ = ~0ull;
  result.finish = wr.finish;
  result.bytes_moved = kPageSize;
  result.energy = rd.energy + t.energy + wr.energy;
  energy_.charge(counters().page_migration, result.energy);
  ECO_TRACE_SPAN(obs::Cat::kUnimem, counters().page_migration,
                 (obs::Lane{dst, 0}), now, result.finish, kPageSize);
  if (observer_ != nullptr && observer_->on_ownership_change) {
    observer_->on_ownership_change(page, *owner, dst, now, result.finish,
                                   /*failover=*/false);
  }
  return result;
}

MigrationResult PgasSystem::migrate_task(WorkerCoord from, WorkerCoord to,
                                         SimTime now) {
  MigrationResult result;
  if (from == to) {
    result.finish = now;
    return result;
  }
  Packet p{PacketType::kMessage, from, to, config_.task_closure_bytes};
  const auto t = network_->send(flat(from), flat(to), p, now);
  result.finish = t.arrival;
  result.bytes_moved = config_.task_closure_bytes;
  result.energy = t.energy;
  energy_.charge(counters().task_migration, result.energy);
  ECO_TRACE_SPAN(obs::Cat::kUnimem, counters().task_migration,
                 (obs::Lane{to.node, to.worker}), now, result.finish,
                 config_.task_closure_bytes);
  return result;
}

}  // namespace ecoscale
