#include "unimem/sync.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "interconnect/packet.h"
#include "sim/timeline.h"

namespace ecoscale {

namespace {

struct TokenSend {
  SimTime finish = 0;
  Picojoules energy = 0.0;
};

TokenSend send_token(PgasSystem& pgas, std::vector<Timeline>& cpus,
                     WorkerCoord from, WorkerCoord to, SimTime ready) {
  // Issuing the token occupies the sender's CPU: back-to-back sends from
  // the same worker (a parent's release wave, the flat hub's broadcast)
  // serialize here instead of departing at the same instant.
  const SimTime go =
      cpus[pgas.flat(from)].reserve_until(ready, kBarrierTokenIssue);
  Packet p{PacketType::kSync, from, to, 8};
  const auto t = pgas.network().send(pgas.flat(from), pgas.flat(to), p, go);
  // The receiver's token handler runs serially per worker.
  const SimTime done =
      cpus[pgas.flat(to)].reserve_until(t.arrival, kBarrierTokenProcess);
  return TokenSend{done, t.energy};
}

std::vector<Timeline> make_cpus(const PgasSystem& pgas) {
  return std::vector<Timeline>(pgas.node_count() *
                               pgas.workers_per_node());
}

}  // namespace

SyncResult tree_barrier(PgasSystem& pgas,
                        std::span<const WorkerCoord> workers,
                        std::span<const SimTime> arrivals) {
  ECO_CHECK(workers.size() == arrivals.size());
  ECO_CHECK(!workers.empty());
  SyncResult result;
  auto cpus = make_cpus(pgas);
  // Combine phase: binary tree over the worker list; worker order follows
  // the physical hierarchy (PgasSystem flattening is locality-preserving),
  // so early combine partners are physically close.
  std::vector<SimTime> ready(arrivals.begin(), arrivals.end());
  std::vector<std::size_t> alive(workers.size());
  for (std::size_t i = 0; i < workers.size(); ++i) alive[i] = i;
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> levels;
  while (alive.size() > 1) {
    std::vector<std::size_t> next;
    levels.emplace_back();
    for (std::size_t i = 0; i + 1 < alive.size(); i += 2) {
      const std::size_t a = alive[i];
      const std::size_t b = alive[i + 1];
      const auto s = send_token(pgas, cpus, workers[b], workers[a], ready[b]);
      ready[a] = std::max(ready[a], s.finish);
      result.energy += s.energy;
      ++result.messages;
      levels.back().emplace_back(a, b);
      next.push_back(a);
    }
    if (alive.size() % 2 == 1) next.push_back(alive.back());
    alive = std::move(next);
  }
  // Release phase: mirrored broadcast down the same pairing, in reverse
  // level order.
  const std::size_t root = alive.front();
  std::vector<SimTime> released(workers.size(), 0);
  released[root] = ready[root];
  for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
    for (const auto& [parent, child] : *it) {
      const auto s = send_token(pgas, cpus, workers[parent], workers[child],
                                released[parent]);
      released[child] = s.finish;
      result.energy += s.energy;
      ++result.messages;
    }
  }
  result.finish = *std::max_element(released.begin(), released.end());
  result.finish = std::max(result.finish, ready[root]);
  return result;
}

SyncResult flat_barrier(PgasSystem& pgas,
                        std::span<const WorkerCoord> workers,
                        std::span<const SimTime> arrivals) {
  ECO_CHECK(workers.size() == arrivals.size());
  ECO_CHECK(!workers.empty());
  SyncResult result;
  auto cpus = make_cpus(pgas);
  const WorkerCoord hub = workers.front();
  SimTime all_in = arrivals[0];
  for (std::size_t i = 1; i < workers.size(); ++i) {
    const auto s = send_token(pgas, cpus, workers[i], hub, arrivals[i]);
    all_in = std::max(all_in, s.finish);
    result.energy += s.energy;
    ++result.messages;
  }
  // The hub issues every release itself. send_token charges the hub's
  // CPU for each issue, so the broadcast serializes on the hub's
  // timeline — the same accounting the tree parents now pay.
  SimTime done = all_in;
  for (std::size_t i = 1; i < workers.size(); ++i) {
    const auto s = send_token(pgas, cpus, hub, workers[i], all_in);
    done = std::max(done, s.finish);
    result.energy += s.energy;
    ++result.messages;
  }
  result.finish = done;
  return result;
}

SyncResult mailbox_signal(PgasSystem& pgas, WorkerCoord from, WorkerCoord to,
                          SimTime now, SimDuration interrupt_latency) {
  Packet p{PacketType::kInterrupt, from, to, 8};
  const auto t = pgas.network().send(pgas.flat(from), pgas.flat(to), p, now);
  return SyncResult{t.arrival + interrupt_latency, t.energy, 1};
}

}  // namespace ecoscale
