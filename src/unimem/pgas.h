// UNIMEM partitioned global address space (paper §2, §4.1).
//
// One PgasSystem spans a machine of `nodes` Compute Nodes × `workers`
// Workers. Every Worker can load/store any GlobalAddress:
//
//  * If the address's page is owned by the Worker's node, the access runs
//    through the node-local coherence domain (the only coherence domain
//    that exists — UNIMEM's invariant is that a page is cacheable at its
//    owning node and nowhere else).
//  * Otherwise the access is routed over the hierarchical interconnect to
//    the owning node's memory and is *not* cached locally — remote data is
//    accessed with plain loads/stores, no global snooping (ACE-lite
//    semantics for remote masters).
//
// The class also provides the two mobility primitives the paper
// contrasts: page migration (move data to the task) and task migration
// (move the task to the data).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "address/address.h"
#include "address/ownership.h"
#include "address/progressive.h"
#include "common/energy.h"
#include "common/health.h"
#include "common/units.h"
#include "interconnect/network.h"
#include "memory/cache.h"
#include "memory/coherence.h"
#include "memory/dram.h"
#include "sim/timeline.h"

namespace ecoscale {

/// Coherence scope: UNIMEM (the paper's contribution — one small domain
/// per node, remote accesses uncached) vs. a machine-wide domain (the
/// "global cache coherent mechanism, which simply cannot scale" baseline,
/// provided so the scalability comparison can be *timed*, not just
/// message-counted).
enum class CoherenceScope { kUnimem, kGlobal };

struct PgasConfig {
  std::size_t nodes = 2;
  std::size_t workers_per_node = 4;
  /// Optional third hierarchy level (paper §2: "multi-node chassis and
  /// cabinets"): when > 1, the `nodes` are grouped into this many chassis
  /// (nodes must divide evenly) and inter-chassis links use l2_link.
  std::size_t chassis = 1;
  CacheConfig cache;            // per-worker cache
  DramConfig dram;              // per-worker DRAM channel
  LinkParams l0_link;           // worker <-> node switch
  LinkParams l1_link;           // node switch <-> chassis/global switch
  LinkParams l2_link;           // chassis switch <-> root (if chassis > 1)
  CoherenceMode node_coherence = CoherenceMode::kDirectory;
  CoherenceScope scope = CoherenceScope::kUnimem;
  /// Global-scope baseline only: wire latency of one snoop probe/response
  /// (cross-machine, so it pays inter-node distance).
  SimDuration global_snoop_latency = nanoseconds(180);
  Picojoules global_snoop_energy = 150.0;  // per snoop message
  /// Broadcast coherence requires a machine-wide ordering point; every
  /// miss/upgrade serialises through it. This occupancy — total
  /// transactions grow with machine size while the ordering point does
  /// not — is the structural reason global snooping cannot scale.
  SimDuration global_order_occupancy = nanoseconds(20);
  /// Closure size for task migration (descriptor + captured args).
  Bytes task_closure_bytes = 256;
  /// Fault handling of accesses whose owning node is down (needs a
  /// HealthRegistry via set_health): each attempt times out, attempts
  /// back off linearly, and after the last one the page fails over to a
  /// surviving node.
  std::size_t fault_max_retries = 3;
  SimDuration fault_retry_timeout = microseconds(50);
  SimDuration fault_retry_backoff = microseconds(25);
  /// Progressive address translation (Katevenis [12]): per-level lookup
  /// latencies paid by each access as it climbs the hierarchy. Charged on
  /// the request path (local: level 0; intra-node: +level 1; cross-node:
  /// +level 2).
  std::vector<SimDuration> translation_latencies = {
      nanoseconds(1), nanoseconds(6), nanoseconds(30)};

  PgasConfig() {
    l0_link.hop_latency = nanoseconds(20);
    l0_link.bandwidth = Bandwidth::from_gib_per_s(16.0);
    l0_link.pj_per_byte = 1.0;
    l1_link.hop_latency = nanoseconds(150);
    l1_link.bandwidth = Bandwidth::from_gib_per_s(8.0);
    l1_link.pj_per_byte = 6.0;
    l2_link.hop_latency = nanoseconds(500);
    l2_link.bandwidth = Bandwidth::from_gib_per_s(5.0);
    l2_link.pj_per_byte = 20.0;
  }
};

struct MemAccess {
  SimTime finish = 0;
  bool remote = false;     // crossed the node boundary
  bool cache_hit = false;  // served by the local coherent domain's cache
  Picojoules energy = 0.0;
};

struct MigrationResult {
  SimTime finish = 0;
  Bytes bytes_moved = 0;
  Picojoules energy = 0.0;
};

/// Remote atomics execute at the page's owning node (§4.1: the
/// interconnect carries small synchronisation transfers "to synchronize
/// remote threads" — the very traffic the paper says DMA-only systems
/// handle badly).
enum class AtomicOp : std::uint8_t {
  kFetchAdd,
  kSwap,
  kCompareSwap,
  kFetchOr,
};

struct AtomicResult {
  std::uint64_t old_value = 0;
  bool swapped = false;  // CAS success
  SimTime finish = 0;
  bool remote = false;
  Picojoules energy = 0.0;
};

/// Observation hooks over the UNIMEM access/migration/failover machinery
/// (DESIGN.md §7.10). The litmus harness installs these to reconstruct the
/// per-page serialization order the memory-model oracle checks against,
/// and to script health transitions *between* dead-owner retry attempts —
/// the only way a repair can race the retry loop deterministically. All
/// callbacks fire at the serialization point of the operation (functional
/// effect already applied, timing resolved). Unset observers cost one
/// pointer compare per operation.
struct PgasObserver {
  enum class Kind : std::uint8_t { kLoad, kStore, kDma, kAtomic };
  struct Access {
    WorkerCoord who;
    PageId page = 0;
    Kind kind = Kind::kLoad;
    SimTime issue = 0;    // caller's `now`, before translation
    SimTime finish = 0;   // completion at the requester
    NodeId owner = 0;     // owning node the access serialized at
    bool remote = false;  // crossed the node boundary
  };
  std::function<void(const Access&)> on_access;
  /// Page ownership moved: an explicit migrate_page (failover == false) or
  /// a dead-owner re-home (failover == true).
  std::function<void(PageId page, NodeId from, NodeId to, SimTime start,
                     SimTime finish, bool failover)>
      on_ownership_change;
  /// One timed-out retry attempt against a dead owner just elapsed
  /// (attempt counts from 1); invoked *before* the liveness re-check, so a
  /// repair applied here races the retry loop exactly where a concurrent
  /// repair event would land.
  std::function<void(WorkerCoord who, PageId page, std::size_t attempt,
                     SimTime now)>
      on_retry;
};

class PgasSystem {
 public:
  explicit PgasSystem(PgasConfig config = {});

  std::size_t node_count() const { return config_.nodes; }
  std::size_t workers_per_node() const { return config_.workers_per_node; }
  std::size_t worker_count() const {
    return config_.nodes * config_.workers_per_node;
  }

  /// Allocate `size` bytes homed at (node, worker); pages are registered
  /// with the ownership directory. Page-aligned bump allocation.
  GlobalAddress alloc(NodeId node, WorkerId worker, Bytes size);

  // --- timed accesses ----------------------------------------------------
  MemAccess load(WorkerCoord who, GlobalAddress addr, Bytes size,
                 SimTime now);
  MemAccess store(WorkerCoord who, GlobalAddress addr, Bytes size,
                  SimTime now);

  /// Bulk DMA (one transfer, bandwidth-dominated), used for explicit data
  /// movement and for page migration internals.
  MemAccess dma(WorkerCoord who, GlobalAddress src_or_dst, Bytes size,
                bool write, SimTime now);

  /// Atomic read-modify-write on a 64-bit word, executed at the owning
  /// node (functionally exact against the backing store). `compare` is
  /// used only by kCompareSwap.
  AtomicResult atomic_rmw(WorkerCoord who, GlobalAddress addr, AtomicOp op,
                          std::uint64_t operand, SimTime now,
                          std::uint64_t compare = 0);

  // --- functional backing store -------------------------------------------
  void write_bytes(GlobalAddress addr, std::span<const std::uint8_t> data);
  void read_bytes(GlobalAddress addr, std::span<std::uint8_t> out) const;

  // --- mobility ------------------------------------------------------------
  /// Move page ownership to `dst` node: flush the old owner's cached lines
  /// of that page, transfer the page, update the directory.
  MigrationResult migrate_page(PageId page, NodeId dst, SimTime now);

  /// Ship a task closure from one worker to another (move task to data).
  MigrationResult migrate_task(WorkerCoord from, WorkerCoord to, SimTime now);

  // --- introspection -------------------------------------------------------
  const OwnershipDirectory& directory() const { return directory_; }
  OwnershipDirectory& directory() { return directory_; }
  Network& network() { return *network_; }
  /// Per-node / per-worker state is pooled lazily (DESIGN.md §7.7): the
  /// slot vectors are sized at construction but hold nulls until first
  /// touch, so a 100k-worker machine pays 8 bytes per untouched worker.
  /// These accessors construct on demand; construction is purely
  /// functional (no timed side effects), so laziness never changes
  /// simulation results.
  CoherenceDomain& node_domain(NodeId node) { return domain_at(node); }
  DramChannel& dram(WorkerCoord w) { return dram_at(flat(w)); }
  Cache& cache(WorkerCoord w) { return cache_at(flat(w)); }

  /// Worker slots whose cache/DRAM state has actually been built — the
  /// pooling metric bench_scale tracks (untouched workers stay at 0).
  std::size_t constructed_workers() const {
    std::size_t n = 0;
    for (const auto& c : caches_) n += c != nullptr;
    return n;
  }

  /// Promise that no future timed access is issued before `watermark`;
  /// prunes the retired past from every calendar resource (network links,
  /// DRAM channels). Call at epoch boundaries in long-running workloads to
  /// keep reserve() O(log live-intervals).
  void release(SimTime watermark) {
    network_->release(watermark);
    for (auto& d : drams_) {
      if (d != nullptr) d->release(watermark);
    }
  }

  /// Conservative lookahead for sharding a simulation per Compute Node
  /// (the UNIMEM partition boundary): the minimum head latency of any
  /// route crossing a level>=1 (inter-node) link. Every cross-node
  /// interaction — remote load/store, atomic, migration — pays at least
  /// this before it can touch another node, so a sharded engine using it
  /// never delivers an event into a shard's past. Returns 0 on a
  /// single-node machine (no cross-node traffic, nothing to shard).
  SimDuration shard_lookahead() { return network_->min_cross_latency(1); }

  /// Per-peer lookahead for the adaptive sharded engine: the head latency
  /// of the route between node `from` and node `to` (measured between
  /// their lead workers — the machine builders attach every worker to its
  /// node switch symmetrically, so any worker pair across the two nodes
  /// pays the same inter-node path). Head latency is a metric (a shortest
  /// path over per-link latencies obeys the triangle inequality), which is
  /// exactly the property ShardedConfig::pair_lookahead requires for
  /// relay-safe adaptive horizons. Mutation-free LCA walk under implicit
  /// routing — safe from concurrent shard threads.
  SimDuration shard_lookahead(std::size_t from, std::size_t to) {
    return network_->route_latency(
        flat(WorkerCoord{static_cast<NodeId>(from), 0}),
        flat(WorkerCoord{static_cast<NodeId>(to), 0}));
  }

  /// Per-source lookahead floor: the cheapest inter-node (level >= 1)
  /// route out of node `from`. Feeds ShardedConfig::source_floor when the
  /// shard count is past the dense pair-matrix cap. Cached per level
  /// inside the network after the first call.
  SimDuration shard_lookahead_floor(std::size_t from) {
    return network_->min_latency_from(
        flat(WorkerCoord{static_cast<NodeId>(from), 0}), 1);
  }

  std::uint64_t remote_accesses() const { return remote_accesses_; }
  std::uint64_t local_accesses() const { return local_accesses_; }
  const EnergyMeter& energy() const { return energy_; }

  // --- fault handling ------------------------------------------------------
  /// Attach the machine's liveness registry. Unset (the default) disables
  /// the dead-owner path entirely: no per-access overhead, no failover.
  void set_health(const HealthRegistry* health) { health_ = health; }
  /// Timed-out attempts against dead owning nodes.
  std::uint64_t remote_retries() const { return remote_retries_; }
  /// Pages re-homed to a surviving node after retry exhaustion.
  std::uint64_t page_failovers() const { return page_failovers_; }

  /// Attach litmus/diagnostic observation hooks (nullptr detaches). The
  /// observer must outlive the accesses it watches.
  void set_observer(const PgasObserver* observer) { observer_ = observer; }

  std::size_t flat(WorkerCoord w) const {
    return static_cast<std::size_t>(w.node) * config_.workers_per_node +
           w.worker;
  }
  WorkerCoord coord(std::size_t flat_index) const {
    return WorkerCoord{
        static_cast<NodeId>(flat_index / config_.workers_per_node),
        static_cast<WorkerId>(flat_index % config_.workers_per_node)};
  }

 private:
  MemAccess access(WorkerCoord who, GlobalAddress addr, Bytes size,
                   bool write, bool bulk, SimTime now);
  std::vector<std::uint8_t>& page_data(PageId page);

  // Lazy slot constructors (see the public accessors). domain_at forces
  // every cache of the node — the coherence domain holds raw pointers.
  Cache& cache_at(std::size_t flat_index);
  DramChannel& dram_at(std::size_t flat_index);
  CoherenceDomain& domain_at(NodeId node);

  /// Dead-owner recovery: bounded timed-out retries against `page`'s
  /// (down) owning node, then ownership failover to a surviving node.
  /// Returns the time the access may proceed; the page's owner may have
  /// changed, so callers must re-resolve it.
  SimTime fail_over_dead_owner(WorkerCoord who, PageId page, SimTime now);

  /// Owner of `page` with a one-entry memo in front of the directory —
  /// access streams revisit the same page line after line, so the common
  /// case is a single compare. Invalidated by migrate_page(). Checks that
  /// the page is registered.
  NodeId owner_of(PageId page) {
    if (page == cached_page_) return cached_owner_;
    const auto o = directory_.owner(page);
    ECO_CHECK_MSG(o.has_value(), "access to unregistered page");
    cached_page_ = page;
    cached_owner_ = *o;
    return *o;
  }

  PgasConfig config_;
  std::unique_ptr<Network> network_;
  std::vector<std::unique_ptr<Cache>> caches_;
  std::vector<std::unique_ptr<DramChannel>> drams_;
  std::vector<std::unique_ptr<CoherenceDomain>> domains_;
  OwnershipDirectory directory_;
  std::unordered_map<PageId, std::vector<std::uint8_t>> store_;
  std::vector<std::uint64_t> alloc_cursor_;  // per worker, byte offset
  std::uint64_t remote_accesses_ = 0;
  std::uint64_t local_accesses_ = 0;
  const HealthRegistry* health_ = nullptr;
  const PgasObserver* observer_ = nullptr;
  std::uint64_t remote_retries_ = 0;
  std::uint64_t page_failovers_ = 0;
  std::unique_ptr<ProgressiveTranslator> translator_;
  Timeline global_order_{"snoop_order"};  // global-scope baseline only
  EnergyMeter energy_;
  // One-entry owner memo (see owner_of()).
  PageId cached_page_ = ~0ull;
  NodeId cached_owner_ = 0;
};

}  // namespace ecoscale
