// Inter-worker synchronisation over UNIMEM (paper §4.1: the multi-layer
// interconnect carries "load and store commands, DMA operations, interrupts,
// and synchronization between the Workers").
#pragma once

#include <span>
#include <vector>

#include "common/units.h"
#include "unimem/pgas.h"

namespace ecoscale {

struct SyncResult {
  SimTime finish = 0;       // when every participant has been released
  Picojoules energy = 0.0;
  std::uint64_t messages = 0;
};

/// Software cost of handling one barrier token at the receiving worker
/// (interrupt / mailbox poll + combine update). This is what makes a
/// centralised barrier bottleneck on its hub.
inline constexpr SimDuration kBarrierTokenProcess = nanoseconds(100);

/// Sender-side cost of issuing one token (descriptor build + doorbell
/// write): occupies the sending worker's CPU, so a worker issuing several
/// tokens — the flat hub's release broadcast, or a tree parent releasing
/// children across multiple levels — serializes its sends instead of
/// emitting them all at the same instant. Charged identically by both
/// barriers (tree_barrier historically skipped it in the release phase).
inline constexpr SimDuration kBarrierTokenIssue = nanoseconds(25);

/// Tree barrier across a set of workers: workers combine arrival tokens up
/// the interconnect tree (pairwise over the network) and a release wave
/// fans back down. `arrivals[i]` is when worker i reaches the barrier.
SyncResult tree_barrier(PgasSystem& pgas,
                        std::span<const WorkerCoord> workers,
                        std::span<const SimTime> arrivals);

/// Flat (centralised) barrier baseline: everyone signals worker 0, worker 0
/// broadcasts release. Messages scale linearly but all converge on one
/// endpoint — the contrast case for the hierarchical claim.
SyncResult flat_barrier(PgasSystem& pgas,
                        std::span<const WorkerCoord> workers,
                        std::span<const SimTime> arrivals);

/// Mailbox doorbell: a small synchronisation message plus the remote
/// interrupt delivery cost. Returns delivery completion time.
SyncResult mailbox_signal(PgasSystem& pgas, WorkerCoord from, WorkerCoord to,
                          SimTime now,
                          SimDuration interrupt_latency = nanoseconds(500));

}  // namespace ecoscale
