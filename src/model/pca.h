// Streaming principal-component analysis via Oja's rule — the "PCA
// technique" of the paper's model toolbox (§4.2). Used to decorrelate the
// task-feature stream (items, bytes and reuse are strongly collinear for
// streaming kernels) before regression, and as a diagnostic of how many
// effective input dimensions a kernel's cost actually has.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "common/check.h"

namespace ecoscale {

class StreamingPca {
 public:
  StreamingPca(std::size_t dims, std::size_t components,
               double learning_rate = 0.05);

  std::size_t dims() const { return dims_; }
  std::size_t components() const { return components_.size(); }
  std::size_t observations() const { return n_; }

  /// Feed one (unscaled) sample; the estimator maintains a running mean
  /// and updates the component estimates on the centred sample.
  void observe(std::span<const double> x);

  /// Project a sample onto the current components (centred).
  std::vector<double> project(std::span<const double> x) const;

  /// Current estimate of component k (unit norm).
  std::span<const double> component(std::size_t k) const;

  /// Fraction of (running) variance captured by each component.
  std::vector<double> explained_variance_ratio() const;

 private:
  void center(std::span<const double> x, std::vector<double>& out) const;

  std::size_t dims_;
  double lr_;
  std::size_t n_ = 0;
  std::vector<double> mean_;
  std::vector<double> var_accum_;              // per input dim
  std::vector<std::vector<double>> components_;  // row-major unit vectors
  std::vector<double> comp_var_;               // variance along component
};

}  // namespace ecoscale
