#include "model/regression.h"

#include <cmath>

namespace ecoscale {

RidgeRegression::RidgeRegression(std::size_t dims, double lambda)
    : dims_(dims), lambda_(lambda), xtx_(dims * dims, 0.0), xty_(dims, 0.0) {
  ECO_CHECK(dims >= 1);
  ECO_CHECK(lambda > 0);
}

void RidgeRegression::observe(std::span<const double> features,
                              double target) {
  ECO_CHECK(features.size() == dims_);
  // Track running prediction error before updating (prequential error).
  if (auto p = predict(features)) {
    abs_err_sum_ += std::abs(*p - target);
  }
  for (std::size_t i = 0; i < dims_; ++i) {
    for (std::size_t j = 0; j < dims_; ++j) {
      xtx_[i * dims_ + j] += features[i] * features[j];
    }
    xty_[i] += features[i] * target;
  }
  ++observations_;
  cache_valid_ = false;
}

bool RidgeRegression::solve(std::vector<double>& beta) const {
  // Cholesky of A = XᵀX + λI.
  const std::size_t n = dims_;
  std::vector<double> a(xtx_);
  for (std::size_t i = 0; i < n; ++i) a[i * n + i] += lambda_;
  std::vector<double> l(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a[i * n + j];
      for (std::size_t k = 0; k < j; ++k) sum -= l[i * n + k] * l[j * n + k];
      if (i == j) {
        if (sum <= 0) return false;
        l[i * n + i] = std::sqrt(sum);
      } else {
        l[i * n + j] = sum / l[j * n + j];
      }
    }
  }
  // Solve L z = Xᵀy, then Lᵀ beta = z.
  std::vector<double> z(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = xty_[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l[i * n + k] * z[k];
    z[i] = sum / l[i * n + i];
  }
  beta.assign(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double sum = z[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= l[k * n + i] * beta[k];
    beta[i] = sum / l[i * n + i];
  }
  return true;
}

std::optional<double> RidgeRegression::predict(
    std::span<const double> features) const {
  ECO_CHECK(features.size() == dims_);
  if (observations_ < dims_) return std::nullopt;
  if (!cache_valid_) {
    if (!solve(cached_beta_)) return std::nullopt;
    cache_valid_ = true;
  }
  double y = 0.0;
  for (std::size_t i = 0; i < dims_; ++i) y += cached_beta_[i] * features[i];
  return y;
}

std::vector<double> RidgeRegression::coefficients() const {
  if (observations_ < dims_) return {};
  if (!cache_valid_) {
    if (!solve(cached_beta_)) return {};
    cache_valid_ = true;
  }
  return cached_beta_;
}

void FeatureScaler::observe(std::span<const double> x) {
  ECO_CHECK(x.size() == dims_);
  ++n_;
  for (std::size_t i = 0; i < dims_; ++i) {
    const double delta = x[i] - mean_[i];
    mean_[i] += delta / static_cast<double>(n_);
    m2_[i] += delta * (x[i] - mean_[i]);
  }
}

std::vector<double> FeatureScaler::transform(std::span<const double> x) const {
  ECO_CHECK(x.size() == dims_);
  std::vector<double> out(dims_);
  for (std::size_t i = 0; i < dims_; ++i) {
    const double var = n_ > 1 ? m2_[i] / static_cast<double>(n_ - 1) : 0.0;
    const double sd = var > 1e-12 ? std::sqrt(var) : 1.0;
    out[i] = (x[i] - mean_[i]) / sd;
  }
  return out;
}

}  // namespace ecoscale
