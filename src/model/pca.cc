#include "model/pca.h"

#include <algorithm>

namespace ecoscale {

StreamingPca::StreamingPca(std::size_t dims, std::size_t components,
                           double learning_rate)
    : dims_(dims), lr_(learning_rate), mean_(dims, 0.0),
      var_accum_(dims, 0.0) {
  ECO_CHECK(dims >= 1);
  ECO_CHECK(components >= 1 && components <= dims);
  ECO_CHECK(learning_rate > 0 && learning_rate < 1);
  components_.resize(components);
  comp_var_.resize(components, 0.0);
  // Deterministic orthogonal-ish initialisation: axis-aligned unit vectors.
  for (std::size_t k = 0; k < components; ++k) {
    components_[k].assign(dims, 0.0);
    components_[k][k % dims] = 1.0;
  }
}

void StreamingPca::center(std::span<const double> x,
                          std::vector<double>& out) const {
  out.resize(dims_);
  for (std::size_t i = 0; i < dims_; ++i) out[i] = x[i] - mean_[i];
}

void StreamingPca::observe(std::span<const double> x) {
  ECO_CHECK(x.size() == dims_);
  ++n_;
  // Running mean and per-dim variance.
  for (std::size_t i = 0; i < dims_; ++i) {
    const double delta = x[i] - mean_[i];
    mean_[i] += delta / static_cast<double>(n_);
    var_accum_[i] += delta * (x[i] - mean_[i]);
  }
  if (n_ < 2) return;
  std::vector<double> centered;
  center(x, centered);
  // Oja updates with Gram-Schmidt deflation between components.
  std::vector<double> residual = centered;
  const double lr = lr_ / (1.0 + 0.01 * static_cast<double>(n_));
  for (std::size_t k = 0; k < components_.size(); ++k) {
    auto& w = components_[k];
    double y = 0.0;
    for (std::size_t i = 0; i < dims_; ++i) y += w[i] * residual[i];
    comp_var_[k] += (y * y - comp_var_[k]) * 0.02;  // EWMA of variance
    for (std::size_t i = 0; i < dims_; ++i) {
      w[i] += lr * y * (residual[i] - y * w[i]);
    }
    // Renormalise.
    double norm = 0.0;
    for (const double v : w) norm += v * v;
    norm = std::sqrt(norm);
    if (norm > 1e-12) {
      for (auto& v : w) v /= norm;
    }
    // Deflate the residual for the next component.
    double proj = 0.0;
    for (std::size_t i = 0; i < dims_; ++i) proj += w[i] * residual[i];
    for (std::size_t i = 0; i < dims_; ++i) residual[i] -= proj * w[i];
  }
}

std::vector<double> StreamingPca::project(std::span<const double> x) const {
  ECO_CHECK(x.size() == dims_);
  std::vector<double> centered;
  center(x, centered);
  std::vector<double> out(components_.size(), 0.0);
  for (std::size_t k = 0; k < components_.size(); ++k) {
    for (std::size_t i = 0; i < dims_; ++i) {
      out[k] += components_[k][i] * centered[i];
    }
  }
  return out;
}

std::span<const double> StreamingPca::component(std::size_t k) const {
  ECO_CHECK(k < components_.size());
  return components_[k];
}

std::vector<double> StreamingPca::explained_variance_ratio() const {
  double total = 0.0;
  for (const double v : comp_var_) total += v;
  std::vector<double> out(comp_var_.size(), 0.0);
  if (total <= 0) return out;
  for (std::size_t k = 0; k < comp_var_.size(); ++k) {
    out[k] = comp_var_[k] / total;
  }
  return out;
}

}  // namespace ecoscale
