#include "model/predictor.h"

#include <istream>
#include <ostream>

#include "common/check.h"

namespace ecoscale {

const char* device_class_name(DeviceClass d) {
  switch (d) {
    case DeviceClass::kCpu: return "cpu";
    case DeviceClass::kLocalFabric: return "local_fabric";
    case DeviceClass::kRemoteFabric: return "remote_fabric";
  }
  return "?";
}

void CostPredictor::observe(const HistoryRecord& record) {
  auto& m = models_[{record.kernel, record.device}];
  const auto x = record.features.vector();
  m.time.observe(x, record.time_ns);
  m.energy.observe(x, record.energy_pj);
  records_.push_back(record);
}

Prediction CostPredictor::static_estimate(const KernelIR& kernel,
                                          DeviceClass device,
                                          const TaskFeatures& features) {
  Prediction p;
  p.from_model = false;
  const double items = features.items;
  switch (device) {
    case DeviceClass::kCpu:
      p.time_ns = kernel.cpu_cycles_per_item * items / 1.2;  // 1.2 GHz
      p.energy_pj = 120.0 * kernel.cpu_cycles_per_item * items;
      break;
    case DeviceClass::kLocalFabric: {
      // Assume a pipelined II≈1 implementation at a 0.25 GHz fabric clock
      // plus a reconfiguration amortisation constant.
      p.time_ns = items * 4.0 + 50000.0;
      p.energy_pj = 3.0 * kernel.ops.total() * items;
      break;
    }
    case DeviceClass::kRemoteFabric:
      p.time_ns = items * 6.0 + 80000.0;  // uncached remote data path
      p.energy_pj = 3.0 * kernel.ops.total() * items +
                    6.0 * features.bytes;
      break;
  }
  return p;
}

Prediction CostPredictor::predict(const KernelIR& kernel, DeviceClass device,
                                  const TaskFeatures& features) const {
  auto it = models_.find({kernel.id, device});
  if (it != models_.end()) {
    const auto x = features.vector();
    const auto t = it->second.time.predict(x);
    const auto e = it->second.energy.predict(x);
    if (t && e) {
      Prediction p;
      // Costs are physically non-negative; clamp the linear model.
      p.time_ns = std::max(0.0, *t);
      p.energy_pj = std::max(0.0, *e);
      p.from_model = true;
      return p;
    }
  }
  return static_estimate(kernel, device, features);
}

std::size_t CostPredictor::observations(KernelId kernel,
                                        DeviceClass device) const {
  auto it = models_.find({kernel, device});
  return it == models_.end() ? 0 : it->second.time.observations();
}

void CostPredictor::save(std::ostream& os) const {
  os << "ecoscale-history-v1 " << records_.size() << "\n";
  for (const auto& r : records_) {
    os << r.kernel << ' ' << static_cast<int>(r.device) << ' '
       << r.features.items << ' ' << r.features.bytes << ' '
       << r.features.reuse << ' ' << r.features.branchiness << ' '
       << r.time_ns << ' ' << r.energy_pj << "\n";
  }
}

CostPredictor CostPredictor::load(std::istream& is) {
  std::string magic;
  std::size_t count = 0;
  is >> magic >> count;
  ECO_CHECK_MSG(magic == "ecoscale-history-v1", "bad history file header");
  CostPredictor p;
  for (std::size_t i = 0; i < count; ++i) {
    HistoryRecord r;
    int device = 0;
    is >> r.kernel >> device >> r.features.items >> r.features.bytes >>
        r.features.reuse >> r.features.branchiness >> r.time_ns >>
        r.energy_pj;
    ECO_CHECK_MSG(static_cast<bool>(is), "truncated history file");
    r.device = static_cast<DeviceClass>(device);
    p.observe(r);
  }
  return p;
}

}  // namespace ecoscale
