// Online support-vector regression via the Passive-Aggressive algorithm
// (PA-I with epsilon-insensitive loss) — the "SVM technique" in the
// paper's model-building toolbox (§4.2). Compared with ridge regression it
// is robust to the occasional wild outlier (a task that hit a cold cache
// or a reconfiguration stall) because updates are capped by C.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "common/check.h"

namespace ecoscale {

class PassiveAggressiveRegressor {
 public:
  /// `epsilon`: width of the insensitive tube (absolute error tolerated);
  /// `aggressiveness`: PA-I cap C on the per-step update.
  PassiveAggressiveRegressor(std::size_t dims, double epsilon = 1.0,
                             double aggressiveness = 0.1)
      : weights_(dims, 0.0), epsilon_(epsilon), c_(aggressiveness) {
    ECO_CHECK(dims >= 1);
    ECO_CHECK(epsilon >= 0);
    ECO_CHECK(aggressiveness > 0);
  }

  std::size_t dims() const { return weights_.size(); }
  std::size_t observations() const { return n_; }

  double predict(std::span<const double> x) const {
    ECO_CHECK(x.size() == weights_.size());
    double y = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) y += weights_[i] * x[i];
    return y;
  }

  void observe(std::span<const double> x, double target) {
    ECO_CHECK(x.size() == weights_.size());
    const double pred = predict(x);
    if (n_ > 0) abs_err_sum_ += std::abs(pred - target);
    ++n_;
    const double err = target - pred;
    const double loss = std::abs(err) - epsilon_;
    if (loss <= 0) return;  // inside the tube: passive
    double norm2 = 0.0;
    for (const double v : x) norm2 += v * v;
    if (norm2 <= 0) return;
    // PA-I: tau capped at C.
    const double tau = std::min(c_, loss / norm2);
    const double sign = err > 0 ? 1.0 : -1.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      weights_[i] += sign * tau * x[i];
    }
  }

  const std::vector<double>& weights() const { return weights_; }
  double mean_abs_error() const {
    return n_ > 1 ? abs_err_sum_ / static_cast<double>(n_ - 1) : 0.0;
  }

 private:
  std::vector<double> weights_;
  double epsilon_;
  double c_;
  std::size_t n_ = 0;
  double abs_err_sum_ = 0.0;
};

}  // namespace ecoscale
