// Online ridge regression for the runtime's input-dependent models
// (paper §4.2: "an array of regression, SVM and PCA techniques …
// building on prior experience on models for predicting execution time and
// power").
//
// Implementation: accumulated normal equations (XᵀX, Xᵀy) with Tikhonov
// damping, solved by Cholesky when a prediction is requested. Dimensions
// are small (≤ 16 features), so exact dense solves are cheap and the model
// can be updated after every task completion.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "common/check.h"

namespace ecoscale {

class RidgeRegression {
 public:
  explicit RidgeRegression(std::size_t dims, double lambda = 1e-3);

  std::size_t dims() const { return dims_; }
  std::size_t observations() const { return observations_; }

  /// Accumulate one (features, target) pair.
  void observe(std::span<const double> features, double target);

  /// Predict the target; nullopt until at least `dims` observations exist
  /// (before that the normal equations are rank-deficient in practice).
  std::optional<double> predict(std::span<const double> features) const;

  /// Solved coefficients (empty until enough observations).
  std::vector<double> coefficients() const;

  /// Mean absolute percentage error over the observed data (running).
  double mean_abs_error() const {
    return observations_ ? abs_err_sum_ / static_cast<double>(observations_)
                         : 0.0;
  }

 private:
  bool solve(std::vector<double>& beta) const;

  std::size_t dims_;
  double lambda_;
  std::vector<double> xtx_;  // dims × dims, row-major
  std::vector<double> xty_;  // dims
  std::size_t observations_ = 0;
  mutable std::vector<double> cached_beta_;
  mutable bool cache_valid_ = false;
  double abs_err_sum_ = 0.0;
};

/// Feature standardiser: running mean/std per dimension, used to keep the
/// normal equations well-conditioned across wildly different scales
/// (items vs. bytes). This is the pragmatic stand-in for the paper's PCA
/// preprocessing step.
class FeatureScaler {
 public:
  explicit FeatureScaler(std::size_t dims)
      : dims_(dims), mean_(dims, 0.0), m2_(dims, 0.0) {}

  void observe(std::span<const double> x);
  std::vector<double> transform(std::span<const double> x) const;
  std::size_t count() const { return n_; }

 private:
  std::size_t dims_;
  std::size_t n_ = 0;
  std::vector<double> mean_;
  std::vector<double> m2_;
};

}  // namespace ecoscale
