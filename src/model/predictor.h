// Input-dependent execution-time / energy predictors and the Execution
// History store (paper §4.2 and Figure 5's "Execution History" block).
//
// For every (kernel, device-class) pair the runtime keeps a regression
// model over input features. The training part happens online: each
// completed task contributes one observation; the actuation part is the
// scheduler's predict() call.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/units.h"
#include "hls/ir.h"
#include "model/regression.h"

namespace ecoscale {

enum class DeviceClass : std::uint8_t { kCpu = 0, kLocalFabric = 1,
                                        kRemoteFabric = 2 };

const char* device_class_name(DeviceClass d);

/// Task input descriptor — the "static and dynamic properties of the
/// input" the models correlate with cost.
struct TaskFeatures {
  double items = 0;        // input size (work items)
  double bytes = 0;        // input + output footprint
  double reuse = 1.0;      // access-pattern locality proxy (1 = streaming)
  double branchiness = 0;  // data-dependent control (hurts HW)

  static constexpr std::size_t kDims = 5;
  std::array<double, kDims> vector() const {
    return {1.0, items, bytes, items * reuse, branchiness * items};
  }
};

struct HistoryRecord {
  KernelId kernel = 0;
  DeviceClass device = DeviceClass::kCpu;
  TaskFeatures features;
  double time_ns = 0;
  double energy_pj = 0;
};

struct Prediction {
  double time_ns = 0;
  double energy_pj = 0;
  bool from_model = false;  // false = static fallback estimate
};

class CostPredictor {
 public:
  CostPredictor() = default;

  /// Record a completed execution (training part).
  void observe(const HistoryRecord& record);

  /// Predict cost of running `kernel` with `features` on `device`.
  /// Falls back to an analytic estimate derived from the KernelIR until the
  /// model has enough observations.
  Prediction predict(const KernelIR& kernel, DeviceClass device,
                     const TaskFeatures& features) const;

  std::size_t observations(KernelId kernel, DeviceClass device) const;

  /// Serialise / restore the History file (paper: "A history of the
  /// function calls as well as their execution time is stored in a History
  /// file").
  void save(std::ostream& os) const;
  static CostPredictor load(std::istream& is);

  const std::vector<HistoryRecord>& records() const { return records_; }

 private:
  struct Models {
    RidgeRegression time{TaskFeatures::kDims};
    RidgeRegression energy{TaskFeatures::kDims};
  };
  using ModelKey = std::pair<KernelId, DeviceClass>;

  static Prediction static_estimate(const KernelIR& kernel,
                                    DeviceClass device,
                                    const TaskFeatures& features);

  std::map<ModelKey, Models> models_;
  std::vector<HistoryRecord> records_;
};

}  // namespace ecoscale
