#include "mpi/graph_topology.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "common/check.h"
#include "common/rng.h"

namespace ecoscale {

GraphTopology::GraphTopology(std::vector<std::vector<Edge>> adjacency)
    : adjacency_(std::move(adjacency)) {
  ECO_CHECK(!adjacency_.empty());
  for (const auto& list : adjacency_) {
    for (const auto& e : list) {
      ECO_CHECK_MSG(e.to < adjacency_.size(), "edge to unknown rank");
      ECO_CHECK(e.weight > 0);
    }
    edges_ += list.size();
  }
}

const std::vector<GraphTopology::Edge>& GraphTopology::neighbors(
    std::size_t rank) const {
  ECO_CHECK(rank < adjacency_.size());
  return adjacency_[rank];
}

double GraphTopology::mapping_cost(std::span<const std::size_t> perm,
                                   std::size_t ranks_per_node,
                                   double inter_node_penalty) const {
  ECO_CHECK(perm.size() == adjacency_.size());
  ECO_CHECK(ranks_per_node >= 1);
  double cost = 0.0;
  for (std::size_t r = 0; r < adjacency_.size(); ++r) {
    for (const auto& e : adjacency_[r]) {
      const std::size_t a = perm[r];
      const std::size_t b = perm[e.to];
      const bool same_node = a / ranks_per_node == b / ranks_per_node;
      const double dist =
          same_node ? 1.0 : inter_node_penalty;
      cost += e.weight * dist;
    }
  }
  return cost;
}

std::vector<std::size_t> GraphTopology::reorder(
    std::size_t ranks_per_node) const {
  ECO_CHECK(ranks_per_node >= 1);
  const std::size_t n = adjacency_.size();
  // Start from the vertex with the heaviest incident weight; grow a BFS
  // front ordered by connection weight into the current placement.
  std::vector<double> incident(n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    for (const auto& e : adjacency_[r]) {
      incident[r] += e.weight;
      incident[e.to] += e.weight;
    }
  }
  std::vector<bool> placed(n, false);
  std::vector<double> attraction(n, 0.0);  // weight into placed set
  std::vector<std::size_t> order;
  order.reserve(n);
  while (order.size() < n) {
    // Seed: heaviest unplaced vertex; subsequent picks: strongest
    // attraction to the placed set (ties by incident weight, then id).
    std::size_t best = n;
    for (std::size_t v = 0; v < n; ++v) {
      if (placed[v]) continue;
      if (best == n || attraction[v] > attraction[best] ||
          (attraction[v] == attraction[best] &&
           incident[v] > incident[best])) {
        best = v;
      }
    }
    placed[best] = true;
    order.push_back(best);
    for (const auto& e : adjacency_[best]) {
      if (!placed[e.to]) attraction[e.to] += e.weight;
    }
    // Incoming edges attract too.
    for (std::size_t v = 0; v < n; ++v) {
      if (placed[v]) continue;
      for (const auto& e : adjacency_[v]) {
        if (e.to == best) attraction[v] += e.weight;
      }
    }
  }
  std::vector<std::size_t> perm(n);
  for (std::size_t pos = 0; pos < n; ++pos) perm[order[pos]] = pos;
  return perm;
}

CollectiveResult neighbor_alltoall(MpiWorld& world, const GraphTopology& graph,
                                   Bytes bytes,
                                   std::span<const SimTime> arrivals,
                                   std::span<const std::size_t> perm,
                                   std::size_t ranks_per_node) {
  ECO_CHECK(world.size() >= graph.size());
  ECO_CHECK(arrivals.size() == graph.size());
  ECO_CHECK(perm.empty() || perm.size() == graph.size());
  CollectiveResult result;
  std::vector<SimTime> done(arrivals.begin(), arrivals.end());
  auto pos = [&](std::size_t r) { return perm.empty() ? r : perm[r]; };
  for (std::size_t r = 0; r < graph.size(); ++r) {
    for (const auto& e : graph.neighbors(r)) {
      const bool same_node =
          pos(r) / ranks_per_node == pos(e.to) / ranks_per_node;
      if (same_node) {
        // Intra-node neighbour: UNIMEM-style direct store, no MPI stack.
        // Cost model: a cheap fixed latency plus local bandwidth.
        const SimTime t = arrivals[r] + microseconds(1) +
                          Bandwidth::from_gib_per_s(16.0).transfer_time(bytes);
        done[e.to] = std::max(done[e.to], t);
      } else {
        const auto m = world.send(pos(r) % world.size(),
                                  pos(e.to) % world.size(), bytes,
                                  arrivals[r]);
        done[e.to] = std::max(done[e.to], m.delivered);
        ++result.messages;
        result.bytes_on_wire += bytes;
        result.energy += m.energy;
      }
    }
  }
  result.per_rank = done;
  result.finish = *std::max_element(done.begin(), done.end());
  return result;
}

GraphTopology make_ring_graph(std::size_t ranks) {
  ECO_CHECK(ranks >= 2);
  std::vector<std::vector<GraphTopology::Edge>> adj(ranks);
  for (std::size_t r = 0; r < ranks; ++r) {
    adj[r].push_back({(r + 1) % ranks, 1.0});
    adj[r].push_back({(r + ranks - 1) % ranks, 1.0});
  }
  return GraphTopology(std::move(adj));
}

GraphTopology make_stencil_graph(std::size_t cols, std::size_t rows) {
  ECO_CHECK(cols >= 1 && rows >= 1);
  std::vector<std::vector<GraphTopology::Edge>> adj(cols * rows);
  auto id = [cols](std::size_t x, std::size_t y) { return y * cols + x; };
  for (std::size_t y = 0; y < rows; ++y) {
    for (std::size_t x = 0; x < cols; ++x) {
      if (x + 1 < cols) {
        adj[id(x, y)].push_back({id(x + 1, y), 1.0});
        adj[id(x + 1, y)].push_back({id(x, y), 1.0});
      }
      if (y + 1 < rows) {
        adj[id(x, y)].push_back({id(x, y + 1), 1.0});
        adj[id(x, y + 1)].push_back({id(x, y), 1.0});
      }
    }
  }
  return GraphTopology(std::move(adj));
}

GraphTopology make_irregular_graph(std::size_t ranks, std::size_t degree,
                                   std::uint64_t seed) {
  ECO_CHECK(ranks >= 2);
  Rng rng(seed);
  std::vector<std::vector<GraphTopology::Edge>> adj(ranks);
  for (std::size_t r = 0; r < ranks; ++r) {
    for (std::size_t d = 0; d < degree; ++d) {
      std::size_t peer = rng.uniform_u64(ranks);
      if (peer == r) peer = (peer + 1) % ranks;
      // Skewed weights: some edges are much hotter.
      const double w = 1.0 + std::floor(rng.exponential(2.0));
      adj[r].push_back({peer, w});
    }
  }
  return GraphTopology(std::move(adj));
}

}  // namespace ecoscale
