// MPI-3 distributed graph topology (paper §4.4: "The programming model for
// expressing hierarchical data partitioning will start from the widely
// used MPI-3.0 standard, leveraging the new topology abstractions.").
//
// Alongside CartTopology this provides the irregular-application side:
// arbitrary neighbour lists, neighbourhood collectives, and a
// topology-aware rank reordering that maps heavy edges onto close ranks —
// the "hierarchical and topological partitioning" of §2.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/units.h"
#include "mpi/mpi.h"

namespace ecoscale {

class GraphTopology {
 public:
  /// Build from per-rank neighbour lists (directed edges; use both
  /// directions for symmetric stencils). Edge weights express traffic
  /// intensity for the mapping optimisation.
  struct Edge {
    std::size_t to = 0;
    double weight = 1.0;
  };

  explicit GraphTopology(std::vector<std::vector<Edge>> adjacency);

  std::size_t size() const { return adjacency_.size(); }
  const std::vector<Edge>& neighbors(std::size_t rank) const;
  std::size_t edge_count() const { return edges_; }

  /// Total traffic-weighted distance of this topology when rank r is
  /// placed at position perm[r] of a machine whose distance function is
  /// |a - b| within a node-sized block and `inter_node_penalty` across
  /// blocks (the tree-distance proxy).
  double mapping_cost(std::span<const std::size_t> perm,
                      std::size_t ranks_per_node,
                      double inter_node_penalty = 8.0) const;

  /// Greedy topology-aware reordering: BFS from the heaviest vertex,
  /// packing connected ranks into the same node-sized block (the
  /// "hierarchical partitioning" heuristic of §2 refs [3][4]).
  /// Returns perm with perm[rank] = machine position.
  std::vector<std::size_t> reorder(std::size_t ranks_per_node) const;

 private:
  std::vector<std::vector<Edge>> adjacency_;
  std::size_t edges_ = 0;
};

/// Neighbourhood collective: every rank exchanges `bytes` with each of its
/// graph neighbours (MPI_Neighbor_alltoall). Ranks are placed by `perm`
/// (identity if empty) on a machine of `ranks_per_node`-rank nodes:
/// intra-node neighbour traffic uses the cheap path, inter-node pays MPI.
CollectiveResult neighbor_alltoall(MpiWorld& world, const GraphTopology& graph,
                                   Bytes bytes,
                                   std::span<const SimTime> arrivals,
                                   std::span<const std::size_t> perm = {},
                                   std::size_t ranks_per_node = 1);

/// Convenience builders.
GraphTopology make_ring_graph(std::size_t ranks);
GraphTopology make_stencil_graph(std::size_t cols, std::size_t rows);
/// Random irregular graph (degree ~ `degree`), the PGAS-motivated case.
GraphTopology make_irregular_graph(std::size_t ranks, std::size_t degree,
                                   std::uint64_t seed);

}  // namespace ecoscale
