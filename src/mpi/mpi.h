// Inter-Compute-Node message layer (paper §4.1, Figure 3).
//
// "MPI is used for communication between Compute Nodes via CPU-based
// routers following the application topology."
//
// MpiWorld models ranks = Compute Nodes joined by an inter-node network.
// Point-to-point transfers use a LogP-style cost model (software send /
// receive overhead on the CPU-based routers, rendezvous handshake for bulk
// messages) on top of the shared Network substrate; collectives implement
// the classic algorithms (binomial broadcast, recursive-doubling
// allreduce, ring allgather, pairwise exchange alltoall) so message counts
// and critical paths are faithful. A functional data plane carries real
// payload bytes for the application kernels.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/energy.h"
#include "common/units.h"
#include "interconnect/network.h"
#include "sim/timeline.h"

namespace ecoscale {

struct MpiConfig {
  /// Software overheads on the CPU-based router (LogP o_s / o_r).
  SimDuration send_overhead = microseconds(1);
  SimDuration recv_overhead = microseconds(1);
  /// Messages larger than this use rendezvous (adds one RTT handshake).
  Bytes eager_threshold = 16 * kKiB;
  /// Inter-node link parameters.
  LinkParams link;

  MpiConfig() {
    link.hop_latency = nanoseconds(500);
    link.bandwidth = Bandwidth::from_gib_per_s(5.0);
    link.pj_per_byte = 30.0;  // off-node transfer energy
    link.pj_per_packet = 200.0;
  }
};

struct MsgResult {
  SimTime sent = 0;      // sender-side completion (overhead done)
  SimTime delivered = 0; // receiver-side data availability
  Picojoules energy = 0.0;
};

struct CollectiveResult {
  SimTime finish = 0;          // when the last rank completes
  std::uint64_t messages = 0;
  Bytes bytes_on_wire = 0;
  Picojoules energy = 0.0;
  std::vector<SimTime> per_rank;  // completion per rank
};

class MpiWorld {
 public:
  /// `ranks` Compute Nodes on a crossbar-style inter-node fabric.
  explicit MpiWorld(std::size_t ranks, MpiConfig config = {});

  std::size_t size() const { return ranks_; }

  // --- point to point ------------------------------------------------------
  MsgResult send(std::size_t src, std::size_t dst, Bytes bytes,
                 SimTime ready, int tag = 0);

  /// Attach functional payload to a send (stored in the data plane).
  MsgResult send_data(std::size_t src, std::size_t dst,
                      std::span<const std::uint8_t> data, SimTime ready,
                      int tag = 0);

  /// Pop the oldest matching payload (FIFO per (src, dst, tag)).
  std::optional<std::vector<std::uint8_t>> recv_data(std::size_t src,
                                                     std::size_t dst,
                                                     int tag = 0);

  // --- collectives -----------------------------------------------------------
  CollectiveResult barrier(std::span<const SimTime> arrivals);
  CollectiveResult broadcast(std::size_t root, Bytes bytes,
                             std::span<const SimTime> arrivals);
  CollectiveResult reduce(std::size_t root, Bytes bytes,
                          std::span<const SimTime> arrivals);
  CollectiveResult allreduce(Bytes bytes, std::span<const SimTime> arrivals);
  CollectiveResult allgather(Bytes bytes_per_rank,
                             std::span<const SimTime> arrivals);
  CollectiveResult alltoall(Bytes bytes_per_pair,
                            std::span<const SimTime> arrivals);

  // --- accounting --------------------------------------------------------------
  std::uint64_t messages_sent() const { return messages_; }
  Bytes bytes_sent() const { return bytes_; }
  const EnergyMeter& energy() const { return energy_; }
  Network& network() { return *network_; }

 private:
  struct Key {
    std::size_t src;
    std::size_t dst;
    int tag;
    auto operator<=>(const Key&) const = default;
  };

  std::size_t ranks_;
  MpiConfig config_;
  std::unique_ptr<Network> network_;
  // LogP-style occupancy: the CPU-based router of each rank serialises its
  // own send and receive processing.
  std::vector<Timeline> send_cpu_;
  std::vector<Timeline> recv_cpu_;
  std::map<Key, std::deque<std::vector<std::uint8_t>>> data_plane_;
  std::uint64_t messages_ = 0;
  Bytes bytes_ = 0;
  EnergyMeter energy_;
};

/// MPI-3 Cartesian topology helper (paper §4.4: "leveraging the new
/// topology abstractions" of MPI-3.0).
class CartTopology {
 public:
  CartTopology(std::vector<std::size_t> dims, bool periodic);

  std::size_t size() const;
  std::size_t ndims() const { return dims_.size(); }
  const std::vector<std::size_t>& dims() const { return dims_; }

  std::size_t rank_of(std::span<const std::size_t> coords) const;
  std::vector<std::size_t> coords_of(std::size_t rank) const;

  /// Neighbour rank one step along `dim` in `direction` (+1/-1);
  /// nullopt at a non-periodic boundary.
  std::optional<std::size_t> shift(std::size_t rank, std::size_t dim,
                                   int direction) const;

  /// All existing nearest neighbours of a rank.
  std::vector<std::size_t> neighbors(std::size_t rank) const;

 private:
  std::vector<std::size_t> dims_;
  bool periodic_;
};

}  // namespace ecoscale
