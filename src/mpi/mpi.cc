#include "mpi/mpi.h"

#include <algorithm>

namespace ecoscale {

MpiWorld::MpiWorld(std::size_t ranks, MpiConfig config)
    : ranks_(ranks), config_(config) {
  ECO_CHECK(ranks_ >= 1);
  NetworkConfig net;
  net.level_params = {{0, config_.link}};
  network_ = std::make_unique<Network>(make_crossbar(ranks_), net);
  send_cpu_.resize(ranks_);
  recv_cpu_.resize(ranks_);
}

MsgResult MpiWorld::send(std::size_t src, std::size_t dst, Bytes bytes,
                         SimTime ready, int tag) {
  ECO_CHECK(src < ranks_ && dst < ranks_);
  (void)tag;
  MsgResult r;
  ++messages_;
  bytes_ += bytes;
  // Sender-side software processing occupies the rank's router CPU: a rank
  // issuing many messages serialises their o_send costs (LogP overhead).
  const SimTime sent =
      send_cpu_[src].reserve_until(ready, config_.send_overhead);
  if (src == dst) {
    r.sent = sent;
    r.delivered = sent;
    return r;
  }
  SimTime t = sent;
  if (bytes > config_.eager_threshold) {
    // Rendezvous: RTS/CTS handshake before the payload moves.
    Packet rts{PacketType::kMessage, {}, {}, 32};
    const auto a = network_->send(src, dst, rts, t);
    const auto b = network_->send(dst, src, rts, a.arrival);
    t = b.arrival;
    r.energy += a.energy + b.energy;
  }
  Packet payload{PacketType::kMessage, {}, {}, bytes};
  const auto d = network_->send(src, dst, payload, t);
  r.sent = sent;
  r.delivered =
      recv_cpu_[dst].reserve_until(d.arrival, config_.recv_overhead);
  r.energy += d.energy;
  energy_.charge("mpi.p2p", r.energy);
  return r;
}

MsgResult MpiWorld::send_data(std::size_t src, std::size_t dst,
                              std::span<const std::uint8_t> data,
                              SimTime ready, int tag) {
  data_plane_[Key{src, dst, tag}].emplace_back(data.begin(), data.end());
  return send(src, dst, data.size(), ready, tag);
}

std::optional<std::vector<std::uint8_t>> MpiWorld::recv_data(std::size_t src,
                                                             std::size_t dst,
                                                             int tag) {
  auto it = data_plane_.find(Key{src, dst, tag});
  if (it == data_plane_.end() || it->second.empty()) return std::nullopt;
  auto out = std::move(it->second.front());
  it->second.pop_front();
  return out;
}

namespace {

/// Number of rounds in a power-of-two-style schedule.
std::size_t ceil_log2(std::size_t n) {
  std::size_t r = 0;
  std::size_t v = 1;
  while (v < n) {
    v <<= 1;
    ++r;
  }
  return r;
}

}  // namespace

CollectiveResult MpiWorld::barrier(std::span<const SimTime> arrivals) {
  // Dissemination barrier: ceil(log2(P)) rounds, each rank sends to
  // (rank + 2^k) mod P.
  ECO_CHECK(arrivals.size() == ranks_);
  CollectiveResult result;
  std::vector<SimTime> t(arrivals.begin(), arrivals.end());
  const std::size_t rounds = ceil_log2(ranks_);
  for (std::size_t k = 0; k < rounds; ++k) {
    const std::size_t stride = 1ull << k;
    std::vector<SimTime> next = t;
    for (std::size_t r = 0; r < ranks_; ++r) {
      const std::size_t peer = (r + stride) % ranks_;
      const auto m = send(r, peer, 8, t[r]);
      next[peer] = std::max(next[peer], m.delivered);
      result.energy += m.energy;
      ++result.messages;
      result.bytes_on_wire += 8;
    }
    t = std::move(next);
  }
  result.per_rank = t;
  result.finish = *std::max_element(t.begin(), t.end());
  return result;
}

CollectiveResult MpiWorld::broadcast(std::size_t root, Bytes bytes,
                                     std::span<const SimTime> arrivals) {
  // Binomial tree rooted at `root`.
  ECO_CHECK(arrivals.size() == ranks_ && root < ranks_);
  CollectiveResult result;
  std::vector<SimTime> have(ranks_, 0);
  std::vector<bool> has(ranks_, false);
  have[root] = arrivals[root];
  has[root] = true;
  // Relabel so root is 0 in the tree schedule.
  auto rel = [&](std::size_t v) { return (v + root) % ranks_; };
  const std::size_t rounds = ceil_log2(ranks_);
  for (std::size_t k = 0; k < rounds; ++k) {
    const std::size_t stride = 1ull << (rounds - 1 - k);
    for (std::size_t v = 0; v + stride < ranks_; ++v) {
      if (v % (stride * 2) != 0) continue;
      const std::size_t src = rel(v);
      const std::size_t dst = rel(v + stride);
      if (!has[src] || has[dst]) continue;
      const SimTime ready = std::max(have[src], arrivals[dst]);
      const auto m = send(src, dst, bytes, ready);
      have[dst] = m.delivered;
      has[dst] = true;
      result.energy += m.energy;
      ++result.messages;
      result.bytes_on_wire += bytes;
    }
  }
  for (std::size_t r = 0; r < ranks_; ++r) {
    have[r] = std::max(have[r], arrivals[r]);
  }
  result.per_rank = have;
  result.finish = *std::max_element(have.begin(), have.end());
  return result;
}

CollectiveResult MpiWorld::reduce(std::size_t root, Bytes bytes,
                                  std::span<const SimTime> arrivals) {
  // Binomial tree, mirrored: leaves send up.
  ECO_CHECK(arrivals.size() == ranks_ && root < ranks_);
  CollectiveResult result;
  std::vector<SimTime> t(arrivals.begin(), arrivals.end());
  auto rel = [&](std::size_t v) { return (v + root) % ranks_; };
  for (std::size_t stride = 1; stride < ranks_; stride *= 2) {
    for (std::size_t v = 0; v + stride < ranks_; v += stride * 2) {
      const std::size_t parent = rel(v);
      const std::size_t child = rel(v + stride);
      const auto m = send(child, parent, bytes, t[child]);
      t[parent] = std::max(t[parent], m.delivered);
      result.energy += m.energy;
      ++result.messages;
      result.bytes_on_wire += bytes;
    }
  }
  result.per_rank = t;
  result.finish = t[root];
  return result;
}

CollectiveResult MpiWorld::allreduce(Bytes bytes,
                                     std::span<const SimTime> arrivals) {
  // Recursive doubling (exact for power-of-two, padded schedule otherwise).
  ECO_CHECK(arrivals.size() == ranks_);
  CollectiveResult result;
  std::vector<SimTime> t(arrivals.begin(), arrivals.end());
  const std::size_t rounds = ceil_log2(ranks_);
  for (std::size_t k = 0; k < rounds; ++k) {
    const std::size_t stride = 1ull << k;
    std::vector<SimTime> next = t;
    for (std::size_t r = 0; r < ranks_; ++r) {
      const std::size_t peer = r ^ stride;
      if (peer >= ranks_ || peer < r) continue;
      // Pairwise exchange.
      const auto a = send(r, peer, bytes, t[r]);
      const auto b = send(peer, r, bytes, t[peer]);
      const SimTime done = std::max(a.delivered, b.delivered);
      next[r] = std::max(next[r], done);
      next[peer] = std::max(next[peer], done);
      result.energy += a.energy + b.energy;
      result.messages += 2;
      result.bytes_on_wire += 2 * bytes;
    }
    t = std::move(next);
  }
  result.per_rank = t;
  result.finish = *std::max_element(t.begin(), t.end());
  return result;
}

CollectiveResult MpiWorld::allgather(Bytes bytes_per_rank,
                                     std::span<const SimTime> arrivals) {
  // Ring: P-1 rounds, each rank forwards the next block to its successor.
  ECO_CHECK(arrivals.size() == ranks_);
  CollectiveResult result;
  std::vector<SimTime> t(arrivals.begin(), arrivals.end());
  for (std::size_t round = 0; round + 1 < ranks_; ++round) {
    std::vector<SimTime> next = t;
    for (std::size_t r = 0; r < ranks_; ++r) {
      const std::size_t succ = (r + 1) % ranks_;
      const auto m = send(r, succ, bytes_per_rank, t[r]);
      next[succ] = std::max(next[succ], m.delivered);
      result.energy += m.energy;
      ++result.messages;
      result.bytes_on_wire += bytes_per_rank;
    }
    t = std::move(next);
  }
  result.per_rank = t;
  result.finish = *std::max_element(t.begin(), t.end());
  return result;
}

CollectiveResult MpiWorld::alltoall(Bytes bytes_per_pair,
                                    std::span<const SimTime> arrivals) {
  // Pairwise exchange: P-1 rounds, round k pairs r with r XOR k (padded to
  // the next power of two; skipped partners idle that round).
  ECO_CHECK(arrivals.size() == ranks_);
  CollectiveResult result;
  std::vector<SimTime> t(arrivals.begin(), arrivals.end());
  std::size_t p2 = 1;
  while (p2 < ranks_) p2 <<= 1;
  for (std::size_t k = 1; k < p2; ++k) {
    std::vector<SimTime> next = t;
    for (std::size_t r = 0; r < ranks_; ++r) {
      const std::size_t peer = r ^ k;
      if (peer >= ranks_ || peer < r) continue;
      const auto a = send(r, peer, bytes_per_pair, t[r]);
      const auto b = send(peer, r, bytes_per_pair, t[peer]);
      next[r] = std::max(next[r], b.delivered);
      next[peer] = std::max(next[peer], a.delivered);
      result.energy += a.energy + b.energy;
      result.messages += 2;
      result.bytes_on_wire += 2 * bytes_per_pair;
    }
    t = std::move(next);
  }
  result.per_rank = t;
  result.finish = *std::max_element(t.begin(), t.end());
  return result;
}

CartTopology::CartTopology(std::vector<std::size_t> dims, bool periodic)
    : dims_(std::move(dims)), periodic_(periodic) {
  ECO_CHECK(!dims_.empty());
  for (std::size_t d : dims_) ECO_CHECK(d >= 1);
}

std::size_t CartTopology::size() const {
  std::size_t n = 1;
  for (std::size_t d : dims_) n *= d;
  return n;
}

std::size_t CartTopology::rank_of(std::span<const std::size_t> coords) const {
  ECO_CHECK(coords.size() == dims_.size());
  std::size_t rank = 0;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    ECO_CHECK(coords[i] < dims_[i]);
    rank = rank * dims_[i] + coords[i];
  }
  return rank;
}

std::vector<std::size_t> CartTopology::coords_of(std::size_t rank) const {
  ECO_CHECK(rank < size());
  std::vector<std::size_t> coords(dims_.size());
  for (std::size_t i = dims_.size(); i-- > 0;) {
    coords[i] = rank % dims_[i];
    rank /= dims_[i];
  }
  return coords;
}

std::optional<std::size_t> CartTopology::shift(std::size_t rank,
                                               std::size_t dim,
                                               int direction) const {
  ECO_CHECK(dim < dims_.size());
  ECO_CHECK(direction == 1 || direction == -1);
  auto coords = coords_of(rank);
  const std::size_t extent = dims_[dim];
  if (direction == 1) {
    if (coords[dim] + 1 == extent) {
      if (!periodic_) return std::nullopt;
      coords[dim] = 0;
    } else {
      ++coords[dim];
    }
  } else {
    if (coords[dim] == 0) {
      if (!periodic_) return std::nullopt;
      coords[dim] = extent - 1;
    } else {
      --coords[dim];
    }
  }
  return rank_of(coords);
}

std::vector<std::size_t> CartTopology::neighbors(std::size_t rank) const {
  std::vector<std::size_t> out;
  for (std::size_t dim = 0; dim < dims_.size(); ++dim) {
    for (int dir : {-1, 1}) {
      if (auto n = shift(rank, dim, dir); n && *n != rank) {
        out.push_back(*n);
      }
    }
  }
  return out;
}

}  // namespace ecoscale
