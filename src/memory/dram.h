// Off-chip DRAM channel model (one per Worker, paper Figure 4).
//
// Timing: fixed access latency plus bandwidth-limited burst transfer on a
// contention timeline. Energy: per-byte access energy plus activation cost
// per row-buffer miss (approximated by a per-access constant for shape-level
// fidelity).
#pragma once

#include <cstdint>
#include <string>

#include "common/energy.h"
#include "common/intern.h"
#include "common/units.h"
#include "sim/timeline.h"

namespace ecoscale {

struct DramConfig {
  SimDuration access_latency = nanoseconds(60);
  Bandwidth bandwidth = Bandwidth::from_gib_per_s(12.8);
  double pj_per_byte = 20.0;       // off-chip DRAM access energy
  double pj_per_access = 1000.0;   // activation/precharge share
};

struct DramResult {
  SimTime finish = 0;
  Picojoules energy = 0.0;
};

class DramChannel {
 public:
  explicit DramChannel(std::string name, DramConfig config = {})
      : timeline_(std::move(name)), config_(config) {}

  /// A burst of `bytes` issued at `ready`; returns completion time.
  DramResult access(SimTime ready, Bytes bytes) {
    const SimDuration burst = config_.bandwidth.transfer_time(bytes);
    const SimTime start = timeline_.reserve(ready, burst);
    DramResult r;
    r.finish = start + config_.access_latency + burst;
    r.energy = config_.pj_per_byte * static_cast<double>(bytes) +
               config_.pj_per_access;
    bytes_ += bytes;
    // access() is on the per-request fast path of every memory model above
    // it; charge the pre-interned id instead of hashing the string.
    static const CounterId kAccessId = CounterRegistry::intern("dram.access");
    energy_.charge(kAccessId, r.energy);
    return r;
  }

  /// Promise that no future access() is issued before `watermark`; prunes
  /// the channel calendar's retired intervals.
  void release(SimTime watermark) { timeline_.release(watermark); }

  Bytes bytes_transferred() const { return bytes_; }
  const EnergyMeter& energy() const { return energy_; }
  const CalendarTimeline& timeline() const { return timeline_; }
  const DramConfig& config() const { return config_; }

 private:
  CalendarTimeline timeline_;
  DramConfig config_;
  Bytes bytes_ = 0;
  EnergyMeter energy_;
};

}  // namespace ecoscale
