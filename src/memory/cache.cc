#include "memory/cache.h"

#include <algorithm>

namespace ecoscale {

const char* line_state_name(LineState s) {
  switch (s) {
    case LineState::kInvalid: return "I";
    case LineState::kShared: return "S";
    case LineState::kExclusive: return "E";
    case LineState::kModified: return "M";
  }
  return "?";
}

Cache::Cache(std::string name, CacheConfig config)
    : name_(std::move(name)), config_(config) {
  ECO_CHECK(config_.line_size > 0 && config_.ways > 0);
  ECO_CHECK(config_.capacity % (config_.line_size * config_.ways) == 0);
  sets_ = config_.capacity / (config_.line_size * config_.ways);
  ECO_CHECK(sets_ > 0);
  if ((sets_ & (sets_ - 1)) == 0) set_mask_ = sets_ - 1;
  ways_.resize(sets_ * config_.ways);
}

Cache::Way* Cache::find(std::uint64_t line) {
  const std::size_t base = set_of(line) * config_.ways;
  for (std::size_t w = 0; w < config_.ways; ++w) {
    Way& way = ways_[base + w];
    if (way.state != LineState::kInvalid && way.line == line) return &way;
  }
  return nullptr;
}

const Cache::Way* Cache::find(std::uint64_t line) const {
  return const_cast<Cache*>(this)->find(line);
}

LineState Cache::state(std::uint64_t line) const {
  const Way* w = find(line);
  return w ? w->state : LineState::kInvalid;
}

CacheAccess Cache::fill(std::uint64_t line, LineState st) {
  ECO_CHECK(st != LineState::kInvalid);
  CacheAccess result;
  if (Way* existing = find(line)) {
    existing->state = st;
    existing->lru = ++lru_clock_;
    return result;
  }
  const std::size_t base = set_of(line) * config_.ways;
  Way* victim = &ways_[base];
  for (std::size_t w = 0; w < config_.ways; ++w) {
    Way& way = ways_[base + w];
    if (way.state == LineState::kInvalid) {
      victim = &way;
      break;
    }
    if (way.lru < victim->lru) victim = &way;
  }
  if (victim->state != LineState::kInvalid) {
    result.evicted = true;
    result.victim_line = victim->line;
    if (victim->state == LineState::kModified) {
      result.writeback = true;
      ++writebacks_;
    }
  }
  victim->line = line;
  victim->state = st;
  victim->lru = ++lru_clock_;
  return result;
}

bool Cache::touch(std::uint64_t line, bool write) {
  Way* w = find(line);
  if (w == nullptr) return false;
  w->lru = ++lru_clock_;
  if (write) {
    // Writing a Shared line requires an upgrade through the coherence
    // domain; callers must not sidestep it.
    ECO_CHECK_MSG(w->state != LineState::kShared,
                  "write hit on Shared line must go through the domain");
    w->state = LineState::kModified;
  }
  return true;
}

bool Cache::invalidate(std::uint64_t line) {
  Way* w = find(line);
  if (w == nullptr || w->state == LineState::kInvalid) return false;
  const bool dirty = w->state == LineState::kModified;
  if (dirty) ++writebacks_;
  w->state = LineState::kInvalid;
  ++snoop_invalidations_;
  return dirty;
}

bool Cache::downgrade(std::uint64_t line) {
  Way* w = find(line);
  if (w == nullptr || w->state == LineState::kInvalid) return false;
  const bool dirty = w->state == LineState::kModified;
  if (dirty) ++writebacks_;
  w->state = LineState::kShared;
  return dirty;
}

}  // namespace ecoscale
