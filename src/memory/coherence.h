// Coherence domain: MESI protocol over a set of caches.
//
// Two flavours, matching the paper's architectural argument (§2, §4.1):
//  * kSnoopBroadcast — every miss/upgrade broadcasts to all other caches in
//    the domain; message count grows with domain size. This is the
//    "global cache coherence protocol" the paper says cannot scale.
//  * kDirectory — a directory tracks sharers; messages go only to actual
//    sharers, but the directory itself serialises and still spans the
//    machine in the global-coherence baseline.
//
// UNIMEM does not appear here: it *eliminates* the global domain by making
// each page cacheable at exactly one node, so a UNIMEM system instantiates
// one small CoherenceDomain per node and routes remote accesses to the
// owner (see src/unimem).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/units.h"
#include "memory/cache.h"

namespace ecoscale {

enum class CoherenceMode { kSnoopBroadcast, kDirectory };

struct CoherenceStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t snoop_messages = 0;     // probes + responses
  std::uint64_t invalidations = 0;
  std::uint64_t cache_to_cache = 0;     // dirty data forwarded
  std::uint64_t memory_fetches = 0;
  std::uint64_t writebacks = 0;
};

struct CoherenceAccess {
  bool hit = false;
  std::uint64_t snoop_messages = 0;  // messages this access generated
};

class CoherenceDomain {
 public:
  CoherenceDomain(std::vector<Cache*> caches, CoherenceMode mode)
      : caches_(std::move(caches)), mode_(mode) {
    ECO_CHECK(!caches_.empty());
    holder_scratch_.reserve(caches_.size());
  }

  std::size_t size() const { return caches_.size(); }
  CoherenceMode mode() const { return mode_; }

  /// Perform a read by cache `who` to byte address `addr`.
  CoherenceAccess read(std::size_t who, std::uint64_t addr);

  /// Perform a write by cache `who` to byte address `addr`.
  CoherenceAccess write(std::size_t who, std::uint64_t addr);

  const CoherenceStats& stats() const { return stats_; }

 private:
  std::uint64_t line_of(std::uint64_t addr) const {
    return caches_.front()->line_of(addr);
  }
  /// Sharers of a line other than `who` that actually hold it. Returns a
  /// view into `holder_scratch_`, valid until the next call — holders() runs
  /// on every miss, so reusing one buffer keeps the miss path allocation-free.
  std::span<const std::size_t> holders(std::uint64_t line, std::size_t who);
  /// Messages needed to probe: broadcast probes everyone; directory knows.
  std::uint64_t probe_cost(std::size_t actual_holders) const;

  std::vector<Cache*> caches_;
  CoherenceMode mode_;
  CoherenceStats stats_;
  std::vector<std::size_t> holder_scratch_;
};

}  // namespace ecoscale
