// Set-associative write-back cache with MESI line states.
//
// The functional state machine is exact (states, LRU, evictions); timing and
// energy are charged by the caller from CacheConfig so different attachment
// points (CPU L2, accelerator-local cache) can weight them differently.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/units.h"

namespace ecoscale {

enum class LineState : std::uint8_t { kInvalid, kShared, kExclusive, kModified };

const char* line_state_name(LineState s);

struct CacheConfig {
  Bytes capacity = 256 * kKiB;
  Bytes line_size = 64;
  std::size_t ways = 8;
  SimDuration hit_latency = nanoseconds(4);
  double pj_per_hit = 5.0;
};

struct CacheAccess {
  bool hit = false;
  bool writeback = false;          // a dirty victim was evicted
  std::uint64_t victim_line = 0;   // line address of the victim, if any
  bool evicted = false;
};

class Cache {
 public:
  explicit Cache(std::string name, CacheConfig config = {});

  Bytes line_size() const { return config_.line_size; }
  const CacheConfig& config() const { return config_; }
  const std::string& name() const { return name_; }

  std::uint64_t line_of(std::uint64_t addr) const {
    return addr / config_.line_size;
  }

  /// Look up a line without touching LRU.
  LineState state(std::uint64_t line) const;

  /// Install a line in the given state, possibly evicting a victim.
  CacheAccess fill(std::uint64_t line, LineState st);

  /// Hit path: touch LRU, optionally upgrade to Modified on writes.
  /// Returns false if the line is not present.
  bool touch(std::uint64_t line, bool write);

  /// Snoop actions from the coherence domain.
  /// Invalidate; returns true if the line was dirty (writeback needed).
  bool invalidate(std::uint64_t line);
  /// Downgrade Modified/Exclusive to Shared; returns true if data was dirty.
  bool downgrade(std::uint64_t line);

  // --- stats ---
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t writebacks() const { return writebacks_; }
  std::uint64_t snoop_invalidations() const { return snoop_invalidations_; }
  double hit_rate() const {
    const auto total = hits_ + misses_;
    return total ? static_cast<double>(hits_) / static_cast<double>(total)
                 : 0.0;
  }
  /// Record an access outcome (bumped by the coherence domain).
  void count_hit() { ++hits_; }
  void count_miss() { ++misses_; }

 private:
  struct Way {
    std::uint64_t line = 0;
    LineState state = LineState::kInvalid;
    std::uint64_t lru = 0;  // larger = more recent
  };

  /// Set index: sets_ is almost always a power of two (capacity and line
  /// size are), so the lookup fast path is a mask; the modulo only survives
  /// for exotic configs.
  std::size_t set_of(std::uint64_t line) const {
    return set_mask_ != 0 ? (line & set_mask_) : (line % sets_);
  }
  Way* find(std::uint64_t line);
  const Way* find(std::uint64_t line) const;

  std::string name_;
  CacheConfig config_;
  std::size_t sets_;
  std::uint64_t set_mask_ = 0;  // sets_ - 1 when sets_ is a power of two
  std::vector<Way> ways_;  // sets_ * config_.ways entries
  std::uint64_t lru_clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t writebacks_ = 0;
  std::uint64_t snoop_invalidations_ = 0;
};

}  // namespace ecoscale
