#include "memory/coherence.h"

namespace ecoscale {

std::span<const std::size_t> CoherenceDomain::holders(std::uint64_t line,
                                                      std::size_t who) {
  holder_scratch_.clear();
  for (std::size_t i = 0; i < caches_.size(); ++i) {
    if (i == who) continue;
    if (caches_[i]->state(line) != LineState::kInvalid) {
      holder_scratch_.push_back(i);
    }
  }
  return holder_scratch_;
}

std::uint64_t CoherenceDomain::probe_cost(std::size_t actual_holders) const {
  switch (mode_) {
    case CoherenceMode::kSnoopBroadcast:
      // Probe every other cache; every probed cache answers.
      return 2 * (caches_.size() - 1);
    case CoherenceMode::kDirectory:
      // One directory lookup message plus one probe+ack per real sharer.
      return 1 + 2 * actual_holders;
  }
  return 0;
}

CoherenceAccess CoherenceDomain::read(std::size_t who, std::uint64_t addr) {
  ECO_CHECK(who < caches_.size());
  const std::uint64_t line = line_of(addr);
  Cache& cache = *caches_[who];
  ++stats_.reads;
  CoherenceAccess result;
  if (cache.state(line) != LineState::kInvalid) {
    cache.touch(line, /*write=*/false);
    cache.count_hit();
    ++stats_.hits;
    result.hit = true;
    return result;
  }
  cache.count_miss();
  ++stats_.misses;
  const auto sharers = holders(line, who);
  result.snoop_messages = probe_cost(sharers.size());
  stats_.snoop_messages += result.snoop_messages;
  bool forwarded = false;
  for (std::size_t s : sharers) {
    const LineState st = caches_[s]->state(line);
    if (st == LineState::kModified || st == LineState::kExclusive) {
      // Owner forwards data and downgrades to Shared.
      caches_[s]->downgrade(line);
      ++stats_.cache_to_cache;
      forwarded = true;
    }
  }
  if (!forwarded && !sharers.empty()) {
    // Clean shared copy forwarded by one sharer.
    ++stats_.cache_to_cache;
    forwarded = true;
  }
  if (!forwarded) ++stats_.memory_fetches;
  const LineState fill_state =
      sharers.empty() ? LineState::kExclusive : LineState::kShared;
  const CacheAccess fill = cache.fill(line, fill_state);
  if (fill.writeback) ++stats_.writebacks;
  return result;
}

CoherenceAccess CoherenceDomain::write(std::size_t who, std::uint64_t addr) {
  ECO_CHECK(who < caches_.size());
  const std::uint64_t line = line_of(addr);
  Cache& cache = *caches_[who];
  ++stats_.writes;
  CoherenceAccess result;
  const LineState st = cache.state(line);
  if (st == LineState::kModified || st == LineState::kExclusive) {
    cache.touch(line, /*write=*/true);
    cache.count_hit();
    ++stats_.hits;
    result.hit = true;
    return result;
  }
  // Shared hit still needs an upgrade (invalidate other sharers); an
  // Invalid line needs a read-for-ownership. Both probe the domain.
  const auto sharers = holders(line, who);
  result.snoop_messages = probe_cost(sharers.size());
  stats_.snoop_messages += result.snoop_messages;
  bool forwarded = false;
  for (std::size_t s : sharers) {
    if (caches_[s]->state(line) == LineState::kModified) {
      ++stats_.cache_to_cache;
      forwarded = true;
    }
    caches_[s]->invalidate(line);
    ++stats_.invalidations;
  }
  if (st == LineState::kShared) {
    // Upgrade in place: we already have the data.
    cache.count_hit();
    ++stats_.hits;
    result.hit = true;
    cache.fill(line, LineState::kModified);
    return result;
  }
  cache.count_miss();
  ++stats_.misses;
  if (!forwarded) {
    if (!sharers.empty()) {
      ++stats_.cache_to_cache;  // clean copy forwarded, then invalidated
    } else {
      ++stats_.memory_fetches;
    }
  }
  const CacheAccess fill = cache.fill(line, LineState::kModified);
  if (fill.writeback) ++stats_.writebacks;
  return result;
}

}  // namespace ecoscale
