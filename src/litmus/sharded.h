// Randomized concurrent litmus executor on the sharded engine.
//
// The exhaustive executor (executor.h) serializes every interleaving; this
// one runs the litmus program as genuinely concurrent traffic on a
// ShardedSimulator — one shard per Compute Node, the UNIMEM partition
// boundary — under a harness-level model of the UNIMEM ownership
// protocol:
//
//   * every page has one home shard holding its variables and its
//     serialization log; accesses are messages routed to the requester's
//     *view* of the owner, forwarded on staleness;
//   * migration packages variables + log and re-homes them, broadcasting
//     directory updates (views converge lazily — exactly the in-flight
//     window the migration litmuses probe);
//   * a crashed shard nacks accesses; requesters retry with linear
//     backoff and, after fault_max_retries-style exhaustion, fail the
//     page over to their own node (the dead shard's memory stays
//     readable for recovery, as in PgasSystem's backing store).
//
// Schedules are explored by seed-randomized *event timing perturbation*:
// every issue, retry and broadcast delay carries a SchedulePerturb jitter
// (a pure hash of (seed, thread, draw#)), so the schedule is a
// deterministic function of the seed alone. Together with the engine's
// canonical merge this makes a run byte-identical across `--sim-threads`
// values: same outcome, same per-page logs, same fingerprint.
#pragma once

#include <cstdint>
#include <set>

#include "common/units.h"
#include "litmus/oracle.h"
#include "litmus/program.h"

namespace ecoscale::litmus {

struct RandomizedConfig {
  /// ShardedSimulator worker threads (the --sim-threads knob).
  std::size_t sim_threads = 1;
  std::uint64_t seed = 1;
  /// Randomized schedules (independent perturbation seeds) per program.
  std::size_t rounds = 64;
  /// Fixed cross-shard hop latency; doubles as the engine lookahead.
  SimDuration hop = nanoseconds(200);
  /// Maximum perturbation added to each issue/retry/broadcast delay.
  SimDuration max_jitter = nanoseconds(500);
  /// Delay between a thread's op completing and its next op issuing.
  SimDuration local_delay = nanoseconds(20);
  /// Dead-owner handling, mirroring PgasConfig's retry contract.
  std::size_t max_retries = 3;
  SimDuration retry_timeout = microseconds(2);
  SimDuration retry_backoff = microseconds(1);
};

/// One perturbation round. `fingerprint` hashes the outcome, every page's
/// final owner and serialization log, and the protocol counters — the
/// value the --sim-threads determinism contract compares.
struct RandomizedRun {
  Outcome outcome;
  std::uint64_t fingerprint = 0;
  std::uint64_t events = 0;
  std::uint64_t nacks = 0;       // accesses bounced off a dead shard
  std::uint64_t failovers = 0;   // pages re-homed via the recovery path
  std::uint64_t migrations = 0;  // explicit ownership transfers
  std::uint64_t forwards = 0;    // stale-view forwarding hops
};

/// Aggregate over `rounds` seeds.
struct RandomizedResult {
  std::set<Outcome> outcomes;
  std::uint64_t fingerprint = 0;  // chained over the per-round fingerprints
  std::uint64_t events = 0;
  std::uint64_t nacks = 0;
  std::uint64_t failovers = 0;
  std::uint64_t migrations = 0;
  std::uint64_t forwards = 0;
};

/// Run one round with perturbation seed derived from (config.seed, round).
RandomizedRun run_randomized_once(const LitmusProgram& program,
                                  const RandomizedConfig& config,
                                  std::uint64_t round);

RandomizedResult run_randomized(const LitmusProgram& program,
                                const RandomizedConfig& config);

/// run_randomized, then assert every observed outcome is oracle-allowed.
RandomizedResult check_randomized(const LitmusProgram& program,
                                  const Oracle& oracle,
                                  const RandomizedConfig& config);

}  // namespace ecoscale::litmus
