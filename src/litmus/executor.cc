#include "litmus/executor.h"

#include <algorithm>
#include <cstring>
#include <functional>

#include "common/check.h"
#include "common/health.h"
#include "common/units.h"
#include "unimem/pgas.h"

namespace ecoscale::litmus {

namespace {

constexpr std::size_t kNoSlot = ~std::size_t{0};

std::uint64_t read_u64(const PgasSystem& pgas, GlobalAddress addr) {
  std::uint8_t buf[8] = {};
  pgas.read_bytes(addr, buf);
  std::uint64_t v = 0;
  std::memcpy(&v, buf, sizeof v);
  return v;
}

void write_u64(PgasSystem& pgas, GlobalAddress addr, std::uint64_t v) {
  std::uint8_t buf[8];
  std::memcpy(buf, &v, sizeof v);
  pgas.write_bytes(addr, buf);
}

struct HookCounters {
  std::uint64_t accesses = 0;
  std::uint64_t ownership_changes = 0;
  std::uint64_t retries = 0;
};

/// Execute one thread-id schedule against a fresh PgasSystem. The time
/// cursor is monotone across ops, so the real system serializes them in
/// exactly the schedule's order; values flow through the functional
/// backing store (loads/stores) and atomic_rmw (exact), and crash/repair
/// edges script the HealthRegistry the dead-owner path consults.
Outcome execute(const LitmusProgram& program,
                const std::vector<std::size_t>& schedule,
                HookCounters* hooks) {
  PgasConfig cfg;
  cfg.nodes = program.nodes;
  cfg.workers_per_node = 1;
  // Keep the dead-owner retry window short: crash litmuses run the full
  // retry + failover path thousands of times across the interleavings.
  cfg.fault_retry_timeout = microseconds(2);
  cfg.fault_retry_backoff = microseconds(1);
  PgasSystem pgas(cfg);
  HealthRegistry health(program.nodes, /*workers_per_node=*/1);
  pgas.set_health(&health);

  PgasObserver observer;
  if (hooks != nullptr) {
    observer.on_access = [hooks](const PgasObserver::Access&) {
      ++hooks->accesses;
    };
    observer.on_ownership_change = [hooks](PageId, NodeId, NodeId, SimTime,
                                           SimTime, bool) {
      ++hooks->ownership_changes;
    };
    observer.on_retry = [hooks](WorkerCoord, PageId, std::size_t, SimTime) {
      ++hooks->retries;
    };
  }
  pgas.set_observer(&observer);

  std::vector<GlobalAddress> base;
  base.reserve(program.pages);
  for (std::size_t p = 0; p < program.pages; ++p) {
    base.push_back(pgas.alloc(program.page_owner[p], 0, kPageSize));
  }

  std::vector<std::vector<std::size_t>> slot_of(program.threads.size());
  std::size_t next_slot = 0;
  for (std::size_t t = 0; t < program.threads.size(); ++t) {
    for (const Op& op : program.threads[t].ops) {
      slot_of[t].push_back(op.observes() ? next_slot++ : kNoSlot);
    }
  }

  Outcome out(program.outcome_size(), 0);
  std::vector<std::size_t> cursor(program.threads.size(), 0);
  SimTime now = 0;
  for (const std::size_t t : schedule) {
    ECO_CHECK_MSG(t < program.threads.size() &&
                      cursor[t] < program.threads[t].ops.size(),
                  "schedule does not match the program's op counts");
    const Op& op = program.threads[t].ops[cursor[t]];
    const WorkerCoord who{program.threads[t].node, 0};
    switch (op.kind) {
      case OpKind::kLoad: {
        const GlobalAddress addr = base[op.page] + op.var * 8;
        const MemAccess r = pgas.load(who, addr, 8, now);
        out[slot_of[t][cursor[t]]] = read_u64(pgas, addr);
        now = std::max(now, r.finish);
        break;
      }
      case OpKind::kStore: {
        const GlobalAddress addr = base[op.page] + op.var * 8;
        const MemAccess r = pgas.store(who, addr, 8, now);
        write_u64(pgas, addr, op.value);
        now = std::max(now, r.finish);
        break;
      }
      case OpKind::kAtomic: {
        const GlobalAddress addr = base[op.page] + op.var * 8;
        const AtomicResult r =
            pgas.atomic_rmw(who, addr, op.atomic, op.value, now, op.compare);
        out[slot_of[t][cursor[t]]] = r.old_value;
        now = std::max(now, r.finish);
        break;
      }
      case OpKind::kMigrate: {
        const MigrationResult r =
            pgas.migrate_page(page_of(base[op.page]), op.dst_node, now);
        now = std::max(now, r.finish);
        break;
      }
      case OpKind::kCrash:
        health.mark_down(op.dst_node);  // workers_per_node == 1
        break;
      case OpKind::kRepair:
        health.mark_up(op.dst_node);
        break;
    }
    ++cursor[t];
    ++now;  // strict serialization between schedule steps
  }

  const std::size_t obs_slots = program.observer_slots();
  for (std::size_t p = 0; p < program.pages; ++p) {
    for (std::size_t v = 0; v < kVarsPerPage; ++v) {
      out[obs_slots + p * kVarsPerPage + v] =
          read_u64(pgas, base[p] + v * 8);
    }
  }
  return out;
}

std::size_t interleaving_count(const LitmusProgram& program) {
  // multinomial(total; n_0, ..., n_k), built incrementally as
  // prod C(prefix_total, n_t) — each factor divides exactly.
  std::size_t count = 1;
  std::size_t total = 0;
  for (const auto& t : program.threads) {
    for (std::size_t i = 1; i <= t.ops.size(); ++i) {
      ++total;
      count = count * total / i;
    }
  }
  return count;
}

}  // namespace

Outcome run_schedule(const LitmusProgram& program,
                     const std::vector<std::size_t>& schedule) {
  program.validate();
  ECO_CHECK(schedule.size() == program.total_ops());
  return execute(program, schedule, nullptr);
}

ExhaustiveResult run_exhaustive(const LitmusProgram& program,
                                ExhaustiveOptions options) {
  program.validate();
  ECO_CHECK_MSG(interleaving_count(program) <= options.max_interleavings,
                "program '" << program.name
                            << "' has too many interleavings to enumerate; "
                               "use the randomized sharded executor");

  ExhaustiveResult result;
  HookCounters hooks;
  std::vector<std::size_t> schedule;
  std::vector<std::size_t> remaining(program.threads.size());
  for (std::size_t t = 0; t < program.threads.size(); ++t) {
    remaining[t] = program.threads[t].ops.size();
  }
  std::function<void()> dfs = [&] {
    if (schedule.size() == program.total_ops()) {
      ++result.interleavings;
      result.outcomes.insert(execute(program, schedule, &hooks));
      return;
    }
    for (std::size_t t = 0; t < program.threads.size(); ++t) {
      if (remaining[t] == 0) continue;
      --remaining[t];
      schedule.push_back(t);
      dfs();
      schedule.pop_back();
      ++remaining[t];
    }
  };
  dfs();
  result.observed_accesses = hooks.accesses;
  result.ownership_changes = hooks.ownership_changes;
  result.retries = hooks.retries;
  return result;
}

ExhaustiveResult check_exhaustive(const LitmusProgram& program,
                                  const Oracle& oracle,
                                  ExhaustiveOptions options) {
  ExhaustiveResult result = run_exhaustive(program, options);
  check_outcomes(oracle, result.outcomes, "exhaustive executor");
  return result;
}

}  // namespace ecoscale::litmus
