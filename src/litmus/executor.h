// Exhaustive litmus executor over the real PgasSystem.
//
// For small programs (a few ops per thread) the executor enumerates EVERY
// interleaving of the threads' program-order op streams, runs each one
// against a fresh PgasSystem — real access timing, real migrate_page, the
// real dead-owner retry/failover path, with a HealthRegistry scripted by
// the program's crash/repair edges — and collects the set of outcomes the
// implementation actually produced. Each interleaving is executed
// serially under a monotone time cursor, so the observed set is the
// implementation's sequentially-reachable outcomes; the oracle's allowed
// set (a superset — partition consistency admits more) must contain it.
// Randomized, genuinely-concurrent schedules are the sharded executor's
// job (sharded.h).
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "litmus/oracle.h"
#include "litmus/program.h"

namespace ecoscale::litmus {

struct ExhaustiveOptions {
  /// Hard cap on the interleaving count (checked up front from the
  /// multinomial): 2 threads x 4 ops is 70, 3 x 3 is 1680, 4 x 3 is
  /// 369600. Programs past the cap belong to the randomized executor.
  std::size_t max_interleavings = 500'000;
};

struct ExhaustiveResult {
  std::set<Outcome> outcomes;
  std::size_t interleavings = 0;
  // PgasObserver traffic accumulated across all interleavings — pins
  // that the observation hooks actually fire on every path the litmus
  // exercises.
  std::uint64_t observed_accesses = 0;
  std::uint64_t ownership_changes = 0;  // migrations + failovers
  std::uint64_t retries = 0;            // dead-owner retry attempts
};

/// Run ONE interleaving, given as a thread-id sequence in which thread i
/// appears exactly program.threads[i].ops.size() times (its ops run in
/// program order at those positions).
Outcome run_schedule(const LitmusProgram& program,
                     const std::vector<std::size_t>& schedule);

/// Enumerate and run every interleaving.
ExhaustiveResult run_exhaustive(const LitmusProgram& program,
                                ExhaustiveOptions options = {});

/// run_exhaustive, then assert every observed outcome is oracle-allowed
/// (throws CheckError on the first violation).
ExhaustiveResult check_exhaustive(const LitmusProgram& program,
                                  const Oracle& oracle,
                                  ExhaustiveOptions options = {});

}  // namespace ecoscale::litmus
