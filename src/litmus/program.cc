#include "litmus/program.h"

#include <sstream>

namespace ecoscale::litmus {

std::string format_outcome(const LitmusProgram& program,
                           const Outcome& outcome) {
  std::ostringstream os;
  std::size_t slot = 0;
  for (std::size_t t = 0; t < program.threads.size(); ++t) {
    for (std::size_t i = 0; i < program.threads[t].ops.size(); ++i) {
      if (!program.threads[t].ops[i].observes()) continue;
      ECO_CHECK(slot < outcome.size());
      os << "t" << t << ".op" << i << "=" << outcome[slot++] << " ";
    }
  }
  os << "|";
  for (std::size_t p = 0; p < program.pages; ++p) {
    for (std::size_t v = 0; v < kVarsPerPage; ++v) {
      ECO_CHECK(slot < outcome.size());
      os << " p" << p << ".v" << v << "=" << outcome[slot++];
    }
  }
  return os.str();
}

std::vector<LitmusProgram> standard_suite() {
  std::vector<LitmusProgram> suite;

  // Store buffering on ONE page: per-page owner order + program order
  // forbid both loads returning 0 — the classic SB "forbidden" outcome,
  // adapted from cross-location SC to UNIMEM's per-page guarantee.
  {
    LitmusProgram p;
    p.name = "sb_same_page";
    p.nodes = 2;
    p.pages = 1;
    p.page_owner = {0};
    p.threads = {{0, {store(0, 0, 1), load(0, 1)}},
                 {1, {store(0, 1, 1), load(0, 0)}}};
    suite.push_back(std::move(p));
  }

  // Store buffering across TWO pages (distinct owners): partition
  // consistency orders each page independently, so r0 = r1 = 0 is allowed
  // — the outcome the same-page variant forbids.
  {
    LitmusProgram p;
    p.name = "sb_two_pages";
    p.nodes = 2;
    p.pages = 2;
    p.page_owner = {0, 1};
    p.threads = {{0, {store(0, 0, 1), load(1, 0)}},
                 {1, {store(1, 0, 1), load(0, 0)}}};
    suite.push_back(std::move(p));
  }

  // Message passing on one page: observing the flag implies observing the
  // data (same page's total order contains both stores in program order).
  {
    LitmusProgram p;
    p.name = "mp_same_page";
    p.nodes = 2;
    p.pages = 1;
    p.page_owner = {0};
    p.threads = {{0, {store(0, 0, 1), store(0, 1, 1)}},
                 {1, {load(0, 1), load(0, 0)}}};
    suite.push_back(std::move(p));
  }

  // Message passing with data and flag on different pages: the stale read
  // (flag = 1, data = 0) is allowed — pages order independently.
  {
    LitmusProgram p;
    p.name = "mp_two_pages";
    p.nodes = 2;
    p.pages = 2;
    p.page_owner = {0, 1};
    p.threads = {{0, {store(0, 0, 1), store(1, 0, 1)}},
                 {1, {load(1, 0), load(0, 0)}}};
    suite.push_back(std::move(p));
  }

  // Three remote counters: atomics serialize at the owning node, so the
  // observed old values are a permutation of {0, 1, 2} and the final
  // count is exactly 3 — a lost update is outside the allowed set.
  {
    LitmusProgram p;
    p.name = "atomic_inc";
    p.nodes = 3;
    p.pages = 1;
    p.page_owner = {0};
    p.threads = {{0, {fetch_add(0, 0, 1)}},
                 {1, {fetch_add(0, 0, 1)}},
                 {2, {fetch_add(0, 0, 1)}}};
    suite.push_back(std::move(p));
  }

  // Migration edge: ownership moves mid-stream while the writer keeps
  // writing monotonically increasing values and a third node keeps
  // reading. Migration is value-neutral, so the reader's two loads may
  // never regress (r1 > r2 is outside the model) and no write may vanish.
  {
    LitmusProgram p;
    p.name = "migration_inflight";
    p.nodes = 3;
    p.pages = 1;
    p.page_owner = {0};
    p.threads = {{0, {store(0, 0, 1), store(0, 0, 2)}},
                 {1, {migrate(0, 1), load(0, 0)}},
                 {2, {load(0, 0), load(0, 0)}}};
    suite.push_back(std::move(p));
  }

  // Crash/failover edge: the page is homed on a node that hosts no
  // program thread and is crashed between a store and the loads, so a
  // later access pays dead-owner retries and re-homes the page. Failover
  // must preserve the store — t0's own load must return 1 (program
  // order), and the final value must be 1 (no lost update).
  {
    LitmusProgram p;
    p.name = "failover_lost_update";
    p.nodes = 3;
    p.pages = 1;
    p.page_owner = {2};
    p.threads = {{0, {store(0, 0, 1), crash(2), load(0, 0)}},
                 {1, {load(0, 0)}}};
    suite.push_back(std::move(p));
  }

  for (const auto& p : suite) p.validate();
  return suite;
}

}  // namespace ecoscale::litmus
