#include "litmus/oracle.h"

#include <array>
#include <cstring>
#include <functional>
#include <vector>

#include "common/check.h"

namespace ecoscale::litmus {

namespace {

constexpr std::size_t kNoSlot = ~std::size_t{0};

/// One memory op projected onto a single page's linearization problem.
struct PageOp {
  const Op* op = nullptr;
  std::size_t slot = kNoSlot;  // global observation slot, if observing
};

/// Every linearization result for one page: observed values in the page's
/// canonical (thread, program-order) slot order, then the kVarsPerPage
/// final values.
using PagePartial = std::vector<std::uint64_t>;

}  // namespace

Oracle::Oracle(const LitmusProgram& program) : program_(program) {
  program_.validate();

  // Global observation-slot layout: thread-major, program order.
  std::vector<std::vector<std::size_t>> slot_of(program_.threads.size());
  std::size_t next_slot = 0;
  for (std::size_t t = 0; t < program_.threads.size(); ++t) {
    for (const Op& op : program_.threads[t].ops) {
      slot_of[t].push_back(op.observes() ? next_slot++ : kNoSlot);
    }
  }
  const std::size_t obs_slots = next_slot;

  // The allowed set is the cross-product of per-page results; build it
  // page by page over a growing set of partially-filled outcomes.
  std::set<Outcome> outcomes;
  outcomes.insert(Outcome(program_.outcome_size(), 0));

  for (std::size_t p = 0; p < program_.pages; ++p) {
    // This page's per-thread program-order op lists plus the canonical
    // order its observation slots appear in a PagePartial. Each observing
    // op is tagged with its canonical position so DFS results land in
    // slot order no matter which linearization produced them.
    std::vector<std::vector<PageOp>> per_thread(program_.threads.size());
    std::vector<std::size_t> page_slots;
    for (std::size_t t = 0; t < program_.threads.size(); ++t) {
      for (std::size_t i = 0; i < program_.threads[t].ops.size(); ++i) {
        const Op& op = program_.threads[t].ops[i];
        if (!op.is_memory() || op.page != p) continue;
        PageOp ref{&op, kNoSlot};
        if (op.observes()) {
          ref.slot = page_slots.size();  // canonical index within the page
          page_slots.push_back(slot_of[t][i]);
        }
        per_thread[t].push_back(ref);
      }
    }

    // Enumerate every interleaving of the per-thread lists (program order
    // within a thread is fixed — that is the model's per-thread rule).
    std::set<PagePartial> partials;
    std::vector<std::size_t> cursor(program_.threads.size(), 0);
    std::uint64_t vars[kVarsPerPage] = {};
    std::vector<std::uint64_t> obs(page_slots.size(), 0);
    std::function<void()> dfs = [&] {
      bool done = true;
      for (std::size_t t = 0; t < per_thread.size(); ++t) {
        if (cursor[t] >= per_thread[t].size()) continue;
        done = false;
        const PageOp& next = per_thread[t][cursor[t]];
        std::uint64_t saved[kVarsPerPage];
        std::memcpy(saved, vars, sizeof saved);
        const std::uint64_t observed = apply_memory_op(*next.op, vars);
        std::uint64_t saved_obs = 0;
        if (next.slot != kNoSlot) {
          saved_obs = obs[next.slot];
          obs[next.slot] = observed;
        }
        ++cursor[t];
        dfs();
        --cursor[t];
        if (next.slot != kNoSlot) obs[next.slot] = saved_obs;
        std::memcpy(vars, saved, sizeof saved);
      }
      if (done) {
        ++linearizations_;
        PagePartial full = obs;
        full.insert(full.end(), vars, vars + kVarsPerPage);
        partials.insert(std::move(full));
      }
    };
    dfs();

    // Graft this page's results onto every outcome built so far. The
    // trace values land in the page's global observation slots; finals
    // land in the page's final-value block.
    std::set<Outcome> grown;
    for (const Outcome& base : outcomes) {
      for (const PagePartial& part : partials) {
        Outcome o = base;
        for (std::size_t i = 0; i < page_slots.size(); ++i) {
          o[page_slots[i]] = part[i];
        }
        for (std::size_t v = 0; v < kVarsPerPage; ++v) {
          o[obs_slots + p * kVarsPerPage + v] = part[page_slots.size() + v];
        }
        grown.insert(std::move(o));
      }
    }
    outcomes = std::move(grown);
  }

  allowed_ = std::move(outcomes);
}

void check_outcomes(const Oracle& oracle, const std::set<Outcome>& observed,
                    const std::string& executor) {
  for (const Outcome& o : observed) {
    ECO_CHECK_MSG(oracle.allows(o),
                  executor << " produced an outcome the memory model "
                              "forbids for '"
                           << oracle.program().name
                           << "': " << format_outcome(oracle.program(), o));
  }
}

}  // namespace ecoscale::litmus
