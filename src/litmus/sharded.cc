#include "litmus/sharded.h"

#include <algorithm>
#include <array>
#include <vector>

#include "common/check.h"
#include "sim/parallel.h"
#include "sim/perturb.h"

namespace ecoscale::litmus {

namespace {

constexpr std::size_t kNoSlot = ~std::size_t{0};
constexpr std::uint8_t kMarkerThread = 0xff;  // ownership-change log entry

/// One entry of a page's serialization log. Memory ops append
/// (thread, op index, kind, value stored/observed); ownership changes
/// append a marker, so the log also witnesses where the order re-homed.
struct LogEntry {
  std::uint8_t thread = 0;
  std::uint8_t op_index = 0;
  std::uint8_t kind = 0;
  std::uint64_t value = 0;
};

struct PageState {
  bool present = false;  // this shard holds the page (IS the owner)
  std::array<std::uint64_t, kVarsPerPage> vars{};
  std::vector<LogEntry> log;
};

/// Per-shard state; an action executing on shard `n` touches nodes_[n]
/// only (plus, on a thread's home shard, that thread's ThreadState and
/// outcome slots — disjoint per shard).
struct NodeState {
  bool alive = true;
  std::vector<NodeId> owner_view;  // per page, possibly stale
  std::vector<PageState> pages;
  // Protocol counters, summed after the run (per-shard so no two engine
  // threads ever write the same counter).
  std::uint64_t nacks = 0;
  std::uint64_t failovers = 0;
  std::uint64_t migrations = 0;
  std::uint64_t forwards = 0;
};

struct ThreadState {
  std::size_t cursor = 0;    // next op (program order)
  std::size_t attempts = 0;  // dead-owner nacks for the current op
  std::uint64_t draws = 0;   // jitter stream position
};

/// An access or migrate in flight: enough to route, serve and complete.
struct AccessMsg {
  std::size_t thread = 0;
  std::size_t op_index = 0;
  std::uint8_t hops = 0;
};

void fnv_u64(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 0x100000001b3ull;
  }
}

class ShardedLitmusRun {
 public:
  ShardedLitmusRun(const LitmusProgram& program,
                   const RandomizedConfig& config, std::uint64_t round)
      : program_(program),
        config_(config),
        perturb_(config.seed + 0x9e3779b97f4a7c15ull * (round + 1)),
        sim_([&] {
          ShardedConfig sc;
          sc.shards = program.nodes;
          sc.lookahead = config.hop;
          sc.threads = config.sim_threads;
          sc.window_mode = WindowMode::kFixedWindow;
          return sc;
        }()) {
    program_.validate();
    ECO_CHECK_MSG(config_.hop > 0 && config_.local_delay > 0,
                  "litmus hop/local delays must be positive");
    nodes_.resize(program_.nodes);
    for (std::size_t n = 0; n < program_.nodes; ++n) {
      nodes_[n].owner_view.assign(program_.page_owner.begin(),
                                  program_.page_owner.end());
      nodes_[n].pages.resize(program_.pages);
    }
    for (std::size_t p = 0; p < program_.pages; ++p) {
      nodes_[program_.page_owner[p]].pages[p].present = true;
    }
    threads_.resize(program_.threads.size());
    slot_of_.resize(program_.threads.size());
    std::size_t next_slot = 0;
    for (std::size_t t = 0; t < program_.threads.size(); ++t) {
      for (const Op& op : program_.threads[t].ops) {
        slot_of_[t].push_back(op.observes() ? next_slot++ : kNoSlot);
      }
    }
    outcome_.assign(program_.outcome_size(), 0);
  }

  RandomizedRun run() {
    for (std::size_t t = 0; t < program_.threads.size(); ++t) {
      if (program_.threads[t].ops.empty()) continue;
      sim_.shard(home(t)).schedule_at(1 + jitter(t), [this, t] { issue(t); });
    }
    sim_.run();

    for (std::size_t t = 0; t < threads_.size(); ++t) {
      ECO_CHECK_MSG(threads_[t].cursor == program_.threads[t].ops.size(),
                    "litmus thread " << t << " did not complete");
    }

    RandomizedRun result;
    const std::size_t obs_slots = program_.observer_slots();
    std::uint64_t fp = 0xcbf29ce484222325ull;
    for (std::size_t p = 0; p < program_.pages; ++p) {
      std::size_t owner = nodes_.size();
      for (std::size_t n = 0; n < nodes_.size(); ++n) {
        if (!nodes_[n].pages[p].present) continue;
        ECO_CHECK_MSG(owner == nodes_.size(),
                      "page " << p << " owned by two shards");
        owner = n;
      }
      ECO_CHECK_MSG(owner < nodes_.size(), "page " << p << " lost");
      const PageState& page = nodes_[owner].pages[p];
      for (std::size_t v = 0; v < kVarsPerPage; ++v) {
        outcome_[obs_slots + p * kVarsPerPage + v] = page.vars[v];
      }
      fnv_u64(fp, owner);
      fnv_u64(fp, page.log.size());
      for (const LogEntry& e : page.log) {
        fnv_u64(fp, (std::uint64_t{e.thread} << 16) |
                        (std::uint64_t{e.op_index} << 8) | e.kind);
        fnv_u64(fp, e.value);
      }
    }
    for (const std::uint64_t v : outcome_) fnv_u64(fp, v);
    for (const NodeState& n : nodes_) {
      result.nacks += n.nacks;
      result.failovers += n.failovers;
      result.migrations += n.migrations;
      result.forwards += n.forwards;
    }
    fnv_u64(fp, result.nacks);
    fnv_u64(fp, result.failovers);
    fnv_u64(fp, result.migrations);
    fnv_u64(fp, result.forwards);
    result.outcome = outcome_;
    result.fingerprint = fp;
    result.events = sim_.events_processed();
    return result;
  }

 private:
  std::size_t home(std::size_t t) const { return program_.threads[t].node; }
  const Op& op_of(const AccessMsg& m) const {
    return program_.threads[m.thread].ops[m.op_index];
  }
  /// Jitter draws happen only on the thread's home shard (issue, retry,
  /// complete), so each stream's draw order is the thread's own event
  /// order — deterministic, engine-thread-count invariant.
  SimDuration jitter(std::size_t t) {
    return perturb_.jitter(t, threads_[t].draws++, config_.max_jitter);
  }

  /// Cross-shard post, or a same-shard event when source == destination
  /// (a forwarding chain legitimately routes back to the requester's own
  /// shard once a failover re-homed the page there).
  template <typename F>
  void deliver(std::size_t from, std::size_t to, SimTime at, F&& fn) {
    if (from == to) {
      sim_.shard(from).schedule_at(at, std::forward<F>(fn));
    } else {
      sim_.post(from, to, at, std::forward<F>(fn));
    }
  }

  /// Dispatch thread `t`'s current op. Runs on the home shard; re-entered
  /// after nack backoff, redirects and failover installs.
  void issue(std::size_t t) {
    const std::size_t s = home(t);
    const SimTime now = sim_.shard(s).now();
    const Op& op = program_.threads[t].ops[threads_[t].cursor];
    const AccessMsg msg{t, threads_[t].cursor, 0};
    switch (op.kind) {
      case OpKind::kLoad:
      case OpKind::kStore:
      case OpKind::kAtomic:
        if (nodes_[s].pages[op.page].present) {
          serve(s, msg);  // owner is local: serialize right here
        } else {
          deliver(s, nodes_[s].owner_view[op.page],
                  now + config_.hop + jitter(t),
                  [this, msg, d = nodes_[s].owner_view[op.page]] {
                    access_at(d, msg);
                  });
        }
        break;
      case OpKind::kMigrate:
        deliver(s, nodes_[s].owner_view[op.page],
                now + config_.hop + jitter(t),
                [this, msg, d = nodes_[s].owner_view[op.page]] {
                  migrate_at(d, msg);
                });
        break;
      case OpKind::kCrash:
      case OpKind::kRepair: {
        // Fire-and-forget: the health transition travels as a message and
        // genuinely races the thread's subsequent accesses.
        const bool up = op.kind == OpKind::kRepair;
        const NodeId target = op.dst_node;
        deliver(s, target, now + config_.hop + jitter(t),
                [this, target, up] { nodes_[target].alive = up; });
        complete(t);
        break;
      }
    }
  }

  /// A remote access arriving at shard `d` (the requester's view of the
  /// owner at issue time — possibly stale, possibly dead).
  void access_at(std::size_t d, AccessMsg msg) {
    const Op& op = op_of(msg);
    const SimTime now = sim_.shard(d).now();
    if (!nodes_[d].alive) {
      ++nodes_[d].nacks;
      deliver(d, home(msg.thread), now + config_.hop,
              [this, msg] { on_nack(msg); });
      return;
    }
    if (nodes_[d].pages[op.page].present) {
      serve(d, msg);
      return;
    }
    forward(d, msg,
            [this](std::size_t next, AccessMsg m) { access_at(next, m); });
  }

  /// Serialize the op at owner shard `d`: apply to the page, append to
  /// its log, return the observation to the requester.
  void serve(std::size_t d, const AccessMsg& msg) {
    const Op& op = op_of(msg);
    PageState& page = nodes_[d].pages[op.page];
    ECO_CHECK(page.present);
    const std::uint64_t observed = apply_memory_op(op, page.vars.data());
    page.log.push_back(LogEntry{static_cast<std::uint8_t>(msg.thread),
                                static_cast<std::uint8_t>(msg.op_index),
                                static_cast<std::uint8_t>(op.kind),
                                op.observes() ? observed : op.value});
    const std::size_t h = home(msg.thread);
    if (d == h) {
      record(msg, observed);
      complete(msg.thread);
    } else {
      const SimTime now = sim_.shard(d).now();
      deliver(d, h, now + config_.hop, [this, msg, observed] {
        record(msg, observed);
        complete(msg.thread);
      });
    }
  }

  /// Stale view at `d`: pass the message one hop toward the current
  /// owner. Views converge (every transfer broadcasts), so chains are
  /// short; the hop bound catches protocol bugs, not live routes.
  template <typename Next>
  void forward(std::size_t d, AccessMsg msg, Next&& next) {
    const Op& op = op_of(msg);
    const std::size_t to = nodes_[d].owner_view[op.page];
    ECO_CHECK_MSG(to != d, "shard forwards page "
                               << static_cast<int>(op.page) << " to itself");
    ++msg.hops;
    ECO_CHECK_MSG(msg.hops < 64, "litmus forwarding chain does not converge");
    ++nodes_[d].forwards;
    const SimTime now = sim_.shard(d).now();
    deliver(d, to, now + config_.hop,
            [next = std::forward<Next>(next), to, msg] { next(to, msg); });
  }

  /// Access bounced off a dead shard. Bounded linear-backoff retries —
  /// each re-issue re-reads the (possibly repaired or re-homed) state —
  /// then page failover to the requester's own node, mirroring
  /// PgasSystem::fail_over_dead_owner.
  void on_nack(AccessMsg msg) {
    const std::size_t s = home(msg.thread);
    const SimTime now = sim_.shard(s).now();
    ThreadState& th = threads_[msg.thread];
    ++th.attempts;
    if (th.attempts < config_.max_retries) {
      const SimDuration backoff =
          config_.retry_timeout + th.attempts * config_.retry_backoff;
      sim_.shard(s).schedule_at(now + backoff + jitter(msg.thread),
                                [this, t = msg.thread] { issue(t); });
      return;
    }
    th.attempts = 0;
    const Op& op = op_of(msg);
    const std::size_t dead = nodes_[s].owner_view[op.page];
    deliver(s, dead, now + config_.hop + jitter(msg.thread),
            [this, msg, dead] { fetch_at(dead, msg); });
  }

  /// Failover fetch at the presumed-dead owner. Its memory stays readable
  /// for recovery (as PgasSystem's backing store does), so a genuinely
  /// dead owner hands the page — variables AND serialization log — to the
  /// requester's node. A repaired or already-re-homed owner degenerates
  /// to the normal access path.
  void fetch_at(std::size_t d, AccessMsg msg) {
    const Op& op = op_of(msg);
    const SimTime now = sim_.shard(d).now();
    PageState& page = nodes_[d].pages[op.page];
    if (!page.present) {
      // Someone else already re-homed it; send the requester our view.
      deliver(d, home(msg.thread), now + config_.hop,
              [this, msg, owner = nodes_[d].owner_view[op.page]] {
                on_redirect(msg, owner);
              });
      return;
    }
    if (nodes_[d].alive) {  // repair won the race: no failover needed
      access_at(d, msg);
      return;
    }
    ++nodes_[d].failovers;
    const std::size_t target = home(msg.thread);
    auto vars = page.vars;
    auto log = std::move(page.log);
    page = PageState{};
    nodes_[d].owner_view[op.page] = static_cast<NodeId>(target);
    deliver(d, target, now + config_.hop,
            [this, msg, target, vars, log = std::move(log)]() mutable {
              install(target, msg, vars, std::move(log), /*failover=*/true);
            });
  }

  /// Updated-owner hint after a lost failover race: fix the view and
  /// re-drive the op against the new owner.
  void on_redirect(AccessMsg msg, NodeId owner) {
    const std::size_t s = home(msg.thread);
    const Op& op = op_of(msg);
    if (!nodes_[s].pages[op.page].present && owner != s) {
      nodes_[s].owner_view[op.page] = owner;
    }
    issue(msg.thread);
  }

  /// Explicit migrate request arriving at shard `d`.
  void migrate_at(std::size_t d, AccessMsg msg) {
    const Op& op = op_of(msg);
    const SimTime now = sim_.shard(d).now();
    PageState& page = nodes_[d].pages[op.page];
    if (!page.present) {
      forward(d, msg,
              [this](std::size_t next, AccessMsg m) { migrate_at(next, m); });
      return;
    }
    ECO_CHECK_MSG(nodes_[d].alive, "litmus migrate reached a dead owner");
    ++nodes_[d].migrations;
    const std::size_t dst = op.dst_node;
    if (dst == d) {  // already home: ack only
      ack_migrate(d, msg);
      return;
    }
    auto vars = page.vars;
    auto log = std::move(page.log);
    page = PageState{};
    nodes_[d].owner_view[op.page] = static_cast<NodeId>(dst);
    deliver(d, dst, now + config_.hop,
            [this, msg, dst, vars, log = std::move(log)]() mutable {
              install(dst, msg, vars, std::move(log), /*failover=*/false);
            });
  }

  /// Install a transferred page at `d`: adopt variables + log, mark the
  /// re-homing in the log, broadcast the new owner, resume the requester.
  void install(std::size_t d, const AccessMsg& msg,
               const std::array<std::uint64_t, kVarsPerPage>& vars,
               std::vector<LogEntry> log, bool failover) {
    const Op& op = op_of(msg);
    const SimTime now = sim_.shard(d).now();
    PageState& page = nodes_[d].pages[op.page];
    ECO_CHECK_MSG(!page.present, "page installed twice");
    page.present = true;
    page.vars = vars;
    page.log = std::move(log);
    page.log.push_back(LogEntry{kMarkerThread, 0,
                                static_cast<std::uint8_t>(failover ? 1 : 2),
                                static_cast<std::uint64_t>(d)});
    nodes_[d].owner_view[op.page] = static_cast<NodeId>(d);
    for (std::size_t n = 0; n < nodes_.size(); ++n) {
      if (n == d) continue;
      deliver(d, n, now + config_.hop,
              [this, n, d, p = op.page] {
                // Stale broadcasts must not displace a shard that holds
                // the page or point it at itself while it does not.
                if (!nodes_[n].pages[p].present &&
                    static_cast<std::size_t>(d) != n) {
                  nodes_[n].owner_view[p] = static_cast<NodeId>(d);
                }
              });
    }
    if (failover) {
      // Failover targets the requester's own node: the blocked access is
      // local now — re-drive it to completion.
      ECO_CHECK(d == home(msg.thread));
      issue(msg.thread);
    } else {
      ack_migrate(d, msg);
    }
  }

  void ack_migrate(std::size_t d, const AccessMsg& msg) {
    const std::size_t h = home(msg.thread);
    if (d == h) {
      complete(msg.thread);
      return;
    }
    const SimTime now = sim_.shard(d).now();
    deliver(d, h, now + config_.hop,
            [this, t = msg.thread] { complete(t); });
  }

  /// Record an observation into the thread's outcome slot (home shard
  /// only; slots are disjoint across shards).
  void record(const AccessMsg& msg, std::uint64_t observed) {
    const std::size_t slot = slot_of_[msg.thread][msg.op_index];
    if (slot != kNoSlot) outcome_[slot] = observed;
  }

  /// Current op done: advance program order, issue the next op after the
  /// thread-local delay (+ jitter).
  void complete(std::size_t t) {
    const std::size_t s = home(t);
    ThreadState& th = threads_[t];
    ++th.cursor;
    th.attempts = 0;
    if (th.cursor >= program_.threads[t].ops.size()) return;
    const SimTime now = sim_.shard(s).now();
    sim_.shard(s).schedule_at(now + config_.local_delay + jitter(t),
                              [this, t] { issue(t); });
  }

  LitmusProgram program_;
  RandomizedConfig config_;
  SchedulePerturb perturb_;
  ShardedSimulator sim_;
  std::vector<NodeState> nodes_;
  std::vector<ThreadState> threads_;
  std::vector<std::vector<std::size_t>> slot_of_;
  Outcome outcome_;
};

}  // namespace

RandomizedRun run_randomized_once(const LitmusProgram& program,
                                  const RandomizedConfig& config,
                                  std::uint64_t round) {
  ShardedLitmusRun run(program, config, round);
  return run.run();
}

RandomizedResult run_randomized(const LitmusProgram& program,
                                const RandomizedConfig& config) {
  RandomizedResult result;
  result.fingerprint = 0xcbf29ce484222325ull;
  for (std::uint64_t r = 0; r < config.rounds; ++r) {
    RandomizedRun run = run_randomized_once(program, config, r);
    result.outcomes.insert(run.outcome);
    fnv_u64(result.fingerprint, run.fingerprint);
    result.events += run.events;
    result.nacks += run.nacks;
    result.failovers += run.failovers;
    result.migrations += run.migrations;
    result.forwards += run.forwards;
  }
  return result;
}

RandomizedResult check_randomized(const LitmusProgram& program,
                                  const Oracle& oracle,
                                  const RandomizedConfig& config) {
  RandomizedResult result = run_randomized(program, config);
  check_outcomes(oracle, result.outcomes, "sharded randomized executor");
  return result;
}

}  // namespace ecoscale::litmus
