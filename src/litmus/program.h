// Litmus-test DSL for the UNIMEM memory model (DESIGN.md §7.10).
//
// A LitmusProgram is a tiny multi-node workload in the classic litmus
// shape: 2–4 threads, each pinned to a *distinct* Compute Node, issuing a
// short straight-line sequence of PGAS operations against 1–2 shared
// pages, plus the two UNIMEM-specific edge kinds the model has to survive
// — page migration and owner crash/failover. Each page holds
// kVarsPerPage independent 8-byte variables (litmus "locations"), all
// initially zero.
//
// The *outcome* of one execution is a fixed-layout vector of uint64s:
// every value-observing op (load, atomic) contributes one slot in
// (thread-major, program-order) order, followed by the final value of
// every (page, var) slot. Executors produce outcomes; the oracle
// (oracle.h) produces the set the memory model allows.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "unimem/pgas.h"

namespace ecoscale::litmus {

/// Variables (8-byte slots) per shared page. Two same-page variables are
/// what the "adapted to per-page owner order" litmus shapes need.
inline constexpr std::size_t kVarsPerPage = 4;

enum class OpKind : std::uint8_t {
  kLoad,     // observe var
  kStore,    // write value to var
  kAtomic,   // RMW on var, observes the old value
  kMigrate,  // move page ownership to dst_node
  kCrash,    // take every worker of dst_node down
  kRepair,   // bring every worker of dst_node back up
};

struct Op {
  OpKind kind = OpKind::kLoad;
  std::uint8_t page = 0;
  std::uint8_t var = 0;
  std::uint64_t value = 0;    // store value / atomic operand
  std::uint64_t compare = 0;  // kCompareSwap expected value
  AtomicOp atomic = AtomicOp::kFetchAdd;
  NodeId dst_node = 0;  // kMigrate destination / kCrash / kRepair target

  bool is_memory() const {
    return kind == OpKind::kLoad || kind == OpKind::kStore ||
           kind == OpKind::kAtomic;
  }
  bool observes() const {
    return kind == OpKind::kLoad || kind == OpKind::kAtomic;
  }
  bool writes() const {
    return kind == OpKind::kStore || kind == OpKind::kAtomic;
  }
};

inline Op load(std::uint8_t page, std::uint8_t var) {
  return Op{OpKind::kLoad, page, var};
}
inline Op store(std::uint8_t page, std::uint8_t var, std::uint64_t value) {
  return Op{OpKind::kStore, page, var, value};
}
inline Op fetch_add(std::uint8_t page, std::uint8_t var,
                    std::uint64_t operand) {
  return Op{OpKind::kAtomic, page, var, operand, 0, AtomicOp::kFetchAdd};
}
inline Op swap(std::uint8_t page, std::uint8_t var, std::uint64_t value) {
  return Op{OpKind::kAtomic, page, var, value, 0, AtomicOp::kSwap};
}
inline Op compare_swap(std::uint8_t page, std::uint8_t var,
                       std::uint64_t expected, std::uint64_t desired) {
  return Op{OpKind::kAtomic, page, var, desired, expected,
            AtomicOp::kCompareSwap};
}
inline Op migrate(std::uint8_t page, NodeId dst) {
  Op op{OpKind::kMigrate, page};
  op.dst_node = dst;
  return op;
}
inline Op crash(NodeId node) {
  Op op{OpKind::kCrash};
  op.dst_node = node;
  return op;
}
inline Op repair(NodeId node) {
  Op op{OpKind::kRepair};
  op.dst_node = node;
  return op;
}

/// Reference semantics of one memory op against a page's variables:
/// mutates `vars` and returns the observed value (load: current value,
/// atomic: old value, store: 0/ignored). This is the single definition of
/// value behaviour shared by the oracle and the harness-level executor;
/// it matches PgasSystem::atomic_rmw exactly.
inline std::uint64_t apply_memory_op(const Op& op,
                                     std::uint64_t vars[kVarsPerPage]) {
  switch (op.kind) {
    case OpKind::kLoad:
      return vars[op.var];
    case OpKind::kStore:
      vars[op.var] = op.value;
      return 0;
    case OpKind::kAtomic: {
      const std::uint64_t old = vars[op.var];
      switch (op.atomic) {
        case AtomicOp::kFetchAdd:
          vars[op.var] = old + op.value;
          break;
        case AtomicOp::kSwap:
          vars[op.var] = op.value;
          break;
        case AtomicOp::kCompareSwap:
          if (old == op.compare) vars[op.var] = op.value;
          break;
        case AtomicOp::kFetchOr:
          vars[op.var] = old | op.value;
          break;
      }
      return old;
    }
    default:
      break;
  }
  return 0;
}

struct LitmusThread {
  NodeId node = 0;  // each thread runs on worker 0 of its own node
  std::vector<Op> ops;
};

/// One execution's result: observed values in (thread, program-order)
/// slot order, then final memory in (page, var) order.
using Outcome = std::vector<std::uint64_t>;

struct LitmusProgram {
  std::string name;
  std::size_t nodes = 2;                // machine size
  std::size_t pages = 1;                // shared pages
  std::vector<NodeId> page_owner;       // initial owner per page
  std::vector<LitmusThread> threads;

  std::size_t observer_slots() const {
    std::size_t n = 0;
    for (const auto& t : threads) {
      for (const auto& op : t.ops) n += op.observes() ? 1 : 0;
    }
    return n;
  }
  std::size_t outcome_size() const {
    return observer_slots() + pages * kVarsPerPage;
  }
  std::size_t total_ops() const {
    std::size_t n = 0;
    for (const auto& t : threads) n += t.ops.size();
    return n;
  }
  bool has_fault_edges() const {
    for (const auto& t : threads) {
      for (const auto& op : t.ops) {
        if (op.kind == OpKind::kCrash || op.kind == OpKind::kRepair) {
          return true;
        }
      }
    }
    return false;
  }

  /// Structural validity: distinct nodes per thread, in-range pages/vars/
  /// nodes, and no crash of a node that still has program ops of its own
  /// (its thread could not issue them — see DESIGN.md §7.10).
  void validate() const {
    ECO_CHECK_MSG(threads.size() >= 2 && threads.size() <= 4,
                  "litmus programs use 2-4 threads");
    ECO_CHECK_MSG(pages >= 1 && pages <= 2, "litmus programs use 1-2 pages");
    ECO_CHECK(page_owner.size() == pages);
    for (const NodeId o : page_owner) ECO_CHECK(o < nodes);
    for (std::size_t i = 0; i < threads.size(); ++i) {
      ECO_CHECK(threads[i].node < nodes);
      for (std::size_t j = 0; j < i; ++j) {
        ECO_CHECK_MSG(threads[i].node != threads[j].node,
                      "litmus threads must sit on distinct nodes");
      }
      for (const Op& op : threads[i].ops) {
        if (op.is_memory()) {
          ECO_CHECK(op.page < pages && op.var < kVarsPerPage);
        } else {
          ECO_CHECK(op.kind != OpKind::kMigrate || op.page < pages);
          ECO_CHECK(op.dst_node < nodes);
        }
        if (op.kind == OpKind::kCrash) {
          for (const auto& t : threads) {
            ECO_CHECK_MSG(t.node != op.dst_node,
                          "litmus programs must not crash a node that "
                          "hosts a program thread");
          }
        }
      }
    }
  }
};

/// Render an outcome against a program's slot layout, for failure
/// messages: "t0.op2=1 t1.op0=0 | p0.v1=2 ...".
std::string format_outcome(const LitmusProgram& program,
                           const Outcome& outcome);

/// The standard suite: the classic shapes adapted to per-page owner
/// order (store buffering and message passing, same-page forbidden vs
/// cross-page allowed), atomic counters, a migration-edge litmus and a
/// crash/failover-edge litmus. Used by tests/litmus_test.cc and
/// bench/bench_litmus.cc.
std::vector<LitmusProgram> standard_suite();

}  // namespace ecoscale::litmus
