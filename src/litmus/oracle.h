// Memory-model oracle: the outcomes partition consistency allows.
//
// The UNIMEM model (DESIGN.md §7.10) is a partition-consistency variant
// with pages as the partitions: every page has ONE total order over the
// memory operations that touch it — the serialization order at whichever
// node owns the page when each operation lands — and that order respects
// every thread's program order. Orders of different pages are independent
// (no cross-page constraint; SC is strictly stronger). Page migration,
// owner crash, repair and dead-owner failover are *value-neutral*: they
// re-home the serialization point but neither reorder the operations a
// page has already serialized nor drop or duplicate any.
//
// The oracle computes the full allowed set by enumerating, per page, every
// linearization of that page's operations that respects program order,
// evaluating it against zero-initialized variables, and taking the
// cross-product of the per-page results (independence is exactly what
// makes the product form correct). Executors then assert that every
// outcome they actually observe is in the set.
#pragma once

#include <set>
#include <string>

#include "litmus/program.h"

namespace ecoscale::litmus {

class Oracle {
 public:
  explicit Oracle(const LitmusProgram& program);

  const LitmusProgram& program() const { return program_; }
  const std::set<Outcome>& allowed() const { return allowed_; }
  bool allows(const Outcome& outcome) const {
    return allowed_.count(outcome) != 0;
  }
  /// Per-page linearizations evaluated (before cross-product and dedup).
  std::size_t linearizations() const { return linearizations_; }

 private:
  LitmusProgram program_;
  std::set<Outcome> allowed_;
  std::size_t linearizations_ = 0;
};

/// Assert every observed outcome is allowed; throws CheckError naming the
/// first violating outcome (formatted against the program's slot layout)
/// and the executor that produced it.
void check_outcomes(const Oracle& oracle, const std::set<Outcome>& observed,
                    const std::string& executor);

}  // namespace ecoscale::litmus
