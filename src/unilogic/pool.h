// UNILOGIC: shared partitioned reconfigurable resources (paper §4.1).
//
// "Within a Compute Node, any Worker can access any Reconfigurable block
// (even remote blocks that belong to other Workers) through the multi-layer
// interconnect… However, since this is not an ACE port (no snooping
// protocol is supported) the remote Reconfigurable block should disable its
// data cache (and would not be as efficient as a local one)."
//
// The pool arbitrates a Compute Node's fabrics: a caller's kernel call can
// run on its own fabric or be dispatched to a peer Worker's fabric. Remote
// execution pays (a) the doorbell/interconnect round trip and (b) uncached
// data streaming over the L0 interconnect instead of the local coherent
// port.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/energy.h"
#include "common/health.h"
#include "common/units.h"
#include "interconnect/network.h"
#include "worker/worker.h"

namespace ecoscale {

enum class DispatchPolicy {
  kLocalOnly,     // private accelerators: the paper's baseline
  kLeastLoaded,   // UNILOGIC sharing: pick the earliest-available fabric
};

struct UnilogicInvoke {
  std::size_t executed_on = 0;  // worker index within the node
  SimTime start = 0;
  SimTime finish = 0;
  Picojoules energy = 0.0;
  bool remote = false;
  bool reconfigured = false;
};

class UnilogicPool {
 public:
  /// `workers` are the Compute Node's Workers (not owned); `network` routes
  /// doorbells and uncached remote data; `endpoint_base` maps worker i to
  /// network endpoint endpoint_base + i.
  UnilogicPool(std::vector<Worker*> workers, Network& network,
               std::size_t endpoint_base = 0)
      : workers_(std::move(workers)),
        network_(network),
        endpoint_base_(endpoint_base) {
    ECO_CHECK(!workers_.empty());
  }

  /// Invoke `module` with `items` on behalf of worker `caller`.
  /// Returns nullopt if no fabric in the node can host the module.
  std::optional<UnilogicInvoke> invoke(std::size_t caller,
                                       const AcceleratorModule& module,
                                       std::uint64_t items, SimTime now,
                                       DispatchPolicy policy);

  std::uint64_t remote_invocations() const { return remote_invocations_; }
  std::uint64_t local_invocations() const { return local_invocations_; }
  const EnergyMeter& energy() const { return energy_; }
  std::size_t size() const { return workers_.size(); }
  Worker& worker(std::size_t i) { return *workers_[i]; }

  // --- fault handling ------------------------------------------------------
  /// Attach the machine's liveness registry. The pool never *reads*
  /// liveness directly (a doorbell cannot know its target is dead): a
  /// remote attempt against a down fabric times out unanswered, the
  /// fabric is blacklisted, and later placement skips the blacklist.
  void set_health(HealthRegistry* health) { health_ = health; }
  /// Remote attempts that failed (dead fabric or module would not fit)
  /// before the call either succeeded elsewhere or fell back locally.
  std::uint64_t failed_remote_attempts() const {
    return failed_remote_attempts_;
  }
  /// Calls that degraded to a caller-local attempt after remote failures.
  std::uint64_t local_fallbacks() const { return local_fallbacks_; }

 private:
  /// Estimated time the kernel could start on worker `w` (loaded module's
  /// pipeline availability, or now + reconfiguration estimate).
  SimTime estimate_start(std::size_t w, const AcceleratorModule& module,
                         SimTime now) const;

  std::vector<Worker*> workers_;
  Network& network_;
  std::size_t endpoint_base_;
  std::uint64_t remote_invocations_ = 0;
  std::uint64_t local_invocations_ = 0;
  EnergyMeter energy_;

  HealthRegistry* health_ = nullptr;
  std::size_t max_remote_attempts_ = 2;        // candidates tried per call
  SimDuration dead_fabric_timeout_ = microseconds(20);
  SimDuration blacklist_for_ = milliseconds(1);
  std::uint64_t failed_remote_attempts_ = 0;
  std::uint64_t local_fallbacks_ = 0;
};

}  // namespace ecoscale
