#include "unilogic/pool.h"

#include <algorithm>

#include "obs/trace.h"

namespace ecoscale {

namespace {
/// Accelerator-sharing trace names, interned once per process.
struct PoolTraceNames {
  CounterId queue = CounterRegistry::intern("unilogic.queue");
  CounterId exec = CounterRegistry::intern("unilogic.exec");
  CounterId doorbell = CounterRegistry::intern("unilogic.doorbell");
  CounterId retry = CounterRegistry::intern("unilogic.retry");
  CounterId fallback = CounterRegistry::intern("unilogic.fallback");
  CounterId wasted = CounterRegistry::intern("unilogic.wasted");
};
[[maybe_unused]] const PoolTraceNames& pool_trace_names() {
  static const PoolTraceNames names;
  return names;
}
}  // namespace

SimTime UnilogicPool::estimate_start(std::size_t w,
                                     const AcceleratorModule& module,
                                     SimTime now) const {
  Worker& worker = *workers_[w];
  if (const VirtualizationBlock* block =
          const_cast<Worker&>(worker).find_block(module.kernel);
      block != nullptr && worker.fabric().is_loaded(module.kernel)) {
    return std::max(now, block->issue_timeline().next_free());
  }
  // Not loaded: estimate configuration latency (port may be busy).
  const Bytes wire = worker.fabric().wire_bytes_for(module);
  const SimDuration config_time =
      worker.fabric().config().config_port_bw.transfer_time(wire) +
      worker.fabric().config().setup_latency;
  return now + config_time;
}

std::optional<UnilogicInvoke> UnilogicPool::invoke(
    std::size_t caller, const AcceleratorModule& module, std::uint64_t items,
    SimTime now, DispatchPolicy policy) {
  ECO_CHECK(caller < workers_.size());

  // Remote candidates ranked by estimated finish, best first. Remote
  // dispatch streams the call's I/O set uncached over the L0 interconnect
  // (ACE-lite, §4.1) and pays doorbell + completion interrupts; only
  // fabrics whose estimated *finish* still beats the caller-local one
  // qualify. The pool has no liveness oracle — a dead fabric is discovered
  // the hard way, by an unanswered doorbell — but it skips fabrics it has
  // already blacklisted from earlier failures.
  std::vector<std::pair<SimTime, std::size_t>> candidates;
  if (policy == DispatchPolicy::kLeastLoaded) {
    const Bytes moved =
        items * (module.bytes_in_per_item + module.bytes_out_per_item);
    const SimDuration remote_overhead =
        Bandwidth::from_gib_per_s(16.0).transfer_time(moved) +
        microseconds(2);
    const SimTime local_est = estimate_start(caller, module, now);
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      if (w == caller) continue;
      if (health_ != nullptr &&
          health_->blacklisted(endpoint_base_ + w, now)) {
        continue;
      }
      const SimTime est = estimate_start(w, module, now) + remote_overhead;
      if (est < local_est) candidates.emplace_back(est, w);
    }
    std::sort(candidates.begin(), candidates.end());
  }

  // Bounded remote attempts, then degrade to a caller-local attempt. A
  // failed remote attempt has already paid its doorbell: that traffic and
  // energy stay on the books ("unilogic.wasted") and the target fabric is
  // blacklisted so the next calls stop picking it.
  Picojoules wasted = 0.0;
  SimTime attempt_now = now;
  bool remote_failed = false;
  const std::size_t attempts =
      std::min(candidates.size(), max_remote_attempts_);
  for (std::size_t i = 0; i <= attempts; ++i) {
    const bool remote = i < attempts;
    const std::size_t target = remote ? candidates[i].second : caller;
    if (!remote && remote_failed) {
      // Degrading to the caller's own fabric after remote failures.
      ++local_fallbacks_;
      ECO_TRACE_INSTANT(obs::Cat::kFailover, pool_trace_names().fallback,
                        (obs::Lane{workers_[caller]->coord().node,
                                   workers_[caller]->coord().worker}),
                        attempt_now, caller);
    }
    SimTime ready = attempt_now;
    Picojoules extra_energy = 0.0;

    // Spans land on the executing fabric's lane (the accelerator view of
    // C4 sharing: who queued behind whom, and for how long).
    [[maybe_unused]] const obs::Lane lane{workers_[target]->coord().node,
                                          workers_[target]->coord().worker};

    if (remote) {
      // Doorbell: user-level store to the remote block's mapped registers.
      Packet bell{PacketType::kInterrupt,
                  WorkerCoord{0, static_cast<WorkerId>(caller)},
                  WorkerCoord{0, static_cast<WorkerId>(target)}, 64};
      const auto t = network_.send(endpoint_base_ + caller,
                                   endpoint_base_ + target, bell, attempt_now);
      ready = t.arrival;
      extra_energy += t.energy;
      ECO_TRACE_INSTANT(obs::Cat::kUnilogic, pool_trace_names().doorbell,
                        lane, ready, caller);
      if (health_ != nullptr && !health_->up(endpoint_base_ + target)) {
        // The block died after placement: the doorbell is never answered.
        // Wait out the timeout, blacklist the fabric, try the next one.
        const SimTime gave_up = ready + dead_fabric_timeout_;
        ECO_TRACE_SPAN(obs::Cat::kRetry, pool_trace_names().retry,
                       (obs::Lane{workers_[caller]->coord().node,
                                  workers_[caller]->coord().worker}),
                       attempt_now, gave_up,
                       static_cast<std::uint32_t>(target));
        health_->blacklist(endpoint_base_ + target, gave_up + blacklist_for_);
        ++failed_remote_attempts_;
        remote_failed = true;
        wasted += extra_energy;
        attempt_now = gave_up;
        continue;
      }
    }

    auto exec = workers_[target]->run_hardware(
        module, items, ready, static_cast<std::uint32_t>(caller));
    if (!exec) {
      if (!remote) break;  // caller-local attempt failed: give up
      // The fabric nacked the call (module does not fit). Blacklist it so
      // placement stops re-trying a fabric that can never host the module.
      ECO_TRACE_SPAN(obs::Cat::kRetry, pool_trace_names().retry,
                     (obs::Lane{workers_[caller]->coord().node,
                                workers_[caller]->coord().worker}),
                     attempt_now, ready, static_cast<std::uint32_t>(target));
      if (health_ != nullptr) {
        health_->blacklist(endpoint_base_ + target, ready + blacklist_for_);
      }
      ++failed_remote_attempts_;
      remote_failed = true;
      wasted += extra_energy;
      attempt_now = ready;
      continue;
    }

    UnilogicInvoke result;
    result.executed_on = target;
    result.start = exec->start;
    result.finish = exec->finish;
    result.energy = exec->energy + extra_energy;
    result.remote = remote;
    result.reconfigured = exec->reconfigured;

    // Acquire-to-start wait (reconfiguration and/or queueing behind
    // earlier calls on the shared block), then the execution itself.
    if (exec->start > ready) {
      ECO_TRACE_SPAN(obs::Cat::kUnilogic, pool_trace_names().queue, lane,
                     ready, exec->start, caller);
    }
    ECO_TRACE_SPAN(obs::Cat::kUnilogic, pool_trace_names().exec, lane,
                   exec->start, exec->finish, items);

    if (remote) {
      ++remote_invocations_;
      // The remote block reads its operands from the *caller's* memory
      // over the L0 interconnect with its data cache disabled (ACE-lite):
      // stream the I/O set across the network and take the slower of
      // compute and uncached data movement.
      const Bytes moved =
          items * (module.bytes_in_per_item + module.bytes_out_per_item);
      Packet data{PacketType::kDma,
                  WorkerCoord{0, static_cast<WorkerId>(caller)},
                  WorkerCoord{0, static_cast<WorkerId>(target)}, moved};
      const auto t = network_.send(endpoint_base_ + caller,
                                   endpoint_base_ + target, data,
                                   result.start);
      result.finish = std::max(result.finish, t.arrival);
      result.energy += t.energy;
      // Completion interrupt back to the caller.
      Packet done{PacketType::kInterrupt,
                  WorkerCoord{0, static_cast<WorkerId>(target)},
                  WorkerCoord{0, static_cast<WorkerId>(caller)}, 16};
      const auto back = network_.send(endpoint_base_ + target,
                                      endpoint_base_ + caller, done,
                                      result.finish);
      result.finish = back.arrival;
      result.energy += back.energy;
      energy_.charge("unilogic.remote", result.energy);
    } else {
      ++local_invocations_;
      energy_.charge("unilogic.local", result.energy);
    }
    if (wasted > 0.0) {
      energy_.charge(pool_trace_names().wasted, wasted);
      result.energy += wasted;
    }
    return result;
  }

  // Every attempt failed; the burnt doorbell traffic is still real.
  if (wasted > 0.0) energy_.charge(pool_trace_names().wasted, wasted);
  return std::nullopt;
}

}  // namespace ecoscale
