// Sparse multi-level page table model.
//
// The table stores page-granular mappings in a hash map (the functional
// part) and models the cost of a radix-tree walk (the timing part): a
// `levels()`-deep walk costs one memory access per level.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "address/address.h"
#include "common/check.h"

namespace ecoscale {

class PageTable {
 public:
  explicit PageTable(int levels = 4) : levels_(levels) {
    ECO_CHECK(levels >= 1 && levels <= 6);
  }

  /// Map a virtual (or intermediate) page to an output page.
  void map(PageId from, PageId to) { entries_[from] = to; }

  void unmap(PageId from) { entries_.erase(from); }

  std::optional<PageId> lookup(PageId from) const {
    auto it = entries_.find(from);
    if (it == entries_.end()) return std::nullopt;
    return it->second;
  }

  bool is_mapped(PageId from) const { return entries_.contains(from); }

  /// Number of radix levels the hardware walker traverses on a miss.
  int levels() const { return levels_; }

  std::size_t entry_count() const { return entries_.size(); }

 private:
  int levels_;
  std::unordered_map<PageId, PageId> entries_;
};

}  // namespace ecoscale
