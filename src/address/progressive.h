// Progressive address translation (Katevenis [12]).
//
// Interprocessor communication is treated as a generalisation of load/store:
// a global address is translated *progressively* as the access travels up
// the interconnect hierarchy — each level resolves only the bits it needs to
// route, and the final worker-local bits are translated at the destination.
// The practical consequence modelled here: a remote access needs no central
// translation agent, only one small table per hierarchy level.
#pragma once

#include <cstdint>
#include <vector>

#include "address/address.h"
#include "common/check.h"
#include "common/units.h"

namespace ecoscale {

struct TranslationStep {
  int level = 0;               // 0 = worker-local, increasing upward
  SimDuration latency = 0;     // table lookup at this level
};

struct ProgressiveResult {
  std::vector<TranslationStep> steps;
  SimDuration total_latency = 0;
};

class ProgressiveTranslator {
 public:
  /// `level_latencies[i]` is the lookup latency of the level-i table.
  explicit ProgressiveTranslator(std::vector<SimDuration> level_latencies)
      : level_latencies_(std::move(level_latencies)) {
    ECO_CHECK(!level_latencies_.empty());
    prefix_.resize(level_latencies_.size());
    SimDuration sum = 0;
    for (std::size_t i = 0; i < level_latencies_.size(); ++i) {
      sum += level_latencies_[i];
      prefix_[i] = sum;
    }
  }

  /// Translate an access from `src` to `dst`: the access climbs levels until
  /// the common ancestor of source and destination resolves the route, then
  /// descends. Only the traversed levels pay a lookup.
  ProgressiveResult translate(WorkerCoord src, WorkerCoord dst) const {
    ProgressiveResult r;
    const int highest = highest_level(src, dst);
    for (int level = 0; level <= highest; ++level) {
      const SimDuration lat =
          level_latencies_[static_cast<std::size_t>(level)];
      r.steps.push_back(TranslationStep{level, lat});
      r.total_latency += lat;
    }
    return r;
  }

  /// Allocation-free fast path: the summed lookup latency without the
  /// per-step breakdown. Used on the per-access PGAS lane; the prefix sums
  /// are precomputed so this is one compare chain and one array read.
  SimDuration total_latency(WorkerCoord src, WorkerCoord dst) const {
    return prefix_[static_cast<std::size_t>(highest_level(src, dst))];
  }

  std::size_t levels() const { return level_latencies_.size(); }

 private:
  int highest_level(WorkerCoord src, WorkerCoord dst) const {
    const int top = static_cast<int>(level_latencies_.size()) - 1;
    if (src == dst) return 0;                      // local: stage-0 only
    if (src.node == dst.node) return top < 1 ? top : 1;  // intra-node
    return top;                                    // global
  }

  std::vector<SimDuration> level_latencies_;
  std::vector<SimDuration> prefix_;  // prefix_[h] = sum of levels 0..h
};

}  // namespace ecoscale
