// Dual-stage System MMU model (ARM SMMU-style).
//
// ECOSCALE claim C5: reconfigurable accelerators are mapped into the
// *virtual* address space through a dual-stage I/O MMU, so an unprivileged
// task can invoke an accelerator without trapping into the OS or hypervisor.
//
// Stage 1 translates a task's virtual address to an intermediate physical
// address (IPA); stage 2 translates IPA to physical. On a TLB miss the
// walker performs a nested walk: each of the S1 levels' descriptors is
// itself an IPA that needs an S2 walk, giving the classic
// (s1_levels + 1) * (s2_levels + 1) - 1 memory accesses.
//
// The TLB is a fixed-capacity open-addressed table (linear probing,
// backward-shift deletion) with an intrusive doubly-linked LRU list over a
// preallocated entry pool: no std::list, no unordered_map, and zero heap
// allocation after construction. Eviction order is exact LRU, bit-identical
// to the previous map+list implementation (regression-tested against a
// reference model in tests/smmu_tlb_test.cc).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "address/address.h"
#include "address/page_table.h"
#include "common/check.h"
#include "common/stats.h"
#include "common/units.h"

namespace ecoscale {

using ContextId = std::uint32_t;  // stream/context: one per task or VM

struct Translation {
  PageId phys_page = 0;
  SimDuration latency = 0;
  bool tlb_hit = false;
};

struct SmmuConfig {
  std::size_t tlb_entries = 64;
  int stage1_levels = 4;
  int stage2_levels = 3;
  SimDuration walk_access_latency = nanoseconds(60);  // one PTE fetch (DRAM)
  SimDuration tlb_hit_latency = nanoseconds(1);
  Picojoules walk_access_energy = 15.0;  // pJ per PTE fetch
  Picojoules tlb_lookup_energy = 0.5;
};

/// Fixed-capacity fully associative LRU TLB keyed by (context, virtual
/// page). All storage is preallocated: entries live in a pool indexed by
/// the probe table, and recency is an intrusive list threaded through the
/// pool slots.
class TranslationTlb {
 public:
  explicit TranslationTlb(std::size_t capacity)
      : capacity_(capacity) {
    ECO_CHECK(capacity_ > 0);
    std::size_t slots = 2;
    // Power-of-two probe table at most half full keeps probe chains short.
    while (slots < capacity_ * 2) slots <<= 1;
    slot_mask_ = static_cast<std::uint32_t>(slots - 1);
    slots_.assign(slots, kEmpty);
    entries_.resize(capacity_);
    // All entries start on the free list, threaded through `next`.
    for (std::size_t i = 0; i < capacity_; ++i) {
      entries_[i].next = i + 1 < capacity_ ? static_cast<std::uint32_t>(i + 1)
                                           : kNil;
    }
    free_head_ = 0;
  }

  /// Look up (ctx, page); touches LRU on hit. Returns the physical page or
  /// nullopt.
  std::optional<PageId> lookup(ContextId ctx, PageId page) {
    const std::uint32_t slot = find_slot(ctx, page);
    if (slot == kEmpty) return std::nullopt;
    const std::uint32_t e = slots_[slot];
    touch(e);
    return entries_[e].phys;
  }

  /// Insert a translation, evicting the least recently used entry if full.
  void insert(ContextId ctx, PageId page, PageId phys) {
    if (size_ >= capacity_) evict_lru();
    const std::uint32_t e = free_head_;
    ECO_CHECK(e != kNil);
    free_head_ = entries_[e].next;
    Entry& entry = entries_[e];
    entry.ctx = ctx;
    entry.page = page;
    entry.phys = phys;
    link_front(e);
    ++size_;
    // Claim the first free probe slot.
    std::uint32_t slot = home_slot(ctx, page);
    while (slots_[slot] != kEmpty) slot = (slot + 1) & slot_mask_;
    slots_[slot] = e;
  }

  /// Drop every entry of a context (walks the LRU list once).
  void invalidate_context(ContextId ctx) {
    std::uint32_t e = lru_head_;
    while (e != kNil) {
      const std::uint32_t next = entries_[e].next;
      if (entries_[e].ctx == ctx) erase(e);
      e = next;
    }
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }

 private:
  static constexpr std::uint32_t kEmpty = 0xFFFFFFFFu;
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  struct Entry {
    ContextId ctx = 0;
    PageId page = 0;
    PageId phys = 0;
    std::uint32_t prev = kNil;  // LRU list when live; unused when free
    std::uint32_t next = kNil;  // LRU list when live; free list when free
  };

  std::uint32_t home_slot(ContextId ctx, PageId page) const {
    const std::uint64_t h =
        ((static_cast<std::uint64_t>(ctx) << 52) ^ page) *
        0x9E3779B97F4A7C15ull;  // Fibonacci mix spreads low-entropy keys
    return static_cast<std::uint32_t>(h >> 32) & slot_mask_;
  }

  /// Probe slot holding (ctx, page), or kEmpty.
  std::uint32_t find_slot(ContextId ctx, PageId page) const {
    std::uint32_t slot = home_slot(ctx, page);
    while (slots_[slot] != kEmpty) {
      const Entry& e = entries_[slots_[slot]];
      if (e.ctx == ctx && e.page == page) return slot;
      slot = (slot + 1) & slot_mask_;
    }
    return kEmpty;
  }

  void link_front(std::uint32_t e) {
    entries_[e].prev = kNil;
    entries_[e].next = lru_head_;
    if (lru_head_ != kNil) entries_[lru_head_].prev = e;
    lru_head_ = e;
    if (lru_tail_ == kNil) lru_tail_ = e;
  }

  void unlink(std::uint32_t e) {
    const Entry& entry = entries_[e];
    if (entry.prev != kNil) entries_[entry.prev].next = entry.next;
    else lru_head_ = entry.next;
    if (entry.next != kNil) entries_[entry.next].prev = entry.prev;
    else lru_tail_ = entry.prev;
  }

  void touch(std::uint32_t e) {
    if (lru_head_ == e) return;
    unlink(e);
    link_front(e);
  }

  /// Remove entry `e`: free its probe slot with backward-shift deletion
  /// (keeps probe chains gap-free without tombstones), unlink from LRU,
  /// return to the free list.
  void erase(std::uint32_t e) {
    std::uint32_t slot = find_slot(entries_[e].ctx, entries_[e].page);
    ECO_CHECK(slot != kEmpty && slots_[slot] == e);
    // Backward-shift: close the gap by pulling back any entry probing
    // through it. Standard open-addressing deletion: entry at j (home k)
    // moves into the hole at i iff i lies cyclically in [k, j).
    std::uint32_t i = slot;
    std::uint32_t j = slot;
    for (;;) {
      j = (j + 1) & slot_mask_;
      if (slots_[j] == kEmpty) break;
      const Entry& moved = entries_[slots_[j]];
      const std::uint32_t k = home_slot(moved.ctx, moved.page);
      if (((j - k) & slot_mask_) >= ((j - i) & slot_mask_)) {
        slots_[i] = slots_[j];
        i = j;
      }
    }
    slots_[i] = kEmpty;
    unlink(e);
    entries_[e].next = free_head_;
    free_head_ = e;
    --size_;
  }

  void evict_lru() {
    ECO_CHECK(lru_tail_ != kNil);
    erase(lru_tail_);
  }

  std::size_t capacity_;
  std::size_t size_ = 0;
  std::uint32_t slot_mask_ = 0;
  std::vector<std::uint32_t> slots_;  // probe table: entry index or kEmpty
  std::vector<Entry> entries_;        // preallocated pool
  std::uint32_t lru_head_ = kNil;
  std::uint32_t lru_tail_ = kNil;
  std::uint32_t free_head_ = kNil;
};

/// Dual-stage SMMU with a fully associative LRU TLB caching the combined
/// VA→PA translation per context.
class Smmu {
 public:
  explicit Smmu(SmmuConfig config = {})
      : config_(config),
        stage2_(config.stage2_levels),
        tlb_(config.tlb_entries) {}

  /// Create (or fetch) the stage-1 table of a context.
  PageTable& stage1(ContextId ctx) {
    return stage1_.try_emplace(ctx, PageTable(config_.stage1_levels))
        .first->second;
  }

  PageTable& stage2() { return stage2_; }

  /// Translate a virtual page for a context. Returns nullopt on a
  /// translation fault (unmapped page at either stage).
  std::optional<Translation> translate(ContextId ctx, PageId virt_page) {
    ++lookups_;
    energy_ += config_.tlb_lookup_energy;
    if (const auto cached = tlb_.lookup(ctx, virt_page)) {
      ++hits_;
      return Translation{*cached, config_.tlb_hit_latency, true};
    }
    // Nested walk.
    auto s1 = stage1_.find(ctx);
    if (s1 == stage1_.end()) return std::nullopt;
    const auto ipa = s1->second.lookup(virt_page);
    if (!ipa) return std::nullopt;
    const auto pa = stage2_.lookup(*ipa);
    if (!pa) return std::nullopt;
    const int accesses = (s1->second.levels() + 1) * (stage2_.levels() + 1) - 1;
    ++walks_;
    walk_accesses_ += static_cast<std::uint64_t>(accesses);
    energy_ += config_.walk_access_energy * accesses;
    const SimDuration latency =
        config_.tlb_hit_latency +
        config_.walk_access_latency * static_cast<SimDuration>(accesses);
    tlb_.insert(ctx, virt_page, *pa);
    return Translation{*pa, latency, false};
  }

  /// Invalidate all TLB entries of a context (e.g. on task migration).
  void invalidate(ContextId ctx) { tlb_.invalidate_context(ctx); }

  double hit_rate() const {
    return lookups_ ? static_cast<double>(hits_) / static_cast<double>(lookups_)
                    : 0.0;
  }
  std::uint64_t lookups() const { return lookups_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t walks() const { return walks_; }
  std::uint64_t walk_accesses() const { return walk_accesses_; }
  Picojoules energy() const { return energy_; }
  const SmmuConfig& config() const { return config_; }

 private:
  SmmuConfig config_;
  std::unordered_map<ContextId, PageTable> stage1_;
  PageTable stage2_;
  TranslationTlb tlb_;
  std::uint64_t lookups_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t walks_ = 0;
  std::uint64_t walk_accesses_ = 0;
  Picojoules energy_ = 0.0;
};

/// Cost model for the two accelerator-invocation paths the paper contrasts.
struct InvocationPathCosts {
  // OS-mediated: user→kernel trap, argument marshalling, kernel driver
  // programs the accelerator with physical addresses, return trap.
  SimDuration os_trap = nanoseconds(1500);
  SimDuration os_return = nanoseconds(1000);
  SimDuration driver_setup = nanoseconds(800);

  // User-level: write the doorbell through the mapped MMIO page; each
  // accelerator-side pointer dereference goes through the SMMU.
  SimDuration doorbell_write = nanoseconds(40);
};

}  // namespace ecoscale
