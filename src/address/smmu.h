// Dual-stage System MMU model (ARM SMMU-style).
//
// ECOSCALE claim C5: reconfigurable accelerators are mapped into the
// *virtual* address space through a dual-stage I/O MMU, so an unprivileged
// task can invoke an accelerator without trapping into the OS or hypervisor.
//
// Stage 1 translates a task's virtual address to an intermediate physical
// address (IPA); stage 2 translates IPA to physical. On a TLB miss the
// walker performs a nested walk: each of the S1 levels' descriptors is
// itself an IPA that needs an S2 walk, giving the classic
// (s1_levels + 1) * (s2_levels + 1) - 1 memory accesses.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "address/address.h"
#include "address/page_table.h"
#include "common/check.h"
#include "common/stats.h"
#include "common/units.h"

namespace ecoscale {

using ContextId = std::uint32_t;  // stream/context: one per task or VM

struct Translation {
  PageId phys_page = 0;
  SimDuration latency = 0;
  bool tlb_hit = false;
};

struct SmmuConfig {
  std::size_t tlb_entries = 64;
  int stage1_levels = 4;
  int stage2_levels = 3;
  SimDuration walk_access_latency = nanoseconds(60);  // one PTE fetch (DRAM)
  SimDuration tlb_hit_latency = nanoseconds(1);
  Picojoules walk_access_energy = 15.0;  // pJ per PTE fetch
  Picojoules tlb_lookup_energy = 0.5;
};

/// Dual-stage SMMU with a fully associative LRU TLB caching the combined
/// VA→PA translation per context.
class Smmu {
 public:
  explicit Smmu(SmmuConfig config = {})
      : config_(config), stage2_(config.stage2_levels) {
    ECO_CHECK(config_.tlb_entries > 0);
  }

  /// Create (or fetch) the stage-1 table of a context.
  PageTable& stage1(ContextId ctx) {
    return stage1_.try_emplace(ctx, PageTable(config_.stage1_levels))
        .first->second;
  }

  PageTable& stage2() { return stage2_; }

  /// Translate a virtual page for a context. Returns nullopt on a
  /// translation fault (unmapped page at either stage).
  std::optional<Translation> translate(ContextId ctx, PageId virt_page) {
    ++lookups_;
    energy_ += config_.tlb_lookup_energy;
    const TlbKey key{ctx, virt_page};
    if (auto it = tlb_.find(key); it != tlb_.end()) {
      ++hits_;
      touch(it->second);
      return Translation{it->second->phys_page, config_.tlb_hit_latency,
                         true};
    }
    // Nested walk.
    auto s1 = stage1_.find(ctx);
    if (s1 == stage1_.end()) return std::nullopt;
    const auto ipa = s1->second.lookup(virt_page);
    if (!ipa) return std::nullopt;
    const auto pa = stage2_.lookup(*ipa);
    if (!pa) return std::nullopt;
    const int accesses = (s1->second.levels() + 1) * (stage2_.levels() + 1) - 1;
    ++walks_;
    walk_accesses_ += static_cast<std::uint64_t>(accesses);
    energy_ += config_.walk_access_energy * accesses;
    const SimDuration latency =
        config_.tlb_hit_latency +
        config_.walk_access_latency * static_cast<SimDuration>(accesses);
    insert(key, *pa);
    return Translation{*pa, latency, false};
  }

  /// Invalidate all TLB entries of a context (e.g. on task migration).
  void invalidate(ContextId ctx) {
    for (auto it = lru_.begin(); it != lru_.end();) {
      if (it->key.ctx == ctx) {
        tlb_.erase(it->key);
        it = lru_.erase(it);
      } else {
        ++it;
      }
    }
  }

  double hit_rate() const {
    return lookups_ ? static_cast<double>(hits_) / static_cast<double>(lookups_)
                    : 0.0;
  }
  std::uint64_t lookups() const { return lookups_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t walks() const { return walks_; }
  std::uint64_t walk_accesses() const { return walk_accesses_; }
  Picojoules energy() const { return energy_; }
  const SmmuConfig& config() const { return config_; }

 private:
  struct TlbKey {
    ContextId ctx;
    PageId page;
    bool operator==(const TlbKey&) const = default;
  };
  struct TlbKeyHash {
    std::size_t operator()(const TlbKey& k) const {
      return std::hash<std::uint64_t>{}(
          (static_cast<std::uint64_t>(k.ctx) << 52) ^ k.page);
    }
  };
  struct TlbEntry {
    TlbKey key;
    PageId phys_page;
  };
  using LruList = std::list<TlbEntry>;

  void touch(LruList::iterator it) { lru_.splice(lru_.begin(), lru_, it); }

  void insert(const TlbKey& key, PageId pa) {
    if (tlb_.size() >= config_.tlb_entries) {
      tlb_.erase(lru_.back().key);
      lru_.pop_back();
    }
    lru_.push_front(TlbEntry{key, pa});
    tlb_[key] = lru_.begin();
  }

  SmmuConfig config_;
  std::unordered_map<ContextId, PageTable> stage1_;
  PageTable stage2_;
  LruList lru_;
  std::unordered_map<TlbKey, LruList::iterator, TlbKeyHash> tlb_;
  std::uint64_t lookups_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t walks_ = 0;
  std::uint64_t walk_accesses_ = 0;
  Picojoules energy_ = 0.0;
};

/// Cost model for the two accelerator-invocation paths the paper contrasts.
struct InvocationPathCosts {
  // OS-mediated: user→kernel trap, argument marshalling, kernel driver
  // programs the accelerator with physical addresses, return trap.
  SimDuration os_trap = nanoseconds(1500);
  SimDuration os_return = nanoseconds(1000);
  SimDuration driver_setup = nanoseconds(800);

  // User-level: write the doorbell through the mapped MMIO page; each
  // accelerator-side pointer dereference goes through the SMMU.
  SimDuration doorbell_write = nanoseconds(40);
};

}  // namespace ecoscale
