// UNIMEM page-ownership directory.
//
// The UNIMEM consistency model (paper §2): from the point of view of any
// processor, a memory page is cacheable at its *owning* node and nowhere
// else. There is therefore no global snoop — a remote access is routed to
// the owner and served from the owner's coherent domain. Ownership can move
// (page migration), which is the only global coherence action that exists.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "address/address.h"
#include "common/check.h"

namespace ecoscale {

class OwnershipDirectory {
 public:
  /// Register a page with its home (initial owner) node.
  void register_page(PageId page, NodeId owner) {
    ECO_CHECK_MSG(!owners_.contains(page), "page registered twice");
    owners_[page] = owner;
  }

  bool is_registered(PageId page) const { return owners_.contains(page); }

  std::optional<NodeId> owner(PageId page) const {
    auto it = owners_.find(page);
    if (it == owners_.end()) return std::nullopt;
    return it->second;
  }

  /// A page may be cached only at its owning node (UNIMEM invariant).
  bool cacheable_at(PageId page, NodeId node) const {
    auto it = owners_.find(page);
    return it != owners_.end() && it->second == node;
  }

  /// Migrate ownership. Returns the previous owner. The caller is
  /// responsible for charging the flush-and-transfer cost.
  NodeId migrate(PageId page, NodeId new_owner) {
    auto it = owners_.find(page);
    ECO_CHECK_MSG(it != owners_.end(), "migrating unregistered page");
    const NodeId prev = it->second;
    if (prev != new_owner) {
      it->second = new_owner;
      ++migrations_;
    }
    return prev;
  }

  std::uint64_t migrations() const { return migrations_; }
  std::size_t page_count() const { return owners_.size(); }

 private:
  std::unordered_map<PageId, NodeId> owners_;
  std::uint64_t migrations_ = 0;
};

}  // namespace ecoscale
