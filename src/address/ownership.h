// UNIMEM page-ownership directory.
//
// The UNIMEM consistency model (paper §2): from the point of view of any
// processor, a memory page is cacheable at its *owning* node and nowhere
// else. There is therefore no global snoop — a remote access is routed to
// the owner and served from the owner's coherent domain. Ownership can move
// (page migration), which is the only global coherence action that exists.
//
// Storage: the owner() probe sits on the per-access fast path of every
// PGAS load/store, so owners live in dense per-segment arrays instead of a
// hash map. A PageId decomposes as (node | worker | page-offset) — the
// top 16 bits (page >> 36, i.e. node·256+worker for GlobalAddress-derived
// pages) select a segment, and the remaining bits index a NodeId array
// grown by registration. Pathologically sparse in-segment offsets fall
// back to a hash map so the dense arrays stay bounded.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "address/address.h"
#include "common/check.h"

namespace ecoscale {

class OwnershipDirectory {
 public:
  /// Register a page with its home (initial owner) node.
  void register_page(PageId page, NodeId owner) {
    ECO_CHECK_MSG(!is_registered(page), "page registered twice");
    NodeId* slot = slot_for(page, /*create=*/true);
    if (slot != nullptr) {
      *slot = owner;
    } else {
      sparse_[page] = owner;
    }
    ++pages_;
  }

  bool is_registered(PageId page) const {
    const NodeId* slot = slot_for(page);
    if (slot != nullptr) return *slot != kNoOwner;
    return sparse_.contains(page);
  }

  std::optional<NodeId> owner(PageId page) const {
    const NodeId* slot = slot_for(page);
    if (slot != nullptr) {
      return *slot == kNoOwner ? std::nullopt : std::optional<NodeId>(*slot);
    }
    auto it = sparse_.find(page);
    if (it == sparse_.end()) return std::nullopt;
    return it->second;
  }

  /// A page may be cached only at its owning node (UNIMEM invariant).
  bool cacheable_at(PageId page, NodeId node) const {
    const auto o = owner(page);
    return o.has_value() && *o == node;
  }

  /// Migrate ownership. Returns the previous owner. The caller is
  /// responsible for charging the flush-and-transfer cost.
  NodeId migrate(PageId page, NodeId new_owner) {
    NodeId* slot = slot_for(page, /*create=*/false);
    NodeId* where = slot != nullptr && *slot != kNoOwner ? slot : nullptr;
    if (where == nullptr) {
      auto it = sparse_.find(page);
      ECO_CHECK_MSG(it != sparse_.end(), "migrating unregistered page");
      where = &it->second;
    }
    const NodeId prev = *where;
    if (prev != new_owner) {
      *where = new_owner;
      ++migrations_;
    }
    return prev;
  }

  std::uint64_t migrations() const { return migrations_; }
  std::size_t page_count() const { return pages_; }

 private:
  // 0xFFFF never names a real node (NodeId is 8-bit in GlobalAddress).
  static constexpr NodeId kNoOwner = 0xFFFF;
  /// Per-segment dense cap: offsets at or above this (>= 16 GiB into one
  /// worker's partition) take the sparse fallback.
  static constexpr std::uint64_t kDenseLimit = 1ull << 22;

  static std::uint64_t segment_of(PageId page) { return page >> 36; }
  static std::uint64_t offset_of(PageId page) {
    return page & ((1ull << 36) - 1);
  }

  /// Dense slot of `page`, or nullptr if it lives in the sparse fallback.
  /// With create=true, grows the segment table and array as needed.
  NodeId* slot_for(PageId page, bool create) {
    const std::uint64_t off = offset_of(page);
    if (off >= kDenseLimit) return nullptr;
    const std::uint64_t seg = segment_of(page);
    if (seg >= segments_.size()) {
      if (!create) return nullptr;
      segments_.resize(seg + 1);
    }
    std::vector<NodeId>& owners = segments_[seg];
    if (off >= owners.size()) {
      if (!create) return nullptr;
      owners.resize(off + 1, kNoOwner);
    }
    return &owners[off];
  }
  const NodeId* slot_for(PageId page) const {
    return const_cast<OwnershipDirectory*>(this)->slot_for(page, false);
  }

  std::vector<std::vector<NodeId>> segments_;   // [segment_of][offset_of]
  std::unordered_map<PageId, NodeId> sparse_;   // dense-limit overflow
  std::uint64_t migrations_ = 0;
  std::size_t pages_ = 0;
};

}  // namespace ecoscale
