// Global address space layout for the UNIMEM PGAS.
//
// A 64-bit global address encodes the Compute Node, the Worker within that
// node, and a 44-bit offset into the Worker's local DRAM. Every Worker can
// issue plain loads/stores to any global address; the interconnect routes
// them by the (node, worker) fields.
//
//   63      56 55      48 47          44 43                       0
//  +----------+----------+--------------+--------------------------+
//  |   node   |  worker  |   (reserved) |         offset           |
//  +----------+----------+--------------+--------------------------+
#pragma once

#include <compare>
#include <cstdint>
#include <cstdio>
#include <string>

#include "common/check.h"
#include "common/units.h"

namespace ecoscale {

using NodeId = std::uint16_t;    // Compute Node (PGAS partition)
using WorkerId = std::uint16_t;  // Worker within a Compute Node

/// Globally unique worker coordinate.
struct WorkerCoord {
  NodeId node = 0;
  WorkerId worker = 0;

  auto operator<=>(const WorkerCoord&) const = default;

  std::string str() const {
    return "n" + std::to_string(node) + ".w" + std::to_string(worker);
  }
};

class GlobalAddress {
 public:
  static constexpr int kOffsetBits = 44;
  static constexpr int kWorkerBits = 8;
  static constexpr int kNodeBits = 8;
  static constexpr std::uint64_t kOffsetMask = (1ull << kOffsetBits) - 1;

  GlobalAddress() = default;

  GlobalAddress(NodeId node, WorkerId worker, std::uint64_t offset) {
    ECO_CHECK_MSG(node < (1u << kNodeBits), "node id out of range");
    ECO_CHECK_MSG(worker < (1u << kWorkerBits), "worker id out of range");
    ECO_CHECK_MSG(offset <= kOffsetMask, "offset out of range");
    raw_ = (static_cast<std::uint64_t>(node) << 56) |
           (static_cast<std::uint64_t>(worker) << 48) | offset;
  }

  static GlobalAddress from_raw(std::uint64_t raw) {
    GlobalAddress a;
    a.raw_ = raw;
    return a;
  }

  std::uint64_t raw() const { return raw_; }
  NodeId node() const { return static_cast<NodeId>(raw_ >> 56); }
  WorkerId worker() const {
    return static_cast<WorkerId>((raw_ >> 48) & 0xff);
  }
  std::uint64_t offset() const { return raw_ & kOffsetMask; }
  WorkerCoord home() const { return WorkerCoord{node(), worker()}; }

  GlobalAddress operator+(std::uint64_t delta) const {
    ECO_CHECK_MSG(offset() + delta <= kOffsetMask, "address overflow");
    return from_raw(raw_ + delta);
  }

  auto operator<=>(const GlobalAddress&) const = default;

  std::string str() const {
    return home().str() + "+0x" + [this] {
      char buf[16];
      std::snprintf(buf, sizeof buf, "%llx",
                    static_cast<unsigned long long>(offset()));
      return std::string(buf);
    }();
  }

 private:
  std::uint64_t raw_ = 0;
};

/// Pages are the grain of UNIMEM ownership and of SMMU translation.
inline constexpr Bytes kPageSize = 4 * kKiB;
inline constexpr int kPageShift = 12;

using PageId = std::uint64_t;

inline PageId page_of(GlobalAddress a) { return a.raw() >> kPageShift; }
inline PageId page_of_offset(std::uint64_t offset) {
  return offset >> kPageShift;
}

}  // namespace ecoscale
