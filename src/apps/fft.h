// Iterative radix-2 FFT — a butterfly-structured kernel with the strided
// access patterns that stress both the HLS memory partitioning and the
// hierarchical communication model (a distributed FFT's transpose is the
// classic all-to-all).
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace ecoscale::apps {

using Complex = std::complex<double>;

/// In-place iterative radix-2 decimation-in-time FFT. Size must be a
/// power of two.
void fft(std::vector<Complex>& data, bool inverse = false);

/// Direct O(n^2) DFT, the validation reference.
std::vector<Complex> dft(const std::vector<Complex>& data);

/// Convolution via FFT (round-trip + pointwise product), exercising
/// forward, inverse and scaling together.
std::vector<double> fft_convolve(const std::vector<double>& a,
                                 const std::vector<double>& b);

}  // namespace ecoscale::apps
