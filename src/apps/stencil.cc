#include "apps/stencil.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ecoscale::apps {

Grid2D::Grid2D(std::size_t width, std::size_t height, double init)
    : width_(width), height_(height), cells_(width * height, init) {
  ECO_CHECK(width >= 3 && height >= 3);
}

double& Grid2D::at(std::size_t x, std::size_t y) {
  ECO_CHECK(x < width_ && y < height_);
  return cells_[y * width_ + x];
}

double Grid2D::at(std::size_t x, std::size_t y) const {
  ECO_CHECK(x < width_ && y < height_);
  return cells_[y * width_ + x];
}

double jacobi_step(const Grid2D& in, Grid2D& out) {
  ECO_CHECK(in.width() == out.width() && in.height() == out.height());
  double residual = 0.0;
  for (std::size_t y = 1; y + 1 < in.height(); ++y) {
    for (std::size_t x = 1; x + 1 < in.width(); ++x) {
      const double v = 0.25 * (in.at(x, y - 1) + in.at(x, y + 1) +
                               in.at(x - 1, y) + in.at(x + 1, y));
      residual = std::max(residual, std::abs(v - in.at(x, y)));
      out.at(x, y) = v;
    }
  }
  return residual;
}

std::size_t jacobi_solve(Grid2D& grid, double tol, std::size_t max_iters) {
  Grid2D scratch = grid;
  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    const double residual = jacobi_step(grid, scratch);
    // Copy interior back (halo stays fixed: Dirichlet boundary).
    for (std::size_t y = 1; y + 1 < grid.height(); ++y) {
      for (std::size_t x = 1; x + 1 < grid.width(); ++x) {
        grid.at(x, y) = scratch.at(x, y);
      }
    }
    if (residual < tol) return iter + 1;
  }
  return max_iters;
}

std::size_t halo_bytes_per_sweep(std::size_t width, std::size_t height,
                                 std::size_t tiles_x, std::size_t tiles_y) {
  ECO_CHECK(tiles_x >= 1 && tiles_y >= 1);
  const std::size_t tile_w = width / tiles_x;
  const std::size_t tile_h = height / tiles_y;
  // Each interior tile boundary exchanges one row or column of doubles in
  // both directions.
  const std::size_t vertical_cuts = tiles_x - 1;
  const std::size_t horizontal_cuts = tiles_y - 1;
  const std::size_t bytes =
      2 * vertical_cuts * tiles_y * tile_h * sizeof(double) +
      2 * horizontal_cuts * tiles_x * tile_w * sizeof(double);
  return bytes;
}

}  // namespace ecoscale::apps
