#include "apps/fft.h"

#include <cmath>

#include "common/check.h"

namespace ecoscale::apps {

namespace {

constexpr double kPi = 3.14159265358979323846;

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

}  // namespace

void fft(std::vector<Complex>& data, bool inverse) {
  const std::size_t n = data.size();
  ECO_CHECK_MSG(is_power_of_two(n), "FFT size must be a power of two");
  if (n <= 1) return;
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Butterfly stages.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * kPi /
                         static_cast<double>(len);
    const Complex wn(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wn;
      }
    }
  }
  if (inverse) {
    for (auto& x : data) x /= static_cast<double>(n);
  }
}

std::vector<Complex> dft(const std::vector<Complex>& data) {
  const std::size_t n = data.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex sum(0.0, 0.0);
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * kPi * static_cast<double>(k * t) /
                           static_cast<double>(n);
      sum += data[t] * Complex(std::cos(angle), std::sin(angle));
    }
    out[k] = sum;
  }
  return out;
}

std::vector<double> fft_convolve(const std::vector<double>& a,
                                 const std::vector<double>& b) {
  std::size_t n = 1;
  while (n < a.size() + b.size() - 1) n <<= 1;
  std::vector<Complex> fa(n, Complex(0, 0));
  std::vector<Complex> fb(n, Complex(0, 0));
  for (std::size_t i = 0; i < a.size(); ++i) fa[i] = a[i];
  for (std::size_t i = 0; i < b.size(); ++i) fb[i] = b[i];
  fft(fa);
  fft(fb);
  for (std::size_t i = 0; i < n; ++i) fa[i] *= fb[i];
  fft(fa, /*inverse=*/true);
  std::vector<double> out(a.size() + b.size() - 1);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = fa[i].real();
  return out;
}

}  // namespace ecoscale::apps
