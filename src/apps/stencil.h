// Jacobi 5-point stencil — the canonical locality-friendly HPC kernel the
// paper's hierarchical-partitioning argument (§2, Figure 1) is built
// around. Functional implementation for correctness plus halo-exchange
// accounting for the communication experiments.
#pragma once

#include <cstddef>
#include <vector>

namespace ecoscale::apps {

/// Dense 2-D grid with a one-cell halo ring.
class Grid2D {
 public:
  Grid2D(std::size_t width, std::size_t height, double init = 0.0);

  std::size_t width() const { return width_; }
  std::size_t height() const { return height_; }

  double& at(std::size_t x, std::size_t y);
  double at(std::size_t x, std::size_t y) const;

  /// Interior cells only (excludes the halo ring).
  std::size_t interior_cells() const {
    return (width_ - 2) * (height_ - 2);
  }

  std::vector<double>& data() { return cells_; }
  const std::vector<double>& data() const { return cells_; }

 private:
  std::size_t width_;
  std::size_t height_;
  std::vector<double> cells_;
};

/// One Jacobi relaxation sweep: out = 0.25 * (N + S + E + W) over the
/// interior. Returns the max absolute change (residual).
double jacobi_step(const Grid2D& in, Grid2D& out);

/// Iterate until the residual drops below `tol` or `max_iters` sweeps.
/// Returns the number of sweeps executed.
std::size_t jacobi_solve(Grid2D& grid, double tol, std::size_t max_iters);

/// Halo bytes exchanged per sweep for a (tiles_x × tiles_y) decomposition
/// of a (width × height) interior: the per-boundary traffic used by the
/// hierarchical-vs-flat mapping experiments.
std::size_t halo_bytes_per_sweep(std::size_t width, std::size_t height,
                                 std::size_t tiles_x, std::size_t tiles_y);

}  // namespace ecoscale::apps
