#include "apps/linalg.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace ecoscale::apps {

void matmul(const std::vector<double>& a, const std::vector<double>& b,
            std::vector<double>& c, std::size_t m, std::size_t k,
            std::size_t n) {
  ECO_CHECK(a.size() == m * k && b.size() == k * n);
  c.assign(m * n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const double av = a[i * k + p];
      for (std::size_t j = 0; j < n; ++j) {
        c[i * n + j] += av * b[p * n + j];
      }
    }
  }
}

void matmul_blocked(const std::vector<double>& a, const std::vector<double>& b,
                    std::vector<double>& c, std::size_t m, std::size_t k,
                    std::size_t n, std::size_t block) {
  ECO_CHECK(a.size() == m * k && b.size() == k * n);
  ECO_CHECK(block >= 1);
  c.assign(m * n, 0.0);
  for (std::size_t ii = 0; ii < m; ii += block) {
    for (std::size_t pp = 0; pp < k; pp += block) {
      for (std::size_t jj = 0; jj < n; jj += block) {
        const std::size_t ie = std::min(ii + block, m);
        const std::size_t pe = std::min(pp + block, k);
        const std::size_t je = std::min(jj + block, n);
        for (std::size_t i = ii; i < ie; ++i) {
          for (std::size_t p = pp; p < pe; ++p) {
            const double av = a[i * k + p];
            for (std::size_t j = jj; j < je; ++j) {
              c[i * n + j] += av * b[p * n + j];
            }
          }
        }
      }
    }
  }
}

CsrMatrix make_sparse(std::size_t rows, std::size_t cols,
                      std::size_t nnz_per_row, std::uint64_t seed) {
  ECO_CHECK(rows > 0 && cols > 0 && nnz_per_row > 0);
  Rng rng(seed);
  CsrMatrix m;
  m.rows = rows;
  m.cols = cols;
  m.row_ptr.push_back(0);
  for (std::size_t r = 0; r < rows; ++r) {
    // Distinct sorted column indices per row.
    std::vector<std::size_t> cols_in_row;
    const std::size_t target = std::min(nnz_per_row, cols);
    while (cols_in_row.size() < target) {
      const auto c = static_cast<std::size_t>(rng.uniform_u64(cols));
      if (std::find(cols_in_row.begin(), cols_in_row.end(), c) ==
          cols_in_row.end()) {
        cols_in_row.push_back(c);
      }
    }
    std::sort(cols_in_row.begin(), cols_in_row.end());
    for (const std::size_t c : cols_in_row) {
      m.col_idx.push_back(c);
      m.values.push_back(rng.uniform(-1.0, 1.0));
    }
    m.row_ptr.push_back(m.col_idx.size());
  }
  return m;
}

std::vector<double> spmv(const CsrMatrix& a, const std::vector<double>& x) {
  ECO_CHECK(x.size() == a.cols);
  std::vector<double> y(a.rows, 0.0);
  for (std::size_t r = 0; r < a.rows; ++r) {
    double sum = 0.0;
    for (std::size_t i = a.row_ptr[r]; i < a.row_ptr[r + 1]; ++i) {
      sum += a.values[i] * x[a.col_idx[i]];
    }
    y[r] = sum;
  }
  return y;
}

}  // namespace ecoscale::apps
