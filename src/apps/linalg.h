// Dense and sparse linear-algebra kernels used by examples and benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ecoscale::apps {

/// Row-major dense matrix multiply: C (m×n) = A (m×k) · B (k×n).
void matmul(const std::vector<double>& a, const std::vector<double>& b,
            std::vector<double>& c, std::size_t m, std::size_t k,
            std::size_t n);

/// Blocked variant with `block` × `block` tiles (same result, the access
/// pattern the HLS tile kernel models).
void matmul_blocked(const std::vector<double>& a, const std::vector<double>& b,
                    std::vector<double>& c, std::size_t m, std::size_t k,
                    std::size_t n, std::size_t block);

/// CSR sparse matrix.
struct CsrMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::size_t> row_ptr;  // rows + 1
  std::vector<std::size_t> col_idx;
  std::vector<double> values;

  std::size_t nnz() const { return values.size(); }
};

/// Deterministic random sparse matrix with ~`nnz_per_row` entries per row.
CsrMatrix make_sparse(std::size_t rows, std::size_t cols,
                      std::size_t nnz_per_row, std::uint64_t seed);

/// y = A·x.
std::vector<double> spmv(const CsrMatrix& a, const std::vector<double>& x);

}  // namespace ecoscale::apps
