#include "apps/cart.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"
#include "common/rng.h"

namespace ecoscale::apps {

Dataset make_blobs(std::size_t rows, std::size_t features, int classes,
                   std::uint64_t seed) {
  ECO_CHECK(rows > 0 && features > 0 && classes >= 2);
  Rng rng(seed);
  Dataset d;
  d.features = features;
  d.classes = classes;
  d.rows.reserve(rows);
  d.labels.reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    const int label = static_cast<int>(rng.uniform_u64(
        static_cast<std::uint64_t>(classes)));
    std::vector<double> row(features);
    for (std::size_t f = 0; f < features; ++f) {
      // Classes are separated along every other feature; the rest is noise.
      const double center =
          (f % 2 == 0) ? 3.0 * static_cast<double>(label) : 0.0;
      row[f] = rng.normal(center, 1.0);
    }
    d.rows.push_back(std::move(row));
    d.labels.push_back(label);
  }
  return d;
}

namespace {

double gini(const std::vector<std::size_t>& counts, std::size_t total) {
  if (total == 0) return 0.0;
  double g = 1.0;
  for (const std::size_t c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    g -= p * p;
  }
  return g;
}

}  // namespace

Split best_split(const Dataset& data, const std::vector<std::size_t>& rows) {
  Split best;
  if (rows.size() < 2) return best;
  const auto k = static_cast<std::size_t>(data.classes);
  for (std::size_t f = 0; f < data.features; ++f) {
    // Sort row indices by feature value; sweep thresholds between
    // consecutive distinct values maintaining left/right class counts.
    std::vector<std::size_t> order = rows;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                return data.rows[a][f] < data.rows[b][f];
              });
    std::vector<std::size_t> left(k, 0);
    std::vector<std::size_t> right(k, 0);
    for (const std::size_t r : order) {
      ++right[static_cast<std::size_t>(data.labels[r])];
    }
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
      const std::size_t r = order[i];
      const auto label = static_cast<std::size_t>(data.labels[r]);
      ++left[label];
      --right[label];
      const double v = data.rows[r][f];
      const double next = data.rows[order[i + 1]][f];
      if (v == next) continue;
      const std::size_t nl = i + 1;
      const std::size_t nr = order.size() - nl;
      const double weighted =
          (static_cast<double>(nl) * gini(left, nl) +
           static_cast<double>(nr) * gini(right, nr)) /
          static_cast<double>(order.size());
      if (weighted < best.gini) {
        best.feature = f;
        best.threshold = 0.5 * (v + next);
        best.gini = weighted;
        best.valid = true;
      }
    }
  }
  return best;
}

namespace {

int majority_label(const Dataset& data, const std::vector<std::size_t>& rows,
                   int classes) {
  std::vector<std::size_t> counts(static_cast<std::size_t>(classes), 0);
  for (const std::size_t r : rows) {
    ++counts[static_cast<std::size_t>(data.labels[r])];
  }
  return static_cast<int>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());
}

std::unique_ptr<TreeNode> build_node(const Dataset& data,
                                     const std::vector<std::size_t>& rows,
                                     const CartConfig& config,
                                     std::size_t depth) {
  auto node = std::make_unique<TreeNode>();
  node->label = majority_label(data, rows, data.classes);
  if (depth >= config.max_depth || rows.size() < config.min_rows) {
    return node;
  }
  const Split split = best_split(data, rows);
  if (!split.valid) return node;
  std::vector<std::size_t> left_rows;
  std::vector<std::size_t> right_rows;
  for (const std::size_t r : rows) {
    if (data.rows[r][split.feature] <= split.threshold) {
      left_rows.push_back(r);
    } else {
      right_rows.push_back(r);
    }
  }
  if (left_rows.empty() || right_rows.empty()) return node;
  node->leaf = false;
  node->split = split;
  node->left = build_node(data, left_rows, config, depth + 1);
  node->right = build_node(data, right_rows, config, depth + 1);
  return node;
}

}  // namespace

std::unique_ptr<TreeNode> build_tree(const Dataset& data,
                                     const CartConfig& config) {
  ECO_CHECK(data.size() > 0);
  std::vector<std::size_t> rows(data.size());
  std::iota(rows.begin(), rows.end(), 0);
  return build_node(data, rows, config, 0);
}

int predict(const TreeNode& tree, const std::vector<double>& row) {
  const TreeNode* node = &tree;
  while (!node->leaf) {
    node = (row[node->split.feature] <= node->split.threshold)
               ? node->left.get()
               : node->right.get();
  }
  return node->label;
}

double accuracy(const TreeNode& tree, const Dataset& data) {
  if (data.size() == 0) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (predict(tree, data.rows[i]) == data.labels[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(data.size());
}

}  // namespace ecoscale::apps
