// Lloyd's k-means — the second data-mining workload class (alongside CART)
// of the Convey/Maxeler-style systems the paper cites: a distance kernel
// that is embarrassingly parallel per point (HW-friendly) around a small
// sequential update step (CPU-friendly), i.e. exactly the split the
// runtime's HW/SW partitioning is for.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ecoscale::apps {

struct KmeansResult {
  std::vector<std::vector<double>> centroids;  // k × dims
  std::vector<int> assignment;                 // per point
  std::size_t iterations = 0;
  double inertia = 0.0;  // sum of squared distances to assigned centroid
};

/// Deterministic synthetic clustered data: k Gaussian blobs.
std::vector<std::vector<double>> make_clustered_points(std::size_t points,
                                                       std::size_t dims,
                                                       std::size_t clusters,
                                                       std::uint64_t seed);

/// Lloyd's algorithm with k-means++-style farthest-point seeding
/// (deterministic given the seed). Stops when assignments are stable or
/// `max_iters` is reached.
KmeansResult kmeans(const std::vector<std::vector<double>>& points,
                    std::size_t k, std::size_t max_iters,
                    std::uint64_t seed);

}  // namespace ecoscale::apps
