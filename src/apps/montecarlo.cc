#include "apps/montecarlo.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace ecoscale::apps {

namespace {

double norm_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

}  // namespace

double black_scholes_call(const OptionParams& p) {
  const double d1 =
      (std::log(p.spot / p.strike) +
       (p.rate + 0.5 * p.volatility * p.volatility) * p.maturity) /
      (p.volatility * std::sqrt(p.maturity));
  const double d2 = d1 - p.volatility * std::sqrt(p.maturity);
  return p.spot * norm_cdf(d1) -
         p.strike * std::exp(-p.rate * p.maturity) * norm_cdf(d2);
}

McResult price_european_call(const OptionParams& p, std::size_t paths,
                             std::uint64_t seed) {
  ECO_CHECK(paths > 0);
  Rng rng(seed);
  const double drift =
      (p.rate - 0.5 * p.volatility * p.volatility) * p.maturity;
  const double diffusion = p.volatility * std::sqrt(p.maturity);
  const double discount = std::exp(-p.rate * p.maturity);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < paths; ++i) {
    const double z = rng.normal();
    const double terminal = p.spot * std::exp(drift + diffusion * z);
    const double payoff = discount * std::max(terminal - p.strike, 0.0);
    sum += payoff;
    sum_sq += payoff * payoff;
  }
  McResult r;
  r.paths = paths;
  r.price = sum / static_cast<double>(paths);
  const double var =
      (sum_sq - sum * sum / static_cast<double>(paths)) /
      static_cast<double>(paths > 1 ? paths - 1 : 1);
  r.std_error = std::sqrt(var / static_cast<double>(paths));
  return r;
}

McResult price_asian_call(const OptionParams& p, std::size_t paths,
                          std::size_t steps, std::uint64_t seed) {
  ECO_CHECK(paths > 0 && steps > 0);
  Rng rng(seed);
  const double dt = p.maturity / static_cast<double>(steps);
  const double drift = (p.rate - 0.5 * p.volatility * p.volatility) * dt;
  const double diffusion = p.volatility * std::sqrt(dt);
  const double discount = std::exp(-p.rate * p.maturity);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t i = 0; i < paths; ++i) {
    double s = p.spot;
    double avg = 0.0;
    for (std::size_t t = 0; t < steps; ++t) {
      s *= std::exp(drift + diffusion * rng.normal());
      avg += s;
    }
    avg /= static_cast<double>(steps);
    const double payoff = discount * std::max(avg - p.strike, 0.0);
    sum += payoff;
    sum_sq += payoff * payoff;
  }
  McResult r;
  r.paths = paths;
  r.price = sum / static_cast<double>(paths);
  const double var =
      (sum_sq - sum * sum / static_cast<double>(paths)) /
      static_cast<double>(paths > 1 ? paths - 1 : 1);
  r.std_error = std::sqrt(var / static_cast<double>(paths));
  return r;
}

}  // namespace ecoscale::apps
