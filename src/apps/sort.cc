#include "apps/sort.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"

namespace ecoscale::apps {

std::vector<std::uint64_t> make_keys(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> keys(count);
  for (auto& k : keys) k = rng();
  return keys;
}

std::vector<std::uint64_t> choose_splitters(
    const std::vector<std::vector<std::uint64_t>>& per_rank_keys,
    std::size_t buckets) {
  ECO_CHECK(buckets >= 1);
  // Regular sampling: each rank contributes `buckets` evenly spaced local
  // samples; the sorted sample set yields the global splitters.
  std::vector<std::uint64_t> samples;
  for (const auto& keys : per_rank_keys) {
    if (keys.empty()) continue;
    std::vector<std::uint64_t> local = keys;
    std::sort(local.begin(), local.end());
    for (std::size_t i = 0; i < buckets; ++i) {
      samples.push_back(local[i * local.size() / buckets]);
    }
  }
  std::sort(samples.begin(), samples.end());
  std::vector<std::uint64_t> splitters;
  if (samples.empty()) return splitters;  // no keys anywhere: one bucket
  for (std::size_t b = 1; b < buckets; ++b) {
    splitters.push_back(samples[b * samples.size() / buckets]);
  }
  return splitters;
}

std::vector<std::vector<std::uint64_t>> partition_keys(
    const std::vector<std::uint64_t>& keys,
    const std::vector<std::uint64_t>& splitters) {
  std::vector<std::vector<std::uint64_t>> buckets(splitters.size() + 1);
  for (const std::uint64_t k : keys) {
    // Keys equal to a splitter belong to the left bucket.
    const auto it =
        std::lower_bound(splitters.begin(), splitters.end(), k);
    buckets[static_cast<std::size_t>(it - splitters.begin())].push_back(k);
  }
  return buckets;
}

SampleSortTrace sample_sort(const std::vector<std::uint64_t>& keys,
                            std::size_t ranks) {
  ECO_CHECK(ranks >= 1);
  SampleSortTrace trace;
  if (keys.empty()) return trace;
  // 1. Scatter keys block-wise over ranks.
  std::vector<std::vector<std::uint64_t>> local(ranks);
  const std::size_t chunk = (keys.size() + ranks - 1) / ranks;
  for (std::size_t r = 0; r < ranks; ++r) {
    const std::size_t lo = std::min(r * chunk, keys.size());
    const std::size_t hi = std::min(lo + chunk, keys.size());
    local[r].assign(keys.begin() + static_cast<std::ptrdiff_t>(lo),
                    keys.begin() + static_cast<std::ptrdiff_t>(hi));
  }
  // 2. Splitter selection and all-to-all redistribution.
  const auto splitters = choose_splitters(local, ranks);
  std::vector<std::vector<std::uint64_t>> incoming(ranks);
  for (std::size_t r = 0; r < ranks; ++r) {
    auto buckets = partition_keys(local[r], splitters);
    for (std::size_t b = 0; b < ranks; ++b) {
      if (b != r) trace.alltoall_bytes += buckets[b].size() * sizeof(std::uint64_t);
      incoming[b].insert(incoming[b].end(), buckets[b].begin(),
                         buckets[b].end());
    }
  }
  // 3. Local sorts and concatenation.
  for (std::size_t r = 0; r < ranks; ++r) {
    std::sort(incoming[r].begin(), incoming[r].end());
    trace.local_sort_keys += incoming[r].size();
    trace.sorted.insert(trace.sorted.end(), incoming[r].begin(),
                        incoming[r].end());
  }
  return trace;
}

}  // namespace ecoscale::apps
