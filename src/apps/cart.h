// CART decision-tree classification — the Convey HC-1 data-mining workload
// the paper cites ([17]: HC-CART). Gini-impurity split search is the
// accelerated hot loop; tree induction and prediction complete the
// application.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace ecoscale::apps {

struct Dataset {
  std::size_t features = 0;
  std::vector<std::vector<double>> rows;  // rows × features
  std::vector<int> labels;                // class per row (0-based)
  int classes = 2;

  std::size_t size() const { return rows.size(); }
};

/// Deterministic synthetic classification data: two Gaussian blobs per
/// class with axis-aligned separability on a subset of features.
Dataset make_blobs(std::size_t rows, std::size_t features, int classes,
                   std::uint64_t seed);

struct Split {
  std::size_t feature = 0;
  double threshold = 0.0;
  double gini = 1.0;  // impurity after the split (weighted)
  bool valid = false;
};

/// Exhaustive best-gini split over all features/thresholds — the kernel
/// HC-CART puts in hardware.
Split best_split(const Dataset& data, const std::vector<std::size_t>& rows);

struct TreeNode {
  bool leaf = true;
  int label = 0;
  Split split;
  std::unique_ptr<TreeNode> left;
  std::unique_ptr<TreeNode> right;
};

struct CartConfig {
  std::size_t max_depth = 8;
  std::size_t min_rows = 4;
};

std::unique_ptr<TreeNode> build_tree(const Dataset& data,
                                     const CartConfig& config = {});

int predict(const TreeNode& tree, const std::vector<double>& row);

/// Fraction of correctly classified rows.
double accuracy(const TreeNode& tree, const Dataset& data);

}  // namespace ecoscale::apps
