// Monte-Carlo option pricing — the Maxeler-class financial workload the
// paper cites ([18]: "Multi-level Customisation Framework for Curve Based
// Monte Carlo Financial Simulations").
#pragma once

#include <cstdint>
#include <cstddef>

namespace ecoscale::apps {

struct OptionParams {
  double spot = 100.0;      // S0
  double strike = 100.0;    // K
  double rate = 0.05;       // r
  double volatility = 0.2;  // sigma
  double maturity = 1.0;    // T (years)
};

struct McResult {
  double price = 0.0;
  double std_error = 0.0;
  std::size_t paths = 0;
};

/// Price a European call by GBM terminal-value sampling.
McResult price_european_call(const OptionParams& params, std::size_t paths,
                             std::uint64_t seed);

/// Closed-form Black–Scholes price (validation reference).
double black_scholes_call(const OptionParams& params);

/// Path-wise Asian (arithmetic average) call with `steps` time steps —
/// the multi-step curve-based variant that actually stresses the pipeline.
McResult price_asian_call(const OptionParams& params, std::size_t paths,
                          std::size_t steps, std::uint64_t seed);

}  // namespace ecoscale::apps
