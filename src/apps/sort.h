// Distributed histogram (sample) sort — the hybrid MPI+PGAS workload of the
// paper's reference [5] ("Designing Scalable Out-of-core Sorting with
// Hybrid MPI+PGAS Programming Models"). The partitioning phase crosses
// Compute Nodes (MPI); the per-partition sorting is intra-node (PGAS).
#pragma once

#include <cstdint>
#include <vector>

namespace ecoscale::apps {

/// Deterministic pseudo-random keys.
std::vector<std::uint64_t> make_keys(std::size_t count, std::uint64_t seed);

/// Choose `buckets - 1` splitters via regular sampling of the inputs.
std::vector<std::uint64_t> choose_splitters(
    const std::vector<std::vector<std::uint64_t>>& per_rank_keys,
    std::size_t buckets);

/// Partition keys by splitters: result[b] = keys for bucket b.
std::vector<std::vector<std::uint64_t>> partition_keys(
    const std::vector<std::uint64_t>& keys,
    const std::vector<std::uint64_t>& splitters);

/// Full functional sample sort across `ranks` logical ranks; returns the
/// concatenated sorted sequence (for validation) and per-phase byte counts.
struct SampleSortTrace {
  std::vector<std::uint64_t> sorted;
  std::size_t alltoall_bytes = 0;   // inter-rank (MPI) traffic
  std::size_t local_sort_keys = 0;  // intra-rank work
};

SampleSortTrace sample_sort(const std::vector<std::uint64_t>& keys,
                            std::size_t ranks);

}  // namespace ecoscale::apps
