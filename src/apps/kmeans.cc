#include "apps/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/rng.h"

namespace ecoscale::apps {

namespace {

double sq_dist(const std::vector<double>& a, const std::vector<double>& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}

}  // namespace

std::vector<std::vector<double>> make_clustered_points(std::size_t points,
                                                       std::size_t dims,
                                                       std::size_t clusters,
                                                       std::uint64_t seed) {
  ECO_CHECK(points > 0 && dims > 0 && clusters > 0);
  Rng rng(seed);
  // Well-separated centres on a coarse lattice.
  std::vector<std::vector<double>> centres(clusters,
                                           std::vector<double>(dims));
  for (std::size_t c = 0; c < clusters; ++c) {
    for (std::size_t d = 0; d < dims; ++d) {
      centres[c][d] = 10.0 * static_cast<double>(rng.uniform_int(-5, 5));
    }
  }
  std::vector<std::vector<double>> out;
  out.reserve(points);
  for (std::size_t p = 0; p < points; ++p) {
    const std::size_t c = rng.uniform_u64(clusters);
    std::vector<double> point(dims);
    for (std::size_t d = 0; d < dims; ++d) {
      point[d] = centres[c][d] + rng.normal(0.0, 1.0);
    }
    out.push_back(std::move(point));
  }
  return out;
}

KmeansResult kmeans(const std::vector<std::vector<double>>& points,
                    std::size_t k, std::size_t max_iters,
                    std::uint64_t seed) {
  ECO_CHECK(!points.empty());
  ECO_CHECK(k >= 1 && k <= points.size());
  const std::size_t dims = points.front().size();
  Rng rng(seed);

  KmeansResult r;
  // Farthest-point seeding: first centroid random, each next centroid the
  // point farthest from all chosen so far (deterministic, robust).
  r.centroids.push_back(points[rng.uniform_u64(points.size())]);
  while (r.centroids.size() < k) {
    std::size_t best = 0;
    double best_dist = -1.0;
    for (std::size_t p = 0; p < points.size(); ++p) {
      double nearest = std::numeric_limits<double>::infinity();
      for (const auto& c : r.centroids) {
        nearest = std::min(nearest, sq_dist(points[p], c));
      }
      if (nearest > best_dist) {
        best_dist = nearest;
        best = p;
      }
    }
    r.centroids.push_back(points[best]);
  }

  r.assignment.assign(points.size(), -1);
  for (r.iterations = 0; r.iterations < max_iters; ++r.iterations) {
    // Assignment step (the HW-offloadable distance kernel).
    bool changed = false;
    for (std::size_t p = 0; p < points.size(); ++p) {
      int best = 0;
      double best_dist = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < k; ++c) {
        const double d = sq_dist(points[p], r.centroids[c]);
        if (d < best_dist) {
          best_dist = d;
          best = static_cast<int>(c);
        }
      }
      if (r.assignment[p] != best) {
        r.assignment[p] = best;
        changed = true;
      }
    }
    if (!changed) {
      ++r.iterations;
      break;
    }
    // Update step (small, sequential).
    std::vector<std::vector<double>> sums(k, std::vector<double>(dims, 0.0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t p = 0; p < points.size(); ++p) {
      const auto c = static_cast<std::size_t>(r.assignment[p]);
      ++counts[c];
      for (std::size_t d = 0; d < dims; ++d) sums[c][d] += points[p][d];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its centroid
      for (std::size_t d = 0; d < dims; ++d) {
        r.centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }
  }
  r.inertia = 0.0;
  for (std::size_t p = 0; p < points.size(); ++p) {
    r.inertia +=
        sq_dist(points[p],
                r.centroids[static_cast<std::size_t>(r.assignment[p])]);
  }
  return r;
}

}  // namespace ecoscale::apps
