// Allocation-free tracing & metrics (spans, instants, counter tracks).
//
// The paper's claims are timeline arguments — when a worker stalled on a
// remote page, queued behind a shared accelerator, waited out a partial
// reconfiguration — so every load-bearing layer emits typed POD events
// into a per-thread fixed-capacity ring. A TraceSession owns the rings,
// applies category filters and counter sampling, and serializes to Chrome
// trace-event JSON (loadable in Perfetto / chrome://tracing; `pid` = node,
// `tid` = worker/accelerator lane) plus a compact text summary of the top
// spans by total and self time.
//
// Hot-path contract:
//  * Disabled (the default): every ECO_TRACE_* site is one relaxed atomic
//    load and a predictable branch. Compile with ECO_TRACE_DISABLED to
//    make the sites expand to `(void)0` entirely.
//  * Enabled: emitting writes one 32-byte POD into a preallocated ring —
//    no heap allocation, no locks, no string work. Names and categories
//    are interned CounterIds (common/intern.h), resolved once per call
//    site; timestamps are sim-time picoseconds from the caller.
//  * The ring is a window: when it wraps, the oldest events are evicted
//    (counted, reported at export). Begin/end spans that lost their
//    partner to eviction — or to a path that legitimately never closes,
//    such as a task killed by failure injection — are repaired at export.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/intern.h"
#include "common/units.h"

namespace ecoscale::obs {

/// Event categories, one bit each in the session filter mask. Fixed small
/// vocabulary: mostly the subsystem a call site lives in, plus four
/// cross-cutting fault-lifecycle categories (injection, detection, retry,
/// failover) that span subsystems and need to be filterable on their own.
enum class Cat : std::uint8_t {
  kSim = 0,       // simulation kernel (event dispatch, pending depth)
  kRuntime = 1,   // task lifetime: queue/exec/spill/failure, daemon
  kUnimem = 2,    // PGAS remote accesses, page/task migration
  kUnilogic = 3,  // accelerator pool: queue/execute/doorbell
  kFabric = 4,    // partial reconfiguration
  kNet = 5,       // interconnect counters
  kApp = 6,       // free for benches/apps
  kFault = 7,     // injected faults: crash/repair/node loss/SEU/link
  kDetect = 8,    // heartbeat-monitor detections of injected faults
  kRetry = 9,     // bounded retry attempts (PGAS access, pool doorbell)
  kFailover = 10, // recovery actions: page re-home, task re-queue
  kServe = 11,    // serving workloads: request lifecycle, shed, apply
  kRepart = 12,   // online repartitioner: epoch folds, plans, migrations
};
inline constexpr std::size_t kCatCount = 13;

constexpr std::uint32_t cat_bit(Cat c) {
  return std::uint32_t{1} << static_cast<unsigned>(c);
}
inline constexpr std::uint32_t kAllCats = (std::uint32_t{1} << kCatCount) - 1;

/// Short name used in the exported `cat` field and in --trace-categories.
const char* cat_name(Cat c);

/// Parse a comma-separated category list ("unimem,net"); empty or "all"
/// selects every category. Unknown names are ignored (a warning would be
/// noise in sweeps; trace_summary.py reports what is actually present).
std::uint32_t cat_mask_from_list(std::string_view csv);

enum class EventType : std::uint8_t {
  kBegin = 0,     // span opens at ts
  kEnd = 1,       // span closes at ts (pairs with the innermost kBegin)
  kComplete = 2,  // span with known duration, emitted once
  kInstant = 3,   // point event
  kCounter = 4,   // counter track sample (value)
};

/// Timeline lane: `pid` maps to the Chrome trace process (the node),
/// `tid` to the thread (worker / accelerator / queue lane).
struct Lane {
  std::uint16_t pid = 0;
  std::uint16_t tid = 0;
};
/// Reserved pids for machine-wide tracks.
inline constexpr std::uint16_t kSimPid = 0xFFFF;  // simulation kernel
inline constexpr std::uint16_t kNetPid = 0xFFFE;  // interconnect
/// Worker `w`'s queue-wait lane is tid kQueueTidBase + w (its execution
/// lane is plain tid w); queue spans overlap, so they get their own lane.
inline constexpr std::uint16_t kQueueTidBase = 0x100;

/// One trace event. 32-byte POD: the ring is a flat array of these and an
/// emit is a single struct store.
struct TraceEvent {
  SimTime ts = 0;            // picoseconds
  std::uint64_t value = 0;   // kComplete: duration ps; kCounter: value
  CounterId name = 0;        // interned event name
  std::uint32_t arg = 0;     // numeric attribute (bytes, task id, ...)
  std::uint16_t pid = 0;
  std::uint16_t tid = 0;
  EventType type = EventType::kInstant;
  std::uint8_t cat = 0;
  std::uint16_t pad = 0;
};
static_assert(sizeof(TraceEvent) == 32, "TraceEvent must stay one store");

/// Fixed-capacity ring of trace events, single-writer (one per thread).
/// Capacity is rounded up to a power of two at construction; after that,
/// emitting never allocates. Wrapping evicts the oldest events.
class TraceRecorder {
 public:
  TraceRecorder(std::size_t capacity, std::uint32_t counter_sample_every);

  void emit(EventType type, Cat cat, CounterId name, Lane lane, SimTime ts,
            std::uint64_t value, std::uint32_t arg) {
    TraceEvent& e = ring_[static_cast<std::size_t>(head_) & mask_];
    e.ts = ts;
    e.value = value;
    e.name = name;
    e.arg = arg;
    e.pid = lane.pid;
    e.tid = lane.tid;
    e.type = type;
    e.cat = static_cast<std::uint8_t>(cat);
    ++head_;
  }

  /// Counter-track sampling gate: true every Nth call (N = the session's
  /// counter_sample_every; 0/1 keeps every sample). Shared across the
  /// thread's counter sites — it thins the track, it does not ration
  /// fairly per name.
  bool counter_due() {
    if (counter_every_ <= 1) return true;
    return (counter_tick_++ % counter_every_) == 0;
  }

  std::uint64_t emitted() const { return head_; }
  std::uint64_t dropped() const {
    return head_ > ring_.size() ? head_ - ring_.size() : 0;
  }
  std::size_t size() const {
    return head_ < ring_.size() ? static_cast<std::size_t>(head_)
                                : ring_.size();
  }
  /// Event `i` of the retained window, oldest first (0 <= i < size()).
  const TraceEvent& at(std::size_t i) const {
    const std::uint64_t first = head_ - size();
    return ring_[static_cast<std::size_t>(first + i) & mask_];
  }

 private:
  std::vector<TraceEvent> ring_;  // sized once at construction
  std::uint64_t head_ = 0;
  std::size_t mask_ = 0;
  std::uint32_t counter_every_ = 1;
  std::uint32_t counter_tick_ = 0;
};

struct TraceOptions {
  std::string path;                    // export target ("" = caller exports)
  std::uint32_t categories = kAllCats; // cat_bit() mask
  std::size_t ring_capacity = std::size_t{1} << 18;  // events per thread
  std::uint32_t counter_sample_every = 16;           // thin counter tracks
};

/// Category filter mask; 0 means tracing is off. Read on every ECO_TRACE_*
/// site, so it is a bare relaxed atomic, not a function call.
extern std::atomic<std::uint32_t> g_trace_mask;

/// Process-wide session. start() arms the mask and resets recorders;
/// threads register their ring lazily on first emit (the only allocating
/// step, part of warm-up). stop() disarms but keeps the events so they
/// can still be exported. Leaked singleton: safe to export from atexit.
class TraceSession {
 public:
  static TraceSession& instance();

  void start(TraceOptions opts);
  void stop() { g_trace_mask.store(0, std::memory_order_relaxed); }
  bool active() const {
    return g_trace_mask.load(std::memory_order_relaxed) != 0;
  }
  const TraceOptions& options() const { return opts_; }

  /// This thread's recorder, registering it with the session on first use
  /// (or after a start() reset).
  TraceRecorder& thread_recorder();

  /// Serialize every recorder to Chrome trace-event JSON. Begin/end pairs
  /// are matched per lane and exported as complete ("X") spans; orphaned
  /// ends open at the window start, orphaned begins close at the window
  /// end, so the output is always balanced and well-formed.
  void export_json(std::ostream& os) const;
  /// Export to options().path (or `path` if given). False on I/O failure.
  bool export_file(const std::string& path = "") const;

  /// Compact text summary: event totals plus the top spans ranked by
  /// total and by self (non-child) sim-time.
  std::string summary(std::size_t top_n = 10) const;

  std::uint64_t events_recorded() const;
  std::uint64_t events_dropped() const;

 private:
  TraceSession() = default;
  TraceRecorder* register_thread();

  TraceOptions opts_;
  /// Bumped by start(); invalidates the per-thread cached recorder.
  std::atomic<std::uint64_t> epoch_{0};
  mutable std::vector<std::unique_ptr<TraceRecorder>> recorders_;
  mutable std::mutex mu_;  // guards recorders_ registration (cold path)
};

/// Hot-path gate: nullptr unless `c` is enabled. The common (disabled)
/// path is one load + one test.
inline TraceRecorder* tracer(Cat c) {
  const std::uint32_t mask = g_trace_mask.load(std::memory_order_relaxed);
  if ((mask & cat_bit(c)) == 0) return nullptr;
  return &TraceSession::instance().thread_recorder();
}

}  // namespace ecoscale::obs

// --- instrumentation macros -------------------------------------------------
//
// All arguments after `cat` are evaluated only when the category is
// enabled, so name lookups (function-local statics) and attribute
// computation cost nothing while tracing is off. ECO_TRACE_DISABLED
// removes the sites entirely.
#if defined(ECO_TRACE_DISABLED)

#define ECO_TRACE_SPAN(cat, name_id, lane, start_ts, end_ts, arg) ((void)0)
#define ECO_TRACE_BEGIN(cat, name_id, lane, ts) ((void)0)
#define ECO_TRACE_END(cat, name_id, lane, ts) ((void)0)
#define ECO_TRACE_INSTANT(cat, name_id, lane, ts, arg) ((void)0)
#define ECO_TRACE_COUNTER(cat, name_id, lane, ts, value) ((void)0)

#else

/// Complete span [start_ts, end_ts] with a numeric attribute.
#define ECO_TRACE_SPAN(cat, name_id, lane, start_ts, end_ts, arg)            \
  do {                                                                       \
    if (::ecoscale::obs::TraceRecorder* eco_tr_ =                            \
            ::ecoscale::obs::tracer(cat)) {                                  \
      const ::ecoscale::SimTime eco_t0_ = (start_ts);                        \
      eco_tr_->emit(::ecoscale::obs::EventType::kComplete, (cat),            \
                    (name_id), (lane), eco_t0_,                              \
                    static_cast<std::uint64_t>((end_ts) - eco_t0_),          \
                    static_cast<std::uint32_t>(arg));                        \
    }                                                                        \
  } while (0)

#define ECO_TRACE_BEGIN(cat, name_id, lane, ts)                              \
  do {                                                                       \
    if (::ecoscale::obs::TraceRecorder* eco_tr_ =                            \
            ::ecoscale::obs::tracer(cat)) {                                  \
      eco_tr_->emit(::ecoscale::obs::EventType::kBegin, (cat), (name_id),    \
                    (lane), (ts), 0, 0);                                     \
    }                                                                        \
  } while (0)

#define ECO_TRACE_END(cat, name_id, lane, ts)                                \
  do {                                                                       \
    if (::ecoscale::obs::TraceRecorder* eco_tr_ =                            \
            ::ecoscale::obs::tracer(cat)) {                                  \
      eco_tr_->emit(::ecoscale::obs::EventType::kEnd, (cat), (name_id),      \
                    (lane), (ts), 0, 0);                                     \
    }                                                                        \
  } while (0)

#define ECO_TRACE_INSTANT(cat, name_id, lane, ts, arg)                       \
  do {                                                                       \
    if (::ecoscale::obs::TraceRecorder* eco_tr_ =                            \
            ::ecoscale::obs::tracer(cat)) {                                  \
      eco_tr_->emit(::ecoscale::obs::EventType::kInstant, (cat), (name_id),  \
                    (lane), (ts), 0, static_cast<std::uint32_t>(arg));       \
    }                                                                        \
  } while (0)

/// Counter-track sample, thinned by the session's sampling interval.
#define ECO_TRACE_COUNTER(cat, name_id, lane, ts, value)                     \
  do {                                                                       \
    if (::ecoscale::obs::TraceRecorder* eco_tr_ =                            \
            ::ecoscale::obs::tracer(cat)) {                                  \
      if (eco_tr_->counter_due()) {                                         \
        eco_tr_->emit(::ecoscale::obs::EventType::kCounter, (cat),           \
                      (name_id), (lane), (ts),                               \
                      static_cast<std::uint64_t>(value), 0);                 \
      }                                                                      \
    }                                                                        \
  } while (0)

#endif  // ECO_TRACE_DISABLED
