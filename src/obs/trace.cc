#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <unordered_map>

namespace ecoscale::obs {

std::atomic<std::uint32_t> g_trace_mask{0};

const char* cat_name(Cat c) {
  switch (c) {
    case Cat::kSim: return "sim";
    case Cat::kRuntime: return "runtime";
    case Cat::kUnimem: return "unimem";
    case Cat::kUnilogic: return "unilogic";
    case Cat::kFabric: return "fabric";
    case Cat::kNet: return "net";
    case Cat::kApp: return "app";
    case Cat::kFault: return "fault";
    case Cat::kDetect: return "detect";
    case Cat::kRetry: return "retry";
    case Cat::kFailover: return "failover";
    case Cat::kServe: return "serve";
    case Cat::kRepart: return "repart";
  }
  return "?";
}

std::uint32_t cat_mask_from_list(std::string_view csv) {
  if (csv.empty() || csv == "all") return kAllCats;
  std::uint32_t mask = 0;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = std::min(csv.find(',', pos), csv.size());
    const std::string_view item = csv.substr(pos, comma - pos);
    for (std::size_t c = 0; c < kCatCount; ++c) {
      if (item == cat_name(static_cast<Cat>(c))) {
        mask |= cat_bit(static_cast<Cat>(c));
      }
    }
    pos = comma + 1;
  }
  return mask != 0 ? mask : kAllCats;
}

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

TraceRecorder::TraceRecorder(std::size_t capacity,
                             std::uint32_t counter_sample_every)
    : ring_(round_up_pow2(std::max<std::size_t>(capacity, 16))),
      mask_(ring_.size() - 1),
      counter_every_(counter_sample_every) {}

TraceSession& TraceSession::instance() {
  static TraceSession* session = new TraceSession;  // leaked: atexit-safe
  return *session;
}

void TraceSession::start(TraceOptions opts) {
  std::lock_guard<std::mutex> lock(mu_);
  opts_ = std::move(opts);
  recorders_.clear();
  epoch_.fetch_add(1, std::memory_order_release);
  g_trace_mask.store(opts_.categories, std::memory_order_relaxed);
}

TraceRecorder* TraceSession::register_thread() {
  std::lock_guard<std::mutex> lock(mu_);
  recorders_.push_back(std::make_unique<TraceRecorder>(
      opts_.ring_capacity, opts_.counter_sample_every));
  return recorders_.back().get();
}

TraceRecorder& TraceSession::thread_recorder() {
  thread_local TraceRecorder* rec = nullptr;
  thread_local std::uint64_t rec_epoch = ~std::uint64_t{0};
  const std::uint64_t now = epoch_.load(std::memory_order_acquire);
  if (rec == nullptr || rec_epoch != now) {
    rec = register_thread();
    rec_epoch = now;
  }
  return *rec;
}

std::uint64_t TraceSession::events_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& r : recorders_) n += r->emitted();
  return n;
}

std::uint64_t TraceSession::events_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t n = 0;
  for (const auto& r : recorders_) n += r->dropped();
  return n;
}

// --- export -----------------------------------------------------------------

namespace {

/// A fully-paired span, post repair.
struct Span {
  CounterId name = 0;
  std::uint8_t cat = 0;
  std::uint16_t pid = 0;
  std::uint16_t tid = 0;
  SimTime ts = 0;
  SimDuration dur = 0;
  std::uint32_t arg = 0;
};

struct ExportSet {
  std::vector<Span> spans;
  std::vector<TraceEvent> points;  // instants + counters, passed through
  SimTime window_start = 0;
  SimTime window_end = 0;
  std::uint64_t dropped = 0;
  bool empty = true;
};

/// Walk every recorder window, pair begin/end per (recorder, lane) and
/// repair orphans: an end whose begin was evicted by ring wrap-around
/// opens at the window start; a begin that never closed (eviction of the
/// end, or a genuinely abandoned span such as a failed task) closes at
/// the window end.
ExportSet collect(const std::vector<std::unique_ptr<TraceRecorder>>& recs) {
  ExportSet out;
  for (const auto& r : recs) {
    out.dropped += r->dropped();
    const std::size_t n = r->size();
    for (std::size_t i = 0; i < n; ++i) {
      const TraceEvent& e = r->at(i);
      const SimTime end_ts =
          e.type == EventType::kComplete ? e.ts + e.value : e.ts;
      if (out.empty) {
        out.window_start = e.ts;
        out.window_end = end_ts;
        out.empty = false;
      } else {
        out.window_start = std::min(out.window_start, e.ts);
        out.window_end = std::max(out.window_end, end_ts);
      }
    }
  }
  if (out.empty) return out;

  struct OpenSpan {
    CounterId name;
    std::uint8_t cat;
    SimTime ts;
  };
  for (const auto& r : recs) {
    // Lane key = pid << 16 | tid; one begin-stack per lane.
    std::unordered_map<std::uint32_t, std::vector<OpenSpan>> open;
    const std::size_t n = r->size();
    for (std::size_t i = 0; i < n; ++i) {
      const TraceEvent& e = r->at(i);
      const std::uint32_t lane =
          (static_cast<std::uint32_t>(e.pid) << 16) | e.tid;
      switch (e.type) {
        case EventType::kBegin:
          open[lane].push_back(OpenSpan{e.name, e.cat, e.ts});
          break;
        case EventType::kEnd: {
          auto& stack = open[lane];
          Span s;
          s.name = e.name;
          s.cat = e.cat;
          s.pid = e.pid;
          s.tid = e.tid;
          s.arg = e.arg;
          if (!stack.empty()) {
            // Close the innermost open span; trust the end's name only if
            // the begin was lost (mismatches come from eviction too).
            const OpenSpan b = stack.back();
            stack.pop_back();
            s.name = b.name;
            s.cat = b.cat;
            s.ts = b.ts;
            s.dur = e.ts - b.ts;
          } else {
            s.ts = out.window_start;
            s.dur = e.ts - out.window_start;
          }
          out.spans.push_back(s);
          break;
        }
        case EventType::kComplete: {
          Span s;
          s.name = e.name;
          s.cat = e.cat;
          s.pid = e.pid;
          s.tid = e.tid;
          s.ts = e.ts;
          s.dur = e.value;
          s.arg = e.arg;
          out.spans.push_back(s);
          break;
        }
        case EventType::kInstant:
        case EventType::kCounter:
          out.points.push_back(e);
          break;
      }
    }
    for (auto& [lane, stack] : open) {
      for (const OpenSpan& b : stack) {
        Span s;
        s.name = b.name;
        s.cat = b.cat;
        s.pid = static_cast<std::uint16_t>(lane >> 16);
        s.tid = static_cast<std::uint16_t>(lane & 0xFFFF);
        s.ts = b.ts;
        s.dur = out.window_end - b.ts;
        out.spans.push_back(s);
      }
    }
  }
  return out;
}

/// Picoseconds to the microsecond doubles Chrome expects; 6 decimals keep
/// picosecond precision exactly.
void append_us(std::string& out, SimTime ps) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64 ".%06" PRIu64, ps / 1000000,
                ps % 1000000);
  out += buf;
}

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_common(std::string& out, CounterId name, std::uint8_t cat,
                   std::uint16_t pid, std::uint16_t tid, SimTime ts) {
  out += "{\"name\":\"";
  append_escaped(out, CounterRegistry::name(name));
  out += "\",\"cat\":\"";
  out += cat_name(static_cast<Cat>(cat));
  out += "\",\"pid\":";
  out += std::to_string(pid);
  out += ",\"tid\":";
  out += std::to_string(tid);
  out += ",\"ts\":";
  append_us(out, ts);
}

std::string lane_process_name(std::uint16_t pid) {
  if (pid == kSimPid) return "sim-kernel";
  if (pid == kNetPid) return "interconnect";
  return "node" + std::to_string(pid);
}

std::string lane_thread_name(std::uint16_t tid) {
  if (tid >= kQueueTidBase && tid < kQueueTidBase + 0x100) {
    return "queue" + std::to_string(tid - kQueueTidBase);
  }
  return "lane" + std::to_string(tid);
}

}  // namespace

void TraceSession::export_json(std::ostream& os) const {
  std::vector<std::unique_ptr<TraceRecorder>>* recs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    recs = &recorders_;
  }
  const ExportSet set = collect(*recs);

  os << "{\"displayTimeUnit\":\"ns\",\"otherData\":{\"droppedEvents\":"
     << set.dropped << "},\"traceEvents\":[";
  bool first = true;
  std::string line;
  auto emit_line = [&] {
    if (!first) os << ",";
    os << "\n" << line;
    first = false;
    line.clear();
  };

  // Metadata: name every process and thread lane that appears.
  std::set<std::uint16_t> pids;
  std::set<std::uint32_t> lanes;
  auto note_lane = [&](std::uint16_t pid, std::uint16_t tid) {
    pids.insert(pid);
    lanes.insert((static_cast<std::uint32_t>(pid) << 16) | tid);
  };
  for (const Span& s : set.spans) note_lane(s.pid, s.tid);
  for (const TraceEvent& e : set.points) note_lane(e.pid, e.tid);
  for (const std::uint16_t pid : pids) {
    line = "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
           std::to_string(pid) + ",\"args\":{\"name\":\"";
    append_escaped(line, lane_process_name(pid));
    line += "\"}}";
    emit_line();
  }
  for (const std::uint32_t lane : lanes) {
    const auto pid = static_cast<std::uint16_t>(lane >> 16);
    const auto tid = static_cast<std::uint16_t>(lane & 0xFFFF);
    line = "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
           std::to_string(pid) + ",\"tid\":" + std::to_string(tid) +
           ",\"args\":{\"name\":\"";
    append_escaped(line, lane_thread_name(tid));
    line += "\"}}";
    emit_line();
  }

  for (const Span& s : set.spans) {
    append_common(line, s.name, s.cat, s.pid, s.tid, s.ts);
    line += ",\"ph\":\"X\",\"dur\":";
    append_us(line, s.dur);
    if (s.arg != 0) {
      line += ",\"args\":{\"v\":" + std::to_string(s.arg) + "}";
    }
    line += "}";
    emit_line();
  }
  for (const TraceEvent& e : set.points) {
    append_common(line, e.name, e.cat, e.pid, e.tid, e.ts);
    if (e.type == EventType::kCounter) {
      line += ",\"ph\":\"C\",\"args\":{\"value\":" + std::to_string(e.value) +
              "}";
    } else {
      line += ",\"ph\":\"i\",\"s\":\"t\"";
      if (e.arg != 0) {
        line += ",\"args\":{\"v\":" + std::to_string(e.arg) + "}";
      }
    }
    line += "}";
    emit_line();
  }
  os << "\n]}\n";
}

bool TraceSession::export_file(const std::string& path) const {
  const std::string& target = path.empty() ? opts_.path : path;
  if (target.empty()) return false;
  std::ofstream out(target);
  if (!out) return false;
  export_json(out);
  return static_cast<bool>(out);
}

std::string TraceSession::summary(std::size_t top_n) const {
  std::vector<std::unique_ptr<TraceRecorder>>* recs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    recs = &recorders_;
  }
  ExportSet set = collect(*recs);

  // Self time: per lane, sort spans by (start asc, dur desc) so parents
  // precede the children they contain, then subtract each child's
  // duration from the innermost enclosing span.
  struct Agg {
    std::uint64_t count = 0;
    SimDuration total = 0;
    SimDuration self = 0;
  };
  std::map<std::pair<std::uint8_t, CounterId>, Agg> by_name;
  std::stable_sort(set.spans.begin(), set.spans.end(),
                   [](const Span& a, const Span& b) {
                     const std::uint32_t la =
                         (static_cast<std::uint32_t>(a.pid) << 16) | a.tid;
                     const std::uint32_t lb =
                         (static_cast<std::uint32_t>(b.pid) << 16) | b.tid;
                     if (la != lb) return la < lb;
                     if (a.ts != b.ts) return a.ts < b.ts;
                     return a.dur > b.dur;
                   });
  std::vector<std::pair<const Span*, SimDuration>> stack;  // span, self
  std::uint32_t stack_lane = ~std::uint32_t{0};
  auto pop_into_agg = [&](const std::pair<const Span*, SimDuration>& top) {
    Agg& a = by_name[{top.first->cat, top.first->name}];
    ++a.count;
    a.total += top.first->dur;
    a.self += top.second;
  };
  for (const Span& s : set.spans) {
    const std::uint32_t lane =
        (static_cast<std::uint32_t>(s.pid) << 16) | s.tid;
    if (lane != stack_lane) {
      while (!stack.empty()) {
        pop_into_agg(stack.back());
        stack.pop_back();
      }
      stack_lane = lane;
    }
    while (!stack.empty() &&
           stack.back().first->ts + stack.back().first->dur <= s.ts) {
      pop_into_agg(stack.back());
      stack.pop_back();
    }
    if (!stack.empty() &&
        s.ts + s.dur <= stack.back().first->ts + stack.back().first->dur) {
      // Nested: the parent's self time excludes this child.
      stack.back().second -= std::min(stack.back().second, s.dur);
      stack.emplace_back(&s, s.dur);
    } else {
      // Overlap without containment (e.g. queue lanes): treat as a root.
      stack.emplace_back(&s, s.dur);
    }
  }
  while (!stack.empty()) {
    pop_into_agg(stack.back());
    stack.pop_back();
  }

  std::uint64_t total_events = 0;
  std::uint64_t dropped = 0;
  for (const auto& r : *recs) {
    total_events += r->emitted();
    dropped += r->dropped();
  }

  std::ostringstream os;
  os << "trace summary: " << total_events << " events (" << set.spans.size()
     << " spans, " << dropped << " evicted), window "
     << to_milliseconds(set.empty ? 0 : set.window_end - set.window_start)
     << " ms sim-time\n";
  std::vector<std::pair<std::pair<std::uint8_t, CounterId>, Agg>> ranked(
      by_name.begin(), by_name.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second.total > b.second.total;
  });
  if (!ranked.empty()) {
    os << "top spans by total time (cat name count total_ms self_ms):\n";
    char buf[160];
    for (std::size_t i = 0; i < std::min(top_n, ranked.size()); ++i) {
      const auto& [key, agg] = ranked[i];
      std::snprintf(buf, sizeof buf,
                    "  %-8s %-28s %10" PRIu64 " %12.3f %12.3f\n",
                    cat_name(static_cast<Cat>(key.first)),
                    CounterRegistry::name(key.second).c_str(), agg.count,
                    to_milliseconds(agg.total), to_milliseconds(agg.self));
      os << buf;
    }
  }
  return os.str();
}

}  // namespace ecoscale::obs
