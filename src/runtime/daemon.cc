#include "runtime/daemon.h"

#include <algorithm>
#include <vector>

#include "obs/trace.h"

namespace ecoscale {

namespace {
[[maybe_unused]] CounterId daemon_prefetch_name() {
  static const CounterId id = CounterRegistry::intern("daemon.prefetch");
  return id;
}
}  // namespace

std::size_t ReconfigDaemon::tick(SimTime now) {
  // 1. Fold the period's calls into the EWMA scores.
  for (auto& [kernel, score] : scores_) score *= config_.decay;
  for (const auto& [kernel, calls] : pending_calls_) {
    scores_[kernel] += (1.0 - config_.decay) * calls;
  }
  pending_calls_.clear();

  // 2. Prefetch hot non-resident kernels, hottest first, evicting strictly
  //    colder idle residents to make room (1.5x hysteresis so modules do
  //    not thrash between ticks).
  std::vector<std::pair<double, KernelId>> ranked;
  for (const auto& [kernel, score_value] : scores_) {
    if (!fabric_.is_loaded(kernel) && modules_.contains(kernel) &&
        score_value >= config_.min_score) {
      ranked.emplace_back(score_value, kernel);
    }
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::size_t loaded = 0;
  for (const auto& [score_value, kernel] : ranked) {
    const auto& module = modules_.at(kernel);
    // Make room by evicting the coldest idle resident while it is clearly
    // colder than the candidate.
    while (!fabric_.floorplan().can_place(module.shape)) {
      KernelId victim = 0;
      double victim_score = score_value / 1.5;  // hysteresis ceiling
      bool found = false;
      for (const auto& [resident, resident_module] : modules_) {
        if (!fabric_.is_idle(resident, now)) continue;
        if (score(resident) < victim_score) {
          victim = resident;
          victim_score = score(resident);
          found = true;
        }
      }
      if (!found) break;
      fabric_.unload(victim);
      ++evictions_;
    }
    if (!fabric_.floorplan().can_place(module.shape)) continue;
    const auto r = fabric_.ensure_loaded(module, now);
    if (r && r->reconfigured) {
      ++prefetches_;
      ++loaded;
      ECO_TRACE_INSTANT(obs::Cat::kRuntime, daemon_prefetch_name(),
                        fabric_.trace_lane(), now, kernel);
    }
  }
  return loaded;
}

}  // namespace ecoscale
