// The runtime reconfiguration daemon (paper §4.2: "The runtime
// scheduler/daemon will read periodically the system status and the
// History file in order to decide at runtime what functions should be
// loaded on the reconfiguration block.").
//
// Policy: keep a per-kernel exponentially weighted call-frequency score
// from the Execution History; on each period, ensure the hottest kernels
// that fit are resident (prefetching their bitstreams during idle gaps),
// and evict cold residents. The payoff is measured as reconfiguration
// stalls avoided: calls that would have waited for the ICAP now find
// their module loaded.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/units.h"
#include "fabric/reconfig.h"
#include "hls/ir.h"

namespace ecoscale {

struct DaemonConfig {
  SimDuration period = milliseconds(1);
  double decay = 0.7;        // EWMA decay per period
  double min_score = 0.05;   // below this a resident module is evictable
};

class ReconfigDaemon {
 public:
  ReconfigDaemon(ReconfigManager& fabric, DaemonConfig config = {})
      : fabric_(fabric), config_(config) {}

  /// Register a kernel's preferred module.
  void register_module(const AcceleratorModule& module) {
    modules_[module.kernel] = module;
  }

  /// Record a call (from the scheduler's execution history feed).
  void record_call(KernelId kernel) { pending_calls_[kernel] += 1.0; }

  /// Periodic tick: decay scores, fold in the period's calls, prefetch the
  /// hottest non-resident kernels, evict cold residents. Returns the
  /// number of prefetch loads issued.
  std::size_t tick(SimTime now);

  /// Would a call to `kernel` at `now` stall on reconfiguration?
  bool is_resident(KernelId kernel) const {
    return fabric_.is_loaded(kernel);
  }

  double score(KernelId kernel) const {
    auto it = scores_.find(kernel);
    return it == scores_.end() ? 0.0 : it->second;
  }

  std::uint64_t prefetches() const { return prefetches_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  ReconfigManager& fabric_;
  DaemonConfig config_;
  std::map<KernelId, AcceleratorModule> modules_;
  std::map<KernelId, double> scores_;
  std::map<KernelId, double> pending_calls_;
  std::uint64_t prefetches_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace ecoscale
