// Accelerator chaining (paper §4.3).
//
// "…we consider chaining together different accelerator modules for
// building longer complex processing pipelines, when needed. This will
// substantially increase the amount of processing that is carried out per
// unit of transferred data and will consequently result in substantial
// energy savings."
//
// run_chained(): all stages are resident on one fabric with on-fabric FIFOs
// between them — DRAM sees only the chain's external input and output.
// run_staged(): the baseline — each stage reads its input from DRAM and
// writes its output back, so intermediate data crosses the memory interface
// twice per boundary.
#pragma once

#include <span>

#include "common/units.h"
#include "worker/worker.h"

namespace ecoscale {

struct ChainRun {
  SimTime start = 0;
  SimTime finish = 0;
  Bytes dram_bytes = 0;       // bytes that crossed the memory interface
  Picojoules energy = 0.0;
  bool fits = true;           // false if the chain could not be placed
  double ops_per_dram_byte = 0.0;  // the paper's "processing per unit of
                                   // transferred data"
};

/// Execute `stages` as one fused on-fabric pipeline over `items` items.
ChainRun run_chained(Worker& worker, std::span<const AcceleratorModule> stages,
                     const std::span<const KernelIR> kernels,
                     std::uint64_t items, SimTime now);

/// Execute `stages` one at a time with DRAM round-trips between stages.
ChainRun run_staged(Worker& worker, std::span<const AcceleratorModule> stages,
                    const std::span<const KernelIR> kernels,
                    std::uint64_t items, SimTime now);

}  // namespace ecoscale
