// Multi-node runtime on the sharded parallel simulation engine.
//
// ECOSCALE's hierarchy bounds communication distance (claim C1): Workers
// inside a Compute Node interact at L0 latencies, while anything crossing
// the node boundary pays at least one L1 traversal. ShardedRuntime turns
// that bound into wall-clock parallelism for the *simulator*: every
// Compute Node gets its own shard — a private Simulator, Machine
// (single-node UNIMEM domain, UNILOGIC pool, workers) and RuntimeSystem —
// and the shards advance concurrently inside conservative synchronization
// windows (see sim/parallel.h). Node-local work (PGAS accesses, fabric
// invocations, queue spills) never leaves its shard; the only cross-shard
// interaction is an explicit task forward, which rides an SPSC mailbox and
// is charged the inter-node interconnect's head latency — by construction
// at least the engine's lookahead, so no shard ever receives an event in
// its past.
//
// Inter-node latencies and the lookahead are derived from a Network over
// the node-level topology (Network::route_latency / min_cross_latency) —
// the same implicit-route oracle the machine uses, queried on demand
// rather than materialized as an N² matrix — not hand-tuned constants:
// changing link parameters automatically tightens or relaxes the window
// size.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/units.h"
#include "runtime/machine.h"
#include "runtime/scheduler.h"
#include "sim/parallel.h"

namespace ecoscale {

struct ShardedRuntimeConfig {
  /// Compute Nodes — one engine shard (and one Machine) each.
  std::size_t nodes = 4;
  std::size_t workers_per_node = 4;
  /// Simulation threads (0 = hardware concurrency). Never changes results,
  /// only wall-clock time: --sim-threads N is byte-identical to 1.
  std::size_t threads = 1;
  std::size_t mailbox_capacity = 1024;
  /// Adaptive per-shard windows (sim/parallel.h WindowMode::kAdaptive):
  /// each node's horizon comes from the interconnect's per-pair head
  /// latencies (route_latency is a metric, so the adaptive engine's
  /// relay-safety requirement holds by construction) instead of one global
  /// min-latency window. Off = the legacy fixed-window schedule.
  bool adaptive_windows = true;
  /// Template for each node's machine; nodes is forced to 1 (the shard IS
  /// the node) and workers_per_node to the field above. The PGAS l1 link
  /// parameters double as the inter-node links of the forwarding network.
  MachineConfig machine;
  /// Shape of the inter-node interconnect. Empty (default): a flat
  /// crossbar, every pair two hops apart — the legacy layout. Non-empty:
  /// make_tree(radices) whose leaf count must equal `nodes` (e.g. {4, 2} =
  /// two chassis of four nodes); level-0 links carry the PGAS l1
  /// parameters and higher levels the costlier l2 parameters, so
  /// crossing a chassis costs more hops *and* more latency. This is the
  /// hierarchy the repartitioner's sibling-group diffusion runs over.
  std::vector<std::size_t> internode_radices;
  /// Scripted whole-node outage: every worker of `node` crashes at `at`
  /// and repairs `repair_after` later (must be > 0 — a permanent loss of
  /// a whole node would strand its queued tasks forever, since task
  /// failover is node-local). The node's heartbeat monitor still runs, so
  /// its believed-alive capacity collapses after detect_timeout — the
  /// signal the repartitioner's diffusion drains it by.
  struct NodeOutage {
    std::size_t node = 0;
    SimTime at = 0;
    SimDuration repair_after = 0;
  };
  std::vector<NodeOutage> node_outages;
  /// Per-node scheduler configuration; the seed is decorrelated per node.
  RuntimeConfig runtime;
};

class ShardedRuntime {
 public:
  explicit ShardedRuntime(ShardedRuntimeConfig config);

  std::size_t node_count() const { return nodes_.size(); }
  /// Conservative lookahead the engine windows run with: the minimum
  /// inter-node head latency of the node-level interconnect.
  SimDuration lookahead() const { return engine_->lookahead(); }
  /// Head latency of the inter-node route (what a forwarded task pays).
  /// Answered by the interconnect's implicit-route oracle — a mutation-free
  /// LCA walk (Network::route_latency), safe from concurrent shard threads
  /// — instead of a dense nodes² table.
  SimDuration inter_node_latency(std::size_t from, std::size_t to) const {
    ECO_CHECK(from < nodes_.size() && to < nodes_.size());
    return internode_->route_latency(from, to);
  }

  Machine& machine(std::size_t node) { return *nodes_[node].machine; }
  RuntimeSystem& runtime(std::size_t node) { return *nodes_[node].runtime; }
  Simulator& shard(std::size_t node) { return engine_->shard(node); }
  ShardedSimulator& engine() { return *engine_; }
  const ShardedRuntimeConfig& config() const { return config_; }
  /// The node-level interconnect oracle (latency/hop/tree queries only —
  /// nothing ever send()s on it). The repartitioner reads its implicit
  /// tree to build the diffusion hierarchy and its hop counts to weigh
  /// migration distance.
  Network& internode() { return *internode_; }

  /// Register a kernel (with its HLS variants) on every node's runtime.
  void register_kernel(const KernelIR& kernel,
                       std::vector<AcceleratorModule> variants);

  /// Queue `task` on its home node. Call before run(), or from inside an
  /// action already executing on that node's shard. task.home is a
  /// node-local coordinate (node field must be 0).
  void submit(std::size_t node, const Task& task);

  /// Ship `task` from node `from` (whose shard must be executing the
  /// calling action) to node `to`: it is released on the destination after
  /// the inter-node head latency, routed through the (from, to) mailbox
  /// and merged deterministically at the next window barrier.
  void post_task(std::size_t from, std::size_t to, Task task);

  /// Generic cross-node event, `extra_delay` after the inter-node latency.
  template <typename F>
  void post(std::size_t from, std::size_t to, SimDuration extra_delay,
            F&& action) {
    const SimTime at = engine_->shard(from).now() +
                       inter_node_latency(from, to) + extra_delay;
    engine_->post(from, to, at, std::forward<F>(action));
  }

  /// Epoch-driven control policy (the repartitioner): when installed with
  /// a nonzero period, run() advances the engine in run_until() segments
  /// of `period` and invokes the hook between them — single-threaded, with
  /// every shard paused at the same simulated instant, so the hook may
  /// read any node's deterministic state (obs counters, queue depths,
  /// believed-alive sets) and schedule follow-on events on any shard.
  /// Decisions taken in the hook are therefore a pure function of
  /// simulation state, never of thread interleaving: --sim-threads N
  /// stays byte-identical to 1. `at` is the epoch boundary k * period.
  using EpochHook = std::function<void(std::size_t epoch, SimTime at)>;
  void set_epoch_policy(SimDuration period, EpochHook hook) {
    ECO_CHECK_MSG((period > 0) == static_cast<bool>(hook),
                  "epoch policy needs a period and a hook (or neither)");
    epoch_period_ = period;
    epoch_hook_ = std::move(hook);
  }

  /// Run windows until every shard and mailbox drains; asserts every
  /// node's runtime retired all submitted tasks. With an epoch policy
  /// installed the drain interleaves the epoch hook at every period
  /// boundary (the hook is skipped once the workload has fully drained).
  void run();

  struct Stats {
    SimTime makespan = 0;          // max over node makespans
    Picojoules energy = 0.0;       // machine energy, all nodes
    std::uint64_t tasks = 0;       // task results across nodes
    std::uint64_t shed_tasks = 0;  // admission-control sheds, all nodes
    std::uint64_t cross_posts = 0; // mailbox messages (forwards + posts)
    std::uint64_t events = 0;      // simulator events, all shards
    std::uint64_t windows = 0;     // engine synchronization rounds
    std::uint64_t mailbox_spills = 0;
    /// Per-shard window executions / skips across all rounds (a skip is a
    /// shard whose horizon held no work — the barrier-stall metric) and
    /// cross-thread shard-window steals (wall-clock-side only; see
    /// sim/parallel.h).
    std::uint64_t shard_windows = 0;
    std::uint64_t stalled_shard_windows = 0;
    std::uint64_t steals = 0;
  };
  /// Folded over nodes with a deterministic balanced reduction tree
  /// (common/reduce.h), so the energy sum's floating-point rounding is a
  /// pure function of the node count.
  Stats stats() const;

 private:
  struct Node {
    std::unique_ptr<Machine> machine;
    std::unique_ptr<RuntimeSystem> runtime;
  };

  ShardedRuntimeConfig config_;
  std::unique_ptr<Network> internode_;  // latency oracle, never send()s
  std::unique_ptr<ShardedSimulator> engine_;
  std::vector<Node> nodes_;
  SimDuration epoch_period_ = 0;
  EpochHook epoch_hook_;
};

}  // namespace ecoscale
