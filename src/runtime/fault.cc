#include "runtime/fault.h"

#include "common/check.h"
#include "obs/trace.h"

namespace ecoscale {

namespace {
/// Fault-domain trace names, interned once per process.
struct FaultTraceNames {
  CounterId crash = CounterRegistry::intern("fault.crash");
  CounterId repair = CounterRegistry::intern("fault.repair");
  CounterId node_loss = CounterRegistry::intern("fault.node_loss");
  CounterId seu = CounterRegistry::intern("fault.seu");
  CounterId link_degrade = CounterRegistry::intern("fault.link_degrade");
  CounterId link_restore = CounterRegistry::intern("fault.link_restore");
};
[[maybe_unused]] const FaultTraceNames& fault_trace_names() {
  static const FaultTraceNames names;
  return names;
}

[[maybe_unused]] obs::Lane worker_lane(std::size_t w, std::size_t per_node) {
  return obs::Lane{static_cast<std::uint16_t>(w / per_node),
                   static_cast<std::uint16_t>(w % per_node)};
}
}  // namespace

FaultInjector::FaultInjector(Simulator& sim, Machine& machine,
                             FaultConfig config, Callbacks callbacks)
    : sim_(sim),
      machine_(machine),
      config_(std::move(config)),
      cb_(std::move(callbacks)),
      seu_rng_(config_.seed ^ 0x5e05e05e05e05e0ull),
      down_epoch_(machine.worker_count(), 0),
      permanent_(machine.worker_count(), false) {
  ECO_CHECK(cb_.active != nullptr);
  crash_rng_.reserve(machine_.worker_count());
  for (std::size_t w = 0; w < machine_.worker_count(); ++w) {
    crash_rng_.emplace_back(config_.seed * 0x9e3779b97f4a7c15ull + w);
  }
}

void FaultInjector::arm() {
  ECO_CHECK_MSG(!armed_, "FaultInjector armed twice");
  armed_ = true;
  if (!config_.enabled) return;

  if (config_.worker_crash_per_second > 0.0) {
    for (std::size_t w = 0; w < machine_.worker_count(); ++w) {
      schedule_next_crash(w);
    }
  }
  if (config_.seu_per_second > 0.0) schedule_next_seu();

  for (const NodeLossEvent& loss : config_.node_losses) {
    ECO_CHECK(loss.node < machine_.node_count());
    sim_.schedule_at(loss.at, [this, loss] {
      ++node_losses_;
      ECO_TRACE_INSTANT(obs::Cat::kFault, fault_trace_names().node_loss,
                        (obs::Lane{static_cast<std::uint16_t>(loss.node), 0}),
                        sim_.now(), static_cast<std::uint32_t>(loss.node));
      const std::size_t per_node = machine_.workers_per_node();
      for (std::size_t i = 0; i < per_node; ++i) {
        take_down(loss.node * per_node + i, /*permanent=*/true);
      }
    });
  }

  for (const CrashEvent& crash : config_.scripted_crashes) {
    ECO_CHECK(crash.worker < machine_.worker_count());
    sim_.schedule_at(crash.at, [this, crash] {
      take_down(crash.worker, crash.permanent, crash.repair_after);
    });
  }

  for (const LinkDegradeEvent& deg : config_.link_degrades) {
    sim_.schedule_at(deg.at, [this, deg] {
      ++link_faults_;
      machine_.pgas().network().set_level_degradation(deg.level, deg.factor);
      ECO_TRACE_INSTANT(obs::Cat::kFault, fault_trace_names().link_degrade,
                        (obs::Lane{obs::kNetPid,
                                   static_cast<std::uint16_t>(deg.level)}),
                        sim_.now(), static_cast<std::uint32_t>(deg.factor));
    });
    sim_.schedule_at(deg.at + deg.duration, [this, deg] {
      machine_.pgas().network().set_level_degradation(deg.level, 1.0);
      ECO_TRACE_INSTANT(obs::Cat::kFault, fault_trace_names().link_restore,
                        (obs::Lane{obs::kNetPid,
                                   static_cast<std::uint16_t>(deg.level)}),
                        sim_.now(), static_cast<std::uint32_t>(deg.level));
    });
  }
}

void FaultInjector::schedule_next_crash(std::size_t worker) {
  const auto gap = static_cast<SimDuration>(
      crash_rng_[worker].exponential(1e12 / config_.worker_crash_per_second));
  sim_.schedule_at(sim_.now() + std::max<SimDuration>(gap, 1), [this, worker] {
    // The chain re-arms only while the workload is live; residual events
    // after completion are no-ops so the event queue can drain.
    if (!cb_.active()) return;
    if (machine_.health().up(worker)) {
      take_down(worker, /*permanent=*/false);
    }
    schedule_next_crash(worker);
  });
}

void FaultInjector::take_down(std::size_t worker, bool permanent,
                              SimDuration repair_after) {
  if (!machine_.health().up(worker)) {
    // Already down (e.g. node loss landing on a crashed worker): only
    // upgrade to permanent, cancelling any pending repair via the epoch.
    if (permanent && !permanent_[worker]) {
      permanent_[worker] = true;
      ++down_epoch_[worker];
    }
    return;
  }
  const SimTime now = sim_.now();
  const std::size_t per_node = machine_.workers_per_node();
  machine_.health().mark_down(worker);
  permanent_[worker] = permanent;
  const std::uint64_t epoch = ++down_epoch_[worker];
  if (!permanent) {
    ++crashes_;
    ECO_TRACE_INSTANT(obs::Cat::kFault, fault_trace_names().crash,
                      worker_lane(worker, per_node), now,
                      static_cast<std::uint32_t>(worker));
    const SimDuration repair =
        repair_after != 0 ? repair_after : config_.repair_time;
    sim_.schedule_at(now + repair, [this, worker, epoch] {
      // A newer fault (another crash cannot happen while down, but a node
      // loss can) invalidates this repair.
      if (down_epoch_[worker] != epoch || permanent_[worker]) return;
      machine_.health().mark_up(worker);
      ECO_TRACE_INSTANT(obs::Cat::kFault, fault_trace_names().repair,
                        worker_lane(worker, machine_.workers_per_node()),
                        sim_.now(), static_cast<std::uint32_t>(worker));
      if (cb_.on_worker_up) cb_.on_worker_up(worker, sim_.now());
    });
  }
  if (cb_.on_worker_down) cb_.on_worker_down(worker, now);
}

void FaultInjector::schedule_next_seu() {
  const auto gap = static_cast<SimDuration>(
      seu_rng_.exponential(1e12 / config_.seu_per_second));
  sim_.schedule_at(sim_.now() + std::max<SimDuration>(gap, 1), [this] {
    if (!cb_.active()) return;
    const std::size_t w = seu_rng_.uniform_u64(machine_.worker_count());
    if (machine_.health().up(w)) {
      // An upset flips configuration bits of a resident module. Busy
      // modules are protected by the invocation model (their result is
      // already committed); an idle one is corrupted — modelled as an
      // unload, so the next call pays a full reconfiguration (scrubbing).
      auto& fabric = machine_.worker(w).fabric();
      for (const KernelId kernel : fabric.loaded_kernels()) {
        if (fabric.is_idle(kernel, sim_.now())) {
          fabric.unload(kernel);
          ++seu_hits_;
          ECO_TRACE_INSTANT(obs::Cat::kFault, fault_trace_names().seu,
                            worker_lane(w, machine_.workers_per_node()),
                            sim_.now(), static_cast<std::uint32_t>(kernel));
          break;
        }
      }
    }
    schedule_next_seu();
  });
}

}  // namespace ecoscale
