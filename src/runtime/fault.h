// Unified fault injection for the live simulation (robustness pillar).
//
// The FaultInjector drives four fault domains through the discrete-event
// simulator against a running Machine:
//
//  * worker crashes  — per-worker Poisson process; the worker goes down,
//    loses any in-flight task, and comes back after repair_time;
//  * node loss       — scripted, permanent: every worker of the node goes
//    down at once and never repairs (its memory fails over lazily via
//    PgasSystem's dead-owner path);
//  * link degradation— scripted window during which one tree level's
//    serialization bandwidth is scaled down (Network::set_level_degradation);
//  * fabric SEUs     — Poisson upsets that corrupt (unload) an idle loaded
//    bitstream on a random worker's fabric; the next call pays a full
//    reconfiguration (the scrubbing cost model the analytic layer prices).
//
// Liveness flows through the Machine's HealthRegistry; the runtime layer
// learns of it only through its heartbeat monitor (detect_timeout later),
// which is the causality the recovery tests pin down. The injector is
// deliberately decoupled from the scheduler: consequences are delivered
// via callbacks, so this header never depends on scheduler.h.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "runtime/machine.h"
#include "sim/simulator.h"

namespace ecoscale {

/// Permanent loss of a whole Compute Node at `at`.
struct NodeLossEvent {
  std::size_t node = 0;
  SimTime at = 0;
};

/// Scripted single-worker crash at an exact sim time — the deterministic
/// counterpart of the Poisson chains, used by litmus-style runs that need
/// a crash (or a crash/repair race) at a precise point between two memory
/// operations. Unless `permanent`, the worker repairs `repair_after`
/// later (0 falls back to FaultConfig::repair_time).
struct CrashEvent {
  std::size_t worker = 0;
  SimTime at = 0;
  bool permanent = false;
  SimDuration repair_after = 0;
};

/// Serialization slowdown of every link on tree level `level` during
/// [at, at + duration): factor 4 means a quarter of the bandwidth.
struct LinkDegradeEvent {
  int level = 0;
  SimTime at = 0;
  SimDuration duration = milliseconds(1);
  double factor = 4.0;
};

struct FaultConfig {
  bool enabled = false;
  /// Poisson crash rate per worker; 0 disables the crash chains.
  double worker_crash_per_second = 0.0;
  SimDuration repair_time = milliseconds(2);
  /// Poisson rate of single-event upsets across the whole machine.
  double seu_per_second = 0.0;
  std::vector<NodeLossEvent> node_losses;
  std::vector<LinkDegradeEvent> link_degrades;
  /// Scripted crash points (see CrashEvent); independent of the Poisson
  /// chains and active whenever `enabled` is set.
  std::vector<CrashEvent> scripted_crashes;
  /// Heartbeat monitor cadence and the silence window after which the
  /// runtime declares a worker dead (consumed by RuntimeSystem).
  SimDuration heartbeat_period = microseconds(50);
  SimDuration detect_timeout = microseconds(200);
  std::uint64_t seed = 1234;
};

class FaultInjector {
 public:
  struct Callbacks {
    /// A worker just went down (crash or node loss), at sim time `at`.
    std::function<void(std::size_t worker, SimTime at)> on_worker_down;
    /// A crashed worker finished repair and is up again.
    std::function<void(std::size_t worker, SimTime at)> on_worker_up;
    /// Gate for the self-rescheduling Poisson chains: once this returns
    /// false the chains stop re-arming, so sim.run() can terminate.
    std::function<bool()> active;
  };

  FaultInjector(Simulator& sim, Machine& machine, FaultConfig config,
                Callbacks callbacks);

  /// Schedule the scripted events and start the Poisson chains. Call once,
  /// before sim.run().
  void arm();

  std::uint64_t crashes() const { return crashes_; }
  std::uint64_t node_losses() const { return node_losses_; }
  std::uint64_t seu_hits() const { return seu_hits_; }
  std::uint64_t link_faults() const { return link_faults_; }
  const FaultConfig& config() const { return config_; }

 private:
  void schedule_next_crash(std::size_t worker);
  void schedule_next_seu();
  /// Take `worker` down; permanent means no repair is ever scheduled.
  /// `repair_after` overrides config repair_time when non-zero.
  void take_down(std::size_t worker, bool permanent,
                 SimDuration repair_after = 0);

  Simulator& sim_;
  Machine& machine_;
  FaultConfig config_;
  Callbacks cb_;
  std::vector<Rng> crash_rng_;  // one stream per worker: order-independent
  Rng seu_rng_;
  /// Bumped every time a worker goes down; a pending repair only
  /// resurrects the epoch it was scheduled for (a node loss that lands
  /// during a crash's repair window must not be undone by that repair).
  std::vector<std::uint64_t> down_epoch_;
  std::vector<bool> permanent_;
  bool armed_ = false;
  std::uint64_t crashes_ = 0;
  std::uint64_t node_losses_ = 0;
  std::uint64_t seu_hits_ = 0;
  std::uint64_t link_faults_ = 0;
};

}  // namespace ecoscale
