// Resilience through re-execution and fabric scrubbing (paper abstract:
// "To further increase energy efficiency, as well as to provide
// resilience, the Workers employ reconfigurable accelerators…").
//
// Two failure classes are modelled:
//  * Worker failures — Poisson per-worker crashes that lose in-flight work
//    and take the worker down for a repair interval. Recovery policies:
//    none (work lost), or detect-and-re-execute on a surviving worker.
//  * Fabric soft errors (SEUs) — configuration upsets that corrupt a
//    loaded module; repaired by reloading the bitstream (scrubbing),
//    either periodically or on detection at the next call.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace ecoscale {

struct ResilienceConfig {
  std::size_t workers = 8;
  /// Per-worker failure rate (failures per simulated second). Real MTBFs
  /// are hours; simulated runs are milliseconds, so rates here are scaled
  /// to exercise the machinery, not to be literal.
  double failures_per_second = 20.0;
  SimDuration detect_timeout = microseconds(200);  // heartbeat loss
  SimDuration repair_time = milliseconds(2);
  bool reexecute = true;
  std::uint64_t seed = 12345;
};

struct ResilientTask {
  std::uint64_t id = 0;
  SimDuration duration = 0;
  double energy_pj_per_ns = 100.0;
};

struct ResilienceOutcome {
  std::size_t completed = 0;
  std::size_t lost = 0;           // never completed (policy: none)
  std::size_t failures = 0;       // worker crashes that hit running tasks
  std::size_t reexecutions = 0;
  SimTime makespan = 0;
  Picojoules useful_energy = 0.0;
  Picojoules wasted_energy = 0.0;  // progress destroyed by crashes
  // Causality bookkeeping (0 when no crash / no re-execution happened):
  SimTime first_crash = 0;
  SimTime last_crash = 0;
  /// Earliest start of any re-executed attempt. The detection-latency
  /// invariant is `earliest_reexec_start >= first_crash + detect_timeout`
  /// (every retry's start is >= its *own* crash + detect_timeout, which
  /// implies this observable bound).
  SimTime earliest_reexec_start = 0;
};

/// Run `tasks` over a pool of workers under failure injection. Tasks are
/// dispatched least-loaded-first; a crash loses the running task's
/// progress and takes the worker offline for repair. With `reexecute` the
/// task restarts (from zero) on the earliest-available worker after the
/// detection timeout; without it the task is lost.
ResilienceOutcome run_with_failures(const std::vector<ResilientTask>& tasks,
                                    const ResilienceConfig& config);

/// Fabric configuration scrubbing. SEUs silently corrupt the loaded
/// configuration at `seu_per_second`; corrupted calls produce wrong
/// results *without detection* (silent data corruption) until a scrub pass
/// rewrites the bitstream. `scrub_period == 0` disables scrubbing: the
/// first SEU poisons every later call. A shorter period bounds the
/// corruption window more tightly at a higher steady overhead (one reload
/// per pass). Calls are uniformly spread over `horizon`.
struct ScrubOutcome {
  std::uint64_t corrupted_calls = 0;
  std::uint64_t scrub_passes = 0;
  SimDuration overhead = 0;
  double corrupted_fraction = 0.0;
};

ScrubOutcome scrubbing_policy(SimDuration scrub_period, double seu_per_second,
                              std::uint64_t calls, SimTime horizon,
                              SimDuration reload_time, std::uint64_t seed);

}  // namespace ecoscale
