#include "runtime/api.h"

#include <algorithm>

#include "common/check.h"

namespace ecoscale {

EcoRuntime::EcoRuntime(MachineConfig machine_config,
                       RuntimeConfig runtime_config) {
  machine_ = std::make_unique<Machine>(machine_config);
  runtime_ = std::make_unique<RuntimeSystem>(*machine_, sim_, runtime_config);
  allocator_ = std::make_unique<TopologyAllocator>(machine_->pgas());
}

EcoBuffer EcoRuntime::create_buffer(Bytes size, Distribution scope,
                                    std::optional<WorkerCoord> anchor) {
  std::vector<WorkerCoord> workers;
  if (scope == Distribution::kLocal) {
    workers.push_back(anchor.value_or(WorkerCoord{0, 0}));
  } else {
    for (std::size_t i = 0; i < machine_->worker_count(); ++i) {
      workers.push_back(machine_->pgas().coord(i));
    }
  }
  EcoBuffer buffer;
  buffer.buffer_ = allocator_->allocate(size, scope, workers);
  return buffer;
}

void EcoRuntime::write_buffer(EcoBuffer& buffer, Bytes offset,
                              std::span<const std::uint8_t> data) {
  ECO_CHECK(offset + data.size() <= buffer.size());
  // Respect partition boundaries: write each covered range to its home.
  Bytes done = 0;
  while (done < data.size()) {
    const auto& part = buffer.layout().partition_of(offset + done);
    const Bytes in_part = offset + done - part.offset;
    const Bytes chunk =
        std::min<Bytes>(part.size - in_part, data.size() - done);
    machine_->pgas().write_bytes(part.base + in_part,
                                 data.subspan(done, chunk));
    done += chunk;
  }
}

void EcoRuntime::read_buffer(const EcoBuffer& buffer, Bytes offset,
                             std::span<std::uint8_t> out) const {
  ECO_CHECK(offset + out.size() <= buffer.size());
  Bytes done = 0;
  while (done < out.size()) {
    const auto& part = buffer.layout().partition_of(offset + done);
    const Bytes in_part = offset + done - part.offset;
    const Bytes chunk =
        std::min<Bytes>(part.size - in_part, out.size() - done);
    machine_->pgas().read_bytes(part.base + in_part,
                                out.subspan(done, chunk));
    done += chunk;
  }
}

EcoKernel EcoRuntime::create_kernel(const KernelIR& ir,
                                    std::size_t max_variants) {
  EcoKernel kernel;
  kernel.ir_ = ir;
  kernel.variants_ = emit_variants(
      ir, max_variants, DseLimits{}, HlsTechnology{},
      machine_->config().worker.fabric.fabric_height);
  runtime_->register_kernel(ir, kernel.variants_);
  return kernel;
}

EcoEvent EcoRuntime::enqueue(EcoKernel& kernel, EcoBuffer& buffer,
                             std::uint64_t total_items, SimTime release) {
  ECO_CHECK(total_items > 0);
  EcoEvent event;
  const auto& parts = buffer.layout().partitions();
  // Split items proportionally to partition sizes; run the functional body
  // per partition so results land where the timing model says they land.
  std::uint64_t assigned = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const auto& part = parts[i];
    std::uint64_t items;
    if (i + 1 == parts.size()) {
      items = total_items - assigned;
    } else {
      items = total_items * part.size / buffer.size();
    }
    if (items == 0) continue;
    assigned += items;
    Task task;
    task.id = next_task_id_++;
    task.kernel = kernel.ir_.id;
    task.items = items;
    task.features.items = static_cast<double>(items);
    task.features.bytes = static_cast<double>(
        items * (kernel.ir_.bytes_in + kernel.ir_.bytes_out));
    task.home = part.home;
    task.release = release;
    runtime_->submit(task);
    event.tasks.push_back(task.id);
    if (kernel.body_) {
      std::vector<std::uint8_t> data(part.size);
      machine_->pgas().read_bytes(part.base, data);
      kernel.body_(data, items);
      machine_->pgas().write_bytes(part.base, data);
    }
  }
  return event;
}

EcoEvent EcoRuntime::enqueue_on(EcoKernel& kernel, WorkerCoord worker,
                                std::uint64_t items, SimTime release) {
  ECO_CHECK(items > 0);
  Task task;
  task.id = next_task_id_++;
  task.kernel = kernel.ir_.id;
  task.items = items;
  task.features.items = static_cast<double>(items);
  task.features.bytes = static_cast<double>(
      items * (kernel.ir_.bytes_in + kernel.ir_.bytes_out));
  task.home = worker;
  task.release = release;
  runtime_->submit(task);
  EcoEvent event;
  event.tasks.push_back(task.id);
  return event;
}

EcoEvent EcoRuntime::enqueue_after(EcoKernel& kernel, EcoBuffer& buffer,
                                   std::uint64_t total_items,
                                   const EcoEvent& wait_list) {
  // Resolve the dependency: run the simulation until the awaited tasks
  // have results, then release the new work no earlier than their last
  // completion.
  runtime_->run();
  SimTime release = sim_.now();
  for (const auto& r : wait(wait_list)) {
    release = std::max(release, r.finished);
  }
  return enqueue(kernel, buffer, total_items, release);
}

ChainRun EcoRuntime::enqueue_chain(std::vector<EcoKernel*> kernels,
                                   WorkerCoord worker, std::uint64_t items,
                                   SimTime now) {
  ECO_CHECK(!kernels.empty());
  std::vector<KernelIR> irs;
  std::vector<AcceleratorModule> stages;
  for (const EcoKernel* k : kernels) {
    ECO_CHECK(k != nullptr);
    ECO_CHECK_MSG(!k->variants().empty(), "kernel has no hardware variants");
    irs.push_back(k->ir());
    // Smallest variant per stage: the chain must co-reside.
    stages.push_back(k->variants().front());
  }
  return run_chained(machine_->worker(worker), stages, irs, items, now);
}

std::vector<TaskResult> EcoRuntime::wait(const EcoEvent& event) const {
  std::vector<TaskResult> out;
  for (const auto& r : runtime_->results()) {
    if (std::find(event.tasks.begin(), event.tasks.end(), r.id) !=
        event.tasks.end()) {
      out.push_back(r);
    }
  }
  return out;
}

}  // namespace ecoscale
