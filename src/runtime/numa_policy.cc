#include "runtime/numa_policy.h"

#include <algorithm>

#include "common/check.h"

namespace ecoscale {

bool NumaManager::has_replica(PageId page, NodeId node) const {
  auto it = pages_.find(page);
  return it != pages_.end() && it->second.replicas.contains(node);
}

MemAccess NumaManager::load(WorkerCoord who, GlobalAddress addr, Bytes size,
                            SimTime now) {
  return access(who, addr, size, /*write=*/false, now);
}

MemAccess NumaManager::store(WorkerCoord who, GlobalAddress addr, Bytes size,
                             SimTime now) {
  return access(who, addr, size, /*write=*/true, now);
}

MemAccess NumaManager::access(WorkerCoord who, GlobalAddress addr, Bytes size,
                              bool write, SimTime now) {
  const PageId page = page_of(addr);
  PageState& state = pages_[page];
  const auto owner = pgas_.directory().owner(page);
  ECO_CHECK_MSG(owner.has_value(), "access to unregistered page");
  const bool remote = *owner != who.node;

  // --- replication fast path: remote read served by a local replica.
  if (config_.policy == NumaPolicy::kReplicateReadMostly && !write &&
      remote && state.replicas.contains(who.node)) {
    ++stats_.replica_hits;
    MemAccess r;
    r.finish = now + config_.replica_read_latency;
    r.energy = config_.replica_read_energy;
    r.remote = false;  // served locally
    r.cache_hit = false;
    return r;
  }

  // --- writes invalidate replicas before they take effect.
  if (config_.policy == NumaPolicy::kReplicateReadMostly && write &&
      !state.replicas.empty()) {
    SimTime inval_done = now;
    for (const NodeId replica : state.replicas) {
      Packet p{PacketType::kCoherence, who, WorkerCoord{replica, 0}, 16};
      const auto t = pgas_.network().send(
          pgas_.flat(who), pgas_.flat(WorkerCoord{replica, 0}), p, now);
      inval_done = std::max(inval_done, t.arrival);
      stats_.policy_energy += t.energy;
      ++stats_.invalidations;
    }
    state.replicas.clear();
    state.remote_reads_since_write.clear();
    now = inval_done;
  }

  const auto result = write ? pgas_.store(who, addr, size, now)
                            : pgas_.load(who, addr, size, now);

  if (!remote) return result;
  // --- bookkeeping on remote accesses.
  ++state.remote_accesses[who.node];
  if (!write) {
    ++state.remote_reads_since_write[who.node];
  } else {
    state.remote_reads_since_write.clear();
  }

  switch (config_.policy) {
    case NumaPolicy::kStaticHome:
      break;
    case NumaPolicy::kMigrateOnHot: {
      const std::uint32_t mine = state.remote_accesses[who.node];
      if (mine >= config_.migrate_threshold) {
        const auto mig = pgas_.migrate_page(page, who.node, result.finish);
        stats_.policy_energy += mig.energy;
        ++stats_.migrations;
        state.remote_accesses.clear();
        MemAccess r = result;
        // The access itself already completed; the migration proceeds in
        // the background (its cost shows in policy_energy and in later
        // accesses' improved locality).
        return r;
      }
      break;
    }
    case NumaPolicy::kReplicateReadMostly: {
      if (!write && state.remote_reads_since_write[who.node] >=
                        config_.replicate_threshold) {
        // Ship a page copy to the reader's node.
        Packet p{PacketType::kDma, WorkerCoord{*owner, 0}, who, kPageSize};
        const auto t = pgas_.network().send(
            pgas_.flat(WorkerCoord{*owner, 0}), pgas_.flat(who), p,
            result.finish);
        stats_.policy_energy += t.energy;
        state.replicas.insert(who.node);
        ++stats_.replicas_created;
      }
      break;
    }
  }
  return result;
}

}  // namespace ecoscale
