#include "runtime/allocator.h"

#include <algorithm>

#include "common/check.h"

namespace ecoscale {

DistributedBuffer::DistributedBuffer(std::vector<BufferPartition> parts)
    : parts_(std::move(parts)) {
  ECO_CHECK(!parts_.empty());
  Bytes expect = 0;
  for (const auto& p : parts_) {
    ECO_CHECK_MSG(p.offset == expect, "partitions must tile the buffer");
    expect += p.size;
  }
  total_ = expect;
}

const BufferPartition& DistributedBuffer::partition_of(Bytes offset) const {
  ECO_CHECK_MSG(offset < total_, "offset past end of buffer");
  // Partitions are sorted by offset; binary search the covering one.
  auto it = std::upper_bound(
      parts_.begin(), parts_.end(), offset,
      [](Bytes off, const BufferPartition& p) { return off < p.offset; });
  ECO_CHECK(it != parts_.begin());
  return *(it - 1);
}

GlobalAddress DistributedBuffer::address_of(Bytes offset) const {
  const BufferPartition& p = partition_of(offset);
  return p.base + (offset - p.offset);
}

WorkerCoord DistributedBuffer::home_of(Bytes offset) const {
  return partition_of(offset).home;
}

DistributedBuffer TopologyAllocator::allocate(
    Bytes total, Distribution dist, const std::vector<WorkerCoord>& workers) {
  ECO_CHECK(total > 0);
  ECO_CHECK(!workers.empty());
  std::vector<BufferPartition> parts;
  switch (dist) {
    case Distribution::kLocal: {
      BufferPartition p;
      p.home = workers.front();
      p.base = pgas_.alloc(p.home.node, p.home.worker, total);
      p.offset = 0;
      p.size = total;
      parts.push_back(p);
      break;
    }
    case Distribution::kBlock: {
      // Page-aligned contiguous chunks, remainder to the last worker.
      const Bytes raw = (total + workers.size() - 1) / workers.size();
      const Bytes chunk = std::max<Bytes>(
          kPageSize, (raw + kPageSize - 1) & ~(kPageSize - 1));
      Bytes offset = 0;
      for (std::size_t i = 0; i < workers.size() && offset < total; ++i) {
        BufferPartition p;
        p.home = workers[i];
        p.offset = offset;
        p.size = std::min(chunk, total - offset);
        p.base = pgas_.alloc(p.home.node, p.home.worker, p.size);
        parts.push_back(p);
        offset += p.size;
      }
      break;
    }
    case Distribution::kCyclic: {
      // One page per worker, round-robin.
      Bytes offset = 0;
      std::size_t i = 0;
      while (offset < total) {
        BufferPartition p;
        p.home = workers[i % workers.size()];
        p.offset = offset;
        p.size = std::min<Bytes>(kPageSize, total - offset);
        p.base = pgas_.alloc(p.home.node, p.home.worker, p.size);
        parts.push_back(p);
        offset += p.size;
        ++i;
      }
      break;
    }
  }
  return DistributedBuffer(std::move(parts));
}

MigrationResult TopologyAllocator::migrate_partition(
    DistributedBuffer& buffer, std::size_t partition, NodeId dst,
    SimTime now) {
  ECO_CHECK(partition < buffer.partitions().size());
  const BufferPartition& p = buffer.partitions()[partition];
  MigrationResult total;
  total.finish = now;
  const PageId first = page_of(p.base);
  const PageId last = page_of(p.base + (p.size - 1));
  for (PageId page = first; page <= last; ++page) {
    const auto r = pgas_.migrate_page(page, dst, total.finish);
    total.finish = r.finish;
    total.bytes_moved += r.bytes_moved;
    total.energy += r.energy;
  }
  return total;
}

}  // namespace ecoscale
