// OpenCL-style host API with the ECOSCALE extensions (paper §4.2, §4.4).
//
// The paper extends OpenCL in three ways, all present here:
//  1. PGAS data scoping — buffers carry a Distribution (NUMA placement
//     across workers) instead of living on one device.
//  2. Scalable data transfers between address-space partitions — direct
//     loads/stores and DMA over UNIMEM instead of host-mediated copies.
//  3. Functions synthesisable to hardware on demand — a kernel is created
//     from its IR, the HLS explorer emits module variants, and the runtime
//     decides SW vs. HW per invocation at runtime.
//
// Command queues are *distributed*: an enqueue over a partitioned buffer
// fans out one task per partition, each homed at the partition's worker
// ("distributed command queues and transparent command queue management
// across workers").
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "hls/dse.h"
#include "runtime/allocator.h"
#include "runtime/chain.h"
#include "runtime/machine.h"
#include "runtime/scheduler.h"
#include "sim/simulator.h"

namespace ecoscale {

class EcoRuntime;

/// A partitioned global buffer handle.
class EcoBuffer {
 public:
  Bytes size() const { return buffer_.size(); }
  const DistributedBuffer& layout() const { return buffer_; }

 private:
  friend class EcoRuntime;
  DistributedBuffer buffer_;
};

/// A kernel: IR plus the HLS-emitted hardware variants.
class EcoKernel {
 public:
  const KernelIR& ir() const { return ir_; }
  const std::vector<AcceleratorModule>& variants() const { return variants_; }

  /// Optional host-side functional body, applied to each partition's bytes
  /// when the kernel is enqueued (keeps results verifiable while timing is
  /// simulated). Receives (data, items_in_partition).
  using Body = std::function<void(std::span<std::uint8_t>, std::uint64_t)>;
  void set_body(Body body) { body_ = std::move(body); }

 private:
  friend class EcoRuntime;
  KernelIR ir_;
  std::vector<AcceleratorModule> variants_;
  Body body_;
};

/// Completion handle: resolves after EcoRuntime::finish().
struct EcoEvent {
  std::vector<TaskId> tasks;
};

class EcoRuntime {
 public:
  explicit EcoRuntime(MachineConfig machine_config = {},
                      RuntimeConfig runtime_config = {});

  // --- platform/device discovery ---
  std::size_t device_count() const { return machine_->worker_count(); }
  Machine& machine() { return *machine_; }
  RuntimeSystem& scheduler() { return *runtime_; }
  Simulator& simulator() { return sim_; }

  // --- buffers (PGAS scoping extension) ---
  EcoBuffer create_buffer(Bytes size, Distribution scope,
                          std::optional<WorkerCoord> anchor = std::nullopt);
  void write_buffer(EcoBuffer& buffer, Bytes offset,
                    std::span<const std::uint8_t> data);
  void read_buffer(const EcoBuffer& buffer, Bytes offset,
                   std::span<std::uint8_t> out) const;

  // --- kernels (HW-synthesisable functions extension) ---
  /// Runs HLS design-space exploration and registers the kernel with the
  /// runtime scheduler.
  EcoKernel create_kernel(const KernelIR& ir, std::size_t max_variants = 3);

  // --- distributed command queue ---
  /// Launch `total_items` work items over the buffer: one task per buffer
  /// partition (items split proportionally), homed at the partition owner.
  EcoEvent enqueue(EcoKernel& kernel, EcoBuffer& buffer,
                   std::uint64_t total_items, SimTime release = 0);

  /// Launch on an explicit worker (classic single-device enqueue).
  EcoEvent enqueue_on(EcoKernel& kernel, WorkerCoord worker,
                      std::uint64_t items, SimTime release = 0);

  /// OpenCL-style event dependency: launch after every task of
  /// `wait_list` has completed (the dependency is resolved by running the
  /// simulation up to the dependencies' completion).
  EcoEvent enqueue_after(EcoKernel& kernel, EcoBuffer& buffer,
                         std::uint64_t total_items, const EcoEvent& wait_list);

  /// §4.3 accelerator chaining at the host-API level: run `kernels` as one
  /// fused on-fabric pipeline on `worker`, returning the timed result
  /// (intermediates never touch DRAM). Falls back to `fits == false` when
  /// the worker's fabric cannot host every stage simultaneously.
  ChainRun enqueue_chain(std::vector<EcoKernel*> kernels, WorkerCoord worker,
                         std::uint64_t items, SimTime now = 0);

  /// Block until all enqueued work completes (runs the simulation).
  void finish() { runtime_->run(); }

  /// Results of the completed tasks of an event.
  std::vector<TaskResult> wait(const EcoEvent& event) const;

  RuntimeStats stats() const { return runtime_->stats(); }

 private:
  TaskId next_task_id_ = 1;
  Simulator sim_;
  std::unique_ptr<Machine> machine_;
  std::unique_ptr<RuntimeSystem> runtime_;
  std::unique_ptr<TopologyAllocator> allocator_;
};

}  // namespace ecoscale
