#include "runtime/resilience.h"

#include <algorithm>
#include <deque>

#include "common/check.h"

namespace ecoscale {

namespace {

/// Pre-sampled Poisson failure times for one worker over a generous
/// horizon.
std::vector<SimTime> sample_failures(Rng& rng, double per_second,
                                     SimTime horizon) {
  std::vector<SimTime> out;
  if (per_second <= 0) return out;
  const double mean_gap_ps = 1e12 / per_second;
  double t = 0;
  while (true) {
    t += rng.exponential(mean_gap_ps);
    if (t >= static_cast<double>(horizon)) break;
    out.push_back(static_cast<SimTime>(t));
  }
  return out;
}

}  // namespace

ResilienceOutcome run_with_failures(const std::vector<ResilientTask>& tasks,
                                    const ResilienceConfig& config) {
  ECO_CHECK(config.workers >= 1);
  Rng rng(config.seed);
  // Generous horizon: serial execution time × 4 (failures included).
  SimDuration serial = 0;
  for (const auto& t : tasks) serial += t.duration;
  const SimTime horizon = 4 * serial + milliseconds(10);
  std::vector<std::vector<SimTime>> failures(config.workers);
  std::vector<std::size_t> next_failure(config.workers, 0);
  for (auto& f : failures) {
    f = sample_failures(rng, config.failures_per_second, horizon);
  }

  std::vector<SimTime> free_at(config.workers, 0);
  std::deque<ResilientTask> queue(tasks.begin(), tasks.end());
  ResilienceOutcome out;

  while (!queue.empty()) {
    ResilientTask task = queue.front();
    queue.pop_front();
    // Least-loaded (earliest-free) worker.
    std::size_t w = 0;
    for (std::size_t i = 1; i < config.workers; ++i) {
      if (free_at[i] < free_at[w]) w = i;
    }
    const SimTime start = free_at[w];
    const SimTime would_finish = start + task.duration;
    // First failure of w inside (start, would_finish)?
    auto& fi = next_failure[w];
    while (fi < failures[w].size() && failures[w][fi] <= start) ++fi;
    if (fi < failures[w].size() && failures[w][fi] < would_finish) {
      // Crash mid-task.
      const SimTime crash = failures[w][fi];
      ++fi;
      ++out.failures;
      const double progress_ns = to_nanoseconds(crash - start);
      out.wasted_energy += task.energy_pj_per_ns * progress_ns;
      free_at[w] = crash + config.repair_time;
      out.makespan = std::max(out.makespan, free_at[w]);
      if (config.reexecute) {
        ++out.reexecutions;
        // Detection delays re-queue; restart from scratch.
        ResilientTask retry = task;
        queue.push_back(retry);
        // All other workers keep running; account the detection point so
        // makespan cannot end before it.
        out.makespan = std::max(out.makespan, crash + config.detect_timeout);
      } else {
        ++out.lost;
      }
      continue;
    }
    // Clean completion.
    free_at[w] = would_finish;
    ++out.completed;
    out.useful_energy +=
        task.energy_pj_per_ns * to_nanoseconds(task.duration);
    out.makespan = std::max(out.makespan, would_finish);
    ECO_CHECK_MSG(out.makespan < horizon,
                  "resilience run exceeded sampling horizon");
  }
  return out;
}

ScrubOutcome scrubbing_policy(SimDuration scrub_period, double seu_per_second,
                              std::uint64_t calls, SimTime horizon,
                              SimDuration reload_time, std::uint64_t seed) {
  ECO_CHECK(calls > 0 && horizon > 0);
  Rng rng(seed ^ 0x5eed);
  const auto seus = sample_failures(rng, seu_per_second, horizon);
  ScrubOutcome out;
  const SimDuration call_gap = horizon / calls;
  const bool scrubbing = scrub_period > 0;
  bool corrupted = false;
  std::size_t next_seu = 0;
  SimTime next_scrub = scrubbing ? scrub_period : horizon + 1;
  for (std::uint64_t c = 0; c < calls; ++c) {
    const SimTime now = static_cast<SimTime>(c) * call_gap;
    // Replay SEU and scrub events up to this call in time order: a scrub
    // after an SEU repairs it; an SEU after the last scrub corrupts.
    for (;;) {
      const SimTime seu_t =
          next_seu < seus.size() ? seus[next_seu] : horizon + 1;
      const SimTime scrub_t = next_scrub;
      if (seu_t > now && scrub_t > now) break;
      if (seu_t <= scrub_t) {
        corrupted = true;
        ++next_seu;
      } else {
        corrupted = false;
        ++out.scrub_passes;
        out.overhead += reload_time;
        next_scrub += scrub_period;
      }
    }
    if (corrupted) ++out.corrupted_calls;
  }
  out.corrupted_fraction = static_cast<double>(out.corrupted_calls) /
                           static_cast<double>(calls);
  return out;
}

}  // namespace ecoscale
