#include "runtime/resilience.h"

#include <algorithm>
#include <deque>

#include "common/check.h"

namespace ecoscale {

namespace {

/// Pre-sampled Poisson failure times for one worker over a generous
/// horizon.
std::vector<SimTime> sample_failures(Rng& rng, double per_second,
                                     SimTime horizon) {
  std::vector<SimTime> out;
  if (per_second <= 0) return out;
  const double mean_gap_ps = 1e12 / per_second;
  double t = 0;
  while (true) {
    t += rng.exponential(mean_gap_ps);
    if (t >= static_cast<double>(horizon)) break;
    out.push_back(static_cast<SimTime>(t));
  }
  return out;
}

}  // namespace

ResilienceOutcome run_with_failures(const std::vector<ResilientTask>& tasks,
                                    const ResilienceConfig& config) {
  ECO_CHECK(config.workers >= 1);
  // Failures are sampled lazily, one independent exponential stream per
  // worker, advanced memorylessly past each dispatch. There is no sampling
  // horizon: arbitrarily long crash/re-execute chains stay under injection
  // instead of running on a spuriously failure-free tail.
  const double mean_gap_ps =
      config.failures_per_second > 0 ? 1e12 / config.failures_per_second : 0;
  std::vector<Rng> rng;
  rng.reserve(config.workers);
  std::vector<double> next_failure(config.workers, 0.0);
  for (std::size_t w = 0; w < config.workers; ++w) {
    rng.emplace_back(config.seed * 0x9e3779b97f4a7c15ull + w);
    if (mean_gap_ps > 0) next_failure[w] = rng[w].exponential(mean_gap_ps);
  }

  // A re-queued task carries the instant its crash becomes *detectable*:
  // no attempt may start before its predecessor's crash + detect_timeout,
  // even on a worker that happens to be idle earlier.
  struct Pending {
    ResilientTask task;
    SimTime not_before = 0;
    bool is_retry = false;
  };
  std::vector<SimTime> free_at(config.workers, 0);
  std::deque<Pending> queue;
  for (const auto& t : tasks) queue.push_back({t, 0, false});
  ResilienceOutcome out;
  SimTime earliest_reexec = ~SimTime{0};

  while (!queue.empty()) {
    Pending pending = queue.front();
    queue.pop_front();
    const ResilientTask& task = pending.task;
    // Least-loaded (earliest-free) worker.
    std::size_t w = 0;
    for (std::size_t i = 1; i < config.workers; ++i) {
      if (free_at[i] < free_at[w]) w = i;
    }
    const SimTime start = std::max(free_at[w], pending.not_before);
    const SimTime would_finish = start + task.duration;
    if (pending.is_retry) earliest_reexec = std::min(earliest_reexec, start);
    // Advance w's failure stream past `start` (memoryless, so re-sampling
    // the gap after skipped failures keeps the process Poisson), then ask
    // whether the next failure lands inside (start, would_finish).
    if (mean_gap_ps > 0) {
      while (next_failure[w] <= static_cast<double>(start)) {
        next_failure[w] += rng[w].exponential(mean_gap_ps);
      }
    }
    if (mean_gap_ps > 0 &&
        next_failure[w] < static_cast<double>(would_finish)) {
      // Crash mid-task.
      const auto crash = static_cast<SimTime>(next_failure[w]);
      next_failure[w] += rng[w].exponential(mean_gap_ps);
      ++out.failures;
      // Dispatch order is not time order across workers: track the true
      // extremes, not the first/last crash the loop happened to visit.
      if (out.failures == 1 || crash < out.first_crash) {
        out.first_crash = crash;
      }
      if (crash > out.last_crash) out.last_crash = crash;
      const double progress_ns = to_nanoseconds(crash - start);
      out.wasted_energy += task.energy_pj_per_ns * progress_ns;
      free_at[w] = crash + config.repair_time;
      out.makespan = std::max(out.makespan, free_at[w]);
      if (config.reexecute) {
        ++out.reexecutions;
        // Detection delays the restart: the retry is not eligible to run
        // anywhere before the heartbeat monitor can have noticed the crash.
        queue.push_back({task, crash + config.detect_timeout, true});
        out.makespan = std::max(out.makespan, crash + config.detect_timeout);
      } else {
        ++out.lost;
      }
      continue;
    }
    // Clean completion.
    free_at[w] = would_finish;
    ++out.completed;
    out.useful_energy +=
        task.energy_pj_per_ns * to_nanoseconds(task.duration);
    out.makespan = std::max(out.makespan, would_finish);
  }
  if (earliest_reexec != ~SimTime{0}) out.earliest_reexec_start = earliest_reexec;
  return out;
}

ScrubOutcome scrubbing_policy(SimDuration scrub_period, double seu_per_second,
                              std::uint64_t calls, SimTime horizon,
                              SimDuration reload_time, std::uint64_t seed) {
  ECO_CHECK(calls > 0 && horizon > 0);
  Rng rng(seed ^ 0x5eed);
  const auto seus = sample_failures(rng, seu_per_second, horizon);
  ScrubOutcome out;
  const SimDuration call_gap = horizon / calls;
  const bool scrubbing = scrub_period > 0;
  bool corrupted = false;
  std::size_t next_seu = 0;
  SimTime next_scrub = scrubbing ? scrub_period : horizon + 1;
  for (std::uint64_t c = 0; c < calls; ++c) {
    const SimTime now = static_cast<SimTime>(c) * call_gap;
    // Replay SEU and scrub events up to this call in time order: a scrub
    // after an SEU repairs it; an SEU after the last scrub corrupts.
    for (;;) {
      const SimTime seu_t =
          next_seu < seus.size() ? seus[next_seu] : horizon + 1;
      const SimTime scrub_t = next_scrub;
      if (seu_t > now && scrub_t > now) break;
      if (seu_t <= scrub_t) {
        corrupted = true;
        ++next_seu;
      } else {
        corrupted = false;
        ++out.scrub_passes;
        out.overhead += reload_time;
        next_scrub += scrub_period;
      }
    }
    if (corrupted) ++out.corrupted_calls;
  }
  out.corrupted_fraction = static_cast<double>(out.corrupted_calls) /
                           static_cast<double>(calls);
  return out;
}

}  // namespace ecoscale
