// The ECOSCALE runtime scheduler (paper §4.2, Figure 5).
//
// "We will implement one scheduler per worker, which will manage the local
// reconfigurable blocks and the execution of the accelerated functions.
// Whenever a function is called, a work and data distribution algorithm…
// will decide whether the function will be executed in software or in
// hardware based on the local status and the status of other Workers in
// the vicinity. To curb the overhead of monitoring remote status, we will
// implement local work queues per worker and infer (approximately) the
// status of remote workers via the status of the local queue, using
// techniques inspired by Lazy Scheduling."
//
// Two orthogonal policy axes are modelled:
//  * PlacementPolicy  — SW vs. HW per task (always-SW / always-HW /
//    size-threshold / model-based on the learned CostPredictor).
//  * DistributionPolicy — which worker's queue a task lands in
//    (home-only / lazy local-queue spill / centralized dispatcher /
//    poll-everyone oracle).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "model/predictor.h"
#include "runtime/daemon.h"
#include "runtime/fault.h"
#include "runtime/machine.h"
#include "runtime/task.h"
#include "sim/simulator.h"

namespace ecoscale {

enum class PlacementPolicy {
  kAlwaysSoftware,
  kAlwaysHardware,
  kSizeThreshold,   // HW iff items >= threshold
  kModelBased,      // argmin over predicted objective
};

enum class DistributionPolicy {
  kHomeOnly,        // no balancing at all
  kLazyLocal,       // spill to a neighbour only when the local queue is deep
  kCentralized,     // one global dispatcher with perfect info
  kPollLeastLoaded, // per-task polling of every worker (perfect info, costly)
};

enum class Objective { kTime, kEnergy, kEnergyDelay };

struct RuntimeConfig {
  PlacementPolicy placement = PlacementPolicy::kModelBased;
  DistributionPolicy distribution = DistributionPolicy::kLazyLocal;
  Objective objective = Objective::kTime;
  std::uint64_t size_threshold = 4096;   // items, for kSizeThreshold
  std::size_t spill_depth = 4;           // lazy: queue depth that spills
  std::size_t max_spill_hops = 3;        // lazy: cascade limit per task
  bool share_fabric = true;              // UNILOGIC on/off
  SimDuration dispatcher_service = microseconds(2);  // centralized cost
  SimDuration poll_cost = microseconds(1);           // per polled worker
  /// Admission control: a task arriving at a worker whose queue depth
  /// (queued + running) has reached this limit is *shed* — dropped from
  /// the pending set, counted in RuntimeStats::shed_tasks, and reported
  /// to the shed handler so the application can fail the request instead
  /// of letting the queue grow without bound. 0 disables (legacy).
  std::size_t admission_limit = 0;
  /// Request batching: when dispatch_overhead > 0, opening a batch costs
  /// dispatch_overhead once, then up to batch_size queued tasks dispatch
  /// back to back without re-paying it — the doorbell/submission
  /// amortization serving workloads rely on. dispatch_overhead == 0
  /// keeps the legacy immediate-dispatch behaviour byte-identical.
  std::size_t batch_size = 1;
  SimDuration dispatch_overhead = 0;
  /// Run a per-worker reconfiguration daemon (history-driven prefetch,
  /// §4.2): ticks opportunistically at dispatch points.
  bool enable_daemon = false;
  DaemonConfig daemon;
  /// Worker failure injection (abstract's resilience claim): Poisson
  /// crashes per worker; a crash loses the running task's progress and
  /// takes the worker down for repair_time, after which the task
  /// re-executes from scratch. 0 disables. This legacy analytic-style
  /// path is mutually exclusive with `faults.enabled` below.
  double failures_per_second = 0.0;
  SimDuration repair_time = milliseconds(2);
  /// Live fault injection through the simulator (FaultInjector): worker
  /// crashes, node losses, link degradation and fabric SEUs, detected by
  /// a heartbeat monitor and recovered via re-execution on survivors.
  FaultConfig faults;
  std::uint64_t seed = 42;
  /// --- Online repartitioning (src/repart/, DESIGN.md §7.11) -------------
  /// Epoch period of the repartitioner a ShardedRuntime drives between
  /// engine pauses; 0 = off (no epoch pauses, the legacy run loop). The
  /// knobs below are read by repart::Repartitioner when it installs
  /// itself; they live here so one RuntimeConfig describes a node's whole
  /// policy surface.
  SimDuration repartition_epoch = 0;
  /// Rate limit: most item migrations a single epoch may execute.
  std::size_t repartition_max_moves = 32;
  /// Hysteresis floor on capacity-normalized load imbalance (max/mean - 1);
  /// below it an epoch plans no balance moves.
  double repartition_imbalance = 0.10;
  /// Diffusion damping per epoch toward the capacity-proportional share.
  double repartition_alpha = 0.5;
  /// Epochs an item is frozen after it moves (anti-thrash hysteresis).
  std::size_t repartition_cooldown = 2;
  /// Locality moves require at least this windowed access-count advantage
  /// at the preferred node, confirmed over two consecutive epochs.
  std::uint64_t repartition_min_gain = 16;
};

struct RuntimeStats {
  SimTime makespan = 0;
  Picojoules energy = 0.0;
  std::uint64_t sw_tasks = 0;
  std::uint64_t hw_tasks = 0;
  std::uint64_t remote_hw_tasks = 0;
  std::uint64_t forwarded_tasks = 0;
  std::uint64_t monitor_messages = 0;  // distribution-policy overhead
  std::uint64_t worker_failures = 0;   // crashes that hit running tasks
  std::uint64_t reexecutions = 0;
  /// Energy burnt by attempts a crash destroyed: partial progress up to
  /// the failure instant, charged in proportion to elapsed runtime.
  Picojoules wasted_energy = 0.0;
  /// Heartbeat-monitor detections of down workers (live fault path).
  std::uint64_t detections = 0;
  /// Tasks moved off a detected-dead worker to a survivor.
  std::uint64_t task_failovers = 0;
  /// Tasks refused by admission control (queue depth at admission_limit).
  std::uint64_t shed_tasks = 0;
  Samples queue_wait_ns;
  Samples turnaround_ns;
};

class RuntimeSystem {
 public:
  RuntimeSystem(Machine& machine, Simulator& sim, RuntimeConfig config = {});

  /// Register a kernel with its HLS-generated module variants (largest
  /// variant that fits is chosen at load time).
  void register_kernel(const KernelIR& kernel,
                       std::vector<AcceleratorModule> variants);

  /// Queue a task for execution at task.release.
  void submit(const Task& task);

  /// Run the simulation until all submitted tasks complete.
  void run();

  const std::vector<TaskResult>& results() const { return results_; }
  RuntimeStats stats() const;
  CostPredictor& predictor() { return predictor_; }
  const RuntimeConfig& config() const { return config_; }
  /// Daemon of a worker (nullptr unless enable_daemon).
  ReconfigDaemon* daemon(std::size_t worker) {
    return daemons_.empty() ? nullptr : daemons_[worker].get();
  }

  /// Live fault injector (nullptr unless config.faults.enabled).
  FaultInjector* faults() { return injector_.get(); }

  std::size_t worker_count() const { return workers_.size(); }
  /// Queue depth (queued + running) of `worker` — the same metric
  /// admission control limits, exposed for the repartitioner's epoch
  /// sampling (read only between engine windows, when nothing runs).
  std::size_t queue_depth(std::size_t worker) const {
    ECO_CHECK(worker < workers_.size());
    const WorkerState& w = workers_[worker];
    return w.queue.size() + (w.busy ? 1 : 0);
  }
  /// Workers the heartbeat monitor currently believes alive — the node's
  /// effective capacity as far as any placement policy may legally know
  /// (known_down, never the injector's ground truth).
  std::size_t believed_alive_workers() const {
    std::size_t alive = 0;
    for (const WorkerState& w : workers_) {
      if (!w.known_down) ++alive;
    }
    return alive;
  }

  /// Called when a task's result is recorded, inside the completion event
  /// at result.finished (same causal point as results_.push_back). Serving
  /// layers use it to decode Task::payload and send responses; it runs on
  /// this runtime's simulator, so it may post follow-on events. Unset
  /// (default) keeps the completion path allocation-identical to legacy.
  using CompletionHandler = std::function<void(const Task&, const TaskResult&)>;
  void set_completion_handler(CompletionHandler handler) {
    completion_handler_ = std::move(handler);
  }

  /// Called when admission control sheds a task (at the shed instant).
  using ShedHandler = std::function<void(const Task&, SimTime)>;
  void set_shed_handler(ShedHandler handler) {
    shed_handler_ = std::move(handler);
  }

  /// One recovered in-flight task: when its worker crashed, when the
  /// heartbeat monitor declared the worker dead, and where the task was
  /// re-queued. Tests pin the detection-latency causality on this.
  struct RecoveryRecord {
    TaskId task = 0;
    std::size_t worker = 0;
    std::size_t requeued_to = 0;
    SimTime crash_at = 0;
    SimTime detected_at = 0;
  };
  const std::vector<RecoveryRecord>& recovery_log() const {
    return recovery_log_;
  }

 private:
  struct WorkerState {
    std::deque<Task> queue;
    bool busy = false;
    /// Bumped at every dispatch and every crash: a completion event whose
    /// epoch is stale belongs to an attempt the crash destroyed (the
    /// simulator has no event cancellation).
    std::uint64_t epoch = 0;
    /// Attempt currently executing (live fault path bookkeeping).
    bool in_flight = false;
    Task current{};
    SimTime exec_start = 0;
    SimTime exec_finish = 0;
    Picojoules exec_energy = 0.0;
    /// The *runtime's* view of liveness: set only once the heartbeat
    /// monitor detects the crash (detect_timeout after the fact), cleared
    /// on repair. HealthRegistry knows sooner; the scheduler must not.
    bool known_down = false;
    /// Crash awaiting detection (valid while pending_detect).
    bool pending_detect = false;
    SimTime crash_at = 0;
    /// Tasks remaining in the open batch window (dispatch_overhead > 0):
    /// while nonzero, dispatch() skips the batch-open overhead.
    std::size_t batch_left = 0;
  };

  void arrive(std::size_t worker, Task task, int spill_hops);
  /// Lazy cascade: the spill target for a task that finds `worker`'s queue
  /// deep — a node neighbour first, then the sibling worker one node over.
  std::size_t spill_target(std::size_t worker, const Task& task,
                           int hops) const;
  void dispatch(std::size_t worker);
  /// Choose the queue a task should land in; returns flat worker index and
  /// charges any monitoring/forwarding costs.
  std::size_t route(const Task& task);
  // --- live fault path ---------------------------------------------------
  /// FaultInjector callbacks (fire at crash/repair sim time).
  void on_worker_down(std::size_t worker, SimTime at);
  void on_worker_up(std::size_t worker, SimTime at);
  /// Heartbeat monitor: periodic tick that detects silent workers once
  /// they have been down for detect_timeout, then drains their work onto
  /// survivors. Started lazily by submit(), stops when nothing is pending.
  void ensure_monitor();
  void monitor_tick();
  /// Least-loaded worker the runtime believes is alive, excluding
  /// `avoid`; falls back to `avoid` if it believes nobody else is.
  std::size_t survivor_for(std::size_t avoid) const;
  /// Choose SW / local HW / shared HW for a dispatched task.
  DeviceClass place(const Task& task, std::size_t worker);
  /// Pick the largest registered variant that can fit the worker's fabric.
  const AcceleratorModule* choose_variant(KernelId kernel,
                                          std::size_t worker) const;

  Machine& machine_;
  Simulator& sim_;
  RuntimeConfig config_;
  Rng rng_;
  std::map<KernelId, KernelIR> kernels_;
  std::map<KernelId, std::vector<AcceleratorModule>> variants_;
  std::vector<WorkerState> workers_;
  std::vector<std::unique_ptr<ReconfigDaemon>> daemons_;  // if enabled
  std::vector<SimTime> next_daemon_tick_;
  std::vector<SimTime> next_failure_;  // failure injection, if enabled
  std::uint64_t failures_ = 0;
  std::uint64_t reexecutions_ = 0;
  std::unique_ptr<FaultInjector> injector_;  // if config.faults.enabled
  bool monitor_running_ = false;
  Picojoules wasted_energy_ = 0.0;
  std::uint64_t detections_ = 0;
  std::uint64_t task_failovers_ = 0;
  std::vector<RecoveryRecord> recovery_log_;
  Timeline dispatcher_{"dispatcher"};  // centralized mode serialisation
  CostPredictor predictor_;
  std::vector<TaskResult> results_;
  std::map<TaskId, bool> forwarded_;
  std::uint64_t monitor_messages_ = 0;
  std::uint64_t pending_ = 0;
  std::uint64_t shed_tasks_ = 0;
  CompletionHandler completion_handler_;
  ShedHandler shed_handler_;
};

}  // namespace ecoscale
