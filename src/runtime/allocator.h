// Topology-aware global memory allocation (paper §4.4).
//
// "We will treat the global memory in each compute node as a collection of
// NUMA domains accessible via the UNIMEM interface. We will explore
// topology-aware global memory allocators in these domains, to be used by
// the OpenCL runtime for implicit data allocation, migration and
// replication between workers."
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "address/address.h"
#include "common/units.h"
#include "unimem/pgas.h"

namespace ecoscale {

enum class Distribution {
  kLocal,   // whole buffer in one worker's domain
  kBlock,   // contiguous chunks across workers (locality-preserving)
  kCyclic,  // page-granular round-robin (bandwidth-spreading)
};

struct BufferPartition {
  WorkerCoord home;
  GlobalAddress base;
  Bytes offset = 0;  // byte offset within the logical buffer
  Bytes size = 0;
};

/// A logically contiguous buffer physically partitioned across NUMA
/// domains. Offsets are logical buffer offsets; address_of() maps them to
/// global addresses.
class DistributedBuffer {
 public:
  DistributedBuffer() = default;
  explicit DistributedBuffer(std::vector<BufferPartition> parts);

  Bytes size() const { return total_; }
  const std::vector<BufferPartition>& partitions() const { return parts_; }

  GlobalAddress address_of(Bytes offset) const;
  WorkerCoord home_of(Bytes offset) const;
  const BufferPartition& partition_of(Bytes offset) const;

 private:
  std::vector<BufferPartition> parts_;
  Bytes total_ = 0;
};

class TopologyAllocator {
 public:
  explicit TopologyAllocator(PgasSystem& pgas) : pgas_(pgas) {}

  /// Allocate `total` bytes distributed over `workers`.
  DistributedBuffer allocate(Bytes total, Distribution dist,
                             const std::vector<WorkerCoord>& workers);

  /// Move one partition's pages to another node (UNIMEM page migration);
  /// returns the aggregate migration cost.
  MigrationResult migrate_partition(DistributedBuffer& buffer,
                                    std::size_t partition, NodeId dst,
                                    SimTime now);

 private:
  PgasSystem& pgas_;
};

}  // namespace ecoscale
