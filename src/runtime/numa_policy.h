// NUMA policies over UNIMEM (paper §4.4): "We will explore topology-aware
// global memory allocators in these domains, to be used by the OpenCL
// runtime for implicit data allocation, migration and replication between
// workers."
//
// The NumaManager wraps a PgasSystem's access path, tracks per-page access
// origins, and applies one of three policies:
//  * kStaticHome          — pages stay where allocated (baseline).
//  * kMigrateOnHot        — a page whose remote accesses from one node
//                           dominate is migrated there (UNIMEM ownership
//                           flip, §4.1's page migration).
//  * kReplicateReadMostly — read-mostly pages get per-node read replicas;
//                           writes invalidate all replicas and go to the
//                           owner (classic read-replication with
//                           write-invalidate, safe because UNIMEM already
//                           serialises writes at the owner).
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "common/units.h"
#include "unimem/pgas.h"

namespace ecoscale {

enum class NumaPolicy { kStaticHome, kMigrateOnHot, kReplicateReadMostly };

struct NumaConfig {
  NumaPolicy policy = NumaPolicy::kStaticHome;
  /// kMigrateOnHot: migrate when one node's remote accesses to a page
  /// exceed this count and outnumber the owner's by 2x.
  std::uint32_t migrate_threshold = 16;
  /// kReplicateReadMostly: replicate to a node after this many remote
  /// reads with no intervening write.
  std::uint32_t replicate_threshold = 8;
  /// Replica read latency/energy ≈ local DRAM at the reader's node.
  SimDuration replica_read_latency = nanoseconds(70);
  Picojoules replica_read_energy = 170.0;
};

struct NumaStats {
  std::uint64_t migrations = 0;
  std::uint64_t replicas_created = 0;
  std::uint64_t replica_hits = 0;
  std::uint64_t invalidations = 0;  // replica invalidations by writes
  Picojoules policy_energy = 0.0;   // migration/replication transfer cost
};

class NumaManager {
 public:
  NumaManager(PgasSystem& pgas, NumaConfig config = {})
      : pgas_(pgas), config_(config) {}

  /// Access through the policy layer. Semantics match PgasSystem::load /
  /// store, plus the policy's bookkeeping and actions.
  MemAccess load(WorkerCoord who, GlobalAddress addr, Bytes size,
                 SimTime now);
  MemAccess store(WorkerCoord who, GlobalAddress addr, Bytes size,
                  SimTime now);

  const NumaStats& stats() const { return stats_; }
  bool has_replica(PageId page, NodeId node) const;

 private:
  struct PageState {
    std::map<NodeId, std::uint32_t> remote_accesses;
    std::map<NodeId, std::uint32_t> remote_reads_since_write;
    std::set<NodeId> replicas;
  };

  MemAccess access(WorkerCoord who, GlobalAddress addr, Bytes size,
                   bool write, SimTime now);

  PgasSystem& pgas_;
  NumaConfig config_;
  std::map<PageId, PageState> pages_;
  NumaStats stats_;
};

}  // namespace ecoscale
