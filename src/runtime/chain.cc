#include "runtime/chain.h"

#include <algorithm>

#include "common/check.h"

namespace ecoscale {

namespace {

double total_ops(std::span<const KernelIR> kernels, std::uint64_t items) {
  double ops = 0.0;
  for (const auto& k : kernels) {
    ops += static_cast<double>(k.ops.total()) * static_cast<double>(items);
  }
  return ops;
}

}  // namespace

ChainRun run_chained(Worker& worker, std::span<const AcceleratorModule> stages,
                     const std::span<const KernelIR> kernels,
                     std::uint64_t items, SimTime now) {
  ECO_CHECK(!stages.empty());
  ECO_CHECK(stages.size() == kernels.size());
  ChainRun run;
  run.start = now;
  // All stages must be resident simultaneously.
  SimTime ready = now;
  for (const auto& stage : stages) {
    const auto load = worker.fabric().ensure_loaded(stage, now);
    if (!load) {
      run.fits = false;
      return run;
    }
    ready = std::max(ready, load->ready);
  }
  // Fused pipeline: the chain issues at the slowest stage's II; latency is
  // the sum of stage depths. Intermediates stay in on-fabric FIFOs.
  SimDuration worst_ii_time = 0;
  SimDuration depth_time = 0;
  Picojoules dynamic = 0.0;
  for (const auto& stage : stages) {
    const SimDuration cycle = stage.cycle_time();
    worst_ii_time = std::max(worst_ii_time,
                             stage.initiation_interval * cycle);
    depth_time += stage.pipeline_depth * cycle;
    dynamic += stage.compute_energy(items);
  }
  const SimDuration compute =
      depth_time + (items > 0 ? (items - 1) * worst_ii_time : 0);
  // External I/O only: first stage input, last stage output.
  const Bytes dram = items * (stages.front().bytes_in_per_item +
                              stages.back().bytes_out_per_item);
  const SimDuration stream =
      worker.config().accel_mem_bw.transfer_time(dram);
  run.finish = ready + std::max(compute, stream);
  run.dram_bytes = dram;
  run.energy = dynamic + worker.config().accel_mem_pj_per_byte *
                             static_cast<double>(dram);
  run.ops_per_dram_byte =
      dram ? total_ops(kernels, items) / static_cast<double>(dram) : 0.0;
  // Mark every stage busy for the duration.
  for (const auto& stage : stages) {
    if (auto region = worker.fabric().region_of(stage.kernel)) {
      worker.fabric().set_busy_until(*region, run.finish);
    }
  }
  return run;
}

ChainRun run_staged(Worker& worker, std::span<const AcceleratorModule> stages,
                    const std::span<const KernelIR> kernels,
                    std::uint64_t items, SimTime now) {
  ECO_CHECK(!stages.empty());
  ECO_CHECK(stages.size() == kernels.size());
  ChainRun run;
  run.start = now;
  SimTime t = now;
  for (const auto& stage : stages) {
    const auto exec = worker.run_hardware(stage, items, t);
    if (!exec) {
      run.fits = false;
      return run;
    }
    t = exec->finish;
    run.energy += exec->energy;
    run.dram_bytes +=
        items * (stage.bytes_in_per_item + stage.bytes_out_per_item);
  }
  run.finish = t;
  run.ops_per_dram_byte =
      run.dram_bytes
          ? total_ops(kernels, items) / static_cast<double>(run.dram_bytes)
          : 0.0;
  return run;
}

}  // namespace ecoscale
