// Task vocabulary of the runtime system.
#pragma once

#include <array>
#include <cstdint>

#include "address/address.h"
#include "common/units.h"
#include "hls/ir.h"
#include "model/predictor.h"

namespace ecoscale {

using TaskId = std::uint64_t;

/// One kernel invocation, the unit the per-worker schedulers manage.
struct Task {
  TaskId id = 0;
  KernelId kernel = 0;
  std::uint64_t items = 0;
  TaskFeatures features;
  /// Preferred worker: where the task's data partition lives.
  WorkerCoord home;
  /// Release (arrival) time.
  SimTime release = 0;
  /// Opaque application payload, carried untouched through routing,
  /// spilling, and failover. Serving workloads pack request descriptors
  /// (op, origin node, key, value) here and decode them in the
  /// completion handler; the scheduler itself never reads it.
  std::array<std::uint64_t, 2> payload{};
};

struct TaskResult {
  TaskId id = 0;
  SimTime release = 0;
  SimTime started = 0;   // dispatch time (left the queue)
  SimTime finished = 0;
  DeviceClass device = DeviceClass::kCpu;
  std::size_t executed_on = 0;  // flat worker index
  Picojoules energy = 0.0;
  bool reconfigured = false;
  bool forwarded = false;  // left its home worker's queue

  SimDuration queue_wait() const { return started - release; }
  SimDuration turnaround() const { return finished - release; }
};

}  // namespace ecoscale
