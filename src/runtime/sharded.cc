#include "runtime/sharded.h"

#include <algorithm>
#include <utility>

#include "common/reduce.h"
#include "interconnect/topology.h"

namespace ecoscale {

ShardedRuntime::ShardedRuntime(ShardedRuntimeConfig config)
    : config_(std::move(config)) {
  ECO_CHECK_MSG(config_.nodes >= 1, "need at least one node");
  const std::size_t n = config_.nodes;

  // Node-level interconnect: by default every Compute Node is one endpoint
  // behind a central switch, links carrying the machine's L1 (inter-node)
  // tier parameters; internode_radices instead builds the multi-tier tree
  // (level 0 = L1, higher levels = the costlier L2 parameters). Only
  // route/latency/tree queries are ever issued against it — the engine
  // charges forwards its head latency; it never send()s, so it stays
  // read-only during the parallel run.
  NetworkConfig nc;
  nc.level_params = {{0, config_.machine.pgas.l1_link}};
  if (config_.internode_radices.empty()) {
    internode_ = std::make_unique<Network>(
        make_crossbar(std::max<std::size_t>(n, 2)), nc);
  } else {
    std::size_t leaves = 1;
    for (const std::size_t r : config_.internode_radices) leaves *= r;
    ECO_CHECK_MSG(leaves == n,
                  "internode_radices leaf count must equal `nodes`");
    for (std::size_t l = 1; l < config_.internode_radices.size(); ++l) {
      nc.level_params[static_cast<int>(l)] = config_.machine.pgas.l2_link;
    }
    internode_ =
        std::make_unique<Network>(make_tree(config_.internode_radices), nc);
  }
  ECO_CHECK_MSG(internode_->implicit_routing(),
                "inter-node crossbar must route implicitly (shard threads "
                "query route_latency concurrently)");

  ShardedConfig sc;
  sc.shards = n;
  sc.lookahead = std::max<SimDuration>(internode_->min_cross_latency(0), 1);
  sc.threads = config_.threads;
  sc.mailbox_capacity = config_.mailbox_capacity;
  sc.window_mode = config_.adaptive_windows ? WindowMode::kAdaptive
                                            : WindowMode::kFixedWindow;
  // Per-pair lookahead straight from the interconnect: route_latency is a
  // shortest-path metric (triangle inequality holds), which is what the
  // adaptive engine's relayed-causality argument needs, and post_task
  // already charges exactly this latency, so the per-pair post contract is
  // met with zero slack. The LCA walk is mutation-free (implicit routing
  // is ECO_CHECKed above), so shard threads may query it concurrently.
  Network* net = internode_.get();
  sc.pair_lookahead = [net](std::size_t from, std::size_t to) {
    return net->route_latency(from, to);
  };
  // Past the dense pair-matrix cap the engine falls back to per-source
  // floors; hand it the per-endpoint tree DP. (Called at engine
  // construction only — single-threaded, the lazy cache build is safe.)
  sc.source_floor = [net](std::size_t from) {
    return net->min_latency_from(from, 0);
  };
  engine_ = std::make_unique<ShardedSimulator>(sc);

  nodes_.reserve(n);
  for (std::size_t node = 0; node < n; ++node) {
    Node slot;
    MachineConfig mc = config_.machine;
    mc.nodes = 1;  // the shard is the node: its UNIMEM domain is private
    mc.workers_per_node = config_.workers_per_node;
    slot.machine = std::make_unique<Machine>(mc);
    RuntimeConfig rc = config_.runtime;
    rc.seed = config_.runtime.seed + node;  // decorrelate per-node streams
    for (const ShardedRuntimeConfig::NodeOutage& outage :
         config_.node_outages) {
      if (outage.node != node) continue;
      ECO_CHECK_MSG(outage.repair_after > 0,
                    "whole-node outages must repair (failover is "
                    "node-local; a permanent loss strands its queue)");
      rc.faults.enabled = true;
      for (std::size_t w = 0; w < config_.workers_per_node; ++w) {
        rc.faults.scripted_crashes.push_back(CrashEvent{
            w, outage.at, /*permanent=*/false, outage.repair_after});
      }
    }
    slot.runtime = std::make_unique<RuntimeSystem>(
        *slot.machine, engine_->shard(node), rc);
    nodes_.push_back(std::move(slot));
  }
}

void ShardedRuntime::register_kernel(const KernelIR& kernel,
                                     std::vector<AcceleratorModule> variants) {
  for (auto& node : nodes_) {
    node.runtime->register_kernel(kernel, variants);
  }
}

void ShardedRuntime::submit(std::size_t node, const Task& task) {
  ECO_CHECK(node < nodes_.size());
  ECO_CHECK_MSG(task.home.node == 0,
                "task.home is node-local; pick the node via `node`");
  nodes_[node].runtime->submit(task);
}

void ShardedRuntime::post_task(std::size_t from, std::size_t to, Task task) {
  ECO_CHECK(from < nodes_.size() && to < nodes_.size());
  ECO_CHECK_MSG(task.home.node == 0,
                "task.home is node-local on the destination");
  const SimTime arrive =
      engine_->shard(from).now() + inter_node_latency(from, to);
  task.release = arrive;
  RuntimeSystem* rt = nodes_[to].runtime.get();
  engine_->post(from, to, arrive, [rt, task] { rt->submit(task); });
}

void ShardedRuntime::run() {
  if (epoch_period_ > 0) {
    // Epoch-driven drain: advance all shards to the next period boundary,
    // pause, let the policy observe and act, resume. The hook runs on the
    // calling thread with no shard executing, so everything it reads is
    // deterministic simulation state and everything it schedules lands at
    // or after the boundary — the thread-count-invariance argument of
    // DESIGN.md §7.11. A hook that schedules nothing after the workload
    // drains terminates the loop (run_until returns drained).
    std::size_t epoch = 0;
    for (;;) {
      ++epoch;
      const SimTime at = static_cast<SimTime>(epoch) * epoch_period_;
      if (engine_->run_until(at)) break;
      epoch_hook_(epoch, at);
    }
  } else {
    engine_->run();
  }
  // Each runtime's run() on a drained shard is a no-op that asserts no
  // task is still pending — the "all submitted work retired" postcondition.
  for (auto& node : nodes_) node.runtime->run();
}

ShardedRuntime::Stats ShardedRuntime::stats() const {
  // Balanced-tree fold over nodes (common/reduce.h): the energy sum is
  // floating point, and the tree shape — hence its rounding — depends only
  // on the node count, never on who asks or how many threads ran.
  Stats s = reduce_tree<Stats>(
      nodes_.size(), Stats{},
      [&](std::size_t i) {
        Stats leaf;
        const RuntimeStats rs = nodes_[i].runtime->stats();
        leaf.makespan = rs.makespan;
        leaf.energy = nodes_[i].machine->total_energy();
        leaf.tasks = nodes_[i].runtime->results().size();
        leaf.shed_tasks = rs.shed_tasks;
        return leaf;
      },
      [](Stats a, Stats b) {
        a.makespan = std::max(a.makespan, b.makespan);
        a.energy += b.energy;
        a.tasks += b.tasks;
        a.shed_tasks += b.shed_tasks;
        return a;
      });
  s.cross_posts = engine_->messages();
  s.events = engine_->events_processed();
  s.windows = engine_->windows();
  s.mailbox_spills = engine_->mailbox_spills();
  s.shard_windows = engine_->shard_windows();
  s.stalled_shard_windows = engine_->stalled_shard_windows();
  s.steals = engine_->steals();
  return s;
}

}  // namespace ecoscale
