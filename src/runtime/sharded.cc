#include "runtime/sharded.h"

#include <algorithm>
#include <utility>

#include "interconnect/topology.h"

namespace ecoscale {

ShardedRuntime::ShardedRuntime(ShardedRuntimeConfig config)
    : config_(std::move(config)) {
  ECO_CHECK_MSG(config_.nodes >= 1, "need at least one node");
  const std::size_t n = config_.nodes;

  // Node-level interconnect: every Compute Node is one endpoint behind a
  // central switch, links carrying the machine's L1 (inter-node) tier
  // parameters. Only route/latency queries are ever issued against it —
  // the engine charges forwards its head latency; it never send()s, so it
  // stays read-only during the parallel run.
  NetworkConfig nc;
  nc.level_params = {{0, config_.machine.pgas.l1_link}};
  internode_ = std::make_unique<Network>(
      make_crossbar(std::max<std::size_t>(n, 2)), nc);
  ECO_CHECK_MSG(internode_->implicit_routing(),
                "inter-node crossbar must route implicitly (shard threads "
                "query route_latency concurrently)");

  ShardedConfig sc;
  sc.shards = n;
  sc.lookahead = std::max<SimDuration>(internode_->min_cross_latency(0), 1);
  sc.threads = config_.threads;
  sc.mailbox_capacity = config_.mailbox_capacity;
  engine_ = std::make_unique<ShardedSimulator>(sc);

  nodes_.reserve(n);
  for (std::size_t node = 0; node < n; ++node) {
    Node slot;
    MachineConfig mc = config_.machine;
    mc.nodes = 1;  // the shard is the node: its UNIMEM domain is private
    mc.workers_per_node = config_.workers_per_node;
    slot.machine = std::make_unique<Machine>(mc);
    RuntimeConfig rc = config_.runtime;
    rc.seed = config_.runtime.seed + node;  // decorrelate per-node streams
    slot.runtime = std::make_unique<RuntimeSystem>(
        *slot.machine, engine_->shard(node), rc);
    nodes_.push_back(std::move(slot));
  }
}

void ShardedRuntime::register_kernel(const KernelIR& kernel,
                                     std::vector<AcceleratorModule> variants) {
  for (auto& node : nodes_) {
    node.runtime->register_kernel(kernel, variants);
  }
}

void ShardedRuntime::submit(std::size_t node, const Task& task) {
  ECO_CHECK(node < nodes_.size());
  ECO_CHECK_MSG(task.home.node == 0,
                "task.home is node-local; pick the node via `node`");
  nodes_[node].runtime->submit(task);
}

void ShardedRuntime::post_task(std::size_t from, std::size_t to, Task task) {
  ECO_CHECK(from < nodes_.size() && to < nodes_.size());
  ECO_CHECK_MSG(task.home.node == 0,
                "task.home is node-local on the destination");
  const SimTime arrive =
      engine_->shard(from).now() + inter_node_latency(from, to);
  task.release = arrive;
  RuntimeSystem* rt = nodes_[to].runtime.get();
  engine_->post(from, to, arrive, [rt, task] { rt->submit(task); });
}

void ShardedRuntime::run() {
  engine_->run();
  // Each runtime's run() on a drained shard is a no-op that asserts no
  // task is still pending — the "all submitted work retired" postcondition.
  for (auto& node : nodes_) node.runtime->run();
}

ShardedRuntime::Stats ShardedRuntime::stats() const {
  Stats s;
  for (const auto& node : nodes_) {
    const RuntimeStats rs = node.runtime->stats();
    s.makespan = std::max(s.makespan, rs.makespan);
    s.energy += node.machine->total_energy();
    s.tasks += node.runtime->results().size();
  }
  s.cross_posts = engine_->messages();
  s.events = engine_->events_processed();
  s.windows = engine_->windows();
  s.mailbox_spills = engine_->mailbox_spills();
  return s;
}

}  // namespace ecoscale
