// The full simulated ECOSCALE machine: Compute Nodes of Workers over a
// UNIMEM PGAS, UNILOGIC fabric pools per node, and an MPI world joining the
// nodes (paper Figure 3).
#pragma once

#include <memory>
#include <vector>

#include "common/check.h"
#include "common/health.h"
#include "mpi/mpi.h"
#include "unilogic/pool.h"
#include "unimem/pgas.h"
#include "worker/worker.h"

namespace ecoscale {

struct MachineConfig {
  std::size_t nodes = 2;
  std::size_t workers_per_node = 4;
  PgasConfig pgas;       // nodes/workers fields are overwritten from above
  WorkerConfig worker;
  MpiConfig mpi;
};

class Machine {
 public:
  explicit Machine(MachineConfig config = {}) : config_(config) {
    ECO_CHECK(config_.nodes >= 1 && config_.workers_per_node >= 1);
    config_.pgas.nodes = config_.nodes;
    config_.pgas.workers_per_node = config_.workers_per_node;
    pgas_ = std::make_unique<PgasSystem>(config_.pgas);
    mpi_ = std::make_unique<MpiWorld>(config_.nodes, config_.mpi);
    // Pooled lazy state (DESIGN.md §7.7): workers and UNILOGIC pools are
    // null slots built on first touch, so constructing a 100k-worker
    // machine costs pointers, not Worker objects. Construction has no
    // timed side effects, so laziness never changes simulation results.
    workers_.resize(worker_count());
    pools_.resize(config_.nodes);
    // One machine-wide liveness registry, shared by every layer that must
    // route around failures (all-up unless a fault injector marks workers
    // down, so the healthy paths are unchanged).
    health_.reset(worker_count(), config_.workers_per_node);
    pgas_->set_health(&health_);
  }

  std::size_t node_count() const { return config_.nodes; }
  std::size_t workers_per_node() const { return config_.workers_per_node; }
  std::size_t worker_count() const {
    return config_.nodes * config_.workers_per_node;
  }

  Worker& worker(std::size_t flat) {
    ECO_CHECK(flat < workers_.size());
    auto& slot = workers_[flat];
    if (slot == nullptr) {
      slot = std::make_unique<Worker>(pgas_->coord(flat), config_.worker);
    }
    return *slot;
  }
  Worker& worker(WorkerCoord c) { return worker(pgas_->flat(c)); }
  UnilogicPool& pool(NodeId node) {
    ECO_CHECK(node < pools_.size());
    auto& slot = pools_[node];
    if (slot == nullptr) {
      // The pool programs its node's workers, so first touch of a node
      // forces its workers_per_node Worker slots — per-node, not
      // per-machine.
      std::vector<Worker*> node_workers;
      node_workers.reserve(config_.workers_per_node);
      for (std::size_t w = 0; w < config_.workers_per_node; ++w) {
        node_workers.push_back(
            &worker(static_cast<std::size_t>(node) * config_.workers_per_node +
                    w));
      }
      slot = std::make_unique<UnilogicPool>(
          std::move(node_workers), pgas_->network(),
          static_cast<std::size_t>(node) * config_.workers_per_node);
      slot->set_health(&health_);
    }
    return *slot;
  }

  /// Worker slots actually built — the pooling metric bench_scale tracks
  /// (untouched workers stay at 0).
  std::size_t constructed_workers() const {
    std::size_t n = 0;
    for (const auto& w : workers_) n += w != nullptr;
    return n;
  }
  PgasSystem& pgas() { return *pgas_; }
  MpiWorld& mpi() { return *mpi_; }
  HealthRegistry& health() { return health_; }
  const HealthRegistry& health() const { return health_; }
  const MachineConfig& config() const { return config_; }

  /// Promise that no future timed operation is issued before `watermark`;
  /// prunes retired calendar intervals machine-wide (PGAS links + DRAM,
  /// MPI network). Call at epoch boundaries of long-running workloads.
  void release(SimTime watermark) {
    pgas_->release(watermark);
    mpi_->network().release(watermark);
  }

  /// Total energy across every component (workers, PGAS, MPI, pools).
  Picojoules total_energy() const {
    Picojoules total = pgas_->energy().total() + mpi_->energy().total();
    for (const auto& w : workers_) {
      if (w == nullptr) continue;  // untouched worker: no energy by definition
      total += w->energy().total() + w->cpu().energy().total() +
               w->fabric().energy().total() + w->smmu().energy();
    }
    for (const auto& p : pools_) {
      if (p != nullptr) total += p->energy().total();
    }
    return total;
  }

 private:
  MachineConfig config_;
  std::unique_ptr<PgasSystem> pgas_;
  std::unique_ptr<MpiWorld> mpi_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::unique_ptr<UnilogicPool>> pools_;
  HealthRegistry health_;
};

}  // namespace ecoscale
