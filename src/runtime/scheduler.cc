#include "runtime/scheduler.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "obs/trace.h"

namespace ecoscale {

namespace {
/// Task-lifetime trace names (ready -> dispatch -> complete, plus the
/// migration/failure instants), interned once per process.
struct TaskTraceNames {
  CounterId queue = CounterRegistry::intern("task.queue");
  CounterId exec = CounterRegistry::intern("task.exec");
  CounterId spill = CounterRegistry::intern("task.spill");
  CounterId forward = CounterRegistry::intern("task.forward");
  CounterId fail = CounterRegistry::intern("task.fail");
  CounterId detect = CounterRegistry::intern("fault.detect");
  CounterId failover = CounterRegistry::intern("task.failover");
  CounterId shed = CounterRegistry::intern("task.shed");
  CounterId batch = CounterRegistry::intern("task.batch");
};
[[maybe_unused]] const TaskTraceNames& task_trace_names() {
  static const TaskTraceNames names;
  return names;
}

/// Execution lane of flat worker `w`: pid = node, tid = worker-in-node.
[[maybe_unused]] obs::Lane worker_lane(std::size_t w, std::size_t per_node) {
  return obs::Lane{static_cast<std::uint16_t>(w / per_node),
                   static_cast<std::uint16_t>(w % per_node)};
}

/// Queue-wait lane of flat worker `w` (queue spans overlap, so they get a
/// sibling lane instead of breaking the execution lane's nesting).
[[maybe_unused]] obs::Lane queue_lane(std::size_t w, std::size_t per_node) {
  return obs::Lane{
      static_cast<std::uint16_t>(w / per_node),
      static_cast<std::uint16_t>(obs::kQueueTidBase + w % per_node)};
}
}  // namespace

RuntimeSystem::RuntimeSystem(Machine& machine, Simulator& sim,
                             RuntimeConfig config)
    : machine_(machine),
      sim_(sim),
      config_(config),
      rng_(config.seed),
      workers_(machine.worker_count()) {
  if (config_.enable_daemon) {
    daemons_.reserve(machine_.worker_count());
    next_daemon_tick_.assign(machine_.worker_count(), config_.daemon.period);
    for (std::size_t w = 0; w < machine_.worker_count(); ++w) {
      daemons_.push_back(std::make_unique<ReconfigDaemon>(
          machine_.worker(w).fabric(), config_.daemon));
    }
  }
  if (config_.failures_per_second > 0.0) {
    ECO_CHECK_MSG(!config_.faults.enabled,
                  "legacy failures_per_second and live fault injection are "
                  "mutually exclusive");
    next_failure_.resize(machine_.worker_count());
    for (auto& f : next_failure_) {
      f = static_cast<SimTime>(
          rng_.exponential(1e12 / config_.failures_per_second));
    }
  }
  if (config_.faults.enabled) {
    FaultInjector::Callbacks cb;
    cb.on_worker_down = [this](std::size_t w, SimTime at) {
      on_worker_down(w, at);
    };
    cb.on_worker_up = [this](std::size_t w, SimTime at) {
      on_worker_up(w, at);
    };
    cb.active = [this] { return pending_ > 0; };
    injector_ = std::make_unique<FaultInjector>(sim_, machine_,
                                                config_.faults,
                                                std::move(cb));
    injector_->arm();
  }
}

void RuntimeSystem::register_kernel(const KernelIR& kernel,
                                    std::vector<AcceleratorModule> variants) {
  ECO_CHECK_MSG(!kernels_.contains(kernel.id), "kernel registered twice");
  kernels_[kernel.id] = kernel;
  // Keep variants sorted by area descending so "largest that fits" is the
  // first match.
  std::sort(variants.begin(), variants.end(),
            [](const AcceleratorModule& a, const AcceleratorModule& b) {
              return a.shape.slots() > b.shape.slots();
            });
  variants_[kernel.id] = std::move(variants);
  if (config_.enable_daemon) {
    // The daemon prefetches the variant the scheduler would pick on an
    // empty fabric.
    for (std::size_t w = 0; w < machine_.worker_count(); ++w) {
      if (const AcceleratorModule* preferred = choose_variant(kernel.id, w)) {
        daemons_[w]->register_module(*preferred);
      }
    }
  }
}

void RuntimeSystem::submit(const Task& task) {
  ECO_CHECK_MSG(kernels_.contains(task.kernel), "unregistered kernel");
  ++pending_;
  if (config_.faults.enabled) ensure_monitor();
  sim_.schedule_at(task.release, [this, task] {
    const std::size_t home = machine_.pgas().flat(task.home);
    const std::size_t target = route(task);
    if (target == home) {
      arrive(target, task, /*spill_hops=*/0);
      return;
    }
    // Forwarding ships the task closure to the chosen worker.
    ECO_TRACE_INSTANT(obs::Cat::kRuntime, task_trace_names().forward,
                      worker_lane(target, machine_.workers_per_node()),
                      sim_.now(), task.id);
    const auto mig = machine_.pgas().migrate_task(
        task.home, machine_.pgas().coord(target), sim_.now());
    sim_.schedule_at(mig.finish, [this, target, task] {
      // Routed placements (centralized/poll) are final: max hops reached.
      arrive(target, task, /*spill_hops=*/1000);
    });
  });
}

std::size_t RuntimeSystem::route(const Task& task) {
  const std::size_t home = machine_.pgas().flat(task.home);
  const std::size_t total = machine_.worker_count();
  auto depth = [&](std::size_t w) {
    return workers_[w].queue.size() + (workers_[w].busy ? 1 : 0);
  };
  switch (config_.distribution) {
    case DistributionPolicy::kHomeOnly:
      return home;
    case DistributionPolicy::kLazyLocal:
      // Lazy scheduling decides at *arrival* against the local queue only
      // (see arrive()); submission always targets the home worker.
      return home;
    case DistributionPolicy::kCentralized: {
      // Every task consults the global dispatcher: request + response
      // messages plus serialised dispatcher service. Workers the runtime
      // has detected as dead are never placed on.
      monitor_messages_ += 2;
      dispatcher_.reserve(sim_.now(), config_.dispatcher_service);
      std::size_t best = home;
      for (std::size_t w = 0; w < total; ++w) {
        if (workers_[w].known_down) continue;
        if (workers_[best].known_down || depth(w) < depth(best)) best = w;
      }
      return best;
    }
    case DistributionPolicy::kPollLeastLoaded: {
      // Poll every worker for its queue depth before placing.
      monitor_messages_ += 2 * (total - 1);
      std::size_t best = home;
      for (std::size_t w = 0; w < total; ++w) {
        if (workers_[w].known_down) continue;
        if (workers_[best].known_down || depth(w) < depth(best)) best = w;
      }
      return best;
    }
  }
  return home;
}

std::size_t RuntimeSystem::spill_target(std::size_t worker, const Task& task,
                                        int hops) const {
  const std::size_t per_node = machine_.workers_per_node();
  const std::size_t total = machine_.worker_count();
  if (hops % 2 == 0 && per_node > 1) {
    // Sideways: round-robin neighbour inside the node.
    const std::size_t node_base = (worker / per_node) * per_node;
    const std::size_t offset =
        1 + static_cast<std::size_t>((task.id + static_cast<TaskId>(hops)) %
                                     (per_node - 1));
    return node_base + (worker - node_base + offset) % per_node;
  }
  // Escalate: the same-position worker one node over.
  return (worker + per_node) % total;
}

void RuntimeSystem::arrive(std::size_t worker, Task task, int spill_hops) {
  // A worker the runtime has detected as dead takes no new arrivals:
  // redirect to the least-loaded believed-alive worker. (Crashes the
  // monitor has not yet detected still receive tasks — that is the
  // detection latency the recovery machinery exists to absorb.)
  if (workers_[worker].known_down) {
    const std::size_t target = survivor_for(worker);
    if (target != worker) worker = target;
  }
  // Admission control: past the configured depth the task is shed, not
  // queued — bounded queues are what keep tail latency bounded under
  // overload. The shed is final (no retry inside the runtime); the shed
  // handler lets the application fail the request upward.
  if (config_.admission_limit > 0) {
    const std::size_t depth =
        workers_[worker].queue.size() + (workers_[worker].busy ? 1 : 0);
    if (depth >= config_.admission_limit) {
      ++shed_tasks_;
      --pending_;
      ECO_TRACE_INSTANT(obs::Cat::kRuntime, task_trace_names().shed,
                        queue_lane(worker, machine_.workers_per_node()),
                        sim_.now(), task.id);
      if (shed_handler_) shed_handler_(task, sim_.now());
      return;
    }
  }
  // Lazy scheduling: the only status consulted is this worker's own queue.
  // A deep queue diffuses the task onward (bounded cascade), first to a
  // node neighbour, then across the node boundary.
  if (config_.distribution == DistributionPolicy::kLazyLocal &&
      spill_hops < static_cast<int>(config_.max_spill_hops) &&
      machine_.worker_count() > 1) {
    const std::size_t depth =
        workers_[worker].queue.size() + (workers_[worker].busy ? 1 : 0);
    if (depth >= config_.spill_depth) {
      const std::size_t target = spill_target(worker, task, spill_hops);
      ++monitor_messages_;  // one forward message, zero polling
      ECO_TRACE_INSTANT(obs::Cat::kRuntime, task_trace_names().spill,
                        worker_lane(worker, machine_.workers_per_node()),
                        sim_.now(), task.id);
      forwarded_[task.id] = true;
      const auto mig = machine_.pgas().migrate_task(
          machine_.pgas().coord(worker), machine_.pgas().coord(target),
          sim_.now());
      sim_.schedule_at(mig.finish, [this, target, task, spill_hops] {
        arrive(target, task, spill_hops + 1);
      });
      return;
    }
  }
  if (!forwarded_.contains(task.id)) forwarded_[task.id] = spill_hops > 0;
  workers_[worker].queue.push_back(std::move(task));
  if (!workers_[worker].busy) dispatch(worker);
}

const AcceleratorModule* RuntimeSystem::choose_variant(
    KernelId kernel, std::size_t worker) const {
  auto it = variants_.find(kernel);
  if (it == variants_.end() || it->second.empty()) return nullptr;
  const auto& fabric = machine_.worker(worker).fabric();
  // Already loaded? Stick with whatever variant is resident.
  if (fabric.is_loaded(kernel)) return &it->second.front();
  for (const auto& v : it->second) {
    if (v.shape.width <= fabric.floorplan().width() &&
        v.shape.height <= fabric.floorplan().height()) {
      return &v;
    }
  }
  return nullptr;
}

DeviceClass RuntimeSystem::place(const Task& task, std::size_t worker) {
  const KernelIR& kernel = kernels_.at(task.kernel);
  const bool hw_possible = choose_variant(task.kernel, worker) != nullptr;
  switch (config_.placement) {
    case PlacementPolicy::kAlwaysSoftware:
      return DeviceClass::kCpu;
    case PlacementPolicy::kAlwaysHardware:
      return hw_possible ? DeviceClass::kLocalFabric : DeviceClass::kCpu;
    case PlacementPolicy::kSizeThreshold:
      return (hw_possible && task.items >= config_.size_threshold)
                 ? DeviceClass::kLocalFabric
                 : DeviceClass::kCpu;
    case PlacementPolicy::kModelBased: {
      auto score = [&](const Prediction& p) {
        switch (config_.objective) {
          case Objective::kTime:
            return p.time_ns;
          case Objective::kEnergy:
            return p.energy_pj;
          case Objective::kEnergyDelay:
            return p.time_ns * p.energy_pj;
        }
        return p.time_ns;
      };
      const auto cpu =
          predictor_.predict(kernel, DeviceClass::kCpu, task.features);
      double best = score(cpu);
      DeviceClass choice = DeviceClass::kCpu;
      if (hw_possible) {
        const auto local = predictor_.predict(
            kernel, DeviceClass::kLocalFabric, task.features);
        if (score(local) < best) {
          best = score(local);
          choice = DeviceClass::kLocalFabric;
        }
        if (config_.share_fabric) {
          const auto remote = predictor_.predict(
              kernel, DeviceClass::kRemoteFabric, task.features);
          if (score(remote) < best) {
            best = score(remote);
            choice = DeviceClass::kRemoteFabric;
          }
        }
      }
      return choice;
    }
  }
  return DeviceClass::kCpu;
}

void RuntimeSystem::dispatch(std::size_t worker) {
  WorkerState& state = workers_[worker];
  if (state.busy || state.queue.empty()) return;
  // Request batching: opening a batch pays dispatch_overhead once, then
  // up to batch_size queued tasks dispatch back to back without re-paying
  // it. The open is epoch-guarded like completions: a crash bumps the
  // epoch and orphans the pending open.
  if (config_.dispatch_overhead > 0 && state.batch_left == 0) {
    state.batch_left = std::min(std::max<std::size_t>(config_.batch_size, 1),
                                state.queue.size());
    state.busy = true;
    const std::uint64_t epoch = ++state.epoch;
    ECO_TRACE_INSTANT(obs::Cat::kRuntime, task_trace_names().batch,
                      queue_lane(worker, machine_.workers_per_node()),
                      sim_.now(),
                      static_cast<std::uint32_t>(state.batch_left));
    sim_.schedule_at(sim_.now() + config_.dispatch_overhead,
                     [this, worker, epoch] {
                       WorkerState& st = workers_[worker];
                       if (st.epoch != epoch) return;  // crashed mid-open
                       st.busy = false;
                       dispatch(worker);
                     });
    return;
  }
  if (state.batch_left > 0) --state.batch_left;
  Task task = std::move(state.queue.front());
  state.queue.pop_front();
  state.busy = true;

  const SimTime now = sim_.now();
  const KernelIR& kernel = kernels_.at(task.kernel);
  if (config_.enable_daemon) {
    // Feed the History scores and tick opportunistically (the daemon has
    // no thread of its own; dispatch points are its scheduling quanta).
    daemons_[worker]->record_call(task.kernel);
    while (next_daemon_tick_[worker] <= now) {
      daemons_[worker]->tick(next_daemon_tick_[worker]);
      next_daemon_tick_[worker] += config_.daemon.period;
    }
  }
  DeviceClass device = place(task, worker);

  // Ready -> dispatch (queue wait) as a complete span on the worker's
  // queue lane; dispatch -> complete as a begin/end pair on its execution
  // lane, closed by the completion event below. A task lost to failure
  // injection never closes its begin — the exporter repairs it, and the
  // orphan is itself the signal (the span runs to the end of the window).
  const std::size_t per_node = machine_.workers_per_node();
  ECO_TRACE_SPAN(obs::Cat::kRuntime, task_trace_names().queue,
                 queue_lane(worker, per_node), task.release, now, task.id);
  ECO_TRACE_BEGIN(obs::Cat::kRuntime, task_trace_names().exec,
                  worker_lane(worker, per_node), now);

  TaskResult result;
  result.id = task.id;
  result.release = task.release;
  result.started = now;
  result.executed_on = worker;
  result.forwarded = forwarded_[task.id];

  SimTime finish = now;
  if (device == DeviceClass::kCpu) {
    const auto e =
        machine_.worker(worker).run_software(kernel, task.items, now, task.id);
    finish = e.finish;
    result.energy = e.energy;
    result.device = DeviceClass::kCpu;
  } else {
    const AcceleratorModule* variant = choose_variant(task.kernel, worker);
    ECO_CHECK(variant != nullptr);
    const auto node = static_cast<NodeId>(worker / per_node);
    const std::size_t in_node = worker % per_node;
    const DispatchPolicy pool_policy =
        (config_.share_fabric && device == DeviceClass::kRemoteFabric)
            ? DispatchPolicy::kLeastLoaded
            : DispatchPolicy::kLocalOnly;
    const auto inv = machine_.pool(node).invoke(in_node, *variant,
                                                task.items, now, pool_policy);
    if (inv) {
      finish = inv->finish;
      result.energy = inv->energy;
      result.reconfigured = inv->reconfigured;
      result.device = inv->remote ? DeviceClass::kRemoteFabric
                                  : DeviceClass::kLocalFabric;
      result.executed_on =
          static_cast<std::size_t>(node) * per_node + inv->executed_on;
    } else {
      // Could not place in hardware anywhere: software fallback.
      const auto e = machine_.worker(worker).run_software(kernel, task.items,
                                                          now, task.id);
      finish = e.finish;
      result.energy = e.energy;
      result.device = DeviceClass::kCpu;
    }
  }
  result.finished = finish;

  // Failure injection: a worker crash during execution loses the task's
  // progress (the resources it consumed stay consumed — real lost work)
  // and re-queues the task after repair.
  if (config_.failures_per_second > 0.0) {
    // Advance the failure clock past idle periods.
    while (next_failure_[worker] <= now) {
      next_failure_[worker] += static_cast<SimTime>(
          rng_.exponential(1e12 / config_.failures_per_second));
    }
    const SimTime fail_at = next_failure_[worker];
    if (fail_at < finish) {
      next_failure_[worker] += static_cast<SimTime>(
          rng_.exponential(1e12 / config_.failures_per_second));
      ++failures_;
      ++reexecutions_;
      // The crashed attempt ran [now, fail_at) of a [now, finish) job: its
      // resources are consumed in proportion — real lost work, no longer
      // silently dropped.
      wasted_energy_ += result.energy *
                        (static_cast<double>(fail_at - now) /
                         static_cast<double>(finish - now));
      ECO_TRACE_INSTANT(obs::Cat::kRuntime, task_trace_names().fail,
                        worker_lane(worker, per_node), fail_at, task.id);
      sim_.schedule_at(fail_at + config_.repair_time,
                       [this, worker, task] {
                         workers_[worker].busy = false;
                         // Re-execute from scratch at the repaired worker
                         // (final placement: no further routing).
                         arrive(worker, task, /*spill_hops=*/1000);
                       });
      return;  // no result; the task is still pending
    }
  }

  // Live fault path: remember the attempt so a crash can price and
  // re-queue it, and tag the completion with an epoch — a crash bumps the
  // epoch, turning the (uncancellable) completion event into a no-op.
  const std::uint64_t epoch = ++state.epoch;
  if (config_.faults.enabled) {
    state.in_flight = true;
    state.current = task;
    state.exec_start = now;
    state.exec_finish = finish;
    state.exec_energy = result.energy;
  }

  if (completion_handler_) {
    // The handler needs the task (payload) alongside the result; the
    // fatter capture only exists when a handler is installed.
    sim_.schedule_at(finish, [this, worker, task, result, epoch] {
      WorkerState& st = workers_[worker];
      if (st.epoch != epoch) return;  // attempt destroyed by a crash
      ECO_TRACE_END(obs::Cat::kRuntime, task_trace_names().exec,
                    worker_lane(worker, machine_.workers_per_node()),
                    sim_.now());
      st.in_flight = false;
      results_.push_back(result);
      --pending_;
      st.busy = false;
      completion_handler_(task, result);
      dispatch(worker);
    });
  } else {
    sim_.schedule_at(finish, [this, worker, result, epoch] {
      WorkerState& st = workers_[worker];
      if (st.epoch != epoch) return;  // attempt destroyed by a crash
      ECO_TRACE_END(obs::Cat::kRuntime, task_trace_names().exec,
                    worker_lane(worker, machine_.workers_per_node()),
                    sim_.now());
      st.in_flight = false;
      results_.push_back(result);
      --pending_;
      st.busy = false;
      dispatch(worker);
    });
  }

  // Observe immediately (the measurement is deterministic): prequential
  // training keeps the model-based policy causal — the prediction above
  // used only earlier observations.
  HistoryRecord record;
  record.kernel = task.kernel;
  record.device = result.device;
  record.features = task.features;
  record.time_ns = to_nanoseconds(finish - now);
  record.energy_pj = result.energy;
  predictor_.observe(record);
}

// --- live fault path --------------------------------------------------------

void RuntimeSystem::on_worker_down(std::size_t worker, SimTime at) {
  WorkerState& state = workers_[worker];
  state.busy = true;   // nothing dispatches while the worker is down
  ++state.epoch;       // orphan any scheduled completion of this worker
  state.batch_left = 0;  // the open batch dies with the worker
  state.pending_detect = true;
  state.crash_at = at;
  if (state.in_flight) {
    // The running attempt dies with the worker. Its consumed resources are
    // real: charge partial progress in proportion to elapsed runtime. The
    // victim task stays parked in `current` (in_flight marks it) until the
    // heartbeat monitor detects the crash — or repair beats detection.
    const SimDuration ran = at - state.exec_start;
    const SimDuration full = state.exec_finish - state.exec_start;
    if (full > 0) {
      wasted_energy_ += state.exec_energy *
                        (static_cast<double>(ran) / static_cast<double>(full));
    }
    ++failures_;
    ECO_TRACE_INSTANT(obs::Cat::kRuntime, task_trace_names().fail,
                      worker_lane(worker, machine_.workers_per_node()), at,
                      state.current.id);
  }
}

void RuntimeSystem::on_worker_up(std::size_t worker, SimTime at) {
  WorkerState& state = workers_[worker];
  state.busy = false;
  state.known_down = false;
  if (state.pending_detect) {
    // Repaired before the monitor ever noticed: the crash stays invisible
    // to the rest of the machine and the victim re-executes locally.
    state.pending_detect = false;
    if (state.in_flight) {
      state.in_flight = false;
      ++reexecutions_;
      Task victim = std::move(state.current);
      ECO_TRACE_INSTANT(obs::Cat::kFailover, task_trace_names().failover,
                        worker_lane(worker, machine_.workers_per_node()), at,
                        victim.id);
      arrive(worker, std::move(victim), /*spill_hops=*/1000);
      return;  // arrive() already dispatched
    }
  }
  dispatch(worker);
}

void RuntimeSystem::ensure_monitor() {
  if (monitor_running_) return;
  monitor_running_ = true;
  sim_.schedule_at(sim_.now() + config_.faults.heartbeat_period,
                   [this] { monitor_tick(); });
}

void RuntimeSystem::monitor_tick() {
  if (pending_ == 0) {
    // Workload drained: stop ticking so the event queue can empty. A later
    // submit() re-arms via ensure_monitor().
    monitor_running_ = false;
    return;
  }
  const SimTime now = sim_.now();
  monitor_messages_ += machine_.worker_count();  // one heartbeat probe each
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    WorkerState& state = workers_[w];
    if (!state.pending_detect ||
        now < state.crash_at + config_.faults.detect_timeout) {
      continue;
    }
    if (machine_.health().up(w)) continue;  // repair wins (same-tick race)
    // Declared dead: this is the moment the *runtime* learns of the crash.
    state.pending_detect = false;
    state.known_down = true;
    ++detections_;
    ECO_TRACE_INSTANT(obs::Cat::kDetect, task_trace_names().detect,
                      worker_lane(w, machine_.workers_per_node()), now,
                      static_cast<std::uint32_t>(w));
    // Re-execute the killed in-flight attempt on a survivor. The record
    // keeps the full causal chain (crash -> detection -> re-queue) so
    // tests can assert no re-execution starts before its detection point.
    // When the runtime believes *nobody* survives (every worker down at
    // once), work stays parked on this worker's own queue — repair will
    // re-dispatch it; shipping it to another dead worker would just
    // bounce it back here forever.
    if (state.in_flight) {
      state.in_flight = false;
      Task victim = std::move(state.current);
      const std::size_t target = survivor_for(w);
      ++reexecutions_;
      if (target == w) {
        state.queue.push_front(std::move(victim));
      } else {
        ++task_failovers_;
        recovery_log_.push_back(
            RecoveryRecord{victim.id, w, target, state.crash_at, now});
        ECO_TRACE_INSTANT(obs::Cat::kFailover, task_trace_names().failover,
                          worker_lane(target, machine_.workers_per_node()),
                          now, victim.id);
        arrive(target, std::move(victim), /*spill_hops=*/1000);
      }
    }
  }
  // Tasks still queued (never started) on any believed-dead worker spill
  // to survivors. This runs every tick, not just at detection: work can
  // strand when detection found no survivor, and must move out as soon as
  // the runtime believes somebody is alive again.
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    WorkerState& state = workers_[w];
    if (!state.known_down) continue;
    while (!state.queue.empty()) {
      const std::size_t target = survivor_for(w);
      if (target == w) break;  // no believed-alive survivor: wait for repair
      Task task = std::move(state.queue.front());
      state.queue.pop_front();
      ++task_failovers_;
      ECO_TRACE_INSTANT(obs::Cat::kFailover, task_trace_names().failover,
                        worker_lane(target, machine_.workers_per_node()), now,
                        task.id);
      arrive(target, std::move(task), /*spill_hops=*/1000);
    }
  }
  sim_.schedule_at(now + config_.faults.heartbeat_period,
                   [this] { monitor_tick(); });
}

std::size_t RuntimeSystem::survivor_for(std::size_t avoid) const {
  std::size_t best = avoid;
  std::size_t best_depth = ~std::size_t{0};
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (w == avoid || workers_[w].known_down) continue;
    const std::size_t d =
        workers_[w].queue.size() + (workers_[w].busy ? 1 : 0);
    if (d < best_depth) {
      best_depth = d;
      best = w;
    }
  }
  return best;
}

void RuntimeSystem::run() {
  sim_.run();
  ECO_CHECK_MSG(pending_ == 0, "runtime finished with pending tasks");
}

RuntimeStats RuntimeSystem::stats() const {
  RuntimeStats s;
  for (const auto& r : results_) {
    s.makespan = std::max(s.makespan, r.finished);
    s.energy += r.energy;
    switch (r.device) {
      case DeviceClass::kCpu:
        ++s.sw_tasks;
        break;
      case DeviceClass::kLocalFabric:
        ++s.hw_tasks;
        break;
      case DeviceClass::kRemoteFabric:
        ++s.hw_tasks;
        ++s.remote_hw_tasks;
        break;
    }
    if (r.forwarded) ++s.forwarded_tasks;
    s.queue_wait_ns.add(to_nanoseconds(r.queue_wait()));
    s.turnaround_ns.add(to_nanoseconds(r.turnaround()));
  }
  s.monitor_messages = monitor_messages_;
  s.shed_tasks = shed_tasks_;
  s.worker_failures = failures_;
  s.reexecutions = reexecutions_;
  s.wasted_energy = wasted_energy_;
  s.detections = detections_;
  s.task_failovers = task_failovers_;
  return s;
}

}  // namespace ecoscale
